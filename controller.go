package citadel

import (
	"repro/internal/core"
	"repro/internal/fault"
)

// Controller is the bit-accurate functional model of the Citadel pipeline:
// per-line CRC-32 metadata, TSV-SWAP, working 3DP XOR reconstruction, and
// DDS sparing with live redirection tables. Inject faults and watch reads
// detect, correct, and spare.
type Controller = core.Controller

// ControllerStats counts pipeline events (corrections, sparings, repairs).
type ControllerStats = core.Stats

// ErrDataLoss is returned by Controller.Read when no parity dimension can
// reconstruct a line.
var ErrDataLoss = core.ErrDataLoss

// NewController builds a functional Citadel controller. Reconstruction
// reads whole parity groups, so prefer TinyConfig-scale geometries.
func NewController(cfg Config) (*Controller, error) { return core.NewController(cfg) }

// TinyConfig is a geometry small enough for exhaustive functional
// simulation (1 stack, 4 data dies + 1 metadata die, 4 banks/die, 32 rows).
func TinyConfig() Config { return core.TinyConfig() }

// Fault is one fault event; build footprints with the helper constructors
// below and inject via Controller.InjectFault.
type Fault = fault.Fault

// FaultClass is the granularity class of a fault.
type FaultClass = fault.Class

// Fault granularity classes.
const (
	FaultBit      = fault.Bit
	FaultWord     = fault.Word
	FaultColumn   = fault.Column
	FaultRow      = fault.Row
	FaultSubArray = fault.SubArray
	FaultBank     = fault.Bank
	FaultDataTSV  = fault.DataTSV
	FaultAddrTSV  = fault.AddrTSV
)

// RowFault builds a permanent single-row fault footprint.
func RowFault(stackIdx, die, bank, row int) Fault {
	return Fault{
		Class:       fault.Row,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: stackIdx,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.ExactPattern(uint32(bank)),
			Row:   fault.ExactPattern(uint32(row)),
			Col:   fault.AllPattern(),
		},
	}
}

// BankFault builds a permanent whole-bank fault footprint.
func BankFault(stackIdx, die, bank int) Fault {
	return Fault{
		Class:       fault.Bank,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: stackIdx,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.ExactPattern(uint32(bank)),
			Row:   fault.AllPattern(),
			Col:   fault.AllPattern(),
		},
	}
}

// WordFault builds a permanent 64-bit word fault in one row. bitOffset is
// the word-aligned bit position within the row.
func WordFault(stackIdx, die, bank, row, bitOffset int) Fault {
	return Fault{
		Class:       fault.Word,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: stackIdx,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.ExactPattern(uint32(bank)),
			Row:   fault.ExactPattern(uint32(row)),
			Col:   fault.MaskPattern(^uint32(63), uint32(bitOffset)&^uint32(63)),
		},
	}
}

// DataTSVFault builds a permanent data-TSV fault for one channel: the
// given TSV corrupts its bit positions in every transferred line.
func DataTSVFault(cfg Config, stackIdx, die, tsvIdx int) Fault {
	return Fault{
		Class:       fault.DataTSV,
		Persistence: fault.Permanent,
		TSV:         tsvIdx,
		Region: fault.Region{
			Stack: stackIdx,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.AllPattern(),
			Row:   fault.AllPattern(),
			Col:   fault.MaskPattern(uint32(cfg.DataTSVs-1), uint32(tsvIdx)),
		},
	}
}

// AddrTSVFault builds a permanent address-TSV fault: address bit `bit` of
// the channel's row address is broken, making the rows with that bit set
// unreachable.
func AddrTSVFault(stackIdx, die, bit int) Fault {
	return Fault{
		Class:       fault.AddrTSV,
		Persistence: fault.Permanent,
		TSV:         bit,
		Region: fault.Region{
			Stack: stackIdx,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.AllPattern(),
			Row:   fault.MaskPattern(1<<uint(bit), 1<<uint(bit)),
			Col:   fault.AllPattern(),
		},
	}
}
