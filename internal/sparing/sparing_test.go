package sparing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

func regionFor(stackIdx, die, bank int, rowPat fault.Pattern) fault.Region {
	return fault.Region{
		Stack: stackIdx,
		Die:   fault.ExactPattern(uint32(die)),
		Bank:  fault.ExactPattern(uint32(bank)),
		Row:   rowPat,
		Col:   fault.AllPattern(),
	}
}

func rowFault(stackIdx, die, bank, row int) fault.Fault {
	return fault.Fault{
		Class:       fault.Row,
		Persistence: fault.Permanent,
		Region:      regionFor(stackIdx, die, bank, fault.ExactPattern(uint32(row))),
	}
}

func bankFault(stackIdx, die, bank int) fault.Fault {
	return fault.Fault{
		Class:       fault.Bank,
		Persistence: fault.Permanent,
		Region:      regionFor(stackIdx, die, bank, fault.AllPattern()),
	}
}

func TestRowSparingWithinBudget(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	for i := 0; i < 4; i++ {
		ok, extra := d.Offer(rowFault(0, 1, 2, 100+i), nil)
		if !ok {
			t.Fatalf("row %d not spared within budget", i)
		}
		if len(extra) != 0 {
			t.Fatalf("row sparing spared extra faults: %v", extra)
		}
	}
	if got := d.RowEntriesUsed(0, 1, 2); got != 4 {
		t.Errorf("RRT entries = %d, want 4", got)
	}
}

func TestFifthRowEscalatesToBankSparing(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	var live []fault.Fault
	for i := 0; i < 4; i++ {
		f := rowFault(0, 1, 2, 100+i)
		d.Offer(f, live)
	}
	fifth := rowFault(0, 1, 2, 200)
	ok, _ := d.Offer(fifth, live)
	if !ok {
		t.Fatal("fifth row fault not spared (should escalate to bank)")
	}
	if !d.BankSpared(0, 1, 2) {
		t.Error("bank not marked spared after escalation")
	}
	if d.BankSparesUsed(0) != 1 {
		t.Errorf("bank spares used = %d, want 1", d.BankSparesUsed(0))
	}
}

func TestEscalationSparesCoResidentFaults(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	// Fill the row budget, then a bank fault arrives with other live faults
	// in the same bank and elsewhere.
	live := []fault.Fault{
		rowFault(0, 1, 2, 7), // same bank: should ride along
		rowFault(0, 3, 4, 7), // different bank: untouched
		bankFault(0, 1, 2),   // the escalating fault itself
	}
	ok, extra := d.Offer(live[2], live)
	if !ok {
		t.Fatal("bank fault not spared")
	}
	if len(extra) != 2 {
		t.Fatalf("extra spared = %v, want indices {0, 2}", extra)
	}
	seen := map[int]bool{}
	for _, i := range extra {
		seen[i] = true
	}
	if !seen[0] || !seen[2] || seen[1] {
		t.Errorf("extra spared = %v, want {0,2}", extra)
	}
}

func TestBankSpareExhaustion(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	if ok, _ := d.Offer(bankFault(0, 0, 0), nil); !ok {
		t.Fatal("first bank not spared")
	}
	if ok, _ := d.Offer(bankFault(0, 1, 1), nil); !ok {
		t.Fatal("second bank not spared")
	}
	if ok, _ := d.Offer(bankFault(0, 2, 2), nil); ok {
		t.Error("third bank spared beyond BRT capacity")
	}
	// The other stack has its own budget.
	if ok, _ := d.Offer(bankFault(1, 0, 0), nil); !ok {
		t.Error("other stack's bank not spared")
	}
}

func TestSubArrayFaultEscalates(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	sub := fault.Fault{
		Class:       fault.SubArray,
		Persistence: fault.Permanent,
		Region:      regionFor(0, 1, 2, fault.RangePattern(0, 5200)),
	}
	ok, _ := d.Offer(sub, nil)
	if !ok {
		t.Fatal("sub-array fault not spared")
	}
	if !d.BankSpared(0, 1, 2) {
		t.Error("sub-array fault should consume a spare bank (5200 rows > 4)")
	}
}

func TestMultiBankFaultRejected(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	tsvRemnant := fault.Fault{
		Class:       fault.DataTSV,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.ExactPattern(1),
			Bank:  fault.AllPattern(),
			Row:   fault.AllPattern(),
			Col:   fault.MaskPattern(255, 3),
		},
	}
	if ok, _ := d.Offer(tsvRemnant, nil); ok {
		t.Error("channel-wide fault spared by DDS (impossible)")
	}
}

func TestOfferToAlreadySparedBank(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	d.Offer(bankFault(0, 1, 2), nil)
	// New fault lands in the already-redirected bank: nothing to do, spared.
	ok, extra := d.Offer(rowFault(0, 1, 2, 9), nil)
	if !ok || len(extra) != 0 {
		t.Errorf("fault in spared bank: ok=%v extra=%v", ok, extra)
	}
	if d.BankSparesUsed(0) != 1 {
		t.Errorf("spare banks used = %d, want 1", d.BankSparesUsed(0))
	}
}

func TestRowBudgetIsPerBank(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	for b := 0; b < 8; b++ {
		for i := 0; i < 4; i++ {
			if ok, _ := d.Offer(rowFault(0, 0, b, i), nil); !ok {
				t.Fatalf("bank %d row %d not spared", b, i)
			}
		}
	}
	if d.BankSparesUsed(0) != 0 {
		t.Error("row sparing consumed bank spares")
	}
}

func TestOverheadBits(t *testing.T) {
	cfg := stack.DefaultConfig()
	bitsN := OverheadBits(cfg)
	// Paper: ~1 KB of RRT plus a tiny BRT. Our config has 2 stacks x 9 dies
	// x 8 banks = 144 banks, 4 entries each, 33 bits per entry.
	if bitsN < 8*1024 || bitsN > 32*1024 {
		t.Errorf("overhead = %d bits, expected in [8Ki,32Ki] (about 1-2 KB per stack)", bitsN)
	}
}

func TestMetadataDieBankSparable(t *testing.T) {
	cfg := stack.DefaultConfig()
	d := New(cfg)
	// Die index 8 is the metadata die; its banks can be spared too.
	if ok, _ := d.Offer(bankFault(0, 8, 3), nil); !ok {
		t.Error("metadata-die bank fault not spared")
	}
}
