// Package sparing implements Citadel's Dynamic Dual-granularity Sparing
// (DDS, paper §VII). Permanent faults, once corrected by 3DP, are redirected
// to spare storage in the metadata die so the slow parity-correction path is
// not exercised again and faults do not accumulate.
//
// DDS exploits the bimodal size distribution of permanent faults: a faulty
// bank has either a handful of faulty rows or thousands. It spares at two
// granularities:
//
//   - Row sparing via the Row Remap Table (RRT): up to MaxSpareRowsPerBank
//     (4) faulty rows per bank are remapped into the fine-grained spare bank.
//   - Bank sparing via the Bank Remap Table (BRT): a bank whose faults
//     exceed the row budget is wholly remapped to one of SpareBanks (2)
//     coarse-grained spare banks.
//
// The spare area occupies three of the metadata die's banks (two coarse,
// one fine), per stack.
package sparing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/stack"
)

// Defaults from the paper's design.
const (
	// MaxSpareRowsPerBank is the RRT budget per bank (paper: 4 entries).
	MaxSpareRowsPerBank = 4
	// SpareBanks is the number of coarse-grained spare banks per stack.
	SpareBanks = 2
)

// bankKey identifies a bank system-wide.
type bankKey struct {
	Stack, Die, Bank int
}

// DDS tracks sparing state for the whole system.
type DDS struct {
	cfg stack.Config

	maxRows    int
	spareBanks int

	// rrtRows counts RRT entries consumed per bank.
	rrtRows map[bankKey]int
	// brt lists banks remapped to spare banks, per stack.
	brt map[int][]bankKey
	// sparedScratch backs Offer's sparedLive result so bank escalation does
	// not allocate on the simulator's hot path.
	sparedScratch []int

	// Rejection tallies for failure forensics: how many Offer calls were
	// refused because the footprint spans multiple banks, and how many
	// because the stack's spare banks were exhausted. Plain ints — the
	// counters ride the zero-allocation trial loop.
	rejectFootprint int
	rejectBudget    int
}

// New builds DDS state with the paper's default budgets.
func New(cfg stack.Config) *DDS {
	return NewWithBudget(cfg, MaxSpareRowsPerBank, SpareBanks)
}

// NewWithBudget builds DDS state with explicit budgets (for ablations).
func NewWithBudget(cfg stack.Config, maxRowsPerBank, spareBanks int) *DDS {
	return &DDS{
		cfg:        cfg,
		maxRows:    maxRowsPerBank,
		spareBanks: spareBanks,
		rrtRows:    make(map[bankKey]int),
		brt:        make(map[int][]bankKey),
	}
}

// Reset clears all sparing state, retaining table capacity so the Monte
// Carlo engine can reuse a DDS across trials.
func (d *DDS) Reset() {
	clear(d.rrtRows)
	for k, v := range d.brt {
		d.brt[k] = v[:0]
	}
	d.rejectFootprint = 0
	d.rejectBudget = 0
}

// RejectCounts returns how many Offer calls were rejected since the last
// Reset, split into unsparable multi-bank footprints and spare-bank budget
// exhaustion. A fault that stays live is re-offered at every subsequent
// scrub, so these count rejection events, not distinct faults.
func (d *DDS) RejectCounts() (footprint, budget int) {
	return d.rejectFootprint, d.rejectBudget
}

// RowEntriesUsed returns the number of RRT entries consumed for the bank.
func (d *DDS) RowEntriesUsed(stackIdx, die, bank int) int {
	return d.rrtRows[bankKey{stackIdx, die, bank}]
}

// BankSparesUsed returns the number of BRT entries consumed in the stack.
func (d *DDS) BankSparesUsed(stackIdx int) int { return len(d.brt[stackIdx]) }

// BankSpared reports whether the given bank has been remapped.
func (d *DDS) BankSpared(stackIdx, die, bank int) bool {
	for _, k := range d.brt[stackIdx] {
		if k == (bankKey{stackIdx, die, bank}) {
			return true
		}
	}
	return false
}

// singleBank extracts the (die, bank) a footprint is confined to, if any.
func (d *DDS) singleBank(r fault.Region) (die, bank int, ok bool) {
	dies := d.cfg.DataDies + d.cfg.ECCDies
	if r.Die.CountBelow(uint32(dies)) != 1 || r.Bank.CountBelow(uint32(d.cfg.BanksPerDie)) != 1 {
		return 0, 0, false
	}
	for v := 0; v < dies; v++ {
		if r.Die.Contains(uint32(v)) {
			die = v
			break
		}
	}
	for v := 0; v < d.cfg.BanksPerDie; v++ {
		if r.Bank.Contains(uint32(v)) {
			bank = v
			break
		}
	}
	return die, bank, true
}

// Offer gives DDS a corrected permanent fault (at a scrub boundary). It
// returns whether f itself is now spared, plus the indices into live of
// other faults that became spared as a side effect (when row-budget
// exhaustion escalates the whole bank to a spare bank, every resident fault
// of that bank moves with it).
//
// Faults spanning multiple banks (unrepaired TSV remnants) cannot be spared
// by DDS and are rejected.
//
// The returned sparedLive slice is backed by internal scratch and only
// valid until the next Offer call; callers must consume it immediately.
func (d *DDS) Offer(f fault.Fault, live []fault.Fault) (sparedSelf bool, sparedLive []int) {
	die, bank, ok := d.singleBank(f.Region)
	if !ok {
		d.rejectFootprint++
		return false, nil
	}
	key := bankKey{f.Region.Stack, die, bank}
	if d.BankSpared(key.Stack, key.Die, key.Bank) {
		// Bank already redirected; the faulty cells are no longer in use.
		return true, nil
	}
	rows := f.RowsNeedingSparing(d.cfg)
	if rows <= d.maxRows-d.rrtRows[key] {
		d.rrtRows[key] += rows
		return true, nil
	}
	// Row budget exceeded: escalate to bank sparing.
	if len(d.brt[key.Stack]) >= d.spareBanks {
		d.rejectBudget++
		return false, nil
	}
	d.brt[key.Stack] = append(d.brt[key.Stack], key)
	// Every live fault confined to this bank rides along.
	sparedLive = d.sparedScratch[:0]
	for i, g := range live {
		if g.Region.Stack != key.Stack {
			continue
		}
		gd, gb, ok := d.singleBank(g.Region)
		if ok && gd == key.Die && gb == key.Bank {
			sparedLive = append(sparedLive, i)
		}
	}
	d.sparedScratch = sparedLive
	if len(sparedLive) == 0 {
		return true, nil
	}
	return true, sparedLive
}

// String summarizes sparing state.
func (d *DDS) String() string {
	used := 0
	for _, n := range d.rrtRows {
		used += n
	}
	banks := 0
	for _, b := range d.brt {
		banks += len(b)
	}
	return fmt.Sprintf("DDS{spareRows:%d spareBanks:%d}", used, banks)
}

// OverheadBits returns the on-chip SRAM cost of the redirection tables in
// bits (paper §VII-C): per-bank RRT entries of (valid + source row + dest
// row) plus per-stack BRT entries of (valid + failed bank ID + spare ID).
func OverheadBits(cfg stack.Config) int {
	rowIDBits := log2ceil(cfg.RowsPerBank)
	banks := cfg.Stacks * (cfg.DataDies + cfg.ECCDies) * cfg.BanksPerDie
	rrt := banks * MaxSpareRowsPerBank * (1 + 2*rowIDBits)
	bankIDBits := log2ceil((cfg.DataDies + cfg.ECCDies) * cfg.BanksPerDie)
	brt := cfg.Stacks * SpareBanks * (1 + bankIDBits + 1)
	return rrt + brt
}

func log2ceil(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
