package cluster

import (
	"repro/internal/faultsim"
	"repro/internal/jobs"
)

// Wire protocol between the coordinator (mounted by internal/api) and
// citadel-worker processes. Workers pull: they ask for a lease, heartbeat
// it while computing, and deliver the chunk result. The coordinator never
// dials a worker, so workers need no listening port, survive NAT, and a
// dead worker is simply one whose leases expire.

// Route paths shared by the HTTP handlers and the worker client, so the
// two sides cannot drift.
const (
	LeasePath     = "/api/v1/cluster/lease"
	HeartbeatPath = "/api/v1/cluster/heartbeat"
	CompletePath  = "/api/v1/cluster/complete"
	WorkersPath   = "/api/v1/cluster/workers"
)

// LeaseRequest asks the coordinator for one chunk of work.
type LeaseRequest struct {
	WorkerID string `json:"workerId"`
}

// LeaseGrant hands a worker one chunk under a lease. The worker must
// heartbeat before TTLMillis elapses (clients send at TTL/3) or the
// coordinator reassigns the chunk to another worker. The grant carries
// the full normalized spec, so workers are stateless: everything needed
// to run chunk i deterministically is in this message.
type LeaseGrant struct {
	LeaseID     string               `json:"leaseId"`
	CampaignKey string               `json:"campaignKey"`
	RunID       string               `json:"runId"`
	Chunk       int                  `json:"chunk"`
	Trials      int                  `json:"trials"`
	Spec        jobs.ReliabilitySpec `json:"spec"`
	TTLMillis   int64                `json:"ttlMillis"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	WorkerID string `json:"workerId"`
	LeaseID  string `json:"leaseId"`
}

// HeartbeatResponse reports whether the lease is still held. Extended
// false means the lease was revoked (expired and reassigned, campaign
// finished, or cancelled): the worker must abandon the chunk immediately
// — its result would be a duplicate at best.
type HeartbeatResponse struct {
	Extended  bool  `json:"extended"`
	TTLMillis int64 `json:"ttlMillis,omitempty"`
}

// CompleteRequest delivers a finished chunk (Envelope set) or reports
// that the worker could not run it (Failed set), which requeues the
// chunk immediately instead of waiting out the lease.
type CompleteRequest struct {
	WorkerID string                  `json:"workerId"`
	LeaseID  string                  `json:"leaseId"`
	Failed   bool                    `json:"failed,omitempty"`
	Reason   string                  `json:"reason,omitempty"`
	Envelope *faultsim.ChunkEnvelope `json:"envelope,omitempty"`
}

// CompleteStatus classifies what the coordinator did with a delivery.
type CompleteStatus string

const (
	// CompleteAccepted: the chunk entered the campaign merge.
	CompleteAccepted CompleteStatus = "accepted"
	// CompleteDuplicate: the chunk was already merged (redelivery or a
	// reassigned chunk finished twice); the result was discarded. Chunks
	// are deterministic, so nothing is lost.
	CompleteDuplicate CompleteStatus = "duplicate"
	// CompleteStale: the campaign is no longer running here (finished,
	// cancelled, or fell back to local execution); discarded.
	CompleteStale CompleteStatus = "stale"
)

// CompleteResponse acknowledges a delivery.
type CompleteResponse struct {
	Status CompleteStatus `json:"status"`
}

// WorkerInfo is one row of the GET workers listing.
type WorkerInfo struct {
	ID               string `json:"id"`
	Live             bool   `json:"live"`
	LastSeenMillisAgo int64 `json:"lastSeenMillisAgo"`
	ActiveLeases     int    `json:"activeLeases"`
	ChunksDone       int64  `json:"chunksDone"`
	ConsecutiveFails int    `json:"consecutiveFails,omitempty"`
	Quarantined      bool   `json:"quarantined,omitempty"`
}

// WorkersResponse is the GET workers listing.
type WorkersResponse struct {
	Workers     []WorkerInfo `json:"workers"`
	LiveWorkers int          `json:"liveWorkers"`
}
