package cluster

import "repro/internal/obs"

// Coordinator metrics, exposed by cmd/citadel-server at GET /metrics.
// The reassignment/expiry/quarantine counters are the cluster's failure
// ledger: a healthy fleet keeps them flat while chunks_completed climbs.
var (
	mLeasesGranted = obs.Default().Counter("citadel_cluster_leases_granted_total",
		"Chunk leases granted to workers.")
	mHeartbeats = obs.Default().Counter("citadel_cluster_heartbeats_total",
		"Lease heartbeats accepted (deadline extended).")
	mLeaseExpiries = obs.Default().Counter("citadel_cluster_lease_expiries_total",
		"Leases that expired without a heartbeat (worker presumed dead).")
	mReassignments = obs.Default().Counter("citadel_cluster_reassignments_total",
		"Chunks requeued after a lost or failed lease.")
	mChunksCompleted = obs.Default().Counter("citadel_cluster_chunks_completed_total",
		"Chunk results accepted into campaign merges.")
	mDuplicateResults = obs.Default().Counter("citadel_cluster_duplicate_results_total",
		"Chunk results discarded because the chunk was already merged.")
	mStaleResults = obs.Default().Counter("citadel_cluster_stale_results_total",
		"Chunk results discarded because their campaign was no longer active.")
	mQuarantines = obs.Default().Counter("citadel_cluster_quarantines_total",
		"Workers quarantined after consecutive chunk failures.")
	mCampaignsFellBack = obs.Default().Counter("citadel_cluster_no_worker_aborts_total",
		"Campaigns handed back to local execution because no live worker appeared in time.")
	mLiveWorkers = obs.Default().Gauge("citadel_cluster_live_workers",
		"Workers seen within the liveness window and not quarantined.")
	mActiveCampaigns = obs.Default().Gauge("citadel_cluster_active_campaigns",
		"Campaigns currently being distributed to workers.")
)
