package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/jobs"
)

// scenarioSpec composes both new plugin kinds in one campaign: the
// two-tier-replication scheme under the rowhammer arrival process.
// Workers pinned to 1 and every field explicit, like testSpec, so the
// chunk RNG streams are location-independent.
func scenarioSpec(seed int64, trials, chunk int) jobs.Spec {
	return jobs.Spec{Reliability: &jobs.ReliabilitySpec{
		Scheme:           "two-tier-replication",
		Trials:           trials,
		CheckpointTrials: chunk,
		Workers:          1,
		Seed:             seed,
		TSVFIT:           1430,
		FaultModel:       "rowhammer",
		ScenarioParams:   map[string]float64{"breakthroughProb": 1e-7},
	}}
}

// TestDistributedScenarioMatchesLocal extends the determinism contract
// to registry-built scenarios: workers resolve the scheme and fault
// model from their own registry by name, and the distributed merge —
// including the folded ScenarioStats — must be bit-identical to the
// in-process run.
func TestDistributedScenarioMatchesLocal(t *testing.T) {
	spec := scenarioSpec(11, 2000, 250)
	want := runLocal(t, spec)

	h := newHarness(t, cluster.Options{
		LeaseTTL:      2 * time.Second,
		Tick:          50 * time.Millisecond,
		NoWorkerGrace: 10 * time.Second,
	})
	for i := 0; i < 3; i++ {
		h.startWorker(t, fmt.Sprintf("sw%d", i))
	}
	got := runCampaign(t, h.orch, spec)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed scenario result differs from local:\n got %s\nwant %s", got, want)
	}

	var res faultsim.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if res.ScenarioStats["hammerTrials"] != 2000 {
		t.Fatalf("hammerTrials = %g, want 2000 (stats: %v)", res.ScenarioStats["hammerTrials"], res.ScenarioStats)
	}
	if res.ScenarioStats["tierFetchEvents"] <= 0 {
		t.Fatalf("tierFetchEvents missing from folded stats: %v", res.ScenarioStats)
	}
}

// Cerberus under the default Poisson model distributes bit-identically
// too — the third new scenario through the cluster executor.
func TestDistributedCerberusMatchesLocal(t *testing.T) {
	spec := scenarioSpec(5, 1000, 250)
	spec.Reliability.Scheme = "cerberus-cross-layer"
	spec.Reliability.FaultModel = ""
	spec.Reliability.ScenarioParams = nil
	want := runLocal(t, spec)

	h := newHarness(t, cluster.Options{
		LeaseTTL:      2 * time.Second,
		Tick:          50 * time.Millisecond,
		NoWorkerGrace: 10 * time.Second,
	})
	h.startWorker(t, "cw0")
	h.startWorker(t, "cw1")
	got := runCampaign(t, h.orch, spec)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed cerberus result differs from local:\n got %s\nwant %s", got, want)
	}
}
