package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	citadel "repro"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/store"
)

// nolog discards coordinator, worker, orchestrator and store chatter.
func nolog(string, ...any) {}

// counter reads a process-wide obs counter so tests can assert deltas.
func counter(name string) int64 {
	return obs.Default().Counter(name, "").Value()
}

// testSpec is a campaign sized for tests: Workers is pinned to 1 and
// every field is explicit so the normalized spec (and therefore every
// chunk's RNG stream) is identical no matter where it runs.
func testSpec(seed int64, trials, chunk int) jobs.Spec {
	return jobs.Spec{Reliability: &jobs.ReliabilitySpec{
		Scheme:           "Citadel",
		Trials:           trials,
		CheckpointTrials: chunk,
		Workers:          1,
		Seed:             seed,
		TSVFIT:           1430,
	}}
}

// runLocal executes spec on a plain in-process orchestrator and returns
// the finished job's result bytes — the determinism reference.
func runLocal(t *testing.T, spec jobs.Spec) []byte {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Logf: nolog})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	o := jobs.New(jobs.Options{Store: st, Workers: 1, QueueDepth: 4, Logf: nolog})
	defer closeOrch(t, o)
	return runCampaign(t, o, spec)
}

func runCampaign(t *testing.T, o *jobs.Orchestrator, spec jobs.Spec) []byte {
	t.Helper()
	j, err := o.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err = o.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", j.State, j.Error)
	}
	return j.Result
}

func closeOrch(t *testing.T, o *jobs.Orchestrator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := o.Close(ctx); err != nil {
		t.Errorf("orchestrator close: %v", err)
	}
}

// harness is a full coordinator stack: store-backed orchestrator whose
// ChunkExecutor is a Coordinator served over a real HTTP listener.
type harness struct {
	coord *cluster.Coordinator
	srv   *httptest.Server
	orch  *jobs.Orchestrator
}

func newHarness(t *testing.T, copts cluster.Options) *harness {
	t.Helper()
	copts.Logf = nolog
	coord := cluster.New(copts)
	srv := httptest.NewServer(api.New(api.Options{Cluster: coord, Logf: nolog}).Handler())
	st, err := store.Open(t.TempDir(), store.Options{Logf: nolog})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	orch := jobs.New(jobs.Options{
		Store: st, Workers: 1, QueueDepth: 4, Logf: nolog, ChunkExec: coord,
	})
	t.Cleanup(func() {
		closeOrch(t, orch)
		coord.Close()
		srv.Close()
	})
	return &harness{coord: coord, srv: srv, orch: orch}
}

// startWorker runs a pulling worker against the harness until the test
// ends (or the returned cancel is called).
func (h *harness) startWorker(t *testing.T, id string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := cluster.NewWorker(cluster.WorkerOptions{
		BaseURL:      h.srv.URL,
		ID:           id,
		PollInterval: 20 * time.Millisecond,
		Logf:         nolog,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// TestDistributedMatchesLocal is the determinism contract end to end: the
// same campaign run in-process, on one worker, and on four workers must
// produce bit-identical result bytes.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := testSpec(7, 4000, 500)
	want := runLocal(t, spec)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			h := newHarness(t, cluster.Options{
				LeaseTTL:      2 * time.Second,
				Tick:          50 * time.Millisecond,
				NoWorkerGrace: 10 * time.Second,
			})
			for i := 0; i < workers; i++ {
				h.startWorker(t, fmt.Sprintf("w%d", i))
			}
			before := counter("citadel_cluster_chunks_completed_total")
			got := runCampaign(t, h.orch, spec)
			if !bytes.Equal(got, want) {
				t.Errorf("distributed result differs from local:\n got %s\nwant %s", got, want)
			}
			if d := counter("citadel_cluster_chunks_completed_total") - before; d < 8 {
				t.Errorf("only %d chunks ran on workers, want 8 (campaign did not distribute)", d)
			}
		})
	}
}

// TestNoWorkersFallsBackLocal: a clustered campaign with zero live
// workers must complete locally after the grace period — same bytes, no
// wedge.
func TestNoWorkersFallsBackLocal(t *testing.T) {
	spec := testSpec(11, 1000, 250)
	want := runLocal(t, spec)
	h := newHarness(t, cluster.Options{
		LeaseTTL:      500 * time.Millisecond,
		Tick:          25 * time.Millisecond,
		NoWorkerGrace: 150 * time.Millisecond,
	})
	before := counter("citadel_jobs_cluster_fallback_total")
	got := runCampaign(t, h.orch, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("fallback result differs from local:\n got %s\nwant %s", got, want)
	}
	if d := counter("citadel_jobs_cluster_fallback_total") - before; d < 1 {
		t.Errorf("fallback counter did not move (delta %d)", d)
	}
}

// normSpec builds a normalized single-campaign ReliabilitySpec for
// driving the Coordinator directly, bypassing HTTP.
func normSpec(trials, chunk int) jobs.ReliabilitySpec {
	return jobs.ReliabilitySpec{
		Scheme: "Citadel", Trials: trials, CheckpointTrials: chunk,
		Workers: 1, LifetimeYears: 7, ScrubHours: 12, Seed: 1,
	}
}

// fakeEnvelope forges a valid chunk result without simulating; protocol
// tests only exercise bookkeeping, not the engine.
func fakeEnvelope(key string, chunk, trials int) faultsim.ChunkEnvelope {
	return faultsim.ChunkEnvelope{
		CampaignKey: key,
		Chunk:       chunk,
		Trials:      trials,
		Result:      citadel.Result{Policy: "fake", Trials: trials},
	}
}

// leaseEventually polls Lease until the worker gets a grant (chunks under
// backoff answer "no work" until notBefore passes).
func leaseEventually(t *testing.T, c *cluster.Coordinator, workerID string, within time.Duration) cluster.LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if g, ok := c.Lease(workerID); ok {
			return g
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("worker %s got no lease within %s", workerID, within)
	return cluster.LeaseGrant{}
}

// execAsync runs ExecuteChunks in the background, collecting commits.
type execResult struct {
	committed []int
	err       error
	done      chan struct{}
}

func execAsync(c *cluster.Coordinator, cam jobs.Campaign) *execResult {
	r := &execResult{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.ExecuteChunks(context.Background(), cam, func(chunk int, _ citadel.Result) error {
			r.committed = append(r.committed, chunk)
			return nil
		})
	}()
	return r
}

func (r *execResult) wait(t *testing.T) {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(30 * time.Second):
		t.Fatal("ExecuteChunks did not return")
	}
}

// TestLeaseExpiryReassigns: a worker that takes a lease and goes silent
// loses it; the chunk is re-leased to another worker, whose result
// completes the campaign, and the dead worker's heartbeat answers
// revoked.
func TestLeaseExpiryReassigns(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: 100 * time.Millisecond, Tick: 20 * time.Millisecond,
		RetryBase: 10 * time.Millisecond, RetryMax: 40 * time.Millisecond,
		QuarantineAfter: 100, NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	spec := normSpec(100, 100)
	run := execAsync(c, jobs.Campaign{Key: "camp-expiry", RunID: "r1", Spec: spec, Start: 0, Total: 1})

	g1 := leaseEventually(t, c, "w1", 5*time.Second)
	if g1.Chunk != 0 || g1.Trials != 100 {
		t.Fatalf("grant = chunk %d / %d trials, want 0 / 100", g1.Chunk, g1.Trials)
	}
	// w1 never heartbeats: the lease must expire and the chunk re-lease.
	g2 := leaseEventually(t, c, "w2", 5*time.Second)
	if g2.Chunk != 0 || g2.LeaseID == g1.LeaseID {
		t.Fatalf("reassigned grant = chunk %d lease %s, want chunk 0 under a fresh lease (old %s)",
			g2.Chunk, g2.LeaseID, g1.LeaseID)
	}
	if c.Heartbeat("w1", g1.LeaseID) {
		t.Error("expired lease still heartbeats")
	}
	st, err := c.Complete("w2", g2.LeaseID, fakeEnvelope("camp-expiry", 0, 100))
	if err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("Complete = %s, %v; want accepted", st, err)
	}
	run.wait(t)
	if run.err != nil {
		t.Fatalf("ExecuteChunks: %v", run.err)
	}
	if len(run.committed) != 1 || run.committed[0] != 0 {
		t.Fatalf("committed %v, want [0]", run.committed)
	}
}

// TestHeartbeatKeepsLeaseAlive: heartbeats at TTL/3 carry a lease far
// past its TTL without expiry.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: 120 * time.Millisecond, Tick: 20 * time.Millisecond,
		NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	run := execAsync(c, jobs.Campaign{Key: "camp-hb", RunID: "r1", Spec: normSpec(100, 100), Start: 0, Total: 1})
	g := leaseEventually(t, c, "w1", 5*time.Second)
	for end := time.Now().Add(500 * time.Millisecond); time.Now().Before(end); {
		if !c.Heartbeat("w1", g.LeaseID) {
			t.Fatal("live lease refused a heartbeat")
		}
		time.Sleep(40 * time.Millisecond)
	}
	if st, err := c.Complete("w1", g.LeaseID, fakeEnvelope("camp-hb", 0, 100)); err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("Complete = %s, %v; want accepted", st, err)
	}
	run.wait(t)
	if run.err != nil {
		t.Fatalf("ExecuteChunks: %v", run.err)
	}
}

// TestDuplicateAndStaleComplete: redelivering a merged chunk answers
// duplicate while the campaign runs and stale after it ends; commits
// happen exactly once per chunk in order.
func TestDuplicateAndStaleComplete(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: time.Second, Tick: 50 * time.Millisecond, NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	run := execAsync(c, jobs.Campaign{Key: "camp-dup", RunID: "r1", Spec: normSpec(200, 100), Start: 0, Total: 2})

	g0 := leaseEventually(t, c, "w1", 5*time.Second)
	g1 := leaseEventually(t, c, "w2", 5*time.Second)
	if g0.Chunk != 0 || g1.Chunk != 1 {
		t.Fatalf("grants = chunks %d, %d; want 0, 1", g0.Chunk, g1.Chunk)
	}
	if st, err := c.Complete("w1", g0.LeaseID, fakeEnvelope("camp-dup", 0, 100)); err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("first delivery = %s, %v; want accepted", st, err)
	}
	if st, err := c.Complete("w1", g0.LeaseID, fakeEnvelope("camp-dup", 0, 100)); err != nil || st != cluster.CompleteDuplicate {
		t.Fatalf("redelivery = %s, %v; want duplicate", st, err)
	}
	if st, err := c.Complete("w2", g1.LeaseID, fakeEnvelope("camp-dup", 1, 100)); err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("second chunk = %s, %v; want accepted", st, err)
	}
	run.wait(t)
	if run.err != nil {
		t.Fatalf("ExecuteChunks: %v", run.err)
	}
	if len(run.committed) != 2 || run.committed[0] != 0 || run.committed[1] != 1 {
		t.Fatalf("committed %v, want [0 1]", run.committed)
	}
	// The campaign is gone: late deliveries are stale, not errors.
	if st, err := c.Complete("w2", g1.LeaseID, fakeEnvelope("camp-dup", 1, 100)); err != nil || st != cluster.CompleteStale {
		t.Fatalf("post-campaign delivery = %s, %v; want stale", st, err)
	}
}

// TestQuarantineAfterConsecutiveFailures: a worker that keeps failing
// chunks is refused leases while healthy workers still get them.
func TestQuarantineAfterConsecutiveFailures(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: time.Second, Tick: 50 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		QuarantineAfter: 2, QuarantineFor: time.Hour, NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	run := execAsync(c, jobs.Campaign{Key: "camp-q", RunID: "r1", Spec: normSpec(100, 100), Start: 0, Total: 1})

	for i := 0; i < 2; i++ {
		g := leaseEventually(t, c, "bad", 5*time.Second)
		c.Fail("bad", g.LeaseID, "synthetic failure")
	}
	// Quarantined: no lease for "bad" even though the chunk is pending.
	time.Sleep(10 * time.Millisecond) // let the backoff window pass
	if _, ok := c.Lease("bad"); ok {
		t.Error("quarantined worker still gets leases")
	}
	ws := c.Workers()
	var bad *cluster.WorkerInfo
	for i := range ws.Workers {
		if ws.Workers[i].ID == "bad" {
			bad = &ws.Workers[i]
		}
	}
	if bad == nil || !bad.Quarantined {
		t.Errorf("workers listing does not show bad as quarantined: %+v", ws.Workers)
	}
	// A healthy worker finishes the campaign.
	g := leaseEventually(t, c, "good", 5*time.Second)
	if st, err := c.Complete("good", g.LeaseID, fakeEnvelope("camp-q", 0, 100)); err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("Complete = %s, %v; want accepted", st, err)
	}
	run.wait(t)
	if run.err != nil {
		t.Fatalf("ExecuteChunks: %v", run.err)
	}
}

// TestMalformedEnvelopeRejected: trial-count mismatches and partial
// results must not enter a merge, and the delivery is an error.
func TestMalformedEnvelopeRejected(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: time.Second, Tick: 50 * time.Millisecond,
		QuarantineAfter: 100, NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	run := execAsync(c, jobs.Campaign{Key: "camp-bad", RunID: "r1", Spec: normSpec(100, 100), Start: 0, Total: 1})
	g := leaseEventually(t, c, "w1", 5*time.Second)

	wrong := fakeEnvelope("camp-bad", 0, 50) // 50 trials, chunk wants 100
	if _, err := c.Complete("w1", g.LeaseID, wrong); err == nil {
		t.Error("trial-count mismatch accepted")
	}
	partial := fakeEnvelope("camp-bad", 0, 100)
	partial.Result.Partial = true
	if _, err := c.Complete("w1", g.LeaseID, partial); err == nil {
		t.Error("partial result accepted")
	}
	// The chunk is still completable with a correct envelope.
	if st, err := c.Complete("w1", g.LeaseID, fakeEnvelope("camp-bad", 0, 100)); err != nil || st != cluster.CompleteAccepted {
		t.Fatalf("Complete = %s, %v; want accepted", st, err)
	}
	run.wait(t)
	if run.err != nil {
		t.Fatalf("ExecuteChunks: %v", run.err)
	}
}

// TestExecuteChunksValidation rejects malformed campaigns up front.
func TestExecuteChunksValidation(t *testing.T) {
	c := cluster.New(cluster.Options{Logf: nolog})
	defer c.Close()
	commit := func(int, citadel.Result) error { return nil }
	spec := normSpec(100, 100)
	cases := []struct {
		name string
		cam  jobs.Campaign
	}{
		{"no key", jobs.Campaign{Spec: spec, Total: 1}},
		{"bad range", jobs.Campaign{Key: "k", Spec: spec, Start: 2, Total: 1}},
		{"unnormalized", jobs.Campaign{Key: "k", Spec: jobs.ReliabilitySpec{Scheme: "Citadel"}, Total: 1}},
	}
	for _, tc := range cases {
		if err := c.ExecuteChunks(context.Background(), tc.cam, commit); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// A fully committed range is a no-op success.
	if err := c.ExecuteChunks(context.Background(), jobs.Campaign{Key: "k", Spec: spec, Start: 1, Total: 1}, commit); err != nil {
		t.Errorf("empty range: %v", err)
	}
	// After Close, campaigns are refused.
	c.Close()
	if err := c.ExecuteChunks(context.Background(), jobs.Campaign{Key: "k2", Spec: spec, Start: 0, Total: 1}, commit); err != cluster.ErrClosed {
		t.Errorf("post-close ExecuteChunks = %v, want ErrClosed", err)
	}
}

// TestCancelledCampaignRevokesLeases: cancelling ExecuteChunks' context
// aborts the campaign and revokes its outstanding leases.
func TestCancelledCampaignRevokesLeases(t *testing.T) {
	c := cluster.New(cluster.Options{
		LeaseTTL: time.Second, Tick: 50 * time.Millisecond, NoWorkerGrace: -1, Logf: nolog,
	})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.ExecuteChunks(ctx, jobs.Campaign{Key: "camp-c", RunID: "r1", Spec: normSpec(100, 100), Start: 0, Total: 1},
			func(int, citadel.Result) error { return nil })
	}()
	g := leaseEventually(t, c, "w1", 5*time.Second)
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("ExecuteChunks = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExecuteChunks did not return after cancel")
	}
	if c.Heartbeat("w1", g.LeaseID) {
		t.Error("lease of a cancelled campaign still heartbeats")
	}
	if st, err := c.Complete("w1", g.LeaseID, fakeEnvelope("camp-c", 0, 100)); err != nil || st != cluster.CompleteStale {
		t.Errorf("delivery to cancelled campaign = %s, %v; want stale", st, err)
	}
}

// TestDistributedRareEventMatchesLocal extends the determinism contract
// to weighted campaigns: an importance-sampled campaign distributed
// across workers must carry its likelihood-ratio sums through the lease
// protocol and the coordinator's merge fold bit-identically to an
// in-process run.
func TestDistributedRareEventMatchesLocal(t *testing.T) {
	spec := jobs.Spec{Reliability: &jobs.ReliabilitySpec{
		Scheme:           "1DP",
		Trials:           4000,
		CheckpointTrials: 500,
		Workers:          1,
		Seed:             7,
		TSVFIT:           1430,
		RareEvent:        true,
		BiasFactor:       8,
	}}
	want := runLocal(t, spec)

	var ref faultsim.Result
	if err := json.Unmarshal(want, &ref); err != nil {
		t.Fatalf("unmarshal local result: %v", err)
	}
	if !ref.Weighted || ref.FailWeight <= 0 {
		t.Fatalf("local rare campaign carries no weighted signal: %+v", ref)
	}

	h := newHarness(t, cluster.Options{
		LeaseTTL:      2 * time.Second,
		Tick:          50 * time.Millisecond,
		NoWorkerGrace: 10 * time.Second,
	})
	h.startWorker(t, "w0")
	h.startWorker(t, "w1")
	got := runCampaign(t, h.orch, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("distributed weighted result differs from local:\n got %s\nwant %s", got, want)
	}
}
