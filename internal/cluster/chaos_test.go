package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// chaosTransport injects transport-level failure into the worker side of
// the lease protocol:
//
//   - heartbeats are randomly dropped (simulating loss/partition), so
//     leases expire under the coordinator's nose while the worker still
//     computes;
//   - complete deliveries are duplicated (the retried-POST case), so the
//     coordinator's per-chunk dedup is exercised on every finish.
//
// The campaign result must still be bit-identical to a quiet local run —
// that is the whole point of the protocol.
type chaosTransport struct {
	inner http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	dropHeartbeat float64 // probability a heartbeat POST is eaten
	dupComplete   bool    // deliver every complete twice
}

func (c *chaosTransport) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch {
	case strings.HasSuffix(req.URL.Path, cluster.HeartbeatPath):
		if c.roll() < c.dropHeartbeat {
			return nil, fmt.Errorf("chaos: heartbeat dropped")
		}
	case strings.HasSuffix(req.URL.Path, cluster.CompletePath) && c.dupComplete:
		// First delivery goes through; its response is discarded and the
		// clone's response is returned, exactly like a client retrying a
		// POST whose response it never saw.
		clone := req.Clone(req.Context())
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			clone.Body = body
		}
		first, err := c.inner.RoundTrip(req)
		if err == nil {
			first.Body.Close()
		}
		return c.inner.RoundTrip(clone)
	}
	return c.inner.RoundTrip(req)
}

// TestChaosCampaign runs a distributed campaign while workers are
// SIGKILLed at random (abrupt context cancellation: no farewell request,
// in-flight chunk lost), heartbeats are dropped, and every chunk result
// is delivered twice. The campaign must finish with result bytes
// identical to a quiet in-process run, and the duplicate-dedup path must
// actually have fired. Run under -race via `make stress-cluster`;
// skipped with -short.
func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test; skipped with -short")
	}
	spec := testSpec(23, 60000, 500) // 120 chunks
	want := runLocal(t, spec)

	h := newHarness(t, cluster.Options{
		LeaseTTL:  250 * time.Millisecond,
		Tick:      40 * time.Millisecond,
		RetryBase: 20 * time.Millisecond,
		RetryMax:  100 * time.Millisecond,
		// Chaos kills are not the workers' fault: keep the fleet leasable
		// instead of quarantining every victim.
		QuarantineAfter: 1 << 20,
		NoWorkerGrace:   10 * time.Second,
	})
	chaos := &chaosTransport{
		inner:         http.DefaultTransport,
		rng:           rand.New(rand.NewSource(23)),
		dropHeartbeat: 0.25,
		dupComplete:   true,
	}
	client := &http.Client{Transport: chaos, Timeout: 10 * time.Second}

	// Killer: keep ~3 workers alive, SIGKILLing one at random every few
	// hundred milliseconds and spawning a fresh replacement (new ID, as a
	// restarted process would have).
	killerCtx, stopKiller := context.WithCancel(context.Background())
	defer stopKiller()
	var wg sync.WaitGroup
	spawn := func(id string) context.CancelFunc {
		ctx, cancel := context.WithCancel(killerCtx)
		w := cluster.NewWorker(cluster.WorkerOptions{
			BaseURL:      h.srv.URL,
			ID:           id,
			Client:       client,
			PollInterval: 20 * time.Millisecond,
			Logf:         nolog,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
		return cancel
	}
	const fleet = 3
	kills := make([]context.CancelFunc, fleet)
	for i := 0; i < fleet; i++ {
		kills[i] = spawn(fmt.Sprintf("chaos-w%d", i))
	}
	next := fleet
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-killerCtx.Done():
				return
			case <-time.After(time.Duration(50+rng.Intn(120)) * time.Millisecond):
				victim := rng.Intn(fleet)
				kills[victim]() // SIGKILL: no farewell, chunk abandoned mid-flight
				kills[victim] = spawn(fmt.Sprintf("chaos-w%d", next))
				next++
			}
		}
	}()

	dupBefore := counter("citadel_cluster_duplicate_results_total")
	chunksBefore := counter("citadel_cluster_chunks_completed_total")
	got := runCampaign(t, h.orch, spec)
	stopKiller()
	wg.Wait()

	if !bytes.Equal(got, want) {
		t.Errorf("chaos result differs from quiet local run:\n got %s\nwant %s", got, want)
	}
	if d := counter("citadel_cluster_chunks_completed_total") - chunksBefore; d < 1 {
		t.Errorf("no chunks completed via workers (delta %d); chaos test never exercised the cluster", d)
	}
	if d := counter("citadel_cluster_duplicate_results_total") - dupBefore; d < 1 {
		t.Errorf("duplicate deliveries never hit the dedup path (delta %d)", d)
	}
	t.Logf("chaos: %d worker chunk completions, %d duplicates deduped, %d lease expiries, %d reassignments, %d workers spawned",
		counter("citadel_cluster_chunks_completed_total")-chunksBefore,
		counter("citadel_cluster_duplicate_results_total")-dupBefore,
		counter("citadel_cluster_lease_expiries_total"),
		counter("citadel_cluster_reassignments_total"), next)
}
