// Package cluster distributes reliability campaigns across worker
// processes, built so that partial failure is the normal case rather
// than the exception — the system-level analogue of the large-granularity
// fault model the Citadel paper studies in silicon.
//
// A Coordinator implements jobs.ChunkExecutor: the orchestrator hands it
// a campaign's chunk range, and the coordinator leases chunks one at a
// time to pulling workers. Each lease has a deadline; heartbeats extend
// it; a lease that expires (worker death, partition, stalled heartbeats)
// requeues its chunk under exponential backoff with jitter, and a worker
// that loses or fails enough consecutive chunks is quarantined so a
// flapping node cannot starve a campaign. Completed chunks are committed
// back to the orchestrator in strictly increasing chunk order — the same
// left-to-right faultsim.Merge fold, and the same per-chunk checkpoint,
// as local execution — so an N-worker campaign is bit-identical to a
// 1-worker or in-process run, a coordinator crash resumes from its last
// checkpoint, and duplicate deliveries (retried POSTs, a reassigned
// chunk finishing twice) dedup by chunk index with nothing lost.
//
// If every worker disappears, the coordinator does not wedge the
// campaign: after NoWorkerGrace with no live workers it returns
// ErrNoWorkers and the orchestrator finishes the remaining chunks
// locally in-process.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	citadel "repro"
	"repro/internal/faultsim"
	"repro/internal/jobs"
)

// Coordinator errors.
var (
	// ErrNoWorkers aborts a campaign that had pending chunks but no live
	// worker for NoWorkerGrace; the jobs orchestrator reacts by running
	// the rest of the campaign locally.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrClosed rejects campaigns after Close.
	ErrClosed = errors.New("cluster: coordinator closed")
)

// Options tunes the lease protocol. The zero value selects defaults
// sized for WAN-ish deployments; tests shrink everything.
type Options struct {
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 15s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// Tick is the expiry-scan interval (default LeaseTTL/4).
	Tick time.Duration
	// RetryBase/RetryMax bound the per-chunk reassignment backoff:
	// attempt k waits an exponentially grown, jittered delay in
	// [d/2, d] with d = min(RetryBase<<(k-1), RetryMax) before the
	// chunk may be leased again (defaults 1s, 30s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// QuarantineAfter is the consecutive chunk failures (expiries or
	// explicit fail reports) that quarantine a worker (default 3).
	QuarantineAfter int
	// QuarantineFor is how long a quarantined worker is refused leases
	// (default 1m).
	QuarantineFor time.Duration
	// LivenessWindow is how recently a worker must have contacted the
	// coordinator to count as live (default 3×LeaseTTL).
	LivenessWindow time.Duration
	// NoWorkerGrace is how long a campaign with pending chunks may sit
	// with zero live workers before the coordinator hands it back for
	// local execution via ErrNoWorkers (default 10s; negative waits
	// forever).
	NoWorkerGrace time.Duration
	// Seed seeds the backoff-jitter RNG (0 derives from the clock; the
	// jitter does not affect campaign results, only scheduling).
	Seed int64
	// Logf sinks coordinator logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.Tick <= 0 {
		o.Tick = o.LeaseTTL / 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Second
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 30 * time.Second
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 3
	}
	if o.QuarantineFor <= 0 {
		o.QuarantineFor = time.Minute
	}
	if o.LivenessWindow <= 0 {
		o.LivenessWindow = 3 * o.LeaseTTL
	}
	if o.NoWorkerGrace == 0 {
		o.NoWorkerGrace = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Per-chunk lease states: pending → leased → done, with leased → pending
// on expiry or failure (backoff applies before the next lease).
const (
	chunkPending uint8 = iota
	chunkLeased
	chunkDone
)

// chunkInfo is the coordinator's view of one chunk of one campaign.
type chunkInfo struct {
	status    uint8
	attempts  int       // lost/failed leases so far, drives backoff
	notBefore time.Time // earliest next lease (backoff)
	leaseID   string    // current lease when status is chunkLeased
}

// campaign is one in-flight distributed campaign.
type campaign struct {
	key   string
	runID string
	spec  jobs.ReliabilitySpec
	total int

	chunks   []chunkInfo
	next     int // next chunk to commit (contiguous prefix is merged)
	buffered map[int]citadel.Result

	commit     func(int, citadel.Result) error
	committing bool // a goroutine is draining buffered commits

	stalledSince time.Time // first tick with zero live workers
	finished     bool
	err          error
	done         chan struct{}
}

// lease is one granted chunk lease.
type lease struct {
	id       string
	workerID string
	cp       *campaign
	chunk    int
	deadline time.Time
}

// workerState is the coordinator's ledger for one worker ID.
type workerState struct {
	id               string
	lastSeen         time.Time
	fails            int // consecutive chunk failures
	quarantinedUntil time.Time
	leases           int
	chunksDone       int64
}

// Coordinator shards campaigns into chunk leases for pulling workers.
// It implements jobs.ChunkExecutor.
type Coordinator struct {
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond // signals commit-drain completion to aborters
	campaigns map[string]*campaign
	leases    map[string]*lease
	workers   map[string]*workerState
	rng       *rand.Rand
	leaseSeq  int64
	closed    bool

	closedCh chan struct{}
	wg       sync.WaitGroup
}

// New builds a Coordinator and starts its expiry ticker.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:      opts,
		campaigns: make(map[string]*campaign),
		leases:    make(map[string]*lease),
		workers:   make(map[string]*workerState),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		closedCh:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(opts.Tick)
		defer t.Stop()
		for {
			select {
			case <-c.closedCh:
				return
			case now := <-t.C:
				c.tick(now)
			}
		}
	}()
	return c
}

// Close aborts every in-flight campaign with ErrClosed (the orchestrator
// falls back to local execution or parks the job checkpointed) and stops
// the ticker. Idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.closedCh)
	for _, cp := range c.campaigns {
		c.abortLocked(cp, ErrClosed)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// ExecuteChunks implements jobs.ChunkExecutor: it registers the campaign
// for leasing and blocks until every chunk is committed, the context is
// cancelled, or the campaign is handed back (ErrNoWorkers, ErrClosed).
func (c *Coordinator) ExecuteChunks(ctx context.Context, cam jobs.Campaign, commit func(chunk int, res citadel.Result) error) error {
	switch {
	case commit == nil:
		return fmt.Errorf("cluster: nil commit")
	case cam.Key == "":
		return fmt.Errorf("cluster: campaign without key")
	case cam.Total <= 0 || cam.Start < 0 || cam.Start > cam.Total:
		return fmt.Errorf("cluster: bad chunk range [%d, %d)", cam.Start, cam.Total)
	case cam.Spec.CheckpointTrials <= 0 || cam.Spec.Trials <= 0:
		return fmt.Errorf("cluster: unnormalized spec (trials=%d, checkpointTrials=%d)",
			cam.Spec.Trials, cam.Spec.CheckpointTrials)
	}
	if cam.Start == cam.Total {
		return nil
	}
	cp := &campaign{
		key:      cam.Key,
		runID:    cam.RunID,
		spec:     cam.Spec,
		total:    cam.Total,
		chunks:   make([]chunkInfo, cam.Total),
		next:     cam.Start,
		buffered: make(map[int]citadel.Result),
		commit:   commit,
		done:     make(chan struct{}),
	}
	for i := 0; i < cam.Start; i++ {
		cp.chunks[i].status = chunkDone
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.campaigns[cp.key] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: campaign %.12s already active", cp.key)
	}
	c.campaigns[cp.key] = cp
	mActiveCampaigns.Set(int64(len(c.campaigns)))
	c.mu.Unlock()
	c.opts.Logf("cluster: campaign=%.12s run=%s chunks %d..%d registered", cp.key, cp.runID, cam.Start, cam.Total)

	select {
	case <-cp.done:
	case <-ctx.Done():
		c.mu.Lock()
		c.abortLocked(cp, ctx.Err())
		c.mu.Unlock()
	case <-c.closedCh:
		c.mu.Lock()
		c.abortLocked(cp, ErrClosed)
		c.mu.Unlock()
	}
	// abortLocked/finishLocked close done only after any in-flight
	// commit drain has drained, so once we pass this receive no commit
	// callback is running or will run — the orchestrator may safely
	// resume local execution on the same accumulator.
	<-cp.done
	c.mu.Lock()
	err := cp.err
	c.mu.Unlock()
	return err
}

// finishLocked completes a campaign: every chunk committed.
func (c *Coordinator) finishLocked(cp *campaign) {
	if cp.finished {
		return
	}
	cp.finished = true
	delete(c.campaigns, cp.key)
	mActiveCampaigns.Set(int64(len(c.campaigns)))
	c.dropCampaignLeasesLocked(cp)
	close(cp.done)
	c.opts.Logf("cluster: campaign=%.12s run=%s complete (%d chunks)", cp.key, cp.runID, cp.total)
}

// abortLocked hands a campaign back with err. It waits out any in-flight
// commit drain before closing done, so callers of ExecuteChunks never
// race a live commit callback.
func (c *Coordinator) abortLocked(cp *campaign, err error) {
	if cp.finished {
		return
	}
	cp.finished = true
	cp.err = err
	delete(c.campaigns, cp.key)
	mActiveCampaigns.Set(int64(len(c.campaigns)))
	c.dropCampaignLeasesLocked(cp)
	for cp.committing {
		c.cond.Wait()
	}
	close(cp.done)
	c.opts.Logf("cluster: campaign=%.12s run=%s aborted at chunk %d/%d: %v", cp.key, cp.runID, cp.next, cp.total, err)
}

// dropCampaignLeasesLocked revokes every lease of cp; holders learn on
// their next heartbeat and abandon the chunk.
func (c *Coordinator) dropCampaignLeasesLocked(cp *campaign) {
	for id, l := range c.leases {
		if l.cp == cp {
			if w := c.workers[l.workerID]; w != nil && w.leases > 0 {
				w.leases--
			}
			delete(c.leases, id)
		}
	}
}

// touchLocked records contact from a worker, creating its ledger entry
// on first sight.
func (c *Coordinator) touchLocked(workerID string, now time.Time) *workerState {
	w := c.workers[workerID]
	if w == nil {
		w = &workerState{id: workerID}
		c.workers[workerID] = w
		c.opts.Logf("cluster: worker=%s first contact", workerID)
	}
	w.lastSeen = now
	return w
}

// Lease grants one chunk to workerID, or reports no work (nothing
// pending, everything backed off, or the worker is quarantined).
func (c *Coordinator) Lease(workerID string) (LeaseGrant, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return LeaseGrant{}, false
	}
	w := c.touchLocked(workerID, now)
	if now.Before(w.quarantinedUntil) {
		return LeaseGrant{}, false
	}
	// Deterministic scan order keeps scheduling fair across campaigns.
	keys := make([]string, 0, len(c.campaigns))
	for k := range c.campaigns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cp := c.campaigns[k]
		for i := cp.next; i < cp.total; i++ {
			ci := &cp.chunks[i]
			if ci.status != chunkPending || now.Before(ci.notBefore) {
				continue
			}
			c.leaseSeq++
			id := fmt.Sprintf("l-%d", c.leaseSeq)
			ci.status = chunkLeased
			ci.leaseID = id
			c.leases[id] = &lease{id: id, workerID: workerID, cp: cp, chunk: i, deadline: now.Add(c.opts.LeaseTTL)}
			w.leases++
			mLeasesGranted.Inc()
			return LeaseGrant{
				LeaseID:     id,
				CampaignKey: cp.key,
				RunID:       cp.runID,
				Chunk:       i,
				Trials:      cp.spec.ChunkTrials(i),
				Spec:        cp.spec,
				TTLMillis:   c.opts.LeaseTTL.Milliseconds(),
			}, true
		}
	}
	return LeaseGrant{}, false
}

// Heartbeat extends a lease. False means the lease is gone — expired and
// reassigned, or its campaign ended — and the worker must abandon the
// chunk.
func (c *Coordinator) Heartbeat(workerID, leaseID string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(workerID, now)
	l := c.leases[leaseID]
	if l == nil || l.workerID != workerID {
		return false
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	mHeartbeats.Inc()
	return true
}

// Complete delivers a chunk result. Idempotent by chunk index: an
// already-merged chunk answers CompleteDuplicate and the payload is
// discarded (chunk results are deterministic, so duplicates are
// interchangeable). A result for an unknown campaign answers
// CompleteStale. Malformed envelopes are errors and count toward the
// worker's quarantine threshold.
func (c *Coordinator) Complete(workerID, leaseID string, env faultsim.ChunkEnvelope) (CompleteStatus, error) {
	now := time.Now()
	c.mu.Lock()
	w := c.touchLocked(workerID, now)
	cp := c.campaigns[env.CampaignKey]
	if cp == nil {
		mStaleResults.Inc()
		c.mu.Unlock()
		return CompleteStale, nil
	}
	err := env.Validate()
	if err == nil && env.Chunk >= cp.total {
		err = fmt.Errorf("cluster: chunk %d out of range [0, %d)", env.Chunk, cp.total)
	}
	if err == nil && env.Trials != cp.spec.ChunkTrials(env.Chunk) {
		err = fmt.Errorf("cluster: chunk %d expects %d trials, got %d",
			env.Chunk, cp.spec.ChunkTrials(env.Chunk), env.Trials)
	}
	if err != nil {
		c.workerFailureLocked(w, now, err.Error())
		c.mu.Unlock()
		return "", err
	}
	ci := &cp.chunks[env.Chunk]
	if ci.status == chunkDone {
		c.releaseLeaseLocked(leaseID, workerID)
		mDuplicateResults.Inc()
		c.mu.Unlock()
		return CompleteDuplicate, nil
	}
	// Accept the work whoever delivers it first: if the chunk was
	// reassigned and this is the original (slow) worker racing the new
	// lease holder, the result is identical either way. Revoke whichever
	// lease is currently attached so the other holder stops early.
	if ci.leaseID != "" {
		c.releaseLeaseLocked(ci.leaseID, "")
	}
	c.releaseLeaseLocked(leaseID, workerID)
	ci.status = chunkDone
	ci.leaseID = ""
	w.fails = 0
	w.chunksDone++
	cp.buffered[env.Chunk] = env.Result
	mChunksCompleted.Inc()
	c.mu.Unlock()
	c.drainCommits(cp)
	return CompleteAccepted, nil
}

// releaseLeaseLocked removes a lease (when owner is non-empty, only if
// held by that worker) and decrements its holder's lease count.
func (c *Coordinator) releaseLeaseLocked(leaseID, owner string) {
	l := c.leases[leaseID]
	if l == nil || (owner != "" && l.workerID != owner) {
		return
	}
	if w := c.workers[l.workerID]; w != nil && w.leases > 0 {
		w.leases--
	}
	delete(c.leases, leaseID)
}

// drainCommits folds buffered results into the campaign in chunk order,
// calling commit outside the coordinator lock. The committing flag
// serializes drains so commits stay ordered; aborters wait for it.
func (c *Coordinator) drainCommits(cp *campaign) {
	c.mu.Lock()
	if cp.committing || cp.finished {
		c.mu.Unlock()
		return
	}
	cp.committing = true
	for !cp.finished {
		res, ok := cp.buffered[cp.next]
		if !ok {
			break
		}
		chunk := cp.next
		delete(cp.buffered, chunk)
		c.mu.Unlock()
		err := cp.commit(chunk, res)
		c.mu.Lock()
		if err != nil {
			cp.committing = false
			c.cond.Broadcast()
			c.abortLocked(cp, err)
			c.mu.Unlock()
			return
		}
		cp.next = chunk + 1
	}
	cp.committing = false
	c.cond.Broadcast()
	if !cp.finished && cp.next == cp.total {
		c.finishLocked(cp)
	}
	c.mu.Unlock()
}

// Fail reports that a worker could not run its leased chunk; the chunk
// requeues immediately (under backoff) instead of waiting out the lease.
func (c *Coordinator) Fail(workerID, leaseID, reason string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchLocked(workerID, now)
	l := c.leases[leaseID]
	if l == nil || l.workerID != workerID {
		return
	}
	c.requeueChunkLocked(l, now)
	c.workerFailureLocked(w, now, reason)
}

// requeueChunkLocked returns a leased chunk to pending with exponential
// backoff + jitter, and drops the lease.
func (c *Coordinator) requeueChunkLocked(l *lease, now time.Time) {
	ci := &l.cp.chunks[l.chunk]
	if ci.status == chunkLeased && ci.leaseID == l.id {
		ci.status = chunkPending
		ci.leaseID = ""
		ci.attempts++
		ci.notBefore = now.Add(c.backoffLocked(ci.attempts))
		mReassignments.Inc()
	}
	c.releaseLeaseLocked(l.id, "")
}

// backoffLocked returns the jittered exponential delay for the k-th
// lost lease of a chunk: uniform in [d/2, d], d = min(base<<(k-1), max).
func (c *Coordinator) backoffLocked(attempts int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempts && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// workerFailureLocked charges one chunk failure to a worker and
// quarantines it past the threshold.
func (c *Coordinator) workerFailureLocked(w *workerState, now time.Time, reason string) {
	w.fails++
	if w.fails >= c.opts.QuarantineAfter && !now.Before(w.quarantinedUntil) {
		w.quarantinedUntil = now.Add(c.opts.QuarantineFor)
		w.fails = 0
		mQuarantines.Inc()
		c.opts.Logf("cluster: worker=%s quarantined for %s after %d consecutive failures (last: %s)",
			w.id, c.opts.QuarantineFor, c.opts.QuarantineAfter, reason)
	}
}

// tick expires overdue leases, refreshes the live-worker gauge, and
// aborts campaigns that have outwaited NoWorkerGrace with no live
// workers.
func (c *Coordinator) tick(now time.Time) {
	c.mu.Lock()
	for _, l := range c.leases {
		if now.After(l.deadline) {
			mLeaseExpiries.Inc()
			c.opts.Logf("cluster: lease=%s worker=%s campaign=%.12s chunk=%d expired; requeueing",
				l.id, l.workerID, l.cp.key, l.chunk)
			c.requeueChunkLocked(l, now)
			if w := c.workers[l.workerID]; w != nil {
				c.workerFailureLocked(w, now, "lease expired")
			}
		}
	}
	live := c.liveWorkersLocked(now)
	mLiveWorkers.Set(int64(live))
	var aborts []*campaign
	for _, cp := range c.campaigns {
		if live > 0 {
			cp.stalledSince = time.Time{}
			continue
		}
		switch {
		case cp.stalledSince.IsZero():
			cp.stalledSince = now
		case c.opts.NoWorkerGrace >= 0 && now.Sub(cp.stalledSince) >= c.opts.NoWorkerGrace:
			aborts = append(aborts, cp)
		}
	}
	for _, cp := range aborts {
		mCampaignsFellBack.Inc()
		c.abortLocked(cp, ErrNoWorkers)
	}
	c.mu.Unlock()
}

// liveWorkersLocked counts workers seen within the liveness window and
// not quarantined.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.opts.LivenessWindow && !now.Before(w.quarantinedUntil) {
			n++
		}
	}
	return n
}

// LeaseTTL reports the configured lease TTL, echoed to workers in
// heartbeat responses.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opts.LeaseTTL }

// LiveWorkers reports the current live-worker count (readyz).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

// Workers returns the ops view of every worker ever seen.
func (c *Coordinator) Workers() WorkersResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := WorkersResponse{Workers: make([]WorkerInfo, 0, len(c.workers))}
	for _, w := range c.workers {
		live := now.Sub(w.lastSeen) <= c.opts.LivenessWindow && !now.Before(w.quarantinedUntil)
		if live {
			out.LiveWorkers++
		}
		out.Workers = append(out.Workers, WorkerInfo{
			ID:                w.id,
			Live:              live,
			LastSeenMillisAgo: now.Sub(w.lastSeen).Milliseconds(),
			ActiveLeases:      w.leases,
			ChunksDone:        w.chunksDone,
			ConsecutiveFails:  w.fails,
			Quarantined:       now.Before(w.quarantinedUntil),
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].ID < out.Workers[j].ID })
	return out
}
