package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log"
	mrand "math/rand"
	"net/http"
	"time"

	"repro/internal/faultsim"
	"repro/internal/jobs"
)

// WorkerOptions configures a pulling worker.
type WorkerOptions struct {
	// BaseURL is the coordinator, e.g. "http://coordinator:8080".
	BaseURL string
	// ID names this worker in the coordinator's ledger (default a
	// random "w-xxxxxxxx"). Restarted processes should use fresh IDs so
	// the quarantine record of a crashed incarnation does not follow
	// them.
	ID string
	// Client issues the HTTP requests (default: 30s timeout). Tests
	// inject chaos here via a custom Transport.
	Client *http.Client
	// PollInterval is the idle delay between lease requests when the
	// coordinator has no work, jittered to ±50% so a fleet of idle
	// workers does not poll in lockstep (default 500ms).
	PollInterval time.Duration
	// Logf sinks worker logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		o.ID = fmt.Sprintf("w-%08x", binary.LittleEndian.Uint32(b[:]))
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Worker is a stateless campaign-chunk executor: it pulls a lease from
// the coordinator, heartbeats it while the chunk simulates locally, and
// delivers the result envelope. Everything needed to run a chunk arrives
// in the lease grant, so a worker owns no durable state — killing one
// loses at most the chunk it was computing, which the coordinator
// reassigns when the lease expires.
//
// A Worker runs one chunk at a time; run several Workers (distinct IDs)
// for parallelism. Run is not safe to call concurrently on one Worker.
type Worker struct {
	opts     WorkerOptions
	rng      *mrand.Rand // poll jitter; Run's goroutine only
	leaseErr int         // consecutive lease-request transport errors
}

// NewWorker builds a Worker.
func NewWorker(opts WorkerOptions) *Worker {
	opts = opts.withDefaults()
	seed := int64(0)
	for _, c := range opts.ID {
		seed = seed*31 + int64(c)
	}
	return &Worker{opts: opts, rng: mrand.New(mrand.NewSource(seed ^ time.Now().UnixNano()))}
}

// ID returns the worker's coordinator-facing identity.
func (w *Worker) ID() string { return w.opts.ID }

// Run pulls and executes chunks until ctx is cancelled, then returns
// ctx.Err(). Cancellation mid-chunk abandons the chunk without any
// farewell message — exactly what a SIGKILL looks like to the
// coordinator — and the lease machinery requeues it.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, ok, err := w.requestLease(ctx)
		switch {
		case err != nil:
			if ctx.Err() == nil {
				w.leaseErr++
				w.opts.Logf("cluster: worker=%s lease request: %v", w.opts.ID, err)
			}
			if !sleepCtx(ctx, w.errDelay()) {
				return ctx.Err()
			}
		case !ok:
			w.leaseErr = 0
			if !sleepCtx(ctx, w.idleDelay()) {
				return ctx.Err()
			}
		default:
			w.leaseErr = 0
			w.runLease(ctx, grant)
		}
	}
}

// idleDelay jitters the poll interval across [0.5p, 1.5p].
func (w *Worker) idleDelay() time.Duration {
	p := w.opts.PollInterval
	return p/2 + time.Duration(w.rng.Int63n(int64(p)+1))
}

// errDelay backs off lease-request transport errors exponentially up to
// ~8× the poll interval, jittered.
func (w *Worker) errDelay() time.Duration {
	p := w.opts.PollInterval
	for i := 1; i < w.leaseErr && p < 8*w.opts.PollInterval; i++ {
		p *= 2
	}
	return p/2 + time.Duration(w.rng.Int63n(int64(p)+1))
}

// sleepCtx sleeps d or until ctx cancels; false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// runLease executes one granted chunk: heartbeat in the background,
// simulate, deliver. A lease revocation (heartbeat answered "gone")
// cancels the simulation mid-chunk — the partial result is discarded, as
// partial chunk statistics must never enter a merge.
func (w *Worker) runLease(ctx context.Context, grant LeaseGrant) {
	chunkCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbEvery := time.Duration(grant.TTLMillis) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbDone := make(chan struct{})
	go w.heartbeatLoop(chunkCtx, cancel, grant, hbEvery, hbDone)

	runID := fmt.Sprintf("%s/c%d", grant.RunID, grant.Chunk)
	res, err := jobs.RunChunk(chunkCtx, &grant.Spec, grant.Chunk, runID, nil)
	cancel()
	<-hbDone
	switch {
	case err != nil:
		// The spec itself is unrunnable here (e.g. unknown scheme):
		// report failure so the chunk requeues now, not at lease expiry.
		w.opts.Logf("cluster: worker=%s chunk=%d unrunnable: %v", w.opts.ID, grant.Chunk, err)
		w.postFail(ctx, grant, err.Error())
	case res.Partial:
		// Shutdown or lease revocation mid-chunk: abandon silently; the
		// coordinator's lease (or its new holder) covers the chunk.
		w.opts.Logf("cluster: worker=%s campaign=%.12s chunk=%d abandoned (%d/%d trials)",
			w.opts.ID, grant.CampaignKey, grant.Chunk, res.Trials, grant.Trials)
	default:
		env := faultsim.ChunkEnvelope{
			CampaignKey: grant.CampaignKey,
			Chunk:       grant.Chunk,
			Trials:      grant.Trials,
			Result:      res,
		}
		w.deliver(ctx, grant, env)
	}
}

// heartbeatLoop extends the lease at the given cadence until the chunk
// context ends. Transport errors are tolerated (the lease survives
// skipped beats up to its TTL); an explicit "gone" cancels the chunk.
func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelFunc, grant LeaseGrant, every time.Duration, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp HeartbeatResponse
			status, err := w.postJSON(ctx, HeartbeatPath,
				HeartbeatRequest{WorkerID: w.opts.ID, LeaseID: grant.LeaseID}, &resp)
			switch {
			case err != nil:
				if ctx.Err() == nil {
					w.opts.Logf("cluster: worker=%s heartbeat lease=%s: %v", w.opts.ID, grant.LeaseID, err)
				}
			case status != http.StatusOK || !resp.Extended:
				w.opts.Logf("cluster: worker=%s lease=%s revoked; abandoning chunk %d",
					w.opts.ID, grant.LeaseID, grant.Chunk)
				cancel()
				return
			}
		}
	}
}

// deliver posts the completed chunk, retrying transient transport
// failures a few times. Delivery uses the worker's run context: a killed
// worker drops its result (the chunk requeues at lease expiry), which
// keeps the failure model honest.
func (w *Worker) deliver(ctx context.Context, grant LeaseGrant, env faultsim.ChunkEnvelope) {
	req := CompleteRequest{WorkerID: w.opts.ID, LeaseID: grant.LeaseID, Envelope: &env}
	for attempt := 0; attempt < 3; attempt++ {
		var resp CompleteResponse
		status, err := w.postJSON(ctx, CompletePath, req, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			if resp.Status != CompleteAccepted {
				w.opts.Logf("cluster: worker=%s campaign=%.12s chunk=%d delivered as %s",
					w.opts.ID, grant.CampaignKey, grant.Chunk, resp.Status)
			}
			return
		case err == nil:
			// 4xx: the coordinator rejected the envelope; retrying the
			// same bytes cannot help.
			w.opts.Logf("cluster: worker=%s chunk=%d delivery rejected (HTTP %d)", w.opts.ID, grant.Chunk, status)
			return
		case ctx.Err() != nil:
			return
		}
		if !sleepCtx(ctx, time.Duration(attempt+1)*200*time.Millisecond) {
			return
		}
	}
	w.opts.Logf("cluster: worker=%s chunk=%d delivery failed; lease expiry will requeue it", w.opts.ID, grant.Chunk)
}

// postFail reports an unrunnable chunk.
func (w *Worker) postFail(ctx context.Context, grant LeaseGrant, reason string) {
	_, err := w.postJSON(ctx, CompletePath,
		CompleteRequest{WorkerID: w.opts.ID, LeaseID: grant.LeaseID, Failed: true, Reason: reason}, nil)
	if err != nil && ctx.Err() == nil {
		w.opts.Logf("cluster: worker=%s reporting failed chunk %d: %v", w.opts.ID, grant.Chunk, err)
	}
}

// requestLease asks for work. ok is false when the coordinator has none
// (HTTP 204).
func (w *Worker) requestLease(ctx context.Context) (LeaseGrant, bool, error) {
	var grant LeaseGrant
	status, err := w.postJSON(ctx, LeasePath, LeaseRequest{WorkerID: w.opts.ID}, &grant)
	switch {
	case err != nil:
		return LeaseGrant{}, false, err
	case status == http.StatusNoContent:
		return LeaseGrant{}, false, nil
	case status != http.StatusOK:
		return LeaseGrant{}, false, fmt.Errorf("lease request: HTTP %d", status)
	}
	return grant, true, nil
}

// postJSON posts body to path and decodes a 2xx response into out (when
// non-nil and the response has a body). Returns the HTTP status.
func (w *Worker) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}
