// Package analytic provides closed-form Poisson-process estimates of
// system failure probability for the simpler protection schemes. These
// serve as an independent check on the Monte Carlo engine: where a
// scheme's failure condition reduces to "at least one event of a fatal
// class" or "two events of colliding classes in the same stack", the
// probabilities follow directly from the FIT rates, and the simulated
// results must agree within sampling error.
package analytic

import (
	"math"

	"repro/internal/fault"
	"repro/internal/stack"
)

// lambda converts a FIT rate (per die) into the expected event count over
// the lifetime for the given number of dies.
func lambda(fitPerDie float64, dies int, hours float64) float64 {
	return fitPerDie * 1e-9 * hours * float64(dies)
}

// totalDies counts fault-bearing dies (data + metadata).
func totalDies(cfg stack.Config) int { return cfg.Stacks * (cfg.DataDies + cfg.ECCDies) }

// PFailNone is the failure probability with no protection: any fault at
// all is fatal.
func PFailNone(cfg stack.Config, r fault.Rates, hours float64) float64 {
	lam := lambda(r.TotalPerDie()-r.TSVPerDie, totalDies(cfg), hours) +
		lambda(r.TSVPerDie, cfg.Stacks*cfg.DataDies, hours)
	return 1 - math.Exp(-lam)
}

// FatalSingleRate sums the FIT/die of the classes listed as fatal singles
// (transient + permanent).
type FatalSingleRate struct {
	Word, Row, Bank, SubArray, Column bool
	// ATSVFraction is the share of TSV events that are address-TSV faults
	// when ATSV singles are fatal (0 otherwise).
	ATSVFraction float64
}

// PFailSingles is the probability that at least one fatal-single event
// occurs — the dominant term for schemes like the Same-Bank symbol code
// (word/row/bank singles fatal) or Across-Banks (address-TSV singles
// fatal).
func PFailSingles(cfg stack.Config, r fault.Rates, hours float64, fatal FatalSingleRate) float64 {
	var fit float64
	if fatal.Word {
		fit += r.WordTransient + r.WordPermanent
	}
	if fatal.Row {
		fit += r.RowTransient + r.RowPermanent
	}
	if fatal.Bank {
		fit += (r.BankTransient + r.BankPermanent) * (1 - r.SubArrayFraction)
	}
	if fatal.SubArray {
		fit += (r.BankTransient + r.BankPermanent) * r.SubArrayFraction
	}
	if fatal.Column {
		fit += r.ColumnTransient + r.ColumnPermanent
	}
	lam := lambda(fit, totalDies(cfg), hours)
	if fatal.ATSVFraction > 0 {
		lam += lambda(r.TSVPerDie*fatal.ATSVFraction, cfg.Stacks*cfg.DataDies, hours)
	}
	return 1 - math.Exp(-lam)
}

// ATSVShare returns the fraction of TSV fault events that hit address TSVs
// under the sampler's population split.
func ATSVShare(cfg stack.Config) float64 {
	return float64(cfg.AddrTSVs) / float64(cfg.DataTSVs+cfg.AddrTSVs)
}

// PFailPermanentPairSameStack approximates the probability that two or
// more *permanent* events from a colliding class (total FIT/die fitClass)
// accumulate in the same stack over the lifetime — the dominant failure
// mode of 3DP without DDS, whose Achilles pairs are bank-scale faults
// anywhere in a stack.
//
// With per-stack arrival rate lam, P(>=2 in one stack) = 1 - e^-lam(1+lam),
// combined over independent stacks.
func PFailPermanentPairSameStack(cfg stack.Config, fitClass float64, hours float64) float64 {
	diesPerStack := cfg.DataDies + cfg.ECCDies
	lam := lambda(fitClass, diesPerStack, hours)
	pStack := 1 - math.Exp(-lam)*(1+lam)
	pAll := 1.0
	for i := 0; i < cfg.Stacks; i++ {
		pAll *= 1 - pStack
	}
	return 1 - pAll
}

// ThreeDPCollidingFIT returns the per-die FIT of the classes whose pairs
// defeat 3DP: faults that self-conflict in Dimensions 2 and 3 (bank,
// sub-array, column) so that any same-stack pair blocks Dimension 1.
// Only permanent faults accumulate across scrub intervals.
func ThreeDPCollidingFIT(r fault.Rates) float64 {
	return r.BankPermanent + r.ColumnPermanent
}

// PFail3DPNoDDS approximates 3DP-without-sparing: permanent bank-scale
// pairs in the same stack.
func PFail3DPNoDDS(cfg stack.Config, r fault.Rates, hours float64) float64 {
	return PFailPermanentPairSameStack(cfg, ThreeDPCollidingFIT(r), hours)
}
