package analytic

import (
	"math"
	"testing"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/parity"
	"repro/internal/stack"
)

// mcOptions builds a Monte Carlo run matching the analytic setting.
func mcOptions(trials int, r fault.Rates) faultsim.Options {
	return faultsim.Options{
		Config: stack.DefaultConfig(),
		Rates:  r,
		Trials: trials,
		Seed:   17,
	}
}

// within asserts |got-want| <= tol + 3*CI.
func within(t *testing.T, name string, mc faultsim.Result, analytic float64, rel float64) {
	t.Helper()
	got := mc.Probability()
	tol := 3*mc.CI95() + rel*analytic
	if math.Abs(got-analytic) > tol {
		t.Errorf("%s: Monte Carlo %.4g vs analytic %.4g (tol %.4g)", name, got, analytic, tol)
	}
}

func TestNoProtectionMatchesAnalytic(t *testing.T) {
	cfg := stack.DefaultConfig()
	r := fault.Table1().WithTSV(143)
	mc := faultsim.Run(mcOptions(40000, r), faultsim.Policy{Predicate: ecc.NoProtection{}})
	want := PFailNone(cfg, r, fault.LifetimeHours)
	within(t, "none", mc, want, 0.02)
}

func TestSameBankSymbolMatchesFatalSingles(t *testing.T) {
	// The Same-Bank symbol code fails on word/row/bank/sub-array singles
	// and address-TSV singles; pair terms are second-order.
	cfg := stack.DefaultConfig()
	r := fault.Table1().WithTSV(143)
	mc := faultsim.Run(mcOptions(40000, r), faultsim.Policy{
		Predicate: ecc.NewSymbol8(cfg, stack.SameBank),
	})
	want := PFailSingles(cfg, r, fault.LifetimeHours, FatalSingleRate{
		Word: true, Row: true, Bank: true, SubArray: true,
		ATSVFraction: ATSVShare(cfg),
	})
	within(t, "symbol8/same-bank", mc, want, 0.05)
}

func TestThreeDPMatchesPairApproximation(t *testing.T) {
	// 3DP without DDS fails (to first order) on same-stack permanent pairs
	// of bank-scale faults. Boost the rates for Monte Carlo signal; the
	// analytic form scales with them automatically.
	cfg := stack.DefaultConfig()
	r := fault.Table1()
	r.BankPermanent *= 10
	r.ColumnPermanent *= 10
	mc := faultsim.Run(mcOptions(30000, r), faultsim.Policy{
		Predicate: ecc.NewParity(cfg, parity.ThreeDP),
	})
	want := PFail3DPNoDDS(cfg, r, fault.LifetimeHours)
	// The pair approximation ignores transient coincidences and row/word
	// interactions: allow 30% slack plus sampling error.
	within(t, "3dp", mc, want, 0.3)
}

func TestATSVShare(t *testing.T) {
	got := ATSVShare(stack.DefaultConfig())
	want := 24.0 / 280.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ATSV share = %v, want %v", got, want)
	}
}

func TestPairProbabilityShape(t *testing.T) {
	cfg := stack.DefaultConfig()
	// Doubling the class rate roughly quadruples the pair probability in
	// the rare-event regime.
	p1 := PFailPermanentPairSameStack(cfg, 100, fault.LifetimeHours)
	p2 := PFailPermanentPairSameStack(cfg, 200, fault.LifetimeHours)
	ratio := p2 / p1
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("pair probability scaling %.2f, want ~4", ratio)
	}
	if PFailPermanentPairSameStack(cfg, 0, fault.LifetimeHours) != 0 {
		t.Error("zero rate should give zero probability")
	}
}
