package gf2m

import (
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f, err := New(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f.M() != m || f.Order() != (1<<uint(m))-1 {
			t.Errorf("m=%d: wrong shape", m)
		}
	}
	if _, err := New(1); err == nil {
		t.Error("accepted m=1")
	}
	if _, err := New(17); err == nil {
		t.Error("accepted m=17")
	}
	// A reducible polynomial must be rejected: x^4+1 = (x+1)^4.
	if _, err := NewWithPoly(4, 0x11); err == nil {
		t.Error("accepted non-primitive polynomial")
	}
}

func TestGF2mMatchesGF256(t *testing.T) {
	// m=8 with the same polynomial must agree with the dedicated gf256
	// implementation's structure: alpha^i generates all 255 elements.
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for i := 0; i < 255; i++ {
		seen[f.Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Errorf("alpha generates %d elements", len(seen))
	}
}

func TestFieldAxiomsGF1024(t *testing.T) {
	f, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(f.Order())
	check := func(a, b, c uint32) bool {
		a, b, c = a%n+1, b%n+1, c%n+1 // nonzero elements
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		if f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		if f.Div(f.Mul(a, b), b) != a {
			return false
		}
		return f.Mul(a, b^c) == f.Mul(a, b)^f.Mul(a, c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	f, _ := New(10)
	for a := uint32(1); a < 50; a++ {
		want := f.Mul(f.Mul(a, a), a)
		if got := f.Pow(a, 3); got != want {
			t.Fatalf("Pow(%d,3) = %d, want %d", a, got, want)
		}
	}
	if f.Pow(0, 5) != 0 || f.Pow(0, 0) != 1 || f.Pow(7, 0) != 1 {
		t.Error("Pow edge cases wrong")
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	f, _ := New(10)
	for i := 0; i < f.Order(); i++ {
		if f.Log(f.Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, f.Log(f.Exp(i)))
		}
	}
}

func TestLogZeroPanics(t *testing.T) {
	f, _ := New(4)
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	f.Log(0)
}

func TestMinimalPolynomialProperties(t *testing.T) {
	f, _ := New(10)
	for _, i := range []int{1, 2, 3, 5, 7, 11} {
		mp := f.MinimalPolynomial(i)
		// alpha^i must be a root: evaluate over the field.
		var v uint32
		root := f.Exp(i)
		for k := 63; k >= 0; k-- {
			v = f.Mul(v, root)
			if mp>>uint(k)&1 == 1 {
				v ^= 1
			}
		}
		if v != 0 {
			t.Errorf("alpha^%d is not a root of its minimal polynomial %#x", i, mp)
		}
		// Degree divides m.
		deg := 63
		for deg > 0 && mp>>uint(deg)&1 == 0 {
			deg--
		}
		if 10%deg != 0 {
			t.Errorf("minimal polynomial of alpha^%d has degree %d (must divide 10)", i, deg)
		}
	}
	// Conjugates share a minimal polynomial: alpha and alpha^2.
	if f.MinimalPolynomial(1) != f.MinimalPolynomial(2) {
		t.Error("conjugates have different minimal polynomials")
	}
	// The minimal polynomial of alpha equals the field's primitive poly.
	if f.MinimalPolynomial(1) != 0x409 {
		t.Errorf("minimal polynomial of alpha = %#x, want 0x409", f.MinimalPolynomial(1))
	}
}
