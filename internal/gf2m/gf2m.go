// Package gf2m implements arithmetic over binary extension fields GF(2^m)
// for 2 <= m <= 16, parameterized by primitive polynomial — the fields BCH
// codes for long cache lines need (GF(2^10) covers 512-bit blocks).
// Package gf256 is the fixed m=8 special case used by the Reed-Solomon
// codec; this package trades a little speed for generality.
package gf2m

import "fmt"

// defaultPolys maps m to a primitive polynomial (binary representation,
// including the x^m term).
var defaultPolys = map[int]int{
	2:  0x7,     // x^2+x+1
	3:  0xB,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	5:  0x25,    // x^5+x^2+1
	6:  0x43,    // x^6+x+1
	7:  0x89,    // x^7+x^3+1
	8:  0x11D,   // x^8+x^4+x^3+x^2+1
	9:  0x211,   // x^9+x^4+1
	10: 0x409,   // x^10+x^3+1
	11: 0x805,   // x^11+x^2+1
	12: 0x1053,  // x^12+x^6+x^4+x+1
	13: 0x201B,  // x^13+x^4+x^3+x+1
	14: 0x4443,  // x^14+x^10+x^6+x+1
	15: 0x8003,  // x^15+x+1
	16: 0x1100B, // x^16+x^12+x^3+x+1
}

// Field is GF(2^m) with log/antilog tables.
type Field struct {
	m    int
	n    int // 2^m - 1, the multiplicative order
	exp  []uint32
	logt []int
}

// New builds GF(2^m) with the default primitive polynomial for m.
func New(m int) (*Field, error) {
	poly, ok := defaultPolys[m]
	if !ok {
		return nil, fmt.Errorf("gf2m: no default polynomial for m=%d (want 2..16)", m)
	}
	return NewWithPoly(m, poly)
}

// NewWithPoly builds GF(2^m) from an explicit primitive polynomial.
func NewWithPoly(m, poly int) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf2m: m=%d out of range [2,16]", m)
	}
	n := (1 << uint(m)) - 1
	f := &Field{
		m:    m,
		n:    n,
		exp:  make([]uint32, 2*n),
		logt: make([]int, n+1),
	}
	x := 1
	for i := 0; i < n; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("gf2m: polynomial %#x is not primitive for m=%d", poly, m)
		}
		f.exp[i] = uint32(x)
		f.logt[x] = i
		x <<= 1
		if x&(1<<uint(m)) != 0 {
			x ^= poly
		}
	}
	for i := n; i < 2*n; i++ {
		f.exp[i] = f.exp[i-n]
	}
	return f, nil
}

// M returns the extension degree.
func (f *Field) M() int { return f.m }

// Order returns 2^m - 1.
func (f *Field) Order() int { return f.n }

// Exp returns alpha^i.
func (f *Field) Exp(i int) uint32 {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns log_alpha(a); it panics on zero.
func (f *Field) Log(a uint32) int {
	if a == 0 {
		panic("gf2m: log of zero")
	}
	return f.logt[a]
}

// Mul multiplies two field elements.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.logt[a]+f.logt[b]]
}

// Div divides a by b; it panics on b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf2m: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.logt[a]+f.n-f.logt[b]]
}

// Inv returns the multiplicative inverse; it panics on zero.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf2m: inverse of zero")
	}
	return f.exp[f.n-f.logt[a]]
}

// Pow returns a^k.
func (f *Field) Pow(a uint32, k int) uint32 {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := (f.logt[a] * k) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// MinimalPolynomial returns the minimal polynomial over GF(2) of alpha^i,
// as a binary-coefficient polynomial (bit k = coefficient of x^k). The
// conjugacy class of alpha^i is {alpha^(i*2^j)}.
func (f *Field) MinimalPolynomial(i int) uint64 {
	// Collect the conjugacy class.
	seen := map[int]bool{}
	e := i % f.n
	for !seen[e] {
		seen[e] = true
		e = (e * 2) % f.n
	}
	// poly(x) = prod over class of (x - alpha^e), computed with
	// field-element coefficients, then reduced to GF(2).
	coeffs := []uint32{1} // leading coefficient first? use lowest-first
	// lowest-degree-first: start with polynomial "1"
	for e := range seen {
		root := f.Exp(e)
		// multiply coeffs by (x + root)
		next := make([]uint32, len(coeffs)+1)
		for k, c := range coeffs {
			next[k+1] ^= c            // c * x
			next[k] ^= f.Mul(c, root) // c * root
		}
		coeffs = next
	}
	var out uint64
	for k, c := range coeffs {
		if c > 1 {
			panic(fmt.Sprintf("gf2m: minimal polynomial has non-binary coefficient %d", c))
		}
		if c == 1 {
			out |= 1 << uint(k)
		}
	}
	return out
}
