package perfsim

import (
	"context"

	"repro/internal/cache"
	"repro/internal/stack"
	"repro/internal/workload"
)

// ParityCacheResult reports the outcome of the Figure-13 experiment: the
// LLC hit rate seen by Dimension-1 parity updates when parity lines are
// cached on demand in the shared LLC alongside demand data.
type ParityCacheResult struct {
	Benchmark    string
	Suite        workload.Suite
	ParityHits   uint64
	ParityProbes uint64
	// Partial reports that the measurement was cancelled early; the hit
	// rate covers the requests simulated before cancellation.
	Partial bool
}

// HitRate returns the parity-update hit rate.
func (r ParityCacheResult) HitRate() float64 {
	if r.ParityProbes == 0 {
		return 0
	}
	return float64(r.ParityHits) / float64(r.ParityProbes)
}

// parityTag offsets parity-line addresses into their own region of the
// LLC's address space (the parity bank is a distinct physical region).
const parityTag = uint64(1) << 40

// ParityCacheHitRate simulates on-demand parity caching (paper Figure 12):
// every LLC miss installs the demand line, and every dirty eviction
// (writeback) probes the LLC for the victim's Dimension-1 parity line,
// installing it on a miss. Read-heavy workloads churn the LLC and evict
// parity lines between uses, which is why BioBench sees lower hit rates
// (paper Figure 13).
func ParityCacheHitRate(prof workload.Profile, llcBytes, ways, requests int, seed int64) ParityCacheResult {
	return ParityCacheHitRateContext(context.Background(), prof, llcBytes, ways, requests, seed)
}

// ParityCacheHitRateContext is ParityCacheHitRate under a context:
// cancellation stops the request stream and returns the hit statistics
// gathered so far, marked Partial.
func ParityCacheHitRateContext(ctx context.Context, prof workload.Profile, llcBytes, ways, requests int, seed int64) ParityCacheResult {
	cfg := stack.DefaultConfig()
	llc, err := cache.New(llcBytes, ways, cfg.LineBytes)
	if err != nil {
		panic("perfsim: bad LLC geometry: " + err.Error())
	}
	gen := workload.NewGenerator(prof, 8, seed)
	s := &sim{cfg: Config{Stack: cfg}}
	res := ParityCacheResult{Benchmark: prof.Name, Suite: prof.Suite}
	for i := 0; i < requests; i++ {
		if i%cancelCheckInterval == 0 && ctx.Err() != nil {
			res.Partial = true
			break
		}
		req := gen.Next()
		addr := req.LineAddr * uint64(cfg.LineBytes)
		r := llc.Access(addr, req.Write)
		// Dirty evictions are the writebacks that need parity updates.
		if r.Writeback {
			victimLine := r.WritebackAddr / uint64(cfg.LineBytes)
			pl := s.parityLine(s.lineIndex(victimLine))
			pAddr := parityTag + uint64(pl)*uint64(cfg.LineBytes)
			pr := llc.Access(pAddr, true)
			res.ParityProbes++
			if pr.Hit {
				res.ParityHits++
			}
		}
	}
	return res
}
