package perfsim

import (
	"math/rand"
	"testing"

	"repro/internal/stack"
)

// newTestSim mirrors RunContext's sim construction so white-box tests
// can drive the access path directly.
func newTestSim(cfg Config) *sim {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	s := &sim{
		cfg:       cfg,
		bankFree:  make([]float64, cfg.Stack.TotalDataBanks()),
		bankFreeW: make([]float64, cfg.Stack.TotalDataBanks()),
		bankRow:   make([]int, cfg.Stack.TotalDataBanks()),
		chanFree:  make([]float64, cfg.Stack.Stacks*cfg.Stack.Channels()),
		chanFreeW: make([]float64, cfg.Stack.Stacks*cfg.Stack.Channels()),
		coreAvail: make([]float64, cfg.Cores),
		rng:       rand.New(rand.NewSource(1)),
	}
	for i := range s.bankRow {
		s.bankRow[i] = -1
	}
	return s
}

// TestAccessSlicesNoAlloc pins the hot-path contract: after the scratch
// slice warms up, an access allocates nothing regardless of striping —
// the whole point of AppendSlices over the allocating Slices form, since
// every simulated request maps its line through here.
func TestAccessSlicesNoAlloc(t *testing.T) {
	for _, striping := range []stack.Striping{stack.SameBank, stack.AcrossBanks, stack.AcrossChannels} {
		t.Run(striping.String(), func(t *testing.T) {
			s := newTestSim(runCfg(striping, Overheads{}, 0))
			lines := s.cfg.Stack.TotalLines()
			var at float64
			var lineIdx int64
			// Warm the scratch to its striping's slice count.
			at = s.accessSlices(0, at, false, false)
			allocs := testing.AllocsPerRun(200, func() {
				lineIdx = (lineIdx + 997) % lines
				at = s.accessSlices(lineIdx, at, false, false)
			})
			if allocs != 0 {
				t.Fatalf("accessSlices allocates %.1f per access, want 0", allocs)
			}
		})
	}
}

// BenchmarkAccessSlices measures the per-access cost of the line-mapping
// hot path; before the scratch-slice change each iteration carried a
// fresh []Slice allocation (B/op and allocs/op were nonzero).
func BenchmarkAccessSlices(b *testing.B) {
	for _, striping := range []stack.Striping{stack.SameBank, stack.AcrossBanks, stack.AcrossChannels} {
		b.Run(striping.String(), func(b *testing.B) {
			s := newTestSim(runCfg(striping, Overheads{}, 0))
			lines := s.cfg.Stack.TotalLines()
			var at float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at = s.accessSlices(int64(i*997)%lines, at, false, false)
			}
		})
	}
}
