// Package perfsim is the performance model behind the paper's Figures 5,
// 15 and 16: a queueing simulation of the stacked memory system (channels,
// banks, row buffers, shared channel buses) driven by the synthetic
// per-benchmark request streams of internal/workload.
//
// Each request fans out to the banks selected by the striping layout
// (internal/stack): Same-Bank touches one bank; Across-Banks touches every
// bank of one channel, serializing slice bursts on that channel's bus;
// Across-Channels forks to one bank in every channel and joins on the
// slowest (the fork-join penalty plus whole-stack occupancy is what makes
// it the slowest layout). Protection-scheme overheads — 3DP's
// read-before-write and Dimension-1 parity traffic, with or without parity
// caching — are injected as extra accesses.
//
// The model is calibrated for *relative* behaviour (normalized execution
// time and normalized active power); absolute cycle counts are not meant to
// match the authors' testbed.
package perfsim

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/power"
	"repro/internal/stack"
	"repro/internal/workload"
)

// cancelCheckInterval is how many requests the simulator serves between
// context checks; cancellation latency is bounded by one interval.
const cancelCheckInterval = 1024

// Timing holds DRAM timing parameters in memory-bus clock cycles
// (Table II: tWTR-tCAS-tRCD-tRP-tRAS = 7-9-9-9-36, 800 MHz bus).
type Timing struct {
	TWTR, TCAS, TRCD, TRP, TRAS int
	// LineBurst is the data-bus occupancy of a full 64-byte line on one
	// channel.
	LineBurst int
	// CoreMult is the core-to-memory clock ratio (3.2 GHz / 800 MHz).
	CoreMult float64
}

// DefaultTiming returns the Table II timing.
func DefaultTiming() Timing {
	return Timing{TWTR: 7, TCAS: 9, TRCD: 9, TRP: 9, TRAS: 36, LineBurst: 4, CoreMult: 4}
}

// Overheads injects protection-scheme traffic.
type Overheads struct {
	// RBWOnWriteback issues a read-before-write for every writeback (3DP
	// parity update, paper Figure 12 action 2).
	RBWOnWriteback bool
	// ParityCaching, when RBWOnWriteback is set, models Dimension-1 parity
	// lines cached in the LLC: a parity fetch from memory happens only on
	// an LLC parity miss.
	ParityCaching bool
	// ParityCacheHitRate is the LLC hit rate for parity updates (paper
	// Figure 13: 85% average). Used when ParityCaching is true.
	ParityCacheHitRate float64
	// parityWriteback models the eventual writeback of dirty parity lines
	// (one per parity miss, steady state).
}

// Citadel3DP returns the overheads of 3DP with parity caching at the given
// hit rate.
func Citadel3DP(hitRate float64) Overheads {
	return Overheads{RBWOnWriteback: true, ParityCaching: true, ParityCacheHitRate: hitRate}
}

// Citadel3DPNoCache returns the overheads of 3DP without parity caching:
// every writeback reads and rewrites the parity line in memory.
func Citadel3DPNoCache() Overheads {
	return Overheads{RBWOnWriteback: true, ParityCaching: false}
}

// Config configures one simulation.
type Config struct {
	Stack    stack.Config
	Striping stack.Striping
	Timing   Timing
	Overhead Overheads
	// Requests is the number of memory requests to simulate.
	Requests int
	// Cores is the number of cores in rate mode (Table II: 8).
	Cores int
	Seed  int64
	// Trace, when non-nil, replays a recorded request stream instead of
	// the synthetic generator (see workload.ReadTrace). Each run reads
	// through a private cursor rewound to the start of the trace, so one
	// Config can drive sequential or concurrent runs safely.
	Trace *workload.TraceSource
	// Tracer, when non-nil, records sampled per-request spans (timestamps
	// in memory-bus cycles) into the flight recorder. Sampling hashes the
	// demand-read index, so it never perturbs the RNG draw sequence.
	Tracer *trace.Recorder
	// RunID correlates progress snapshots, traces, and metrics with one
	// logical run.
	RunID string
	// Progress, when non-nil, receives a snapshot of the run roughly
	// every ProgressInterval plus one final snapshot (Done set) when the
	// run ends. The simulator is single-threaded, so calls never overlap.
	Progress func(Progress)
	// ProgressInterval throttles Progress callbacks (default 1s).
	ProgressInterval time.Duration
}

// Progress is a point-in-time snapshot of a running simulation.
type Progress struct {
	// RunID echoes Config.RunID so interleaved progress lines from
	// concurrent runs can be told apart.
	RunID string
	// RequestsDone counts requests served so far out of RequestsTarget.
	RequestsDone, RequestsTarget int
	// Reads counts demand reads served so far.
	Reads uint64
	// RowHitRate is the row-buffer hit rate so far.
	RowHitRate float64
	// AvgReadLatency is the mean demand-read latency so far, in
	// memory-bus cycles.
	AvgReadLatency float64
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Done marks the final snapshot of the run.
	Done bool
}

// RequestsPerSec returns the observed simulation throughput.
func (p Progress) RequestsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.RequestsDone) / p.Elapsed.Seconds()
}

// DefaultConfig returns the Table II baseline configuration.
func DefaultConfig() Config {
	return Config{
		Stack:    stack.DefaultConfig(),
		Striping: stack.SameBank,
		Timing:   DefaultTiming(),
		Requests: 100000,
		Cores:    8,
	}
}

// Phases attributes demand-read latency to its contributors, all in
// memory-bus cycles, summed across the slices of each access:
//
//   - Queue: waiting for a busy bank (bank conflicts, plus the exposed
//     fraction of background write traffic).
//   - Activate: row-activation work on row-buffer misses (tRP + tRCD).
//   - CAS: column access (tCAS), paid by every slice.
//   - Bus: waiting for the channel data bus (slice serialization on the
//     striped layouts, cross-request contention otherwise).
//   - Burst: the data transfer itself.
//
// Queue and Bus are pure contention; Activate is the row-locality cost;
// CAS+Burst is the unavoidable service floor.
type Phases struct {
	Queue    float64 `json:"queue"`
	Activate float64 `json:"activate"`
	CAS      float64 `json:"cas"`
	Bus      float64 `json:"bus"`
	Burst    float64 `json:"burst"`
}

// add accumulates o into p.
func (p *Phases) add(o Phases) {
	p.Queue += o.Queue
	p.Activate += o.Activate
	p.CAS += o.CAS
	p.Bus += o.Bus
	p.Burst += o.Burst
}

// scale returns p scaled by f (e.g. 1/reads for per-read averages).
func (p Phases) scale(f float64) Phases {
	return Phases{
		Queue:    p.Queue * f,
		Activate: p.Activate * f,
		CAS:      p.CAS * f,
		Bus:      p.Bus * f,
		Burst:    p.Burst * f,
	}
}

// Stats reports the outcome of one simulation.
type Stats struct {
	// Cycles is the execution time in memory-bus cycles.
	Cycles uint64
	// Instructions is the total instruction count completed, summed over
	// every core's progress (a looping trace contributes each lap's
	// per-core progress rather than stalling at the first lap's maximum).
	Instructions uint64
	// RowHits and RowMisses count bank-level row-buffer outcomes.
	RowHits, RowMisses uint64
	// Reads counts demand reads; ReadLatencySum accumulates their
	// end-to-end latency in memory cycles.
	Reads          uint64
	ReadLatencySum float64
	// ReadPhases attributes the demand-read latency to its contributors
	// (summed over all reads; divide by Reads for per-read averages).
	// Slices of one access proceed in parallel and each accrues its own
	// wait, so the phase sums do not compose to ReadLatencySum — under
	// wide striping the queue sum can exceed the critical-path latency.
	// Only Same-Bank (single slice) composes exactly.
	ReadPhases Phases
	// ParityUpdates counts writebacks that touched memory for Dimension-1
	// parity maintenance; ParityOverheadSum accumulates the background
	// cycles those updates occupied (read-before-write plus the parity
	// line accesses). Posted writes hide this from the core, but it
	// consumes bank/bus bandwidth and leaks into read queueing.
	ParityUpdates     uint64
	ParityOverheadSum float64
	// Power tallies DRAM operations for the power model.
	Power power.Counts
	// RequestsDone counts the requests actually simulated; fewer than
	// Config.Requests when the run was cancelled (see Partial).
	RequestsDone int
	// Partial reports that the run was cancelled before serving every
	// requested memory request.
	Partial bool
}

// CPI returns system cycles per instruction in core clocks: execution
// time divided by the instructions completed across all cores.
func (s Stats) CPI(t Timing) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) * t.CoreMult / float64(s.Instructions)
}

// AvgReadLatency returns the mean demand-read latency in memory cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadLatencySum / float64(s.Reads)
}

// AvgReadPhases returns the per-read average of each latency phase.
func (s Stats) AvgReadPhases() Phases {
	if s.Reads == 0 {
		return Phases{}
	}
	return s.ReadPhases.scale(1 / float64(s.Reads))
}

// AvgParityOverhead returns the mean background cycles per parity-touching
// writeback.
func (s Stats) AvgParityOverhead() float64 {
	if s.ParityUpdates == 0 {
		return 0
	}
	return s.ParityOverheadSum / float64(s.ParityUpdates)
}

// RowHitRate returns the measured row-buffer hit rate.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// sim is the simulation state.
type sim struct {
	cfg  Config
	prof workload.Profile

	bankFree  []float64 // read-priority clock per dense bank id
	bankFreeW []float64 // write-priority (background drain) clock
	bankRow   []int     // open row (-1 = closed)
	chanFree  []float64 // read-priority channel-bus clock
	chanFreeW []float64 // write-priority channel-bus clock

	coreAvail []float64

	stats Stats
	rng   *rand.Rand

	// acc is the per-access phase scratch: serve zeroes it before each
	// access it wants attributed (demand reads for ReadPhases, the RBW and
	// parity sections for parity occupancy), accessSlices fills it.
	acc Phases
	// slices is the per-access slice scratch: accessSlices refills it via
	// stack.Config.AppendSlices so the hot path stops allocating a fresh
	// []Slice for every one of the millions of line accesses in a run.
	slices []stack.Slice
}

// Run simulates the profile under the configuration; it cannot be
// interrupted (see RunContext).
func Run(prof workload.Profile, cfg Config) Stats {
	return RunContext(context.Background(), prof, cfg)
}

// RunContext simulates the profile under the configuration, checking ctx
// between request batches. A cancelled run returns the statistics of the
// requests served so far with Partial set.
func RunContext(ctx context.Context, prof workload.Profile, cfg Config) Stats {
	if cfg.Requests == 0 {
		cfg.Requests = 100000
	}
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	s := &sim{
		cfg:       cfg,
		prof:      prof,
		bankFree:  make([]float64, cfg.Stack.TotalDataBanks()),
		bankFreeW: make([]float64, cfg.Stack.TotalDataBanks()),
		bankRow:   make([]int, cfg.Stack.TotalDataBanks()),
		chanFree:  make([]float64, cfg.Stack.Stacks*cfg.Stack.Channels()),
		chanFreeW: make([]float64, cfg.Stack.Stacks*cfg.Stack.Channels()),
		coreAvail: make([]float64, cfg.Cores),
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	for i := range s.bankRow {
		s.bankRow[i] = -1
	}
	mRunsActive.Inc()
	defer mRunsActive.Dec()
	next := func() workload.Request { return workload.Request{} }
	if cfg.Trace != nil {
		// Private cursor: replay from the start without mutating the
		// shared TraceSource (reuse across runs would otherwise resume
		// mid-trace, and concurrent runs would race on the position).
		tr := cfg.Trace.Clone()
		tr.Reset()
		next = tr.Next
	} else {
		gen := workload.NewGenerator(prof, cfg.Cores, cfg.Seed)
		next = gen.Next
	}
	progressInterval := cfg.ProgressInterval
	if progressInterval <= 0 {
		progressInterval = time.Second
	}
	start := time.Now()
	lastProgress := start
	snapshot := func(done bool) Progress {
		return Progress{
			RunID:          cfg.RunID,
			RequestsDone:   s.stats.RequestsDone,
			RequestsTarget: cfg.Requests,
			Reads:          s.stats.Reads,
			RowHitRate:     s.stats.RowHitRate(),
			AvgReadLatency: s.stats.AvgReadLatency(),
			Elapsed:        time.Since(start),
			Done:           done,
		}
	}
	// flush publishes the delta since the last flush into the global
	// metrics, so a scrape mid-run sees the simulation move.
	var flushed Stats
	flush := func() {
		mRequests.Add(int64(s.stats.RequestsDone - flushed.RequestsDone))
		mReads.Add(int64(s.stats.Reads - flushed.Reads))
		mRowHits.Add(int64(s.stats.RowHits - flushed.RowHits))
		mRowMisses.Add(int64(s.stats.RowMisses - flushed.RowMisses))
		flushed = s.stats
	}
	defer flush()
	// Instructions are summed across cores. Each core's ICount advances
	// monotonically, so its contribution is the delta from the last
	// request seen on that core; a looping trace restarts a core's
	// counter, in which case the wrapped value is the fresh progress.
	lastICount := make([]uint64, cfg.Cores)
	var instructions uint64
	for i := 0; i < cfg.Requests; i++ {
		if i%cancelCheckInterval == 0 {
			flush()
			if cfg.Progress != nil {
				if now := time.Now(); now.Sub(lastProgress) >= progressInterval {
					lastProgress = now
					cfg.Progress(snapshot(false))
				}
			}
			if ctx.Err() != nil {
				s.stats.Partial = true
				break
			}
		}
		req := next()
		if req.Core >= len(s.coreAvail) {
			// A replayed trace may name more cores than cfg.Cores.
			grown := make([]float64, req.Core+1)
			copy(grown, s.coreAvail)
			s.coreAvail = grown
			grownIC := make([]uint64, req.Core+1)
			copy(grownIC, lastICount)
			lastICount = grownIC
		}
		s.serve(req)
		s.stats.RequestsDone++
		if req.ICount >= lastICount[req.Core] {
			instructions += req.ICount - lastICount[req.Core]
		} else {
			instructions += req.ICount
		}
		lastICount[req.Core] = req.ICount
	}
	end := 0.0
	for _, t := range s.coreAvail {
		if t > end {
			end = t
		}
	}
	s.stats.Cycles = uint64(end)
	s.stats.Instructions = instructions
	s.stats.Power.Cycles = uint64(end)
	s.stats.Power.Dies = cfg.Stack.Stacks * (cfg.Stack.DataDies + cfg.Stack.ECCDies)
	if cfg.Progress != nil {
		cfg.Progress(snapshot(true))
	}
	return s.stats
}

// lineIndex folds a workload line address into the stack's address space
// with a channel-interleaved physical mapping: consecutive DRAM rows of the
// workload footprint spread first across channels, then banks, then stacks,
// so independent cores exploit channel- and bank-level parallelism — the
// property the striped layouts then sacrifice.
func (s *sim) lineIndex(addr uint64) int64 {
	cfg := s.cfg.Stack
	return cfg.LineIndex(cfg.InterleaveLine(addr))
}

// WriteInterference is the fraction of background (write-class) bank busy
// time exposed to the read-priority clock. Memory controllers buffer
// writebacks and drain them in idle slots (FR-FCFS with write batching), so
// writes delay reads only when the drain cannot stay ahead.
const WriteInterference = 0.15

// StallOverlap models the additional latency overlap an out-of-order core
// extracts beyond raw MLP (prefetching, speculation). It scales the
// exposed miss penalty and is the model's single calibration constant.
const StallOverlap = 2.2

// accessSlices performs one memory access (all slices of one line) starting
// no earlier than at. Demand reads run at high priority; background
// accesses (writebacks, parity maintenance) use the low-priority clocks and
// leak only WriteInterference of their busy time into the read clocks. It
// returns the completion time.
func (s *sim) accessSlices(lineIdx int64, at float64, write, background bool) float64 {
	cfg := s.cfg
	t := cfg.Timing
	s.slices = cfg.Stack.AppendSlices(s.slices[:0], cfg.Striping, lineIdx)
	slices := s.slices
	nUnits := len(slices)
	burst := float64(t.LineBurst) / float64(nUnits)
	if burst < 1 {
		burst = 1
	}
	finish := at
	for _, sl := range slices {
		bankID := cfg.Stack.BankID(sl.Coord)
		chID := sl.Coord.Stack*cfg.Stack.Channels() + sl.Coord.Die
		start := at
		if background {
			if s.bankFreeW[bankID] > start {
				start = s.bankFreeW[bankID]
			}
			if s.bankFree[bankID] > start {
				start = s.bankFree[bankID]
			}
		} else if s.bankFree[bankID] > start {
			start = s.bankFree[bankID]
		}
		var svc float64
		if s.bankRow[bankID] == sl.Coord.Row {
			s.stats.RowHits++
			svc = float64(t.TCAS)
		} else {
			s.stats.RowMisses++
			svc = float64(t.TRP + t.TRCD + t.TCAS)
			s.bankRow[bankID] = sl.Coord.Row
			s.stats.Power.Activates++
			s.acc.Activate += float64(t.TRP + t.TRCD)
		}
		s.acc.Queue += start - at
		s.acc.CAS += float64(t.TCAS)
		if write {
			svc += float64(t.TWTR)
			s.stats.Power.WriteBytes += uint64(sl.Bytes)
		} else {
			s.stats.Power.ReadBytes += uint64(sl.Bytes)
		}
		// The channel data bus is occupied only for the burst transfer;
		// CAS/activate latencies overlap across banks of a channel.
		xfer := start + svc
		if background {
			if s.chanFreeW[chID] > xfer {
				xfer = s.chanFreeW[chID]
			}
		} else if s.chanFree[chID] > xfer {
			xfer = s.chanFree[chID]
		}
		s.acc.Bus += xfer - (start + svc)
		s.acc.Burst += burst
		done := xfer + burst
		if background {
			s.bankFreeW[bankID] = done
			s.chanFreeW[chID] = done
			// A fraction of the background service time is exposed to
			// reads (queueing within the write buffer is not).
			s.bankFree[bankID] += (svc + burst) * WriteInterference
		} else {
			s.bankFree[bankID] = done
			s.chanFree[chID] = done
		}
		if done > finish {
			finish = done
		}
	}
	return finish
}

// serve processes one request end to end, including scheme overheads.
func (s *sim) serve(req workload.Request) {
	cfg := s.cfg
	t := cfg.Timing
	// The core reaches this request after executing the gap instructions.
	icountCycles := float64(req.ICount) * s.prof.CPI0 / t.CoreMult
	issue := s.coreAvail[req.Core]
	if icountCycles > issue {
		issue = icountCycles
	}
	lineIdx := s.lineIndex(req.LineAddr)
	if req.Write {
		finish := issue
		var overhead float64
		if cfg.Overhead.RBWOnWriteback {
			// Read-before-write to compute the parity delta (row hit: the
			// write that follows opens the same row). Overhead counts the
			// occupancy (activate + CAS + burst), not the queue wait behind
			// a busy bank — wait time is backlog, not parity work, and under
			// saturation it would swamp the signal.
			s.acc = Phases{}
			finish = s.accessSlices(lineIdx, finish, false, true)
			overhead = s.acc.Activate + s.acc.CAS + s.acc.Burst
		}
		s.acc = Phases{}
		finish = s.accessSlices(lineIdx, finish, true, true)
		if cfg.Overhead.RBWOnWriteback {
			// Dimension-1 parity update. Parity lines live in the parity
			// bank; the address depends only on (row, slot), giving high
			// locality. A cached parity update costs no memory traffic.
			missRate := 1.0
			if cfg.Overhead.ParityCaching {
				missRate = 1 - cfg.Overhead.ParityCacheHitRate
			}
			if s.rng.Float64() < missRate {
				parityLine := s.parityLine(lineIdx)
				s.acc = Phases{}
				if cfg.Overhead.ParityCaching {
					// Fetch the parity line into the LLC; its eventual
					// writeback coalesces many updates and is amortized
					// into the miss itself.
					finish = s.accessSlices(parityLine, finish, false, true)
				} else {
					// Direct in-memory parity update: read-modify-write.
					finish = s.accessSlices(parityLine, finish, false, true)
					s.accessSlices(parityLine, finish, true, true)
				}
				overhead += s.acc.Activate + s.acc.CAS + s.acc.Burst
			}
			// Overhead is the extra background occupancy this writeback
			// spent on parity maintenance: RBW plus the parity-line
			// traffic. Posted, so the core never waits — but the bank and
			// bus time is real.
			s.stats.ParityUpdates++
			s.stats.ParityOverheadSum += overhead
			mParityOverhead.Observe(overhead)
		}
		// Writebacks are posted: the core does not stall.
		return
	}
	s.acc = Phases{}
	finish := s.accessSlices(lineIdx, issue, false, false)
	s.stats.Reads++
	s.stats.ReadLatencySum += finish - issue
	s.stats.ReadPhases.add(s.acc)
	mReadLatency.Observe(finish - issue)
	mPhaseQueue.Observe(s.acc.Queue)
	mPhaseActivate.Observe(s.acc.Activate)
	mPhaseBus.Observe(s.acc.Bus)
	mPhaseBurst.Observe(s.acc.Burst)
	if s.cfg.Tracer.Enabled() && s.cfg.Tracer.ShouldSample(s.stats.Reads) {
		ev := trace.Event{
			Name:  "read",
			Cat:   "perfsim",
			Phase: trace.PhaseComplete,
			TS:    issue,
			Dur:   finish - issue,
			TID:   int64(req.Core),
		}
		ev.Args[0] = trace.Arg{Key: "queue", Val: s.acc.Queue}
		ev.Args[1] = trace.Arg{Key: "activate", Val: s.acc.Activate}
		ev.Args[2] = trace.Arg{Key: "bus", Val: s.acc.Bus}
		ev.Args[3] = trace.Arg{Key: "burst", Val: s.acc.Burst}
		s.cfg.Tracer.Emit(ev)
	}
	// Reads block the core; memory-level parallelism and out-of-order
	// execution overlap the service latency and part of the queueing delay
	// across the outstanding misses.
	stall := (finish - issue) / (s.prof.MLP * StallOverlap)
	s.coreAvail[req.Core] = issue + stall
}

// parityLine maps a data line to its Dimension-1 parity line. The parity
// "bank" is addressed by (row, slot) only — lines with equal row and slot
// across banks/dies share one parity line — but it is an abstraction
// scattered across physical banks by address-bit swapping so that no single
// physical bank becomes a bottleneck (paper footnote 4).
func (s *sim) parityLine(lineIdx int64) int64 {
	cfg := s.cfg.Stack
	co := cfg.CoordOfLineIndex(lineIdx)
	pc := stack.Coord{
		Stack: co.Stack,
		Die:   co.Row % cfg.Channels(),
		Bank:  (co.Row / cfg.Channels()) % cfg.BanksPerDie,
		Row:   co.Row,
		Line:  co.Line,
	}
	return cfg.LineIndex(pc)
}
