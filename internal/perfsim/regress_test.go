package perfsim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stack"
	"repro/internal/workload"
)

// Regression tests for the instruction-accounting and trace-cursor fixes.

// traceOf builds a TraceSource from literal requests.
func traceOf(t *testing.T, reqs []workload.Request) *workload.TraceSource {
	t.Helper()
	src, err := workload.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestInstructionsSummedAcrossCores(t *testing.T) {
	// Pre-fix, Stats.Instructions took the max ICount across cores, so two
	// cores each completing 200 instructions reported 200, not 400 —
	// halving multi-core CPI.
	cfg := runCfg(stack.SameBank, Overheads{}, 4)
	cfg.Cores = 2
	cfg.Trace = traceOf(t, []workload.Request{
		{LineAddr: 0, Core: 0, ICount: 100},
		{LineAddr: 64, Core: 1, ICount: 100},
		{LineAddr: 128, Core: 0, ICount: 200},
		{LineAddr: 192, Core: 1, ICount: 200},
	})
	st := Run(prof(t, "mcf"), cfg)
	if st.Instructions != 400 {
		t.Errorf("Instructions = %d, want 400 (200 per core, summed)", st.Instructions)
	}
}

func TestLoopingTraceInstructionsAdvance(t *testing.T) {
	// Pre-fix, a looping trace reset ICount below lastICount and the
	// accounting stalled at the first lap's maximum. Each lap must
	// contribute its progress.
	cfg := runCfg(stack.SameBank, Overheads{}, 8) // 4 laps of a 2-entry trace
	cfg.Cores = 1
	cfg.Trace = traceOf(t, []workload.Request{
		{LineAddr: 0, Core: 0, ICount: 100},
		{LineAddr: 64, Core: 0, ICount: 200},
	})
	st := Run(prof(t, "mcf"), cfg)
	// Per lap: +100 (0->100), +100 (100->200); wrap contributes the fresh
	// 100 of the new lap. 4 laps = 800.
	if st.Instructions != 800 {
		t.Errorf("Instructions = %d, want 800 over 4 laps", st.Instructions)
	}
}

func TestTraceReuseSequentialDeterministic(t *testing.T) {
	// Pre-fix, the second run resumed the shared cursor mid-trace and saw
	// a rotated request stream.
	p := prof(t, "gcc")
	reqs := workload.NewGenerator(p, 8, 11).Stream(6000)
	cfg := runCfg(stack.SameBank, Overheads{}, 6000)
	cfg.Trace = traceOf(t, reqs)
	a := Run(p, cfg)
	b := Run(p, cfg)
	if a != b {
		t.Errorf("second run over the same Config.Trace diverged:\n%+v\n%+v", a, b)
	}
}

func TestTraceReuseIgnoresExternalCursor(t *testing.T) {
	// A caller that consumed part of the trace must not perturb runs: each
	// run replays from the start through a private cursor.
	p := prof(t, "gcc")
	reqs := workload.NewGenerator(p, 8, 11).Stream(6000)
	src := traceOf(t, reqs)
	cfg := runCfg(stack.SameBank, Overheads{}, 6000)
	cfg.Trace = src
	a := Run(p, cfg)
	src.Next() // advance the shared cursor between runs
	src.Next()
	b := Run(p, cfg)
	if a != b {
		t.Errorf("external cursor position leaked into the run:\n%+v\n%+v", a, b)
	}
}

func TestTraceConcurrentRunsIndependent(t *testing.T) {
	// Concurrent runs over one shared TraceSource must not race on the
	// cursor (caught by -race pre-fix) and must produce identical stats.
	p := prof(t, "gcc")
	reqs := workload.NewGenerator(p, 8, 11).Stream(4000)
	cfg := runCfg(stack.SameBank, Overheads{}, 4000)
	cfg.Trace = traceOf(t, reqs)
	const runs = 4
	out := make([]Stats, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = Run(p, cfg)
		}(i)
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if out[i] != out[0] {
			t.Errorf("concurrent run %d diverged:\n%+v\n%+v", i, out[i], out[0])
		}
	}
}

func TestTraceSourceResetClone(t *testing.T) {
	src := traceOf(t, []workload.Request{
		{LineAddr: 1}, {LineAddr: 2}, {LineAddr: 3},
	})
	src.Next()
	cl := src.Clone()
	if got := cl.Next().LineAddr; got != 2 {
		t.Errorf("clone did not preserve position: got line %d, want 2", got)
	}
	// Advancing the clone must not move the original.
	if got := src.Next().LineAddr; got != 2 {
		t.Errorf("original cursor moved with the clone: got line %d, want 2", got)
	}
	cl.Reset()
	if got := cl.Next().LineAddr; got != 1 {
		t.Errorf("reset did not rewind: got line %d, want 1", got)
	}
}

func TestPerfProgressFinalSnapshot(t *testing.T) {
	cfg := runCfg(stack.SameBank, Overheads{}, 8000)
	cfg.ProgressInterval = time.Millisecond
	var last Progress
	finals := 0
	cfg.Progress = func(p Progress) {
		last = p
		if p.Done {
			finals++
		}
	}
	st := Run(prof(t, "mcf"), cfg)
	if finals != 1 {
		t.Fatalf("got %d final snapshots, want exactly 1", finals)
	}
	if last.RequestsDone != st.RequestsDone || last.RequestsTarget != 8000 {
		t.Errorf("final snapshot %d/%d requests, stats %d/8000",
			last.RequestsDone, last.RequestsTarget, st.RequestsDone)
	}
	if last.Reads != st.Reads {
		t.Errorf("final snapshot %d reads, stats %d", last.Reads, st.Reads)
	}
	if st.Reads > 0 && last.AvgReadLatency <= 0 {
		t.Error("final snapshot has no read latency")
	}
}
