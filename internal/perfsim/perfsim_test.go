package perfsim

import (
	"context"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/stack"
	"repro/internal/workload"
)

func prof(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	return p
}

func runCfg(striping stack.Striping, ov Overheads, requests int) Config {
	c := DefaultConfig()
	c.Striping = striping
	c.Overhead = ov
	c.Requests = requests
	return c
}

func TestDeterministic(t *testing.T) {
	p := prof(t, "mcf")
	a := Run(p, runCfg(stack.SameBank, Overheads{}, 20000))
	b := Run(p, runCfg(stack.SameBank, Overheads{}, 20000))
	if a != b {
		t.Errorf("same config produced different stats:\n%+v\n%+v", a, b)
	}
}

func TestStripingSlowdownOrdering(t *testing.T) {
	// Figure 5: Same-Bank fastest, Across-Banks ~10% slower, Across-Channels
	// ~25% slower (more for memory-bound benchmarks).
	for _, name := range []string{"mcf", "GemsFDTD", "stream"} {
		p := prof(t, name)
		sb := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
		ab := Run(p, runCfg(stack.AcrossBanks, Overheads{}, 30000))
		ac := Run(p, runCfg(stack.AcrossChannels, Overheads{}, 30000))
		if !(sb.Cycles < ab.Cycles && ab.Cycles < ac.Cycles) {
			t.Errorf("%s: cycles not ordered: sb=%d ab=%d ac=%d",
				name, sb.Cycles, ab.Cycles, ac.Cycles)
		}
	}
}

func TestComputeBoundInsensitiveToStriping(t *testing.T) {
	// Figure 15's left side: compute-bound benchmarks barely notice.
	p := prof(t, "povray")
	sb := Run(p, runCfg(stack.SameBank, Overheads{}, 20000))
	ac := Run(p, runCfg(stack.AcrossChannels, Overheads{}, 20000))
	ratio := float64(ac.Cycles) / float64(sb.Cycles)
	if ratio > 1.05 {
		t.Errorf("povray across-channels slowdown %.3f, want <= 1.05", ratio)
	}
}

func TestStripingActivationFanOut(t *testing.T) {
	p := prof(t, "mcf")
	sb := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
	ab := Run(p, runCfg(stack.AcrossBanks, Overheads{}, 30000))
	// Striping over 8 banks multiplies activations several-fold.
	if ab.Power.Activates < 4*sb.Power.Activates {
		t.Errorf("across-banks activates %d not >> same-bank %d",
			ab.Power.Activates, sb.Power.Activates)
	}
	// Bytes moved are identical regardless of striping.
	if ab.Power.ReadBytes != sb.Power.ReadBytes {
		t.Errorf("read bytes differ: ab=%d sb=%d", ab.Power.ReadBytes, sb.Power.ReadBytes)
	}
}

func TestStripingPowerRatio(t *testing.T) {
	// Figure 5/16: striping costs ~3.8-4.7x active power. Accept a broad
	// band around the paper's numbers for a memory-bound benchmark.
	pp := power.Default8Gb()
	p := prof(t, "lbm")
	sb := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
	ab := Run(p, runCfg(stack.AcrossBanks, Overheads{}, 30000))
	ratio := pp.ActivePower(ab.Power) / pp.ActivePower(sb.Power)
	if ratio < 2 || ratio > 8 {
		t.Errorf("across-banks power ratio %.2f, want within (2,8)", ratio)
	}
}

func TestCitadel3DPNearBaseline(t *testing.T) {
	// Figure 15: 3DP with parity caching is within ~2% of baseline.
	for _, name := range []string{"mcf", "lbm", "dealII"} {
		p := prof(t, name)
		sb := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
		dp := Run(p, runCfg(stack.SameBank, Citadel3DP(0.85), 30000))
		ratio := float64(dp.Cycles) / float64(sb.Cycles)
		if ratio > 1.06 {
			t.Errorf("%s: 3DP slowdown %.3f, want <= 1.06", name, ratio)
		}
	}
}

func TestParityCachingHelps(t *testing.T) {
	// Figure 15: 3DP without caching is measurably slower than with.
	p := prof(t, "lbm")
	withCache := Run(p, runCfg(stack.SameBank, Citadel3DP(0.85), 30000))
	noCache := Run(p, runCfg(stack.SameBank, Citadel3DPNoCache(), 30000))
	if noCache.Cycles <= withCache.Cycles {
		t.Errorf("no-cache (%d) not slower than cached (%d)",
			noCache.Cycles, withCache.Cycles)
	}
}

func TestRowHitRateTracksProfile(t *testing.T) {
	for _, tc := range []struct {
		name string
		lo   float64
		hi   float64
	}{
		{"libquantum", 0.7, 1.0}, // profile 0.90
		{"mcf", 0.1, 0.5},        // profile 0.30
	} {
		p := prof(t, tc.name)
		st := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
		if r := st.RowHitRate(); r < tc.lo || r > tc.hi {
			t.Errorf("%s: row hit rate %.2f outside [%.2f,%.2f]", tc.name, r, tc.lo, tc.hi)
		}
	}
}

func TestCPINonZero(t *testing.T) {
	p := prof(t, "gcc")
	st := Run(p, runCfg(stack.SameBank, Overheads{}, 10000))
	if st.CPI(DefaultTiming()) <= 0 {
		t.Error("CPI not positive")
	}
	if st.Instructions == 0 {
		t.Error("no instructions recorded")
	}
	var zero Stats
	if zero.CPI(DefaultTiming()) != 0 || zero.RowHitRate() != 0 {
		t.Error("zero stats accessors should be 0")
	}
}

func TestParityCacheHitRateFig13(t *testing.T) {
	// Figure 13: parity caching hits ~85% on average.
	var sum float64
	n := 0
	for _, name := range []string{"mcf", "lbm", "gcc", "stream", "bwaves"} {
		p := prof(t, name)
		r := ParityCacheHitRate(p, 8<<20, 8, 150000, 7)
		if r.ParityProbes == 0 {
			t.Fatalf("%s: no parity probes", name)
		}
		sum += r.HitRate()
		n++
	}
	avg := sum / float64(n)
	if avg < 0.7 || avg > 0.98 {
		t.Errorf("average parity hit rate %.2f, want ~0.85", avg)
	}
}

func TestLineIndexWithinBounds(t *testing.T) {
	s := &sim{cfg: DefaultConfig()}
	total := s.cfg.Stack.TotalLines()
	for _, addr := range []uint64{0, 1, 12345, 1 << 30, 1 << 40} {
		idx := s.lineIndex(addr)
		if idx < 0 || idx >= total {
			t.Errorf("lineIndex(%d) = %d out of [0,%d)", addr, idx, total)
		}
	}
}

func TestParityLineSharedAcrossBanks(t *testing.T) {
	// Lines at the same (row, slot) in different banks/dies share one
	// Dimension-1 parity line — the locality parity caching exploits.
	s := &sim{cfg: DefaultConfig()}
	cfg := s.cfg.Stack
	a := cfg.LineIndex(stack.Coord{Stack: 0, Die: 1, Bank: 2, Row: 100, Line: 5})
	b := cfg.LineIndex(stack.Coord{Stack: 0, Die: 4, Bank: 7, Row: 100, Line: 5})
	c := cfg.LineIndex(stack.Coord{Stack: 0, Die: 1, Bank: 2, Row: 101, Line: 5})
	if s.parityLine(a) != s.parityLine(b) {
		t.Error("same (row,slot) in different banks should share a parity line")
	}
	if s.parityLine(a) == s.parityLine(c) {
		t.Error("different rows should not share a parity line")
	}
}

func TestReadLatencyIncreasesUnderStriping(t *testing.T) {
	p := prof(t, "mcf")
	sb := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
	ac := Run(p, runCfg(stack.AcrossChannels, Overheads{}, 30000))
	if sb.AvgReadLatency() <= 0 {
		t.Fatal("no read latency recorded")
	}
	if ac.AvgReadLatency() <= sb.AvgReadLatency() {
		t.Errorf("across-channels latency %.1f not above same-bank %.1f",
			ac.AvgReadLatency(), sb.AvgReadLatency())
	}
	if sb.Reads == 0 {
		t.Error("no reads counted")
	}
}

func TestTraceReplayMatchesGenerator(t *testing.T) {
	// Replaying the generator's own stream must reproduce the generated
	// run exactly.
	p := prof(t, "gcc")
	cfg := runCfg(stack.SameBank, Overheads{}, 10000)
	cfg.Seed = 5
	direct := Run(p, cfg)

	reqs := workload.NewGenerator(p, cfg.Cores, cfg.Seed).Stream(10000)
	src, err := workload.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	replay := cfg
	replay.Trace = src
	viaTrace := Run(p, replay)
	if direct != viaTrace {
		t.Errorf("trace replay diverged:\n%+v\n%+v", direct, viaTrace)
	}
}

func TestRunContextCancellation(t *testing.T) {
	p := prof(t, "mcf")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	requests := 50_000_000
	start := time.Now()
	st := RunContext(ctx, p, runCfg(stack.SameBank, Overheads{}, requests))
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if !st.Partial {
		t.Fatal("cancelled run not marked Partial")
	}
	if st.RequestsDone <= 0 || st.RequestsDone >= requests {
		t.Errorf("RequestsDone = %d, want in (0, %d)", st.RequestsDone, requests)
	}
	if st.Cycles == 0 {
		t.Error("partial run has no cycle count")
	}
}

func TestRunContextCompleteNotPartial(t *testing.T) {
	p := prof(t, "mcf")
	st := RunContext(context.Background(), p, runCfg(stack.SameBank, Overheads{}, 5000))
	if st.Partial {
		t.Error("complete run marked Partial")
	}
	if st.RequestsDone != 5000 {
		t.Errorf("RequestsDone = %d, want 5000", st.RequestsDone)
	}
}

func TestParityCacheHitRateContextCancel(t *testing.T) {
	p := prof(t, "lbm")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := ParityCacheHitRateContext(ctx, p, 8<<20, 8, 1_000_000, 1)
	if !r.Partial {
		t.Error("pre-cancelled measurement not marked Partial")
	}
	if r.ParityProbes != 0 {
		t.Errorf("pre-cancelled measurement probed %d times", r.ParityProbes)
	}
}
