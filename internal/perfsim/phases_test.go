package perfsim

import (
	"io"
	"testing"

	"repro/internal/obs/trace"
	"repro/internal/stack"
)

// TestPhaseAttribution checks the latency-attribution invariants: phases
// accumulate only for demand reads, the deterministic service components
// (CAS, activate, burst) match first-principles counts, and contention
// phases stay within the end-to-end latency.
func TestPhaseAttribution(t *testing.T) {
	p := prof(t, "mcf")
	st := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
	if st.Reads == 0 {
		t.Fatal("no reads simulated")
	}
	ph := st.ReadPhases
	tm := DefaultTiming()
	// Same-Bank: one slice per read, so CAS is exactly tCAS per read and
	// burst is exactly LineBurst per read.
	if want := float64(st.Reads) * float64(tm.TCAS); ph.CAS != want {
		t.Errorf("CAS sum = %g, want %g", ph.CAS, want)
	}
	if want := float64(st.Reads) * float64(tm.LineBurst); ph.Burst != want {
		t.Errorf("burst sum = %g, want %g", ph.Burst, want)
	}
	// Activations are shared with background accesses, so the read-side
	// activate sum is bounded by the global miss count.
	if maxAct := float64(st.RowMisses) * float64(tm.TRP+tm.TRCD); ph.Activate > maxAct {
		t.Errorf("activate sum %g exceeds global miss work %g", ph.Activate, maxAct)
	}
	if ph.Queue < 0 || ph.Bus < 0 {
		t.Errorf("negative contention phases: queue=%g bus=%g", ph.Queue, ph.Bus)
	}
	// Each phase alone cannot exceed the end-to-end latency sum (slices of
	// one access proceed in parallel, so the sum of phases may, but each
	// individual phase cannot for single-slice Same-Bank).
	for name, v := range map[string]float64{
		"queue": ph.Queue, "activate": ph.Activate, "cas": ph.CAS,
		"bus": ph.Bus, "burst": ph.Burst,
	} {
		if v > st.ReadLatencySum {
			t.Errorf("%s sum %g exceeds total read latency %g", name, v, st.ReadLatencySum)
		}
	}
	avg := st.AvgReadPhases()
	if got, want := avg.CAS, float64(tm.TCAS); got != want {
		t.Errorf("avg CAS = %g, want %g", got, want)
	}
}

// TestParityOverheadAttribution: 3DP overheads must register parity work,
// and the no-cache variant must cost more than the cached one.
func TestParityOverheadAttribution(t *testing.T) {
	p := prof(t, "stream")
	base := Run(p, runCfg(stack.SameBank, Overheads{}, 30000))
	if base.ParityUpdates != 0 || base.ParityOverheadSum != 0 {
		t.Errorf("baseline registered parity work: %d updates, %g cycles",
			base.ParityUpdates, base.ParityOverheadSum)
	}
	cached := Run(p, runCfg(stack.SameBank, Citadel3DP(0.85), 30000))
	nocache := Run(p, runCfg(stack.SameBank, Citadel3DPNoCache(), 30000))
	if cached.ParityUpdates == 0 {
		t.Fatal("3DP run registered no parity updates")
	}
	if cached.AvgParityOverhead() <= 0 {
		t.Errorf("non-positive average parity overhead: %g", cached.AvgParityOverhead())
	}
	if nocache.ParityOverheadSum <= cached.ParityOverheadSum {
		t.Errorf("no-cache parity overhead (%g) not above cached (%g)",
			nocache.ParityOverheadSum, cached.ParityOverheadSum)
	}
}

// TestPerfTraceEvents wires a recorder into a run and checks the sampled
// read spans carry the phase arguments and export as valid Chrome JSON.
func TestPerfTraceEvents(t *testing.T) {
	p := prof(t, "mcf")
	cfg := runCfg(stack.SameBank, Overheads{}, 20000)
	cfg.RunID = "r-perf-trace"
	cfg.Tracer = trace.New(trace.Options{
		Capacity: 2048, SampleEvery: 16, RunID: cfg.RunID, ClockUnit: "cycles",
	})
	st := Run(p, cfg)
	events, _ := cfg.Tracer.Snapshot()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	for i, ev := range events {
		if ev.Name != "read" || ev.Cat != "perfsim" || ev.Phase != trace.PhaseComplete {
			t.Fatalf("event %d unexpected: %+v", i, ev)
		}
		if ev.Dur < 0 || ev.TS < 0 {
			t.Errorf("event %d has negative time: ts=%g dur=%g", i, ev.TS, ev.Dur)
		}
		keys := map[string]bool{}
		for _, a := range ev.Args {
			keys[a.Key] = true
		}
		for _, k := range []string{"queue", "activate", "bus", "burst"} {
			if !keys[k] {
				t.Fatalf("event %d missing phase arg %q: %+v", i, k, ev.Args)
			}
		}
	}
	if uint64(len(events)) >= st.Reads {
		t.Errorf("sampling kept %d of %d reads; expected a strict subset", len(events), st.Reads)
	}
	if err := cfg.Tracer.WriteChromeTrace(io.Discard); err != nil {
		t.Fatalf("chrome trace export failed: %v", err)
	}
}

// TestProgressCarriesRunID: snapshots must echo Config.RunID.
func TestProgressCarriesRunID(t *testing.T) {
	p := prof(t, "mcf")
	cfg := runCfg(stack.SameBank, Overheads{}, 5000)
	cfg.RunID = "r-progress"
	var last Progress
	cfg.Progress = func(pr Progress) { last = pr }
	Run(p, cfg)
	if !last.Done {
		t.Fatal("no final progress snapshot")
	}
	if last.RunID != "r-progress" {
		t.Errorf("progress RunID = %q, want %q", last.RunID, "r-progress")
	}
}
