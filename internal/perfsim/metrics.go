package perfsim

import "repro/internal/obs"

// Engine-level metrics, exposed by cmd/citadel-server at GET /metrics.
// They aggregate across every simulation in the process; per-run numbers
// flow through Config.Progress instead.
var (
	mRequests = obs.Default().Counter("citadel_perfsim_requests_total",
		"Memory requests served across all performance simulations.")
	mReads = obs.Default().Counter("citadel_perfsim_reads_total",
		"Demand reads served across all performance simulations.")
	mRowHits = obs.Default().Counter("citadel_perfsim_row_hits_total",
		"Bank-level row-buffer hits.")
	mRowMisses = obs.Default().Counter("citadel_perfsim_row_misses_total",
		"Bank-level row-buffer misses.")
	mRunsActive = obs.Default().Gauge("citadel_perfsim_runs_active",
		"Performance simulations currently executing.")
	mReadLatency = obs.Default().Histogram("citadel_perfsim_read_latency_cycles",
		"End-to-end demand-read latency in memory-bus cycles.",
		[]float64{10, 15, 20, 30, 45, 60, 90, 120, 180, 240, 360, 480, 720, 960})
	// Per-phase latency attribution (see Phases). Phase magnitudes are much
	// smaller than end-to-end latency, so the buckets start at single cycles.
	mPhaseQueue = obs.Default().Histogram("citadel_perfsim_read_queue_wait_cycles",
		"Demand-read cycles spent waiting for busy banks (conflicts plus exposed write traffic).",
		phaseBounds)
	mPhaseActivate = obs.Default().Histogram("citadel_perfsim_read_activate_cycles",
		"Demand-read cycles spent on row activation (tRP+tRCD on row-buffer misses).",
		phaseBounds)
	mPhaseBus = obs.Default().Histogram("citadel_perfsim_read_bus_wait_cycles",
		"Demand-read cycles spent waiting for the channel data bus.",
		phaseBounds)
	mPhaseBurst = obs.Default().Histogram("citadel_perfsim_read_burst_cycles",
		"Demand-read cycles spent on data transfer bursts.",
		phaseBounds)
	mParityOverhead = obs.Default().Histogram("citadel_perfsim_parity_overhead_cycles",
		"Background cycles per writeback spent on Dimension-1 parity maintenance (RBW + parity traffic).",
		[]float64{5, 10, 20, 40, 80, 160, 320, 640})
)

// phaseBounds buckets the per-phase cycle counts.
var phaseBounds = []float64{1, 2, 4, 8, 15, 30, 60, 120, 240, 480}
