package perfsim

import "repro/internal/obs"

// Engine-level metrics, exposed by cmd/citadel-server at GET /metrics.
// They aggregate across every simulation in the process; per-run numbers
// flow through Config.Progress instead.
var (
	mRequests = obs.Default().Counter("citadel_perfsim_requests_total",
		"Memory requests served across all performance simulations.")
	mReads = obs.Default().Counter("citadel_perfsim_reads_total",
		"Demand reads served across all performance simulations.")
	mRowHits = obs.Default().Counter("citadel_perfsim_row_hits_total",
		"Bank-level row-buffer hits.")
	mRowMisses = obs.Default().Counter("citadel_perfsim_row_misses_total",
		"Bank-level row-buffer misses.")
	mRunsActive = obs.Default().Gauge("citadel_perfsim_runs_active",
		"Performance simulations currently executing.")
	mReadLatency = obs.Default().Histogram("citadel_perfsim_read_latency_cycles",
		"End-to-end demand-read latency in memory-bus cycles.",
		[]float64{10, 15, 20, 30, 45, 60, 90, 120, 180, 240, 360, 480, 720, 960})
)
