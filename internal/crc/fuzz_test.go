package crc

import (
	"hash/crc32"
	"testing"
)

// FuzzChecksumMatchesStdlib cross-checks all three implementations against
// the standard library on arbitrary inputs.
func FuzzChecksumMatchesStdlib(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("123456789"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, p []byte) {
		want := crc32.ChecksumIEEE(p)
		if got := Checksum(p); got != want {
			t.Fatalf("Checksum = %#x, stdlib %#x", got, want)
		}
		if got := UpdateBitwise(0, p); got != want {
			t.Fatalf("bitwise = %#x, stdlib %#x", got, want)
		}
		if got := Update(0, p); got != want {
			t.Fatalf("table = %#x, stdlib %#x", got, want)
		}
	})
}

// FuzzIncremental checks that splitting the input anywhere gives the same
// checksum.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte("hello world"), 3)
	f.Fuzz(func(t *testing.T, p []byte, split int) {
		if split < 0 || split > len(p) {
			return
		}
		whole := Checksum(p)
		part := Update(Update(0, p[:split]), p[split:])
		if whole != part {
			t.Fatalf("split %d: %#x != %#x", split, part, whole)
		}
	})
}
