// Package crc implements the CRC-32 checksum (IEEE 802.3 polynomial) used by
// Citadel for per-cache-line error detection. It is written from scratch —
// reflected bitwise reference, byte-at-a-time table lookup, and slicing-by-4
// and slicing-by-8 fast paths — so the detection behaviour modeled by the
// fault simulator is backed by a real codec.
//
// Citadel stores a 32-bit CRC alongside each 512-bit line; the checksum is
// computed over the line's address and data so that address-TSV faults
// (which silently return the wrong row) are also detected (paper §V-C.2).
package crc

import "encoding/binary"

// Poly is the reversed representation of the IEEE 802.3 polynomial
// x^32+x^26+x^23+x^22+x^16+x^12+x^11+x^10+x^8+x^7+x^5+x^4+x^2+x+1.
const Poly = 0xEDB88320

// Table is a 256-entry lookup table for byte-at-a-time CRC updates.
type Table [256]uint32

// slicingTables extends Table with three more tables for slicing-by-4.
type slicingTables [4]Table

// slicing8Tables holds the eight tables for slicing-by-8: table k maps a
// byte that sits k positions from the end of an 8-byte block to its
// contribution to the CRC after the whole block has been consumed.
type slicing8Tables [8]Table

var (
	stdTable    = MakeTable()
	stdSlicing  = makeSlicingTables(stdTable)
	stdSlicing8 = makeSlicing8Tables(stdTable)
)

// MakeTable builds the byte-at-a-time lookup table for Poly.
func MakeTable() *Table {
	t := new(Table)
	for i := range t {
		crc := uint32(i)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ Poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}

func makeSlicingTables(base *Table) *slicingTables {
	st := new(slicingTables)
	st[0] = *base
	for i := 0; i < 256; i++ {
		crc := base[i]
		for j := 1; j < 4; j++ {
			crc = base[crc&0xFF] ^ crc>>8
			st[j][i] = crc
		}
	}
	return st
}

func makeSlicing8Tables(base *Table) *slicing8Tables {
	st := new(slicing8Tables)
	st[0] = *base
	for i := 0; i < 256; i++ {
		crc := base[i]
		for j := 1; j < 8; j++ {
			crc = base[crc&0xFF] ^ crc>>8
			st[j][i] = crc
		}
	}
	return st
}

// UpdateBitwise processes p one bit at a time. It is the reference
// implementation the faster variants are tested against.
func UpdateBitwise(crc uint32, p []byte) uint32 {
	crc = ^crc
	for _, b := range p {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ Poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// Update processes p a byte at a time using the lookup table.
func Update(crc uint32, p []byte) uint32 {
	crc = ^crc
	for _, b := range p {
		crc = stdTable[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

// UpdateSlicing4 processes p four bytes at a time (slicing-by-4), falling
// back to the byte loop for the tail. It matches Update exactly.
func UpdateSlicing4(crc uint32, p []byte) uint32 {
	crc = ^crc
	for len(p) >= 4 {
		crc ^= binary.LittleEndian.Uint32(p)
		crc = stdSlicing[3][byte(crc)] ^
			stdSlicing[2][byte(crc>>8)] ^
			stdSlicing[1][byte(crc>>16)] ^
			stdSlicing[0][byte(crc>>24)]
		p = p[4:]
	}
	for _, b := range p {
		crc = stdTable[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

// UpdateSlicing8 processes p eight bytes at a time (slicing-by-8), falling
// back to the byte loop for the tail. Eight independent table lookups per
// iteration break the byte-loop's serial dependency chain, roughly doubling
// throughput over slicing-by-4 on 64-byte cache lines. It matches Update
// exactly.
func UpdateSlicing8(crc uint32, p []byte) uint32 {
	crc = ^crc
	for len(p) >= 8 {
		lo := binary.LittleEndian.Uint32(p) ^ crc
		hi := binary.LittleEndian.Uint32(p[4:])
		crc = stdSlicing8[7][byte(lo)] ^
			stdSlicing8[6][byte(lo>>8)] ^
			stdSlicing8[5][byte(lo>>16)] ^
			stdSlicing8[4][byte(lo>>24)] ^
			stdSlicing8[3][byte(hi)] ^
			stdSlicing8[2][byte(hi>>8)] ^
			stdSlicing8[1][byte(hi>>16)] ^
			stdSlicing8[0][byte(hi>>24)]
		p = p[8:]
	}
	for _, b := range p {
		crc = stdTable[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

// Checksum returns the CRC-32 of p starting from a zero CRC.
func Checksum(p []byte) uint32 { return UpdateSlicing8(0, p) }

// ChecksumLine returns the CRC-32 Citadel stores for a cache line: the
// checksum of the line address (little-endian 64-bit) followed by the data.
// Folding the address in lets the checksum catch address-TSV faults, where
// the stack returns a perfectly valid but wrong row.
func ChecksumLine(addr uint64, data []byte) uint32 {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], addr)
	return UpdateSlicing8(UpdateSlicing8(0, hdr[:]), data)
}

// Verify reports whether data (with its address) matches the stored CRC.
func Verify(addr uint64, data []byte, stored uint32) bool {
	return ChecksumLine(addr, data) == stored
}
