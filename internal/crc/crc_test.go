package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		p := make([]byte, n)
		rng.Read(p)
		want := crc32.ChecksumIEEE(p)
		if got := Checksum(p); got != want {
			t.Fatalf("Checksum(%d bytes) = %#x, want %#x", n, got, want)
		}
	}
}

func TestKnownVectors(t *testing.T) {
	// The canonical CRC-32 check value.
	if got := Checksum([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("Checksum(123456789) = %#x, want 0xCBF43926", got)
	}
	if got := Checksum(nil); got != 0 {
		t.Errorf("Checksum(nil) = %#x, want 0", got)
	}
	if got := Checksum([]byte{0}); got != 0xD202EF8D {
		t.Errorf("Checksum([0]) = %#x, want 0xD202EF8D", got)
	}
}

func TestVariantsAgree(t *testing.T) {
	f := func(p []byte, seed uint32) bool {
		bw := UpdateBitwise(seed, p)
		tb := Update(seed, p)
		s4 := UpdateSlicing4(seed, p)
		return bw == tb && tb == s4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalUpdate(t *testing.T) {
	p := []byte("the quick brown fox jumps over the lazy dog")
	whole := Checksum(p)
	for split := 0; split <= len(p); split++ {
		part := Update(Update(0, p[:split]), p[split:])
		if part != whole {
			t.Fatalf("split at %d: %#x != %#x", split, part, whole)
		}
	}
}

func TestDetectsSingleBitFlips(t *testing.T) {
	line := make([]byte, 64)
	rand.New(rand.NewSource(7)).Read(line)
	orig := ChecksumLine(0x1234, line)
	for byteIdx := 0; byteIdx < len(line); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			line[byteIdx] ^= 1 << bit
			if ChecksumLine(0x1234, line) == orig {
				t.Fatalf("bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
			line[byteIdx] ^= 1 << bit
		}
	}
}

func TestDetectsAddressFaults(t *testing.T) {
	// An address-TSV fault returns valid data from the wrong address; the
	// address-seeded checksum must catch it (paper §V-C.2).
	line := make([]byte, 64)
	stored := ChecksumLine(0x4000, line)
	if Verify(0x4000, line, stored) != true {
		t.Fatal("correct address failed verification")
	}
	if Verify(0x8000, line, stored) {
		t.Error("wrong address passed verification")
	}
}

func TestDetectsBurstErrors(t *testing.T) {
	// CRC-32 detects all burst errors up to 32 bits.
	rng := rand.New(rand.NewSource(3))
	line := make([]byte, 64)
	rng.Read(line)
	orig := Checksum(line)
	for trial := 0; trial < 2000; trial++ {
		burstLen := 1 + rng.Intn(32)
		start := rng.Intn(len(line)*8 - burstLen)
		cp := make([]byte, len(line))
		copy(cp, line)
		// Flip first and last bit of the burst plus random interior bits so
		// the burst is genuinely burstLen long.
		flip := func(bit int) { cp[bit/8] ^= 1 << (bit % 8) }
		flip(start)
		if burstLen > 1 {
			flip(start + burstLen - 1)
			for b := start + 1; b < start+burstLen-1; b++ {
				if rng.Intn(2) == 0 {
					flip(b)
				}
			}
		}
		if Checksum(cp) == orig {
			t.Fatalf("burst of %d bits at %d undetected", burstLen, start)
		}
	}
}

func TestMakeTableMatchesStdlib(t *testing.T) {
	std := crc32.MakeTable(crc32.IEEE)
	mine := MakeTable()
	for i := range mine {
		if mine[i] != std[i] {
			t.Fatalf("table[%d] = %#x, want %#x", i, mine[i], std[i])
		}
	}
}

func BenchmarkChecksum64B(b *testing.B) {
	line := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Checksum(line)
	}
}

func BenchmarkChecksumBitwise64B(b *testing.B) {
	line := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		UpdateBitwise(0, line)
	}
}
