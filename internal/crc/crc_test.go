package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		p := make([]byte, n)
		rng.Read(p)
		want := crc32.ChecksumIEEE(p)
		if got := Checksum(p); got != want {
			t.Fatalf("Checksum(%d bytes) = %#x, want %#x", n, got, want)
		}
	}
}

func TestKnownVectors(t *testing.T) {
	// The canonical CRC-32 check value.
	if got := Checksum([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("Checksum(123456789) = %#x, want 0xCBF43926", got)
	}
	if got := Checksum(nil); got != 0 {
		t.Errorf("Checksum(nil) = %#x, want 0", got)
	}
	if got := Checksum([]byte{0}); got != 0xD202EF8D {
		t.Errorf("Checksum([0]) = %#x, want 0xD202EF8D", got)
	}
}

func TestVariantsAgree(t *testing.T) {
	f := func(p []byte, seed uint32) bool {
		bw := UpdateBitwise(seed, p)
		tb := Update(seed, p)
		s4 := UpdateSlicing4(seed, p)
		s8 := UpdateSlicing8(seed, p)
		return bw == tb && tb == s4 && s4 == s8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalUpdate(t *testing.T) {
	p := []byte("the quick brown fox jumps over the lazy dog")
	whole := Checksum(p)
	for split := 0; split <= len(p); split++ {
		part := Update(Update(0, p[:split]), p[split:])
		if part != whole {
			t.Fatalf("split at %d: %#x != %#x", split, part, whole)
		}
	}
}

func TestDetectsSingleBitFlips(t *testing.T) {
	line := make([]byte, 64)
	rand.New(rand.NewSource(7)).Read(line)
	orig := ChecksumLine(0x1234, line)
	for byteIdx := 0; byteIdx < len(line); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			line[byteIdx] ^= 1 << bit
			if ChecksumLine(0x1234, line) == orig {
				t.Fatalf("bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
			line[byteIdx] ^= 1 << bit
		}
	}
}

func TestDetectsAddressFaults(t *testing.T) {
	// An address-TSV fault returns valid data from the wrong address; the
	// address-seeded checksum must catch it (paper §V-C.2).
	line := make([]byte, 64)
	stored := ChecksumLine(0x4000, line)
	if Verify(0x4000, line, stored) != true {
		t.Fatal("correct address failed verification")
	}
	if Verify(0x8000, line, stored) {
		t.Error("wrong address passed verification")
	}
}

func TestDetectsBurstErrors(t *testing.T) {
	// CRC-32 detects all burst errors up to 32 bits.
	rng := rand.New(rand.NewSource(3))
	line := make([]byte, 64)
	rng.Read(line)
	orig := Checksum(line)
	for trial := 0; trial < 2000; trial++ {
		burstLen := 1 + rng.Intn(32)
		start := rng.Intn(len(line)*8 - burstLen)
		cp := make([]byte, len(line))
		copy(cp, line)
		// Flip first and last bit of the burst plus random interior bits so
		// the burst is genuinely burstLen long.
		flip := func(bit int) { cp[bit/8] ^= 1 << (bit % 8) }
		flip(start)
		if burstLen > 1 {
			flip(start + burstLen - 1)
			for b := start + 1; b < start+burstLen-1; b++ {
				if rng.Intn(2) == 0 {
					flip(b)
				}
			}
		}
		if Checksum(cp) == orig {
			t.Fatalf("burst of %d bits at %d undetected", burstLen, start)
		}
	}
}

func TestMakeTableMatchesStdlib(t *testing.T) {
	std := crc32.MakeTable(crc32.IEEE)
	mine := MakeTable()
	for i := range mine {
		if mine[i] != std[i] {
			t.Fatalf("table[%d] = %#x, want %#x", i, mine[i], std[i])
		}
	}
}

func TestSlicing8AllLengthsAndAlignments(t *testing.T) {
	// Exhaustively sweep lengths 0..129 and sub-word start offsets so both
	// the 8-byte block loop and the tail loop see every phase.
	buf := make([]byte, 140)
	rand.New(rand.NewSource(11)).Read(buf)
	for off := 0; off < 8; off++ {
		for n := 0; n+off <= len(buf) && n <= 129; n++ {
			p := buf[off : off+n]
			want := crc32.ChecksumIEEE(p)
			if got := UpdateSlicing8(0, p); got != want {
				t.Fatalf("UpdateSlicing8(off=%d, len=%d) = %#x, want %#x", off, n, got, want)
			}
		}
	}
}

// Per-variant benchmarks on the 64-byte cache line Citadel checksums; the
// stdlib hash/crc32 row is the reference ceiling (it uses the same
// slicing-by-8 idea, plus CLMUL on amd64).
func benchVariant(b *testing.B, f func(uint32, []byte) uint32) {
	line := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(0, line)
	}
}

func BenchmarkCRCBitwise64B(b *testing.B)   { benchVariant(b, UpdateBitwise) }
func BenchmarkCRCTable64B(b *testing.B)     { benchVariant(b, Update) }
func BenchmarkCRCSlicing4_64B(b *testing.B) { benchVariant(b, UpdateSlicing4) }
func BenchmarkCRCSlicing8_64B(b *testing.B) { benchVariant(b, UpdateSlicing8) }

func BenchmarkCRCStdlib64B(b *testing.B) {
	line := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		crc32.ChecksumIEEE(line)
	}
}

// BenchmarkChecksum64B is the dispatching entry point the functional
// controller calls per line read.
func BenchmarkChecksum64B(b *testing.B) {
	line := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Checksum(line)
	}
}
