package reedsolomon

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCode(t testing.TB, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(256, 10); err == nil {
		t.Error("accepted n > 255")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := New(10, 10); err == nil {
		t.Error("accepted k = n")
	}
	if _, err := New(10, 12); err == nil {
		t.Error("accepted k > n")
	}
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	c := mustCode(t, 72, 64)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(cw) != 72 {
			t.Fatalf("codeword length %d", len(cw))
		}
		if !bytes.Equal(cw[:64], data) {
			t.Fatal("code is not systematic")
		}
		if !c.IsValid(cw) {
			t.Fatal("fresh codeword has nonzero syndromes")
		}
	}
}

func TestEncodeWrongLength(t *testing.T) {
	c := mustCode(t, 72, 64)
	if _, err := c.Encode(make([]byte, 63)); err == nil {
		t.Error("accepted short data")
	}
}

func TestCorrectsSingleSymbolErrors(t *testing.T) {
	// RS(72,64): 8 parity symbols, corrects 4 unknown-position errors.
	c := mustCode(t, 72, 64)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 64)
	rng.Read(data)
	orig, _ := c.Encode(data)
	for pos := 0; pos < 72; pos++ {
		cw := append([]byte(nil), orig...)
		cw[pos] ^= 0x5A
		got, corrected, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong data", pos)
		}
		if len(corrected) != 1 || corrected[0] != pos {
			t.Fatalf("pos %d: corrected %v", pos, corrected)
		}
	}
}

func TestCorrectsUpToCapacity(t *testing.T) {
	c := mustCode(t, 40, 32) // corrects 4 errors
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		orig, _ := c.Encode(data)
		nerr := 1 + rng.Intn(c.CorrectableErrors())
		cw := append([]byte(nil), orig...)
		pos := rng.Perm(40)[:nerr]
		for _, p := range pos {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestRejectsBeyondCapacity(t *testing.T) {
	c := mustCode(t, 40, 32)
	rng := rand.New(rand.NewSource(4))
	miscorrected := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		orig, _ := c.Encode(data)
		cw := append([]byte(nil), orig...)
		// Far beyond capacity: 9 errors for a 4-error code.
		for _, p := range rng.Perm(40)[:9] {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.Decode(cw)
		if err == nil && bytes.Equal(got, data) {
			t.Fatalf("trial %d: decoded 9 errors correctly (impossible)", trial)
		}
		if err == nil {
			miscorrected++ // decoded to a *different* valid codeword
		}
	}
	// Miscorrection to a nearby codeword is possible but must be rare.
	if miscorrected > trials/4 {
		t.Errorf("miscorrected %d/%d, expected mostly ErrTooManyErrors", miscorrected, trials)
	}
}

func TestErasureDecoding(t *testing.T) {
	c := mustCode(t, 40, 32) // 8 parity symbols: corrects 8 erasures
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		orig, _ := c.Encode(data)
		nerase := 1 + rng.Intn(8)
		cw := append([]byte(nil), orig...)
		pos := rng.Perm(40)[:nerase]
		for _, p := range pos {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.DecodeErasures(cw, pos)
		if err != nil {
			t.Fatalf("trial %d (%d erasures): %v", trial, nerase, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestMixedErrorsAndErasures(t *testing.T) {
	c := mustCode(t, 40, 32)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		orig, _ := c.Encode(data)
		// 2 errors + 4 erasures: 2*2+4 = 8 = n-k, exactly at capacity.
		perm := rng.Perm(40)
		erasures := perm[:4]
		errsAt := perm[4:6]
		cw := append([]byte(nil), orig...)
		for _, p := range erasures {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		for _, p := range errsAt {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.DecodeErasures(cw, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestTooManyErasures(t *testing.T) {
	c := mustCode(t, 40, 32)
	cw := make([]byte, 40)
	if _, _, err := c.DecodeErasures(cw, []int{0, 1, 2, 3, 4, 5, 6, 7, 8}); !errors.Is(err, ErrTooManyErrors) {
		t.Errorf("9 erasures: err = %v, want ErrTooManyErrors", err)
	}
}

func TestErasurePositionValidation(t *testing.T) {
	c := mustCode(t, 40, 32)
	cw := make([]byte, 40)
	if _, _, err := c.DecodeErasures(cw, []int{40}); err == nil {
		t.Error("accepted erasure position out of range")
	}
	if _, _, err := c.DecodeErasures(cw, []int{-1}); err == nil {
		t.Error("accepted negative erasure position")
	}
}

func TestDecodeCleanCodeword(t *testing.T) {
	c := mustCode(t, 72, 64)
	data := bytes.Repeat([]byte{0xAB}, 64)
	cw, _ := c.Encode(data)
	got, corrected, err := c.Decode(cw)
	if err != nil || len(corrected) != 0 || !bytes.Equal(got, data) {
		t.Errorf("clean decode: data ok=%v corrected=%v err=%v", bytes.Equal(got, data), corrected, err)
	}
}

// TestChipKillProperty verifies the property the Citadel baseline relies on:
// with one 8-bit symbol per memory unit and enough parity, the complete
// failure of any single unit's symbol is correctable.
func TestChipKillProperty(t *testing.T) {
	// 8 data symbols (one per bank) + 2 parity: corrects 1 unknown symbol.
	c := mustCode(t, 10, 8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 8)
		rng.Read(data)
		cw, _ := c.Encode(data)
		bank := rng.Intn(10)
		cw[bank] = byte(rng.Intn(256)) // bank returns garbage
		got, _, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d: single unit failure uncorrectable: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

// TestTwoUnitFailuresUncorrectable verifies the converse: two failed units
// defeat a single-symbol-correcting code (either an error or a detectable
// uncorrectable pattern, never silent corruption back to wrong data).
func TestTwoUnitFailuresUncorrectable(t *testing.T) {
	c := mustCode(t, 10, 8)
	rng := rand.New(rand.NewSource(8))
	silently := 0
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, 8)
		rng.Read(data)
		cw, _ := c.Encode(data)
		p := rng.Perm(10)
		cw[p[0]] ^= byte(1 + rng.Intn(255))
		cw[p[1]] ^= byte(1 + rng.Intn(255))
		got, _, err := c.Decode(cw)
		if err == nil && bytes.Equal(got, data) {
			t.Fatalf("trial %d: corrected 2 unit failures with t=1 code", trial)
		}
		if err == nil {
			silently++
		}
	}
	if silently > 250 {
		t.Errorf("silent miscorrection in %d/500 trials", silently)
	}
}

func TestDecodeQuick(t *testing.T) {
	c := mustCode(t, 20, 12) // corrects 4
	f := func(raw [12]byte, noise [4]byte, posSeed int64) bool {
		data := raw[:]
		cw, err := c.Encode(data)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(posSeed))
		for i, nz := range noise {
			if nz == 0 {
				continue
			}
			cw[(rng.Intn(20)+i*5)%20] ^= nz
		}
		got, _, err := c.Decode(cw)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode72_64(b *testing.B) {
	c := mustCode(b, 72, 64)
	data := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeOneError(b *testing.B) {
	c := mustCode(b, 72, 64)
	data := make([]byte, 64)
	orig, _ := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := append([]byte(nil), orig...)
		cw[10] ^= 0xFF
		if _, _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
