// Package reedsolomon implements a Reed–Solomon codec over GF(2^8) with
// 8-bit symbols: systematic encoding, syndrome-based error correction
// (Sugiyama's extended-Euclid key-equation solver + Chien search + Forney),
// and erasure decoding.
//
// This is the "strong 8-bit symbol-based code (similar to ChipKill)" that
// Citadel's evaluation uses as its baseline. When each code symbol maps to a
// distinct bank (or channel), the code corrects the complete failure of one
// such unit per codeword; the fault-simulator adapters in internal/ecc build
// on that property.
package reedsolomon

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// ErrTooManyErrors is returned when the error pattern exceeds the code's
// correction capability.
var ErrTooManyErrors = errors.New("reedsolomon: too many errors to correct")

// Code is a Reed–Solomon code with k data symbols and n-k parity symbols.
// It can correct up to (n-k)/2 symbol errors at unknown positions, or n-k
// erasures at known positions, or mixtures with 2*errors+erasures <= n-k.
type Code struct {
	n, k int
	gen  gf256.Poly // generator polynomial, degree n-k
}

// New constructs an RS(n, k) code. n must not exceed 255 (the symbol field
// size minus one) and k must be in (0, n).
func New(n, k int) (*Code, error) {
	if n > 255 {
		return nil, fmt.Errorf("reedsolomon: n = %d exceeds 255", n)
	}
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("reedsolomon: need 0 < k < n, got n=%d k=%d", n, k)
	}
	// gen(x) = prod_{i=0}^{n-k-1} (x - alpha^i)
	gen := gf256.Poly{1}
	for i := 0; i < n-k; i++ {
		gen = gf256.PolyMul(gen, gf256.Poly{gf256.Exp(i), 1})
	}
	return &Code{n: n, k: k, gen: gen}, nil
}

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols.
func (c *Code) K() int { return c.k }

// ParitySymbols returns n-k.
func (c *Code) ParitySymbols() int { return c.n - c.k }

// CorrectableErrors returns the maximum number of symbol errors at unknown
// positions the code can correct.
func (c *Code) CorrectableErrors() int { return (c.n - c.k) / 2 }

// Encode appends n-k parity symbols to data (length k) and returns the
// systematic codeword of length n. Codeword layout: data followed by parity.
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("reedsolomon: data length %d, want %d", len(data), c.k)
	}
	// Message polynomial m(x)*x^(n-k); remainder mod gen is the parity.
	// Our Poly is lowest-degree-first, and we place data[0] as the
	// highest-degree coefficient so the codeword reads left to right.
	np := c.n - c.k
	msg := make(gf256.Poly, c.n)
	for i, d := range data {
		msg[c.n-1-i] = d
	}
	rem := gf256.PolyMod(msg, c.gen)
	cw := make([]byte, c.n)
	copy(cw, data)
	for i := 0; i < np; i++ {
		// rem has degree < np; coefficient of x^(np-1-i) is parity symbol i.
		var v byte
		if np-1-i < len(rem) {
			v = rem[np-1-i]
		}
		cw[c.k+i] = v
	}
	return cw, nil
}

// codewordPoly converts a codeword (left-to-right symbol order) to a
// polynomial with the leftmost symbol as the highest-degree coefficient.
func (c *Code) codewordPoly(cw []byte) gf256.Poly {
	p := make(gf256.Poly, c.n)
	for i, s := range cw {
		p[c.n-1-i] = s
	}
	return p
}

// Syndromes computes the n-k syndromes S_i = r(alpha^i). All-zero syndromes
// mean the codeword is valid.
func (c *Code) Syndromes(cw []byte) ([]byte, error) {
	if len(cw) != c.n {
		return nil, fmt.Errorf("reedsolomon: codeword length %d, want %d", len(cw), c.n)
	}
	p := c.codewordPoly(cw)
	synd := make([]byte, c.n-c.k)
	for i := range synd {
		synd[i] = p.Eval(gf256.Exp(i))
	}
	return synd, nil
}

// IsValid reports whether cw is a valid codeword (all syndromes zero).
func (c *Code) IsValid(cw []byte) bool {
	synd, err := c.Syndromes(cw)
	if err != nil {
		return false
	}
	for _, s := range synd {
		if s != 0 {
			return false
		}
	}
	return true
}

// Decode corrects up to (n-k)/2 symbol errors in place and returns the data
// symbols along with the positions (codeword indices) that were corrected.
// It returns ErrTooManyErrors when the pattern is uncorrectable.
func (c *Code) Decode(cw []byte) (data []byte, corrected []int, err error) {
	return c.DecodeErasures(cw, nil)
}

// DecodeErasures corrects a mixture of erasures (known-bad positions) and
// errors, subject to 2*errors + erasures <= n-k. Erasure positions are
// codeword indices (0 = leftmost/data[0]).
func (c *Code) DecodeErasures(cw []byte, erasures []int) (data []byte, corrected []int, err error) {
	if len(cw) != c.n {
		return nil, nil, fmt.Errorf("reedsolomon: codeword length %d, want %d", len(cw), c.n)
	}
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, nil, fmt.Errorf("reedsolomon: erasure position %d out of range", e)
		}
	}
	if len(erasures) > c.n-c.k {
		return nil, nil, ErrTooManyErrors
	}
	synd, _ := c.Syndromes(cw)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		out := make([]byte, c.k)
		copy(out, cw[:c.k])
		return out, nil, nil
	}

	// Erasure locator: prod over erasures of (1 + x*alpha^pos), where pos is
	// the power-position of the symbol (codeword index i corresponds to the
	// coefficient of x^(n-1-i), i.e. position n-1-i).
	nerase := len(erasures)
	erasLoc := gf256.Poly{1}
	for _, e := range erasures {
		pos := c.n - 1 - e
		erasLoc = gf256.PolyMul(erasLoc, gf256.Poly{1, gf256.Exp(pos)})
	}

	// Modified syndrome polynomial Xi(x) = [S(x) * erasLoc(x)] mod x^(n-k).
	sPoly := make(gf256.Poly, len(synd))
	copy(sPoly, synd)
	modified := gf256.PolyMul(sPoly, erasLoc)
	if len(modified) > c.n-c.k {
		modified = modified[:c.n-c.k]
	}

	// Sugiyama's algorithm: extended Euclid on x^(n-k) and Xi(x), stopping
	// when deg(remainder) < (n-k+e)/2, yields the error locator Lambda (the
	// Bezout coefficient) and the errata evaluator Omega (the remainder),
	// both up to a common scale.
	xNK := make(gf256.Poly, c.n-c.k+1)
	xNK[c.n-c.k] = 1
	r0, r1 := xNK, modified
	t0, t1 := gf256.Poly{}, gf256.Poly{1}
	threshold := (c.n - c.k + nerase) / 2
	for r1.Degree() >= threshold {
		q, rem := gf256.PolyDivMod(r0, r1)
		r0, r1 = r1, rem
		t0, t1 = t1, gf256.PolyAdd(t0, gf256.PolyMul(q, t1))
	}
	errLoc, omega := t1.Trim(), r1.Trim()

	// Combined errata locator covers both errors and erasures. Normalize so
	// locator(0) == 1 (required by the Chien/Forney formulation).
	locator := gf256.PolyMul(errLoc, erasLoc).Trim()
	if len(locator) == 0 || locator[0] == 0 {
		return nil, nil, ErrTooManyErrors
	}
	scale := gf256.Inv(locator[0])
	locator = gf256.PolyScale(locator, scale)
	omega = gf256.PolyScale(omega, scale)

	nerr := locator.Degree()
	if nerr == 0 {
		return nil, nil, ErrTooManyErrors
	}
	// Budget check: 2*errors + erasures must fit in n-k.
	if 2*(nerr-nerase)+nerase > c.n-c.k {
		return nil, nil, ErrTooManyErrors
	}

	// Chien search: find roots of the locator; root alpha^{-pos} marks
	// position pos.
	positions := make([]int, 0, nerr)
	for pos := 0; pos < c.n; pos++ {
		if locator.Eval(gf256.Exp(255-pos)) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != nerr {
		return nil, nil, ErrTooManyErrors
	}

	// Forney algorithm: error magnitude at position p is
	// e_p = X_p * Omega(X_p^{-1}) / Locator'(X_p^{-1}), with X_p = alpha^p.
	deriv := gf256.FormalDerivative(locator)
	fixed := make([]byte, len(cw))
	copy(fixed, cw)
	corrected = make([]int, 0, len(positions))
	for _, pos := range positions {
		xInv := gf256.Exp(255 - pos)
		denom := deriv.Eval(xInv)
		if denom == 0 {
			return nil, nil, ErrTooManyErrors
		}
		num := omega.Eval(xInv)
		mag := gf256.Mul(gf256.Exp(pos), gf256.Div(num, denom))
		idx := c.n - 1 - pos
		fixed[idx] ^= mag
		if mag != 0 {
			corrected = append(corrected, idx)
		}
	}
	if !c.IsValid(fixed) {
		return nil, nil, ErrTooManyErrors
	}
	copy(cw, fixed)
	out := make([]byte, c.k)
	copy(out, fixed[:c.k])
	return out, corrected, nil
}
