package reedsolomon

import (
	"bytes"
	"testing"
)

// FuzzDecodeNeverPanicsOrLies feeds arbitrary corrupted codewords to the
// decoder: it must never panic, and whenever it reports success after <=4
// corrupted symbols, the data must be the original.
func FuzzDecodeNeverPanicsOrLies(f *testing.F) {
	f.Add([]byte("seed data for the codeword please"), uint8(2), uint16(0x1234))
	f.Fuzz(func(t *testing.T, raw []byte, nerr uint8, posSeed uint16) {
		c, err := New(40, 32)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 32)
		copy(data, raw)
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		n := int(nerr % 12) // up to 12 corruptions, beyond capability
		seed := int(posSeed)
		for i := 0; i < n; i++ {
			pos := (seed + i*7) % 40
			cw[pos] ^= byte(seed>>3)%255 + 1
		}
		got, _, err := c.Decode(cw)
		if err != nil {
			return // uncorrectable reported: fine
		}
		// Count distinct corrupted positions actually applied.
		distinct := map[int]bool{}
		for i := 0; i < n; i++ {
			distinct[(seed+i*7)%40] = true
		}
		if len(distinct) <= c.CorrectableErrors() && !bytes.Equal(got, data) {
			t.Fatalf("decoder returned wrong data for %d corruptions", len(distinct))
		}
	})
}

// FuzzErasurePositions checks the erasure decoder tolerates arbitrary
// position lists without panicking.
func FuzzErasurePositions(f *testing.F) {
	f.Add([]byte{1, 2, 3, 40, 100}, []byte("x"))
	f.Fuzz(func(t *testing.T, positions []byte, raw []byte) {
		c, err := New(40, 32)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 32)
		copy(data, raw)
		cw, _ := c.Encode(data)
		erasures := make([]int, 0, len(positions))
		for _, p := range positions {
			erasures = append(erasures, int(p)-64) // include out-of-range
		}
		_, _, _ = c.DecodeErasures(cw, erasures) // must not panic
	})
}
