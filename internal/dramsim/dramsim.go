// Package dramsim is a command-level DRAM channel model: an FR-FCFS
// memory controller issuing ACT/RD/WR/PRE commands against per-bank state
// machines that honor the full JEDEC-style timing set (tRCD, tRP, tRAS,
// tRC, tCCD, tRRD, tFAW, tWTR, tWR). It is the detailed counterpart of the
// queueing model in internal/perfsim: the coarse model runs the paper's
// 38-workload sweeps quickly, while this one validates its latency
// behaviour at command granularity (see the `cmdlevel` ablation).
package dramsim

import (
	"container/heap"
	"fmt"
)

// Timing holds per-channel DRAM timing in memory-bus cycles.
type Timing struct {
	TRCD   int // ACT -> RD/WR
	TRP    int // PRE -> ACT
	TRAS   int // ACT -> PRE (min)
	TRC    int // ACT -> ACT, same bank
	TCCD   int // RD -> RD (column-to-column)
	TRRD   int // ACT -> ACT, different banks
	TFAW   int // four-activate window
	TWTR   int // WR data end -> RD
	TWR    int // WR data end -> PRE
	TCAS   int // RD -> data start
	TCWL   int // WR -> data start
	TBURST int // data transfer duration
	// TREFI is the refresh-command interval (0 disables refresh); TRFC is
	// the all-bank refresh latency, during which the channel is blocked.
	TREFI int
	TRFC  int
}

// DefaultTiming extends the paper's Table II (7-9-9-9-36) with standard
// DDR3-1600-class secondary constraints.
func DefaultTiming() Timing {
	return Timing{
		TRCD: 9, TRP: 9, TRAS: 36, TRC: 45,
		TCCD: 4, TRRD: 5, TFAW: 24,
		TWTR: 7, TWR: 12,
		TCAS: 9, TCWL: 7, TBURST: 4,
		// HBM-style 32 ms retention over 8192 refresh commands at 800 MHz:
		// one REF every ~3125 cycles, blocking the channel for tRFC.
		TREFI: 3125, TRFC: 128,
	}
}

// Request is one line access presented to the controller.
type Request struct {
	Bank   int
	Row    int
	Write  bool
	Arrive int64 // cycle the request enters the queue

	// Burst overrides the data-transfer duration in cycles (0 = the
	// timing's full-line TBURST). Striped slices move a fraction of a line
	// and occupy the bus proportionally less.
	Burst int

	// Done is filled by the simulation: the cycle the data transfer
	// completes.
	Done int64
}

// bank tracks one bank's state machine.
type bank struct {
	openRow     int   // -1 = precharged
	actAt       int64 // last ACT issue time
	readyAt     int64 // earliest next column command
	preReadyAt  int64 // earliest PRE (tRAS / tWR constraints)
	nextActAt   int64 // tRC constraint
	writeEndsAt int64 // end of last write data (for tWTR)
}

// Channel simulates one DRAM channel.
type Channel struct {
	timing Timing
	banks  []bank

	busFreeAt  int64
	lastActAny int64   // tRRD constraint
	actWindow  []int64 // last 4 ACTs for tFAW

	// Stats.
	RowHits, RowMisses uint64
	Activates          uint64
}

// NewChannel builds a channel with the given bank count.
func NewChannel(banks int, t Timing) *Channel {
	ch := &Channel{timing: t, banks: make([]bank, banks)}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// max64 returns the max of its arguments.
func max64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// issueACT opens a row, honoring tRP/tRC/tRRD/tFAW.
func (ch *Channel) issueACT(b *bank, row int, at int64) int64 {
	t := ch.timing
	when := max64(at, b.nextActAt, ch.lastActAny+int64(t.TRRD))
	if len(ch.actWindow) >= 4 {
		fawEdge := ch.actWindow[len(ch.actWindow)-4] + int64(t.TFAW)
		when = max64(when, fawEdge)
	}
	b.openRow = row
	b.actAt = when
	b.readyAt = when + int64(t.TRCD)
	b.preReadyAt = when + int64(t.TRAS)
	b.nextActAt = when + int64(t.TRC)
	ch.lastActAny = when
	ch.actWindow = append(ch.actWindow, when)
	if len(ch.actWindow) > 4 {
		ch.actWindow = ch.actWindow[len(ch.actWindow)-4:]
	}
	ch.Activates++
	return when
}

// issuePRE closes the bank's row, honoring tRAS and tWR.
func (ch *Channel) issuePRE(b *bank, at int64) int64 {
	t := ch.timing
	when := max64(at, b.preReadyAt, b.writeEndsAt+int64(t.TWR))
	b.openRow = -1
	b.nextActAt = max64(b.nextActAt, when+int64(t.TRP))
	return when
}

// skipRefresh pushes a command time out of any all-bank refresh window.
func (ch *Channel) skipRefresh(at int64) int64 {
	t := ch.timing
	if t.TREFI <= 0 || t.TRFC <= 0 {
		return at
	}
	// Window k occupies [k*TREFI, k*TREFI + TRFC).
	k := at / int64(t.TREFI)
	if off := at - k*int64(t.TREFI); off < int64(t.TRFC) {
		return k*int64(t.TREFI) + int64(t.TRFC)
	}
	return at
}

// serve executes one request against the channel state, returning the
// data-completion cycle.
func (ch *Channel) serve(r *Request) int64 {
	t := ch.timing
	b := &ch.banks[r.Bank]
	now := ch.skipRefresh(r.Arrive)
	if b.openRow != r.Row {
		if b.openRow != -1 {
			ch.RowMisses++
			now = ch.issuePRE(b, now)
		} else {
			ch.RowMisses++
		}
		ch.issueACT(b, r.Row, now)
	} else {
		ch.RowHits++
	}
	// Column command: respect bank readiness, bus availability (tCCD
	// approximated by bus busy time), and write-to-read turnaround.
	col := max64(now, b.readyAt, ch.busFreeAt-int64(t.TBURST)+int64(t.TCCD))
	if !r.Write {
		// tWTR: a read after a write must wait for the write data to end.
		col = max64(col, b.writeEndsAt+int64(t.TWTR))
	}
	var dataStart int64
	if r.Write {
		dataStart = col + int64(t.TCWL)
	} else {
		dataStart = col + int64(t.TCAS)
	}
	dataStart = max64(dataStart, ch.busFreeAt)
	burst := int64(t.TBURST)
	if r.Burst > 0 {
		burst = int64(r.Burst)
	}
	done := dataStart + burst
	ch.busFreeAt = done
	if r.Write {
		b.writeEndsAt = done
	}
	// Column access restarts the tRAS clock conservatively? No: tRAS runs
	// from ACT; reads extend precharge readiness only past their burst.
	if done > b.preReadyAt {
		b.preReadyAt = done
	}
	r.Done = done
	return done
}

// reqHeap orders requests for FR-FCFS: row hits first, then age.
type reqHeap struct {
	ch   *Channel
	reqs []*Request
}

func (h reqHeap) Len() int { return len(h.reqs) }
func (h reqHeap) Less(i, j int) bool {
	a, b := h.reqs[i], h.reqs[j]
	ah := h.ch.banks[a.Bank].openRow == a.Row
	bh := h.ch.banks[b.Bank].openRow == b.Row
	if ah != bh {
		return ah
	}
	return a.Arrive < b.Arrive
}
func (h reqHeap) Swap(i, j int) { h.reqs[i], h.reqs[j] = h.reqs[j], h.reqs[i] }
func (h *reqHeap) Push(x any)   { h.reqs = append(h.reqs, x.(*Request)) }
func (h *reqHeap) Pop() any {
	old := h.reqs
	n := len(old)
	x := old[n-1]
	h.reqs = old[:n-1]
	return x
}

// Stats summarizes a simulation.
type Stats struct {
	Requests           int
	RowHits, RowMisses uint64
	Activates          uint64
	AvgLatency         float64
	MaxLatency         int64
	LastDone           int64
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("dramsim{n:%d rowhit:%.0f%% act:%d avgLat:%.1f}",
		s.Requests, 100*float64(s.RowHits)/float64(s.RowHits+s.RowMisses),
		s.Activates, s.AvgLatency)
}

// Simulate services the request stream (sorted by arrival) with an
// FR-FCFS scheduler over a bounded reorder window, mutating each request's
// Done field and returning aggregate stats.
func (ch *Channel) Simulate(reqs []*Request, window int) Stats {
	if window < 1 {
		window = 16
	}
	h := &reqHeap{ch: ch}
	heap.Init(h)
	next := 0
	var stats Stats
	var latSum int64
	serveOne := func(r *Request) {
		done := ch.serve(r)
		lat := done - r.Arrive
		latSum += lat
		if lat > stats.MaxLatency {
			stats.MaxLatency = lat
		}
		if done > stats.LastDone {
			stats.LastDone = done
		}
		stats.Requests++
	}
	for next < len(reqs) || h.Len() > 0 {
		// Refill the reorder window with arrived requests.
		for next < len(reqs) && h.Len() < window {
			heap.Push(h, reqs[next])
			next++
		}
		// FR-FCFS pick. Re-heapify cheaply: row-hit status may have
		// changed since insertion, so rebuild order before popping.
		heap.Init(h)
		r := heap.Pop(h).(*Request)
		serveOne(r)
	}
	stats.RowHits = ch.RowHits
	stats.RowMisses = ch.RowMisses
	stats.Activates = ch.Activates
	if stats.Requests > 0 {
		stats.AvgLatency = float64(latSum) / float64(stats.Requests)
	}
	return stats
}

// SimulateClosedLoop services the stream with a bounded number of
// outstanding requests: request i may not arrive before request
// i-outstanding completes, modeling cores that stall once their miss
// buffers fill. This is the right mode for comparing against closed-loop
// core models; plain Simulate is open-loop.
func (ch *Channel) SimulateClosedLoop(reqs []*Request, outstanding int) Stats {
	if outstanding < 1 {
		outstanding = 8
	}
	var stats Stats
	var latSum int64
	for i, r := range reqs {
		if i >= outstanding {
			if dep := reqs[i-outstanding].Done; dep > r.Arrive {
				r.Arrive = dep
			}
		}
		done := ch.serve(r)
		lat := done - r.Arrive
		latSum += lat
		if lat > stats.MaxLatency {
			stats.MaxLatency = lat
		}
		if done > stats.LastDone {
			stats.LastDone = done
		}
		stats.Requests++
	}
	stats.RowHits = ch.RowHits
	stats.RowMisses = ch.RowMisses
	stats.Activates = ch.Activates
	if stats.Requests > 0 {
		stats.AvgLatency = float64(latSum) / float64(stats.Requests)
	}
	return stats
}
