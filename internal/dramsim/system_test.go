package dramsim

import (
	"testing"

	"repro/internal/stack"
	"repro/internal/workload"
)

// runStriping drives a benchmark's stream under one striping layout.
func runStriping(t *testing.T, name string, s stack.Striping) SystemStats {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("%s profile missing", name)
	}
	reqs := workload.NewGenerator(prof, 8, 3).Stream(20000)
	sys := NewSystem(stack.DefaultConfig(), DefaultTiming())
	perK := prof.MPKI + prof.WBPKI
	gap := 1000 / perK * prof.CPI0 / 4
	return sys.RunStream(reqs, s, 8, gap)
}

// TestStripingSlowdownAtCommandLevel independently confirms Figure 5's
// headline with the command-level model: Same-Bank is clearly the fastest
// layout. (Between the two striped layouts the command-level model can
// invert the coarse model's order for row-miss-heavy workloads: tRRD/tFAW
// serialize Across-Banks' eight activations inside one channel, a
// second-order constraint the queueing model abstracts away.)
func TestStripingSlowdownAtCommandLevel(t *testing.T) {
	sb := runStriping(t, "mcf", stack.SameBank)
	ab := runStriping(t, "mcf", stack.AcrossBanks)
	ac := runStriping(t, "mcf", stack.AcrossChannels)
	if sb.LastDone*12/10 >= ab.LastDone || sb.LastDone*12/10 >= ac.LastDone {
		t.Errorf("striping not clearly slower: sb=%d ab=%d ac=%d",
			sb.LastDone, ab.LastDone, ac.LastDone)
	}
	// Activation fan-out: striped layouts activate several times more.
	if ab.Activates < 3*sb.Activates {
		t.Errorf("across-banks activates %d not >> same-bank %d", ab.Activates, sb.Activates)
	}
}

func TestSystemAccessTouchesRightChannels(t *testing.T) {
	cfg := stack.DefaultConfig()
	sys := NewSystem(cfg, DefaultTiming())
	idx := cfg.LineIndex(stack.Coord{Stack: 1, Die: 3, Bank: 5, Row: 100, Line: 2})
	sys.Access(idx, stack.SameBank, false, 0)
	// Only channel (1,3) saw an activation.
	for i, ch := range sys.channels {
		want := uint64(0)
		if i == 1*cfg.Channels()+3 {
			want = 1
		}
		if ch.Activates != want {
			t.Errorf("channel %d activates = %d, want %d", i, ch.Activates, want)
		}
	}
	// Across-channels touches every channel of stack 1.
	sys2 := NewSystem(cfg, DefaultTiming())
	sys2.Access(idx, stack.AcrossChannels, false, 0)
	for i, ch := range sys2.channels {
		inStack1 := i >= cfg.Channels()
		if inStack1 && ch.Activates != 1 {
			t.Errorf("stack-1 channel %d activates = %d, want 1", i, ch.Activates)
		}
		if !inStack1 && ch.Activates != 0 {
			t.Errorf("stack-0 channel %d activates = %d, want 0", i, ch.Activates)
		}
	}
}

func TestRunStreamStats(t *testing.T) {
	st := runStriping(t, "mcf", stack.SameBank)
	if st.Requests != 20000 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.AvgLatency <= 0 || st.LastDone <= 0 {
		t.Errorf("degenerate stats %+v", st)
	}
}
