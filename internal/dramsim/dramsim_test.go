package dramsim

import (
	"math/rand"
	"testing"
)

// noRefreshTiming disables refresh for cycle-exact latency assertions.
func noRefreshTiming() Timing {
	t := DefaultTiming()
	t.TREFI = 0
	return t
}

func TestColdReadLatency(t *testing.T) {
	// One read to a precharged bank: ACT at arrival, data after
	// tRCD + tCAS + tBURST.
	ch := NewChannel(8, noRefreshTiming())
	r := &Request{Bank: 0, Row: 5, Arrive: 100}
	st := ch.Simulate([]*Request{r}, 16)
	tm := noRefreshTiming()
	want := int64(100 + tm.TRCD + tm.TCAS + tm.TBURST)
	if r.Done != want {
		t.Errorf("cold read done at %d, want %d", r.Done, want)
	}
	if st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("row stats %d/%d", st.RowHits, st.RowMisses)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	tm := noRefreshTiming()
	// Hit: second read to the same open row.
	chHit := NewChannel(8, tm)
	a := &Request{Bank: 0, Row: 5, Arrive: 0}
	b := &Request{Bank: 0, Row: 5, Arrive: 50}
	chHit.Simulate([]*Request{a, b}, 16)
	hitLat := b.Done - b.Arrive
	// Conflict: second read to a different row of the same bank.
	chMiss := NewChannel(8, tm)
	c := &Request{Bank: 0, Row: 5, Arrive: 0}
	d := &Request{Bank: 0, Row: 9, Arrive: 50}
	chMiss.Simulate([]*Request{c, d}, 16)
	missLat := d.Done - d.Arrive
	if hitLat >= missLat {
		t.Errorf("row hit latency %d not below conflict latency %d", hitLat, missLat)
	}
	// The conflict must pay at least tRP + tRCD more than the hit.
	if missLat-hitLat < int64(tm.TRP) {
		t.Errorf("conflict penalty only %d cycles", missLat-hitLat)
	}
}

func TestRowConflictHonorsTRAS(t *testing.T) {
	tm := noRefreshTiming()
	ch := NewChannel(8, tm)
	a := &Request{Bank: 0, Row: 1, Arrive: 0}
	b := &Request{Bank: 0, Row: 2, Arrive: 1} // immediate conflict
	ch.Simulate([]*Request{a, b}, 1)          // window 1: strict order
	// The second ACT cannot happen before tRAS + tRP after the first ACT.
	minDone := int64(tm.TRAS+tm.TRP+tm.TRCD+tm.TCAS) + int64(tm.TBURST)
	if b.Done < minDone {
		t.Errorf("conflicting access done at %d, violates tRAS+tRP (min %d)", b.Done, minDone)
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	tm := noRefreshTiming()
	ch := NewChannel(8, tm)
	// Five activations to five banks at once: the fifth must wait for the
	// four-activate window.
	var reqs []*Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, &Request{Bank: i, Row: 1, Arrive: 0})
	}
	ch.Simulate(reqs, 1)
	fifthAct := reqs[4].Done - int64(tm.TRCD+tm.TCAS+tm.TBURST)
	if fifthAct < int64(tm.TFAW) {
		t.Errorf("fifth ACT at %d, violates tFAW %d", fifthAct, tm.TFAW)
	}
	// And adjacent ACTs respect tRRD.
	secondAct := reqs[1].Done - int64(tm.TRCD+tm.TCAS+tm.TBURST)
	if secondAct < int64(tm.TRRD) {
		t.Errorf("second ACT at %d, violates tRRD %d", secondAct, tm.TRRD)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	tm := noRefreshTiming()
	ch := NewChannel(8, tm)
	w := &Request{Bank: 0, Row: 1, Write: true, Arrive: 0}
	r := &Request{Bank: 0, Row: 1, Arrive: 1}
	ch.Simulate([]*Request{w, r}, 1)
	// The read's column command waits tWTR after the write data ends.
	readCol := r.Done - int64(tm.TCAS+tm.TBURST)
	if readCol < w.Done+int64(tm.TWTR) {
		t.Errorf("read column at %d, violates tWTR after write end %d", readCol, w.Done)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	tm := noRefreshTiming()
	ch := NewChannel(8, tm)
	// Open row 1, then enqueue a conflict (row 2) FIRST and a hit (row 1)
	// second; FR-FCFS should serve the hit before the conflict.
	warm := &Request{Bank: 0, Row: 1, Arrive: 0}
	conflict := &Request{Bank: 0, Row: 2, Arrive: 60}
	hit := &Request{Bank: 0, Row: 1, Arrive: 61}
	ch.Simulate([]*Request{warm, conflict, hit}, 8)
	if hit.Done >= conflict.Done {
		t.Errorf("row hit (done %d) served after conflict (done %d)", hit.Done, conflict.Done)
	}
}

func TestBankParallelismBeatsSingleBank(t *testing.T) {
	tm := noRefreshTiming()
	mk := func(banks int) int64 {
		ch := NewChannel(8, tm)
		var reqs []*Request
		for i := 0; i < 32; i++ {
			reqs = append(reqs, &Request{Bank: i % banks, Row: i, Arrive: 0})
		}
		st := ch.Simulate(reqs, 32)
		return st.LastDone
	}
	oneBank := mk(1)
	eightBanks := mk(8)
	if eightBanks >= oneBank {
		t.Errorf("8-bank finish %d not below 1-bank finish %d", eightBanks, oneBank)
	}
}

func TestThroughputBoundedByBus(t *testing.T) {
	// Row-hit streams are bus-limited: n requests cannot finish faster
	// than n*tBURST.
	tm := noRefreshTiming()
	ch := NewChannel(8, tm)
	var reqs []*Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, &Request{Bank: i % 8, Row: 0, Arrive: 0})
	}
	st := ch.Simulate(reqs, 32)
	if st.LastDone < int64(100*tm.TBURST) {
		t.Errorf("finished at %d, faster than the data bus allows (%d)",
			st.LastDone, 100*tm.TBURST)
	}
}

func TestStatsAccounting(t *testing.T) {
	ch := NewChannel(8, noRefreshTiming())
	rng := rand.New(rand.NewSource(1))
	var reqs []*Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, &Request{
			Bank:   rng.Intn(8),
			Row:    rng.Intn(64),
			Write:  rng.Intn(4) == 0,
			Arrive: int64(i * 3),
		})
	}
	st := ch.Simulate(reqs, 16)
	if st.Requests != 500 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.RowHits+st.RowMisses != 500 {
		t.Errorf("row outcomes %d+%d != 500", st.RowHits, st.RowMisses)
	}
	if st.AvgLatency <= 0 || st.MaxLatency <= 0 {
		t.Error("latency stats empty")
	}
	if st.String() == "" {
		t.Error("String empty")
	}
	// Every request completed after it arrived.
	for _, r := range reqs {
		if r.Done <= r.Arrive {
			t.Fatalf("request done %d before arrival %d", r.Done, r.Arrive)
		}
	}
}

func TestClosedLoopBoundsLatency(t *testing.T) {
	tm := noRefreshTiming()
	mkReqs := func() []*Request {
		rng := rand.New(rand.NewSource(2))
		var reqs []*Request
		for i := 0; i < 2000; i++ {
			reqs = append(reqs, &Request{
				Bank:   rng.Intn(8),
				Row:    rng.Intn(64),
				Arrive: int64(i), // absurdly fast open-loop arrival
			})
		}
		return reqs
	}
	open := NewChannel(8, tm).Simulate(mkReqs(), 16)
	closed := NewChannel(8, tm).SimulateClosedLoop(mkReqs(), 16)
	if closed.AvgLatency >= open.AvgLatency {
		t.Errorf("closed-loop latency %.1f not below open-loop %.1f",
			closed.AvgLatency, open.AvgLatency)
	}
	// With 16 outstanding, latency stays within a small multiple of the
	// worst single-request service time.
	worst := float64(tm.TRAS + tm.TRP + tm.TRCD + tm.TCAS + tm.TBURST)
	if closed.AvgLatency > 16*worst {
		t.Errorf("closed-loop latency %.1f unreasonably high", closed.AvgLatency)
	}
}

func TestRefreshBlocksCommands(t *testing.T) {
	tm := DefaultTiming()
	tm.TREFI, tm.TRFC = 100, 40
	ch := NewChannel(8, tm)
	// A request arriving inside a refresh window is pushed past it.
	r := &Request{Bank: 0, Row: 1, Arrive: 110} // window [100,140)
	ch.Simulate([]*Request{r}, 1)
	earliest := int64(140 + tm.TRCD + tm.TCAS + tm.TBURST)
	if r.Done < earliest {
		t.Errorf("request done at %d, refresh window ignored (min %d)", r.Done, earliest)
	}
	// Outside the window nothing changes.
	ch2 := NewChannel(8, tm)
	r2 := &Request{Bank: 0, Row: 1, Arrive: 50}
	ch2.Simulate([]*Request{r2}, 1)
	if r2.Done != int64(50+tm.TRCD+tm.TCAS+tm.TBURST) {
		t.Errorf("request outside refresh window delayed: %d", r2.Done)
	}
	// TREFI=0 disables refresh.
	tm.TREFI = 0
	ch3 := NewChannel(8, tm)
	r3 := &Request{Bank: 0, Row: 1, Arrive: 110}
	ch3.Simulate([]*Request{r3}, 1)
	if r3.Done != int64(110+tm.TRCD+tm.TCAS+tm.TBURST) {
		t.Errorf("disabled refresh still delayed: %d", r3.Done)
	}
}
