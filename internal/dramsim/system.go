package dramsim

import (
	"repro/internal/stack"
	"repro/internal/workload"
)

// System is a whole stacked-memory system at command level: one Channel per
// (stack, die), with line accesses fanned out to the banks selected by the
// striping layout. It provides an independent, command-granularity check of
// the striping results the coarse queueing model produces (Figure 5).
type System struct {
	cfg      stack.Config
	timing   Timing
	channels []*Channel
}

// NewSystem builds the per-channel models for the geometry.
func NewSystem(cfg stack.Config, t Timing) *System {
	n := cfg.Stacks * cfg.Channels()
	chs := make([]*Channel, n)
	for i := range chs {
		chs[i] = NewChannel(cfg.BanksPerDie, t)
	}
	return &System{cfg: cfg, timing: t, channels: chs}
}

// channelOf returns the channel model for a coordinate.
func (s *System) channelOf(co stack.Coord) *Channel {
	return s.channels[co.Stack*s.cfg.Channels()+co.Die]
}

// Access serves one line access under the striping layout, fanning out to
// the slice banks and joining on the slowest. It returns the completion
// cycle.
func (s *System) Access(lineIdx int64, striping stack.Striping, write bool, at int64) int64 {
	done := at
	slices := s.cfg.Slices(striping, lineIdx)
	burst := s.timing.TBURST * slices[0].Bytes / s.cfg.LineBytes
	if burst < 1 {
		burst = 1
	}
	for _, sl := range slices {
		req := &Request{
			Bank: sl.Coord.Bank, Row: sl.Coord.Row,
			Write: write, Arrive: at, Burst: burst,
		}
		if d := s.channelOf(sl.Coord).serve(req); d > done {
			done = d
		}
	}
	return done
}

// SystemStats aggregates a RunStream execution.
type SystemStats struct {
	Requests   int
	LastDone   int64
	AvgLatency float64
	Activates  uint64
}

// RunStream drives a workload request stream through the system closed-loop
// (per-core blocking reads, posted writes), mirroring the coarse model's
// driver at command granularity.
func (s *System) RunStream(reqs []workload.Request, striping stack.Striping, cores int, gapCycles float64) SystemStats {
	coreAvail := make([]float64, cores)
	var stats SystemStats
	var latSum int64
	for _, r := range reqs {
		core := r.Core % cores
		issue := coreAvail[core] + gapCycles
		lineIdx := s.cfg.LineIndex(s.cfg.InterleaveLine(r.LineAddr))
		done := s.Access(lineIdx, striping, r.Write, int64(issue))
		stats.Requests++
		if done > stats.LastDone {
			stats.LastDone = done
		}
		if r.Write {
			coreAvail[core] = issue // posted
			continue
		}
		latSum += done - int64(issue)
		coreAvail[core] = float64(done)
	}
	reads := 0
	for _, r := range reqs {
		if !r.Write {
			reads++
		}
	}
	if reads > 0 {
		stats.AvgLatency = float64(latSum) / float64(reads)
	}
	for _, ch := range s.channels {
		stats.Activates += ch.Activates
	}
	return stats
}
