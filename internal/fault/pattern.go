package fault

import "math/bits"

// Pattern describes a set of non-negative integers (die, bank, row, or
// bit-column indices) in a form closed under the intersections the fault
// algebra needs. A value x belongs to the pattern when
//
//	x & Mask == Val  &&  Lo <= x < Hi
//
// Hi == 0 means "no upper bound". The mask/value part captures exact
// locations (Mask = all ones), "everything" (Mask = 0), strided sets such as
// the bits carried by one data TSV (Mask = TSVs-1), and the half-address
// spaces produced by a faulty address TSV (Mask = 1<<k). The range part
// captures contiguous extents such as a sub-array's rows.
type Pattern struct {
	Mask, Val uint32
	Lo, Hi    uint32
}

// AllPattern matches every index.
func AllPattern() Pattern { return Pattern{} }

// ExactPattern matches only v.
func ExactPattern(v uint32) Pattern { return Pattern{Mask: ^uint32(0), Val: v} }

// MaskPattern matches {x : x&mask == val}.
func MaskPattern(mask, val uint32) Pattern { return Pattern{Mask: mask, Val: val & mask} }

// RangePattern matches [lo, hi).
func RangePattern(lo, hi uint32) Pattern { return Pattern{Lo: lo, Hi: hi} }

// Contains reports whether x belongs to the pattern.
func (p Pattern) Contains(x uint32) bool {
	if x&p.Mask != p.Val {
		return false
	}
	if x < p.Lo {
		return false
	}
	if p.Hi != 0 && x >= p.Hi {
		return false
	}
	return true
}

// spread distributes the low bits of f into the zero-bit positions of mask,
// from least significant upward (a software PDEP over ^mask).
func spread(f, mask uint32) uint32 {
	var out uint32
	free := ^mask
	for free != 0 {
		pos := uint32(bits.TrailingZeros32(free))
		if f&1 != 0 {
			out |= 1 << pos
		}
		f >>= 1
		free &= free - 1
	}
	return out
}

// nextMatch returns the smallest x >= lo with x&mask == val, and whether one
// exists within 32-bit range.
func nextMatch(lo, mask, val uint32) (uint32, bool) {
	if val&mask != val {
		val &= mask
	}
	freeBits := uint(bits.OnesCount32(^mask))
	// Binary search the free-bit counter: y(f) = spread(f)|val is strictly
	// increasing in f, so find the least f with y(f) >= lo.
	loF, hiF := uint64(0), uint64(1)<<freeBits // hiF exclusive
	if spread(uint32(hiF-1), mask)|val < lo {
		return 0, false
	}
	for loF < hiF {
		mid := (loF + hiF) / 2
		if spread(uint32(mid), mask)|val >= lo {
			hiF = mid
		} else {
			loF = mid + 1
		}
	}
	return spread(uint32(loF), mask) | val, true
}

// Intersects reports whether two patterns share at least one value.
func (p Pattern) Intersects(q Pattern) bool {
	// Mask/value compatibility on the shared mask bits.
	if (p.Val^q.Val)&(p.Mask&q.Mask) != 0 {
		return false
	}
	mask := p.Mask | q.Mask
	val := p.Val | q.Val
	lo := p.Lo
	if q.Lo > lo {
		lo = q.Lo
	}
	hi := p.Hi
	if hi == 0 || (q.Hi != 0 && q.Hi < hi) {
		hi = q.Hi
	}
	x, ok := nextMatch(lo, mask, val)
	if !ok {
		return false
	}
	return hi == 0 || x < hi
}

// First returns the smallest member of the pattern in [0, n), if any.
// It runs in O(log n) — the correctability hot path asks this for row
// patterns with 64 Ki-value domains, where a linear scan is ruinous.
func (p Pattern) First(n uint32) (uint32, bool) {
	hi := n
	if p.Hi != 0 && p.Hi < hi {
		hi = p.Hi
	}
	x, ok := nextMatch(p.Lo, p.Mask, p.Val)
	if !ok || x >= hi {
		return 0, false
	}
	return x, true
}

// countMatchesBelow returns |{x < hi : x&mask == val}| by scanning bit
// positions of hi from high to low (a digit DP over the binary expansion).
func countMatchesBelow(hi, mask, val uint32) uint64 {
	var count uint64
	for b := 31; b >= 0; b-- {
		bit := uint32(1) << uint(b)
		if hi&bit == 0 {
			continue
		}
		// Count x that agree with hi on bits above b, have 0 at bit b, and
		// anything in the free (unmasked) bits below b.
		high := ^(bit | (bit - 1))
		if (hi^val)&mask&high != 0 {
			continue
		}
		if mask&bit != 0 && val&bit != 0 {
			continue
		}
		freeLow := bits.OnesCount32(^mask & (bit - 1))
		count += 1 << uint(freeLow)
	}
	return count
}

// CountBelow returns |{x in pattern : x < n}|, the number of pattern members
// in [0, n). Used for sizing fault footprints (e.g. rows needing sparing).
func (p Pattern) CountBelow(n uint32) int {
	hi := n
	if p.Hi != 0 && p.Hi < hi {
		hi = p.Hi
	}
	if p.Lo >= hi {
		return 0
	}
	return int(countMatchesBelow(hi, p.Mask, p.Val) - countMatchesBelow(p.Lo, p.Mask, p.Val))
}
