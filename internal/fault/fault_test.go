package fault

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stack"
)

func TestScaleTo8GbReproducesTable1(t *testing.T) {
	scaled := ScaleTo8Gb(Sridharan1Gb())
	want := Table1()
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > want*0.02+0.01 {
			t.Errorf("%s: scaled = %.2f, Table I = %.2f", name, got, want)
		}
	}
	approx("bit transient", scaled.BitTransient, want.BitTransient)
	approx("bit permanent", scaled.BitPermanent, want.BitPermanent)
	approx("word transient", scaled.WordTransient, want.WordTransient)
	approx("word permanent", scaled.WordPermanent, want.WordPermanent)
	approx("column transient", scaled.ColumnTransient, want.ColumnTransient)
	approx("column permanent", scaled.ColumnPermanent, want.ColumnPermanent)
	approx("row transient", scaled.RowTransient, want.RowTransient)
	approx("row permanent", scaled.RowPermanent, want.RowPermanent)
	approx("bank transient", scaled.BankTransient, want.BankTransient)
	approx("bank permanent", scaled.BankPermanent, want.BankPermanent)
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		Bit: "bit", Word: "word", Column: "column", Row: "row",
		SubArray: "subarray", Bank: "bank", DataTSV: "data-tsv", AddrTSV: "addr-tsv",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if !DataTSV.IsTSV() || !AddrTSV.IsTSV() || Bank.IsTSV() {
		t.Error("IsTSV misclassifies")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const lambda = 2.5
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("poisson mean = %.3f, want %.3f", mean, lambda)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if poisson(rng, -1) != 0 {
		t.Error("poisson(-1) != 0")
	}
}

func TestSampleLifetimeEventRate(t *testing.T) {
	cfg := stack.DefaultConfig()
	rates := Table1()
	s := NewSampler(cfg, rates)
	rng := rand.New(rand.NewSource(12))
	const trials = 3000
	total := 0
	for i := 0; i < trials; i++ {
		total += len(s.SampleLifetime(rng, LifetimeHours))
	}
	// Expected events per lifetime: rate_sum * 1e-9 * hours * dies.
	perDie := rates.TotalPerDie()
	wantMean := perDie * 1e-9 * LifetimeHours * float64(cfg.Stacks*(cfg.DataDies+cfg.ECCDies))
	gotMean := float64(total) / trials
	if math.Abs(gotMean-wantMean) > wantMean*0.1 {
		t.Errorf("mean events/lifetime = %.3f, want ~%.3f", gotMean, wantMean)
	}
}

func TestSampleLifetimeSorted(t *testing.T) {
	cfg := stack.DefaultConfig()
	s := NewSampler(cfg, Table1().WithTSV(5000)) // high rate to get many events
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		fs := s.SampleLifetime(rng, LifetimeHours)
		for i := 1; i < len(fs); i++ {
			if fs[i].Hours < fs[i-1].Hours {
				t.Fatalf("faults not sorted: %v after %v", fs[i], fs[i-1])
			}
		}
		for _, f := range fs {
			if f.Hours < 0 || f.Hours > LifetimeHours {
				t.Fatalf("fault time out of range: %v", f)
			}
		}
	}
}

func TestTSVSplit(t *testing.T) {
	cfg := stack.DefaultConfig()
	s := NewSampler(cfg, Rates{TSVPerDie: 1e6, SubArrayRows: 5200})
	rng := rand.New(rand.NewSource(14))
	data, addr := 0, 0
	for trial := 0; trial < 50; trial++ {
		for _, f := range s.SampleLifetime(rng, LifetimeHours) {
			switch f.Class {
			case DataTSV:
				data++
			case AddrTSV:
				addr++
			default:
				t.Fatalf("unexpected class %v with only TSV rate set", f.Class)
			}
			if f.Persistence != Permanent {
				t.Fatal("TSV fault not permanent")
			}
		}
	}
	if data == 0 || addr == 0 {
		t.Fatalf("TSV split degenerate: data=%d addr=%d", data, addr)
	}
	ratio := float64(data) / float64(data+addr)
	want := float64(cfg.DataTSVs) / float64(cfg.DataTSVs+cfg.AddrTSVs)
	if math.Abs(ratio-want) > 0.05 {
		t.Errorf("data TSV fraction = %.3f, want ~%.3f", ratio, want)
	}
}

func TestFootprintShapes(t *testing.T) {
	cfg := stack.DefaultConfig()
	s := NewSampler(cfg, Table1().WithTSV(100))
	rng := rand.New(rand.NewSource(15))
	rowBits := uint32(cfg.RowBytes * 8)
	for trial := 0; trial < 5000; trial++ {
		var classes = []Class{Bit, Word, Column, Row, SubArray, Bank, DataTSV, AddrTSV}
		c := classes[rng.Intn(len(classes))]
		f := s.place(rng, c, Permanent)
		rows := f.Region.Row.CountBelow(uint32(cfg.RowsPerBank))
		cols := f.Region.Col.CountBelow(rowBits)
		switch c {
		case Bit:
			if rows != 1 || cols != 1 {
				t.Fatalf("bit fault covers %d rows x %d cols", rows, cols)
			}
		case Word:
			if rows != 1 || cols != 64 {
				t.Fatalf("word fault covers %d rows x %d cols", rows, cols)
			}
		case Column:
			if rows != 5200 || cols != 1 {
				t.Fatalf("column fault covers %d rows x %d cols", rows, cols)
			}
		case Row:
			if rows != 1 || cols != int(rowBits) {
				t.Fatalf("row fault covers %d rows x %d cols", rows, cols)
			}
		case SubArray:
			if rows != 5200 || cols != int(rowBits) {
				t.Fatalf("subarray fault covers %d rows x %d cols", rows, cols)
			}
		case Bank:
			if rows != cfg.RowsPerBank || cols != int(rowBits) {
				t.Fatalf("bank fault covers %d rows x %d cols", rows, cols)
			}
		case DataTSV:
			// 2 bits per 512-bit line, 32 lines per row: 64 bit-columns.
			if rows != cfg.RowsPerBank || cols != cfg.LinesPerRow()*cfg.BitsPerTSVPerLine() {
				t.Fatalf("data-TSV fault covers %d rows x %d cols", rows, cols)
			}
			// Must cover all banks of the die.
			if f.Region.Bank.Mask != 0 {
				t.Fatal("data-TSV fault not channel-wide")
			}
		case AddrTSV:
			if rows != cfg.RowsPerBank/2 {
				t.Fatalf("addr-TSV fault covers %d rows, want half", rows)
			}
			if f.Region.Bank.Mask != 0 {
				t.Fatal("addr-TSV fault not channel-wide")
			}
		}
	}
}

func TestRowsNeedingSparing(t *testing.T) {
	cfg := stack.DefaultConfig()
	s := NewSampler(cfg, Table1())
	rng := rand.New(rand.NewSource(16))
	f := s.place(rng, Bank, Permanent)
	if got := f.RowsNeedingSparing(cfg); got != 65536 {
		t.Errorf("bank fault needs %d rows, want 65536", got)
	}
	f = s.place(rng, Bit, Permanent)
	if got := f.RowsNeedingSparing(cfg); got != 1 {
		t.Errorf("bit fault needs %d rows, want 1", got)
	}
}

func TestPersistenceString(t *testing.T) {
	if Transient.String() != "transient" || Permanent.String() != "permanent" {
		t.Error("Persistence.String wrong")
	}
}

func TestWithTSVDoesNotMutate(t *testing.T) {
	r := Table1()
	r2 := r.WithTSV(1430)
	if r.TSVPerDie != 0 {
		t.Error("WithTSV mutated receiver")
	}
	if r2.TSVPerDie != 1430 {
		t.Error("WithTSV did not set rate")
	}
}

func TestRatesJSONRoundTrip(t *testing.T) {
	r := Table1().WithTSV(143)
	data, err := MarshalRates(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadRates(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip changed rates:\n%+v\n%+v", back, r)
	}
}

func TestReadRatesValidation(t *testing.T) {
	cases := []string{
		`{"BitTransient": -1}`,
		`{"SubArrayFraction": 2}`,
		`{"SubArrayRows": -5}`,
		`{"NoSuchField": 1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadRates(strings.NewReader(c)); err == nil {
			t.Errorf("accepted bad rates %q", c)
		}
	}
}

func TestReadRatesDefaultsSubArrayRows(t *testing.T) {
	r, err := ReadRates(strings.NewReader(`{"BitTransient": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.SubArrayRows != 5200 {
		t.Errorf("SubArrayRows = %d, want 5200 default", r.SubArrayRows)
	}
}

func TestLoadRatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rates.json")
	data, _ := MarshalRates(Table1())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRates(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.BitTransient != 113.6 {
		t.Errorf("loaded BitTransient = %v", r.BitTransient)
	}
	if _, err := LoadRates(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScalePerDoubling(t *testing.T) {
	r := Table1()
	// Three doublings reproduce the full 1Gb->8Gb rule set applied again:
	// bits x8, rows x4, columns x1.9, banks x8.
	s3 := ScalePerDoubling(r, 3)
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > want*0.01 {
			t.Errorf("%s: %v, want %v", name, got, want)
		}
	}
	approx("bit", s3.BitTransient, 8*r.BitTransient)
	approx("row", s3.RowPermanent, 4*r.RowPermanent)
	approx("column", s3.ColumnPermanent, 1.9*r.ColumnPermanent)
	approx("bank", s3.BankPermanent, 8*r.BankPermanent)
	// Zero doublings is the identity.
	if ScalePerDoubling(r, 0) != r {
		t.Error("zero doublings changed rates")
	}
}
