package fault

import "testing"

// FuzzPatternAlgebra checks Intersects and CountBelow against direct
// enumeration on a bounded domain for arbitrary patterns.
func FuzzPatternAlgebra(f *testing.F) {
	f.Add(uint32(0xFF), uint32(7), uint32(0), uint32(0), uint32(3), uint32(100), uint32(0), uint32(0))
	f.Fuzz(func(t *testing.T, m1, v1, lo1, hi1, m2, v2, lo2, hi2 uint32) {
		const domain = 512
		p := Pattern{Mask: m1 % domain, Val: v1 % domain, Lo: lo1 % domain, Hi: hi1 % domain}
		q := Pattern{Mask: m2 % domain, Val: v2 % domain, Lo: lo2 % domain, Hi: hi2 % domain}
		p.Val &= p.Mask
		q.Val &= q.Mask
		// Cap to the domain so brute force is exact.
		if p.Hi == 0 || p.Hi > domain {
			p.Hi = domain
		}
		if q.Hi == 0 || q.Hi > domain {
			q.Hi = domain
		}
		brute := false
		countP := 0
		for x := uint32(0); x < domain; x++ {
			inP := p.Contains(x)
			if inP {
				countP++
			}
			if inP && q.Contains(x) {
				brute = true
			}
		}
		if got := p.Intersects(q); got != brute {
			t.Fatalf("Intersects(%+v,%+v) = %v, brute %v", p, q, got, brute)
		}
		if got := p.CountBelow(domain); got != countP {
			t.Fatalf("CountBelow(%+v) = %d, brute %d", p, got, countP)
		}
	})
}

// FuzzNextMatchMinimal validates nextMatch's minimality.
func FuzzNextMatchMinimal(f *testing.F) {
	f.Add(uint32(5), uint32(0b1010), uint32(0b1000))
	f.Fuzz(func(t *testing.T, lo, mask, val uint32) {
		lo %= 1 << 20
		mask %= 1 << 20
		val &= mask
		got, ok := nextMatch(lo, mask, val)
		// Scan a window for the true answer.
		for x := lo; x < lo+(1<<12); x++ {
			if x&mask == val {
				if !ok || got != x {
					t.Fatalf("nextMatch(%d,%#x,%#x) = %d,%v; want %d", lo, mask, val, got, ok, x)
				}
				return
			}
		}
		// Nothing in the window: if nextMatch found something it must be
		// beyond the window and still a match.
		if ok && (got < lo || got&mask != val) {
			t.Fatalf("nextMatch returned invalid %d", got)
		}
	})
}
