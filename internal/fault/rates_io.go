package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MarshalRates serializes rates as JSON (all fields in FIT per die).
func MarshalRates(r Rates) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReadRates parses JSON rates. Missing fields default to zero; a zero
// SubArrayRows falls back to the paper's 5200.
func ReadRates(rd io.Reader) (Rates, error) {
	var r Rates
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Rates{}, fmt.Errorf("fault: parsing rates: %w", err)
	}
	if r.SubArrayRows == 0 {
		r.SubArrayRows = 5200
	}
	if err := validateRates(r); err != nil {
		return Rates{}, err
	}
	return r, nil
}

// LoadRates reads rates from a JSON file.
func LoadRates(path string) (Rates, error) {
	f, err := os.Open(path)
	if err != nil {
		return Rates{}, err
	}
	defer f.Close()
	return ReadRates(f)
}

// validateRates rejects impossible inputs.
func validateRates(r Rates) error {
	fields := map[string]float64{
		"BitTransient": r.BitTransient, "BitPermanent": r.BitPermanent,
		"WordTransient": r.WordTransient, "WordPermanent": r.WordPermanent,
		"ColumnTransient": r.ColumnTransient, "ColumnPermanent": r.ColumnPermanent,
		"RowTransient": r.RowTransient, "RowPermanent": r.RowPermanent,
		"BankTransient": r.BankTransient, "BankPermanent": r.BankPermanent,
		"TSVPerDie": r.TSVPerDie,
	}
	for name, v := range fields {
		if v < 0 {
			return fmt.Errorf("fault: %s must be non-negative, got %v", name, v)
		}
	}
	if r.SubArrayFraction < 0 || r.SubArrayFraction > 1 {
		return fmt.Errorf("fault: SubArrayFraction must be in [0,1], got %v", r.SubArrayFraction)
	}
	if r.SubArrayRows < 0 {
		return fmt.Errorf("fault: SubArrayRows must be non-negative, got %d", r.SubArrayRows)
	}
	return nil
}
