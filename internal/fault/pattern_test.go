package fault

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refPattern checks membership directly from the definition.
func refPattern(p Pattern, x uint32) bool {
	if x&p.Mask != p.Val {
		return false
	}
	if x < p.Lo {
		return false
	}
	if p.Hi != 0 && x >= p.Hi {
		return false
	}
	return true
}

// smallPattern generates patterns over a small domain so brute force works.
func smallPattern(rng *rand.Rand) Pattern {
	var p Pattern
	switch rng.Intn(5) {
	case 0:
		p = AllPattern()
	case 1:
		p = ExactPattern(uint32(rng.Intn(1024)))
	case 2:
		mask := uint32(rng.Intn(1024))
		p = MaskPattern(mask, uint32(rng.Intn(1024)))
	case 3:
		lo := uint32(rng.Intn(1024))
		p = RangePattern(lo, lo+uint32(rng.Intn(1024))+1)
	case 4:
		mask := uint32(rng.Intn(1024))
		lo := uint32(rng.Intn(1024))
		p = Pattern{Mask: mask, Val: uint32(rng.Intn(1024)) & mask, Lo: lo, Hi: lo + uint32(rng.Intn(512)) + 1}
	}
	return p
}

func TestPatternContainsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		p := smallPattern(rng)
		for x := uint32(0); x < 2048; x++ {
			if p.Contains(x) != refPattern(p, x) {
				t.Fatalf("pattern %+v disagrees at %d", p, x)
			}
		}
	}
}

func TestIntersectsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		p := smallPattern(rng)
		q := smallPattern(rng)
		brute := false
		for x := uint32(0); x < 4096; x++ {
			if p.Contains(x) && q.Contains(x) {
				brute = true
				break
			}
		}
		// Constrain to the small domain: p and q only have members below
		// 4096 when masks/ranges are small, which smallPattern guarantees
		// except for pure mask patterns that extend upward. Add a range cap
		// so brute force is exact.
		pc, qc := p, q
		if pc.Hi == 0 || pc.Hi > 4096 {
			pc.Hi = 4096
		}
		if qc.Hi == 0 || qc.Hi > 4096 {
			qc.Hi = 4096
		}
		if got := pc.Intersects(qc); got != brute {
			t.Fatalf("Intersects(%+v, %+v) = %v, brute = %v", pc, qc, got, brute)
		}
	}
}

func TestCountBelowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		p := smallPattern(rng)
		n := uint32(rng.Intn(4096))
		brute := 0
		for x := uint32(0); x < n; x++ {
			if p.Contains(x) {
				brute++
			}
		}
		if got := p.CountBelow(n); got != brute {
			t.Fatalf("CountBelow(%+v, %d) = %d, brute = %d", p, n, got, brute)
		}
	}
}

func TestNextMatch(t *testing.T) {
	cases := []struct {
		lo, mask, val uint32
		want          uint32
		ok            bool
	}{
		{0, 0, 0, 0, true},
		{5, 0, 0, 5, true},
		{5, ^uint32(0), 3, 0, false}, // exact 3 < 5: no match
		{3, ^uint32(0), 3, 3, true},  // exact hit
		{1, 0b10, 0b10, 2, true},     // next with bit1 set
		{3, 0b10, 0b10, 3, true},     // 3 has bit1 set
		{4, 0b10, 0b10, 6, true},     // skip 4,5
		{0xFFFFFFFF, 1, 0, 0, false}, // max value is odd; no even >= it
		{0xFFFFFFFE, 1, 0, 0xFFFFFFFE, true},
	}
	for _, tc := range cases {
		got, ok := nextMatch(tc.lo, tc.mask, tc.val)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("nextMatch(%#x,%#x,%#x) = %#x,%v want %#x,%v",
				tc.lo, tc.mask, tc.val, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNextMatchIsMinimal(t *testing.T) {
	f := func(lo uint16, mask uint16, rawVal uint16) bool {
		m, v := uint32(mask), uint32(rawVal)&uint32(mask)
		got, ok := nextMatch(uint32(lo), m, v)
		// Brute force over the 16-bit domain plus a margin.
		for x := uint32(lo); x < uint32(lo)+1<<17; x++ {
			if x&m == v {
				return ok && got == x
			}
		}
		return true // nothing in scanned window; accept either result
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpread(t *testing.T) {
	// spread over mask 0b0101: free bits are 1 and 3 (and upward).
	if got := spread(0b11, 0b0101); got != 0b1010 {
		t.Errorf("spread(0b11, 0b0101) = %#b, want 0b1010", got)
	}
	if got := spread(0, 0); got != 0 {
		t.Errorf("spread(0,0) = %d, want 0", got)
	}
	// With mask 0 every bit is free: spread is identity.
	if got := spread(0xABCD, 0); got != 0xABCD {
		t.Errorf("spread identity = %#x", got)
	}
}

func TestRegionOverlaps(t *testing.T) {
	mk := func(stk int, die, bank, row, col Pattern) Region {
		return Region{Stack: stk, Die: die, Bank: bank, Row: row, Col: col}
	}
	bankFault := mk(0, ExactPattern(2), ExactPattern(3), AllPattern(), AllPattern())
	bitInBank := mk(0, ExactPattern(2), ExactPattern(3), ExactPattern(100), ExactPattern(5))
	bitElsewhere := mk(0, ExactPattern(2), ExactPattern(4), ExactPattern(100), ExactPattern(5))
	otherStack := mk(1, ExactPattern(2), ExactPattern(3), AllPattern(), AllPattern())

	if !bankFault.Overlaps(bitInBank) {
		t.Error("bank fault should overlap bit fault in same bank")
	}
	if bankFault.Overlaps(bitElsewhere) {
		t.Error("bank fault should not overlap bit fault in other bank")
	}
	if bankFault.Overlaps(otherStack) {
		t.Error("faults in different stacks should not overlap")
	}
	if !bankFault.Overlaps(bankFault) {
		t.Error("fault should overlap itself")
	}
}

func TestRegionContainsCell(t *testing.T) {
	r := Region{
		Stack: 0,
		Die:   ExactPattern(1),
		Bank:  AllPattern(),
		Row:   MaskPattern(1<<3, 1<<3), // rows with bit 3 set
		Col:   AllPattern(),
	}
	if !r.ContainsCell(0, 1, 5, 8, 0) {
		t.Error("row 8 (bit3 set) should be contained")
	}
	if r.ContainsCell(0, 1, 5, 7, 0) {
		t.Error("row 7 (bit3 clear) should not be contained")
	}
	if r.ContainsCell(1, 1, 5, 8, 0) {
		t.Error("wrong stack should not be contained")
	}
}

func TestPatternFirstMatchesLinearScan(t *testing.T) {
	// First must agree with the brute-force smallest member for every
	// pattern shape the sampler produces (exact, mask/stride, range,
	// half-space) plus adversarial combinations.
	pats := []Pattern{
		AllPattern(),
		ExactPattern(0),
		ExactPattern(37),
		ExactPattern(1000), // outside small domains
		MaskPattern(255, 17),
		MaskPattern(1<<4, 1<<4),
		MaskPattern(1<<4, 0),
		RangePattern(10, 20),
		RangePattern(64, 64), // empty
		{Mask: 7, Val: 5, Lo: 30, Hi: 200},
		{Mask: 1 << 9, Val: 1 << 9, Lo: 100, Hi: 0},
		{Mask: ^uint32(0), Val: 513, Lo: 0, Hi: 514},
		{Mask: ^uint32(0), Val: 513, Lo: 0, Hi: 513}, // empty
	}
	for _, n := range []uint32{0, 1, 13, 64, 512, 1024} {
		for _, p := range pats {
			wantV, wantOK := uint32(0), false
			for v := uint32(0); v < n; v++ {
				if p.Contains(v) {
					wantV, wantOK = v, true
					break
				}
			}
			gotV, gotOK := p.First(n)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Errorf("First(%v, n=%d) = (%d,%t), want (%d,%t)", p, n, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}
