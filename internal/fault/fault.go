// Package fault defines the fault taxonomy, failure rates, and fault
// footprint algebra for stacked DRAM, following the field data of Sridharan
// & Liberty (SC 2012) scaled to 8 Gb dies exactly as Citadel's Table I does,
// plus the TSV fault modes the paper introduces for 3D stacks.
//
// A fault is a footprint — a set of affected (die, bank, row, bit-column)
// cells within one stack — paired with a granularity class, a persistence,
// and an arrival time. Protection schemes decide correctability by
// intersecting footprints, so the algebra (package-level Pattern/Region) is
// the contract between the fault model and every scheme.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stack"
)

// Class is the granularity class of a fault.
type Class int

const (
	// Bit is a single-bit fault.
	Bit Class = iota
	// Word is a fault confined to one aligned 64-bit word of a row.
	Word
	// Column is a column-decoder fault: one bit-column across every row of
	// one sub-array.
	Column
	// Row is a single full-row fault.
	Row
	// SubArray is a failure of one sub-array (a contiguous band of rows
	// across the full width of a bank). Together with Column faults it
	// produces the ~5200-row peak of the paper's Figure 17.
	SubArray
	// Bank is a complete single-bank failure.
	Bank
	// DataTSV is a faulty data TSV: a strided set of bit positions in every
	// line of every bank of the channel (die).
	DataTSV
	// AddrTSV is a faulty address TSV: half of the rows of every bank in
	// the channel become unreachable.
	AddrTSV
	numClasses
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case Bit:
		return "bit"
	case Word:
		return "word"
	case Column:
		return "column"
	case Row:
		return "row"
	case SubArray:
		return "subarray"
	case Bank:
		return "bank"
	case DataTSV:
		return "data-tsv"
	case AddrTSV:
		return "addr-tsv"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsTSV reports whether the class is a TSV fault mode.
func (c Class) IsTSV() bool { return c == DataTSV || c == AddrTSV }

// LargeGranularity reports whether the class is in the large-granularity
// band (column and above, including TSV modes) — the multi-bit failure
// modes Citadel targets and the rare-event engine inflates.
func (c Class) LargeGranularity() bool { return c >= Column }

// Persistence distinguishes transient (scrubbed away once corrected) from
// permanent faults.
type Persistence int

const (
	// Transient faults disappear at the next scrub if correctable.
	Transient Persistence = iota
	// Permanent faults persist for the device lifetime unless spared.
	Permanent
)

// String returns "transient" or "permanent".
func (p Persistence) String() string {
	if p == Transient {
		return "transient"
	}
	return "permanent"
}

// Region is a fault footprint within one stack: the cartesian product of
// pattern sets over dies, banks, rows, and bit-columns within a row.
type Region struct {
	Stack int
	Die   Pattern
	Bank  Pattern
	Row   Pattern
	Col   Pattern // bit position within the row, [0, RowBytes*8)
}

// Overlaps reports whether two footprints share at least one cell.
func (r Region) Overlaps(s Region) bool {
	return r.Stack == s.Stack &&
		r.Die.Intersects(s.Die) &&
		r.Bank.Intersects(s.Bank) &&
		r.Row.Intersects(s.Row) &&
		r.Col.Intersects(s.Col)
}

// ContainsCell reports whether the footprint covers the given cell.
func (r Region) ContainsCell(stackIdx, die, bank, row, col int) bool {
	return r.Stack == stackIdx &&
		r.Die.Contains(uint32(die)) &&
		r.Bank.Contains(uint32(bank)) &&
		r.Row.Contains(uint32(row)) &&
		r.Col.Contains(uint32(col))
}

// Fault is one fault event.
type Fault struct {
	Class       Class
	Persistence Persistence
	Hours       float64 // arrival time since start of life
	Region      Region
	TSV         int // TSV index for DataTSV/AddrTSV faults
}

// String renders the fault for logs.
func (f Fault) String() string {
	return fmt.Sprintf("%s/%s@%.0fh stack=%d", f.Class, f.Persistence, f.Hours, f.Region.Stack)
}

// Rates holds failure rates in FIT (failures per 10^9 device-hours), one
// rate per (class, persistence) pair, expressed per die. TSV rates are per
// die (channel) and always permanent.
type Rates struct {
	BitTransient, BitPermanent       float64
	WordTransient, WordPermanent     float64
	ColumnTransient, ColumnPermanent float64
	RowTransient, RowPermanent       float64
	BankTransient, BankPermanent     float64
	// TSVPerDie is the total TSV FIT per die; events split between data and
	// address TSVs in proportion to their counts. The paper sweeps this from
	// 14 to 1430 FIT because field data is unavailable.
	TSVPerDie float64
	// SubArrayFraction is the portion of permanent bank-class events that
	// are sub-array failures rather than full-bank failures (drives the
	// 5200-row peak in Figure 17).
	SubArrayFraction float64
	// SubArrayRows is the number of rows in one sub-array.
	SubArrayRows int
}

// Sridharan1Gb returns the per-chip FIT rates for 1 Gb DRAM devices from
// the field study the paper builds on.
func Sridharan1Gb() Rates {
	return Rates{
		BitTransient: 14.2, BitPermanent: 18.6,
		WordTransient: 1.4, WordPermanent: 0.3,
		ColumnTransient: 1.4, ColumnPermanent: 5.6,
		RowTransient: 0.2, RowPermanent: 8.2,
		BankTransient: 0.8, BankPermanent: 10.0,
		SubArrayFraction: 0.21,
		SubArrayRows:     5200,
	}
}

// ScaleTo8Gb applies the paper's 1 Gb → 8 Gb scaling rules (§III-A): bit and
// word rates scale with capacity (8x), row rates with the number of rows
// (4x), column rates with column-decoder size (1.9x), and bank rates with
// the number of sub-arrays (8x).
func ScaleTo8Gb(r Rates) Rates {
	out := r
	out.BitTransient *= 8
	out.BitPermanent *= 8
	out.WordTransient *= 8
	out.WordPermanent *= 8
	out.ColumnTransient *= 1.9
	out.ColumnPermanent *= 1.9
	out.RowTransient *= 4
	out.RowPermanent *= 4
	out.BankTransient *= 8
	out.BankPermanent *= 8
	return out
}

// ScalePerDoubling extrapolates the paper's 1 Gb -> 8 Gb scaling rules
// (§III-A) to further density doublings: bit/word/bank rates scale with
// capacity (2x per doubling), row rates with the row count (4x per three
// doublings, i.e. 4^(1/3) each), and column rates with decoder size
// (1.9^(1/3) each). Used for the density-sensitivity ablation: the paper's
// motivation is that stacked DRAM will keep densifying.
func ScalePerDoubling(r Rates, doublings int) Rates {
	out := r
	capF := math.Pow(2, float64(doublings))
	rowF := math.Pow(4, float64(doublings)/3)
	colF := math.Pow(1.9, float64(doublings)/3)
	out.BitTransient *= capF
	out.BitPermanent *= capF
	out.WordTransient *= capF
	out.WordPermanent *= capF
	out.BankTransient *= capF
	out.BankPermanent *= capF
	out.RowTransient *= rowF
	out.RowPermanent *= rowF
	out.ColumnTransient *= colF
	out.ColumnPermanent *= colF
	return out
}

// Table1 returns the paper's Table I rates for 8 Gb dies with no TSV
// faults; set TSVPerDie for the sweep configurations.
func Table1() Rates {
	return Rates{
		BitTransient: 113.6, BitPermanent: 148.8,
		WordTransient: 11.2, WordPermanent: 2.4,
		ColumnTransient: 2.6, ColumnPermanent: 10.5,
		RowTransient: 0.8, RowPermanent: 32.8,
		BankTransient: 6.4, BankPermanent: 80,
		SubArrayFraction: 0.21,
		SubArrayRows:     5200,
	}
}

// WithTSV returns a copy of r with the given per-die TSV FIT rate.
func (r Rates) WithTSV(fit float64) Rates {
	r.TSVPerDie = fit
	return r
}

// BiasLarge returns a copy of r with every large-granularity rate —
// column, row, the bank/sub-array budget, and TSV — multiplied by
// factor. It is the proposal distribution of the importance-sampling
// engine (internal/rare): inflating a class's Poisson rate λ to Bλ
// leaves placement and arrival-time distributions untouched, so the
// per-trial likelihood ratio reduces to exp((B−1)Λ)·B^(−n) with Λ the
// total large-granularity event expectation (LargeLambda) and n the
// number of large-granularity events drawn.
func (r Rates) BiasLarge(factor float64) Rates {
	r.ColumnTransient *= factor
	r.ColumnPermanent *= factor
	r.RowTransient *= factor
	r.RowPermanent *= factor
	// SubArray and Bank classes both derive from the bank budget via
	// SubArrayFraction, so scaling the budget scales each class rate by
	// exactly factor.
	r.BankTransient *= factor
	r.BankPermanent *= factor
	r.TSVPerDie *= factor
	return r
}

// LargeLambda returns the expected number of large-granularity fault
// events over hours for the geometry — the Λ in the rare-event
// likelihood ratio. Class events scale with all fault-bearing dies
// (data + ECC); TSV events, as in Sampler, with data dies only.
func (r Rates) LargeLambda(cfg stack.Config, hours float64) float64 {
	nDies := float64(cfg.Stacks * (cfg.DataDies + cfg.ECCDies))
	var perDie float64
	for c := Column; c <= Bank; c++ {
		perDie += r.classRate(c, Transient) + r.classRate(c, Permanent)
	}
	lam := perDie * 1e-9 * hours * nDies
	lam += r.TSVPerDie * 1e-9 * hours * float64(cfg.Stacks*cfg.DataDies)
	return lam
}

// TotalPerDie returns the sum of all per-die FIT rates, including TSV.
func (r Rates) TotalPerDie() float64 {
	return r.BitTransient + r.BitPermanent +
		r.WordTransient + r.WordPermanent +
		r.ColumnTransient + r.ColumnPermanent +
		r.RowTransient + r.RowPermanent +
		r.BankTransient + r.BankPermanent +
		r.TSVPerDie
}

// HoursPerYear is the conversion used throughout (365.25-day years).
const HoursPerYear = 24 * 365.25

// LifetimeHours is the paper's seven-year evaluation lifetime.
const LifetimeHours = 7 * HoursPerYear

// classRate returns the FIT rate for a (class, persistence) pair. SubArray
// and Bank share the bank-class budget via SubArrayFraction.
func (r Rates) classRate(c Class, p Persistence) float64 {
	switch c {
	case Bit:
		if p == Transient {
			return r.BitTransient
		}
		return r.BitPermanent
	case Word:
		if p == Transient {
			return r.WordTransient
		}
		return r.WordPermanent
	case Column:
		if p == Transient {
			return r.ColumnTransient
		}
		return r.ColumnPermanent
	case Row:
		if p == Transient {
			return r.RowTransient
		}
		return r.RowPermanent
	case SubArray:
		if p == Transient {
			return r.BankTransient * r.SubArrayFraction
		}
		return r.BankPermanent * r.SubArrayFraction
	case Bank:
		if p == Transient {
			return r.BankTransient * (1 - r.SubArrayFraction)
		}
		return r.BankPermanent * (1 - r.SubArrayFraction)
	case DataTSV, AddrTSV:
		// Handled jointly: TSV events are always permanent and split by
		// TSV population; see Sampler.
		return 0
	default:
		return 0
	}
}

// Sampler draws fault lifetimes for a whole memory system.
type Sampler struct {
	cfg   stack.Config
	rates Rates
	// dies counts fault-bearing dies per stack: data dies plus ECC dies
	// (the metadata die fails like any other die).
	diesPerStack int
}

// NewSampler builds a sampler for the given geometry and rates.
func NewSampler(cfg stack.Config, rates Rates) *Sampler {
	return &Sampler{cfg: cfg, rates: rates, diesPerStack: cfg.DataDies + cfg.ECCDies}
}

// Rates returns the sampler's rates.
func (s *Sampler) Rates() Rates { return s.rates }

// Config returns the sampler's geometry.
func (s *Sampler) Config() stack.Config { return s.cfg }

// poisson draws a Poisson(lambda) variate (Knuth's method; lambda is small
// — well below 1 per class for realistic FIT rates).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// SampleLifetime draws all fault events for the system over the given
// number of hours, sorted by arrival time.
func (s *Sampler) SampleLifetime(rng *rand.Rand, hours float64) []Fault {
	return s.AppendLifetime(rng, hours, nil)
}

// AppendLifetime is SampleLifetime appending into dst (typically a reused
// buffer truncated to length zero), so the Monte Carlo trial loop can run
// without a per-trial allocation. The sequence of RNG draws is identical to
// SampleLifetime's, so fixed-seed runs produce the same faults either way.
// The appended portion is sorted by arrival time.
func (s *Sampler) AppendLifetime(rng *rand.Rand, hours float64, dst []Fault) []Fault {
	return s.AppendWindow(rng, 0, hours, dst)
}

// AppendWindow draws all fault events arriving in the window
// (start, start+span] and appends them to dst, sorted by arrival time.
// Poisson arrivals are memoryless, so conditioning on any trajectory up
// to start, the suffix of the lifetime is distributed exactly as a fresh
// window draw — the branching step of multilevel splitting
// (internal/rare). With start zero it draws a whole lifetime, with a
// draw sequence identical to the pre-window AppendLifetime (0 + x is
// exact), keeping seeded runs and goldens unchanged.
func (s *Sampler) AppendWindow(rng *rand.Rand, start, span float64, dst []Fault) []Fault {
	base := len(dst)
	faults := dst
	nDies := float64(s.cfg.Stacks * s.diesPerStack)
	add := func(c Class, p Persistence, rate float64) {
		if rate <= 0 {
			return
		}
		lambda := rate * 1e-9 * span * nDies
		n := poisson(rng, lambda)
		for i := 0; i < n; i++ {
			f := s.place(rng, c, p)
			f.Hours = start + rng.Float64()*span
			faults = append(faults, f)
		}
	}
	for c := Bit; c <= Bank; c++ {
		add(c, Transient, s.rates.classRate(c, Transient))
		add(c, Permanent, s.rates.classRate(c, Permanent))
	}
	// TSV events: permanent, split data/address by TSV population.
	if s.rates.TSVPerDie > 0 {
		lambda := s.rates.TSVPerDie * 1e-9 * span * float64(s.cfg.Stacks*s.cfg.DataDies)
		n := poisson(rng, lambda)
		for i := 0; i < n; i++ {
			total := s.cfg.DataTSVs + s.cfg.AddrTSVs
			var f Fault
			if rng.Intn(total) < s.cfg.DataTSVs {
				f = s.place(rng, DataTSV, Permanent)
			} else {
				f = s.place(rng, AddrTSV, Permanent)
			}
			f.Hours = start + rng.Float64()*span
			faults = append(faults, f)
		}
	}
	sortByTime(faults[base:])
	return faults
}

// place chooses a uniformly random location for a fault of class c and
// builds its footprint.
func (s *Sampler) place(rng *rand.Rand, c Class, p Persistence) Fault {
	cfg := s.cfg
	stk := rng.Intn(cfg.Stacks)
	die := rng.Intn(s.diesPerStack) // may land on the metadata die
	bank := rng.Intn(cfg.BanksPerDie)
	row := rng.Intn(cfg.RowsPerBank)
	rowBits := uint32(cfg.RowBytes * 8)
	f := Fault{Class: c, Persistence: p}
	reg := Region{
		Stack: stk,
		Die:   ExactPattern(uint32(die)),
		Bank:  ExactPattern(uint32(bank)),
		Row:   ExactPattern(uint32(row)),
		Col:   AllPattern(),
	}
	switch c {
	case Bit:
		reg.Col = ExactPattern(uint32(rng.Intn(int(rowBits))))
	case Word:
		words := int(rowBits) / 64
		start := uint32(rng.Intn(words)) * 64
		reg.Col = MaskPattern(^uint32(63), start)
	case Column:
		// One bit-column across all rows of one sub-array.
		reg.Col = ExactPattern(uint32(rng.Intn(int(rowBits))))
		reg.Row = s.subArrayRows(rng)
	case Row:
		// Footprint already a single full row.
	case SubArray:
		reg.Row = s.subArrayRows(rng)
	case Bank:
		reg.Row = AllPattern()
	case DataTSV:
		f.TSV = rng.Intn(cfg.DataTSVs)
		reg.Bank = AllPattern()
		reg.Row = AllPattern()
		// Bits q of each line with q mod DataTSVs == t; since lines tile the
		// row and line bits are a multiple of DataTSVs, the row-level bit
		// position obeys the same congruence.
		reg.Col = MaskPattern(uint32(cfg.DataTSVs-1), uint32(f.TSV))
	case AddrTSV:
		f.TSV = rng.Intn(cfg.AddrTSVs)
		reg.Bank = AllPattern()
		// A broken row-address bit makes one half-space unreachable.
		rowAddrBits := bitsFor(cfg.RowsPerBank)
		k := uint(rng.Intn(rowAddrBits))
		v := uint32(rng.Intn(2)) << k
		reg.Row = MaskPattern(1<<k, v)
	}
	f.Region = reg
	return f
}

// subArrayRows returns the row pattern of a random sub-array.
func (s *Sampler) subArrayRows(rng *rand.Rand) Pattern {
	n := s.rates.SubArrayRows
	if n <= 0 || n >= s.cfg.RowsPerBank {
		return AllPattern()
	}
	count := s.cfg.RowsPerBank / n
	if count == 0 {
		count = 1
	}
	start := uint32(rng.Intn(count)) * uint32(n)
	return RangePattern(start, start+uint32(n))
}

// bitsFor returns the number of address bits needed for n values.
func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// sortByTime sorts faults by arrival hour (insertion sort; fault lists are
// short — a handful of events per lifetime).
func sortByTime(fs []Fault) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Hours < fs[j-1].Hours; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// RowsNeedingSparing returns how many rows of one bank the footprint
// covers, assuming the footprint touches that bank (Figure 17's metric).
func (f Fault) RowsNeedingSparing(cfg stack.Config) int {
	return f.Region.Row.CountBelow(uint32(cfg.RowsPerBank))
}
