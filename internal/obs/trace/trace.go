// Package trace is a low-overhead flight recorder: a fixed-size ring of
// span/event records with deterministic sampling, exportable as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) or as a
// human-readable dump.
//
// The recorder is designed so that the disabled path costs one branch and
// zero allocations: every method on *Recorder is nil-safe, Event is a plain
// value type with inline argument slots (no per-event heap allocation), and
// sampling decisions hash a caller-supplied ID instead of consuming RNG
// state — so instrumenting a deterministic simulation does not perturb its
// draw sequence.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Phase bytes follow the Chrome trace-event format.
const (
	// PhaseComplete is a span with a start timestamp and a duration ("X").
	PhaseComplete = byte('X')
	// PhaseInstant is a point event ("i").
	PhaseInstant = byte('i')
	// PhaseCounter is a counter sample ("C").
	PhaseCounter = byte('C')
)

// maxArgs is the number of inline key/value argument slots per event.
// Fixed-size so Event stays a flat value and Emit never allocates.
const maxArgs = 4

// Arg is one event argument. If Str is non-empty it is exported as a string
// value; otherwise Val is exported as a number. A zero Key marks an unused
// slot.
type Arg struct {
	Key string
	Val float64
	Str string
}

// Event is one flight-recorder record. TS and Dur are in the recorder's
// clock unit (wall microseconds by default; engines may use simulated
// cycles or hours — see Options.ClockUnit).
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    float64
	Dur   float64
	TID   int64
	Args  [maxArgs]Arg
}

// Options configures a Recorder.
type Options struct {
	// Capacity is the ring size in events; once full, the oldest events
	// are overwritten. Default 8192.
	Capacity int
	// SampleEvery keeps roughly 1-in-N of the IDs offered to ShouldSample.
	// 0 or 1 samples everything.
	SampleEvery int
	// Seed salts the sampling hash so two recorders with the same
	// SampleEvery pick independent subsets.
	Seed int64
	// RunID correlates this recorder with progress lines, forensic
	// exemplars, and metrics.
	RunID string
	// ClockUnit names the unit of Event.TS/Dur in exported metadata,
	// e.g. "us" (default), "cycles", "hours".
	ClockUnit string
}

// Recorder is a bounded flight recorder. The zero *Recorder (nil) is a
// valid disabled recorder: every method is a cheap no-op.
type Recorder struct {
	opt       Options
	threshold uint64 // ShouldSample keeps hashes below this
	start     time.Time

	mu      sync.Mutex
	buf     []Event
	head    uint64 // total events accepted (monotonic)
	started bool
}

// New builds a Recorder. Returns nil (a valid disabled recorder) if opt
// requests a non-positive capacity explicitly below zero; otherwise applies
// defaults.
func New(opt Options) *Recorder {
	if opt.Capacity <= 0 {
		opt.Capacity = 8192
	}
	if opt.SampleEvery < 1 {
		opt.SampleEvery = 1
	}
	if opt.ClockUnit == "" {
		opt.ClockUnit = "us"
	}
	r := &Recorder{
		opt:   opt,
		start: time.Now(),
		buf:   make([]Event, opt.Capacity),
	}
	if opt.SampleEvery == 1 {
		r.threshold = ^uint64(0)
	} else {
		r.threshold = ^uint64(0) / uint64(opt.SampleEvery)
	}
	return r
}

// Enabled reports whether the recorder is live. Callers on hot paths guard
// their instrumentation with this single branch.
func (r *Recorder) Enabled() bool { return r != nil }

// RunID returns the correlation key ("" when disabled).
func (r *Recorder) RunID() string {
	if r == nil {
		return ""
	}
	return r.opt.RunID
}

// Now returns wall-clock microseconds since the recorder was created.
func (r *Recorder) Now() float64 {
	if r == nil {
		return 0
	}
	return float64(time.Since(r.start)) / float64(time.Microsecond)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ShouldSample deterministically decides whether the entity identified by
// id (a trial index, request index, ...) is traced. The decision depends
// only on (Seed, SampleEvery, id) — never on RNG state or time — so a rerun
// with the same seed samples the same subset.
func (r *Recorder) ShouldSample(id uint64) bool {
	if r == nil {
		return false
	}
	if r.opt.SampleEvery <= 1 {
		return true
	}
	return mix64(id^uint64(r.opt.Seed)) < r.threshold
}

// Emit appends ev to the ring, overwriting the oldest event when full.
// ev is copied by value; Emit performs no allocation.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.head%uint64(len(r.buf))] = ev
	r.head++
	r.mu.Unlock()
}

// Complete records a span with explicit start and duration. Convenience
// wrapper for cold paths; hot paths build an Event value and call Emit.
func (r *Recorder) Complete(name, cat string, tid int64, ts, dur float64, args ...Arg) {
	if r == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Phase: PhaseComplete, TS: ts, Dur: dur, TID: tid}
	for i := 0; i < len(args) && i < maxArgs; i++ {
		ev.Args[i] = args[i]
	}
	r.Emit(ev)
}

// Instant records a point event.
func (r *Recorder) Instant(name, cat string, tid int64, ts float64, args ...Arg) {
	if r == nil {
		return
	}
	ev := Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: ts, TID: tid}
	for i := 0; i < len(args) && i < maxArgs; i++ {
		ev.Args[i] = args[i]
	}
	r.Emit(ev)
}

// Len returns the number of events currently held (≤ Capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head < uint64(len(r.buf)) {
		return int(r.head)
	}
	return len(r.buf)
}

// Dropped returns how many events have been overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head <= uint64(len(r.buf)) {
		return 0
	}
	return r.head - uint64(len(r.buf))
}

// Snapshot returns the retained events oldest-first plus the overwritten
// count. The returned slice is a copy.
func (r *Recorder) Snapshot() (events []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.head <= n {
		events = append(events, r.buf[:r.head]...)
		return events, 0
	}
	oldest := r.head % n
	events = make([]Event, 0, n)
	events = append(events, r.buf[oldest:]...)
	events = append(events, r.buf[:oldest]...)
	return events, r.head - n
}

// chromeEvent mirrors one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, the variant Perfetto
// and chrome://tracing both accept with trailing metadata.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the retained events as Chrome trace-event JSON
// (JSON-object format with a traceEvents array). Timestamps are exported
// as-is; the clock unit is recorded in otherData.clockUnit.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events, dropped := r.Snapshot()
	doc := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(events)),
		OtherData:   map[string]string{},
	}
	if r != nil {
		doc.OtherData["runId"] = r.opt.RunID
		doc.OtherData["clockUnit"] = r.opt.ClockUnit
		doc.OtherData["dropped"] = fmt.Sprintf("%d", dropped)
		doc.OtherData["sampleEvery"] = fmt.Sprintf("%d", r.opt.SampleEvery)
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(rune(ev.Phase)),
			TS:   ev.TS,
			PID:  1,
			TID:  ev.TID,
		}
		if ev.Phase == PhaseComplete {
			dur := ev.Dur
			ce.Dur = &dur
		}
		for _, a := range ev.Args {
			if a.Key == "" {
				continue
			}
			if ce.Args == nil {
				ce.Args = map[string]any{}
			}
			if a.Str != "" {
				ce.Args[a.Key] = a.Str
			} else {
				ce.Args[a.Key] = a.Val
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteText renders the retained events as a human-readable dump,
// oldest-first, one event per line.
func (r *Recorder) WriteText(w io.Writer) error {
	events, dropped := r.Snapshot()
	if r != nil {
		if _, err := fmt.Fprintf(w, "# trace run=%s events=%d dropped=%d clock=%s\n",
			r.opt.RunID, len(events), dropped, r.opt.ClockUnit); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "%12.3f %c tid=%-3d %s/%s", ev.TS, ev.Phase, ev.TID, ev.Cat, ev.Name); err != nil {
			return err
		}
		if ev.Phase == PhaseComplete {
			if _, err := fmt.Fprintf(w, " dur=%.3f", ev.Dur); err != nil {
				return err
			}
		}
		for _, a := range ev.Args {
			if a.Key == "" {
				continue
			}
			if a.Str != "" {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(w, " %s=%g", a.Key, a.Val)
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
