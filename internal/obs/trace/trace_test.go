package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := New(Options{Capacity: 8})
	for i := 0; i < 20; i++ {
		r.Emit(Event{Name: "ev", Phase: PhaseInstant, TS: float64(i)})
	}
	events, dropped := r.Snapshot()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped() = %d, want 12", got)
	}
	// Oldest-first: the survivors are TS 12..19.
	for i, ev := range events {
		if want := float64(12 + i); ev.TS != want {
			t.Fatalf("events[%d].TS = %g, want %g", i, ev.TS, want)
		}
	}
	if r.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", r.Len())
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	r := New(Options{Capacity: 16})
	for i := 0; i < 5; i++ {
		r.Emit(Event{Name: "ev", TS: float64(i)})
	}
	events, dropped := r.Snapshot()
	if len(events) != 5 || dropped != 0 {
		t.Fatalf("got %d events dropped=%d, want 5/0", len(events), dropped)
	}
	for i, ev := range events {
		if ev.TS != float64(i) {
			t.Fatalf("events[%d].TS = %g, want %d", i, ev.TS, i)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	const n = 100000
	a := New(Options{SampleEvery: 16, Seed: 42})
	b := New(Options{SampleEvery: 16, Seed: 42})
	kept := 0
	for id := uint64(0); id < n; id++ {
		sa, sb := a.ShouldSample(id), b.ShouldSample(id)
		if sa != sb {
			t.Fatalf("sampling not deterministic at id=%d: %v vs %v", id, sa, sb)
		}
		if sa {
			kept++
		}
	}
	// ~1/16 of n, with generous tolerance for hash variance.
	want := n / 16
	if kept < want/2 || kept > want*2 {
		t.Fatalf("kept %d of %d ids with SampleEvery=16, want about %d", kept, n, want)
	}
	// A different seed picks a different subset.
	c := New(Options{SampleEvery: 16, Seed: 43})
	same := 0
	for id := uint64(0); id < 4096; id++ {
		if a.ShouldSample(id) == c.ShouldSample(id) {
			same++
		}
	}
	if same == 4096 {
		t.Fatal("seed 42 and 43 sampled identical subsets")
	}
}

func TestSampleEveryOneKeepsAll(t *testing.T) {
	r := New(Options{})
	for id := uint64(0); id < 1000; id++ {
		if !r.ShouldSample(id) {
			t.Fatalf("SampleEvery=1 rejected id %d", id)
		}
	}
}

// TestChromeTraceSchema validates the export against the Chrome trace-event
// JSON-object format: a traceEvents array whose entries carry name/ph/ts/
// pid/tid, with dur present on complete ("X") events. This is the shape
// Perfetto's JSON importer requires.
func TestChromeTraceSchema(t *testing.T) {
	r := New(Options{Capacity: 32, RunID: "r-test-1", ClockUnit: "cycles"})
	r.Complete("read", "perfsim", 3, 100, 25,
		Arg{Key: "queue", Val: 4}, Arg{Key: "bench", Str: "mcf"})
	r.Instant("failure", "faultsim", 0, 200, Arg{Key: "trial", Val: 17})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents has %d entries, want 2", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("traceEvents[%d] missing required key %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "i" {
			t.Fatalf("traceEvents[%d].ph = %q, want X or i", i, ph)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event %d missing numeric dur: %v", i, ev)
			}
		}
	}
	span := doc.TraceEvents[0]
	args, ok := span["args"].(map[string]any)
	if !ok {
		t.Fatalf("span args missing: %v", span)
	}
	if args["queue"] != 4.0 || args["bench"] != "mcf" {
		t.Fatalf("span args wrong: %v", args)
	}
	if doc.OtherData["runId"] != "r-test-1" || doc.OtherData["clockUnit"] != "cycles" {
		t.Fatalf("otherData wrong: %v", doc.OtherData)
	}
}

func TestWriteText(t *testing.T) {
	r := New(Options{Capacity: 8, RunID: "r-txt-1"})
	r.Complete("trial", "faultsim", 2, 1.5, 0.25, Arg{Key: "worker", Val: 2})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run=r-txt-1", "faultsim/trial", "dur=0.250", "worker=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestNilRecorderNoAlloc pins the disabled path: every method on a nil
// *Recorder must be a zero-allocation no-op, because the faultsim trial
// loop calls into it unconditionally guarded only by Enabled().
func TestNilRecorderNoAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			t.Fatal("nil recorder reports enabled")
		}
		r.Emit(Event{Name: "x"})
		_ = r.ShouldSample(7)
		_ = r.Now()
		_ = r.RunID()
		_ = r.Len()
		_ = r.Dropped()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per op, want 0", allocs)
	}
}

func TestEmitNoAlloc(t *testing.T) {
	r := New(Options{Capacity: 64})
	ev := Event{Name: "trial", Cat: "faultsim", Phase: PhaseInstant, TID: 1}
	allocs := testing.AllocsPerRun(100, func() {
		ev.TS++
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocated %.1f per op, want 0", allocs)
	}
}

func TestNilRecorderExports(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-recorder export invalid JSON: %v", err)
	}
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}
