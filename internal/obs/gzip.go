package obs

import (
	"compress/gzip"
	"io"
	"net/http"
	"strings"
	"sync"
)

// GzipMinBytes is the response size below which GzipHandler sends the
// body uncompressed: gzip framing plus a pool round-trip costs more than
// it saves on a few hundred bytes of JSON, and small bodies are the
// common case (errors, health probes, 304 revalidations).
const GzipMinBytes = 1 << 10

// gzipPool recycles gzip writers across responses; Reset rebinds a
// pooled writer to the next connection, so steady-state compression
// allocates nothing per response.
var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// GzipHandler wraps next with conditional gzip response encoding: bodies
// are compressed when the client sent Accept-Encoding: gzip, the
// response is at least GzipMinBytes, and the handler is not streaming.
// Event streams (Content-Type: text/event-stream) and already-encoded
// responses pass through untouched — compressing SSE would buffer frames
// the whole point of SSE is to deliver immediately — as does any handler
// that calls Flush before the size threshold is reached.
func GzipHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Add("Vary", "Accept-Encoding")
		gw := &gzipResponseWriter{ResponseWriter: w}
		defer gw.finish()
		next.ServeHTTP(gw, r)
	})
}

const (
	gzUndecided   = iota // buffering until the size threshold decides
	gzPassthrough        // streaming/encoded/bodyless: plain writes
	gzCompressing        // gzip writer active
)

// gzipResponseWriter defers the compress-or-not decision until it has
// seen either GzipMinBytes of body, a streaming signal (event-stream
// content type, an early Flush), or the end of the handler.
type gzipResponseWriter struct {
	http.ResponseWriter
	mode   int
	status int    // deferred status code (0 = not set yet)
	buf    []byte // body bytes held while undecided
	gz     *gzip.Writer
}

// streamingResponse reports whether the pending response must not be
// buffered or re-encoded.
func (g *gzipResponseWriter) streamingResponse() bool {
	h := g.Header()
	return strings.HasPrefix(h.Get("Content-Type"), "text/event-stream") ||
		h.Get("Content-Encoding") != ""
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if g.mode != gzUndecided {
		g.ResponseWriter.WriteHeader(code)
		return
	}
	g.status = code
	// Bodyless statuses and streams decide immediately; everything else
	// waits for the body size.
	if code == http.StatusNoContent || code == http.StatusNotModified || g.streamingResponse() {
		g.startPassthrough()
	}
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	switch g.mode {
	case gzPassthrough:
		return g.ResponseWriter.Write(p)
	case gzCompressing:
		return g.gz.Write(p)
	}
	if g.streamingResponse() {
		g.startPassthrough()
		return g.ResponseWriter.Write(p)
	}
	g.buf = append(g.buf, p...)
	if len(g.buf) >= GzipMinBytes {
		g.startCompressing()
	}
	return len(p), nil
}

// startPassthrough flushes the deferred status and any buffered bytes
// uncompressed.
func (g *gzipResponseWriter) startPassthrough() {
	g.mode = gzPassthrough
	if g.status != 0 {
		g.ResponseWriter.WriteHeader(g.status)
	}
	if len(g.buf) > 0 {
		g.ResponseWriter.Write(g.buf)
		g.buf = nil
	}
}

// startCompressing commits to gzip: headers out, pooled writer bound,
// buffered prefix re-played through it.
func (g *gzipResponseWriter) startCompressing() {
	g.mode = gzCompressing
	h := g.Header()
	h.Set("Content-Encoding", "gzip")
	h.Del("Content-Length") // no longer the wire length
	if g.status == 0 {
		g.status = http.StatusOK
	}
	g.ResponseWriter.WriteHeader(g.status)
	gz := gzipPool.Get().(*gzip.Writer)
	gz.Reset(g.ResponseWriter)
	g.gz = gz
	if len(g.buf) > 0 {
		g.gz.Write(g.buf)
		g.buf = nil
	}
}

// Flush forwards streaming flushes. A flush while undecided means the
// handler wants bytes on the wire now (SSE, long poll): compression
// would hold them back, so the response commits to passthrough.
func (g *gzipResponseWriter) Flush() {
	switch g.mode {
	case gzUndecided:
		g.startPassthrough()
	case gzCompressing:
		g.gz.Flush()
	}
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// finish closes out the response after the handler returns: a still-
// undecided small body goes out uncompressed; an active gzip stream is
// terminated and its writer recycled.
func (g *gzipResponseWriter) finish() {
	switch g.mode {
	case gzUndecided:
		g.startPassthrough()
	case gzCompressing:
		if err := g.gz.Close(); err == nil {
			gzipPool.Put(g.gz)
		}
		g.gz = nil
	}
}
