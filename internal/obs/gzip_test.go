package obs

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func gzGet(t *testing.T, h http.Handler, acceptGzip bool) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	if acceptGzip {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	rec := httptest.NewRecorder()
	GzipHandler(h).ServeHTTP(rec, req)
	return rec
}

func gunzip(t *testing.T, r io.Reader) string {
	t.Helper()
	gr, err := gzip.NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGzipLargeBody(t *testing.T) {
	body := strings.Repeat("citadel ", 1024) // 8 KiB, well past GzipMinBytes
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	})
	rec := gzGet(t, h, true)
	if ce := rec.Header().Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	if rec.Header().Get("Vary") != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", rec.Header().Get("Vary"))
	}
	if got := gunzip(t, rec.Body); got != body {
		t.Fatalf("decompressed body mismatch: %d bytes vs %d", len(got), len(body))
	}
}

func TestGzipSmallBodyStaysPlain(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	rec := gzGet(t, h, true)
	if ce := rec.Header().Get("Content-Encoding"); ce != "" {
		t.Fatalf("small body got Content-Encoding %q", ce)
	}
	if rec.Body.String() != `{"status":"ok"}` {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestGzipSkippedWithoutAcceptEncoding(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, strings.Repeat("x", 4096))
	})
	rec := gzGet(t, h, false)
	if ce := rec.Header().Get("Content-Encoding"); ce != "" {
		t.Fatalf("Content-Encoding = %q without Accept-Encoding", ce)
	}
}

func TestGzipEventStreamPassthrough(t *testing.T) {
	// An SSE handler writes far past the threshold but must never be
	// buffered into a gzip stream.
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		for i := 0; i < 1024; i++ {
			io.WriteString(w, "data: tick\n\n")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	})
	rec := gzGet(t, h, true)
	if ce := rec.Header().Get("Content-Encoding"); ce != "" {
		t.Fatalf("event stream got Content-Encoding %q", ce)
	}
	if !strings.HasPrefix(rec.Body.String(), "data: tick\n\n") {
		t.Fatalf("stream body corrupted: %q", rec.Body.String()[:24])
	}
}

func TestGzipEarlyFlushForcesPassthrough(t *testing.T) {
	// A handler that flushes before the threshold is streaming, whatever
	// its content type — bytes must reach the wire uncompressed.
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "first")
		w.(http.Flusher).Flush()
		io.WriteString(w, strings.Repeat("x", 4096))
	})
	rec := gzGet(t, h, true)
	if ce := rec.Header().Get("Content-Encoding"); ce != "" {
		t.Fatalf("flushed stream got Content-Encoding %q", ce)
	}
	if !rec.Flushed {
		t.Fatal("flush did not propagate to the underlying writer")
	}
}

func TestGzipNotModifiedHasNoBody(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotModified)
	})
	rec := gzGet(t, h, true)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d", rec.Code)
	}
	if ce := rec.Header().Get("Content-Encoding"); ce != "" || rec.Body.Len() != 0 {
		t.Fatalf("304 got encoding %q and %d body bytes", ce, rec.Body.Len())
	}
}
