// Package obs is the shared observability layer for the simulation engines
// and the HTTP server: lock-free counters, gauges and histograms collected
// in a registry that renders the Prometheus text exposition format, plus
// run-ID generation for structured per-run logs.
//
// The instruments are deliberately minimal — an atomic int64 per counter or
// gauge, one atomic int64 per histogram bucket — so the engines can update
// them from their hot loops (per trial batch, per request batch) without
// measurable overhead and without external dependencies. Engines register
// their metrics against Default() at package init; cmd/citadel-server
// exposes the registry at GET /metrics.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed upper-bound buckets
// (cumulative, Prometheus-style; an implicit +Inf bucket catches the rest).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads the per-bucket counts, total count, and sum coherently
// with respect to concurrent Observe calls. Observe increments the bucket
// before the total, so a torn read shows bucket-total > count; we retry
// until the two agree (and the count is stable across the bucket sweep).
// If the histogram never quiesces we derive the count from the bucket
// total, preserving the exposition invariant that the cumulative +Inf
// bucket equals _count. The sum is best-effort under concurrency.
func (h *Histogram) snapshot() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for attempt := 0; attempt < 16; attempt++ {
		c := h.count.Load()
		s := h.Sum()
		total := int64(0)
		for i := range h.counts {
			buckets[i] = h.counts[i].Load()
			total += buckets[i]
		}
		if total == c && h.count.Load() == c {
			return buckets, c, s
		}
	}
	total := int64(0)
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	return buckets, total, h.Sum()
}

// metric is one registered instrument plus its exposition metadata.
type metric struct {
	name, help, typ string
	counter         *Counter
	gauge           *Gauge
	hist            *Histogram
}

// Registry holds named metrics and renders them as Prometheus text.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the engines register against.
func Default() *Registry { return defaultRegistry }

// lookup returns the existing metric for name, checking the type matches.
// Registration is idempotent so independent Server instances (e.g. in
// tests) can share the process-wide instruments.
func (r *Registry) lookup(name, typ string) *metric {
	m, ok := r.byName[name]
	if !ok {
		return nil
	}
	if m.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, m.typ))
	}
	return m
}

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "counter"); m != nil {
		return m.counter
	}
	m := &metric{name: name, help: help, typ: "counter", counter: &Counter{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.counter
}

// Gauge registers (or returns the existing) gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "gauge"); m != nil {
		return m.gauge
	}
	m := &metric{name: name, help: help, typ: "gauge", gauge: &Gauge{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.gauge
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "histogram"); m != nil {
		return m.hist
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	m := &metric{name: name, help: help, typ: "histogram", hist: h}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.hist
}

// WritePrometheus renders every metric in the text exposition format, in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.typ)
		switch m.typ {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.gauge.Value())
		case "histogram":
			h := m.hist
			buckets, count, sum := h.snapshot()
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += buckets[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatBound(bound), cum)
			}
			cum += buckets[len(h.bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %g\n", m.name, sum)
			fmt.Fprintf(&b, "%s_count %d\n", m.name, count)
		}
	}
	io.WriteString(w, b.String())
}

// helpEscaper applies the text-exposition HELP escaping rules: backslash
// and line feed must be escaped or a multi-line help string corrupts the
// whole scrape.
var helpEscaper = strings.NewReplacer("\\", `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatBound renders a bucket bound the way Prometheus clients expect.
func formatBound(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Run-ID generation: a per-process random prefix plus a sequence number,
// so IDs from concurrently running servers don't collide and a single
// process's runs sort chronologically.
var (
	runSeq    atomic.Uint64
	runPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:]))
	}()
)

// NewRunID returns a process-unique run identifier like "r-1f3a9c0b-17"
// for correlating structured log lines of one simulation run.
func NewRunID() string {
	return fmt.Sprintf("r-%s-%d", runPrefix, runSeq.Add(1))
}
