package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	if a != b {
		t.Errorf("re-registering the same counter returned a new instance")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("dup_total", "help")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="100"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 556.5",
		"lat_count 5",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "counts x").Add(3)
	r.Gauge("y", "current y").Set(-2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP x_total counts x",
		"# TYPE x_total counter",
		"x_total 3",
		"# TYPE y gauge",
		"y -2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "help")
	h := r.Histogram("conc_hist", "help", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("histogram count=%d sum=%g, want 8000/8000", h.Count(), h.Sum())
	}
}

// TestHelpEscaping pins the exposition-format fix: a help string with a
// newline or backslash must not inject raw lines into the scrape.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline two with a back\\slash").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line one\nline two with a back\\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	// Every line must be a comment, a sample, or empty — the raw "line two"
	// continuation would be a parse error for a Prometheus scraper.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "esc_total") {
			continue
		}
		t.Errorf("unparseable exposition line %q", line)
	}
}

// TestHistogramScrapeCoherence pins the tear fix: under a concurrent
// Observe storm, every rendered scrape must satisfy the format invariant
// that the cumulative +Inf bucket equals _count.
func TestHistogramScrapeCoherence(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tear_hist", "help", []float64{1, 2, 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := float64(w)
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(v)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		r.WritePrometheus(&b)
		var inf, count int64
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, `tear_hist_bucket{le="+Inf"}`) {
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &inf)
			}
			if strings.HasPrefix(line, "tear_hist_count") {
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &count)
			}
		}
		if inf != count {
			t.Fatalf("scrape %d tore: +Inf bucket %d != count %d", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestNewRunIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if seen[id] {
			t.Fatalf("duplicate run ID %q", id)
		}
		seen[id] = true
	}
}
