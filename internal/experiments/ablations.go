package experiments

import (
	"fmt"
	"math"
	"strings"

	citadel "repro"
	"repro/internal/dramsim"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/parity"
	"repro/internal/sparing"
	"repro/internal/stack"
	"repro/internal/workload"
)

// Ablations lists the ablation experiment IDs (design-choice sensitivity
// studies beyond the paper's figures; DESIGN.md motivates each).
func Ablations() []string {
	return []string{"orgs", "scrub", "spares", "tsvpool", "paritysens", "priorwork", "cmdlevel", "bookkeeping", "density"}
}

// runAblation dispatches one ablation by ID.
func runAblation(id string, opt Options) (Report, bool) {
	switch id {
	case "orgs":
		return Orgs(opt), true
	case "scrub":
		return Scrub(opt), true
	case "spares":
		return Spares(opt), true
	case "tsvpool":
		return TSVPool(opt), true
	case "paritysens":
		return ParitySensitivity(opt), true
	case "priorwork":
		return PriorWork(opt), true
	case "cmdlevel":
		return CmdLevel(opt), true
	case "bookkeeping":
		return Bookkeeping(opt), true
	case "density":
		return Density(opt), true
	default:
		return Report{}, false
	}
}

// citadelPolicy builds the full Citadel policy with custom budgets.
func citadelPolicy(cfg stack.Config, rows, banks, pool int) faultsim.Policy {
	return faultsim.Policy{
		Name:           fmt.Sprintf("Citadel(r%d,b%d,p%d)", rows, banks, pool),
		Predicate:      ecc.NewParity(cfg, parity.ThreeDP),
		UseTSVSwap:     true,
		TSVStandbyPool: pool,
		NewSparer: func(c stack.Config) faultsim.Sparer {
			return sparing.NewWithBudget(c, rows, banks)
		},
	}
}

// engineOpts builds engine options for a geometry.
func engineOpts(opt Options, cfg stack.Config, tsvFIT float64) faultsim.Options {
	return faultsim.Options{
		Config: cfg,
		Rates:  fault.Table1().WithTSV(tsvFIT),
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
}

// Orgs re-runs the headline comparison on the three stacked-memory
// organizations the paper discusses (§II-C): the reliability improvement of
// Citadel over the striped symbol code should hold for HBM-, HMC- and
// Tezzaron-like designs alike.
func Orgs(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "orgs", Title: "Ablation: Citadel across stack organizations (TSV 1430 FIT)"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-22s %-22s\n", "Organization", "Symbol8/Across-Chan", "Citadel")
	for _, org := range stack.Organizations() {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		eo := engineOpts(opt, org.Config, 1430)
		symbol := faultsim.RunContext(ctx, eo, faultsim.Policy{
			Predicate:  ecc.NewSymbol8(org.Config, stack.AcrossChannels),
			UseTSVSwap: true,
		})
		cit := faultsim.RunContext(ctx, eo, citadelPolicy(org.Config, sparing.MaxSpareRowsPerBank, sparing.SpareBanks, 0))
		rep.Partial = rep.Partial || symbol.Partial || cit.Partial
		fmt.Fprintf(&b, "%-14s %-22s %-22s\n", org.Name,
			probString(symbol), probString(cit))
	}
	rep.Text = b.String()
	return rep
}

// Scrub sweeps the scrubbing interval: longer intervals leave transient
// faults live longer, widening the window for uncorrectable coincidences.
func Scrub(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "scrub", Title: "Ablation: scrub-interval sensitivity"}
	var b strings.Builder
	cfg := stack.DefaultConfig()
	fmt.Fprintf(&b, "%-16s %-20s %-20s\n", "Scrub interval", "3DP", "3DP+DDS")
	for _, hours := range []float64{1, 12, 24, 168} {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		eo := engineOpts(opt, cfg, 0)
		eo.ScrubIntervalHours = hours
		p3 := faultsim.RunContext(ctx, eo, faultsim.Policy{
			Predicate: ecc.NewParity(cfg, parity.ThreeDP), UseTSVSwap: true,
		})
		dds := faultsim.RunContext(ctx, eo, citadelPolicy(cfg, sparing.MaxSpareRowsPerBank, sparing.SpareBanks, 0))
		rep.Partial = rep.Partial || p3.Partial || dds.Partial
		fmt.Fprintf(&b, "%-16s %-20s %-20s\n", fmt.Sprintf("%.0f h", hours),
			probString(p3), probString(dds))
	}
	fmt.Fprintf(&b, "\n(DDS also gates how fast permanent faults leave the live set:\n")
	fmt.Fprintf(&b, " sparing happens at scrub boundaries.)\n")
	rep.Text = b.String()
	return rep
}

// Spares sweeps the DDS budgets: the paper picked 4 spare rows per bank
// (Figure 17's small mode) and 2 spare banks (Table III).
func Spares(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "spares", Title: "Ablation: DDS sparing budgets"}
	var b strings.Builder
	cfg := stack.DefaultConfig()
	fmt.Fprintf(&b, "%-24s %-20s\n", "DDS budget (rows,banks)", "P(fail, 7y)")
	for _, budget := range [][2]int{{0, 0}, {4, 0}, {0, 2}, {2, 2}, {4, 2}, {8, 4}} {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		eo := engineOpts(opt, cfg, 0)
		pol := citadelPolicy(cfg, budget[0], budget[1], 0)
		if budget[0] == 0 && budget[1] == 0 {
			pol.NewSparer = nil
			pol.Name = "no sparing (plain 3DP)"
		}
		r := faultsim.RunContext(ctx, eo, pol)
		rep.Partial = rep.Partial || r.Partial
		fmt.Fprintf(&b, "rows=%-3d banks=%-10d %-20s\n", budget[0], budget[1],
			probString(r))
	}
	rep.Text = b.String()
	return rep
}

// TSVPool sweeps the stand-by TSV pool size at the pessimistic TSV rate.
func TSVPool(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "tsvpool", Title: "Ablation: stand-by TSV pool size (TSV 1430 FIT)"}
	var b strings.Builder
	cfg := stack.DefaultConfig()
	fmt.Fprintf(&b, "%-20s %-20s\n", "Stand-by TSVs/chan", "P(fail, 7y)")
	// Pool 0 disables TSV-Swap entirely for reference.
	eo := engineOpts(opt, cfg, 1430)
	noSwap := faultsim.RunContext(ctx, eo, faultsim.Policy{
		Name:      "no TSV-Swap",
		Predicate: ecc.NewParity(cfg, parity.ThreeDP),
		NewSparer: func(c stack.Config) faultsim.Sparer { return sparing.New(c) },
	})
	rep.Partial = noSwap.Partial
	fmt.Fprintf(&b, "%-20s %-20s\n", "0 (no swap)", probString(noSwap))
	for _, pool := range []int{1, 2, 4, 8} {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		r := faultsim.RunContext(ctx, eo, citadelPolicy(cfg, sparing.MaxSpareRowsPerBank, sparing.SpareBanks, pool))
		rep.Partial = rep.Partial || r.Partial
		fmt.Fprintf(&b, "%-20d %-20s\n", pool, probString(r))
	}
	rep.Text = b.String()
	return rep
}

// ParitySensitivity sweeps the Dimension-1 parity cache hit rate and
// reports the GMEAN 3DP slowdown — the knob Figure 13 justifies.
func ParitySensitivity(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "paritysens", Title: "Ablation: 3DP slowdown vs parity-cache hit rate"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-22s\n", "Parity LLC hit rate", "GMEAN exec (vs baseline)")
	for _, hit := range []float64{0.001, 0.5, 0.85, 0.999} {
		var g float64
		n := 0
		for _, prof := range citadel.Benchmarks() {
			if ctx.Err() != nil {
				rep.Partial = true
				break
			}
			base := citadel.SimulatePerformance(prof, citadel.PerfOptions{Requests: opt.Requests, Seed: opt.Seed})
			run := citadel.SimulatePerformance(prof, citadel.PerfOptions{
				Protection:         citadel.Protection3DP,
				ParityCacheHitRate: hit,
				Requests:           opt.Requests,
				Seed:               opt.Seed,
			})
			g += math.Log(float64(run.Cycles) / float64(base.Cycles))
			n++
		}
		if n == 0 {
			break
		}
		fmt.Fprintf(&b, "%-20.2f %-22.4f\n", hit, math.Exp(g/float64(n)))
	}
	rep.Text = b.String()
	return rep
}

// PriorWork compares 3DP against the prior parity schemes of §VIII-E: the
// 2D-ECC tile code (25%-class storage for small-granularity protection;
// the paper claims 3DP is ~130x more resilient at 1.6% storage).
func PriorWork(opt Options) Report {
	ctx := opt.context()
	cfg := stack.DefaultConfig()
	eo := engineOpts(opt, cfg, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-16s %-18s\n", "Scheme", "P(fail, 7y)", "DRAM storage")
	twod := faultsim.RunContext(ctx, eo, faultsim.Policy{Predicate: ecc.NewTwoDECC(cfg), UseTSVSwap: true})
	fmt.Fprintf(&b, "%-12s %-16s %-18s\n", "2D-ECC", probString(twod), "~25% (prior work)")
	p3 := faultsim.RunContext(ctx, eo, faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP), UseTSVSwap: true})
	fmt.Fprintf(&b, "%-12s %-16s %-18s\n", "3DP", probString(p3), "1.6% (parity bank)")
	if p3.Failures > 0 {
		fmt.Fprintf(&b, "\n3DP vs 2D-ECC: %.0fx more resilient\n", twod.Probability()/p3.Probability())
	}
	return Report{ID: "priorwork", Title: "Ablation: 3DP vs prior 2D-ECC (paper section VIII-E)", Text: b.String(), Partial: twod.Partial || p3.Partial}
}

// CmdLevel cross-checks the coarse queueing model (internal/perfsim)
// against the command-level FR-FCFS channel model (internal/dramsim): for
// each benchmark it replays channel 0's request stream through the
// detailed model and compares row-hit rates and average read latency. The
// two models should agree on ordering and row locality even though the
// coarse model abstracts command timing.
func CmdLevel(opt Options) Report {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %-22s | %-22s\n", "", "coarse (perfsim)", "command-level (dramsim)")
	fmt.Fprintf(&b, "%-12s | %10s %11s | %10s %11s\n", "benchmark",
		"rowhit", "avg lat", "rowhit", "avg lat")
	cfg := stack.DefaultConfig()
	ctx := opt.context()
	partial := false
	for _, name := range []string{"dealII", "mcf", "lbm", "libquantum", "GemsFDTD"} {
		if ctx.Err() != nil {
			partial = true
			break
		}
		prof, _ := citadel.BenchmarkByName(name)
		coarse := citadel.SimulatePerformance(prof, citadel.PerfOptions{Requests: opt.Requests, Seed: opt.Seed})

		// Replay channel 0's stream through the command-level model.
		gen := workload.NewGenerator(prof, 8, opt.Seed)
		ch := dramsim.NewChannel(cfg.BanksPerDie, dramsim.DefaultTiming())
		var reqs []*dramsim.Request
		perK := prof.MPKI + prof.WBPKI
		cyclesPerReq := 1000 / perK * prof.CPI0 / 4 // core-to-mem clock ratio 4
		for i := 0; i < opt.Requests*4 && len(reqs) < opt.Requests; i++ {
			r := gen.Next()
			co := cfg.InterleaveLine(r.LineAddr)
			if co.Stack != 0 || co.Die != 0 {
				continue
			}
			reqs = append(reqs, &dramsim.Request{
				Bank:   co.Bank,
				Row:    co.Row,
				Write:  r.Write,
				Arrive: int64(float64(i) * cyclesPerReq / 8),
			})
		}
		st := ch.SimulateClosedLoop(reqs, 16)
		rowhit := float64(st.RowHits) / float64(st.RowHits+st.RowMisses)
		fmt.Fprintf(&b, "%-12s | %9.1f%% %11.1f | %9.1f%% %11.1f\n", name,
			100*coarse.RowHitRate, coarse.AvgReadLatencyCycles,
			100*rowhit, st.AvgLatency)
	}
	fmt.Fprintf(&b, "\n(absolute latencies differ by design; row locality and per-benchmark\n ordering must track)\n")
	return Report{ID: "cmdlevel", Title: "Ablation: coarse queueing model vs command-level DRAM model", Text: b.String(), Partial: partial}
}

// Bookkeeping contrasts the two ways of accounting ChipKill failures: the
// coding-exact RS(72,64) capability (two faults must share a codeword) vs
// FaultSim-style device-granularity marking (two permanently faulty units
// in a codeword domain = failure). The paper's Figure-14 claim that 3DP is
// ~7x more resilient than the symbol code emerges under the latter.
func Bookkeeping(opt Options) Report {
	ctx := opt.context()
	cfg := stack.DefaultConfig()
	eo := engineOpts(opt, cfg, 0)
	exact := faultsim.RunContext(ctx, eo, faultsim.Policy{
		Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels), UseTSVSwap: true,
	})
	coarse := faultsim.RunContext(ctx, eo, faultsim.Policy{
		Predicate: ecc.NewSymbol8DeviceGranular(cfg, stack.AcrossChannels), UseTSVSwap: true,
	})
	p3 := faultsim.RunContext(ctx, eo, faultsim.Policy{
		Predicate: ecc.NewParity(cfg, parity.ThreeDP), UseTSVSwap: true,
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-14s\n", "Scheme / bookkeeping", "P(fail, 7y)")
	fmt.Fprintf(&b, "%-44s %-14s\n", "Symbol8 across channels, codeword-exact", probString(exact))
	fmt.Fprintf(&b, "%-44s %-14s\n", "Symbol8 across channels, device-granular", probString(coarse))
	fmt.Fprintf(&b, "%-44s %-14s\n", "3DP", probString(p3))
	if p3.Failures > 0 && coarse.Failures > 0 {
		fmt.Fprintf(&b, "\nunder device-granular bookkeeping, 3DP is %.1fx more resilient\n",
			coarse.Probability()/p3.Probability())
		fmt.Fprintf(&b, "(the paper's Figure-14 claim is ~7x; exact bookkeeping gives %.1fx)\n",
			exact.Probability()/p3.Probability())
	}
	return Report{ID: "bookkeeping", Title: "Ablation: ChipKill failure bookkeeping granularity (Figure 14's 7x)", Text: b.String(), Partial: exact.Partial || coarse.Partial || p3.Partial}
}

// Density extrapolates Table I along further die-density doublings
// (8 -> 16 -> 32 -> 64 Gb) using the paper's §III-A scaling rules, asking
// whether Citadel's advantage over the striped symbol code survives the
// densification that motivates stacked memory in the first place.
func Density(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "density", Title: "Ablation: reliability vs die density (8-64 Gb)"}
	cfg := stack.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s %-22s\n", "Die size", "Symbol8/Across-Chan", "Citadel")
	for d := 0; d <= 3; d++ {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		rates := fault.ScalePerDoubling(fault.Table1(), d).WithTSV(1430)
		eo := faultsim.Options{Config: cfg, Rates: rates, Trials: opt.Trials, Seed: opt.Seed}
		symbol := faultsim.RunContext(ctx, eo, faultsim.Policy{
			Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels), UseTSVSwap: true,
		})
		cit := faultsim.RunContext(ctx, eo, citadelPolicy(cfg, sparing.MaxSpareRowsPerBank, sparing.SpareBanks, 0))
		rep.Partial = rep.Partial || symbol.Partial || cit.Partial
		fmt.Fprintf(&b, "%-10s %-22s %-22s\n", fmt.Sprintf("%d Gb", 8<<uint(d)),
			probString(symbol), probString(cit))
	}
	fmt.Fprintf(&b, "\n(density scaling per §III-A: capacity-borne rates x2 per doubling,\n")
	fmt.Fprintf(&b, " rows x4 and columns x1.9 per three doublings)\n")
	rep.Text = b.String()
	return rep
}
