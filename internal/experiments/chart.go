package experiments

import (
	"fmt"
	"math"
	"strings"
)

// asciiChart renders named series of probabilities as a log-scale ASCII
// chart, one column per x value — a terminal stand-in for the paper's
// log-axis figures.
type asciiChart struct {
	xLabels []string
	series  []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	values []float64 // <= 0 means "below resolution"
}

// newChart builds a chart over the given x labels.
func newChart(xLabels []string) *asciiChart { return &asciiChart{xLabels: xLabels} }

// add registers a series; markers cycle through a fixed alphabet.
func (c *asciiChart) add(name string, values []float64) {
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	c.series = append(c.series, chartSeries{
		name:   name,
		marker: markers[len(c.series)%len(markers)],
		values: values,
	})
}

// render draws the chart with the given number of rows.
func (c *asciiChart) render(rows int) string {
	if rows < 4 {
		rows = 8
	}
	// Log-scale bounds across all positive values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, v := range s.values {
			if v > 0 {
				lo = math.Min(lo, math.Log10(v))
				hi = math.Max(hi, math.Log10(v))
			}
		}
	}
	if math.IsInf(lo, 1) {
		return "(no positive data)\n"
	}
	if hi-lo < 1 {
		hi = lo + 1
	}
	colW := 10
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", colW*len(c.xLabels)))
	}
	for _, s := range c.series {
		for x, v := range s.values {
			if v <= 0 {
				continue
			}
			frac := (math.Log10(v) - lo) / (hi - lo)
			r := rows - 1 - int(frac*float64(rows-1)+0.5)
			col := x*colW + colW/2
			if grid[r][col] == ' ' {
				grid[r][col] = s.marker
			} else {
				grid[r][col] = '&' // overlapping points
			}
		}
	}
	var b strings.Builder
	for r := range grid {
		frac := float64(rows-1-r) / float64(rows-1)
		level := math.Pow(10, lo+frac*(hi-lo))
		fmt.Fprintf(&b, "%9.1e |%s\n", level, string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", colW*len(c.xLabels)))
	fmt.Fprintf(&b, "%9s  ", "")
	for _, l := range c.xLabels {
		fmt.Fprintf(&b, "%-*s", colW, l)
	}
	b.WriteByte('\n')
	for _, s := range c.series {
		fmt.Fprintf(&b, "%9s  %c = %s\n", "", s.marker, s.name)
	}
	return b.String()
}
