// Package experiments regenerates every table and figure of the Citadel
// paper's evaluation from the simulators in this repository. Each
// experiment returns a Report with the same rows/series the paper plots;
// cmd/citadel-repro prints them and bench_test.go wraps them as Go
// benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	citadel "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Phase-level metrics, exposed by cmd/citadel-server at GET /metrics.
var (
	mPhases = obs.Default().Counter("citadel_experiments_phases_total",
		"Experiment phases (benchmarks, sweep points, Monte Carlo passes) completed.")
	mPhaseSeconds = obs.Default().Histogram("citadel_experiments_phase_seconds",
		"Wall-clock duration of experiment phases in seconds.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300})
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string // "table1", "fig14", ...
	Title string
	Text  string // formatted rows, ready to print
	// Partial reports that the experiment was cancelled before finishing:
	// the rows present are valid, but sweep points or benchmarks may be
	// missing and Monte Carlo rows may cover fewer trials than requested.
	Partial bool
}

// Options tunes experiment cost.
type Options struct {
	// Trials is the Monte Carlo trial count for reliability experiments.
	Trials int
	// Requests is the request count for performance experiments.
	Requests int
	// Seed makes every experiment deterministic.
	Seed int64
	// Progress, when non-nil, is called after each completed phase of an
	// experiment — a benchmark, a sweep point, a Monte Carlo pass — so a
	// cancelled run shows how far it got and where the time went.
	Progress func(PhaseEvent)

	// ctx carries the cancellation signal installed by RunContext; nil
	// means context.Background(). Unexported so Options stays a value
	// type constructed by callers with struct literals.
	ctx context.Context
}

// PhaseEvent reports one completed unit of an experiment's work.
type PhaseEvent struct {
	Experiment string // "fig15", "fig4", ...
	Phase      string // benchmark name, sweep point, or pass label
	Elapsed    time.Duration
}

// phase records one completed phase into the global metrics and the
// Progress hook.
func (o Options) phase(experiment, name string, start time.Time) {
	d := time.Since(start)
	mPhases.Inc()
	mPhaseSeconds.Observe(d.Seconds())
	if o.Progress != nil {
		o.Progress(PhaseEvent{Experiment: experiment, Phase: name, Elapsed: d})
	}
}

// context returns the run's cancellation context.
func (o Options) context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// DefaultOptions balances fidelity and runtime (a few minutes for all
// experiments). Increase Trials toward 10^6 for publication-grade curves.
func DefaultOptions() Options {
	return Options{Trials: 100000, Requests: 60000, Seed: 42}
}

// All lists every experiment ID in paper order.
func All() []string {
	return []string{
		"table1", "table2", "fig4", "fig5", "fig9", "fig13", "fig14",
		"fig15", "fig16", "fig17", "table3", "fig18", "fig19", "overhead",
	}
}

// Run dispatches one experiment by ID; it cannot be interrupted (see
// RunContext).
func Run(id string, opt Options) (Report, error) {
	return RunContext(context.Background(), id, opt)
}

// RunContext dispatches one experiment by ID under a context. When ctx
// is cancelled mid-experiment the Report comes back with the rows
// computed so far and Partial set; already-started Monte Carlo runs
// return within one trial batch.
func RunContext(ctx context.Context, id string, opt Options) (Report, error) {
	opt.ctx = ctx
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "fig4":
		return Fig4(opt), nil
	case "fig5":
		return Fig5(opt), nil
	case "fig9":
		return Fig9(opt), nil
	case "fig13":
		return Fig13(opt), nil
	case "fig14":
		return Fig14(opt), nil
	case "fig15":
		return Fig15(opt), nil
	case "fig16":
		return Fig16(opt), nil
	case "fig17":
		return Fig17(opt), nil
	case "table3":
		return Table3(opt), nil
	case "fig18":
		return Fig18(opt), nil
	case "fig19":
		return Fig19(opt), nil
	case "overhead":
		return Overhead(), nil
	default:
		if rep, ok := runAblation(id, opt); ok {
			return rep, nil
		}
		return Report{}, fmt.Errorf("experiments: unknown id %q (want one of %v or ablations %v)",
			id, All(), Ablations())
	}
}

// Table1 prints the scaled FIT rates (paper Table I).
func Table1() Report {
	r := citadel.Table1Rates()
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "Failure mode", "Transient", "Permanent")
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f\n", "Single bit", r.BitTransient, r.BitPermanent)
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f\n", "Single word", r.WordTransient, r.WordPermanent)
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f\n", "Single column", r.ColumnTransient, r.ColumnPermanent)
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f\n", "Single row", r.RowTransient, r.RowPermanent)
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f\n", "Single bank", r.BankTransient, r.BankPermanent)
	fmt.Fprintf(&b, "%-18s %25s\n", "TSV", "sweep: 14 - 1430 FIT/die")
	return Report{ID: "table1", Title: "Table I: stacked memory failure rates (8Gb dies, FIT)", Text: b.String()}
}

// Table2 prints the baseline system configuration (paper Table II).
func Table2() Report {
	cfg := citadel.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Cores                    8 @ 3.2 GHz\n")
	fmt.Fprintf(&b, "L3 (shared)              8MB, 8-way, 64B lines\n")
	fmt.Fprintf(&b, "DRAM                     %dx%dGB 3D stacks\n", cfg.Stacks, cfg.StackBytes()>>30)
	fmt.Fprintf(&b, "Channels per stack       %d (1 per die)\n", cfg.Channels())
	fmt.Fprintf(&b, "Banks per channel        %d\n", cfg.BanksPerDie)
	fmt.Fprintf(&b, "Rows per bank            %d\n", cfg.RowsPerBank)
	fmt.Fprintf(&b, "Row buffer               %d B\n", cfg.RowBytes)
	fmt.Fprintf(&b, "Data TSVs per channel    %d\n", cfg.DataTSVs)
	fmt.Fprintf(&b, "Addr TSVs per channel    %d\n", cfg.AddrTSVs)
	fmt.Fprintf(&b, "Timing (tWTR-tCAS-tRCD-tRP-tRAS)  7-9-9-9-36 @ 800 MHz\n")
	return Report{ID: "table2", Title: "Table II: baseline system configuration", Text: b.String()}
}

// relOpts builds reliability options.
func relOpts(opt Options, tsvFIT float64, swap bool) citadel.ReliabilityOptions {
	return citadel.ReliabilityOptions{
		Rates:   citadel.Table1Rates().WithTSV(tsvFIT),
		Trials:  opt.Trials,
		TSVSwap: swap,
		Seed:    opt.Seed,
	}
}

// Fig4 sweeps TSV FIT rates for the symbol code under the three stripings.
func Fig4(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "fig4", Title: "Figure 4: striping vs reliability (8-bit symbol code), P(system failure, 7y)"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-24s %-24s %-24s\n", "TSV FIT/die",
		"Symbol8/Same-Bank", "Symbol8/Across-Banks", "Symbol8/Across-Channels")
	for _, fit := range []float64{0, 14, 143, 1430} {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		phaseStart := time.Now()
		o := relOpts(opt, fit, false)
		rs := citadel.CompareReliabilityContext(ctx, o,
			citadel.SchemeSymbol8SameBank,
			citadel.SchemeSymbol8AcrossBanks,
			citadel.SchemeSymbol8AcrossChannels)
		rep.Partial = rep.Partial || anyPartial(rs)
		fmt.Fprintf(&b, "%-12.0f %-24s %-24s %-24s\n", fit,
			probString(rs[0]), probString(rs[1]), probString(rs[2]))
		opt.phase("fig4", fmt.Sprintf("tsv-fit=%.0f", fit), phaseStart)
	}
	rep.Text = b.String()
	return rep
}

// anyPartial reports whether any result in rs was cut short.
func anyPartial(rs []citadel.Result) bool {
	for _, r := range rs {
		if r.Partial {
			return true
		}
	}
	return false
}

// probString formats a failure probability with its resolution floor.
func probString(r citadel.Result) string {
	if r.Trials == 0 {
		return "n/a" // run cancelled before any trial completed
	}
	if r.Failures == 0 {
		return fmt.Sprintf("<%.1e", 1/float64(r.Trials))
	}
	return fmt.Sprintf("%.2e", r.Probability())
}

// geomeanPerf runs every benchmark under a configuration and returns the
// geometric means of normalized execution time and normalized power.
// Cancellation stops after the current benchmark; the means then cover
// the benchmarks finished so far (partial=true), or come back 1.0 when
// none finished.
func geomeanPerf(opt Options, id string, striping citadel.Striping, prot citadel.Protection) (exec, power float64, partial bool) {
	ctx := opt.context()
	var ge, gp float64
	n := 0
	for _, prof := range citadel.Benchmarks() {
		if ctx.Err() != nil {
			partial = true
			break
		}
		phaseStart := time.Now()
		base := citadel.SimulatePerformanceContext(ctx, prof, citadel.PerfOptions{Requests: opt.Requests, Seed: opt.Seed})
		run := citadel.SimulatePerformanceContext(ctx, prof, citadel.PerfOptions{
			Striping: striping, Protection: prot, Requests: opt.Requests, Seed: opt.Seed,
		})
		if base.Partial || run.Partial || base.Cycles == 0 {
			// Only complete benchmark runs enter the mean: a truncated
			// run's cycle count is not comparable to a full one.
			partial = true
			break
		}
		ge += math.Log(float64(run.Cycles) / float64(base.Cycles))
		gp += math.Log(run.ActivePowerWatts / base.ActivePowerWatts)
		n++
		opt.phase(id, fmt.Sprintf("%s/%s", striping, prof.Name), phaseStart)
	}
	if n == 0 {
		return 1, 1, true
	}
	return math.Exp(ge / float64(n)), math.Exp(gp / float64(n)), partial
}

// Fig5 reports the execution-time and power cost of striping.
func Fig5(opt Options) Report {
	rep := Report{ID: "fig5", Title: "Figure 5: impact of data striping on performance and power (GMEAN, 38 workloads)"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %22s %22s\n", "Mapping", "Norm. execution time", "Norm. active power")
	fmt.Fprintf(&b, "%-18s %22.3f %22.2f\n", "Same-Bank", 1.0, 1.0)
	for _, s := range []citadel.Striping{citadel.AcrossBanks, citadel.AcrossChannels} {
		e, p, partial := geomeanPerf(opt, "fig5", s, citadel.NoProtection)
		rep.Partial = rep.Partial || partial
		fmt.Fprintf(&b, "%-18s %22.3f %22.2f\n", s, e, p)
	}
	rep.Text = b.String()
	return rep
}

// Fig9 shows TSV-SWAP effectiveness at the highest swept TSV rate.
func Fig9(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "fig9", Title: "Figure 9: TSV-SWAP effectiveness (TSV rate 1430 FIT/die), P(system failure, 7y)"}
	var b strings.Builder
	schemes := []citadel.Scheme{
		citadel.SchemeSymbol8SameBank,
		citadel.SchemeSymbol8AcrossBanks,
		citadel.SchemeSymbol8AcrossChannels,
	}
	fmt.Fprintf(&b, "%-26s %-16s %-16s %-16s\n", "Mapping", "No TSV-Swap", "With TSV-Swap", "No TSV faults")
	for _, s := range schemes {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		phaseStart := time.Now()
		noSwap := citadel.SimulateReliabilityContext(ctx, relOpts(opt, 1430, false), s)
		withSwap := citadel.SimulateReliabilityContext(ctx, relOpts(opt, 1430, true), s)
		noTSV := citadel.SimulateReliabilityContext(ctx, relOpts(opt, 0, false), s)
		rep.Partial = rep.Partial || noSwap.Partial || withSwap.Partial || noTSV.Partial
		fmt.Fprintf(&b, "%-26s %-16s %-16s %-16s\n", s,
			probString(noSwap), probString(withSwap), probString(noTSV))
		opt.phase("fig9", s.String(), phaseStart)
	}
	rep.Text = b.String()
	return rep
}

// Fig13 reports the parity-caching hit rate per suite.
func Fig13(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "fig13", Title: "Figure 13: LLC hit rate for Dimension-1 parity caching"}
	suiteSum := map[workload.Suite]float64{}
	suiteN := map[workload.Suite]int{}
	for _, prof := range citadel.Benchmarks() {
		phaseStart := time.Now()
		r := citadel.MeasureParityCachingContext(ctx, prof, opt.Requests*3, opt.Seed)
		if r.Partial {
			// A truncated measurement would skew its suite's average.
			rep.Partial = true
			break
		}
		suiteSum[prof.Suite] += r.HitRate()
		suiteN[prof.Suite]++
		opt.phase("fig13", prof.Name, phaseStart)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %18s\n", "Suite", "Parity hit rate")
	var mean float64
	var n int
	for _, s := range workload.Suites() {
		if suiteN[s] == 0 {
			continue // suite not reached before cancellation
		}
		avg := suiteSum[s] / float64(suiteN[s])
		fmt.Fprintf(&b, "%-12s %17.1f%%\n", s, 100*avg)
		mean += suiteSum[s]
		n += suiteN[s]
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-12s %17.1f%%\n", "GMEAN", 100*mean/float64(n))
	}
	rep.Text = b.String()
	return rep
}

// yearCurves renders cumulative failure probabilities for years 1..7 as a
// table plus a log-scale ASCII chart.
func yearCurves(b *strings.Builder, rs []citadel.Result) {
	defer func() {
		labels := make([]string, 7)
		for y := range labels {
			labels[y] = fmt.Sprintf("y%d", y+1)
		}
		ch := newChart(labels)
		for _, r := range rs {
			vals := make([]float64, 7)
			for y := 1; y <= 7; y++ {
				vals[y-1] = r.ProbabilityByYear(y)
			}
			ch.add(r.Policy, vals)
		}
		fmt.Fprintf(b, "\n%s", ch.render(12))
	}()
	fmt.Fprintf(b, "%-28s", "Scheme \\ Year")
	for y := 1; y <= 7; y++ {
		fmt.Fprintf(b, " %10d", y)
	}
	fmt.Fprintln(b)
	for _, r := range rs {
		fmt.Fprintf(b, "%-28s", r.Policy)
		for y := 1; y <= 7; y++ {
			p := r.ProbabilityByYear(y)
			switch {
			case r.Trials == 0:
				fmt.Fprintf(b, " %10s", "n/a")
			case p == 0:
				fmt.Fprintf(b, " %10s", fmt.Sprintf("<%.0e", 1/float64(r.Trials)))
			default:
				fmt.Fprintf(b, " %10.2e", p)
			}
		}
		fmt.Fprintln(b)
	}
}

// Fig14 compares 1DP/2DP/3DP against the striped symbol code over years.
func Fig14(opt Options) Report {
	phaseStart := time.Now()
	o := relOpts(opt, 0, true) // all systems employ TSV-Swap (paper §V-D)
	rs := citadel.CompareReliabilityContext(opt.context(), o,
		citadel.SchemeSymbol8AcrossChannels,
		citadel.Scheme1DP, citadel.Scheme2DP, citadel.Scheme3DP)
	opt.phase("fig14", "monte-carlo", phaseStart)
	var b strings.Builder
	yearCurves(&b, rs)
	if rs[3].Failures > 0 {
		fmt.Fprintf(&b, "\n3DP vs symbol code ratio at year 7: %.2fx\n",
			rs[0].Probability()/rs[3].Probability())
		fmt.Fprintf(&b, "(see EXPERIMENTS.md: the paper books symbol-code failures at device\n")
		fmt.Fprintf(&b, " granularity, which inflates them ~7x relative to the exact RS(72,64)\n")
		fmt.Fprintf(&b, " capability modeled here)\n")
	}
	return Report{ID: "fig14", Title: "Figure 14: resilience of multi-dimensional parity (no DDS)", Text: b.String(), Partial: anyPartial(rs)}
}

// Fig15 reports per-benchmark normalized execution time.
func Fig15(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "fig15", Title: "Figure 15: normalized execution time (baseline = Same-Bank, no protection)"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s %14s %16s\n",
		"Benchmark", "3DP", "3DP-no-cache", "Across-Banks", "Across-Channels")
	type accum struct{ g3, g3n, gab, gac float64 }
	var sum accum
	n := 0
	for _, prof := range citadel.Benchmarks() {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		phaseStart := time.Now()
		base := citadel.SimulatePerformance(prof, citadel.PerfOptions{Requests: opt.Requests, Seed: opt.Seed})
		get := func(s citadel.Striping, p citadel.Protection) float64 {
			r := citadel.SimulatePerformance(prof, citadel.PerfOptions{
				Striping: s, Protection: p, Requests: opt.Requests, Seed: opt.Seed,
			})
			return float64(r.Cycles) / float64(base.Cycles)
		}
		d3 := get(citadel.SameBank, citadel.Protection3DP)
		d3n := get(citadel.SameBank, citadel.Protection3DPNoCache)
		ab := get(citadel.AcrossBanks, citadel.NoProtection)
		ac := get(citadel.AcrossChannels, citadel.NoProtection)
		fmt.Fprintf(&b, "%-12s %10.3f %14.3f %14.3f %16.3f\n", prof.Name, d3, d3n, ab, ac)
		sum.g3 += math.Log(d3)
		sum.g3n += math.Log(d3n)
		sum.gab += math.Log(ab)
		sum.gac += math.Log(ac)
		n++
		opt.phase("fig15", prof.Name, phaseStart)
	}
	if n > 0 {
		e := func(x float64) float64 { return math.Exp(x / float64(n)) }
		fmt.Fprintf(&b, "%-12s %10.3f %14.3f %14.3f %16.3f\n", "GMEAN",
			e(sum.g3), e(sum.g3n), e(sum.gab), e(sum.gac))
	}
	rep.Text = b.String()
	return rep
}

// Fig16 reports per-suite normalized active power.
func Fig16(opt Options) Report {
	ctx := opt.context()
	rep := Report{ID: "fig16", Title: "Figure 16: normalized active power (baseline = Same-Bank, no protection)"}
	type accum struct {
		d3, ab, ac float64
		n          int
	}
	bySuite := map[workload.Suite]*accum{}
	var total accum
	for _, prof := range citadel.Benchmarks() {
		if ctx.Err() != nil {
			rep.Partial = true
			break
		}
		phaseStart := time.Now()
		base := citadel.SimulatePerformance(prof, citadel.PerfOptions{Requests: opt.Requests, Seed: opt.Seed})
		get := func(s citadel.Striping, p citadel.Protection) float64 {
			r := citadel.SimulatePerformance(prof, citadel.PerfOptions{
				Striping: s, Protection: p, Requests: opt.Requests, Seed: opt.Seed,
			})
			return r.ActivePowerWatts / base.ActivePowerWatts
		}
		a := bySuite[prof.Suite]
		if a == nil {
			a = &accum{}
			bySuite[prof.Suite] = a
		}
		d3, ab, ac := math.Log(get(citadel.SameBank, citadel.Protection3DP)),
			math.Log(get(citadel.AcrossBanks, citadel.NoProtection)),
			math.Log(get(citadel.AcrossChannels, citadel.NoProtection))
		a.d3 += d3
		a.ab += ab
		a.ac += ac
		a.n++
		total.d3 += d3
		total.ab += ab
		total.ac += ac
		total.n++
		opt.phase("fig16", prof.Name, phaseStart)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %14s %16s\n", "Suite", "3DP", "Across-Banks", "Across-Channels")
	row := func(name string, a *accum) {
		if a == nil || a.n == 0 {
			return // suite not reached before cancellation
		}
		e := func(x float64) float64 { return math.Exp(x / float64(a.n)) }
		fmt.Fprintf(&b, "%-12s %8.2f %14.2f %16.2f\n", name, e(a.d3), e(a.ab), e(a.ac))
	}
	for _, s := range workload.Suites() {
		row(s.String(), bySuite[s])
	}
	row("GMEAN", &total)
	rep.Text = b.String()
	return rep
}

// Fig17 reports the bimodal rows-needed-for-sparing distribution.
func Fig17(opt Options) Report {
	// Boost rates to gather enough faulty banks quickly; the *distribution*
	// is rate-independent (each fault's footprint is what it is).
	o := relOpts(opt, 0, true)
	o.Rates.BitPermanent *= 50
	o.Rates.WordPermanent *= 50
	o.Rates.ColumnPermanent *= 50
	o.Rates.RowPermanent *= 50
	o.Rates.BankPermanent *= 50
	phaseStart := time.Now()
	c := citadel.RunFaultCensusContext(opt.context(), o)
	opt.phase("fig17", "census", phaseStart)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %10s\n", "Rows needed for sparing", "Faulty banks", "Percent")
	for _, rows := range c.SortedRowCounts() {
		fmt.Fprintf(&b, "%-24d %12d %9.3f%%\n", rows, c.RowsHistogram[rows], c.RowsPercent(rows))
	}
	fmt.Fprintf(&b, "\nfine-grained (<=4 rows): %.2f%%   coarse-grained (>4 rows): %.2f%%\n",
		pctBelow(c, 5), 100-pctBelow(c, 5))
	return Report{ID: "fig17", Title: "Figure 17: permanent faults are bimodal (rows per faulty bank)", Text: b.String(), Partial: c.Partial}
}

func pctBelow(c citadel.FaultCensus, limit int) float64 {
	total, small := 0, 0
	for rows, n := range c.RowsHistogram {
		total += n
		if rows < limit {
			small += n
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(small) / float64(total)
}

// Table3 reports the failed-banks-per-system distribution.
func Table3(opt Options) Report {
	o := relOpts(opt, 0, true)
	phaseStart := time.Now()
	c := citadel.RunFaultCensusContext(opt.context(), o)
	opt.phase("table3", "census", phaseStart)
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s\n", "Num faulty banks", "Probability")
	fmt.Fprintf(&b, "%-18d %11.2f%%\n", 1, c.FailedBanksPercent(1, false))
	fmt.Fprintf(&b, "%-18d %11.2f%%\n", 2, c.FailedBanksPercent(2, false))
	fmt.Fprintf(&b, "%-18s %11.2f%%\n", "3+", c.FailedBanksPercent(3, true))
	fmt.Fprintf(&b, "\n(systems with >=1 failed bank: %d of %d trials)\n",
		c.TrialsWithBankFailure, c.Trials)
	return Report{ID: "table3", Title: "Table III: number of failed banks, for systems with >=1 bank failure", Text: b.String(), Partial: c.Partial}
}

// Fig18 compares 3DP and 3DP+DDS against the striped symbol code.
func Fig18(opt Options) Report {
	o := relOpts(opt, 0, true)
	phaseStart := time.Now()
	rs := citadel.CompareReliabilityContext(opt.context(), o,
		citadel.SchemeSymbol8AcrossChannels,
		citadel.Scheme3DP,
		citadel.Scheme3DPDDS)
	opt.phase("fig18", "monte-carlo", phaseStart)
	var b strings.Builder
	yearCurves(&b, rs)
	if rs[2].Failures > 0 {
		fmt.Fprintf(&b, "\n3DP+DDS vs symbol code improvement at year 7: %.0fx\n",
			rs[0].Probability()/rs[2].Probability())
	} else if rs[2].Trials > 0 {
		fmt.Fprintf(&b, "\n3DP+DDS vs symbol code improvement at year 7: >%.0fx\n",
			rs[0].Probability()*float64(rs[2].Trials))
	}
	return Report{ID: "fig18", Title: "Figure 18: resilience of 3DP+DDS vs symbol-based striping", Text: b.String(), Partial: anyPartial(rs)}
}

// Fig19 compares Citadel with 6EC7ED and RAID-5 (no TSV faults).
func Fig19(opt Options) Report {
	o := relOpts(opt, 0, false)
	phaseStart := time.Now()
	rs := citadel.CompareReliabilityContext(opt.context(), o,
		citadel.SchemeBCH6EC7ED,
		citadel.SchemeRAID5,
		citadel.Scheme3DPDDS)
	opt.phase("fig19", "monte-carlo", phaseStart)
	rs[2].Policy = "Citadel"
	var b strings.Builder
	yearCurves(&b, rs)
	if rs[1].Failures > 0 && rs[0].Failures > 0 {
		fmt.Fprintf(&b, "\nRAID-5 vs 6EC7ED improvement: %.0fx\n", rs[0].Probability()/rs[1].Probability())
	}
	return Report{ID: "fig19", Title: "Figure 19: Citadel vs 6EC7ED and RAID-5 (no TSV faults)", Text: b.String(), Partial: anyPartial(rs)}
}

// Overhead reports Citadel's storage accounting (paper §VII-E).
func Overhead() Report {
	cfg := citadel.DefaultConfig()
	ov := citadel.ComputeStorageOverhead(cfg)
	var b strings.Builder
	fmt.Fprintf(&b, "Metadata die            %.1f%% (one extra die per %d data dies)\n",
		100*ov.MetadataFraction, cfg.DataDies)
	fmt.Fprintf(&b, "Dimension-1 parity bank %.1f%% (1 of %d banks)\n",
		100*ov.ParityBankFraction, cfg.DataDies*cfg.BanksPerDie)
	fmt.Fprintf(&b, "Total DRAM overhead     %.1f%% (ECC-DIMM: 12.5%%)\n", 100*ov.Total())
	fmt.Fprintf(&b, "On-chip SRAM            %d KB (Dim-2/3 parity rows + RRT/BRT)\n", ov.SRAMBytes/1024)
	return Report{ID: "overhead", Title: "Storage overhead of Citadel (paper section VII-E)", Text: b.String()}
}
