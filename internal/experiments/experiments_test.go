package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps test runs fast.
func tinyOptions() Options {
	return Options{Trials: 2000, Requests: 5000, Seed: 42}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	opt := tinyOptions()
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Errorf("ID = %q, want %q", rep.ID, id)
			}
			if rep.Title == "" || rep.Text == "" {
				t.Error("empty report")
			}
		})
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow in -short mode")
	}
	opt := tinyOptions()
	for _, id := range Ablations() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Text == "" {
				t.Error("empty report")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tinyOptions()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1ContainsPaperNumbers(t *testing.T) {
	rep := Table1()
	for _, want := range []string{"113.6", "148.8", "80.0", "32.8", "1430"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table I missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestTable2MatchesConfig(t *testing.T) {
	rep := Table2()
	for _, want := range []string{"2x8GB", "65536", "2048 B", "256", "7-9-9-9-36"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table II missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	rep := Overhead()
	for _, want := range []string{"12.5%", "1.6%", "14.1%", "12.5%"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("overhead missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestFig4RowsCoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := Fig4(tinyOptions())
	for _, fit := range []string{"0 ", "14 ", "143 ", "1430 "} {
		if !strings.Contains(rep.Text, fit) {
			t.Errorf("Figure 4 missing TSV rate row %q", fit)
		}
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions()
	if o.Trials < 10000 || o.Requests < 10000 {
		t.Errorf("default options too small: %+v", o)
	}
}

func TestRunContextCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled sweep must come back promptly with Partial set —
	// reliability, census, and performance experiments alike.
	for _, id := range []string{"fig4", "fig5", "table3", "orgs"} {
		rep, err := RunContext(ctx, id, tinyOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Partial {
			t.Errorf("%s: cancelled experiment not marked Partial", id)
		}
	}
	// Static tables need no simulation and ignore cancellation.
	rep, err := RunContext(ctx, "table1", tinyOptions())
	if err != nil || rep.Partial {
		t.Errorf("table1 under cancelled ctx: err=%v partial=%v", err, rep.Partial)
	}
}

func TestRunContextMidSweepCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	opt := Options{Trials: 10_000_000, Requests: 5000, Seed: 42}
	start := time.Now()
	rep, err := RunContext(ctx, "fig14", opt)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancelled experiment took %v", elapsed)
	}
	if !rep.Partial {
		t.Error("interrupted fig14 not marked Partial")
	}
	if rep.Text == "" {
		t.Error("partial report lost its rows")
	}
}
