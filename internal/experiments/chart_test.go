package experiments

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	c := newChart([]string{"y1", "y2", "y3"})
	c.add("alpha", []float64{1e-5, 1e-4, 1e-3})
	c.add("beta", []float64{1e-3, 1e-3, 1e-3})
	out := c.render(10)
	for _, want := range []string{"alpha", "beta", "y1", "y3", "*", "o", "1.0e-0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Higher probability must be drawn on a higher row: the 1e-3 marker of
	// alpha (col y3) should appear above its 1e-5 marker (col y1).
	lines := strings.Split(out, "\n")
	rowOf := func(col int) int {
		for i, l := range lines {
			idx := strings.IndexByte(l, '|')
			if idx < 0 {
				continue
			}
			body := l[idx+1:]
			if col < len(body) && body[col] != ' ' {
				return i
			}
		}
		return -1
	}
	colY1, colY3 := 5, 25
	if r1, r3 := rowOf(colY1), rowOf(colY3); r1 >= 0 && r3 >= 0 && r3 > r1 {
		t.Errorf("1e-3 (row %d) drawn below 1e-5 (row %d)\n%s", r3, r1, out)
	}
}

func TestChartHandlesZeros(t *testing.T) {
	c := newChart([]string{"a"})
	c.add("empty", []float64{0})
	if out := c.render(8); !strings.Contains(out, "no positive data") {
		t.Errorf("zero-only chart rendered: %q", out)
	}
	c2 := newChart([]string{"a", "b"})
	c2.add("partial", []float64{0, 1e-4})
	out := c2.render(8)
	if !strings.Contains(out, "*") {
		t.Error("partial series lost its marker")
	}
}

func TestChartOverlapMarker(t *testing.T) {
	c := newChart([]string{"a"})
	c.add("s1", []float64{1e-3})
	c.add("s2", []float64{1e-3})
	if out := c.render(8); !strings.Contains(out, "&") {
		t.Errorf("overlapping points not marked:\n%s", out)
	}
}
