package parity

import "repro/internal/fault"

// This file implements incremental correctability evaluation. The Monte
// Carlo engine asks the same question after every fault arrival — "is the
// live set still correctable?" — and the batch Analyzer.Uncorrectable
// answers it by re-closing the whole set every time. State answers it
// incrementally.
//
// Two properties of the peeling algebra make this exact (the full
// equivalence argument is in DESIGN.md):
//
//  1. Monotonicity / downward closure. lost(a, live) only grows as live
//     grows, so a superset of an uncorrectable set is uncorrectable and a
//     subset of a correctable set is correctable. Peeling is confluent for
//     the same reason (removing a non-lost fault never turns another
//     removable fault permanently stuck), so the fixpoint verdict is
//     independent of removal order.
//  2. Component locality. blockedPieces(d, a, b) is empty unless a's and
//     b's projections intersect in dimension d's group coordinates —
//     (Row, Col) for Dim1, (Die, Col) for Dim2, (Bank, Col) for Dim3 —
//     within the same stack. That interference relation is symmetric, so
//     the peeling fixpoint decomposes over connected components of the
//     interference graph and the verdict is the OR of per-component
//     verdicts.
//
// Consequently, when the tracked set is correctable (the only state a
// running trial can be in while it is still alive), Add(r) needs to peel
// only the interference component of r, and Remove(r) needs no
// re-evaluation at all. The escape hatches (Remove from an uncorrectable
// set) fall back to a full peel that reuses the same scratch buffers, so
// the steady-state loop performs no heap allocation once the buffers have
// grown to working size.
//
// The peeling core here is an independent re-implementation: the batch
// Analyzer.Uncorrectable is deliberately left untouched so it can serve as
// the oracle for the differential tests in internal/ecc.

// regionInfo caches per-region quantities that blockedPieces would
// otherwise recompute for every (a, b) pair in every peeling sweep: the
// per-dimension unit counts and, for single-unit regions, the coordinates
// of that unit.
type regionInfo struct {
	r          fault.Region
	u1, u2, u3 int    // units occupied in Dim1/Dim2/Dim3 group coordinates
	fd, fb, fr uint32 // first die/bank/row value (valid when the count > 0)
}

// State tracks a live fault set and its correctability verdict under
// incremental additions and removals.
type State struct {
	an   *Analyzer
	live []regionInfo
	bad  bool

	// Scratch reused across calls; all-false / empty between calls.
	comp   []int  // indices of the interference component under evaluation
	inComp []bool // per-live-index membership marker
	alive  []bool // per-comp-position liveness during peeling
	allIdx []int  // identity index list for full re-evaluation
	pieces [3][]fault.Region
}

// NewState returns an empty (correctable) incremental state.
func (an *Analyzer) NewState() *State {
	return &State{an: an}
}

// Reset empties the state, retaining scratch capacity.
func (st *State) Reset() {
	st.live = st.live[:0]
	st.bad = false
}

// Uncorrectable reports the current verdict.
func (st *State) Uncorrectable() bool { return st.bad }

// Len returns the number of tracked regions.
func (st *State) Len() int { return len(st.live) }

func (st *State) info(r fault.Region) regionInfo {
	an := st.an
	dieDom := uint32(an.dieDomain)
	banks := uint32(an.cfg.BanksPerDie)
	dies := r.Die.CountBelow(dieDom)
	bks := r.Bank.CountBelow(banks)
	rows := r.Row.CountBelow(an.rowsPerBank)
	return regionInfo{
		r:  r,
		u1: dies * bks,
		u2: bks * rows,
		u3: dies * rows,
		fd: firstValue(r.Die, dieDom),
		fb: firstValue(r.Bank, banks),
		fr: firstValue(r.Row, an.rowsPerBank),
	}
}

// Add inserts r and returns the updated verdict. When the set was already
// uncorrectable no evaluation happens (monotonicity); otherwise only the
// interference component of r is peeled.
func (st *State) Add(r fault.Region) bool {
	st.live = append(st.live, st.info(r))
	if st.bad {
		return true
	}
	idx := len(st.live) - 1
	st.componentOf(idx)
	if st.peel(st.comp) {
		st.bad = true
	}
	for _, c := range st.comp {
		st.inComp[c] = false
	}
	return st.bad
}

// Remove deletes one region equal to r (the engine removes faults it has
// repaired or that have been scrubbed) and returns the updated verdict. A
// correctable set stays correctable under removal (downward closure), so
// re-evaluation happens only when the set was uncorrectable. Removing a
// region not in the set is a no-op.
func (st *State) Remove(r fault.Region) bool {
	for i := range st.live {
		if st.live[i].r == r {
			last := len(st.live) - 1
			st.live[i] = st.live[last]
			st.live = st.live[:last]
			if st.bad {
				st.bad = st.evalFull()
			}
			return st.bad
		}
	}
	return st.bad
}

func (st *State) evalFull() bool {
	st.allIdx = st.allIdx[:0]
	for i := range st.live {
		st.allIdx = append(st.allIdx, i)
	}
	return st.peel(st.allIdx)
}

// interferes reports whether a's and b's group projections intersect in
// some enabled dimension. This is a superset of "blockedPieces non-empty in
// either direction", which is what component decomposition requires.
func (st *State) interferes(a, b fault.Region) bool {
	if a.Stack != b.Stack {
		return false
	}
	for _, d := range st.an.dimList {
		switch d {
		case Dim1:
			if a.Row.Intersects(b.Row) && a.Col.Intersects(b.Col) {
				return true
			}
		case Dim2:
			if a.Die.Intersects(b.Die) && a.Col.Intersects(b.Col) {
				return true
			}
		case Dim3:
			if a.Bank.Intersects(b.Bank) && a.Col.Intersects(b.Col) {
				return true
			}
		}
	}
	return false
}

// componentOf gathers into st.comp the interference component containing
// live index idx, marking members in st.inComp (callers clear the marks).
func (st *State) componentOf(idx int) {
	for len(st.inComp) < len(st.live) {
		st.inComp = append(st.inComp, false)
	}
	st.comp = st.comp[:0]
	st.comp = append(st.comp, idx)
	st.inComp[idx] = true
	for qi := 0; qi < len(st.comp); qi++ {
		a := st.live[st.comp[qi]].r
		for j := range st.live {
			if !st.inComp[j] && st.interferes(a, st.live[j].r) {
				st.inComp[j] = true
				st.comp = append(st.comp, j)
			}
		}
	}
}

// peel runs the batch algorithm's peeling fixpoint over the given live
// indices without mutating the set: faults whose every cell is recoverable
// through some dimension are marked dead and the rest re-examined until no
// progress. Returns true iff faults remain (the set is uncorrectable).
func (st *State) peel(indices []int) bool {
	if len(indices) == 0 {
		return false
	}
	st.alive = st.alive[:0]
	for range indices {
		st.alive = append(st.alive, true)
	}
	remaining := len(indices)
	for {
		progressed := false
		for k := range indices {
			if !st.alive[k] {
				continue
			}
			if !st.lostIn(indices, k) {
				st.alive[k] = false
				remaining--
				progressed = true
			}
		}
		if remaining == 0 {
			return false
		}
		if !progressed {
			return true
		}
	}
}

// lostIn mirrors Analyzer.lost for the fault at indices[k] against the
// still-alive members of indices, building the per-dimension blocked-piece
// lists into reused buffers.
func (st *State) lostIn(indices []int, k int) bool {
	a := st.live[indices[k]].r
	dims := st.an.dimList
	if len(dims) == 0 {
		return true
	}
	for di, d := range dims {
		buf := st.pieces[di][:0]
		for m, idx := range indices {
			if !st.alive[m] {
				continue
			}
			b := &st.live[idx]
			if b.r.Stack != a.Stack {
				continue
			}
			buf = st.an.appendBlockedPieces(buf, d, a, b)
		}
		st.pieces[di] = buf
		if len(buf) == 0 {
			// Recoverable through dimension d: no cell of a is blocked
			// there, so nothing is lost regardless of other dimensions.
			return false
		}
	}
	return st.anyComb(len(dims))
}

// anyComb is anyCombinationNonEmpty over st.pieces[:n], written without a
// closure so the recursion does not allocate.
func (st *State) anyComb(n int) bool {
	for _, piece := range st.pieces[0] {
		if st.anyCombRec(1, n, piece) {
			return true
		}
	}
	return false
}

func (st *State) anyCombRec(i, n int, acc fault.Region) bool {
	if i == n {
		return true
	}
	for _, piece := range st.pieces[i] {
		if next, ok := intersectRegion(acc, piece); ok && st.anyCombRec(i+1, n, next) {
			return true
		}
	}
	return false
}

// appendBlockedPieces is blockedPieces writing into dst, with the unit
// counts and unit coordinates taken from b's cached regionInfo.
func (an *Analyzer) appendBlockedPieces(dst []fault.Region, d Dim, a fault.Region, b *regionInfo) []fault.Region {
	switch d {
	case Dim1:
		base := a
		var ok bool
		if base.Row, ok = intersectPattern(a.Row, b.r.Row); !ok {
			return dst
		}
		if base.Col, ok = intersectPattern(a.Col, b.r.Col); !ok {
			return dst
		}
		if b.u1 != 1 {
			return append(dst, base)
		}
		return an.appendSplitNotUnit(dst, base, b.fd, b.fb)
	case Dim2:
		base := a
		var ok bool
		if base.Die, ok = intersectPattern(a.Die, b.r.Die); !ok {
			return dst
		}
		if base.Col, ok = intersectPattern(a.Col, b.r.Col); !ok {
			return dst
		}
		if b.u2 != 1 {
			return append(dst, base)
		}
		return an.appendSplitNotBankRow(dst, base, b.fb, b.fr)
	case Dim3:
		base := a
		var ok bool
		if base.Bank, ok = intersectPattern(a.Bank, b.r.Bank); !ok {
			return dst
		}
		if base.Col, ok = intersectPattern(a.Col, b.r.Col); !ok {
			return dst
		}
		if b.u3 != 1 {
			return append(dst, base)
		}
		return an.appendSplitNotDieRow(dst, base, b.fd, b.fr)
	default:
		return dst
	}
}

// The three append-variants below mirror splitNotUnit/splitNotBankRow/
// splitNotDieRow with the notExact piece loop inlined (notExact allocates a
// fresh slice per call) and the exact-pattern intersection hoisted out of
// the second loop (it does not depend on the loop variable).

func (an *Analyzer) appendSplitNotUnit(dst []fault.Region, base fault.Region, d0, b0 uint32) []fault.Region {
	for j := 0; j < an.dieBits; j++ {
		m := uint32(1) << uint(j)
		if die, ok := intersectPattern(base.Die, fault.MaskPattern(m, ^d0&m)); ok {
			r := base
			r.Die = die
			dst = append(dst, r)
		}
	}
	if die, ok := intersectPattern(base.Die, fault.ExactPattern(d0)); ok {
		for j := 0; j < an.bankBits; j++ {
			m := uint32(1) << uint(j)
			if bank, ok2 := intersectPattern(base.Bank, fault.MaskPattern(m, ^b0&m)); ok2 {
				r := base
				r.Die, r.Bank = die, bank
				dst = append(dst, r)
			}
		}
	}
	return dst
}

func (an *Analyzer) appendSplitNotBankRow(dst []fault.Region, base fault.Region, b0, r0 uint32) []fault.Region {
	for j := 0; j < an.bankBits; j++ {
		m := uint32(1) << uint(j)
		if bank, ok := intersectPattern(base.Bank, fault.MaskPattern(m, ^b0&m)); ok {
			r := base
			r.Bank = bank
			dst = append(dst, r)
		}
	}
	if bank, ok := intersectPattern(base.Bank, fault.ExactPattern(b0)); ok {
		for j := 0; j < an.rowBits; j++ {
			m := uint32(1) << uint(j)
			if row, ok2 := intersectPattern(base.Row, fault.MaskPattern(m, ^r0&m)); ok2 {
				r := base
				r.Bank, r.Row = bank, row
				dst = append(dst, r)
			}
		}
	}
	return dst
}

func (an *Analyzer) appendSplitNotDieRow(dst []fault.Region, base fault.Region, d0, r0 uint32) []fault.Region {
	for j := 0; j < an.dieBits; j++ {
		m := uint32(1) << uint(j)
		if die, ok := intersectPattern(base.Die, fault.MaskPattern(m, ^d0&m)); ok {
			r := base
			r.Die = die
			dst = append(dst, r)
		}
	}
	if die, ok := intersectPattern(base.Die, fault.ExactPattern(d0)); ok {
		for j := 0; j < an.rowBits; j++ {
			m := uint32(1) << uint(j)
			if row, ok2 := intersectPattern(base.Row, fault.MaskPattern(m, ^r0&m)); ok2 {
				r := base
				r.Die, r.Row = die, row
				dst = append(dst, r)
			}
		}
	}
	return dst
}
