// Package parity implements the correction algebra of Citadel's
// Tri-Dimensional Parity (3DP) scheme (paper §VI) and its 1DP/2DP
// ablations.
//
// 3DP maintains XOR parity along three orthogonal dimensions of a stack:
//
//	Dimension 1: for each row index, across every (die, bank) pair —
//	             materialized in a parity bank (handles bank failures).
//	Dimension 2: for each die, across all (bank, row) pairs — one on-chip
//	             parity row per die.
//	Dimension 3: for each bank index, across all (die, row) pairs — one
//	             on-chip parity row per bank index.
//
// Reconstruction works bit-column-wise: the Dimension-1 parity cell for
// (row r, column c) is the XOR over all (die, bank) of cell (die, bank, r,
// c), and similarly for the other dimensions. A faulty cell is recoverable
// through a dimension iff it is the only faulty cell in that dimension's
// reconstruction group; it is lost iff every enabled dimension's group also
// contains another faulty cell. A fault pattern is uncorrectable when at
// least one cell is lost.
//
// The package computes this cell-precise condition exactly — without
// enumerating cells — by closing fault footprints (fault.Region) under
// intersection and complement-of-a-point, so correctability of a whole
// lifetime's fault set reduces to a small number of footprint
// intersections.
package parity

import (
	"repro/internal/fault"
	"repro/internal/stack"
)

// Dim identifies one parity dimension.
type Dim int

const (
	// Dim1 is the across-banks-and-dies (parity bank) dimension.
	Dim1 Dim = 1 << iota
	// Dim2 is the within-die dimension.
	Dim2
	// Dim3 is the same-bank-index-across-dies dimension.
	Dim3
)

// Dims is a set of enabled dimensions.
type Dims int

const (
	// OneDP enables only the parity bank (Dimension 1).
	OneDP = Dims(Dim1)
	// TwoDP enables Dimensions 1 and 2.
	TwoDP = Dims(Dim1 | Dim2)
	// ThreeDP enables all three dimensions (full 3DP).
	ThreeDP = Dims(Dim1 | Dim2 | Dim3)
)

// String names the configuration as the paper does.
func (d Dims) String() string {
	switch d {
	case OneDP:
		return "1DP"
	case TwoDP:
		return "2DP"
	case ThreeDP:
		return "3DP"
	default:
		return "parity-dims"
	}
}

// List returns the individual dimensions enabled in d.
func (d Dims) List() []Dim {
	var out []Dim
	for _, dim := range []Dim{Dim1, Dim2, Dim3} {
		if d&Dims(dim) != 0 {
			out = append(out, dim)
		}
	}
	return out
}

// intersectPattern returns the intersection of two patterns and whether it
// is non-empty. Patterns are closed under intersection: masks merge when
// compatible and ranges tighten.
func intersectPattern(p, q fault.Pattern) (fault.Pattern, bool) {
	if (p.Val^q.Val)&(p.Mask&q.Mask) != 0 {
		return fault.Pattern{}, false
	}
	out := fault.Pattern{
		Mask: p.Mask | q.Mask,
		Val:  (p.Val | q.Val) & (p.Mask | q.Mask),
		Lo:   p.Lo,
		Hi:   p.Hi,
	}
	if q.Lo > out.Lo {
		out.Lo = q.Lo
	}
	if out.Hi == 0 || (q.Hi != 0 && q.Hi < out.Hi) {
		out.Hi = q.Hi
	}
	// Emptiness check within the 32-bit domain.
	probe := fault.Pattern{Mask: out.Mask, Val: out.Val, Lo: out.Lo, Hi: out.Hi}
	if out.Hi != 0 {
		if probe.CountBelow(out.Hi) == 0 {
			return fault.Pattern{}, false
		}
	} else if probe.CountBelow(^uint32(0)) == 0 && !probe.Contains(^uint32(0)) {
		return fault.Pattern{}, false
	}
	return out, true
}

// intersectRegion intersects two footprints dimension-wise.
func intersectRegion(a, b fault.Region) (fault.Region, bool) {
	if a.Stack != b.Stack {
		return fault.Region{}, false
	}
	out := fault.Region{Stack: a.Stack}
	var ok bool
	if out.Die, ok = intersectPattern(a.Die, b.Die); !ok {
		return fault.Region{}, false
	}
	if out.Bank, ok = intersectPattern(a.Bank, b.Bank); !ok {
		return fault.Region{}, false
	}
	if out.Row, ok = intersectPattern(a.Row, b.Row); !ok {
		return fault.Region{}, false
	}
	if out.Col, ok = intersectPattern(a.Col, b.Col); !ok {
		return fault.Region{}, false
	}
	return out, true
}

// notExact returns patterns whose union is {x in [0, 2^bits) : x != v}.
// The pieces may overlap; callers only test emptiness of intersections, so
// overlap is harmless.
func notExact(v uint32, bits int) []fault.Pattern {
	out := make([]fault.Pattern, 0, bits)
	for j := 0; j < bits; j++ {
		m := uint32(1) << uint(j)
		out = append(out, fault.MaskPattern(m, ^v&m))
	}
	return out
}

// Analyzer evaluates correctability of fault sets under a parity-dimension
// configuration.
type Analyzer struct {
	cfg     stack.Config
	dims    Dims
	dimList []Dim // dims.List(), cached — the hot paths ask per fault pair

	dieDomain                  int // data dies + metadata dies all carry parity
	dieBits, bankBits, rowBits int
	rowsPerBank                uint32
	colDomain                  uint32
}

// NewAnalyzer builds an analyzer for the geometry and enabled dimensions.
// The parity dimensions span the metadata die as well as the data dies
// (paper §VI-B: Dimension 2 keeps one parity row for each of the 9 dies).
func NewAnalyzer(cfg stack.Config, dims Dims) *Analyzer {
	dieDomain := cfg.DataDies + cfg.ECCDies
	return &Analyzer{
		cfg:         cfg,
		dims:        dims,
		dimList:     dims.List(),
		dieDomain:   dieDomain,
		dieBits:     log2ceil(dieDomain),
		bankBits:    log2ceil(cfg.BanksPerDie),
		rowBits:     log2ceil(cfg.RowsPerBank),
		rowsPerBank: uint32(cfg.RowsPerBank),
		colDomain:   uint32(cfg.RowBytes * 8),
	}
}

// Dims returns the enabled dimension set.
func (an *Analyzer) Dims() Dims { return an.dims }

func log2ceil(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// firstValue returns the smallest member of p within [0, n); it must exist.
func firstValue(p fault.Pattern, n uint32) uint32 {
	if v, ok := p.First(n); ok {
		return v
	}
	return 0
}

// blockedPieces returns regions whose union is the set of cells of A whose
// dim-D reconstruction group also contains a cell of B (other than the cell
// itself). Both regions must be in the same stack (checked by the caller).
func (an *Analyzer) blockedPieces(d Dim, a, b fault.Region) []fault.Region {
	switch d {
	case Dim1:
		// Group of cell x: same (row, col), any (die, bank).
		base := a
		var ok bool
		if base.Row, ok = intersectPattern(a.Row, b.Row); !ok {
			return nil
		}
		if base.Col, ok = intersectPattern(a.Col, b.Col); !ok {
			return nil
		}
		units := b.Die.CountBelow(uint32(an.dieDomain)) * b.Bank.CountBelow(uint32(an.cfg.BanksPerDie))
		if units != 1 {
			return []fault.Region{base}
		}
		// B occupies exactly one (die, bank): only A-cells in a DIFFERENT
		// unit are blocked by it.
		bd := firstValue(b.Die, uint32(an.dieDomain))
		bb := firstValue(b.Bank, uint32(an.cfg.BanksPerDie))
		return an.splitNotUnit(base, bd, bb)
	case Dim2:
		// Group of cell x: same (die, col), any (bank, row).
		base := a
		var ok bool
		if base.Die, ok = intersectPattern(a.Die, b.Die); !ok {
			return nil
		}
		if base.Col, ok = intersectPattern(a.Col, b.Col); !ok {
			return nil
		}
		units := b.Bank.CountBelow(uint32(an.cfg.BanksPerDie)) * b.Row.CountBelow(an.rowsPerBank)
		if units != 1 {
			return []fault.Region{base}
		}
		bb := firstValue(b.Bank, uint32(an.cfg.BanksPerDie))
		br := firstValue(b.Row, an.rowsPerBank)
		return an.splitNotBankRow(base, bb, br)
	case Dim3:
		// Group of cell x: same (bank index, col), any (die, row).
		base := a
		var ok bool
		if base.Bank, ok = intersectPattern(a.Bank, b.Bank); !ok {
			return nil
		}
		if base.Col, ok = intersectPattern(a.Col, b.Col); !ok {
			return nil
		}
		units := b.Die.CountBelow(uint32(an.dieDomain)) * b.Row.CountBelow(an.rowsPerBank)
		if units != 1 {
			return []fault.Region{base}
		}
		bd := firstValue(b.Die, uint32(an.dieDomain))
		br := firstValue(b.Row, an.rowsPerBank)
		return an.splitNotDieRow(base, bd, br)
	default:
		return nil
	}
}

// splitNotUnit restricts base to cells with (die, bank) != (d0, b0),
// expressed as a union of mask-pattern pieces.
func (an *Analyzer) splitNotUnit(base fault.Region, d0, b0 uint32) []fault.Region {
	var out []fault.Region
	for _, dp := range notExact(d0, an.dieBits) {
		r := base
		if die, ok := intersectPattern(base.Die, dp); ok {
			r.Die = die
			out = append(out, r)
		}
	}
	for _, bp := range notExact(b0, an.bankBits) {
		r := base
		if die, ok := intersectPattern(base.Die, fault.ExactPattern(d0)); ok {
			if bank, ok2 := intersectPattern(base.Bank, bp); ok2 {
				r.Die, r.Bank = die, bank
				out = append(out, r)
			}
		}
	}
	return out
}

// splitNotBankRow restricts base to cells with (bank, row) != (b0, r0).
func (an *Analyzer) splitNotBankRow(base fault.Region, b0, r0 uint32) []fault.Region {
	var out []fault.Region
	for _, bp := range notExact(b0, an.bankBits) {
		r := base
		if bank, ok := intersectPattern(base.Bank, bp); ok {
			r.Bank = bank
			out = append(out, r)
		}
	}
	for _, rp := range notExact(r0, an.rowBits) {
		r := base
		if bank, ok := intersectPattern(base.Bank, fault.ExactPattern(b0)); ok {
			if row, ok2 := intersectPattern(base.Row, rp); ok2 {
				r.Bank, r.Row = bank, row
				out = append(out, r)
			}
		}
	}
	return out
}

// splitNotDieRow restricts base to cells with (die, row) != (d0, r0).
func (an *Analyzer) splitNotDieRow(base fault.Region, d0, r0 uint32) []fault.Region {
	var out []fault.Region
	for _, dp := range notExact(d0, an.dieBits) {
		r := base
		if die, ok := intersectPattern(base.Die, dp); ok {
			r.Die = die
			out = append(out, r)
		}
	}
	for _, rp := range notExact(r0, an.rowBits) {
		r := base
		if die, ok := intersectPattern(base.Die, fault.ExactPattern(d0)); ok {
			if row, ok2 := intersectPattern(base.Row, rp); ok2 {
				r.Die, r.Row = die, row
				out = append(out, r)
			}
		}
	}
	return out
}

// lost reports whether fault a has at least one lost cell given the live
// set: a cell whose reconstruction group in EVERY enabled dimension also
// contains another faulty cell. The computation is exact for product
// footprints: per dimension it gathers the union of cells of a blocked by
// each fault b (including a itself), then tests whether some combination of
// one piece per dimension intersects non-emptily.
func (an *Analyzer) lost(a fault.Region, live []fault.Region) bool {
	dims := an.dimList
	if len(dims) == 0 {
		return true
	}
	blocked := make([][]fault.Region, len(dims))
	for di, d := range dims {
		for _, b := range live {
			if b.Stack != a.Stack {
				continue
			}
			blocked[di] = append(blocked[di], an.blockedPieces(d, a, b)...)
		}
	}
	return an.anyCombinationNonEmpty(blocked)
}

// Uncorrectable reports whether the live fault set leads to data loss.
//
// Correction is modeled as iterative peeling, mirroring how 3DP isolates
// multi-granularity fault mixes (paper §VI-D): any fault whose every cell is
// recoverable through some dimension is reconstructed and removed from the
// set; the remaining faults are then re-evaluated against the shrunken set.
// Data is lost iff the peeling fixpoint leaves any fault behind. Peeling
// whole faults (rather than individual cells) is slightly conservative but
// sound: a reported "correctable" always has a valid reconstruction order.
func (an *Analyzer) Uncorrectable(regions []fault.Region) bool {
	if len(regions) == 0 {
		return false
	}
	live := append([]fault.Region(nil), regions...)
	for {
		progressed := false
		for i := 0; i < len(live); i++ {
			if !an.lost(live[i], live) {
				live = append(live[:i], live[i+1:]...)
				progressed = true
				i--
			}
		}
		if !progressed {
			return len(live) > 0
		}
		if len(live) == 0 {
			return false
		}
	}
}

// anyCombinationNonEmpty tests whether picking one region from each list
// yields a non-empty intersection.
func (an *Analyzer) anyCombinationNonEmpty(lists [][]fault.Region) bool {
	for _, l := range lists {
		if len(l) == 0 {
			return false
		}
	}
	var rec func(i int, acc fault.Region) bool
	rec = func(i int, acc fault.Region) bool {
		if i == len(lists) {
			return true
		}
		for _, piece := range lists[i] {
			if next, ok := intersectRegion(acc, piece); ok {
				if rec(i+1, next) {
					return true
				}
			}
		}
		return false
	}
	first := lists[0]
	for _, piece := range first {
		if rec(1, piece) {
			return true
		}
	}
	return false
}

// CellLost reports whether a specific cell would be lost under the live
// fault set — a direct (enumerative) oracle used by tests to validate the
// region algebra on small geometries.
func (an *Analyzer) CellLost(regions []fault.Region, stackIdx, die, bank, row, col int) bool {
	// The cell must be faulty.
	faulty := false
	for _, r := range regions {
		if r.ContainsCell(stackIdx, die, bank, row, col) {
			faulty = true
			break
		}
	}
	if !faulty {
		return false
	}
	covered := func(d Dim) bool {
		// Does any region contain another faulty cell in this cell's group?
		for _, r := range regions {
			if r.Stack != stackIdx {
				continue
			}
			switch d {
			case Dim1:
				if !r.Row.Contains(uint32(row)) || !r.Col.Contains(uint32(col)) {
					continue
				}
				for dd := 0; dd < an.dieDomain; dd++ {
					for bb := 0; bb < an.cfg.BanksPerDie; bb++ {
						if dd == die && bb == bank {
							continue
						}
						if r.ContainsCell(stackIdx, dd, bb, row, col) {
							return true
						}
					}
				}
			case Dim2:
				if !r.Die.Contains(uint32(die)) || !r.Col.Contains(uint32(col)) {
					continue
				}
				for bb := 0; bb < an.cfg.BanksPerDie; bb++ {
					for rr := 0; rr < an.cfg.RowsPerBank; rr++ {
						if bb == bank && rr == row {
							continue
						}
						if r.ContainsCell(stackIdx, die, bb, rr, col) {
							return true
						}
					}
				}
			case Dim3:
				if !r.Bank.Contains(uint32(bank)) || !r.Col.Contains(uint32(col)) {
					continue
				}
				for dd := 0; dd < an.dieDomain; dd++ {
					for rr := 0; rr < an.cfg.RowsPerBank; rr++ {
						if dd == die && rr == row {
							continue
						}
						if r.ContainsCell(stackIdx, dd, bank, rr, col) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	for _, d := range an.dims.List() {
		if !covered(d) {
			return false // recoverable through this dimension
		}
	}
	return true
}
