package parity

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

// tinyConfig is a geometry small enough for exhaustive cell enumeration.
func tinyConfig() stack.Config {
	return stack.Config{
		Stacks:      1,
		DataDies:    4,
		ECCDies:     0,
		BanksPerDie: 4,
		RowsPerBank: 8,
		RowBytes:    2, // 16 bit-columns
		LineBytes:   2,
		DataTSVs:    8,
		AddrTSVs:    3,
		BurstLength: 2,
	}
}

// enumerateCells lists all faulty cells of a region in the tiny geometry.
type cell struct{ die, bank, row, col int }

func enumerateCells(cfg stack.Config, r fault.Region) []cell {
	var out []cell
	for d := 0; d < cfg.DataDies; d++ {
		for b := 0; b < cfg.BanksPerDie; b++ {
			for rr := 0; rr < cfg.RowsPerBank; rr++ {
				for c := 0; c < cfg.RowBytes*8; c++ {
					if r.ContainsCell(0, d, b, rr, c) {
						out = append(out, cell{d, b, rr, c})
					}
				}
			}
		}
	}
	return out
}

// bruteLost is an independent cell-enumerating implementation of lost().
func bruteLost(cfg stack.Config, dims Dims, a fault.Region, live []fault.Region) bool {
	faultyAt := func(d, b, r, c int, exclude cell) bool {
		for _, reg := range live {
			if reg.ContainsCell(0, d, b, r, c) && (cell{d, b, r, c} != exclude) {
				return true
			}
		}
		return false
	}
	for _, x := range enumerateCells(cfg, a) {
		lostEverywhere := true
		for _, dim := range dims.List() {
			blocked := false
			switch dim {
			case Dim1:
				for d := 0; d < cfg.DataDies && !blocked; d++ {
					for b := 0; b < cfg.BanksPerDie && !blocked; b++ {
						blocked = faultyAt(d, b, x.row, x.col, x)
					}
				}
			case Dim2:
				for b := 0; b < cfg.BanksPerDie && !blocked; b++ {
					for r := 0; r < cfg.RowsPerBank && !blocked; r++ {
						blocked = faultyAt(x.die, b, r, x.col, x)
					}
				}
			case Dim3:
				for d := 0; d < cfg.DataDies && !blocked; d++ {
					for r := 0; r < cfg.RowsPerBank && !blocked; r++ {
						blocked = faultyAt(d, x.bank, r, x.col, x)
					}
				}
			}
			if !blocked {
				lostEverywhere = false
				break
			}
		}
		if lostEverywhere {
			return true
		}
	}
	return false
}

// bruteUncorrectable mirrors Uncorrectable's peeling using bruteLost.
func bruteUncorrectable(cfg stack.Config, dims Dims, regions []fault.Region) bool {
	live := append([]fault.Region(nil), regions...)
	for {
		progressed := false
		for i := 0; i < len(live); i++ {
			if !bruteLost(cfg, dims, live[i], live) {
				live = append(live[:i], live[i+1:]...)
				progressed = true
				i--
			}
		}
		if !progressed {
			return len(live) > 0
		}
		if len(live) == 0 {
			return false
		}
	}
}

// randomRegion draws a random product footprint in the tiny geometry.
func randomRegion(rng *rand.Rand, cfg stack.Config) fault.Region {
	pat := func(n int) fault.Pattern {
		switch rng.Intn(4) {
		case 0:
			return fault.AllPattern()
		case 1:
			return fault.ExactPattern(uint32(rng.Intn(n)))
		case 2:
			mask := uint32(rng.Intn(n))
			return fault.MaskPattern(mask, uint32(rng.Intn(n)))
		default:
			lo := uint32(rng.Intn(n))
			hi := lo + 1 + uint32(rng.Intn(n-int(lo)))
			return fault.RangePattern(lo, hi)
		}
	}
	return fault.Region{
		Stack: 0,
		Die:   pat(cfg.DataDies),
		Bank:  pat(cfg.BanksPerDie),
		Row:   pat(cfg.RowsPerBank),
		Col:   pat(cfg.RowBytes * 8),
	}
}

func TestUncorrectableMatchesBruteForce(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(21))
	for _, dims := range []Dims{OneDP, TwoDP, ThreeDP} {
		an := NewAnalyzer(cfg, dims)
		for trial := 0; trial < 400; trial++ {
			n := 1 + rng.Intn(3)
			regions := make([]fault.Region, 0, n)
			for i := 0; i < n; i++ {
				r := randomRegion(rng, cfg)
				if len(enumerateCells(cfg, r)) == 0 {
					continue // empty footprints cannot occur in practice
				}
				regions = append(regions, r)
			}
			if len(regions) == 0 {
				continue
			}
			want := bruteUncorrectable(cfg, dims, regions)
			got := an.Uncorrectable(regions)
			if got != want {
				t.Fatalf("%v trial %d: Uncorrectable = %v, brute = %v\nregions: %+v",
					dims, trial, got, want, regions)
			}
		}
	}
}

func TestLostMatchesBruteForce(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(22))
	for _, dims := range []Dims{OneDP, TwoDP, ThreeDP} {
		an := NewAnalyzer(cfg, dims)
		for trial := 0; trial < 400; trial++ {
			a := randomRegion(rng, cfg)
			if len(enumerateCells(cfg, a)) == 0 {
				continue
			}
			b := randomRegion(rng, cfg)
			live := []fault.Region{a}
			if len(enumerateCells(cfg, b)) > 0 {
				live = append(live, b)
			}
			want := bruteLost(cfg, dims, a, live)
			got := an.lost(a, live)
			if got != want {
				t.Fatalf("%v trial %d: lost = %v, brute = %v\na: %+v\nlive: %+v",
					dims, trial, got, want, a, live)
			}
		}
	}
}

// fullConfig checks paper-level behaviors on the real geometry.
func fullRegion(class fault.Class, die, bank, row, col uint32) fault.Region {
	r := fault.Region{
		Stack: 0,
		Die:   fault.ExactPattern(die),
		Bank:  fault.ExactPattern(bank),
		Row:   fault.ExactPattern(row),
		Col:   fault.ExactPattern(col),
	}
	switch class {
	case fault.Row:
		r.Col = fault.AllPattern()
	case fault.Bank:
		r.Row = fault.AllPattern()
		r.Col = fault.AllPattern()
	case fault.Column:
		r.Row = fault.AllPattern()
	case fault.DataTSV:
		r.Bank = fault.AllPattern()
		r.Row = fault.AllPattern()
		r.Col = fault.MaskPattern(255, col)
	case fault.AddrTSV:
		r.Bank = fault.AllPattern()
		r.Row = fault.MaskPattern(1<<10, 1<<10)
		r.Col = fault.AllPattern()
	}
	return r
}

func TestSingleFaultsCorrectableUnder3DP(t *testing.T) {
	cfg := stack.DefaultConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	cases := []struct {
		name string
		r    fault.Region
	}{
		{"bit", fullRegion(fault.Bit, 1, 2, 100, 5)},
		{"row", fullRegion(fault.Row, 1, 2, 100, 0)},
		{"column", fullRegion(fault.Column, 1, 2, 0, 5)},
		{"bank", fullRegion(fault.Bank, 1, 2, 0, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if an.Uncorrectable([]fault.Region{tc.r}) {
				t.Errorf("single %s fault uncorrectable under 3DP", tc.name)
			}
		})
	}
}

// TestTSVFaultsDefeat3DP captures the paper's motivation for TSV-SWAP: a
// channel-wide TSV fault corrupts cells in every bank of the die at common
// column positions, self-conflicting in all three parity dimensions, so 3DP
// alone cannot correct it. TSV-SWAP must remove such faults first.
func TestTSVFaultsDefeat3DP(t *testing.T) {
	cfg := stack.DefaultConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	dtsv := fullRegion(fault.DataTSV, 1, 0, 0, 7)
	atsv := fullRegion(fault.AddrTSV, 1, 0, 0, 0)
	if !an.Uncorrectable([]fault.Region{dtsv}) {
		t.Error("unrepaired data-TSV fault correctable under 3DP (should fail)")
	}
	if !an.Uncorrectable([]fault.Region{atsv}) {
		t.Error("unrepaired addr-TSV fault correctable under 3DP (should fail)")
	}
}

func TestBankPlusBitUnder1DPFails(t *testing.T) {
	// Paper §VI-A: a 1DP scheme loses data when a bit fault joins a bank
	// fault (the parity group for the bit's (row, col) has two members).
	cfg := stack.DefaultConfig()
	bank := fullRegion(fault.Bank, 1, 2, 0, 0)
	bit := fullRegion(fault.Bit, 3, 4, 100, 5)
	an1 := NewAnalyzer(cfg, OneDP)
	if !an1.Uncorrectable([]fault.Region{bank, bit}) {
		t.Error("1DP corrected bank+bit (should fail)")
	}
	// 2DP peels the bit via Dimension 2, then fixes the bank via Dim 1.
	an2 := NewAnalyzer(cfg, TwoDP)
	if an2.Uncorrectable([]fault.Region{bank, bit}) {
		t.Error("2DP failed bank+bit (should correct)")
	}
}

func TestTwoBankFaultsSameRowcolFail3DP(t *testing.T) {
	cfg := stack.DefaultConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	b1 := fullRegion(fault.Bank, 1, 2, 0, 0)
	b2 := fullRegion(fault.Bank, 3, 4, 0, 0)
	// Two whole-bank faults collide in every dimension-1 group and
	// self-conflict in dimensions 2 and 3.
	if !an.Uncorrectable([]fault.Region{b1, b2}) {
		t.Error("two concurrent bank faults corrected by 3DP (should fail)")
	}
}

func TestTwoRowFaultsDifferentDieBankCorrectable(t *testing.T) {
	cfg := stack.DefaultConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	r1 := fullRegion(fault.Row, 1, 2, 100, 0)
	r2 := fullRegion(fault.Row, 3, 4, 100, 0) // same row index!
	// They collide in Dimension 1 (same row, same cols) but each is the
	// only fault in its die (Dim 2) — recoverable.
	if an.Uncorrectable([]fault.Region{r1, r2}) {
		t.Error("two row faults in different dies uncorrectable (should correct)")
	}
}

func TestBankPlusRowInSameDie(t *testing.T) {
	cfg := stack.DefaultConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	bank := fullRegion(fault.Bank, 1, 2, 0, 0)
	row := fullRegion(fault.Row, 1, 4, 100, 0) // same die, different bank
	// Row fault: Dim2 blocked by the bank fault (same die); Dim3 clean
	// (different bank index) -> peel row, then bank via Dim1.
	if an.Uncorrectable([]fault.Region{bank, row}) {
		t.Error("bank + row in same die uncorrectable under 3DP")
	}
	// Under 2DP the row fault cannot use Dim3: Dim1 is blocked by the bank
	// fault (same row index exists in the bank fault), Dim2 blocked too.
	an2 := NewAnalyzer(cfg, TwoDP)
	if !an2.Uncorrectable([]fault.Region{bank, row}) {
		t.Error("bank + row in same die correctable under 2DP (should fail)")
	}
}

func TestDimsStringAndList(t *testing.T) {
	if OneDP.String() != "1DP" || TwoDP.String() != "2DP" || ThreeDP.String() != "3DP" {
		t.Error("Dims.String wrong")
	}
	if len(ThreeDP.List()) != 3 || len(OneDP.List()) != 1 {
		t.Error("Dims.List wrong")
	}
}

func TestEmptyFaultSetCorrectable(t *testing.T) {
	an := NewAnalyzer(stack.DefaultConfig(), ThreeDP)
	if an.Uncorrectable(nil) {
		t.Error("empty fault set reported uncorrectable")
	}
}

func TestCellLostOracleAgreesOnSamples(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(23))
	an := NewAnalyzer(cfg, ThreeDP)
	for trial := 0; trial < 100; trial++ {
		a := randomRegion(rng, cfg)
		cells := enumerateCells(cfg, a)
		if len(cells) == 0 {
			continue
		}
		live := []fault.Region{a, randomRegion(rng, cfg)}
		anyLost := false
		for _, x := range cells {
			if an.CellLost(live, 0, x.die, x.bank, x.row, x.col) {
				anyLost = true
				break
			}
		}
		if got := bruteLost(cfg, ThreeDP, a, live); got != anyLost {
			t.Fatalf("trial %d: CellLost disagreement: oracle=%v brute=%v", trial, anyLost, got)
		}
	}
}

// TestUncorrectableMonotone checks the key safety invariant of the
// correction algebra: adding a fault to a live set can never turn an
// uncorrectable state correctable.
func TestUncorrectableMonotone(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(77))
	an := NewAnalyzer(cfg, ThreeDP)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		regions := make([]fault.Region, 0, n)
		for i := 0; i < n; i++ {
			r := randomRegion(rng, cfg)
			if len(enumerateCells(cfg, r)) > 0 {
				regions = append(regions, r)
			}
		}
		if len(regions) < 2 {
			continue
		}
		if an.Uncorrectable(regions[:len(regions)-1]) && !an.Uncorrectable(regions) {
			t.Fatalf("trial %d: adding a fault made the set correctable:\n%+v", trial, regions)
		}
	}
}

// TestFewerDimensionsNeverBetter checks that disabling parity dimensions
// can only hurt: any set correctable under kDP is correctable under
// (k+1)DP.
func TestFewerDimensionsNeverBetter(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(78))
	a1 := NewAnalyzer(cfg, OneDP)
	a2 := NewAnalyzer(cfg, TwoDP)
	a3 := NewAnalyzer(cfg, ThreeDP)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(2)
		regions := make([]fault.Region, 0, n)
		for i := 0; i < n; i++ {
			r := randomRegion(rng, cfg)
			if len(enumerateCells(cfg, r)) > 0 {
				regions = append(regions, r)
			}
		}
		if len(regions) == 0 {
			continue
		}
		u1, u2, u3 := a1.Uncorrectable(regions), a2.Uncorrectable(regions), a3.Uncorrectable(regions)
		if !u1 && u2 {
			t.Fatalf("trial %d: 1DP corrects what 2DP cannot: %+v", trial, regions)
		}
		if !u2 && u3 {
			t.Fatalf("trial %d: 2DP corrects what 3DP cannot: %+v", trial, regions)
		}
	}
}
