package parity

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
)

// TestStateMatchesBatchOracle replays random add/remove sequences through
// the incremental State and requires its verdict to match the batch
// Analyzer.Uncorrectable on the same set after every single step.
func TestStateMatchesBatchOracle(t *testing.T) {
	cfg := tinyConfig()
	rng := rand.New(rand.NewSource(31))
	for _, dims := range []Dims{OneDP, TwoDP, ThreeDP} {
		an := NewAnalyzer(cfg, dims)
		st := an.NewState()
		for seq := 0; seq < 60; seq++ {
			st.Reset()
			var cur []fault.Region
			steps := 4 + rng.Intn(10)
			for step := 0; step < steps; step++ {
				if len(cur) > 0 && rng.Intn(3) == 0 {
					// Remove a random present region.
					i := rng.Intn(len(cur))
					r := cur[i]
					cur = append(cur[:i], cur[i+1:]...)
					st.Remove(r)
				} else {
					r := randomRegion(rng, cfg)
					r.Stack = rng.Intn(2)
					if len(enumerateCells(cfg, r)) == 0 {
						continue
					}
					cur = append(cur, r)
					st.Add(r)
				}
				want := an.Uncorrectable(cur)
				if got := st.Uncorrectable(); got != want {
					t.Fatalf("%v seq %d step %d: incremental = %v, batch = %v\nset: %+v",
						dims, seq, step, got, want, cur)
				}
				if st.Len() != len(cur) {
					t.Fatalf("%v seq %d step %d: Len = %d, want %d", dims, seq, step, st.Len(), len(cur))
				}
			}
		}
	}
}

// TestStateRemoveAbsentRegionIsNoop pins the contract that removing a
// region not in the set leaves the verdict untouched.
func TestStateRemoveAbsentRegionIsNoop(t *testing.T) {
	cfg := tinyConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	st := an.NewState()
	r := fault.Region{Stack: 0, Die: fault.ExactPattern(0), Bank: fault.ExactPattern(0),
		Row: fault.ExactPattern(1), Col: fault.AllPattern()}
	st.Add(r)
	other := r
	other.Row = fault.ExactPattern(2)
	if st.Remove(other); st.Len() != 1 {
		t.Fatalf("Remove of absent region changed the set: Len = %d", st.Len())
	}
	if st.Uncorrectable() {
		t.Fatal("single row fault should stay correctable")
	}
}

// TestStateSteadyStateAllocFree verifies the Add/Remove/Reset loop performs
// no heap allocation once scratch buffers are warm.
func TestStateSteadyStateAllocFree(t *testing.T) {
	cfg := tinyConfig()
	an := NewAnalyzer(cfg, ThreeDP)
	st := an.NewState()
	rng := rand.New(rand.NewSource(33))
	var seqs [][]fault.Region
	for i := 0; i < 8; i++ {
		var s []fault.Region
		for j := 0; j < 6; j++ {
			r := randomRegion(rng, cfg)
			if len(enumerateCells(cfg, r)) == 0 {
				continue
			}
			s = append(s, r)
		}
		seqs = append(seqs, s)
	}
	replay := func() {
		for _, s := range seqs {
			st.Reset()
			for _, r := range s {
				st.Add(r)
			}
			for i := len(s) - 1; i >= 0; i-- {
				st.Remove(s[i])
			}
		}
	}
	replay() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(20, replay); allocs != 0 {
		t.Errorf("steady-state State loop allocates %.1f times per replay, want 0", allocs)
	}
}
