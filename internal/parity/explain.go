package parity

import "repro/internal/fault"

// SurvivorBlame attributes the loss of one fault that survives correction
// peeling: for each enabled parity dimension, which faults (by index into
// the slice passed to Explain) contribute blocked cells to that dimension's
// reconstruction groups. A fault can blame itself — a multi-cell footprint
// places several faulty cells into one group.
type SurvivorBlame struct {
	// Index is the survivor's position in the regions slice.
	Index int
	// Blockers maps each enabled dimension to the indices of live faults
	// whose cells collide with the survivor's reconstruction groups in
	// that dimension. Every enabled dimension of a survivor has at least
	// one blocker (otherwise the fault would have been peeled).
	Blockers map[Dim][]int
}

// Explain replays the Uncorrectable peeling fixpoint while tracking
// original fault indices and returns per-survivor blame. It returns nil
// when the set is correctable. The result is deterministic for a given
// input order.
func (an *Analyzer) Explain(regions []fault.Region) []SurvivorBlame {
	if len(regions) == 0 {
		return nil
	}
	live := append([]fault.Region(nil), regions...)
	idx := make([]int, len(regions))
	for i := range idx {
		idx[i] = i
	}
	for {
		progressed := false
		for i := 0; i < len(live); i++ {
			if !an.lost(live[i], live) {
				live = append(live[:i], live[i+1:]...)
				idx = append(idx[:i], idx[i+1:]...)
				progressed = true
				i--
			}
		}
		if !progressed {
			break
		}
		if len(live) == 0 {
			break
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := make([]SurvivorBlame, 0, len(live))
	for i, a := range live {
		blame := SurvivorBlame{Index: idx[i], Blockers: make(map[Dim][]int, len(an.dimList))}
		for _, d := range an.dimList {
			for j, b := range live {
				if b.Stack != a.Stack {
					continue
				}
				if len(an.blockedPieces(d, a, b)) > 0 {
					blame.Blockers[d] = append(blame.Blockers[d], idx[j])
				}
			}
		}
		out = append(out, blame)
	}
	return out
}

// String names a single dimension for reason-chain codes.
func (d Dim) String() string {
	switch d {
	case Dim1:
		return "dim1"
	case Dim2:
		return "dim2"
	case Dim3:
		return "dim3"
	default:
		return "dim?"
	}
}
