package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, total, ways, line int) *Cache {
	t.Helper()
	c, err := New(total, ways, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 64); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := New(1000, 8, 64); err == nil {
		t.Error("accepted non-multiple size")
	}
	if _, err := New(64*24, 8, 64); err == nil {
		t.Error("accepted non-power-of-two sets")
	}
	if _, err := New(8<<20, 8, 64); err != nil {
		t.Errorf("rejected the Table II LLC config: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if r := c.Access(0, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Error("second access missed")
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets: addresses mapping to set 0 are multiples of
	// 64*8=512.
	c := mustNew(t, 1024, 2, 64)
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Probe(b) {
		t.Error("b not evicted despite being LRU")
	}
	if !c.Probe(d) {
		t.Error("d not resident after insert")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // evicts 0
	if !r.Writeback {
		t.Fatal("dirty eviction produced no writeback")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("writeback addr = %d, want 0", r.WritebackAddr)
	}
	// Clean eviction: no writeback.
	c.Access(1536, false) // evicts 512 (clean)
	_, _, ev, wb := c.Stats()
	if ev != 2 || wb != 1 {
		t.Errorf("evictions=%d writebacks=%d, want 2,1", ev, wb)
	}
}

func TestProbeDoesNotDisturbLRU(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Access(0, false)
	c.Access(512, false)
	c.Probe(0)            // must NOT refresh 0
	c.Access(1024, false) // evicts 0 if probe did not refresh
	if c.Probe(0) {
		t.Error("probe refreshed LRU state")
	}
}

func TestWorkingSetSmallerThanCacheAlwaysHits(t *testing.T) {
	c := mustNew(t, 64*1024, 8, 64)
	rng := rand.New(rand.NewSource(5))
	// 512 distinct lines in a 1024-line cache.
	addrs := make([]uint64, 512)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	for _, a := range addrs {
		c.Access(a, false)
	}
	before, _, _, _ := c.Stats()
	_ = before
	hitsBefore, missesBefore, _, _ := c.Stats()
	for i := 0; i < 10000; i++ {
		c.Access(addrs[rng.Intn(len(addrs))], false)
	}
	hits, misses, _, _ := c.Stats()
	if misses != missesBefore {
		t.Errorf("resident working set missed: %d new misses", misses-missesBefore)
	}
	if hits-hitsBefore != 10000 {
		t.Errorf("hits = %d, want 10000", hits-hitsBefore)
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Access(0, true)
	c.Reset()
	if c.Probe(0) {
		t.Error("contents survived reset")
	}
	h, m, e, w := c.Stats()
	if h+m+e+w != 0 {
		t.Error("counters survived reset")
	}
}

func TestAccessors(t *testing.T) {
	c := mustNew(t, 8<<20, 8, 64)
	if c.Ways() != 8 || c.LineBytes() != 64 {
		t.Error("accessors wrong")
	}
	if c.Sets() != (8<<20)/64/8 {
		t.Errorf("Sets = %d", c.Sets())
	}
	if c.HitRate() != 0 {
		t.Error("empty cache hit rate should be 0")
	}
}
