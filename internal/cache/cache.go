// Package cache implements a set-associative, write-back LRU cache used to
// model the shared last-level cache (LLC) of the baseline system (Table II)
// and Citadel's on-demand parity caching for Dimension-1 parity lines
// (paper §VI-C, Figures 12 and 13).
package cache

import (
	"errors"
	"fmt"
)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineBytes int

	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	lru   [][]uint64
	clock uint64

	hits, misses, evictions, writebacks uint64
}

// New builds a cache of totalBytes capacity with the given associativity
// and line size. totalBytes must divide evenly into sets of ways lines.
func New(totalBytes, ways, lineBytes int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, errors.New("cache: sizes must be positive")
	}
	lines := totalBytes / lineBytes
	if lines*lineBytes != totalBytes {
		return nil, fmt.Errorf("cache: %d bytes not a multiple of line size %d", totalBytes, lineBytes)
	}
	sets := lines / ways
	if sets*ways != lines {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, ways)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	c := &Cache{sets: sets, ways: ways, lineBytes: lineBytes}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.dirty[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// index splits an address into set index and tag.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr / uint64(c.lineBytes)
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback is set when the access evicted a dirty victim; its address
	// is the victim's line-aligned address.
	Writeback     bool
	WritebackAddr uint64
}

// Access performs a read (write=false) or write (write=true) of addr,
// allocating on miss and evicting LRU victims.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.hits++
			c.lru[set][w] = c.clock
			if write {
				c.dirty[set][w] = true
			}
			return Result{Hit: true}
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < oldest {
			oldest = c.lru[set][w]
			victim = w
		}
	}
	res := Result{}
	if c.valid[set][victim] {
		c.evictions++
		if c.dirty[set][victim] {
			c.writebacks++
			res.Writeback = true
			res.WritebackAddr = (c.tags[set][victim]*uint64(c.sets) + uint64(set)) * uint64(c.lineBytes)
		}
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.dirty[set][victim] = write
	c.lru[set][victim] = c.clock
	return res
}

// Probe reports whether addr is resident without updating LRU state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Stats returns cumulative counters.
func (c *Cache) Stats() (hits, misses, evictions, writebacks uint64) {
	return c.hits, c.misses, c.evictions, c.writebacks
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := 0; w < c.ways; w++ {
			c.valid[i][w] = false
			c.dirty[i][w] = false
			c.lru[i][w] = 0
		}
	}
	c.clock, c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0, 0
}
