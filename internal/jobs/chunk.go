package jobs

import (
	"context"
	"fmt"

	citadel "repro"
	"repro/internal/faultsim"
)

// Campaign identifies a contiguous range of reliability chunks handed to
// a ChunkExecutor. Spec is the normalized reliability spec; chunk i runs
// Spec.ChunkTrials(i) trials on faultsim.ChunkSeed(Spec.Seed, i) with the
// spec's pinned worker count, so the work is a pure function of (Spec, i)
// wherever it executes.
type Campaign struct {
	// Key is the campaign's content key (Spec.Key of the submitted job).
	Key string
	// RunID tags log lines and progress snapshots (the job ID).
	RunID string
	// Spec is the normalized reliability spec.
	Spec ReliabilitySpec
	// Start is the first chunk still to run (later chunks of a resumed
	// campaign; chunks before it are already merged and checkpointed).
	Start int
	// Total is the campaign's chunk count.
	Total int
}

// ChunkExecutor runs reliability chunks somewhere other than this
// process — internal/cluster implements it by leasing chunks to remote
// citadel-worker processes. The orchestrator treats it as an accelerator,
// not a dependency: any error other than ctx's cancellation makes the
// campaign fall back to local in-process execution from its last
// committed chunk, so losing every worker degrades throughput, never
// correctness or completion.
type ChunkExecutor interface {
	// ExecuteChunks runs chunks [c.Start, c.Total) of c.Spec and calls
	// commit exactly once per chunk in strictly increasing chunk order
	// (the orchestrator folds results left-to-right through
	// faultsim.Merge and checkpoints after each, so out-of-order commits
	// would break the bit-identical determinism contract). A commit
	// error aborts the campaign and is returned. ExecuteChunks returns
	// nil once every chunk is committed, ctx.Err() if cancelled, and any
	// other error to request local fallback for the uncommitted tail.
	ExecuteChunks(ctx context.Context, c Campaign, commit func(chunk int, res citadel.Result) error) error
}

// ChunkTrials returns the trial count of chunk i: CheckpointTrials for
// every chunk but possibly the last, which carries the remainder.
func (r *ReliabilitySpec) ChunkTrials(i int) int {
	n := r.CheckpointTrials
	if rem := r.Trials - i*r.CheckpointTrials; n > rem {
		n = rem
	}
	return n
}

// RunChunk executes chunk i of a normalized reliability spec in-process
// and returns its result. It is the single implementation of "run chunk
// i" shared by the orchestrator's local path and remote citadel-worker
// processes, which is what makes an N-worker campaign bit-identical to
// an in-process one. A cancelled context yields a result with Partial
// set; callers must discard it (partial chunk statistics depend on where
// the cancel landed and would break determinism).
func RunChunk(ctx context.Context, r *ReliabilitySpec, chunk int, runID string, progress func(citadel.RunProgress)) (citadel.Result, error) {
	if !validScheme(r.Scheme) {
		return citadel.Result{}, fmt.Errorf("jobs: unknown scheme %q", r.Scheme)
	}
	if chunk < 0 || chunk >= totalChunks(r) {
		return citadel.Result{}, fmt.Errorf("jobs: chunk %d out of range [0, %d)", chunk, totalChunks(r))
	}
	opts := citadel.ReliabilityOptions{
		Rates:              citadel.Table1Rates().WithTSV(r.TSVFIT),
		Trials:             r.ChunkTrials(chunk),
		LifetimeYears:      r.LifetimeYears,
		ScrubIntervalHours: r.ScrubHours,
		TSVSwap:            r.TSVSwap,
		Seed:               faultsim.ChunkSeed(r.Seed, chunk),
		Workers:            r.Workers,
		RunID:              runID,
		Progress:           progress,
		RareEvent:          r.RareEvent,
		BiasFactor:         r.BiasFactor,
		FaultModel:         r.FaultModel,
		ScenarioParams:     r.ScenarioParams,
	}
	return citadel.SimulateScenarioReliabilityContext(ctx, opts, r.Scheme)
}
