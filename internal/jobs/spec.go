package jobs

import (
	"fmt"
	"runtime"

	citadel "repro"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/stack"
	"repro/internal/store"
)

// Job kinds.
const (
	KindReliability = "reliability"
	KindPerformance = "performance"
	KindExperiment  = "experiment"
)

// DefaultCheckpointTrials is the default reliability chunk size: a
// checkpoint is persisted after every chunk, so this bounds the work a
// crash can lose. It shapes the per-chunk RNG streams and is therefore
// part of the content key.
const DefaultCheckpointTrials = 10000

// Spec describes one campaign. Exactly one of the kind-specific
// sub-specs must be set, matching Kind.
type Spec struct {
	// Kind selects the engine: reliability, performance, or experiment.
	Kind string `json:"kind"`
	// Priority orders the queue (higher runs first; FIFO within a
	// priority). It does not affect the result and is excluded from the
	// content key.
	Priority int `json:"priority,omitempty"`

	Reliability *ReliabilitySpec `json:"reliability,omitempty"`
	Performance *PerformanceSpec `json:"performance,omitempty"`
	Experiment  *ExperimentSpec  `json:"experiment,omitempty"`
}

// ReliabilitySpec configures a Monte Carlo reliability campaign — the
// only checkpointable kind: trials run in CheckpointTrials-sized chunks,
// each on its own splitmix64-derived seed stream, merged with
// faultsim.Merge and checkpointed after every chunk.
type ReliabilitySpec struct {
	Scheme        string  `json:"scheme"`
	Trials        int     `json:"trials"`
	TSVFIT        float64 `json:"tsvFit"`
	TSVSwap       bool    `json:"tsvSwap"`
	LifetimeYears float64 `json:"lifetimeYears"`
	ScrubHours    float64 `json:"scrubHours"`
	Seed          int64   `json:"seed"`
	// Workers bounds the engine's parallelism. The effective worker
	// count shapes the per-worker RNG streams (DESIGN.md reproducibility
	// contract), so it is normalized and part of the content key.
	Workers int `json:"workers"`
	// CheckpointTrials is the chunk size (default
	// DefaultCheckpointTrials, clamped to Trials). Part of the content
	// key: a different chunk layout is a different deterministic run.
	CheckpointTrials int `json:"checkpointTrials"`
	// RareEvent runs every chunk through the importance-sampled
	// rare-event engine; the campaign result is Weighted. omitempty keeps
	// the content keys of pre-existing plain campaigns unchanged.
	RareEvent bool `json:"rareEvent,omitempty"`
	// BiasFactor is the rare-event rate inflation (normalized to
	// citadel.DefaultBiasFactor when RareEvent is set; must be >= 1).
	// Part of the content key: a different bias is a different
	// deterministic run.
	BiasFactor float64 `json:"biasFactor,omitempty"`
	// FaultModel names the registered arrival-process plugin. Normalized
	// to "" when it names scenario.DefaultFaultModel, and omitted from the
	// JSON encoding when empty, so pre-existing Poisson campaigns keep
	// their content keys — see TestScenarioSpecKeys.
	FaultModel string `json:"faultModel,omitempty"`
	// ScenarioParams are plugin knobs shared by the scheme and fault-model
	// plugins. An empty map normalizes to nil (and is omitted from the
	// encoding) for the same key-stability reason. Part of the content key
	// otherwise: different knobs are a different deterministic run.
	ScenarioParams map[string]float64 `json:"scenarioParams,omitempty"`
}

// PerformanceSpec configures a timing/power run (base plus protected
// configuration, like POST /api/v1/performance). Not checkpointable:
// an interrupted run restarts from scratch on recovery.
type PerformanceSpec struct {
	Benchmark  string `json:"benchmark"`
	Striping   string `json:"striping"`   // same-bank | across-banks | across-channels
	Protection string `json:"protection"` // none | 3dp | 3dp-no-cache
	Requests   int    `json:"requests"`
	Seed       int64  `json:"seed"`
}

// ExperimentSpec regenerates one paper table/figure by ID. Not
// checkpointable: an interrupted run restarts from scratch on recovery.
type ExperimentSpec struct {
	ID       string `json:"id"`
	Trials   int    `json:"trials"`
	Requests int    `json:"requests"`
	Seed     int64  `json:"seed"`
}

// Normalize returns a copy with every defaulted field made explicit,
// mirroring the engine defaults (citadel.ReliabilityOptions /
// faultsim.Options.withDefaults). Keys are derived from the normalized
// form so a zero field and its explicit default address the same stored
// result — see TestKeyNormalizesDefaults.
func (s Spec) Normalize() Spec {
	switch {
	case s.Reliability != nil:
		r := *s.Reliability
		if r.Trials <= 0 {
			r.Trials = 100000
		}
		if r.LifetimeYears == 0 {
			r.LifetimeYears = 7
		}
		if r.ScrubHours == 0 {
			r.ScrubHours = 12
		}
		// The effective worker count shapes the result (per-worker RNG
		// streams), so normalize it exactly the way the engine clamps it.
		if max := runtime.GOMAXPROCS(0); r.Workers <= 0 || r.Workers > max {
			r.Workers = max
		}
		if r.CheckpointTrials <= 0 {
			r.CheckpointTrials = DefaultCheckpointTrials
		}
		if r.CheckpointTrials > r.Trials {
			r.CheckpointTrials = r.Trials
		}
		if r.RareEvent && r.BiasFactor == 0 {
			r.BiasFactor = citadel.DefaultBiasFactor
		}
		if r.FaultModel == scenario.DefaultFaultModel {
			r.FaultModel = ""
		}
		if len(r.ScenarioParams) == 0 {
			r.ScenarioParams = nil
		}
		s.Reliability = &r
	case s.Performance != nil:
		p := *s.Performance
		if p.Requests <= 0 {
			p.Requests = 50000
		}
		if p.Striping == "" {
			p.Striping = "same-bank"
		}
		if p.Protection == "" {
			p.Protection = "none"
		}
		s.Performance = &p
	case s.Experiment != nil:
		e := *s.Experiment
		if e.Trials <= 0 {
			e.Trials = 100000
		}
		if e.Requests <= 0 {
			e.Requests = 60000
		}
		s.Experiment = &e
	}
	if s.Kind == "" {
		switch {
		case s.Reliability != nil:
			s.Kind = KindReliability
		case s.Performance != nil:
			s.Kind = KindPerformance
		case s.Experiment != nil:
			s.Kind = KindExperiment
		}
	}
	return s
}

// Key returns the canonical content address of the campaign: the
// SHA-256 of the normalized spec with priority stripped. Two specs that
// describe the same deterministic computation — whether their fields are
// explicit or defaulted — share a key and therefore a cached result.
func (s Spec) Key() (string, error) {
	n := s.Normalize()
	n.Priority = 0
	return store.Key(n)
}

// validScheme reports whether name resolves in the scenario registry —
// every citadel.Scheme plus the scenario-only schemes.
func validScheme(name string) bool {
	_, ok := scenario.SchemeByName(name)
	return ok
}

// Validate rejects malformed specs before they enter the queue.
func (s Spec) Validate() error {
	set := 0
	for _, ok := range []bool{s.Reliability != nil, s.Performance != nil, s.Experiment != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("jobs: spec must set exactly one of reliability, performance, experiment (got %d)", set)
	}
	n := s.Normalize()
	switch n.Kind {
	case KindReliability:
		r := n.Reliability
		if r == nil {
			return fmt.Errorf("jobs: kind %q requires the reliability spec", n.Kind)
		}
		if !validScheme(r.Scheme) {
			return fmt.Errorf("jobs: unknown scheme %q", r.Scheme)
		}
		if _, ok := scenario.FaultModelByName(r.FaultModel); !ok {
			return fmt.Errorf("jobs: unknown fault model %q", r.FaultModel)
		}
		if err := scenario.ValidateParams(r.Scheme, r.FaultModel, scenario.Params(r.ScenarioParams)); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		// Dry-run the plugin builders against the default geometry so
		// value errors (a bad codeword width, a non-positive rate) are
		// rejected at submission instead of surfacing as failed chunks.
		if _, err := scenario.BuildScheme(r.Scheme, stack.DefaultConfig(), scenario.Params(r.ScenarioParams)); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		if _, err := scenario.BuildFaultModel(r.FaultModel, stack.DefaultConfig(),
			citadel.Table1Rates().WithTSV(r.TSVFIT), scenario.Params(r.ScenarioParams)); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		if r.TSVFIT < 0 || r.LifetimeYears < 0 || r.ScrubHours < 0 {
			return fmt.Errorf("jobs: tsvFit, lifetimeYears and scrubHours must be non-negative")
		}
		if !r.RareEvent && s.Reliability.BiasFactor != 0 {
			return fmt.Errorf("jobs: biasFactor requires rareEvent")
		}
		if r.RareEvent && r.BiasFactor < 1 {
			return fmt.Errorf("jobs: biasFactor must be >= 1, got %g", r.BiasFactor)
		}
		if r.RareEvent && r.FaultModel != "" {
			return fmt.Errorf("jobs: rareEvent supports only the default %q fault model", scenario.DefaultFaultModel)
		}
	case KindPerformance:
		p := n.Performance
		if p == nil {
			return fmt.Errorf("jobs: kind %q requires the performance spec", n.Kind)
		}
		if _, ok := citadel.BenchmarkByName(p.Benchmark); !ok {
			return fmt.Errorf("jobs: unknown benchmark %q", p.Benchmark)
		}
		switch p.Striping {
		case "same-bank", "across-banks", "across-channels":
		default:
			return fmt.Errorf("jobs: unknown striping %q", p.Striping)
		}
		switch p.Protection {
		case "none", "3dp", "3dp-no-cache":
		default:
			return fmt.Errorf("jobs: unknown protection %q", p.Protection)
		}
	case KindExperiment:
		e := n.Experiment
		if e == nil {
			return fmt.Errorf("jobs: kind %q requires the experiment spec", n.Kind)
		}
		known := false
		for _, id := range experiments.All() {
			if id == e.ID {
				known = true
				break
			}
		}
		for _, id := range experiments.Ablations() {
			if id == e.ID {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("jobs: unknown experiment %q", e.ID)
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q", s.Kind)
	}
	return nil
}
