package jobs

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
)

// nolog discards orchestrator and store chatter.
func nolog(string, ...any) {}

// trialsTotal reads the engine's process-wide trial counter; cache-hit
// tests assert it stays flat.
func trialsTotal() int64 {
	return obs.Default().Counter("citadel_faultsim_trials_total", "").Value()
}

func newOrch(t *testing.T, dir string, workers, depth int) (*Orchestrator, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Logf: nolog})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	o := New(Options{Store: st, Workers: workers, QueueDepth: depth, Logf: nolog})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		o.Close(ctx)
	})
	return o, st
}

// smallSpec is a campaign cheap enough for unit tests: a few thousand
// trials split into enough chunks to exercise checkpointing.
func smallSpec(seed int64) Spec {
	return Spec{Reliability: &ReliabilitySpec{
		Scheme:           "Citadel",
		Trials:           2000,
		CheckpointTrials: 500,
		Workers:          1,
		Seed:             seed,
		TSVFIT:           1430,
	}}
}

func waitDone(t *testing.T, o *Orchestrator, id string) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := o.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v (state %s)", id, err, j.State)
	}
	return j
}

func TestKeyNormalizesDefaults(t *testing.T) {
	implicit := Spec{Kind: KindReliability, Reliability: &ReliabilitySpec{Scheme: "Citadel"}}
	explicit := Spec{
		Priority: 7, // excluded from the key
		Reliability: &ReliabilitySpec{
			Scheme:           "Citadel",
			Trials:           100000,
			LifetimeYears:    7,
			ScrubHours:       12,
			Workers:          runtime.GOMAXPROCS(0),
			CheckpointTrials: DefaultCheckpointTrials,
		},
	}
	ki, err := implicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	ke, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Errorf("defaulted spec and explicit-defaults spec hash differently:\n  %s\n  %s", ki, ke)
	}
	other := implicit
	other.Reliability = &ReliabilitySpec{Scheme: "Citadel", Seed: 99}
	ko, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ko == ki {
		t.Error("different seeds share a content key")
	}
}

func TestSubmitValidation(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	if _, err := o.Submit(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := o.Submit(Spec{Reliability: &ReliabilitySpec{Scheme: "NoSuchScheme"}}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := o.Submit(Spec{
		Reliability: &ReliabilitySpec{Scheme: "Citadel"},
		Performance: &PerformanceSpec{Benchmark: "mcf"},
	}); err == nil {
		t.Error("two sub-specs accepted")
	}
}

func TestReliabilityJobRunsAndCaches(t *testing.T) {
	dir := t.TempDir()
	o, st := newOrch(t, dir, 1, 4)
	j, err := o.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != StateQueued && j.State != StateRunning {
		t.Fatalf("fresh job state = %s", j.State)
	}
	fin := waitDone(t, o, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", fin.State, fin.Error)
	}
	if fin.ChunksDone != 4 || fin.TotalChunks != 4 {
		t.Errorf("chunks = %d/%d, want 4/4", fin.ChunksDone, fin.TotalChunks)
	}
	if fin.TrialsDone != 2000 {
		t.Errorf("trialsDone = %d, want 2000", fin.TrialsDone)
	}
	if len(fin.Result) == 0 {
		t.Fatal("done job has no result payload")
	}
	// The finished campaign's checkpoint is gone; its result is cached.
	if _, ok := st.GetJob(fin.Key); ok {
		t.Error("checkpoint survived completion")
	}
	if _, ok := st.GetResult(fin.Key); !ok {
		t.Error("result not in the content-addressed store")
	}

	// A second orchestrator over the same store answers the same spec
	// from cache: zero new trials.
	o2, _ := newOrch(t, dir, 1, 4)
	before := trialsTotal()
	j2, err := o2.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("cached Submit: %v", err)
	}
	if !j2.Cached || j2.State != StateDone {
		t.Fatalf("cached=%v state=%s, want cached done", j2.Cached, j2.State)
	}
	if !bytes.Equal(j2.Result, fin.Result) {
		t.Error("cached result differs from the computed one")
	}
	if after := trialsTotal(); after != before {
		t.Errorf("cache hit ran %d new trials, want 0", after-before)
	}
}

// TestCrashResumeDifferential is the durability acceptance test: a
// campaign checkpointed mid-flight and resumed by a fresh orchestrator
// must produce a result bit-identical to the same campaign run
// uninterrupted.
func TestCrashResumeDifferential(t *testing.T) {
	spec := Spec{Reliability: &ReliabilitySpec{
		Scheme:           "Citadel",
		Trials:           8000,
		CheckpointTrials: 400, // 20 chunks
		Workers:          1,
		Seed:             42,
		TSVFIT:           1430,
	}}

	// Reference: uninterrupted run.
	oA, _ := newOrch(t, t.TempDir(), 1, 4)
	jA, err := oA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	finA := waitDone(t, oA, jA.ID)
	if finA.State != StateDone {
		t.Fatalf("reference run: %s (%s)", finA.State, finA.Error)
	}

	// Interrupted run: kill the orchestrator once a few chunks are
	// checkpointed.
	dirB := t.TempDir()
	oB, stB := newOrch(t, dirB, 1, 4)
	jB, err := oB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		s, ok := oB.Status(jB.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if s.State.Terminal() {
			t.Fatalf("campaign finished (%s) before it could be interrupted; raise Trials", s.State)
		}
		if s.ChunksDone >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint progress within deadline")
		}
		runtime.Gosched()
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := oB.Close(closeCtx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	interrupted, _ := oB.Status(jB.ID)
	if interrupted.State != StateQueued {
		t.Fatalf("interrupted job state = %s, want queued (resumable)", interrupted.State)
	}
	cpBytes, ok := stB.GetJob(jB.Key)
	if !ok {
		t.Fatal("no checkpoint persisted for the interrupted campaign")
	}
	if len(cpBytes) == 0 {
		t.Fatal("empty checkpoint")
	}

	// Fresh orchestrator, same store: Recover re-enqueues, the campaign
	// resumes from its checkpoint and must match the reference exactly.
	oB2, _ := newOrch(t, dirB, 1, 4)
	if n := oB2.Recover(); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	list := oB2.List()
	if len(list) != 1 {
		t.Fatalf("recovered orchestrator lists %d jobs, want 1", len(list))
	}
	if !list[0].Resumed {
		t.Error("recovered job not marked resumed")
	}
	if list[0].ChunksDone < 3 {
		t.Errorf("recovered job starts at chunk %d, want >= 3", list[0].ChunksDone)
	}
	finB := waitDone(t, oB2, list[0].ID)
	if finB.State != StateDone {
		t.Fatalf("resumed run: %s (%s)", finB.State, finB.Error)
	}
	if !bytes.Equal(finA.Result, finB.Result) {
		t.Errorf("resumed result differs from uninterrupted run:\nA: %.200s\nB: %.200s", finA.Result, finB.Result)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	o, st := newOrch(t, t.TempDir(), 1, 8)
	long := Spec{Reliability: &ReliabilitySpec{
		Scheme: "Citadel", Trials: 2_000_000, CheckpointTrials: 100000, Workers: 1, Seed: 5, TSVFIT: 1430,
	}}
	running, err := o.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the long job occupies the single worker.
	deadline := time.Now().Add(time.Minute)
	for {
		s, _ := o.Status(running.ID)
		if s.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		runtime.Gosched()
	}
	queued, err := o.Submit(smallSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if s, _ := o.Status(queued.ID); s.State != StateCancelled {
		t.Errorf("queued job state after cancel = %s", s.State)
	}
	if _, ok := st.GetJob(queued.Key); ok {
		t.Error("cancelled queued job left a checkpoint behind")
	}

	if err := o.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	fin := waitDone(t, o, running.ID)
	if fin.State != StateCancelled {
		t.Errorf("running job state after cancel = %s", fin.State)
	}
	if _, ok := st.GetJob(running.Key); ok {
		t.Error("user-cancelled job left a checkpoint (would resurrect on restart)")
	}

	if err := o.Cancel(running.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel finished = %v, want ErrFinished", err)
	}
	if err := o.Cancel("j-nope-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestQueueFullAndCoalesce(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 1)
	long := Spec{Reliability: &ReliabilitySpec{
		Scheme: "Citadel", Trials: 2_000_000, CheckpointTrials: 100000, Workers: 1, Seed: 7, TSVFIT: 1430,
	}}
	a, err := o.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for o.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		runtime.Gosched()
	}
	// Same spec while active coalesces onto the running job.
	dup, err := o.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != a.ID {
		t.Errorf("duplicate submit got job %s, want coalesced %s", dup.ID, a.ID)
	}
	b, err := o.Submit(smallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(smallSpec(9)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit past queue bound = %v, want ErrQueueFull", err)
	}
	o.Cancel(b.ID)
	o.Cancel(a.ID)
}

func TestRecoverSkipsCorruptCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logf: nolog})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob("deadbeef", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, but the embedded key does not match the file stem.
	if err := st.PutJob("cafebabe", []byte(`{"version":1,"key":"something-else","spec":{}}`)); err != nil {
		t.Fatal(err)
	}
	o := New(Options{Store: st, Workers: 1, QueueDepth: 4, Logf: nolog})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		o.Close(ctx)
	})
	if n := o.Recover(); n != 0 {
		t.Errorf("Recover = %d, want 0", n)
	}
	if _, ok := st.GetJob("deadbeef"); ok {
		t.Error("corrupt checkpoint not deleted")
	}
	if _, ok := st.GetJob("cafebabe"); ok {
		t.Error("key-mismatched checkpoint not deleted")
	}
}

func TestPerformanceJob(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	j, err := o.Submit(Spec{Performance: &PerformanceSpec{
		Benchmark: "mcf", Requests: 2000, Seed: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, o, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	if len(fin.Result) == 0 {
		t.Fatal("no payload")
	}
}

func TestExperimentJob(t *testing.T) {
	ids := experiments.All()
	if len(ids) == 0 {
		t.Skip("no experiments registered")
	}
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	j, err := o.Submit(Spec{Experiment: &ExperimentSpec{
		ID: ids[0], Trials: 500, Requests: 500, Seed: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, o, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := o.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(smallSpec(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}
