// Package jobs is the in-process durable job orchestrator: long-running
// simulation campaigns are submitted asynchronously, queued under a
// bounded priority queue, executed by a fixed pool of worker goroutines
// driving the existing context-aware engine APIs, and — for reliability
// campaigns — periodically checkpointed into a content-addressed store
// (internal/store) so a killed process resumes a campaign instead of
// restarting it.
//
// Determinism model: a reliability campaign of T trials runs as
// ceil(T/C) chunks of C = CheckpointTrials trials. Chunk i runs on seed
// faultsim.ChunkSeed(base, i) with the spec's pinned worker count, and
// the chunk results fold left-to-right through faultsim.Merge. The
// merged result is therefore a pure function of the normalized spec, so
// resuming from any checkpoint reproduces the uninterrupted campaign
// bit for bit, and the normalized spec's SHA-256 addresses the result in
// the store: a repeated identical request is served from cache with zero
// new trials.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	citadel "repro"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/store"
	"repro/internal/stream"
)

// Submission errors.
var (
	// ErrQueueFull rejects a submit when the bounded queue is at
	// capacity. The HTTP layer maps it to 429 with a Retry-After hint
	// derived from the queue depth.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submits after Close.
	ErrClosed = errors.New("jobs: orchestrator closed")
	// ErrNotFound marks an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished rejects cancelling a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// State is a job's lifecycle state.
type State string

// Job states: queued → running → done | failed | cancelled. An
// interrupted job (orchestrator shutdown mid-run) returns to queued; its
// checkpoint re-enqueues it in the next process.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Options configures an Orchestrator.
type Options struct {
	// Store persists checkpoints and caches results. Nil runs volatile:
	// no dedup cache, no resume.
	Store *store.Store
	// Workers is the number of campaign-executing goroutines (default 1;
	// each campaign parallelizes internally via the engine's own worker
	// pool, so more orchestrator workers mainly help mixed small jobs).
	Workers int
	// QueueDepth bounds the jobs waiting to run (default 64). Submits
	// past it fail with ErrQueueFull.
	QueueDepth int
	// ChunkExec, when non-nil, executes reliability chunks out of
	// process (internal/cluster leases them to citadel-worker nodes).
	// It is best-effort: if it fails, the campaign falls back to local
	// in-process execution from its last committed chunk.
	ChunkExec ChunkExecutor
	// Stream, when non-nil, receives a Job snapshot on every lifecycle
	// transition and progress update, published under the job's ID:
	// non-terminal snapshots as "progress" events, terminal ones named
	// by their state (done/failed/cancelled). The hub marshals each
	// snapshot once and fans the same frame out to every SSE subscriber
	// (GET /api/v1/jobs/{id}/events).
	Stream *stream.Hub
	// Logf sinks orchestrator logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Job is a caller-facing snapshot of one campaign.
type Job struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`

	State State `json:"state"`
	// Cached marks a job served entirely from the content-addressed
	// store: no simulation ran.
	Cached bool `json:"cached,omitempty"`
	// Resumed marks a job that continued from a persisted checkpoint
	// instead of starting at chunk zero.
	Resumed bool `json:"resumed,omitempty"`

	// ChunksDone/TotalChunks report checkpoint progress (reliability
	// campaigns; zero for other kinds).
	ChunksDone  int `json:"chunksDone,omitempty"`
	TotalChunks int `json:"totalChunks,omitempty"`
	// TrialsDone/TrialsTarget/Failures mirror the engine's live progress
	// snapshot for reliability campaigns.
	TrialsDone   int `json:"trialsDone,omitempty"`
	TrialsTarget int `json:"trialsTarget,omitempty"`
	Failures     int `json:"failures,omitempty"`

	// Result holds the JSON payload once State is done: a
	// citadel.Result for reliability, a PerformanceResult for
	// performance, an experiments.Report for experiment jobs.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the failure reason when State is failed.
	Error string `json:"error,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

// PerformanceResult is the payload of a performance job: the baseline
// run (same benchmark, default layout, no protection) plus the requested
// configuration, so clients can derive normalized ratios.
type PerformanceResult struct {
	Base citadel.PerfResult `json:"base"`
	Run  citadel.PerfResult `json:"run"`
}

// checkpoint is the persisted form of an unfinished job, stored under
// its spec key. Result carries the merge of all completed chunks; a
// chunk interrupted mid-run is discarded (its partial statistics would
// break determinism) and re-runs on resume.
type checkpoint struct {
	Version     int             `json:"version"`
	Key         string          `json:"key"`
	Spec        Spec            `json:"spec"`
	ChunksDone  int             `json:"chunksDone"`
	TotalChunks int             `json:"totalChunks"`
	Result      *citadel.Result `json:"result,omitempty"`
	UpdatedAt   time.Time       `json:"updatedAt"`
}

const checkpointVersion = 1

// job is the internal mutable record behind a Job snapshot.
type job struct {
	id   string
	key  string
	spec Spec // normalized
	seq  int64

	mu         sync.Mutex
	state      State
	cached     bool
	resumed    bool
	chunksDone int
	totalChunk int
	trialsDone int
	trialsTgt  int
	failures   int
	payload    json.RawMessage
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	userCancel bool
	cancelRun  context.CancelFunc
	done       chan struct{}
}

func (j *job) snapshot() *Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &Job{
		ID: j.id, Key: j.key, Spec: j.spec,
		State: j.state, Cached: j.cached, Resumed: j.resumed,
		ChunksDone: j.chunksDone, TotalChunks: j.totalChunk,
		TrialsDone: j.trialsDone, TrialsTarget: j.trialsTgt, Failures: j.failures,
		Result: j.payload, Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// publish streams a snapshot of j to the hub, if one is wired: one JSON
// marshal per snapshot, fanned out to every subscriber of the job's
// topic. The event name is "progress" for non-terminal snapshots and
// the state name for terminal ones, so SSE clients can listen for the
// outcome they care about.
func (o *Orchestrator) publish(j *job) {
	if o.opts.Stream == nil {
		return
	}
	snap := j.snapshot()
	event := "progress"
	if snap.State.Terminal() {
		event = string(snap.State)
	}
	if err := o.opts.Stream.Publish(j.id, event, snap, snap.State.Terminal()); err != nil {
		o.opts.Logf("jobs: job=%s streaming %s event: %v", j.id, event, err)
	}
}

// Orchestrator runs campaigns from a bounded priority queue on a fixed
// worker pool, checkpointing and caching through an optional store.
type Orchestrator struct {
	opts Options
	st   *store.Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*job          // pending, popped by (priority desc, seq asc)
	jobs   map[string]*job // by ID, every job ever submitted this process
	byKey  map[string]*job // active (queued/running) job per content key
	seq    int64
	closed bool

	idPrefix string
	idSeq    atomic.Uint64
}

// New builds an Orchestrator and starts its workers.
func New(opts Options) *Orchestrator {
	opts = opts.withDefaults()
	o := &Orchestrator{
		opts:     opts,
		st:       opts.Store,
		jobs:     make(map[string]*job),
		byKey:    make(map[string]*job),
		idPrefix: newIDPrefix(),
	}
	o.cond = sync.NewCond(&o.mu)
	o.ctx, o.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		o.wg.Add(1)
		go o.worker()
	}
	return o
}

// newIDPrefix gives each orchestrator instance a random ID prefix so job
// IDs from different processes (or restarts) don't collide in logs.
func newIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:]))
}

func (o *Orchestrator) newJobID() string {
	return fmt.Sprintf("j-%s-%d", o.idPrefix, o.idSeq.Add(1))
}

// Workers returns the worker-pool size.
func (o *Orchestrator) Workers() int { return o.opts.Workers }

// QueueCap returns the queue bound.
func (o *Orchestrator) QueueCap() int { return o.opts.QueueDepth }

// QueueDepth returns the number of jobs waiting to run.
func (o *Orchestrator) QueueDepth() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queue)
}

// Submit validates, deduplicates, and enqueues a campaign.
//
//   - A result already in the store completes the job immediately
//     (Cached, no simulation).
//   - An active job with the same content key is returned as-is
//     (coalescing): both callers observe the same job ID.
//   - A persisted checkpoint with the same key resumes from its last
//     chunk (Resumed).
//
// The queue bound applies only to genuinely new work; full queues
// report ErrQueueFull.
func (o *Orchestrator) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	norm := spec.Normalize()
	key, err := norm.Key()
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil, ErrClosed
	}
	if j := o.byKey[key]; j != nil {
		// Coalesce: same campaign already queued or running.
		return j.snapshot(), nil
	}
	if snap := o.tryCacheLocked(key, norm); snap != nil {
		return snap, nil
	}
	cp := o.loadCheckpoint(key)
	if len(o.queue) >= o.opts.QueueDepth {
		mShed.Inc()
		return nil, ErrQueueFull
	}
	j := o.enqueueLocked(key, norm, cp)
	return j.snapshot(), nil
}

// tryCacheLocked completes a submit from the content-addressed store.
// A stored payload that is not valid JSON is treated as corruption:
// deleted, logged, and reported as a miss.
func (o *Orchestrator) tryCacheLocked(key string, norm Spec) *Job {
	if o.st == nil {
		return nil
	}
	data, ok := o.st.GetResult(key)
	if !ok {
		return nil
	}
	if !json.Valid(data) {
		o.opts.Logf("jobs: corrupted cached result %s; discarding", key)
		o.st.DeleteResult(key)
		return nil
	}
	now := time.Now()
	j := &job{
		id: o.newJobID(), key: key, spec: norm,
		state: StateDone, cached: true, payload: data,
		created: now, started: now, finished: now,
		done: make(chan struct{}),
	}
	close(j.done)
	o.jobs[j.id] = j
	mSubmitted.Inc()
	mCacheHits.Inc()
	mCompleted.Inc()
	o.opts.Logf("jobs: job=%s key=%.12s kind=%s served from cache", j.id, key, norm.Kind)
	o.publish(j)
	return j.snapshot()
}

// loadCheckpoint fetches and decodes the persisted checkpoint for
// key, tolerating corruption: a bad checkpoint is deleted with a warning
// and the campaign restarts from scratch.
func (o *Orchestrator) loadCheckpoint(key string) *checkpoint {
	if o.st == nil {
		return nil
	}
	data, ok := o.st.GetJob(key)
	if !ok {
		return nil
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.Key != key || cp.ChunksDone < 0 ||
		(cp.ChunksDone > 0 && cp.Result == nil) {
		o.opts.Logf("jobs: corrupted checkpoint %.12s (err=%v); restarting campaign from scratch", key, err)
		o.st.DeleteJob(key)
		return nil
	}
	return &cp
}

// enqueueLocked creates the job record, persists its initial checkpoint
// (so a crash before the first chunk still recovers the submission), and
// wakes a worker.
func (o *Orchestrator) enqueueLocked(key string, norm Spec, cp *checkpoint) *job {
	o.seq++
	j := &job{
		id: o.newJobID(), key: key, spec: norm, seq: o.seq,
		state: StateQueued, created: time.Now(),
		done: make(chan struct{}),
	}
	if cp != nil {
		j.resumed = cp.ChunksDone > 0
		j.chunksDone = cp.ChunksDone
		if cp.Result != nil {
			j.trialsDone = cp.Result.Trials
			j.failures = cp.Result.Failures
		}
		if j.resumed {
			mResumed.Inc()
		}
	} else {
		o.persistCheckpoint(j, nil)
	}
	if r := norm.Reliability; r != nil {
		j.totalChunk = totalChunks(r)
		j.trialsTgt = r.Trials
	}
	o.jobs[j.id] = j
	o.byKey[key] = j
	o.queue = append(o.queue, j)
	mSubmitted.Inc()
	mQueueDepth.Set(int64(len(o.queue)))
	o.opts.Logf("jobs: job=%s key=%.12s kind=%s priority=%d queued (resumedChunks=%d)",
		j.id, key, norm.Kind, norm.Priority, j.chunksDone)
	o.publish(j)
	o.cond.Signal()
	return j
}

// totalChunks returns the chunk count of a normalized reliability spec.
func totalChunks(r *ReliabilitySpec) int {
	return (r.Trials + r.CheckpointTrials - 1) / r.CheckpointTrials
}

// Recover re-enqueues every readable checkpoint in the store: the
// server calls it once at startup so campaigns interrupted by a crash or
// SIGTERM continue. Corrupted checkpoints are skipped with a warning.
// It returns the number of jobs re-enqueued.
func (o *Orchestrator) Recover() int {
	if o.st == nil {
		return 0
	}
	listed := o.st.ListJobs()
	n := 0
	for key, data := range listed {
		var cp checkpoint
		if err := json.Unmarshal(data, &cp); err != nil || cp.Key != key || cp.ChunksDone < 0 ||
			(cp.ChunksDone > 0 && cp.Result == nil) {
			o.opts.Logf("jobs: recover: skipping corrupted checkpoint %.12s (err=%v)", key, err)
			o.st.DeleteJob(key)
			continue
		}
		if err := cp.Spec.Validate(); err != nil {
			o.opts.Logf("jobs: recover: skipping checkpoint %.12s with invalid spec: %v", key, err)
			o.st.DeleteJob(key)
			continue
		}
		o.mu.Lock()
		if o.closed || o.byKey[key] != nil {
			o.mu.Unlock()
			continue
		}
		// Recovered jobs bypass the queue bound: they were admitted by a
		// previous process and rejecting them now would drop durable work.
		cpc := cp
		o.enqueueLocked(key, cp.Spec.Normalize(), &cpc)
		o.mu.Unlock()
		n++
	}
	if n > 0 {
		o.opts.Logf("jobs: recovered %d checkpointed campaign(s)", n)
	}
	return n
}

// Status returns a snapshot of the job, if known to this process.
func (o *Orchestrator) Status(id string) (*Job, bool) {
	o.mu.Lock()
	j := o.jobs[id]
	o.mu.Unlock()
	if j == nil {
		return nil, false
	}
	return j.snapshot(), true
}

// List returns snapshots of every job known to this process, in
// submission order.
func (o *Orchestrator) List() []*Job {
	o.mu.Lock()
	all := make([]*job, 0, len(o.jobs))
	for _, j := range o.jobs {
		all = append(all, j)
	}
	o.mu.Unlock()
	out := make([]*Job, 0, len(all))
	for _, j := range all {
		out = append(out, j.snapshot())
	}
	sortJobs(out)
	return out
}

func sortJobs(js []*Job) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].Created.Before(js[k-1].Created); k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (o *Orchestrator) Wait(ctx context.Context, id string) (*Job, error) {
	o.mu.Lock()
	j := o.jobs[id]
	o.mu.Unlock()
	if j == nil {
		return nil, ErrNotFound
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Cancel stops a job. A queued job is removed immediately; a running
// job's context is cancelled and the worker marks it cancelled at the
// next cancellation point. A user-cancelled job's checkpoint is deleted:
// cancellation is a statement that the work is unwanted, so it must not
// resurrect on restart.
func (o *Orchestrator) Cancel(id string) error {
	o.mu.Lock()
	j := o.jobs[id]
	if j == nil {
		o.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		o.mu.Unlock()
		return ErrFinished
	case j.state == StateQueued:
		j.state = StateCancelled
		j.userCancel = true
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		o.dropQueuedLocked(j)
		delete(o.byKey, j.key)
		o.mu.Unlock()
		if o.st != nil {
			o.st.DeleteJob(j.key)
		}
		mCancelled.Inc()
		o.opts.Logf("jobs: job=%s cancelled while queued", j.id)
		o.publish(j)
		return nil
	default: // running
		j.userCancel = true
		cancel := j.cancelRun
		j.mu.Unlock()
		o.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
}

// dropQueuedLocked removes j from the pending queue.
func (o *Orchestrator) dropQueuedLocked(j *job) {
	for i, q := range o.queue {
		if q == j {
			o.queue = append(o.queue[:i], o.queue[i+1:]...)
			break
		}
	}
	mQueueDepth.Set(int64(len(o.queue)))
}

// Close stops the orchestrator: no new submits, running campaigns are
// cancelled (their latest complete chunk is already checkpointed, so a
// restarted process resumes them), and workers are joined. It returns
// ctx's error if the workers do not drain in time.
func (o *Orchestrator) Close(ctx context.Context) error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
	o.cancel()
	done := make(chan struct{})
	go func() {
		o.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// next blocks until a job is available or the orchestrator closes.
func (o *Orchestrator) next() *job {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.closed {
			return nil
		}
		if j := o.popLocked(); j != nil {
			return j
		}
		o.cond.Wait()
	}
}

// popLocked removes the best pending job: highest priority, FIFO within
// a priority.
func (o *Orchestrator) popLocked() *job {
	best := -1
	for i, j := range o.queue {
		if best < 0 ||
			j.spec.Priority > o.queue[best].spec.Priority ||
			(j.spec.Priority == o.queue[best].spec.Priority && j.seq < o.queue[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	j := o.queue[best]
	o.queue = append(o.queue[:best], o.queue[best+1:]...)
	mQueueDepth.Set(int64(len(o.queue)))
	return j
}

func (o *Orchestrator) worker() {
	defer o.wg.Done()
	for {
		j := o.next()
		if j == nil {
			return
		}
		o.runJob(j)
	}
}

// runJob executes one campaign to a terminal state (or back to queued on
// orchestrator shutdown).
func (o *Orchestrator) runJob(j *job) {
	ctx, cancel := context.WithCancel(o.ctx)
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled between pop and start.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	mRunning.Inc()
	defer mRunning.Dec()
	o.opts.Logf("jobs: job=%s key=%.12s kind=%s start", j.id, j.key, j.spec.Kind)
	o.publish(j)

	var payload any
	var interrupted bool
	var runErr error
	switch j.spec.Kind {
	case KindReliability:
		payload, interrupted, runErr = o.runReliability(ctx, j)
	case KindPerformance:
		payload, interrupted, runErr = o.runPerformance(ctx, j)
	case KindExperiment:
		payload, interrupted, runErr = o.runExperiment(ctx, j)
	default:
		runErr = fmt.Errorf("jobs: unknown kind %q", j.spec.Kind)
	}

	switch {
	case interrupted:
		o.finishInterrupted(j)
	case runErr != nil:
		o.finish(j, StateFailed, nil, runErr)
	default:
		data, err := json.Marshal(payload)
		if err != nil {
			o.finish(j, StateFailed, nil, fmt.Errorf("jobs: encoding result: %w", err))
			return
		}
		if o.st != nil {
			if err := o.st.PutResult(j.key, data); err != nil {
				o.opts.Logf("jobs: job=%s caching result: %v", j.id, err)
			}
			o.st.DeleteJob(j.key)
		}
		o.finish(j, StateDone, data, nil)
	}
}

// finish moves j to a terminal state.
func (o *Orchestrator) finish(j *job, st State, payload json.RawMessage, err error) {
	o.mu.Lock()
	delete(o.byKey, j.key)
	o.mu.Unlock()
	j.mu.Lock()
	j.state = st
	j.payload = payload
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	switch st {
	case StateDone:
		mCompleted.Inc()
	case StateFailed:
		mFailed.Inc()
	case StateCancelled:
		mCancelled.Inc()
	}
	o.opts.Logf("jobs: job=%s key=%.12s %s%s", j.id, j.key, st, errSuffix(err))
	o.publish(j)
	// Failed campaigns should not resurrect on restart: their checkpoint
	// would fail the same way again.
	if st == StateFailed && o.st != nil {
		o.st.DeleteJob(j.key)
	}
}

func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return ": " + err.Error()
}

// finishInterrupted resolves a run cut short by cancellation: a
// user-cancelled job becomes cancelled (checkpoint deleted); an
// orchestrator shutdown returns the job to queued — its checkpoint stays
// in the store and the next process resumes it.
func (o *Orchestrator) finishInterrupted(j *job) {
	j.mu.Lock()
	user := j.userCancel
	j.mu.Unlock()
	if user {
		if o.st != nil {
			o.st.DeleteJob(j.key)
		}
		o.mu.Lock()
		delete(o.byKey, j.key)
		o.mu.Unlock()
		j.mu.Lock()
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		mCancelled.Inc()
		o.opts.Logf("jobs: job=%s key=%.12s cancelled", j.id, j.key)
		o.publish(j)
		return
	}
	// Shutdown: leave the checkpoint in place and the job formally
	// pending; this process will not run it again (workers are exiting).
	j.mu.Lock()
	j.state = StateQueued
	j.mu.Unlock()
	o.opts.Logf("jobs: job=%s key=%.12s interrupted by shutdown (checkpointed, resumable)", j.id, j.key)
	o.publish(j)
}

// persistCheckpoint writes j's checkpoint (total = merge of completed
// chunks; nil before the first chunk) to the store.
func (o *Orchestrator) persistCheckpoint(j *job, total *citadel.Result) {
	if o.st == nil {
		return
	}
	j.mu.Lock()
	cp := checkpoint{
		Version:     checkpointVersion,
		Key:         j.key,
		Spec:        j.spec,
		ChunksDone:  j.chunksDone,
		TotalChunks: j.totalChunk,
		Result:      total,
		UpdatedAt:   time.Now(),
	}
	j.mu.Unlock()
	data, err := json.Marshal(cp)
	if err != nil {
		o.opts.Logf("jobs: job=%s encoding checkpoint: %v", j.id, err)
		return
	}
	if err := o.st.PutJob(j.key, data); err != nil {
		o.opts.Logf("jobs: job=%s persisting checkpoint: %v", j.id, err)
		return
	}
	mCheckpoints.Inc()
}

// runReliability executes a chunked, checkpointed Monte Carlo campaign.
// With a ChunkExecutor configured, chunks run on remote workers first;
// executor failure (workers all dead, coordinator shutting down) falls
// back to the local in-process loop from the last committed chunk, so a
// degraded cluster slows a campaign down but never fails it.
func (o *Orchestrator) runReliability(ctx context.Context, j *job) (any, bool, error) {
	r := j.spec.Reliability
	if !validScheme(r.Scheme) {
		return nil, false, fmt.Errorf("jobs: unknown scheme %q", r.Scheme)
	}
	chunks := totalChunks(r)
	var total citadel.Result
	j.mu.Lock()
	start := j.chunksDone
	j.totalChunk = chunks
	j.trialsTgt = r.Trials
	j.mu.Unlock()
	if start > 0 {
		cp := o.loadCheckpoint(j.key)
		if cp == nil || cp.Result == nil || cp.ChunksDone != start {
			// The checkpoint changed or vanished underneath us; restart
			// the campaign rather than produce a wrong merge.
			o.opts.Logf("jobs: job=%s checkpoint for %.12s unusable; restarting campaign", j.id, j.key)
			start = 0
			j.mu.Lock()
			j.chunksDone = 0
			j.trialsDone, j.failures = 0, 0
			j.resumed = false
			j.mu.Unlock()
		} else {
			total = *cp.Result
		}
	}
	// commit folds chunk i into the prefix merge and checkpoints it —
	// the one mutation path shared by distributed and local execution,
	// always invoked in increasing chunk order.
	commit := func(i int, res citadel.Result) error {
		if i != start {
			return fmt.Errorf("jobs: chunk %d committed out of order (expected %d)", i, start)
		}
		total = faultsim.Merge(total, res)
		total.Policy = res.Policy
		start = i + 1
		j.mu.Lock()
		j.chunksDone = i + 1
		j.trialsDone = total.Trials
		j.failures = total.Failures
		j.mu.Unlock()
		o.persistCheckpoint(j, &total)
		o.publish(j)
		return nil
	}
	if exec := o.opts.ChunkExec; exec != nil && start < chunks {
		err := exec.ExecuteChunks(ctx, Campaign{
			Key: j.key, RunID: j.id, Spec: *r, Start: start, Total: chunks,
		}, commit)
		switch {
		case err == nil:
			// Every chunk ran on workers.
		case ctx.Err() != nil:
			return nil, true, nil
		default:
			// Completed chunks are committed and checkpointed; only the
			// tail re-runs here.
			mClusterFallback.Inc()
			o.opts.Logf("jobs: job=%s cluster execution failed at chunk %d/%d (%v); falling back to local execution",
				j.id, start, chunks, err)
		}
	}
	for i := start; i < chunks; i++ {
		if ctx.Err() != nil {
			return nil, true, nil
		}
		baseTrials, baseFailures := total.Trials, total.Failures
		res, err := RunChunk(ctx, r, i, j.id, func(p citadel.RunProgress) {
			j.mu.Lock()
			j.trialsDone = baseTrials + p.TrialsDone
			j.failures = baseFailures + p.Failures
			j.mu.Unlock()
			o.publish(j)
		})
		if err != nil {
			return nil, false, err
		}
		if res.Partial {
			// Mid-chunk interruption: discard the chunk (its statistics
			// depend on where the cancel landed) and resume it whole.
			return nil, true, nil
		}
		if err := commit(i, res); err != nil {
			return nil, false, err
		}
	}
	return total, false, nil
}

// runPerformance executes a base + configured timing/power pair.
func (o *Orchestrator) runPerformance(ctx context.Context, j *job) (any, bool, error) {
	p := j.spec.Performance
	b, ok := citadel.BenchmarkByName(p.Benchmark)
	if !ok {
		return nil, false, fmt.Errorf("jobs: unknown benchmark %q", p.Benchmark)
	}
	var striping citadel.Striping
	switch p.Striping {
	case "same-bank":
		striping = citadel.SameBank
	case "across-banks":
		striping = citadel.AcrossBanks
	case "across-channels":
		striping = citadel.AcrossChannels
	default:
		return nil, false, fmt.Errorf("jobs: unknown striping %q", p.Striping)
	}
	var prot citadel.Protection
	switch p.Protection {
	case "none":
		prot = citadel.NoProtection
	case "3dp":
		prot = citadel.Protection3DP
	case "3dp-no-cache":
		prot = citadel.Protection3DPNoCache
	default:
		return nil, false, fmt.Errorf("jobs: unknown protection %q", p.Protection)
	}
	base := citadel.SimulatePerformanceContext(ctx, b, citadel.PerfOptions{Requests: p.Requests, Seed: p.Seed})
	if base.Partial {
		return nil, true, nil
	}
	run := citadel.SimulatePerformanceContext(ctx, b, citadel.PerfOptions{
		Striping: striping, Protection: prot, Requests: p.Requests, Seed: p.Seed, RunID: j.id,
	})
	if run.Partial {
		return nil, true, nil
	}
	return PerformanceResult{Base: base, Run: run}, false, nil
}

// runExperiment regenerates one paper table/figure.
func (o *Orchestrator) runExperiment(ctx context.Context, j *job) (any, bool, error) {
	e := j.spec.Experiment
	rep, err := experiments.RunContext(ctx, e.ID, experiments.Options{
		Trials: e.Trials, Requests: e.Requests, Seed: e.Seed,
	})
	if err != nil {
		return nil, false, err
	}
	if rep.Partial {
		return nil, true, nil
	}
	return rep, false, nil
}
