package jobs

import "repro/internal/obs"

// Orchestrator metrics, exposed by cmd/citadel-server at GET /metrics.
// Together with citadel_faultsim_trials_total they make the cache
// observable: a cache-hit submit bumps citadel_jobs_cache_hits_total
// while the engine trial counter stays flat — zero new trials.
var (
	mSubmitted = obs.Default().Counter("citadel_jobs_submitted_total",
		"Jobs accepted by the orchestrator (including cache hits).")
	mCompleted = obs.Default().Counter("citadel_jobs_completed_total",
		"Jobs that reached the done state (including cache hits).")
	mFailed = obs.Default().Counter("citadel_jobs_failed_total",
		"Jobs that reached the failed state.")
	mCancelled = obs.Default().Counter("citadel_jobs_cancelled_total",
		"Jobs cancelled by request.")
	mShed = obs.Default().Counter("citadel_jobs_shed_total",
		"Job submissions rejected because the queue was full.")
	mCacheHits = obs.Default().Counter("citadel_jobs_cache_hits_total",
		"Job submissions served entirely from the content-addressed store.")
	mCheckpoints = obs.Default().Counter("citadel_jobs_checkpoints_total",
		"Checkpoints persisted across all campaigns.")
	mResumed = obs.Default().Counter("citadel_jobs_resumed_total",
		"Campaigns resumed from a persisted checkpoint.")
	mClusterFallback = obs.Default().Counter("citadel_jobs_cluster_fallback_total",
		"Campaigns that fell back from cluster to local in-process execution.")
	mQueueDepth = obs.Default().Gauge("citadel_jobs_queue_depth",
		"Jobs currently waiting in the orchestrator queue.")
	mRunning = obs.Default().Gauge("citadel_jobs_running",
		"Jobs currently executing on orchestrator workers.")
)
