package jobs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/faultsim"
)

// TestScenarioSpecKeys: scenario selection is part of the content
// address (a rowhammer campaign is a different deterministic
// computation than a Poisson one), while specs that spell out the
// defaults must keep their pre-registry keys — FaultModel "poisson"
// normalizes to "" and empty ScenarioParams to nil, and omitempty keeps
// both out of the canonical JSON entirely.
func TestScenarioSpecKeys(t *testing.T) {
	plain := smallSpec(42)
	kp, err := plain.Key()
	if err != nil {
		t.Fatal(err)
	}

	spelled := smallSpec(42)
	spelled.Reliability.FaultModel = "poisson"
	spelled.Reliability.ScenarioParams = map[string]float64{}
	ks, err := spelled.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ks != kp {
		t.Error("spelling out the default fault model changed the content key")
	}

	hammer := smallSpec(42)
	hammer.Reliability.FaultModel = "rowhammer"
	kh, err := hammer.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kh == kp {
		t.Error("rowhammer and poisson campaigns share a content key")
	}

	tuned := smallSpec(42)
	tuned.Reliability.FaultModel = "rowhammer"
	tuned.Reliability.ScenarioParams = map[string]float64{"aggressors": 8}
	kt, err := tuned.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kt == kh {
		t.Error("different scenario parameters share a content key")
	}

	data, err := json.Marshal(plain.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "faultModel") || strings.Contains(string(data), "scenarioParams") {
		t.Errorf("plain spec's canonical JSON leaks scenario fields: %s", data)
	}
}

func TestScenarioSpecValidation(t *testing.T) {
	bad := smallSpec(1)
	bad.Reliability.FaultModel = "no-such-model"
	if err := bad.Validate(); err == nil {
		t.Error("unknown fault model accepted")
	}
	bad = smallSpec(1)
	bad.Reliability.Scheme = "no-such-scheme"
	if err := bad.Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = smallSpec(1)
	bad.Reliability.ScenarioParams = map[string]float64{"bogus": 1}
	if err := bad.Validate(); err == nil {
		t.Error("unknown scenario parameter accepted")
	}
	bad = smallSpec(1)
	bad.Reliability.ScenarioParams = map[string]float64{"breakthroughProb": 1}
	if err := bad.Validate(); err == nil {
		t.Error("fault-model parameter accepted without its fault model")
	}
	bad = smallSpec(1)
	bad.Reliability.RareEvent = true
	bad.Reliability.FaultModel = "rowhammer"
	if err := bad.Validate(); err == nil {
		t.Error("rare-event campaign with a non-poisson fault model accepted")
	}
	// Value errors are caught at submission, not first chunk: the dry-run
	// build rejects invalid parameter values.
	bad = smallSpec(1)
	bad.Reliability.FaultModel = "rowhammer"
	bad.Reliability.ScenarioParams = map[string]float64{"aggressors": 0}
	if err := bad.Validate(); err == nil {
		t.Error("invalid parameter value accepted at submission")
	}

	ok := smallSpec(1)
	ok.Reliability.Scheme = "two-tier-replication"
	ok.Reliability.FaultModel = "rowhammer"
	ok.Reliability.ScenarioParams = map[string]float64{"fetchLatencyMicros": 1, "aggressors": 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid composed scenario rejected: %v", err)
	}
}

// A chunked, checkpointed rowhammer campaign folds every chunk's
// ScenarioStats into the final result, and reruns of the same spec are
// bit-identical.
func hammerSpec(seed int64) Spec {
	s := smallSpec(seed)
	s.Reliability.Scheme = "two-tier-replication"
	s.Reliability.FaultModel = "rowhammer"
	s.Reliability.ScenarioParams = map[string]float64{"breakthroughProb": 1e-7}
	return s
}

func TestScenarioCampaignFoldsStats(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 2, 4)
	j, err := o.Submit(hammerSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, o, j.ID)
	var res faultsim.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2000 {
		t.Fatalf("campaign completed %d trials, want 2000", res.Trials)
	}
	if res.ScenarioStats["hammerTrials"] != 2000 {
		t.Fatalf("hammerTrials = %g, want 2000 (stats: %v)", res.ScenarioStats["hammerTrials"], res.ScenarioStats)
	}
	if res.ScenarioStats["tierFetchEvents"] < 0 || res.ScenarioStats["hammerEpisodes"] <= 0 {
		t.Fatalf("scenario stats incomplete: %v", res.ScenarioStats)
	}

	// Same spec on a fresh orchestrator: the chunk-seeded computation is
	// deterministic, so the merged results match field for field.
	o2, _ := newOrch(t, t.TempDir(), 1, 4)
	j2, err := o2.Submit(hammerSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitDone(t, o2, j2.ID)
	var res2 faultsim.Result
	if err := json.Unmarshal(fin2.Result, &res2); err != nil {
		t.Fatal(err)
	}
	if res.Failures != res2.Failures || res.ScenarioStats["hammerEpisodes"] != res2.ScenarioStats["hammerEpisodes"] {
		t.Fatalf("rerun diverged: %+v vs %+v", res, res2)
	}
}

// The cerberus scheme (no observer, no arrival stats) runs as a durable
// campaign too, and its result carries no ScenarioStats map at all —
// the nil-in/nil-out merge contract seen end to end.
func TestCerberusCampaign(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	spec := smallSpec(3)
	spec.Reliability.Scheme = "cerberus-cross-layer"
	j, err := o.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, o, j.ID)
	var res faultsim.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Policy != "cerberus-cross-layer" || res.Trials != 2000 {
		t.Fatalf("unexpected campaign result: %+v", res)
	}
	if res.ScenarioStats != nil {
		t.Fatalf("stat-free scheme grew ScenarioStats: %v", res.ScenarioStats)
	}
}
