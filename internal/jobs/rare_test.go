package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultsim"
)

// rareSpec is a rare-event campaign cheap enough for unit tests but
// chunked finely enough to interrupt mid-flight.
func rareSpec(seed int64) Spec {
	return Spec{Reliability: &ReliabilitySpec{
		Scheme:           "1DP",
		Trials:           8000,
		CheckpointTrials: 400, // 20 chunks
		Workers:          1,
		Seed:             seed,
		TSVFIT:           1430,
		RareEvent:        true,
		BiasFactor:       8,
	}}
}

// TestRareSpecValidation pins the spec-level contract: biasFactor is
// meaningless without the rare-event engine, and a bias below one would
// deflate rather than inflate the tail.
func TestRareSpecValidation(t *testing.T) {
	bad := Spec{Reliability: &ReliabilitySpec{Scheme: "Citadel", BiasFactor: 4}}
	if err := bad.Validate(); err == nil {
		t.Error("biasFactor without rareEvent accepted")
	}
	bad = Spec{Reliability: &ReliabilitySpec{Scheme: "Citadel", RareEvent: true, BiasFactor: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("biasFactor < 1 accepted")
	}
	// An unset bias normalizes to the engine default and passes.
	ok := Spec{Reliability: &ReliabilitySpec{Scheme: "Citadel", RareEvent: true}}
	if err := ok.Validate(); err != nil {
		t.Errorf("rareEvent with defaulted biasFactor rejected: %v", err)
	}
	if n := ok.Normalize(); n.Reliability.BiasFactor <= 1 {
		t.Errorf("normalized BiasFactor = %v, want the engine default > 1", n.Reliability.BiasFactor)
	}
}

// TestRareSpecKeys: the rare-event fields must be part of the content
// address (a biased campaign is a different deterministic computation),
// while plain campaigns must keep their pre-rare-engine keys — omitempty
// keeps the new fields out of a plain spec's canonical JSON entirely.
func TestRareSpecKeys(t *testing.T) {
	plain := smallSpec(42)
	rare := smallSpec(42)
	rare.Reliability.RareEvent = true
	kp, err := plain.Key()
	if err != nil {
		t.Fatal(err)
	}
	kr, err := rare.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kp == kr {
		t.Error("rare and plain campaigns share a content key")
	}
	rare2 := smallSpec(42)
	rare2.Reliability.RareEvent = true
	rare2.Reliability.BiasFactor = 32
	kr2, err := rare2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kr2 == kr {
		t.Error("different bias factors share a content key")
	}
	// The canonical (normalized) JSON of a plain spec must not mention
	// the new fields at all, or every pre-existing stored result would be
	// orphaned under a new address.
	data, err := json.Marshal(plain.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "rareEvent") || strings.Contains(string(data), "biasFactor") {
		t.Errorf("plain spec's canonical JSON leaks rare-event fields: %s", data)
	}
}

// TestRareCampaignProducesWeightedResult runs a small importance-sampled
// campaign end to end through the orchestrator and checks the chunked,
// checkpointed merge preserved the weighted statistics.
func TestRareCampaignProducesWeightedResult(t *testing.T) {
	o, _ := newOrch(t, t.TempDir(), 1, 4)
	// 1DP at base rates is not rare, so keep the bias mild: with B = 2
	// every failing trial's likelihood ratio stays below one and the
	// estimate stays inside [0, 1]. (At B = 8 the estimator is still
	// unbiased but its per-trial weights exceed 1, so a small campaign's
	// point estimate can legitimately wander above 1 — misuse by config,
	// not a code defect.)
	spec := rareSpec(7)
	spec.Reliability.BiasFactor = 2
	j, err := o.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, o, j.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign: %s (%s)", fin.State, fin.Error)
	}
	var res faultsim.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if !res.Weighted {
		t.Fatal("rare-event campaign result not Weighted")
	}
	if res.Trials != 8000 {
		t.Errorf("Trials = %d, want 8000", res.Trials)
	}
	if res.Failures == 0 || res.FailWeight <= 0 {
		t.Fatalf("biased 1DP campaign saw no failures (%d, weight %v)", res.Failures, res.FailWeight)
	}
	if res.FailWeightSq <= 0 {
		t.Error("FailWeightSq not populated")
	}
	if p := res.Probability(); p <= 0 || p >= 1 {
		t.Errorf("weighted probability = %v", p)
	}
	if res.CI95() <= 0 {
		t.Error("weighted CI95 not positive")
	}
}

// TestRareCrashResumeDifferential is the weighted twin of
// TestCrashResumeDifferential: a campaign interrupted mid-flight and
// resumed from its checkpoint must reproduce the uninterrupted run's
// weighted statistics bit for bit — float sums fold left-to-right over
// chunks, so any reordering or double-merge shows up as a byte diff.
func TestRareCrashResumeDifferential(t *testing.T) {
	// The biased 1DP engine clears rareSpec's 8000 trials in ~100ms —
	// too fast to interrupt reliably — so this test runs a longer
	// campaign in coarser chunks.
	spec := rareSpec(42)
	spec.Reliability.Trials = 80000
	spec.Reliability.CheckpointTrials = 2000

	// Reference: uninterrupted run.
	oA, _ := newOrch(t, t.TempDir(), 1, 4)
	jA, err := oA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	finA := waitDone(t, oA, jA.ID)
	if finA.State != StateDone {
		t.Fatalf("reference run: %s (%s)", finA.State, finA.Error)
	}
	var ref faultsim.Result
	if err := json.Unmarshal(finA.Result, &ref); err != nil {
		t.Fatal(err)
	}
	if !ref.Weighted || ref.FailWeight <= 0 {
		t.Fatalf("reference run carries no weighted signal: %+v", ref)
	}

	// Interrupted run: kill the orchestrator once a few chunks are
	// checkpointed.
	dirB := t.TempDir()
	oB, stB := newOrch(t, dirB, 1, 4)
	jB, err := oB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		s, ok := oB.Status(jB.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if s.State.Terminal() {
			t.Fatalf("campaign finished (%s) before it could be interrupted; raise Trials", s.State)
		}
		if s.ChunksDone >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint progress within deadline")
		}
		runtime.Gosched()
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := oB.Close(closeCtx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := stB.GetJob(jB.Key); !ok {
		t.Fatal("no checkpoint persisted for the interrupted campaign")
	}

	// Fresh orchestrator, same store: resume and compare byte-for-byte.
	oB2, _ := newOrch(t, dirB, 1, 4)
	if n := oB2.Recover(); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	list := oB2.List()
	if len(list) != 1 || !list[0].Resumed {
		t.Fatalf("recovered orchestrator state wrong: %+v", list)
	}
	finB := waitDone(t, oB2, list[0].ID)
	if finB.State != StateDone {
		t.Fatalf("resumed run: %s (%s)", finB.State, finB.Error)
	}
	if !bytes.Equal(finA.Result, finB.Result) {
		t.Errorf("resumed weighted result differs from uninterrupted run:\nA: %.300s\nB: %.300s",
			finA.Result, finB.Result)
	}
}
