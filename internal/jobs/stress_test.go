package jobs

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStressSubmitCancel hammers the orchestrator with concurrent
// submissions and random cancellations. Run under the race detector via
// `make stress-jobs`; skipped with -short.
func TestStressSubmitCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	o, _ := newOrch(t, t.TempDir(), 4, 256)

	const submits = 100
	rng := rand.New(rand.NewSource(1))
	cancelMask := make([]bool, submits)
	for i := range cancelMask {
		cancelMask[i] = rng.Intn(2) == 0
	}

	var wg sync.WaitGroup
	ids := make([]string, submits)
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds so every submission is distinct work (no
			// coalescing), small enough that the whole batch completes.
			j, err := o.Submit(Spec{Reliability: &ReliabilitySpec{
				Scheme:           "Citadel",
				Trials:           500,
				CheckpointTrials: 250,
				Workers:          1,
				Seed:             int64(1000 + i),
				TSVFIT:           1430,
			}})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
			if cancelMask[i] {
				// Racing cancel against queueing/running/finishing is the
				// point: any of ok/ErrFinished is legal, panics are not.
				if err := o.Cancel(j.ID); err != nil && err != ErrFinished {
					t.Errorf("cancel %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for i, id := range ids {
		if id == "" {
			continue
		}
		j, err := o.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %d (%s): %v", i, id, err)
		}
		if !j.State.Terminal() {
			t.Errorf("job %d (%s) ended non-terminal: %s", i, id, j.State)
		}
		if !cancelMask[i] && j.State != StateDone {
			t.Errorf("uncancelled job %d (%s) = %s (%s), want done", i, id, j.State, j.Error)
		}
	}
}
