// Package core is the functional model of Citadel: a simulated 3D stack
// with fault injection, per-line CRC-32 metadata, TSV-SWAP, working
// Tri-Dimensional Parity (real XOR reconstruction, not just capability
// analysis), and Dynamic Dual-granularity Sparing with live redirection
// tables. It executes the paper's full read path (Figure 6): CRC check →
// TSV probe/BIST/swap → 3DP reconstruction → DDS sparing.
//
// The model is exact but eager: 3DP reconstruction reads whole parity
// groups, so use small geometries (see TinyConfig) for tests and examples.
// The Monte Carlo reliability engine (internal/faultsim) uses the symbolic
// fault algebra instead; this package exists to validate that algebra
// against a bit-accurate implementation and to demonstrate the mechanism.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/stack"
)

// TinyConfig returns a geometry small enough for exhaustive functional
// simulation: one stack, 4 data dies + 1 metadata die, 4 banks per die,
// 32 rows per bank, 512-byte rows, 64-byte lines.
func TinyConfig() stack.Config {
	return stack.Config{
		Stacks:      1,
		DataDies:    4,
		ECCDies:     1,
		BanksPerDie: 4,
		RowsPerBank: 32,
		RowBytes:    512,
		LineBytes:   64,
		DataTSVs:    256,
		AddrTSVs:    5,
		BurstLength: 2,
	}
}

// lineKey identifies one stored cache line.
type lineKey struct {
	stack, die, bank, row, line int
}

func keyOf(co stack.Coord) lineKey {
	return lineKey{co.Stack, co.Die, co.Bank, co.Row, co.Line}
}

// SimStack is the raw storage array plus the physical fault state. Reads
// pass through the injected faults: permanently faulty cells return
// corrupted data, faulty data TSVs flip their bit positions on every
// transfer, and faulty address TSVs redirect reads of half the rows to the
// aliased row (returning valid-looking but wrong data, which only the
// address-seeded CRC can catch).
type SimStack struct {
	cfg  stack.Config
	data map[lineKey][]byte

	faults []fault.Fault

	// tsvRepaired marks repaired TSV faults by index in faults (set by the
	// controller after TSV-SWAP) so their corruption stops.
	tsvRepaired map[int]bool
}

// NewSimStack builds an all-zero stack.
func NewSimStack(cfg stack.Config) *SimStack {
	return &SimStack{
		cfg:         cfg,
		data:        make(map[lineKey][]byte),
		tsvRepaired: make(map[int]bool),
	}
}

// Config returns the geometry.
func (s *SimStack) Config() stack.Config { return s.cfg }

// Inject adds a fault to the physical state and returns its index, which
// can later be marked repaired (for TSV faults).
func (s *SimStack) Inject(f fault.Fault) int {
	s.faults = append(s.faults, f)
	return len(s.faults) - 1
}

// Faults returns the injected faults.
func (s *SimStack) Faults() []fault.Fault { return s.faults }

// MarkRepaired stops a TSV fault's corruption (TSV-SWAP redirected it).
func (s *SimStack) MarkRepaired(idx int) { s.tsvRepaired[idx] = true }

// WriteRaw stores a line without any fault effects (writes drive the cells;
// faulty cells simply won't hold the data, which reads model).
func (s *SimStack) WriteRaw(co stack.Coord, data []byte) error {
	if !s.cfg.Valid(co) {
		return fmt.Errorf("core: invalid coordinate %v", co)
	}
	if len(data) != s.cfg.LineBytes {
		return fmt.Errorf("core: line must be %d bytes, got %d", s.cfg.LineBytes, len(data))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	s.data[keyOf(co)] = buf
	return nil
}

// ReadRaw fetches a line with all fault effects applied.
func (s *SimStack) ReadRaw(co stack.Coord) ([]byte, error) {
	if !s.cfg.Valid(co) {
		return nil, fmt.Errorf("core: invalid coordinate %v", co)
	}
	// Address-TSV faults alias the row address before the array is read.
	effective := co
	for i := range s.faults {
		f := &s.faults[i]
		if f.Class != fault.AddrTSV || s.tsvRepaired[i] {
			continue
		}
		if f.Region.Stack != co.Stack || !f.Region.Die.Contains(uint32(co.Die)) {
			continue
		}
		// The broken address bit is stuck: rows in the unreachable half
		// alias to their counterpart in the reachable half.
		mask := f.Region.Row.Mask
		if f.Region.Row.Contains(uint32(co.Row)) {
			effective.Row = int(uint32(co.Row) ^ mask)
		}
	}
	out := make([]byte, s.cfg.LineBytes)
	if stored, ok := s.data[keyOf(effective)]; ok {
		copy(out, stored)
	}
	// Cell faults corrupt the stored bits the footprint covers.
	lineColBase := effective.Line * s.cfg.LineBytes * 8
	for i := range s.faults {
		f := &s.faults[i]
		if f.Class.IsTSV() {
			continue
		}
		if f.Region.Stack != co.Stack {
			continue
		}
		if !f.Region.Die.Contains(uint32(co.Die)) ||
			!f.Region.Bank.Contains(uint32(co.Bank)) ||
			!f.Region.Row.Contains(uint32(effective.Row)) {
			continue
		}
		for bit := 0; bit < s.cfg.LineBytes*8; bit++ {
			if f.Region.Col.Contains(uint32(lineColBase + bit)) {
				// Stuck-at value derived from the cell position: stable
				// across reads (permanent fault behaviour).
				stuck := byte((effective.Row + co.Bank + bit) & 1)
				byteIdx, mask := bit/8, byte(1)<<(bit%8)
				if stuck == 1 {
					out[byteIdx] |= mask
				} else {
					out[byteIdx] &^= mask
				}
			}
		}
	}
	// Data-TSV faults flip their bit positions on every transfer.
	for i := range s.faults {
		f := &s.faults[i]
		if f.Class != fault.DataTSV || s.tsvRepaired[i] {
			continue
		}
		if f.Region.Stack != co.Stack || !f.Region.Die.Contains(uint32(co.Die)) {
			continue
		}
		for _, bit := range s.cfg.BitsOnTSV(f.TSV) {
			out[bit/8] ^= 1 << (bit % 8)
		}
	}
	return out, nil
}

// ClearTransientFaults drops transient faults from the physical state —
// the effect of a scrub pass after their corruption has been corrected.
// It returns the number of faults removed.
func (s *SimStack) ClearTransientFaults() int {
	kept := s.faults[:0]
	repairedKept := make(map[int]bool)
	removed := 0
	for i, f := range s.faults {
		if f.Persistence == fault.Transient && !f.Class.IsTSV() {
			removed++
			continue
		}
		if s.tsvRepaired[i] {
			repairedKept[len(kept)] = true
		}
		kept = append(kept, f)
	}
	s.faults = kept
	s.tsvRepaired = repairedKept
	return removed
}

// lineFaulty reports whether a line's cells carry a permanent array fault
// (used by sparing decisions).
func (s *SimStack) lineFaulty(co stack.Coord) bool {
	base := co.Line * s.cfg.LineBytes * 8
	for i := range s.faults {
		f := &s.faults[i]
		if f.Class.IsTSV() || f.Persistence != fault.Permanent {
			continue
		}
		if f.Region.Stack != co.Stack {
			continue
		}
		if !f.Region.Die.Contains(uint32(co.Die)) ||
			!f.Region.Bank.Contains(uint32(co.Bank)) ||
			!f.Region.Row.Contains(uint32(co.Row)) {
			continue
		}
		for bit := 0; bit < s.cfg.LineBytes*8; bit++ {
			if f.Region.Col.Contains(uint32(base + bit)) {
				return true
			}
		}
	}
	return false
}
