package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/stack"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fillRandom(t *testing.T, c *Controller, rng *rand.Rand, n int64) map[int64][]byte {
	t.Helper()
	want := make(map[int64][]byte)
	for idx := int64(0); idx < n; idx++ {
		data := make([]byte, c.Config().LineBytes)
		rng.Read(data)
		if err := c.Write(idx, data); err != nil {
			t.Fatal(err)
		}
		want[idx] = data
	}
	return want
}

func rowFaultAt(cfg stack.Config, die, bank, row int) fault.Fault {
	return fault.Fault{
		Class:       fault.Row,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.ExactPattern(uint32(die)),
			Bank:  fault.ExactPattern(uint32(bank)),
			Row:   fault.ExactPattern(uint32(row)),
			Col:   fault.AllPattern(),
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(1))
	want := fillRandom(t, c, rng, 200)
	for idx, w := range want {
		got, err := c.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("Read(%d) returned wrong data", idx)
		}
	}
	if s := c.Stats(); s.CRCMismatches != 0 || s.Corrections != 0 {
		t.Errorf("healthy reads triggered corrections: %+v", s)
	}
}

func TestUnwrittenLineReadsZero(t *testing.T) {
	c := newCtl(t)
	got, err := c.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten line not zero")
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	c := newCtl(t)
	if err := c.Write(-1, make([]byte, 64)); err == nil {
		t.Error("accepted negative index")
	}
	if err := c.Write(c.Config().TotalLines(), make([]byte, 64)); err == nil {
		t.Error("accepted out-of-range index")
	}
	if err := c.Write(0, make([]byte, 63)); err == nil {
		t.Error("accepted short line")
	}
	if _, err := c.Read(-1); err == nil {
		t.Error("read accepted negative index")
	}
}

func TestBitFaultCorrectedAndSpared(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(2))
	want := fillRandom(t, c, rng, 64)
	// Inject a permanent word fault in a written line (a single stuck bit
	// can coincide with the stored value; 64 stuck bits cannot).
	co := c.Config().CoordOfLineIndex(10)
	c.InjectFault(fault.Fault{
		Class:       fault.Word,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: co.Stack,
			Die:   fault.ExactPattern(uint32(co.Die)),
			Bank:  fault.ExactPattern(uint32(co.Bank)),
			Row:   fault.ExactPattern(uint32(co.Row)),
			Col:   fault.MaskPattern(^uint32(63), uint32(co.Line*512+64)),
		},
	})
	got, err := c.Read(10)
	if err != nil {
		t.Fatalf("Read after bit fault: %v", err)
	}
	if !bytes.Equal(got, want[10]) {
		t.Fatal("bit fault not corrected")
	}
	s := c.Stats()
	if s.Corrections != 1 {
		t.Errorf("corrections = %d, want 1", s.Corrections)
	}
	if s.RowsSpared != 1 {
		t.Errorf("rows spared = %d, want 1", s.RowsSpared)
	}
	// Subsequent reads are served from the spare with no new correction.
	if _, err := c.Read(10); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Corrections != 1 {
		t.Errorf("spared line corrected again: %+v", c.Stats())
	}
}

func TestRowFaultRecoversWholeRow(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(3))
	cfg := c.Config()
	want := fillRandom(t, c, rng, int64(2*cfg.LinesPerRow()*cfg.RowsPerBank))
	co := cfg.CoordOfLineIndex(0)
	c.InjectFault(rowFaultAt(cfg, co.Die, co.Bank, co.Row))
	// Every line of the faulty row must come back intact.
	for l := 0; l < cfg.LinesPerRow(); l++ {
		idx := cfg.LineIndex(stack.Coord{Stack: co.Stack, Die: co.Die, Bank: co.Bank, Row: co.Row, Line: l})
		got, err := c.Read(idx)
		if err != nil {
			t.Fatalf("line %d: %v", l, err)
		}
		if !bytes.Equal(got, want[idx]) {
			t.Fatalf("line %d corrupted after row fault", l)
		}
	}
	if c.Stats().RowsSpared == 0 {
		t.Error("row fault did not trigger row sparing")
	}
}

func TestBankFaultEscalatesToBankSparing(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(4))
	cfg := c.Config()
	want := fillRandom(t, c, rng, cfg.TotalLines()/4) // covers die 0 fully
	c.InjectFault(fault.Fault{
		Class:       fault.Bank,
		Persistence: fault.Permanent,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.ExactPattern(0),
			Bank:  fault.ExactPattern(1),
			Row:   fault.AllPattern(),
			Col:   fault.AllPattern(),
		},
	})
	// Read lines from the faulty bank: the first few consume the row
	// budget, then the bank is spared wholesale.
	var checked int
	for idx, w := range want {
		co := cfg.CoordOfLineIndex(idx)
		if co.Die != 0 || co.Bank != 1 {
			continue
		}
		got, err := c.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d corrupted after bank fault", idx)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no lines exercised the faulty bank")
	}
	s := c.Stats()
	if s.BanksSpared != 1 {
		t.Errorf("banks spared = %d, want 1 (stats %+v)", s.BanksSpared, s)
	}
}

func TestDataTSVFaultRepairedBySwap(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(5))
	want := fillRandom(t, c, rng, 64)
	c.InjectFault(fault.Fault{
		Class:       fault.DataTSV,
		Persistence: fault.Permanent,
		TSV:         7,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.ExactPattern(0),
			Bank:  fault.AllPattern(),
			Row:   fault.AllPattern(),
			Col:   fault.MaskPattern(uint32(c.Config().DataTSVs-1), 7),
		},
	})
	// Reads in die 0 hit the TSV corruption; the controller must detect
	// via CRC, run BIST, swap, and return clean data without 3DP.
	var touched bool
	for idx, w := range want {
		if c.Config().CoordOfLineIndex(idx).Die != 0 {
			continue
		}
		got, err := c.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d wrong after TSV swap", idx)
		}
		touched = true
	}
	if !touched {
		t.Fatal("no lines in faulty channel")
	}
	s := c.Stats()
	if s.TSVRepairs != 1 {
		t.Errorf("TSV repairs = %d, want 1", s.TSVRepairs)
	}
	if s.Corrections != 0 {
		t.Errorf("TSV fault needed 3DP correction (%+v)", s)
	}
}

func TestAddrTSVFaultDetectedBySeededCRC(t *testing.T) {
	// An address-TSV fault returns the WRONG row's (valid) data; only the
	// address-seeded CRC catches it (paper §V-C.2).
	c := newCtl(t)
	rng := rand.New(rand.NewSource(6))
	cfg := c.Config()
	want := fillRandom(t, c, rng, cfg.TotalLines()/2)
	c.InjectFault(fault.Fault{
		Class:       fault.AddrTSV,
		Persistence: fault.Permanent,
		TSV:         2,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.ExactPattern(1),
			Bank:  fault.AllPattern(),
			Row:   fault.MaskPattern(1<<2, 1<<2),
			Col:   fault.AllPattern(),
		},
	})
	var touched bool
	for idx, w := range want {
		co := cfg.CoordOfLineIndex(idx)
		if co.Die != 1 || co.Row&(1<<2) == 0 {
			continue
		}
		got, err := c.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d wrong after addr-TSV repair", idx)
		}
		touched = true
		break
	}
	if !touched {
		t.Fatal("no lines in unreachable half")
	}
	if c.Stats().TSVRepairs == 0 {
		t.Error("addr-TSV fault not repaired")
	}
}

func TestTwoBankFaultsAreDataLoss(t *testing.T) {
	// Two concurrent whole-bank faults collide in every parity dimension:
	// the controller must report loss, not silently return garbage.
	c := newCtl(t)
	rng := rand.New(rand.NewSource(7))
	cfg := c.Config()
	fillRandom(t, c, rng, cfg.TotalLines())
	mkBank := func(die, bank int) fault.Fault {
		return fault.Fault{
			Class:       fault.Bank,
			Persistence: fault.Permanent,
			Region: fault.Region{
				Stack: 0,
				Die:   fault.ExactPattern(uint32(die)),
				Bank:  fault.ExactPattern(uint32(bank)),
				Row:   fault.AllPattern(),
				Col:   fault.AllPattern(),
			},
		}
	}
	// Exhaust the spare banks first so DDS cannot absorb them.
	c.brt[bankID{0, 2, 2}] = 0
	c.brt[bankID{0, 2, 3}] = 1
	c.InjectFault(mkBank(0, 1))
	c.InjectFault(mkBank(1, 2))
	idx := cfg.LineIndex(stack.Coord{Stack: 0, Die: 0, Bank: 1, Row: 3, Line: 0})
	_, err := c.Read(idx)
	if !errors.Is(err, ErrDataLoss) {
		t.Errorf("expected data loss, got %v", err)
	}
	if c.Stats().Uncorrectable == 0 {
		t.Error("uncorrectable not counted")
	}
}

func TestCorrectionDimensionAccounting(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(8))
	fillRandom(t, c, rng, 256)
	co := c.Config().CoordOfLineIndex(100)
	c.InjectFault(rowFaultAt(c.Config(), co.Die, co.Bank, co.Row))
	if _, err := c.Read(100); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	total := s.CorrectionsByDim[0] + s.CorrectionsByDim[1] + s.CorrectionsByDim[2]
	if total != s.Corrections || total == 0 {
		t.Errorf("dimension accounting inconsistent: %+v", s)
	}
}

func TestNewControllerValidation(t *testing.T) {
	cfg := TinyConfig()
	cfg.ECCDies = 0
	if _, err := NewController(cfg); err == nil {
		t.Error("accepted config without metadata die")
	}
	cfg = TinyConfig()
	cfg.Stacks = 0
	if _, err := NewController(cfg); err == nil {
		t.Error("accepted invalid geometry")
	}
}

func TestSimStackStuckBitsStable(t *testing.T) {
	// Permanent faults must corrupt deterministically (stuck-at), so
	// repeated reads see the same wrong value.
	s := NewSimStack(TinyConfig())
	co := stack.Coord{Stack: 0, Die: 0, Bank: 0, Row: 0, Line: 0}
	if err := s.WriteRaw(co, bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	s.Inject(rowFaultAt(s.Config(), 0, 0, 0))
	a, _ := s.ReadRaw(co)
	b, _ := s.ReadRaw(co)
	if !bytes.Equal(a, b) {
		t.Error("permanent fault corruption not stable across reads")
	}
	if bytes.Equal(a, bytes.Repeat([]byte{0xFF}, 64)) {
		t.Error("row fault did not corrupt the data")
	}
}

func TestScrubClearsTransientFaults(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(9))
	want := fillRandom(t, c, rng, 64)
	co := c.Config().CoordOfLineIndex(5)
	f := rowFaultAt(c.Config(), co.Die, co.Bank, co.Row)
	f.Persistence = fault.Transient
	c.InjectFault(f)
	if lost := c.Scrub(); lost != 0 {
		t.Fatalf("scrub lost %d lines", lost)
	}
	if n := len(c.Memory().Faults()); n != 0 {
		t.Errorf("%d faults survive scrub, want 0", n)
	}
	// After the scrub the transient corruption is gone for good: fresh
	// reads are clean with no further corrections.
	before := c.Stats().Corrections
	for idx, w := range want {
		got, err := c.Read(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d corrupted after scrub", idx)
		}
	}
	if c.Stats().Corrections != before {
		t.Error("post-scrub reads still needed correction")
	}
}

func TestScrubKeepsPermanentFaults(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(10))
	fillRandom(t, c, rng, 32)
	co := c.Config().CoordOfLineIndex(3)
	c.InjectFault(rowFaultAt(c.Config(), co.Die, co.Bank, co.Row))
	if lost := c.Scrub(); lost != 0 {
		t.Fatalf("scrub lost %d lines", lost)
	}
	if n := len(c.Memory().Faults()); n != 1 {
		t.Errorf("permanent fault count = %d, want 1", n)
	}
	// The scrub's reads spared the faulty row.
	if c.Stats().RowsSpared == 0 {
		t.Error("scrub did not trigger sparing of the permanent fault")
	}
}

func TestMetadataPackRoundTrip(t *testing.T) {
	cases := []Metadata{
		{},
		{CRC32: 0xDEADBEEF, SwapBits: 0xA5, Spare: 0xFFFFFF},
		{CRC32: 0xFFFFFFFF, SwapBits: 0xFF, Spare: 0x123456},
	}
	for _, m := range cases {
		if got := UnpackMetadata(m.Pack()); got != m {
			t.Errorf("round trip %v -> %v", m, got)
		}
	}
	// Spare overflow is truncated to 24 bits, never corrupting CRC/swap.
	m := Metadata{CRC32: 1, SwapBits: 2, Spare: 0xFF000001}
	got := UnpackMetadata(m.Pack())
	if got.CRC32 != 1 || got.SwapBits != 2 || got.Spare != 0x000001 {
		t.Errorf("overflow handling wrong: %v", got)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func TestMetadataPackQuick(t *testing.T) {
	f := func(crc uint32, swap uint8, spare uint32) bool {
		m := Metadata{CRC32: crc, SwapBits: swap, Spare: spare & 0xFFFFFF}
		return UnpackMetadata(m.Pack()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapDataReplicaMaintained(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(21))
	fillRandom(t, c, rng, 128)
	if !c.SwapDataConsistent() {
		t.Error("swap-data replica inconsistent after writes")
	}
	// Overwrite some lines; the replica must track.
	for idx := int64(0); idx < 16; idx++ {
		data := make([]byte, c.Config().LineBytes)
		rng.Read(data)
		if err := c.Write(idx, data); err != nil {
			t.Fatal(err)
		}
	}
	if !c.SwapDataConsistent() {
		t.Error("swap-data replica inconsistent after overwrites")
	}
}

func TestSwapBitsExtraction(t *testing.T) {
	c := newCtl(t)
	line := make([]byte, c.Config().LineBytes)
	// Set exactly the stand-by bits: TSVs 0,64,128,192 carry line bits
	// {0,256},{64,320},{128,384},{192,448}.
	for _, bit := range []int{0, 256, 64, 320, 128, 384, 192, 448} {
		line[bit/8] |= 1 << (bit % 8)
	}
	if got := c.swapBits(line); got != 0xFF {
		t.Errorf("swapBits = %#x, want 0xFF", got)
	}
	if got := c.swapBits(make([]byte, c.Config().LineBytes)); got != 0 {
		t.Errorf("swapBits of zeros = %#x", got)
	}
}

func TestParityConsistencyAfterRandomWrites(t *testing.T) {
	c := newCtl(t)
	rng := rand.New(rand.NewSource(33))
	total := c.Config().TotalLines()
	// Random writes, including overwrites.
	for i := 0; i < 500; i++ {
		idx := rng.Int63n(total)
		data := make([]byte, c.Config().LineBytes)
		rng.Read(data)
		if err := c.Write(idx, data); err != nil {
			t.Fatal(err)
		}
	}
	if !c.ParityConsistent() {
		t.Error("3DP parity inconsistent after random writes")
	}
}
