package core

// Cross-validation: the Monte Carlo engine decides correctability with the
// symbolic footprint algebra (internal/parity); this file checks those
// verdicts against the bit-accurate functional pipeline on random fault
// sets. Agreement here is what justifies trusting the fast symbolic path
// for the paper's reliability figures.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// randomTinyFault draws a fault whose footprint never coincides with the
// stored data (multi-bit), in the tiny geometry.
func randomTinyFault(rng *rand.Rand, cfg stack.Config) fault.Fault {
	classes := []fault.Class{fault.Word, fault.Row, fault.Column, fault.Bank}
	c := classes[rng.Intn(len(classes))]
	die := rng.Intn(cfg.DataDies)
	bank := rng.Intn(cfg.BanksPerDie)
	row := rng.Intn(cfg.RowsPerBank)
	reg := fault.Region{
		Stack: 0,
		Die:   fault.ExactPattern(uint32(die)),
		Bank:  fault.ExactPattern(uint32(bank)),
		Row:   fault.ExactPattern(uint32(row)),
		Col:   fault.AllPattern(),
	}
	switch c {
	case fault.Word:
		words := cfg.RowBytes * 8 / 64
		reg.Col = fault.MaskPattern(^uint32(63), uint32(rng.Intn(words))*64)
	case fault.Column:
		// In the tiny geometry a column spans all rows of the bank.
		reg.Row = fault.AllPattern()
		// Use a whole faulty byte-column so corruption cannot coincide
		// with the stored random data.
		start := uint32(rng.Intn(cfg.RowBytes*8/8)) * 8
		reg.Col = fault.RangePattern(start, start+8)
	case fault.Bank:
		reg.Row = fault.AllPattern()
	}
	return fault.Fault{Class: c, Persistence: fault.Permanent, Region: reg}
}

// functionalDataLoss fills a controller, injects the faults, and reports
// whether any line remains unreadable or wrong after two full passes (the
// second pass lets DDS sparing settle, which realizes the analyzer's
// peeling order for permanent faults).
func functionalDataLoss(t *testing.T, faults []fault.Fault) bool {
	t.Helper()
	ctl, err := NewController(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctl.Config()
	rng := rand.New(rand.NewSource(99))
	want := make([][]byte, cfg.TotalLines())
	for idx := int64(0); idx < cfg.TotalLines(); idx++ {
		data := make([]byte, cfg.LineBytes)
		rng.Read(data)
		if err := ctl.Write(idx, data); err != nil {
			t.Fatal(err)
		}
		want[idx] = data
	}
	for _, f := range faults {
		ctl.InjectFault(f)
	}
	loss := false
	for pass := 0; pass < 2; pass++ {
		loss = false
		for idx := int64(0); idx < cfg.TotalLines(); idx++ {
			got, err := ctl.Read(idx)
			if errors.Is(err, ErrDataLoss) {
				loss = true
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[idx]) {
				t.Fatalf("silent corruption at line %d (pass %d)", idx, pass)
			}
		}
	}
	return loss
}

// TestSymbolicVsFunctional3DP compares the analyzer's verdicts with the
// functional pipeline on random 1- and 2-fault sets.
func TestSymbolicVsFunctional3DP(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweeps are slow")
	}
	cfg := TinyConfig()
	an := parity.NewAnalyzer(cfg, parity.ThreeDP)
	rng := rand.New(rand.NewSource(31))
	agreements, trials := 0, 0
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(2)
		fs := make([]fault.Fault, n)
		regions := make([]fault.Region, n)
		for i := range fs {
			fs[i] = randomTinyFault(rng, cfg)
			regions[i] = fs[i].Region
		}
		symbolic := an.Uncorrectable(regions)
		functional := functionalDataLoss(t, fs)
		trials++
		if symbolic == functional {
			agreements++
			continue
		}
		// The only allowed disagreement: the analyzer is conservative
		// (whole-fault peeling) while the functional pipeline can succeed
		// cell-by-cell. The reverse — analyzer says correctable but the
		// functional model loses data — is a real bug.
		if !symbolic && functional {
			t.Errorf("trial %d: analyzer says correctable, functional lost data: %+v",
				trial, fs)
		}
	}
	if agreements < trials*8/10 {
		t.Errorf("symbolic/functional agreement only %d/%d", agreements, trials)
	}
}

// TestFunctionalMatchesKnownVerdicts pins a few canonical cases.
func TestFunctionalMatchesKnownVerdicts(t *testing.T) {
	mkBank := func(die, bank int) fault.Fault {
		return fault.Fault{
			Class: fault.Bank, Persistence: fault.Permanent,
			Region: fault.Region{
				Stack: 0,
				Die:   fault.ExactPattern(uint32(die)),
				Bank:  fault.ExactPattern(uint32(bank)),
				Row:   fault.AllPattern(),
				Col:   fault.AllPattern(),
			},
		}
	}
	// One bank fault: correctable (and then bank-spared).
	if functionalDataLoss(t, []fault.Fault{mkBank(0, 1)}) {
		t.Error("single bank fault lost data")
	}
	// Two bank faults: DDS has two spare banks, so even this survives
	// PROVIDED the reads give sparing a chance — but both live at once
	// collide in every dimension before sparing can help, so the first
	// pass sees loss and the verdict stands.
	if !functionalDataLoss(t, []fault.Fault{mkBank(0, 1), mkBank(1, 2)}) {
		t.Error("two simultaneous bank faults did not lose data")
	}
	// Three row faults in different dies: all correctable.
	rows := []fault.Fault{}
	for d := 0; d < 3; d++ {
		rows = append(rows, fault.Fault{
			Class: fault.Row, Persistence: fault.Permanent,
			Region: fault.Region{
				Stack: 0,
				Die:   fault.ExactPattern(uint32(d)),
				Bank:  fault.ExactPattern(1),
				Row:   fault.ExactPattern(7),
				Col:   fault.AllPattern(),
			},
		})
	}
	if functionalDataLoss(t, rows) {
		t.Error("three row faults in different dies lost data")
	}
}
