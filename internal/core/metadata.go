package core

import "fmt"

// The 64-bit metadata word Citadel stores per cache line in the ECC die
// (paper Figure 6): 32 bits of CRC, 8 bits of TSV swap data, and 24 bits
// provisioned for sparing hints. The word travels over the dedicated ECC
// lanes alongside every 512-bit data transfer.

// metadata word layout, low bits first.
const (
	metaCRCShift   = 0
	metaCRCBits    = 32
	metaSwapShift  = metaCRCShift + metaCRCBits
	metaSwapBits   = 8
	metaSpareShift = metaSwapShift + metaSwapBits
	metaSpareBits  = 24
)

// Pack encodes the metadata into its 64-bit on-die representation.
func (m Metadata) Pack() uint64 {
	return uint64(m.CRC32)<<metaCRCShift |
		uint64(m.SwapBits)<<metaSwapShift |
		uint64(m.Spare&(1<<metaSpareBits-1))<<metaSpareShift
}

// UnpackMetadata decodes a 64-bit metadata word.
func UnpackMetadata(w uint64) Metadata {
	return Metadata{
		CRC32:    uint32(w >> metaCRCShift),
		SwapBits: uint8(w >> metaSwapShift),
		Spare:    uint32(w>>metaSpareShift) & (1<<metaSpareBits - 1),
	}
}

// String renders the metadata word for logs.
func (m Metadata) String() string {
	return fmt.Sprintf("meta{crc:%08x swap:%02x spare:%06x}", m.CRC32, m.SwapBits, m.Spare)
}
