package core

import (
	"errors"
	"fmt"

	"repro/internal/crc"
	"repro/internal/fault"
	"repro/internal/stack"
)

// ErrDataLoss is returned when a line cannot be reconstructed through any
// parity dimension.
var ErrDataLoss = errors.New("core: uncorrectable data loss")

// Metadata is the 64-bit per-line metadata Citadel stores in the ECC die
// (Figure 6): 32 bits of CRC, 8 bits of TSV swap data, 24 bits for sparing.
type Metadata struct {
	CRC32 uint32
	// SwapBits replicates the bits carried by the stand-by TSVs.
	SwapBits uint8
	// Spare carries the sparing indirection hint (modeled by the RRT/BRT
	// tables below; kept for layout fidelity).
	Spare uint32 // 24 bits used
}

// Stats counts controller events.
type Stats struct {
	Reads, Writes        uint64
	CRCMismatches        uint64
	TSVRepairs           uint64
	Corrections          uint64
	CorrectionsByDim     [3]uint64
	RowsSpared           uint64
	BanksSpared          uint64
	Uncorrectable        uint64
	ParityReconstruction uint64 // lines read during reconstruction
}

// bankID identifies a bank for the sparing tables.
type bankID struct{ stack, die, bank int }

// rowID identifies a row.
type rowID struct {
	bankID
	row int
}

// Controller is the Citadel memory controller: it owns the metadata,
// maintains 3DP parity, runs TSV-SWAP, and performs DDS sparing.
type Controller struct {
	cfg stack.Config
	mem *SimStack

	meta map[int64]Metadata

	// 3DP parity state. Dimension 1 is the parity bank (one line per
	// (stack, row, slot)); Dimensions 2 and 3 are the on-chip parity rows.
	dim1 map[[3]int][]byte // (stack,row,slot) -> parity line
	dim2 map[[2]int][]byte // (stack,die)      -> parity row
	dim3 map[[2]int][]byte // (stack,bankIdx)  -> parity row

	// DDS state.
	rrt          map[rowID]int  // faulty row -> spare row index in fine bank
	brt          map[bankID]int // faulty bank -> spare bank slot (0 or 1)
	rowsPerBank  map[bankID]int // spared-row count per bank
	nextSpareRow map[int]int    // per-stack allocation cursor in fine bank
	maxSpareRows int
	spareBanks   int

	stats Stats
}

// Spare-area layout within the metadata die (paper §VII-C): the last three
// banks hold the two coarse spare banks and the fine-grained row bank.
func (c *Controller) spareBankCoarse(slot int) int { return c.cfg.BanksPerDie - 3 + slot }
func (c *Controller) spareBankFine() int           { return c.cfg.BanksPerDie - 1 }
func (c *Controller) metaDie() int                 { return c.cfg.DataDies }

// NewController builds a Citadel controller over a fresh stack.
func NewController(cfg stack.Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ECCDies < 1 {
		return nil, errors.New("core: Citadel needs a metadata die (ECCDies >= 1)")
	}
	if cfg.BanksPerDie < 4 {
		return nil, errors.New("core: metadata die needs >= 4 banks (3 for sparing)")
	}
	return &Controller{
		cfg:          cfg,
		mem:          NewSimStack(cfg),
		meta:         make(map[int64]Metadata),
		dim1:         make(map[[3]int][]byte),
		dim2:         make(map[[2]int][]byte),
		dim3:         make(map[[2]int][]byte),
		rrt:          make(map[rowID]int),
		brt:          make(map[bankID]int),
		rowsPerBank:  make(map[bankID]int),
		nextSpareRow: make(map[int]int),
		maxSpareRows: 4,
		spareBanks:   2,
	}, nil
}

// Config returns the geometry.
func (c *Controller) Config() stack.Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Controller) Stats() Stats { return c.stats }

// Memory exposes the backing stack for fault injection.
func (c *Controller) Memory() *SimStack { return c.mem }

// InjectFault introduces a fault into the physical stack.
func (c *Controller) InjectFault(f fault.Fault) { c.mem.Inject(f) }

// resolve applies DDS redirection: spared banks first, then spared rows.
func (c *Controller) resolve(co stack.Coord) stack.Coord {
	b := bankID{co.Stack, co.Die, co.Bank}
	if slot, ok := c.brt[b]; ok {
		return stack.Coord{
			Stack: co.Stack, Die: c.metaDie(), Bank: c.spareBankCoarse(slot),
			Row: co.Row, Line: co.Line,
		}
	}
	if spare, ok := c.rrt[rowID{b, co.Row}]; ok {
		return stack.Coord{
			Stack: co.Stack, Die: c.metaDie(), Bank: c.spareBankFine(),
			Row: spare, Line: co.Line,
		}
	}
	return co
}

// readResolved reads through redirection, applying fault effects.
func (c *Controller) readResolved(co stack.Coord) ([]byte, error) {
	r := c.resolve(co)
	return c.mem.readAny(r)
}

// readAny is ReadRaw extended to the metadata die.
func (s *SimStack) readAny(co stack.Coord) ([]byte, error) {
	if co.Die == s.cfg.DataDies { // metadata die: bypass Valid's data-die bound
		saved := co
		out := make([]byte, s.cfg.LineBytes)
		if stored, ok := s.data[keyOf(saved)]; ok {
			copy(out, stored)
		}
		return out, nil
	}
	return s.ReadRaw(co)
}

// writeAny is WriteRaw extended to the metadata die.
func (s *SimStack) writeAny(co stack.Coord, data []byte) error {
	if co.Die == s.cfg.DataDies {
		buf := make([]byte, len(data))
		copy(buf, data)
		s.data[keyOf(co)] = buf
		return nil
	}
	return s.WriteRaw(co, data)
}

// stored returns the logical (uncorrupted) content of a line.
func (s *SimStack) stored(co stack.Coord) []byte {
	out := make([]byte, s.cfg.LineBytes)
	if v, ok := s.data[keyOf(co)]; ok {
		copy(out, v)
	}
	return out
}

// Write stores a 64-byte line at the dense line index, maintaining CRC
// metadata and all three parity dimensions.
func (c *Controller) Write(idx int64, data []byte) error {
	if len(data) != c.cfg.LineBytes {
		return fmt.Errorf("core: line must be %d bytes", c.cfg.LineBytes)
	}
	if idx < 0 || idx >= c.cfg.TotalLines() {
		return fmt.Errorf("core: line index %d out of range", idx)
	}
	co := c.cfg.CoordOfLineIndex(idx)
	c.stats.Writes++
	// Read-before-write of the logical value for the parity delta
	// (Figure 12, action 2).
	old := c.mem.stored(c.resolve(co))
	delta := make([]byte, len(data))
	for i := range delta {
		delta[i] = old[i] ^ data[i]
	}
	c.applyParityDelta(co, delta)
	if err := c.mem.writeAny(c.resolve(co), data); err != nil {
		return err
	}
	c.meta[idx] = Metadata{
		CRC32:    crc.ChecksumLine(uint64(idx), data),
		SwapBits: c.swapBits(data),
	}
	return nil
}

// swapBits extracts the line bits carried by the stand-by TSVs (paper
// Figure 6: the 8-bit "swap data" field). When TSV-SWAP redirects a
// stand-by TSV to carry a faulty TSV's traffic, the stand-by's own bits
// are served from this replica instead of the wire.
func (c *Controller) swapBits(data []byte) uint8 {
	var out uint8
	n := 4 // stand-by pool size
	for i := 0; i < n; i++ {
		t := i * c.cfg.DataTSVs / n
		for beat, bit := range c.cfg.BitsOnTSV(t) {
			if beat >= 2 {
				break // 8 bits total: 2 beats x 4 stand-by TSVs
			}
			if data[bit/8]>>(uint(bit)%8)&1 == 1 {
				out |= 1 << uint(i*2+beat)
			}
		}
	}
	return out
}

// SwapDataConsistent verifies the invariant that every line's metadata
// swap-data replica matches its stored stand-by-TSV bits (used by tests
// and the scrubber's self-check).
func (c *Controller) SwapDataConsistent() bool {
	for idx, md := range c.meta {
		co := c.cfg.CoordOfLineIndex(idx)
		stored := c.mem.stored(c.resolve(co))
		if c.swapBits(stored) != md.SwapBits {
			return false
		}
	}
	return true
}

// applyParityDelta XORs a line's change into all three dimensions.
func (c *Controller) applyParityDelta(co stack.Coord, delta []byte) {
	lb := c.cfg.LineBytes
	d1 := c.parityLine1(co.Stack, co.Row, co.Line)
	for i := range delta {
		d1[i] ^= delta[i]
	}
	off := co.Line * lb
	d2 := c.parityRow2(co.Stack, co.Die)
	d3 := c.parityRow3(co.Stack, co.Bank)
	for i := range delta {
		d2[off+i] ^= delta[i]
		d3[off+i] ^= delta[i]
	}
}

func (c *Controller) parityLine1(stk, row, slot int) []byte {
	key := [3]int{stk, row, slot}
	p := c.dim1[key]
	if p == nil {
		p = make([]byte, c.cfg.LineBytes)
		c.dim1[key] = p
	}
	return p
}

func (c *Controller) parityRow2(stk, die int) []byte {
	key := [2]int{stk, die}
	p := c.dim2[key]
	if p == nil {
		p = make([]byte, c.cfg.RowBytes)
		c.dim2[key] = p
	}
	return p
}

func (c *Controller) parityRow3(stk, bank int) []byte {
	key := [2]int{stk, bank}
	p := c.dim3[key]
	if p == nil {
		p = make([]byte, c.cfg.RowBytes)
		c.dim3[key] = p
	}
	return p
}

// Read fetches a line, running the full Citadel pipeline on a CRC
// mismatch: TSV detection and swap, then 3DP reconstruction, then DDS
// sparing of permanently faulty regions.
func (c *Controller) Read(idx int64) ([]byte, error) {
	if idx < 0 || idx >= c.cfg.TotalLines() {
		return nil, fmt.Errorf("core: line index %d out of range", idx)
	}
	co := c.cfg.CoordOfLineIndex(idx)
	c.stats.Reads++
	md, hasMeta := c.meta[idx]
	raw, err := c.readResolved(co)
	if err != nil {
		return nil, err
	}
	if !hasMeta {
		// Never written: zeros with no metadata are returned as-is.
		return raw, nil
	}
	if crc.Verify(uint64(idx), raw, md.CRC32) {
		return raw, nil
	}
	c.stats.CRCMismatches++

	// Step 1: TSV detection and swap (paper §V-C). The fixed-row probe is
	// modeled by asking the stack whether unrepaired TSV faults exist on
	// this channel; if so, BIST identifies and the TRR redirects them.
	if c.repairTSVs(co.Stack, co.Die) {
		raw, err = c.readResolved(co)
		if err == nil && crc.Verify(uint64(idx), raw, md.CRC32) {
			return raw, nil
		}
	}

	// Step 2: 3DP reconstruction.
	data, dim := c.reconstruct(idx, co, md.CRC32)
	if data == nil {
		c.stats.Uncorrectable++
		return nil, fmt.Errorf("%w: line %d", ErrDataLoss, idx)
	}
	c.stats.Corrections++
	c.stats.CorrectionsByDim[dim-1]++

	// Step 3: write the recovered data back; if the cells are permanently
	// faulty, DDS spares the row (or escalates to the bank) so the slow
	// correction path is not taken again.
	loc := c.resolve(co)
	if loc.Die < c.cfg.DataDies && c.mem.lineFaulty(loc) {
		c.spare(co, idx, data)
	} else {
		_ = c.mem.writeAny(loc, data)
	}
	return data, nil
}

// repairTSVs runs BIST + TSV-SWAP for a channel; reports whether any
// repair happened. The swap budget is the stand-by pool's transfer beats.
func (c *Controller) repairTSVs(stk, die int) bool {
	budget := 4 * c.cfg.BurstLength // 4 stand-by TSVs
	repaired := false
	for i := range c.mem.faults {
		f := &c.mem.faults[i]
		if !f.Class.IsTSV() || c.mem.tsvRepaired[i] {
			continue
		}
		if f.Region.Stack != stk || !f.Region.Die.Contains(uint32(die)) {
			continue
		}
		cost := 1
		if f.Class == fault.DataTSV {
			cost = c.cfg.BurstLength
		}
		if budget < cost {
			continue
		}
		budget -= cost
		c.mem.MarkRepaired(i)
		c.stats.TSVRepairs++
		repaired = true
	}
	return repaired
}

// reconstruct attempts recovery through each dimension in turn, returning
// the recovered data and the dimension (1-3) that worked.
func (c *Controller) reconstruct(idx int64, co stack.Coord, want uint32) ([]byte, int) {
	if data := c.reconstructDim1(co); data != nil && crc.Verify(uint64(idx), data, want) {
		return data, 1
	}
	if data := c.reconstructDim2(co); data != nil && crc.Verify(uint64(idx), data, want) {
		return data, 2
	}
	if data := c.reconstructDim3(co); data != nil && crc.Verify(uint64(idx), data, want) {
		return data, 3
	}
	return nil, 0
}

// reconstructDim1 XORs the Dimension-1 parity line with every other
// (die, bank) member of the group.
func (c *Controller) reconstructDim1(co stack.Coord) []byte {
	out := make([]byte, c.cfg.LineBytes)
	copy(out, c.parityLine1(co.Stack, co.Row, co.Line))
	for die := 0; die < c.cfg.DataDies; die++ {
		for bank := 0; bank < c.cfg.BanksPerDie; bank++ {
			if die == co.Die && bank == co.Bank {
				continue
			}
			member := stack.Coord{Stack: co.Stack, Die: die, Bank: bank, Row: co.Row, Line: co.Line}
			raw, err := c.readResolved(member)
			if err != nil {
				return nil
			}
			c.stats.ParityReconstruction++
			for i := range out {
				out[i] ^= raw[i]
			}
		}
	}
	return out
}

// reconstructDim2 recovers via the within-die parity row.
func (c *Controller) reconstructDim2(co stack.Coord) []byte {
	lb := c.cfg.LineBytes
	off := co.Line * lb
	out := make([]byte, lb)
	copy(out, c.parityRow2(co.Stack, co.Die)[off:off+lb])
	for bank := 0; bank < c.cfg.BanksPerDie; bank++ {
		for row := 0; row < c.cfg.RowsPerBank; row++ {
			if bank == co.Bank && row == co.Row {
				continue
			}
			member := stack.Coord{Stack: co.Stack, Die: co.Die, Bank: bank, Row: row, Line: co.Line}
			raw, err := c.readResolved(member)
			if err != nil {
				return nil
			}
			c.stats.ParityReconstruction++
			for i := range out {
				out[i] ^= raw[i]
			}
		}
	}
	return out
}

// reconstructDim3 recovers via the same-bank-index-across-dies parity row.
func (c *Controller) reconstructDim3(co stack.Coord) []byte {
	lb := c.cfg.LineBytes
	off := co.Line * lb
	out := make([]byte, lb)
	copy(out, c.parityRow3(co.Stack, co.Bank)[off:off+lb])
	for die := 0; die < c.cfg.DataDies; die++ {
		for row := 0; row < c.cfg.RowsPerBank; row++ {
			if die == co.Die && row == co.Row {
				continue
			}
			member := stack.Coord{Stack: co.Stack, Die: die, Bank: co.Bank, Row: row, Line: co.Line}
			raw, err := c.readResolved(member)
			if err != nil {
				return nil
			}
			c.stats.ParityReconstruction++
			for i := range out {
				out[i] ^= raw[i]
			}
		}
	}
	return out
}

// spare redirects the faulty row (or, past the row budget, the whole bank)
// into the metadata die's spare area and installs the recovered data.
func (c *Controller) spare(co stack.Coord, idx int64, data []byte) {
	b := bankID{co.Stack, co.Die, co.Bank}
	if c.rowsPerBank[b] < c.maxSpareRows {
		// Fine-grained: remap this row.
		spareRow := c.nextSpareRow[co.Stack]
		c.nextSpareRow[co.Stack]++
		if spareRow >= c.cfg.RowsPerBank {
			return // fine bank exhausted; fall back to correction-on-read
		}
		c.rrt[rowID{b, co.Row}] = spareRow
		c.rowsPerBank[b]++
		c.stats.RowsSpared++
		// Migrate the whole row: recovered line plus the row's other lines.
		for l := 0; l < c.cfg.LinesPerRow(); l++ {
			src := stack.Coord{Stack: co.Stack, Die: co.Die, Bank: co.Bank, Row: co.Row, Line: l}
			dst := stack.Coord{Stack: co.Stack, Die: c.metaDie(), Bank: c.spareBankFine(), Row: spareRow, Line: l}
			if l == co.Line {
				_ = c.mem.writeAny(dst, data)
				continue
			}
			li := c.cfg.LineIndex(src)
			v, err := c.recoverForMigration(li, src)
			if err == nil {
				_ = c.mem.writeAny(dst, v)
			}
		}
		return
	}
	// Coarse-grained: escalate to a spare bank.
	if len(c.brtForStack(co.Stack)) >= c.spareBanks {
		return // spare banks exhausted
	}
	slot := len(c.brtForStack(co.Stack))
	c.brt[b] = slot
	c.stats.BanksSpared++
	// Migrate every line of the bank.
	for row := 0; row < c.cfg.RowsPerBank; row++ {
		for l := 0; l < c.cfg.LinesPerRow(); l++ {
			src := stack.Coord{Stack: co.Stack, Die: co.Die, Bank: co.Bank, Row: row, Line: l}
			dst := stack.Coord{Stack: co.Stack, Die: c.metaDie(), Bank: c.spareBankCoarse(slot), Row: row, Line: l}
			if row == co.Row && l == co.Line {
				_ = c.mem.writeAny(dst, data)
				continue
			}
			li := c.cfg.LineIndex(src)
			v, err := c.recoverForMigration(li, src)
			if err == nil {
				_ = c.mem.writeAny(dst, v)
			}
		}
	}
}

// brtForStack lists the banks currently spared in one stack.
func (c *Controller) brtForStack(stk int) []bankID {
	var out []bankID
	for b := range c.brt {
		if b.stack == stk {
			out = append(out, b)
		}
	}
	return out
}

// ParityConsistent verifies the 3DP invariant: every Dimension-1 parity
// line equals the XOR of its group's stored lines, and the Dimension-2/3
// parity rows equal the XOR of their members. Used by tests and as a
// debugging aid.
func (c *Controller) ParityConsistent() bool {
	cfg := c.cfg
	lb := cfg.LineBytes
	// Dimension 1.
	for key, p := range c.dim1 {
		stk, row, slot := key[0], key[1], key[2]
		want := make([]byte, lb)
		for die := 0; die < cfg.DataDies; die++ {
			for bank := 0; bank < cfg.BanksPerDie; bank++ {
				co := stack.Coord{Stack: stk, Die: die, Bank: bank, Row: row, Line: slot}
				v := c.mem.stored(c.resolve(co))
				for i := range want {
					want[i] ^= v[i]
				}
			}
		}
		for i := range want {
			if want[i] != p[i] {
				return false
			}
		}
	}
	// Dimensions 2 and 3.
	for key, p := range c.dim2 {
		stk, die := key[0], key[1]
		want := make([]byte, cfg.RowBytes)
		for bank := 0; bank < cfg.BanksPerDie; bank++ {
			for row := 0; row < cfg.RowsPerBank; row++ {
				for l := 0; l < cfg.LinesPerRow(); l++ {
					co := stack.Coord{Stack: stk, Die: die, Bank: bank, Row: row, Line: l}
					v := c.mem.stored(c.resolve(co))
					off := l * lb
					for i := range v {
						want[off+i] ^= v[i]
					}
				}
			}
		}
		for i := range want {
			if want[i] != p[i] {
				return false
			}
		}
	}
	for key, p := range c.dim3 {
		stk, bank := key[0], key[1]
		want := make([]byte, cfg.RowBytes)
		for die := 0; die < cfg.DataDies; die++ {
			for row := 0; row < cfg.RowsPerBank; row++ {
				for l := 0; l < cfg.LinesPerRow(); l++ {
					co := stack.Coord{Stack: stk, Die: die, Bank: bank, Row: row, Line: l}
					v := c.mem.stored(c.resolve(co))
					off := l * lb
					for i := range v {
						want[off+i] ^= v[i]
					}
				}
			}
		}
		for i := range want {
			if want[i] != p[i] {
				return false
			}
		}
	}
	return true
}

// Scrub performs a maintenance pass (the paper's 12-hour scrubber): every
// written line is read — correcting and sparing as needed — and transient
// faults are then cleared from the physical state. It returns the number
// of lines that could not be recovered.
func (c *Controller) Scrub() int {
	lost := 0
	for idx := range c.meta {
		if _, err := c.Read(idx); err != nil {
			lost++
		}
	}
	c.mem.ClearTransientFaults()
	return lost
}

// recoverForMigration fetches a line's correct value during sparing: the
// raw read if its CRC passes, else a 3DP reconstruction.
func (c *Controller) recoverForMigration(idx int64, co stack.Coord) ([]byte, error) {
	raw, err := c.mem.readAny(co)
	if err != nil {
		return nil, err
	}
	md, ok := c.meta[idx]
	if !ok || crc.Verify(uint64(idx), raw, md.CRC32) {
		return raw, nil
	}
	data, _ := c.reconstruct(idx, co, md.CRC32)
	if data == nil {
		return nil, ErrDataLoss
	}
	return data, nil
}
