package gf256

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	// Exhaustive over all pairs: commutativity, identity, inverse.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x, y := byte(a), byte(b)
			if Mul(x, y) != Mul(y, x) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			if Add(x, y) != Add(y, x) {
				t.Fatalf("add not commutative at %d,%d", a, b)
			}
		}
		x := byte(a)
		if Mul(x, 1) != x {
			t.Fatalf("1 is not multiplicative identity for %d", a)
		}
		if Add(x, 0) != x {
			t.Fatalf("0 is not additive identity for %d", a)
		}
		if x != 0 {
			if Mul(x, Inv(x)) != 1 {
				t.Fatalf("x*inv(x) != 1 for %d", a)
			}
			if Div(x, x) != 1 {
				t.Fatalf("x/x != 1 for %d", a)
			}
		}
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAssociativity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for i := 0; i < 255; i++ {
		if Log(Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, Log(Exp(i)))
		}
	}
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, Exp(Log(byte(a))))
		}
	}
}

func TestExpGeneratesField(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Errorf("alpha generates %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Error("alpha^i produced 0")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		got := Pow(byte(a), 3)
		want := Mul(Mul(byte(a), byte(a)), byte(a))
		if got != want {
			t.Fatalf("Pow(%d,3) = %d, want %d", a, got, want)
		}
	}
	if Pow(0, 0) != 1 {
		t.Error("Pow(0,0) != 1")
	}
	if Pow(0, 5) != 0 {
		t.Error("Pow(0,5) != 0")
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div(1,0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + x^2 evaluated at 2: 3 + 4 = 7 in GF(2^8) (no carries).
	p := Poly{3, 0, 1}
	if got := p.Eval(2); got != 7 {
		t.Errorf("Eval = %d, want 7", got)
	}
	if got := p.Eval(0); got != 3 {
		t.Errorf("Eval(0) = %d, want 3", got)
	}
}

func TestPolyMulDegree(t *testing.T) {
	a := Poly{1, 1}       // 1+x
	b := Poly{1, 0, 1}    // 1+x^2
	prod := PolyMul(a, b) // (1+x)(1+x^2) = 1+x+x^2+x^3
	want := Poly{1, 1, 1, 1}
	if len(prod) != len(want) {
		t.Fatalf("product length %d, want %d", len(prod), len(want))
	}
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("product[%d] = %d, want %d", i, prod[i], want[i])
		}
	}
}

func TestPolyModProperties(t *testing.T) {
	f := func(raw [8]byte) bool {
		a := Poly(raw[:])
		b := Poly{raw[0] | 1, raw[1], 1} // degree-2, nonzero
		rem := PolyMod(a, b)
		if rem.Degree() >= b.Degree() {
			return false
		}
		// a ≡ rem (mod b): check a+rem is divisible by b via evaluation at
		// roots is unavailable in general, so verify via re-division.
		diff := PolyAdd(a, rem)
		return PolyMod(diff, b).Degree() == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFormalDerivative(t *testing.T) {
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
	p := Poly{5, 7, 9, 11}
	d := FormalDerivative(p)
	want := Poly{7, 0, 11}
	if len(d) != len(want) {
		t.Fatalf("derivative length %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("derivative[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if got := FormalDerivative(Poly{42}); len(got) != 0 {
		t.Errorf("derivative of constant = %v, want empty", got)
	}
}

func TestPolyDegreeAndTrim(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if p.Degree() != 1 {
		t.Errorf("Degree = %d, want 1", p.Degree())
	}
	if len(p.Trim()) != 2 {
		t.Errorf("Trim length = %d, want 2", len(p.Trim()))
	}
	if (Poly{0, 0}).Degree() != -1 {
		t.Error("zero polynomial degree != -1")
	}
}
