// Package gf256 implements arithmetic over the finite field GF(2^8) with the
// primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D), the field used by the
// symbol-based (ChipKill-like) codes Citadel compares against.
package gf256

// PrimitivePoly is the field's primitive polynomial in binary representation.
const PrimitivePoly = 0x11D

var (
	expTable [512]byte // alpha^i for i in [0,510]; doubled to avoid mod 255
	logTable [256]byte // log_alpha(x) for x != 0
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= PrimitivePoly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a+b in GF(2^8) (XOR; addition and subtraction coincide).
func Add(a, b byte) byte { return a ^ b }

// Exp returns alpha^i where alpha is the primitive element. i may be any
// non-negative integer.
func Exp(i int) byte { return expTable[i%255] }

// Log returns log_alpha(a). It panics if a == 0, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Pow returns a^n. a == 0 yields 0 for n > 0 and 1 for n == 0.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// Poly is a polynomial over GF(2^8), lowest-degree coefficient first:
// p[0] + p[1]x + p[2]x^2 + ...
type Poly []byte

// Degree returns the degree of p (-1 for the zero polynomial).
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Trim returns p without trailing zero coefficients.
func (p Poly) Trim() Poly { return p[:p.Degree()+1] }

// Eval evaluates p at x using Horner's method.
func (p Poly) Eval(x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = Mul(y, x) ^ p[i]
	}
	return y
}

// PolyAdd returns a+b.
func PolyAdd(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Poly, n)
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return out
}

// PolyMul returns a*b.
func PolyMul(a, b Poly) Poly {
	if len(a) == 0 || len(b) == 0 {
		return Poly{}
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ac := range a {
		if ac == 0 {
			continue
		}
		for j, bc := range b {
			out[i+j] ^= Mul(ac, bc)
		}
	}
	return out
}

// PolyScale returns p multiplied by the scalar s.
func PolyScale(p Poly, s byte) Poly {
	out := make(Poly, len(p))
	for i, c := range p {
		out[i] = Mul(c, s)
	}
	return out
}

// PolyMod returns the remainder of a divided by b. It panics if b is zero.
func PolyMod(a, b Poly) Poly {
	_, rem := PolyDivMod(a, b)
	return rem
}

// PolyDivMod returns the quotient and remainder of a divided by b, with
// deg(rem) < deg(b). It panics if b is the zero polynomial.
func PolyDivMod(a, b Poly) (quot, rem Poly) {
	db := b.Degree()
	if db < 0 {
		panic("gf256: polynomial division by zero")
	}
	rem = make(Poly, len(a))
	copy(rem, a)
	qLen := len(a) - db
	if qLen < 1 {
		qLen = 1
	}
	quot = make(Poly, qLen)
	lead := b[db]
	for d := rem.Degree(); d >= db; d = rem.Degree() {
		coef := Div(rem[d], lead)
		quot[d-db] = coef
		for i := 0; i <= db; i++ {
			rem[d-db+i] ^= Mul(coef, b[i])
		}
	}
	if len(rem) > db {
		rem = rem[:db]
	}
	return quot, rem
}

// FormalDerivative returns p'(x). In characteristic 2 the even-power terms
// vanish.
func FormalDerivative(p Poly) Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}
