// Package bch implements binary BCH codes: systematic encoding from the
// generator polynomial (the LCM of minimal polynomials of alpha..alpha^2t)
// and syndrome decoding via Berlekamp–Massey plus Chien search. It backs
// the 6EC7ED baseline of the paper's §VIII-F with a real codec, the same
// way internal/reedsolomon backs the symbol-code baseline.
package bch

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/gf2m"
)

// ErrTooManyErrors reports an error pattern beyond the code's capability.
var ErrTooManyErrors = errors.New("bch: too many errors to correct")

// Code is a binary BCH code of length n = 2^m - 1 correcting t errors.
type Code struct {
	field *gf2m.Field
	n     int     // code length in bits
	k     int     // data bits
	t     int     // correctable errors
	gen   uint64x // generator polynomial over GF(2)
}

// uint64x is a little GF(2) polynomial, bit i = coefficient of x^i,
// backed by a word slice so degrees above 63 work.
type uint64x []uint64

func (p uint64x) bit(i int) uint64 { return p[i/64] >> (uint(i) % 64) & 1 }

func (p uint64x) setBit(i int) { p[i/64] |= 1 << (uint(i) % 64) }

func (p uint64x) degree() int {
	for w := len(p) - 1; w >= 0; w-- {
		if p[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(p[w])
		}
	}
	return -1
}

func newPoly(degCap int) uint64x { return make(uint64x, degCap/64+1) }

// xorShifted xors q<<s into p.
func (p uint64x) xorShifted(q uint64x, s int) {
	for i := 0; i <= q.degree(); i++ {
		if q.bit(i) == 1 {
			p[(i+s)/64] ^= 1 << (uint(i+s) % 64)
		}
	}
}

// mulGF2 multiplies two GF(2) polynomials.
func mulGF2(a, b uint64x) uint64x {
	out := newPoly(a.degree() + b.degree() + 1)
	for i := 0; i <= a.degree(); i++ {
		if a.bit(i) == 1 {
			out.xorShifted(b, i)
		}
	}
	return out
}

// New constructs a BCH code over GF(2^m) correcting t errors. The code
// length is n = 2^m - 1; k = n - deg(generator).
func New(m, t int) (*Code, error) {
	field, err := gf2m.New(m)
	if err != nil {
		return nil, err
	}
	n := field.Order()
	if t < 1 || 2*t >= n {
		return nil, fmt.Errorf("bch: t=%d out of range for n=%d", t, n)
	}
	// Generator = LCM of minimal polynomials of alpha^1 .. alpha^(2t).
	gen := newPoly(1)
	gen[0] = 1
	included := map[uint64]bool{}
	for i := 1; i <= 2*t; i++ {
		mp := field.MinimalPolynomial(i)
		if included[mp] {
			continue
		}
		included[mp] = true
		mpPoly := newPoly(63)
		mpPoly[0] = mp
		gen = mulGF2(gen, mpPoly)
	}
	k := n - gen.degree()
	if k <= 0 {
		return nil, fmt.Errorf("bch: no data bits left (m=%d t=%d)", m, t)
	}
	return &Code{field: field, n: n, k: k, t: t, gen: gen}, nil
}

// N returns the code length in bits.
func (c *Code) N() int { return c.n }

// K returns the number of data bits.
func (c *Code) K() int { return c.k }

// T returns the number of correctable bit errors.
func (c *Code) T() int { return c.t }

// ParityBits returns n-k.
func (c *Code) ParityBits() int { return c.n - c.k }

// Encode appends parity to data (length k bits, one bit per bool) and
// returns the n-bit systematic codeword.
func (c *Code) Encode(data []bool) ([]bool, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("bch: data length %d bits, want %d", len(data), c.k)
	}
	// Message polynomial m(x)*x^(n-k) mod gen(x) gives parity.
	np := c.n - c.k
	rem := newPoly(c.n)
	for i, b := range data {
		if b {
			rem.setBit(np + (c.k - 1 - i)) // data[0] at highest degree
		}
	}
	// Reduce modulo gen.
	dg := c.gen.degree()
	for d := rem.degree(); d >= dg; d = rem.degree() {
		rem.xorShifted(c.gen, d-dg)
	}
	cw := make([]bool, c.n)
	copy(cw, data)
	for i := 0; i < np; i++ {
		cw[c.k+i] = rem.bit(np-1-i) == 1
	}
	return cw, nil
}

// syndromes evaluates the received polynomial at alpha^1..alpha^2t.
func (c *Code) syndromes(cw []bool) []uint32 {
	synd := make([]uint32, 2*c.t)
	for j := 1; j <= 2*c.t; j++ {
		var s uint32
		for i, b := range cw {
			if b {
				// Coefficient of x^(n-1-i).
				s ^= c.field.Exp((c.n - 1 - i) * j)
			}
		}
		synd[j-1] = s
	}
	return synd
}

// IsValid reports whether cw is a valid codeword.
func (c *Code) IsValid(cw []bool) bool {
	if len(cw) != c.n {
		return false
	}
	for _, s := range c.syndromes(cw) {
		if s != 0 {
			return false
		}
	}
	return true
}

// Decode corrects up to t bit errors in place and returns the data bits
// and the corrected positions.
func (c *Code) Decode(cw []bool) (data []bool, corrected []int, err error) {
	if len(cw) != c.n {
		return nil, nil, fmt.Errorf("bch: codeword length %d, want %d", len(cw), c.n)
	}
	synd := c.syndromes(cw)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		out := make([]bool, c.k)
		copy(out, cw[:c.k])
		return out, nil, nil
	}
	// Berlekamp–Massey over GF(2^m).
	lambda := []uint32{1}
	prev := []uint32{1}
	var L int
	m := 1
	b := uint32(1)
	f := c.field
	for nIdx := 0; nIdx < 2*c.t; nIdx++ {
		d := synd[nIdx]
		for i := 1; i <= L && i < len(lambda); i++ {
			if nIdx-i >= 0 {
				d ^= f.Mul(lambda[i], synd[nIdx-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*L <= nIdx {
			tmp := append([]uint32(nil), lambda...)
			scale := f.Div(d, b)
			lambda = xorScaledShift(f, lambda, prev, scale, m)
			L = nIdx + 1 - L
			prev = tmp
			b = d
			m = 1
		} else {
			lambda = xorScaledShift(f, lambda, prev, f.Div(d, b), m)
			m++
		}
	}
	if L > c.t {
		return nil, nil, ErrTooManyErrors
	}
	// Chien search: roots alpha^{-p} mark error positions p (power of the
	// corrupted coefficient).
	positions := []int{}
	for p := 0; p < c.n; p++ {
		xinv := f.Exp(c.n - p) // alpha^{-p}
		var v uint32
		for i := len(lambda) - 1; i >= 0; i-- {
			v = f.Mul(v, xinv) ^ lambda[i]
		}
		if v == 0 {
			positions = append(positions, p)
		}
	}
	if len(positions) != L {
		return nil, nil, ErrTooManyErrors
	}
	fixed := append([]bool(nil), cw...)
	corrected = make([]int, 0, len(positions))
	for _, p := range positions {
		idx := c.n - 1 - p
		fixed[idx] = !fixed[idx]
		corrected = append(corrected, idx)
	}
	if !c.IsValid(fixed) {
		return nil, nil, ErrTooManyErrors
	}
	copy(cw, fixed)
	out := make([]bool, c.k)
	copy(out, fixed[:c.k])
	return out, corrected, nil
}

// xorScaledShift returns lambda + scale * x^shift * prev.
func xorScaledShift(f *gf2m.Field, lambda, prev []uint32, scale uint32, shift int) []uint32 {
	need := len(prev) + shift
	out := make([]uint32, max(len(lambda), need))
	copy(out, lambda)
	for i, c := range prev {
		out[i+shift] ^= f.Mul(c, scale)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
