package bch

import (
	"math/rand"
	"testing"
)

// code6EC is the paper's 6-error-correcting code sized for a 512-bit line:
// BCH over GF(2^10), n=1023, t=6 (k = 1023-60 = 963 >= 512).
func code6EC(t testing.TB) *Code {
	t.Helper()
	c, err := New(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodeShape(t *testing.T) {
	c := code6EC(t)
	if c.N() != 1023 {
		t.Errorf("n = %d, want 1023", c.N())
	}
	if c.T() != 6 {
		t.Errorf("t = %d, want 6", c.T())
	}
	// Each of the 6 even-indexed minimal polynomials has degree 10:
	// parity = 60 bits, k = 963.
	if c.ParityBits() != 60 {
		t.Errorf("parity bits = %d, want 60", c.ParityBits())
	}
	if c.K() != 963 {
		t.Errorf("k = %d, want 963", c.K())
	}
	if c.K() < 512 {
		t.Error("code cannot hold a 512-bit cache line")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2); err == nil {
		t.Error("accepted m=1")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("accepted t=0")
	}
	if _, err := New(4, 8); err == nil {
		t.Error("accepted 2t >= n")
	}
}

func randData(rng *rand.Rand, k int) []bool {
	d := make([]bool, k)
	for i := range d {
		d[i] = rng.Intn(2) == 1
	}
	return d
}

func eq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	c := code6EC(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		data := randData(rng, c.K())
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsValid(cw) {
			t.Fatal("fresh codeword invalid")
		}
		if !eq(cw[:c.K()], data) {
			t.Fatal("code not systematic")
		}
	}
	if _, err := c.Encode(make([]bool, 10)); err == nil {
		t.Error("accepted short data")
	}
}

func TestCorrectsUpToSixErrors(t *testing.T) {
	c := code6EC(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		data := randData(rng, c.K())
		orig, _ := c.Encode(data)
		nerr := 1 + rng.Intn(6)
		cw := append([]bool(nil), orig...)
		for _, p := range rng.Perm(c.N())[:nerr] {
			cw[p] = !cw[p]
		}
		got, corrected, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if !eq(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
		if len(corrected) != nerr {
			t.Fatalf("trial %d: corrected %d positions, want %d", trial, len(corrected), nerr)
		}
	}
}

func TestSevenErrorsDetected(t *testing.T) {
	// 6EC7ED: seven errors must not be silently mis-corrected back to the
	// original; overwhelmingly they are flagged uncorrectable.
	c := code6EC(t)
	rng := rand.New(rand.NewSource(3))
	flagged := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		data := randData(rng, c.K())
		orig, _ := c.Encode(data)
		cw := append([]bool(nil), orig...)
		for _, p := range rng.Perm(c.N())[:7] {
			cw[p] = !cw[p]
		}
		got, _, err := c.Decode(cw)
		if err == nil && eq(got, data) {
			t.Fatalf("trial %d: 7 errors silently corrected to original", trial)
		}
		if err != nil {
			flagged++
		}
	}
	if flagged < trials/2 {
		t.Errorf("only %d/%d 7-error patterns flagged", flagged, trials)
	}
}

func TestCleanDecode(t *testing.T) {
	c := code6EC(t)
	data := make([]bool, c.K())
	data[0], data[100], data[500] = true, true, true
	cw, _ := c.Encode(data)
	got, corrected, err := c.Decode(cw)
	if err != nil || len(corrected) != 0 || !eq(got, data) {
		t.Errorf("clean decode failed: %v %v", corrected, err)
	}
	if _, _, err := c.Decode(make([]bool, 5)); err == nil {
		t.Error("accepted short codeword")
	}
}

func TestSmallCodeExhaustive(t *testing.T) {
	// BCH(15,7,t=2): every 1- and 2-bit error pattern is correctable.
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 15 || c.K() != 7 {
		t.Fatalf("BCH(15,%d) with t=2, want k=7", c.K())
	}
	data := []bool{true, false, true, true, false, false, true}
	orig, _ := c.Encode(data)
	for i := 0; i < 15; i++ {
		for j := i; j < 15; j++ {
			cw := append([]bool(nil), orig...)
			cw[i] = !cw[i]
			if j != i {
				cw[j] = !cw[j]
			}
			got, _, err := c.Decode(cw)
			if err != nil {
				t.Fatalf("errors at %d,%d: %v", i, j, err)
			}
			if !eq(got, data) {
				t.Fatalf("errors at %d,%d: wrong data", i, j)
			}
		}
	}
}

// TestCapabilityMatchesPredicateModel ties the codec to the Monte Carlo
// model: the BCH6EC7ED predicate assumes a 6-bit budget per line.
func TestCapabilityMatchesPredicateModel(t *testing.T) {
	c := code6EC(t)
	if c.T() != 6 {
		t.Errorf("codec corrects %d bits; the ecc.BCH6EC7ED model assumes 6", c.T())
	}
}

func BenchmarkDecodeTwoErrors(b *testing.B) {
	c := code6EC(b)
	data := make([]bool, c.K())
	orig, _ := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := append([]bool(nil), orig...)
		cw[17] = !cw[17]
		cw[900] = !cw[900]
		if _, _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
