package stack

import "fmt"

// Striping selects how the bytes of one cache line are laid out across the
// banks and channels of a stack. The choice trades reliability against
// bank-level parallelism and activation power (Citadel §II-D/E).
type Striping int

const (
	// SameBank keeps the whole cache line in a single bank. One bank is
	// activated per access: best performance and power, worst tolerance of
	// bank- and channel-granularity faults.
	SameBank Striping = iota
	// AcrossBanks stripes the line over all banks of one die (channel).
	// Every access activates all banks of the channel.
	AcrossBanks
	// AcrossChannels stripes the line over one bank in each channel of the
	// stack. Every access activates one bank in every channel.
	AcrossChannels
)

// String returns the name used in the paper's figures.
func (s Striping) String() string {
	switch s {
	case SameBank:
		return "Same-Bank"
	case AcrossBanks:
		return "Across-Banks"
	case AcrossChannels:
		return "Across-Channels"
	default:
		return fmt.Sprintf("Striping(%d)", int(s))
	}
}

// Stripings lists all layouts in presentation order.
func Stripings() []Striping { return []Striping{SameBank, AcrossBanks, AcrossChannels} }

// UnitsTouched returns the number of banks activated by one line access.
func (s Striping) UnitsTouched(c Config) int {
	switch s {
	case SameBank:
		return 1
	case AcrossBanks:
		return c.BanksPerDie
	case AcrossChannels:
		return c.Channels()
	default:
		return 1
	}
}

// Slice describes the portion of a cache line resident in one bank: the row
// coordinate plus the byte extent within that row.
type Slice struct {
	Coord     Coord // Line field is unused; RowOffset locates the bytes
	RowOffset int   // byte offset of the slice within the row
	Bytes     int   // slice length in bytes
}

// Slices maps a dense line index (see LineIndex/CoordOfLineIndex) to the set
// of per-bank slices that hold it under striping s. SameBank returns one
// full-line slice; the striped layouts return one slice per touched bank.
//
// For the striped layouts a "row set" — the rows with the same row index in
// every striped bank — collectively holds UnitsTouched rows' worth of lines,
// with each line contributing an equal-size slice to every bank of the set.
func (c Config) Slices(s Striping, lineIdx int64) []Slice {
	return c.AppendSlices(nil, s, lineIdx)
}

// AppendSlices is the allocation-free form of Slices: it appends the
// slices for lineIdx to dst and returns the extended slice. Hot loops
// that map millions of lines (perfsim's access path) call it with a
// reused scratch slice — AppendSlices(scratch[:0], ...) — so steady
// state allocates nothing; Slices is the convenience form for callers
// that map a handful of lines.
func (c Config) AppendSlices(dst []Slice, s Striping, lineIdx int64) []Slice {
	co := c.CoordOfLineIndex(lineIdx)
	switch s {
	case SameBank:
		return append(dst, Slice{
			Coord:     co,
			RowOffset: co.Line * c.LineBytes,
			Bytes:     c.LineBytes,
		})
	case AcrossBanks:
		n := c.BanksPerDie
		sliceBytes := c.LineBytes / n
		// Dense line index within the die.
		within := (int64(co.Bank)*int64(c.RowsPerBank)+int64(co.Row))*int64(c.LinesPerRow()) + int64(co.Line)
		linesPerRowSet := int64(n * c.RowBytes / c.LineBytes)
		row := int(within / linesPerRowSet)
		slot := int(within % linesPerRowSet)
		for b := 0; b < n; b++ {
			dst = append(dst, Slice{
				Coord:     Coord{Stack: co.Stack, Die: co.Die, Bank: b, Row: row},
				RowOffset: slot * sliceBytes,
				Bytes:     sliceBytes,
			})
		}
		return dst
	case AcrossChannels:
		n := c.Channels()
		sliceBytes := c.LineBytes / n
		// Dense line index within the stack.
		within := ((int64(co.Die)*int64(c.BanksPerDie)+int64(co.Bank))*int64(c.RowsPerBank)+int64(co.Row))*int64(c.LinesPerRow()) + int64(co.Line)
		linesPerRowSet := int64(n * c.RowBytes / c.LineBytes)
		set := within / linesPerRowSet
		slot := int(within % linesPerRowSet)
		bank := int(set / int64(c.RowsPerBank) % int64(c.BanksPerDie))
		row := int(set % int64(c.RowsPerBank))
		for d := 0; d < n; d++ {
			dst = append(dst, Slice{
				Coord:     Coord{Stack: co.Stack, Die: d, Bank: bank, Row: row},
				RowOffset: slot * sliceBytes,
				Bytes:     sliceBytes,
			})
		}
		return dst
	default:
		panic(fmt.Sprintf("stack: unknown striping %d", int(s)))
	}
}

// TSVForBit returns the data-TSV index that carries the given bit position
// (0-based within the line) of every cache line in a channel. With 256 data
// TSVs and a 512-bit line, TSV t carries bits t and t+256.
func (c Config) TSVForBit(bit int) int { return bit % c.DataTSVs }

// BitsOnTSV returns the line bit positions carried by data TSV t.
func (c Config) BitsOnTSV(t int) []int {
	n := c.BitsPerTSVPerLine()
	bits := make([]int, 0, n)
	for beat := 0; beat < n; beat++ {
		bits = append(bits, t+beat*c.DataTSVs)
	}
	return bits
}

// InterleaveLine maps a dense workload line address onto stack coordinates
// with the channel-interleaved, diagonally permuted layout a performance-
// oriented controller uses: consecutive DRAM rows spread first across
// channels, then banks, then stacks, with the bank digit folded into the
// channel digit so pages spread over all channels (footnote-4-style bit
// swapping). Both timing models share this mapping.
func (c Config) InterleaveLine(addr uint64) Coord {
	lpr := uint64(c.LinesPerRow())
	slot := addr % lpr
	rowGroup := addr / lpr
	die := rowGroup % uint64(c.Channels())
	rowGroup /= uint64(c.Channels())
	bank := rowGroup % uint64(c.BanksPerDie)
	rowGroup /= uint64(c.BanksPerDie)
	die = (die + bank) % uint64(c.Channels())
	stk := rowGroup % uint64(c.Stacks)
	rowGroup /= uint64(c.Stacks)
	row := rowGroup % uint64(c.RowsPerBank)
	return Coord{
		Stack: int(stk),
		Die:   int(die),
		Bank:  int(bank),
		Row:   int(row),
		Line:  int(slot),
	}
}
