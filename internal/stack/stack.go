// Package stack models the geometry of a 3D-stacked DRAM memory system in
// the style of High Bandwidth Memory (HBM): a logic die plus a stack of DRAM
// dies, where each channel is fully contained in one die and all banks of
// that channel share the channel's through-silicon vias (TSVs).
//
// The package provides the coordinate system used by every other module:
// (stack, die, bank, row, column/line), conversions between linear physical
// addresses and coordinates, and the three cache-line data-striping layouts
// studied by the Citadel paper (same-bank, across-banks, across-channels).
package stack

import (
	"errors"
	"fmt"
)

// Config describes the geometry of the stacked memory system. The zero value
// is not usable; start from DefaultConfig (the paper's Table II baseline) and
// override fields as needed.
type Config struct {
	// Stacks is the number of independent 3D stacks in the system.
	Stacks int
	// DataDies is the number of DRAM dies per stack that hold program data.
	// In the HBM-like organization each data die hosts exactly one channel.
	DataDies int
	// ECCDies is the number of additional dies per stack holding ECC or
	// metadata (Citadel uses one).
	ECCDies int
	// BanksPerDie is the number of independently operable banks on each die
	// (equivalently, per channel).
	BanksPerDie int
	// RowsPerBank is the number of DRAM rows (pages) in each bank.
	RowsPerBank int
	// RowBytes is the size of one DRAM row (the row-buffer size).
	RowBytes int
	// LineBytes is the cache-line size served by the memory system.
	LineBytes int
	// DataTSVs is the number of data TSVs per channel.
	DataTSVs int
	// AddrTSVs is the number of address/command TSVs per channel.
	AddrTSVs int
	// BurstLength is the number of beats each data TSV transfers per line.
	BurstLength int
}

// DefaultConfig returns the baseline system of the paper (Table II): two
// 8 GB stacks, eight 8 Gb data dies plus one ECC die per stack, 8 banks per
// channel, 64 Ki rows per bank, 2 KB row buffer, 64 B lines, 256 data TSVs
// and 24 address TSVs per channel, burst length 2.
func DefaultConfig() Config {
	return Config{
		Stacks:      2,
		DataDies:    8,
		ECCDies:     1,
		BanksPerDie: 8,
		RowsPerBank: 64 * 1024,
		RowBytes:    2048,
		LineBytes:   64,
		DataTSVs:    256,
		AddrTSVs:    24,
		BurstLength: 2,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Stacks <= 0:
		return errors.New("stack: Stacks must be positive")
	case c.DataDies <= 0:
		return errors.New("stack: DataDies must be positive")
	case c.ECCDies < 0:
		return errors.New("stack: ECCDies must be non-negative")
	case c.BanksPerDie <= 0:
		return errors.New("stack: BanksPerDie must be positive")
	case c.RowsPerBank <= 0:
		return errors.New("stack: RowsPerBank must be positive")
	case c.RowBytes <= 0:
		return errors.New("stack: RowBytes must be positive")
	case c.LineBytes <= 0:
		return errors.New("stack: LineBytes must be positive")
	case c.RowBytes%c.LineBytes != 0:
		return fmt.Errorf("stack: RowBytes (%d) must be a multiple of LineBytes (%d)", c.RowBytes, c.LineBytes)
	case c.DataTSVs <= 0:
		return errors.New("stack: DataTSVs must be positive")
	case c.AddrTSVs <= 0:
		return errors.New("stack: AddrTSVs must be positive")
	case c.BurstLength <= 0:
		return errors.New("stack: BurstLength must be positive")
	case c.LineBytes*8%(c.DataTSVs*c.BurstLength) != 0:
		return fmt.Errorf("stack: line bits (%d) must be divisible by DataTSVs*BurstLength (%d)",
			c.LineBytes*8, c.DataTSVs*c.BurstLength)
	}
	return nil
}

// Channels returns the number of channels per stack (one per data die in the
// HBM-like organization).
func (c Config) Channels() int { return c.DataDies }

// LinesPerRow returns the number of cache lines held by one DRAM row.
func (c Config) LinesPerRow() int { return c.RowBytes / c.LineBytes }

// LinesPerBank returns the number of cache lines held by one bank.
func (c Config) LinesPerBank() int { return c.RowsPerBank * c.LinesPerRow() }

// BankBytes returns the capacity of one bank in bytes.
func (c Config) BankBytes() int64 { return int64(c.RowsPerBank) * int64(c.RowBytes) }

// DieBytes returns the data capacity of one die in bytes.
func (c Config) DieBytes() int64 { return int64(c.BanksPerDie) * c.BankBytes() }

// StackBytes returns the data capacity (excluding ECC dies) of one stack.
func (c Config) StackBytes() int64 { return int64(c.DataDies) * c.DieBytes() }

// TotalBytes returns the data capacity of the whole system.
func (c Config) TotalBytes() int64 { return int64(c.Stacks) * c.StackBytes() }

// DataBanksPerStack returns the number of data banks in one stack.
func (c Config) DataBanksPerStack() int { return c.DataDies * c.BanksPerDie }

// TotalDataBanks returns the number of data banks in the whole system.
func (c Config) TotalDataBanks() int { return c.Stacks * c.DataBanksPerStack() }

// BitsPerTSVPerLine returns how many bits of each cache line travel over a
// single data TSV (the burst length for the default config).
func (c Config) BitsPerTSVPerLine() int { return c.LineBytes * 8 / c.DataTSVs }

// Coord identifies one cache line (or, with Line ignored, one row) in the
// system. Die doubles as the channel index because each channel is fully
// contained in one die.
type Coord struct {
	Stack int // which 3D stack
	Die   int // die == channel within the stack
	Bank  int // bank within the die
	Row   int // row within the bank
	Line  int // cache line within the row
}

// String renders the coordinate in a compact, log-friendly form.
func (co Coord) String() string {
	return fmt.Sprintf("s%d/d%d/b%d/r%d/l%d", co.Stack, co.Die, co.Bank, co.Row, co.Line)
}

// Valid reports whether the coordinate addresses a real location under c.
func (c Config) Valid(co Coord) bool {
	return co.Stack >= 0 && co.Stack < c.Stacks &&
		co.Die >= 0 && co.Die < c.DataDies &&
		co.Bank >= 0 && co.Bank < c.BanksPerDie &&
		co.Row >= 0 && co.Row < c.RowsPerBank &&
		co.Line >= 0 && co.Line < c.LinesPerRow()
}

// LineIndex returns a dense index in [0, TotalLines) for the coordinate.
// It is the inverse of CoordOfLineIndex.
func (c Config) LineIndex(co Coord) int64 {
	lpr := int64(c.LinesPerRow())
	idx := int64(co.Stack)
	idx = idx*int64(c.DataDies) + int64(co.Die)
	idx = idx*int64(c.BanksPerDie) + int64(co.Bank)
	idx = idx*int64(c.RowsPerBank) + int64(co.Row)
	idx = idx*lpr + int64(co.Line)
	return idx
}

// TotalLines returns the number of cache lines in the system.
func (c Config) TotalLines() int64 { return c.TotalBytes() / int64(c.LineBytes) }

// CoordOfLineIndex is the inverse of LineIndex.
func (c Config) CoordOfLineIndex(idx int64) Coord {
	lpr := int64(c.LinesPerRow())
	var co Coord
	co.Line = int(idx % lpr)
	idx /= lpr
	co.Row = int(idx % int64(c.RowsPerBank))
	idx /= int64(c.RowsPerBank)
	co.Bank = int(idx % int64(c.BanksPerDie))
	idx /= int64(c.BanksPerDie)
	co.Die = int(idx % int64(c.DataDies))
	idx /= int64(c.DataDies)
	co.Stack = int(idx)
	return co
}

// BankID returns a dense index in [0, TotalDataBanks) identifying the bank
// that holds the coordinate.
func (c Config) BankID(co Coord) int {
	return (co.Stack*c.DataDies+co.Die)*c.BanksPerDie + co.Bank
}

// CoordOfBankID returns a coordinate (Row and Line zero) for a dense bank
// index produced by BankID.
func (c Config) CoordOfBankID(id int) Coord {
	bank := id % c.BanksPerDie
	id /= c.BanksPerDie
	die := id % c.DataDies
	id /= c.DataDies
	return Coord{Stack: id, Die: die, Bank: bank}
}
