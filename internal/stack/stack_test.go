package stack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestDefaultConfigCapacity(t *testing.T) {
	c := DefaultConfig()
	// Table II: 1 GB per channel, 8 GB per stack, 2x8 GB total.
	if got, want := c.DieBytes(), int64(1<<30); got != want {
		t.Errorf("DieBytes = %d, want %d", got, want)
	}
	if got, want := c.StackBytes(), int64(8<<30); got != want {
		t.Errorf("StackBytes = %d, want %d", got, want)
	}
	if got, want := c.TotalBytes(), int64(16<<30); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got, want := c.LinesPerRow(), 32; got != want {
		t.Errorf("LinesPerRow = %d, want %d", got, want)
	}
	if got, want := c.TotalDataBanks(), 128; got != want {
		t.Errorf("TotalDataBanks = %d, want %d", got, want)
	}
	if got, want := c.BitsPerTSVPerLine(), 2; got != want {
		t.Errorf("BitsPerTSVPerLine = %d, want %d", got, want)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero stacks", func(c *Config) { c.Stacks = 0 }},
		{"negative ECC dies", func(c *Config) { c.ECCDies = -1 }},
		{"zero banks", func(c *Config) { c.BanksPerDie = 0 }},
		{"zero rows", func(c *Config) { c.RowsPerBank = 0 }},
		{"zero row bytes", func(c *Config) { c.RowBytes = 0 }},
		{"zero line bytes", func(c *Config) { c.LineBytes = 0 }},
		{"row not multiple of line", func(c *Config) { c.RowBytes = 100 }},
		{"zero data TSVs", func(c *Config) { c.DataTSVs = 0 }},
		{"zero addr TSVs", func(c *Config) { c.AddrTSVs = 0 }},
		{"zero burst", func(c *Config) { c.BurstLength = 0 }},
		{"line bits not divisible by TSVs", func(c *Config) { c.DataTSVs = 300 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted bad config %+v", c)
			}
		})
	}
}

func TestLineIndexRoundTrip(t *testing.T) {
	c := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		idx := rng.Int63n(c.TotalLines())
		co := c.CoordOfLineIndex(idx)
		if !c.Valid(co) {
			t.Fatalf("CoordOfLineIndex(%d) = %v invalid", idx, co)
		}
		if back := c.LineIndex(co); back != idx {
			t.Fatalf("LineIndex(CoordOfLineIndex(%d)) = %d", idx, back)
		}
	}
}

func TestLineIndexRoundTripQuick(t *testing.T) {
	c := DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := rng.Int63n(c.TotalLines())
		return c.LineIndex(c.CoordOfLineIndex(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankIDRoundTrip(t *testing.T) {
	c := DefaultConfig()
	for id := 0; id < c.TotalDataBanks(); id++ {
		co := c.CoordOfBankID(id)
		if !c.Valid(co) {
			t.Fatalf("CoordOfBankID(%d) = %v invalid", id, co)
		}
		if back := c.BankID(co); back != id {
			t.Fatalf("BankID(CoordOfBankID(%d)) = %d", id, back)
		}
	}
}

func TestStripingString(t *testing.T) {
	want := map[Striping]string{
		SameBank:       "Same-Bank",
		AcrossBanks:    "Across-Banks",
		AcrossChannels: "Across-Channels",
		Striping(9):    "Striping(9)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestUnitsTouched(t *testing.T) {
	c := DefaultConfig()
	if got := SameBank.UnitsTouched(c); got != 1 {
		t.Errorf("SameBank touches %d banks, want 1", got)
	}
	if got := AcrossBanks.UnitsTouched(c); got != 8 {
		t.Errorf("AcrossBanks touches %d banks, want 8", got)
	}
	if got := AcrossChannels.UnitsTouched(c); got != 8 {
		t.Errorf("AcrossChannels touches %d banks, want 8", got)
	}
}

func TestSlicesSameBank(t *testing.T) {
	c := DefaultConfig()
	idx := c.LineIndex(Coord{Stack: 1, Die: 3, Bank: 5, Row: 1000, Line: 7})
	sl := c.Slices(SameBank, idx)
	if len(sl) != 1 {
		t.Fatalf("got %d slices, want 1", len(sl))
	}
	if sl[0].Bytes != c.LineBytes {
		t.Errorf("slice bytes = %d, want %d", sl[0].Bytes, c.LineBytes)
	}
	if sl[0].RowOffset != 7*c.LineBytes {
		t.Errorf("row offset = %d, want %d", sl[0].RowOffset, 7*c.LineBytes)
	}
	if sl[0].Coord.Bank != 5 || sl[0].Coord.Die != 3 {
		t.Errorf("slice coord = %v", sl[0].Coord)
	}
}

func TestSlicesAcrossBanksCoversAllBanks(t *testing.T) {
	c := DefaultConfig()
	sl := c.Slices(AcrossBanks, 12345)
	if len(sl) != c.BanksPerDie {
		t.Fatalf("got %d slices, want %d", len(sl), c.BanksPerDie)
	}
	seen := map[int]bool{}
	for _, s := range sl {
		seen[s.Coord.Bank] = true
		if s.Bytes != c.LineBytes/c.BanksPerDie {
			t.Errorf("slice bytes = %d, want %d", s.Bytes, c.LineBytes/c.BanksPerDie)
		}
		if s.Coord.Die != sl[0].Coord.Die || s.Coord.Row != sl[0].Coord.Row {
			t.Errorf("slices differ in die/row: %v vs %v", s.Coord, sl[0].Coord)
		}
	}
	if len(seen) != c.BanksPerDie {
		t.Errorf("banks covered = %d, want %d", len(seen), c.BanksPerDie)
	}
}

func TestSlicesAcrossChannelsCoversAllDies(t *testing.T) {
	c := DefaultConfig()
	sl := c.Slices(AcrossChannels, 987654)
	if len(sl) != c.Channels() {
		t.Fatalf("got %d slices, want %d", len(sl), c.Channels())
	}
	seen := map[int]bool{}
	for _, s := range sl {
		seen[s.Coord.Die] = true
		if s.Coord.Bank != sl[0].Coord.Bank || s.Coord.Row != sl[0].Coord.Row {
			t.Errorf("slices differ in bank/row: %v vs %v", s.Coord, sl[0].Coord)
		}
	}
	if len(seen) != c.Channels() {
		t.Errorf("dies covered = %d, want %d", len(seen), c.Channels())
	}
}

// TestSlicesDisjointAndComplete checks that under each striping, distinct
// line indices never claim overlapping bytes, and that slice extents stay
// within a row. This is the no-aliasing invariant of the address map.
func TestSlicesDisjointAndComplete(t *testing.T) {
	c := DefaultConfig()
	c.RowsPerBank = 16 // shrink for an exhaustive scan of one die
	c.Stacks = 1
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range Stripings() {
		t.Run(s.String(), func(t *testing.T) {
			type cell struct {
				bankID int
				row    int
				off    int
			}
			claimed := map[cell]int64{}
			total := c.TotalLines()
			for idx := int64(0); idx < total; idx++ {
				for _, sl := range c.Slices(s, idx) {
					if sl.RowOffset < 0 || sl.RowOffset+sl.Bytes > c.RowBytes {
						t.Fatalf("line %d slice out of row bounds: %+v", idx, sl)
					}
					if sl.Coord.Row < 0 || sl.Coord.Row >= c.RowsPerBank {
						t.Fatalf("line %d slice row out of range: %+v", idx, sl)
					}
					for b := 0; b < sl.Bytes; b++ {
						key := cell{c.BankID(sl.Coord), sl.Coord.Row, sl.RowOffset + b}
						if prev, ok := claimed[key]; ok {
							t.Fatalf("byte %v claimed by both line %d and line %d", key, prev, idx)
						}
						claimed[key] = idx
					}
				}
			}
			wantBytes := int(c.TotalBytes())
			if len(claimed) != wantBytes {
				t.Errorf("claimed %d bytes, want %d", len(claimed), wantBytes)
			}
		})
	}
}

func TestTSVBitMapping(t *testing.T) {
	c := DefaultConfig()
	// DTSV-1 carries bits 1 and 257 of every line (paper §V-B).
	bits := c.BitsOnTSV(1)
	if len(bits) != 2 || bits[0] != 1 || bits[1] != 257 {
		t.Errorf("BitsOnTSV(1) = %v, want [1 257]", bits)
	}
	for bit := 0; bit < c.LineBytes*8; bit++ {
		tsv := c.TSVForBit(bit)
		if tsv < 0 || tsv >= c.DataTSVs {
			t.Fatalf("TSVForBit(%d) = %d out of range", bit, tsv)
		}
		found := false
		for _, b := range c.BitsOnTSV(tsv) {
			if b == bit {
				found = true
			}
		}
		if !found {
			t.Fatalf("bit %d not listed by BitsOnTSV(%d)", bit, tsv)
		}
	}
}

func TestCoordString(t *testing.T) {
	co := Coord{Stack: 1, Die: 2, Bank: 3, Row: 4, Line: 5}
	if got, want := co.String(), "s1/d2/b3/r4/l5"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAlternativeOrganizations(t *testing.T) {
	for _, org := range Organizations() {
		t.Run(org.Name, func(t *testing.T) {
			if err := org.Config.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			// All three designs are 2x8GB systems (paper §II-C).
			if got := org.Config.TotalBytes(); got != 16<<30 {
				t.Errorf("capacity = %d, want 16 GiB", got)
			}
			// Round-trip addressing must hold for every geometry.
			idx := org.Config.TotalLines() - 1
			if back := org.Config.LineIndex(org.Config.CoordOfLineIndex(idx)); back != idx {
				t.Errorf("line index round trip failed: %d -> %d", idx, back)
			}
		})
	}
}

func TestHBMConfigIsDefault(t *testing.T) {
	if HBMConfig() != DefaultConfig() {
		t.Error("HBMConfig should alias DefaultConfig")
	}
}
