package stack

// Alternative stack organizations. The paper evaluates an HBM-like design
// but notes (§II-C) that the reliability improvement is "equally high for
// the HMC and Tezzaron designs". These constructors approximate those
// organizations within this package's channel-per-die abstraction so the
// whole evaluation can be re-run against them (see the ablation
// experiments): what matters for the fault algebra is the number of
// independent channels, banks per channel, and rows per bank — the axes
// the three designs actually differ on.

// HBMConfig is the paper's baseline organization (alias of DefaultConfig):
// 8 channels per stack, one per die, 8 banks per channel.
func HBMConfig() Config { return DefaultConfig() }

// HMCLikeConfig approximates a Hybrid Memory Cube organization: many
// narrow vaults (16 per stack) each with fewer banks (4 visible per
// vault-channel here), smaller 256 B row buffers, and serialized links.
// Vaults are vertical slices in a real HMC; modeling each vault as a
// channel preserves the independence structure the fault analysis needs.
func HMCLikeConfig() Config {
	return Config{
		Stacks:      2,
		DataDies:    16, // 16 vault-channels
		ECCDies:     2,  // metadata capacity scaled to keep the 12.5% ratio
		BanksPerDie: 4,
		RowsPerBank: 512 * 1024,
		RowBytes:    256,
		LineBytes:   64,
		DataTSVs:    32,
		AddrTSVs:    18,
		BurstLength: 16,
	}
}

// TezzaronLikeConfig approximates the Tezzaron Octopus organization: an
// 8-port device where each port reaches a bank group; fewer, larger banks
// per channel with wide TSV buses.
func TezzaronLikeConfig() Config {
	return Config{
		Stacks:      2,
		DataDies:    8,
		ECCDies:     1,
		BanksPerDie: 16,
		RowsPerBank: 32 * 1024,
		RowBytes:    2048,
		LineBytes:   64,
		DataTSVs:    512,
		AddrTSVs:    24,
		BurstLength: 1,
	}
}

// Organization names an alternative geometry for reports.
type Organization struct {
	Name   string
	Config Config
}

// Organizations lists the three stacked-memory designs the paper discusses.
func Organizations() []Organization {
	return []Organization{
		{Name: "HBM", Config: HBMConfig()},
		{Name: "HMC-like", Config: HMCLikeConfig()},
		{Name: "Tezzaron-like", Config: TezzaronLikeConfig()},
	}
}
