package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestProfileCounts(t *testing.T) {
	all := Profiles()
	if len(all) != 38 {
		t.Fatalf("profiles = %d, want 38 (29 SPEC + 7 PARSEC + 2 BioBench)", len(all))
	}
	spec := len(BySuite(SPECFP)) + len(BySuite(SPECINT))
	if spec != 29 {
		t.Errorf("SPEC profiles = %d, want 29", spec)
	}
	if got := len(BySuite(PARSEC)); got != 7 {
		t.Errorf("PARSEC profiles = %d, want 7", got)
	}
	if got := len(BySuite(BIOBENCH)); got != 2 {
		t.Errorf("BioBench profiles = %d, want 2", got)
	}
}

func TestProfileNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range Profiles() {
		if p.MPKI <= 0 || p.WBPKI < 0 {
			t.Errorf("%s: bad miss rates %v/%v", p.Name, p.MPKI, p.WBPKI)
		}
		if p.RowHit < 0 || p.RowHit > 1 {
			t.Errorf("%s: row hit %v out of range", p.Name, p.RowHit)
		}
		if p.MLP < 1 {
			t.Errorf("%s: MLP %v < 1", p.Name, p.MLP)
		}
		if p.CPI0 <= 0 {
			t.Errorf("%s: CPI0 %v", p.Name, p.CPI0)
		}
		if p.FootprintLines < LinesPerRowGroup {
			t.Errorf("%s: footprint too small", p.Name)
		}
		wf := p.WriteFraction()
		if wf < 0 || wf >= 1 {
			t.Errorf("%s: write fraction %v", p.Name, wf)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" || p.Suite != SPECINT {
		t.Errorf("ByName(mcf) = %+v, %v", p, ok)
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestBioBenchReadDominated(t *testing.T) {
	// Paper §VI-C: BioBench mostly reads with sparse writes.
	for _, p := range BySuite(BIOBENCH) {
		if p.WriteFraction() > 0.1 {
			t.Errorf("%s write fraction %.2f, expected < 0.1", p.Name, p.WriteFraction())
		}
	}
}

func TestSuiteString(t *testing.T) {
	if SPECFP.String() != "SPEC-FP" || BIOBENCH.String() != "BIOBENCH" {
		t.Error("suite names wrong")
	}
	if Suite(9).String() != "Suite(9)" {
		t.Error("unknown suite name wrong")
	}
	if len(Suites()) != 4 {
		t.Error("Suites() wrong length")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	a := NewGenerator(p, 8, 42).Stream(1000)
	b := NewGenerator(p, 8, 42).Stream(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := NewGenerator(p, 8, 43).Stream(1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	p, _ := ByName("lbm") // heavy writeback benchmark
	reqs := NewGenerator(p, 8, 1).Stream(80000)
	writes := 0
	for _, r := range reqs {
		if r.Write {
			writes++
		}
	}
	got := float64(writes) / float64(len(reqs))
	want := p.WriteFraction()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("write fraction = %.3f, want ~%.3f", got, want)
	}
}

func TestGeneratorRowLocality(t *testing.T) {
	// Requests should revisit row groups at roughly the profiled rate.
	// (A random jump can land on the same group, so the measured rate can
	// only exceed the profile value, and only slightly for big footprints.)
	p, _ := ByName("libquantum") // RowHit 0.90
	reqs := NewGenerator(p, 1, 2).Stream(50000)
	same := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].LineAddr/LinesPerRowGroup == reqs[i-1].LineAddr/LinesPerRowGroup {
			same++
		}
	}
	rate := float64(same) / float64(len(reqs)-1)
	if math.Abs(rate-p.RowHit) > 0.05 {
		t.Errorf("row-group locality = %.3f, want ~%.3f", rate, p.RowHit)
	}
}

func TestGeneratorCoreRangesDisjoint(t *testing.T) {
	// Rate mode interleaves the cores' copies in the low row-group bits:
	// core c owns row groups congruent to c (mod cores).
	p, _ := ByName("mcf")
	reqs := NewGenerator(p, 8, 3).Stream(20000)
	for _, r := range reqs {
		rg := r.LineAddr / LinesPerRowGroup
		if rg%8 != uint64(r.Core) {
			t.Fatalf("core %d accessed row group %d (owner %d)", r.Core, rg, rg%8)
		}
	}
}

func TestGeneratorICountMonotonePerCore(t *testing.T) {
	p, _ := ByName("gcc")
	reqs := NewGenerator(p, 8, 4).Stream(10000)
	last := map[int]uint64{}
	for _, r := range reqs {
		if r.ICount <= last[r.Core] {
			t.Fatalf("instruction count not increasing for core %d", r.Core)
		}
		last[r.Core] = r.ICount
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// The paper's Figure 15 ordering depends on GemsFDTD-class benchmarks
	// being far more memory-intensive than dealII-class ones.
	gems, _ := ByName("GemsFDTD")
	deal, _ := ByName("dealII")
	if gems.MPKI+gems.WBPKI < 10*(deal.MPKI+deal.WBPKI) {
		t.Error("GemsFDTD should be >=10x more memory-intensive than dealII")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("gcc")
	reqs := NewGenerator(p, 8, 5).Stream(1000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip %d requests, want %d", len(back), len(reqs))
	}
	for i := range reqs {
		if back[i] != reqs[i] {
			t.Fatalf("request %d changed: %+v vs %+v", i, back[i], reqs[i])
		}
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := []string{
		"",                                    // no header
		"wrong,header,entirely,x\n1,true,0,5", // bad header
		"line_addr,write,core,icount\nx,true,0,5",
		"line_addr,write,core,icount\n1,notbool,0,5",
		"line_addr,write,core,icount\n1,true,-2,5",
		"line_addr,write,core,icount\n1,true,0,y",
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("accepted bad trace %q", c)
		}
	}
}

func TestTraceSourceLoops(t *testing.T) {
	reqs := []Request{{LineAddr: 1}, {LineAddr: 2}}
	src, err := NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 2 {
		t.Errorf("Len = %d", src.Len())
	}
	got := []uint64{src.Next().LineAddr, src.Next().LineAddr, src.Next().LineAddr}
	if got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("loop order %v", got)
	}
	if _, err := NewTraceSource(nil); err == nil {
		t.Error("accepted empty trace")
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Name: "x", MPKI: -1, MLP: 1, CPI0: 1, FootprintLines: 64}
	if bad.Validate() == nil {
		t.Error("accepted negative MPKI")
	}
	if (Profile{}).Validate() == nil {
		t.Error("accepted empty profile")
	}
}
