// Package workload provides synthetic stand-ins for the paper's evaluation
// workloads: all 29 SPEC CPU2006 benchmarks, seven memory-intensive PARSEC
// benchmarks, and two BioBench benchmarks (paper §III-B), executed in rate
// mode on eight cores.
//
// Real traces are not redistributable, so each benchmark is summarized by a
// profile — LLC misses per kilo-instruction, writeback intensity, row-buffer
// locality, memory-level parallelism, and footprint — with values drawn from
// published characterizations. A deterministic generator expands a profile
// into a synthetic stream of memory requests with the profiled statistics;
// the performance model consumes the stream, so the *relative* behaviour
// across benchmarks and striping layouts is preserved even though absolute
// IPC is not meant to match any particular machine.
package workload

import (
	"fmt"
	"math/rand"
)

// Suite identifies the benchmark suite.
type Suite int

const (
	// SPECFP is SPEC CPU2006 floating point.
	SPECFP Suite = iota
	// SPECINT is SPEC CPU2006 integer.
	SPECINT
	// PARSEC is the PARSEC multithreaded suite.
	PARSEC
	// BIOBENCH is the BioBench bioinformatics suite.
	BIOBENCH
)

// String names the suite as the paper's figures do.
func (s Suite) String() string {
	switch s {
	case SPECFP:
		return "SPEC-FP"
	case SPECINT:
		return "SPEC-INT"
	case PARSEC:
		return "PARSEC"
	case BIOBENCH:
		return "BIOBENCH"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Profile summarizes one benchmark's memory behaviour.
type Profile struct {
	Name  string
	Suite Suite
	// MPKI is LLC read misses per kilo-instruction (per core).
	MPKI float64
	// WBPKI is LLC dirty writebacks per kilo-instruction (per core).
	WBPKI float64
	// RowHit is the probability a request hits the currently open row of
	// its bank under the Same-Bank mapping.
	RowHit float64
	// MLP is the average number of overlapping outstanding misses.
	MLP float64
	// CPI0 is the core CPI excluding memory stalls.
	CPI0 float64
	// FootprintLines is the number of distinct cache lines the synthetic
	// stream draws from.
	FootprintLines int
}

// Validate reports whether the profile's parameters are usable.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.MPKI <= 0:
		return fmt.Errorf("workload: %s: MPKI must be positive", p.Name)
	case p.WBPKI < 0:
		return fmt.Errorf("workload: %s: WBPKI must be non-negative", p.Name)
	case p.RowHit < 0 || p.RowHit > 1:
		return fmt.Errorf("workload: %s: RowHit must be in [0,1]", p.Name)
	case p.MLP < 1:
		return fmt.Errorf("workload: %s: MLP must be >= 1", p.Name)
	case p.CPI0 <= 0:
		return fmt.Errorf("workload: %s: CPI0 must be positive", p.Name)
	case p.FootprintLines < LinesPerRowGroup:
		return fmt.Errorf("workload: %s: footprint below one row group", p.Name)
	}
	return nil
}

// WriteFraction returns the fraction of memory requests that are
// writebacks.
func (p Profile) WriteFraction() float64 {
	total := p.MPKI + p.WBPKI
	if total == 0 {
		return 0
	}
	return p.WBPKI / total
}

// Profiles returns all 38 benchmark profiles in the paper's Figure-15
// presentation order (least to most memory-intensive within groups).
// MPKI/row-locality values follow published SPEC CPU2006 / PARSEC / BioBench
// characterizations at 8 MB LLC.
func Profiles() []Profile {
	mk := func(name string, suite Suite, mpki, wbpki, rowHit, mlp, cpi0 float64, foot int) Profile {
		return Profile{Name: name, Suite: suite, MPKI: mpki, WBPKI: wbpki,
			RowHit: rowHit, MLP: mlp, CPI0: cpi0, FootprintLines: foot}
	}
	return []Profile{
		// SPEC CPU2006 — compute-bound end.
		mk("dealII", SPECFP, 0.5, 0.2, 0.70, 1.5, 0.8, 1<<16),
		mk("gobmk", SPECINT, 0.6, 0.2, 0.55, 1.3, 0.9, 1<<16),
		mk("sjeng", SPECINT, 0.4, 0.1, 0.50, 1.2, 0.9, 1<<16),
		mk("povray", SPECFP, 0.1, 0.03, 0.65, 1.2, 0.8, 1<<14),
		mk("soplex", SPECFP, 8.0, 2.5, 0.65, 2.5, 0.7, 1<<19),
		mk("bwaves", SPECFP, 10.0, 3.0, 0.80, 3.5, 0.6, 1<<20),
		mk("sphinx3", SPECFP, 7.0, 1.0, 0.70, 2.0, 0.7, 1<<19),
		mk("wrf", SPECFP, 5.0, 1.5, 0.75, 2.2, 0.7, 1<<19),
		mk("zeusmp", SPECFP, 4.0, 1.5, 0.70, 2.0, 0.7, 1<<19),
		mk("bzip2", SPECINT, 2.5, 1.0, 0.55, 1.8, 0.8, 1<<18),
		mk("xalancbmk", SPECINT, 2.0, 0.5, 0.45, 1.6, 0.9, 1<<18),
		mk("hmmer", SPECINT, 0.8, 0.3, 0.70, 1.5, 0.7, 1<<16),
		mk("perlbench", SPECINT, 0.8, 0.3, 0.55, 1.4, 0.8, 1<<17),
		mk("h264ref", SPECINT, 0.7, 0.2, 0.70, 1.5, 0.7, 1<<16),
		mk("astar", SPECINT, 3.0, 0.8, 0.45, 1.4, 0.9, 1<<18),
		mk("gromacs", SPECFP, 0.7, 0.2, 0.65, 1.5, 0.7, 1<<16),
		mk("tonto", SPECFP, 0.5, 0.2, 0.65, 1.5, 0.8, 1<<16),
		mk("namd", SPECFP, 0.3, 0.1, 0.70, 1.6, 0.7, 1<<16),
		mk("calculix", SPECFP, 0.5, 0.15, 0.70, 1.6, 0.7, 1<<16),
		mk("gamess", SPECFP, 0.1, 0.03, 0.70, 1.4, 0.8, 1<<14),
		// SPEC CPU2006 — memory-bound end (right side of Figure 15).
		mk("CactusADM", SPECFP, 6.0, 2.5, 0.60, 1.8, 0.8, 1<<19),
		mk("mcf", SPECINT, 30.0, 8.0, 0.30, 4.0, 1.0, 1<<21),
		mk("lbm", SPECFP, 28.0, 13.0, 0.85, 5.0, 0.6, 1<<21),
		mk("milc", SPECFP, 22.0, 7.0, 0.65, 3.5, 0.7, 1<<20),
		mk("libquantum", SPECINT, 25.0, 6.0, 0.90, 5.0, 0.6, 1<<20),
		mk("omnetpp", SPECINT, 18.0, 5.0, 0.35, 2.5, 0.9, 1<<20),
		mk("gcc", SPECINT, 12.0, 5.0, 0.50, 2.5, 0.8, 1<<19),
		mk("leslie3d", SPECFP, 16.0, 6.0, 0.75, 3.5, 0.6, 1<<20),
		mk("GemsFDTD", SPECFP, 24.0, 10.0, 0.70, 3.0, 0.6, 1<<21),
		// PARSEC (memory-intensive subset used by the paper).
		mk("black", PARSEC, 1.0, 0.3, 0.65, 1.8, 0.8, 1<<17),
		mk("face", PARSEC, 3.0, 1.0, 0.70, 2.2, 0.7, 1<<18),
		mk("ferret", PARSEC, 4.5, 1.2, 0.60, 2.2, 0.8, 1<<18),
		mk("fluid", PARSEC, 3.0, 1.2, 0.70, 2.2, 0.7, 1<<18),
		mk("freq", PARSEC, 2.0, 0.6, 0.55, 1.8, 0.8, 1<<18),
		mk("stream", PARSEC, 10.0, 4.0, 0.85, 4.0, 0.6, 1<<20),
		mk("swapt", PARSEC, 1.2, 0.4, 0.60, 1.8, 0.8, 1<<17),
		// BioBench: read-dominated scans with sparse writes (paper §VI-C).
		mk("mummer", BIOBENCH, 14.0, 1.0, 0.75, 3.0, 0.7, 1<<20),
		mk("tigr", BIOBENCH, 10.0, 0.7, 0.75, 3.0, 0.7, 1<<20),
	}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// BySuite returns all profiles of one suite.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// Suites lists the suites in presentation order.
func Suites() []Suite { return []Suite{SPECFP, SPECINT, PARSEC, BIOBENCH} }

// Request is one memory request below the LLC.
type Request struct {
	// LineAddr is the line-granularity address (line index, not bytes).
	LineAddr uint64
	// Write marks a writeback; reads are demand misses.
	Write bool
	// Core is the issuing core (rate mode: all cores run the same
	// benchmark over disjoint address ranges).
	Core int
	// ICount is the per-core instruction count at which the request
	// issues.
	ICount uint64
}

// Generator produces a deterministic synthetic request stream realizing a
// profile's statistics.
type Generator struct {
	prof  Profile
	cores int
	rng   *rand.Rand
	seq   uint64

	// Shared pattern history: in rate mode all cores execute the same
	// program, so they touch the same virtual row groups and slots — but
	// drift apart by scheduling noise. Core c replays the shared pattern
	// sequence LagRounds*c rounds behind core 0.
	history []pattern
	round   uint64

	// Per-core instruction counters.
	icount []uint64
}

// pattern is one round's shared virtual access.
type pattern struct {
	rg    uint64
	slot  uint64
	write bool
}

// LagRounds is the per-core phase drift between rate-mode copies, in
// rounds. Copies of the same program reach the same access thousands of
// instructions apart rather than simultaneously.
const LagRounds = 61

// LinesPerRowGroup is the number of consecutive lines treated as one DRAM
// row for locality synthesis (2 KB rows / 64 B lines).
const LinesPerRowGroup = 32

// NewGenerator builds a generator for the profile running in rate mode on
// the given number of cores.
func NewGenerator(prof Profile, cores int, seed int64) *Generator {
	return &Generator{
		prof:   prof,
		cores:  cores,
		rng:    rand.New(rand.NewSource(seed)),
		icount: make([]uint64, cores),
	}
}

// Next produces the next request. Cores proceed round-robin in lockstep
// rounds: once per round the shared virtual pattern advances (row-group
// choice, slot, read/write), and each core in the round issues that pattern
// at its own physical location — the per-core index lands in the low
// row-group bits so that, under a channel-interleaved physical mapping, the
// copies fall into different channels at the same (bank, row) coordinates,
// exactly like first-touch allocation of identical rate-mode processes.
func (g *Generator) Next() Request {
	core := int(g.seq % uint64(g.cores))
	g.seq++
	p := g.prof
	if core == 0 {
		// Advance the shared pattern once per round.
		var pat pattern
		if len(g.history) > 0 {
			pat = g.history[len(g.history)-1]
		}
		rowGroups := uint64(p.FootprintLines / LinesPerRowGroup)
		if rowGroups == 0 {
			rowGroups = 1
		}
		if g.rng.Float64() >= p.RowHit {
			pat.rg = uint64(g.rng.Int63n(int64(rowGroups)))
		}
		pat.slot = uint64(g.rng.Intn(LinesPerRowGroup))
		pat.write = g.rng.Float64() < p.WriteFraction()
		g.history = append(g.history, pat)
		maxLag := LagRounds*(g.cores-1) + 1
		if len(g.history) > maxLag {
			g.history = g.history[len(g.history)-maxLag:]
		}
		g.round++
	}
	perK := p.MPKI + p.WBPKI
	gap := uint64(1000/perK + 0.5)
	g.icount[core] += gap
	// Core c replays the pattern from LagRounds*c rounds ago.
	idx := len(g.history) - 1 - LagRounds*core
	if idx < 0 {
		idx = 0
	}
	pat := g.history[idx]
	physRG := pat.rg*uint64(g.cores) + uint64(core)
	line := physRG*LinesPerRowGroup + pat.slot
	return Request{LineAddr: line, Write: pat.write, Core: core, ICount: g.icount[core]}
}

// Stream produces n requests.
func (g *Generator) Stream(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
