package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Trace I/O: synthetic request streams can be exported for inspection or
// replaced by externally captured traces. The format is CSV with header
// "line_addr,write,core,icount", one memory request per row.

// WriteTrace serializes requests as CSV.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"line_addr", "write", "core", "icount"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatUint(r.LineAddr, 10),
			strconv.FormatBool(r.Write),
			strconv.Itoa(r.Core),
			strconv.FormatUint(r.ICount, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTrace parses a CSV trace produced by WriteTrace (or an external
// tool emitting the same columns).
func ReadTrace(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	want := []string{"line_addr", "write", "core", "icount"}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("workload: trace header %v, want %v", header, want)
		}
	}
	var out []Request
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		addr, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad line_addr %q", line, rec[0])
		}
		write, err := strconv.ParseBool(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad write %q", line, rec[1])
		}
		core, err := strconv.Atoi(rec[2])
		if err != nil || core < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad core %q", line, rec[2])
		}
		icount, err := strconv.ParseUint(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad icount %q", line, rec[3])
		}
		out = append(out, Request{LineAddr: addr, Write: write, Core: core, ICount: icount})
	}
	return out, nil
}

// TraceSource replays a recorded trace through the Generator interface
// shape used by the performance model.
type TraceSource struct {
	reqs []Request
	pos  int
}

// NewTraceSource wraps a request slice for replay; the trace loops when
// exhausted so simulations can ask for any request count.
func NewTraceSource(reqs []Request) (*TraceSource, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &TraceSource{reqs: reqs}, nil
}

// Next returns the next request, looping at the end of the trace. The
// cursor is mutable state: callers that share one TraceSource across runs
// should hand each run a Clone and Reset it (perfsim does this
// internally).
func (t *TraceSource) Next() Request {
	r := t.reqs[t.pos]
	t.pos = (t.pos + 1) % len(t.reqs)
	return r
}

// Reset rewinds the cursor to the start of the trace.
func (t *TraceSource) Reset() { t.pos = 0 }

// Clone returns an independent cursor over the same underlying requests
// (which are never mutated), at the same position. Clones can be consumed
// concurrently with the original.
func (t *TraceSource) Clone() *TraceSource {
	return &TraceSource{reqs: t.reqs, pos: t.pos}
}

// Len returns the trace length.
func (t *TraceSource) Len() int { return len(t.reqs) }
