package faultsim

// RNG stream derivation. Workers and adaptive batches each need their own
// decorrelated math/rand stream. Deriving them by adding small multiples
// of the base seed (the scheme this replaced) has two failure modes:
// distinct (batch, worker) pairs can collide exactly — batch 1000 at
// step 1e6 equals worker 1 at step 1e9 — and nearby additive seeds feed
// math/rand's lagged-Fibonacci generator visibly correlated streams. A
// splitmix64-style finalizer instead scatters every (base, stream) pair
// across the full 64-bit space.

// Stream-index spaces. Worker streams are dense small integers; adaptive
// batch streams start far above any plausible worker count so the two
// spaces cannot overlap for the same base seed; checkpoint-chunk streams
// of durable campaigns (internal/jobs) get a third disjoint space.
const (
	batchStreamBase uint64 = 1 << 40
	chunkStreamBase uint64 = 1 << 41
	rareStreamBase  uint64 = 1 << 42
	splitStreamBase uint64 = 1 << 43
)

// deriveSeed maps (base seed, stream index) to an RNG seed using the
// splitmix64 finalizer (Steele, Lea & Flood, OOPSLA 2014). Equal inputs
// give equal outputs, keeping seeded runs reproducible; distinct streams
// are decorrelated whatever their numeric distance.
func deriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(stream+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ChunkSeed derives the base seed of checkpoint chunk i of a durable
// campaign (internal/jobs). Chunks are independent sub-runs merged with
// Merge; giving each its own decorrelated stream makes a campaign's
// result a pure function of (base seed, chunk layout, worker count), so
// a resumed campaign reproduces an uninterrupted one bit for bit. The
// chunk space is disjoint from worker and adaptive-batch streams.
func ChunkSeed(base int64, chunk int) int64 {
	return deriveSeed(base, chunkStreamBase+uint64(chunk))
}

// RareStreamSeed derives the per-worker RNG seed of the importance
// sampling engine (internal/rare). The space is disjoint from the plain
// engine's worker streams so a biased and a naive run sharing a base
// seed draw decorrelated fault histories.
func RareStreamSeed(base int64, worker int) int64 {
	return deriveSeed(base, rareStreamBase+uint64(worker))
}

// SplitStreamSeed derives the RNG seed of one multilevel-splitting stage
// (internal/rare). Stages resample trajectory suffixes, so each needs
// its own stream, disjoint from every other seed space.
func SplitStreamSeed(base int64, stage int) int64 {
	return deriveSeed(base, splitStreamBase+uint64(stage))
}
