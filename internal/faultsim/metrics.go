package faultsim

import "repro/internal/obs"

// Engine-level metrics, exposed by cmd/citadel-server at GET /metrics.
// They aggregate across every run in the process; per-run numbers flow
// through Options.Progress instead.
var (
	mTrials = obs.Default().Counter("citadel_faultsim_trials_total",
		"Monte Carlo trials completed across all reliability runs.")
	mFailures = obs.Default().Counter("citadel_faultsim_failures_total",
		"Trials that ended in uncorrectable system failure.")
	mScrubs = obs.Default().Counter("citadel_faultsim_scrub_passes_total",
		"Scrub passes executed inside trials.")
	mRunsActive = obs.Default().Gauge("citadel_faultsim_runs_active",
		"Reliability runs (including censuses) currently executing.")
)
