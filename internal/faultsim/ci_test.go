package faultsim

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/parity"
)

// TestZeroFailureCI pins the rule-of-three bound: a clean run must report
// a resolvable upper limit, never the old "± 0" that made zero-failure
// results look infinitely precise.
func TestZeroFailureCI(t *testing.T) {
	r := Result{Policy: "x", Trials: 1000}
	// float64(1000) forces the same runtime division CI95 performs —
	// untyped constant folding would differ by one ulp.
	want := zeroFailUpper95 / float64(1000)
	if got := r.CI95(); got != want {
		t.Errorf("CI95 = %v, want zeroFailUpper95/n = %v", got, want)
	}
	// Tiny runs clamp to the trivial bound 1 rather than exceeding it.
	if got := (Result{Policy: "x", Trials: 2}).CI95(); got != 1 {
		t.Errorf("CI95 with 2 trials = %v, want clamped to 1", got)
	}
	s := r.String()
	if !strings.Contains(s, "= 0 (<") || !strings.Contains(s, "at 95%") {
		t.Errorf("zero-failure String does not surface the upper bound: %q", s)
	}
}

// TestWilsonCIPins pins the Wilson score interval against hand-computed
// values: one failure in a thousand trials, and agreement with the old
// normal approximation in the regime where that approximation was fine.
func TestWilsonCIPins(t *testing.T) {
	one := Result{Policy: "x", Trials: 1000, Failures: 1}
	if got, want := one.CI95(), 0.0027331; math.Abs(got-want) > 1e-6 {
		t.Errorf("Wilson CI95(1/1000) = %.7f, want %.7f", got, want)
	}
	// Large counts: Wilson and the normal approximation must agree to
	// better than 1%, or the replacement changed well-calibrated results.
	big := Result{Policy: "x", Trials: 100000, Failures: 10000}
	p := big.Probability()
	normal := 1.96 * math.Sqrt(p*(1-p)/float64(big.Trials))
	if got := big.CI95(); math.Abs(got-normal)/normal > 0.01 {
		t.Errorf("Wilson CI95 %.6g vs normal approx %.6g: relative gap > 1%%", got, normal)
	}
}

// TestCI95NeverZero is the bugfix contract itself: for any Trials > 0 the
// interval is positive, including the corner the old code got wrong
// (Failures == 0) and the all-failures corner (p == 1, where the normal
// approximation also degenerated to zero).
func TestCI95NeverZero(t *testing.T) {
	for _, trials := range []int{1, 2, 10, 1000, 1000000} {
		for _, failures := range []int{0, 1, trials / 2, trials} {
			r := Result{Policy: "x", Trials: trials, Failures: failures}
			if got := r.CI95(); got <= 0 {
				t.Errorf("CI95(%d/%d) = %v, want > 0", failures, trials, got)
			}
		}
	}
	w := Result{Policy: "x", Trials: 1000, Failures: 3, Weighted: true,
		FailWeight: 0.75, FailWeightSq: 0.1875}
	if got := w.CI95(); got <= 0 {
		t.Errorf("weighted CI95 = %v, want > 0", got)
	}
}

// TestTargetMetDistinguishesConvergenceFromCap: reaching the failure
// target and giving up at MaxTrials used to produce indistinguishable
// results.
func TestTargetMetDistinguishesConvergenceFromCap(t *testing.T) {
	metOpt := AdaptiveOptions{
		Options:        testOptions(2000, 100, 0),
		TargetFailures: 10,
		BatchTrials:    2000,
		MaxTrials:      20000,
	}
	met := RunAdaptive(metOpt, Policy{Predicate: ecc.NewParity(metOpt.Config, parity.OneDP)})
	if met.Failures >= 10 && !met.TargetMet {
		t.Errorf("run reached %d failures (target 10) but TargetMet is false", met.Failures)
	}
	// Citadel-grade protection at base rates: the cap stops the run short.
	capOpt := AdaptiveOptions{
		Options:        testOptions(1000, 1, 0),
		TargetFailures: 100,
		BatchTrials:    1000,
		MaxTrials:      3000,
	}
	capped := RunAdaptive(capOpt, Policy{
		Predicate: ecc.NewParity(capOpt.Config, parity.ThreeDP),
		NewSparer: ddsSparer,
	})
	if capped.TargetMet {
		t.Errorf("capped run (%d failures of 100) claims TargetMet", capped.Failures)
	}
	// Fixed-budget runs never claim convergence.
	fixed := Run(testOptions(500, 100, 0), Policy{Predicate: ecc.NewParity(capOpt.Config, parity.OneDP)})
	if fixed.TargetMet {
		t.Error("fixed-budget Run set TargetMet")
	}
}

// TestMergeNilInNilOut: merging results that never carried optional maps
// or slices must not grow them — campaign code DeepEqual-compares merged
// accumulators against fresh zero values.
func TestMergeNilInNilOut(t *testing.T) {
	m := Merge(Result{}, Result{})
	if !reflect.DeepEqual(m, Result{}) {
		t.Errorf("Merge of zero values is not the zero value: %+v", m)
	}
	plain := Merge(Result{Trials: 5, Failures: 1}, Result{Trials: 5})
	if plain.CauseCounts != nil {
		t.Errorf("merge of cause-free results grew CauseCounts: %v", plain.CauseCounts)
	}
	// One side carrying causes is enough to merge them.
	withCauses := Merge(
		Result{Trials: 5, Failures: 1, CauseCounts: map[string]int{"bank": 1}},
		Result{Trials: 5, Failures: 2, CauseCounts: map[string]int{"bank": 1, "row": 1}},
	)
	if withCauses.CauseCounts["bank"] != 2 || withCauses.CauseCounts["row"] != 1 {
		t.Errorf("merged CauseCounts wrong: %v", withCauses.CauseCounts)
	}
	oneSided := Merge(Result{Trials: 5}, Result{Trials: 5, Failures: 1, CauseCounts: map[string]int{"tsv": 1}})
	if oneSided.CauseCounts["tsv"] != 1 {
		t.Errorf("one-sided CauseCounts merge lost counts: %v", oneSided.CauseCounts)
	}
}

// ScenarioStats follows the same nil-in/nil-out and key-wise additive
// contract as CauseCounts, and survives the JSON checkpoint round-trip
// campaign resume relies on.
func TestMergeScenarioStats(t *testing.T) {
	plain := Merge(Result{Trials: 5}, Result{Trials: 5})
	if plain.ScenarioStats != nil {
		t.Errorf("merge of stat-free results grew ScenarioStats: %v", plain.ScenarioStats)
	}
	m := Merge(
		Result{Trials: 5, ScenarioStats: map[string]float64{"hammerTrials": 5, "hammerEpisodes": 2}},
		Result{Trials: 5, ScenarioStats: map[string]float64{"hammerTrials": 5, "hammerVictimFaults": 3}},
	)
	want := map[string]float64{"hammerTrials": 10, "hammerEpisodes": 2, "hammerVictimFaults": 3}
	if !reflect.DeepEqual(m.ScenarioStats, want) {
		t.Errorf("merged ScenarioStats = %v, want %v", m.ScenarioStats, want)
	}
	oneSided := Merge(Result{Trials: 5}, Result{Trials: 5, ScenarioStats: map[string]float64{"tierFetchRows": 7}})
	if oneSided.ScenarioStats["tierFetchRows"] != 7 {
		t.Errorf("one-sided ScenarioStats merge lost counts: %v", oneSided.ScenarioStats)
	}

	// Checkpoint round-trip: marshal/unmarshal preserves the map exactly
	// and keeps absent maps absent.
	for _, r := range []Result{
		{Trials: 10, Failures: 1, ScenarioStats: map[string]float64{"hammerTrials": 10, "tierFetchSeconds": 0.125}},
		{Trials: 10, Failures: 1},
	} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Result
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.ScenarioStats, r.ScenarioStats) {
			t.Errorf("checkpoint round-trip changed ScenarioStats: %v -> %v", r.ScenarioStats, back.ScenarioStats)
		}
	}
}

// weightedResult builds a Weighted result from exactly-representable
// dyadic weights so float equality is meaningful.
func weightedResult(trials, failures int, w, wsq float64, byYear []float64) Result {
	return Result{
		Policy: "x", Trials: trials, Failures: failures, Weighted: true,
		FailWeight: w, FailWeightSq: wsq, FailWeightByYear: byYear,
		FailuresByYear: make([]int, len(byYear)),
	}
}

// TestWeightedMergeAssociative: with dyadic weights every partial sum is
// exact, so both fold orders must agree bit for bit — the property that
// lets chunked campaigns merge checkpoints in any grouping as long as the
// chunk order is fixed.
func TestWeightedMergeAssociative(t *testing.T) {
	a := weightedResult(100, 2, 0.5, 0.25, []float64{0.25, 0.5})
	b := weightedResult(100, 1, 0.25, 0.0625, []float64{0.125, 0.25})
	c := weightedResult(100, 3, 0.125, 0.015625, []float64{0.0625, 0.125})
	l := Merge(Merge(a, b), c)
	r := Merge(a, Merge(b, c))
	if l.FailWeight != r.FailWeight || l.FailWeightSq != r.FailWeightSq {
		t.Errorf("fold orders disagree: (%v, %v) vs (%v, %v)",
			l.FailWeight, l.FailWeightSq, r.FailWeight, r.FailWeightSq)
	}
	for i := range l.FailWeightByYear {
		if l.FailWeightByYear[i] != r.FailWeightByYear[i] {
			t.Errorf("by-year fold orders disagree at %d: %v vs %v",
				i, l.FailWeightByYear, r.FailWeightByYear)
		}
	}
	if l.FailWeight != 0.875 || l.FailWeightSq != 0.328125 {
		t.Errorf("merged weights wrong: %v / %v", l.FailWeight, l.FailWeightSq)
	}
	// A zero-value accumulator must reproduce the other side exactly
	// (0 + x is exact), the identity checkpointed campaigns rely on.
	acc := Merge(Result{}, a)
	if acc.FailWeight != a.FailWeight || acc.FailWeightSq != a.FailWeightSq ||
		!reflect.DeepEqual(acc.FailWeightByYear, a.FailWeightByYear) {
		t.Errorf("zero-accumulator merge perturbed weights: %+v", acc)
	}
}

// TestWeightedPlainMergePromotion: pooling a biased and a naive run
// promotes the naive side to unit weights, keeping the mixture unbiased.
func TestWeightedPlainMergePromotion(t *testing.T) {
	plain := Result{Policy: "x", Trials: 100, Failures: 4, FailuresByYear: []int{1, 4}}
	weighted := weightedResult(100, 2, 0.5, 0.25, []float64{0.25, 0.5})
	m := Merge(plain, weighted)
	if !m.Weighted {
		t.Fatal("merge of weighted and plain not marked Weighted")
	}
	if m.FailWeight != 4.5 {
		t.Errorf("FailWeight = %v, want 4 unit weights + 0.5", m.FailWeight)
	}
	if m.FailWeightSq != 4.25 {
		t.Errorf("FailWeightSq = %v, want 4 + 0.25", m.FailWeightSq)
	}
	if want := []float64{1.25, 4.5}; !reflect.DeepEqual(m.FailWeightByYear, want) {
		t.Errorf("FailWeightByYear = %v, want %v", m.FailWeightByYear, want)
	}
	if got, want := m.Probability(), 4.5/200; got != want {
		t.Errorf("mixture probability = %v, want %v", got, want)
	}
	// Symmetric order.
	m2 := Merge(weighted, plain)
	if m2.FailWeight != m.FailWeight || m2.FailWeightSq != m.FailWeightSq {
		t.Errorf("promotion not symmetric: %v/%v vs %v/%v",
			m2.FailWeight, m2.FailWeightSq, m.FailWeight, m.FailWeightSq)
	}
}

// TestWeightedEnvelopeRoundTrip: weighted chunk results must survive the
// JSON checkpoint wire format bit-exactly (Go prints float64 shortest-
// round-trip), and Validate must reject inconsistent weight fields.
func TestWeightedEnvelopeRoundTrip(t *testing.T) {
	// Awkward, non-dyadic weights: the exact values an IS run produces.
	res := Result{
		Policy: "x", Trials: 5000, Failures: 37, Weighted: true,
		FailWeight:       0.0031415926535897933,
		FailWeightSq:     2.718281828459045e-07,
		FailWeightByYear: []float64{0.001, 0.0031415926535897933},
		FailuresByYear:   []int{12, 37},
	}
	env := ChunkEnvelope{CampaignKey: "k", Chunk: 3, Trials: 5000, Result: res}
	if err := env.Validate(); err != nil {
		t.Fatalf("valid weighted envelope rejected: %v", err)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back ChunkEnvelope
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Result.FailWeight != res.FailWeight || back.Result.FailWeightSq != res.FailWeightSq {
		t.Errorf("weights perturbed by JSON: %v/%v vs %v/%v",
			back.Result.FailWeight, back.Result.FailWeightSq, res.FailWeight, res.FailWeightSq)
	}
	if !reflect.DeepEqual(back.Result.FailWeightByYear, res.FailWeightByYear) {
		t.Errorf("by-year weights perturbed: %v vs %v", back.Result.FailWeightByYear, res.FailWeightByYear)
	}

	bad := env
	bad.Result.FailWeight = -1
	if bad.Validate() == nil {
		t.Error("negative FailWeight accepted")
	}
	bad = env
	bad.Result.Weighted = false
	if bad.Validate() == nil {
		t.Error("weight fields without Weighted flag accepted")
	}
	bad = env
	bad.Result.FailWeightSq = 0
	if bad.Validate() == nil {
		t.Error("positive FailWeight with zero FailWeightSq accepted")
	}
}

// TestESSAndEffectiveTrials pins the diagnostic accessors.
func TestESSAndEffectiveTrials(t *testing.T) {
	plain := Result{Policy: "x", Trials: 1000, Failures: 7}
	if got := plain.ESS(); got != 7 {
		t.Errorf("plain ESS = %v, want Failures", got)
	}
	if got := plain.EffectiveTrials(); got != 1000 {
		t.Errorf("plain EffectiveTrials = %v, want Trials", got)
	}
	// Two failures with weights 0.5 and 0.25: ESS = (0.75)^2 / 0.3125.
	w := weightedResult(1000, 2, 0.75, 0.3125, nil)
	if got, want := w.ESS(), 0.75*0.75/0.3125; got != want {
		t.Errorf("weighted ESS = %v, want %v", got, want)
	}
	if got := w.EffectiveTrials(); got <= 0 {
		t.Errorf("weighted EffectiveTrials = %v, want > 0", got)
	}
	if got := (Result{Weighted: true, Trials: 100}).ESS(); got != 0 {
		t.Errorf("weighted zero-failure ESS = %v, want 0", got)
	}
}
