package faultsim

import (
	"context"
	"math"
	"time"

	"repro/internal/fault"
)

// AdaptiveOptions controls a failure-count-targeted run: trials are added
// in batches until at least TargetFailures failures are observed (tight
// relative confidence) or MaxTrials is reached. This is how the paper runs
// "more trials for schemes that show lower failure rates, to improve
// accuracy" (§III-B).
type AdaptiveOptions struct {
	Options
	// TargetFailures is the failure count to accumulate (default 100,
	// giving ~±20% relative CI at 95%).
	TargetFailures int
	// MaxTrials bounds the total work (default 10x Options.Trials).
	MaxTrials int
	// BatchTrials is the step size (default Options.Trials).
	BatchTrials int
}

// withDefaults fills zero fields.
func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	o.Options = o.Options.withDefaults()
	if o.TargetFailures == 0 {
		o.TargetFailures = 100
	}
	if o.BatchTrials == 0 {
		o.BatchTrials = o.Options.Trials
	}
	if o.MaxTrials == 0 {
		o.MaxTrials = 10 * o.Options.Trials
	}
	return o
}

// weightedView returns r with its weighted fields materialized: a plain
// result is a weighted result whose every failing trial carried weight
// one (the likelihood ratio of a sample under its own measure), so
// FailWeight = FailWeightSq = Failures and FailWeightByYear mirrors
// FailuresByYear. This is what lets Merge pool a biased and a naive run
// into one unbiased mixture estimate.
func (r Result) weightedView() Result {
	if r.Weighted {
		return r
	}
	r.FailWeight = float64(r.Failures)
	r.FailWeightSq = float64(r.Failures)
	if len(r.FailuresByYear) > 0 {
		wy := make([]float64, len(r.FailuresByYear))
		for i, v := range r.FailuresByYear {
			wy[i] = float64(v)
		}
		r.FailWeightByYear = wy
	}
	return r
}

// Merge combines two independent runs of the same policy. A partial
// input yields a partial merged result carrying the first non-nil
// cancellation cause, whichever side it came from.
//
// FailuresByYear slices of different lengths (a zero-value accumulator,
// or runs with different LifetimeHours) merge into the longer horizon:
// within the shorter run's horizon the cumulative counts add directly,
// and beyond it the shorter run contributes its final cumulative count
// (a trial that failed by year y has certainly failed by every later
// year; failures the shorter run never simulated are necessarily
// missing either way).
//
// Weighted fields merge bit-exactly: when either side is weighted the
// output is weighted, with the plain side contributing unit weights (see
// weightedView). Merging a zero-value accumulator with a weighted result
// r reproduces r's float fields exactly (0 + x is exact in IEEE 754),
// which is what lets chunked campaigns fold weighted checkpoints
// bit-identically to an uninterrupted run. Note float addition is not
// associative in general — campaign code must fold chunks in a fixed
// order, as internal/jobs does.
//
// Nil maps and slices stay nil when both inputs lack them, so merging
// zero-value results compares DeepEqual to a fresh zero value.
func Merge(a, b Result) Result {
	out := a
	out.Trials += b.Trials
	out.Failures += b.Failures
	out.Partial = a.Partial || b.Partial
	out.TargetMet = a.TargetMet || b.TargetMet
	out.Err = a.Err
	if out.Err == nil {
		out.Err = b.Err
	}
	long, short := a.FailuresByYear, b.FailuresByYear
	if len(short) > len(long) {
		long, short = short, long
	}
	out.FailuresByYear = append([]int(nil), long...)
	for i := range out.FailuresByYear {
		switch {
		case i < len(short):
			out.FailuresByYear[i] += short[i]
		case len(short) > 0:
			out.FailuresByYear[i] += short[len(short)-1]
		}
	}
	if a.Weighted || b.Weighted {
		aw, bw := a.weightedView(), b.weightedView()
		out.Weighted = true
		out.FailWeight = aw.FailWeight + bw.FailWeight
		out.FailWeightSq = aw.FailWeightSq + bw.FailWeightSq
		longW, shortW := aw.FailWeightByYear, bw.FailWeightByYear
		if len(shortW) > len(longW) {
			longW, shortW = shortW, longW
		}
		out.FailWeightByYear = append([]float64(nil), longW...)
		for i := range out.FailWeightByYear {
			switch {
			case i < len(shortW):
				out.FailWeightByYear[i] += shortW[i]
			case len(shortW) > 0:
				out.FailWeightByYear[i] += shortW[len(shortW)-1]
			}
		}
	}
	// Rebuild CauseCounts only when at least one side carries it:
	// unconditional rebuilding used to hand a merge of empty results a
	// non-nil empty map, making it compare unequal to a fresh zero value.
	if a.CauseCounts != nil || b.CauseCounts != nil {
		out.CauseCounts = make(map[string]int, len(a.CauseCounts)+len(b.CauseCounts))
		for k, v := range a.CauseCounts {
			out.CauseCounts[k] += v
		}
		for k, v := range b.CauseCounts {
			out.CauseCounts[k] += v
		}
	}
	// ScenarioStats are additive counters; key-wise float addition with
	// the same nil-in/nil-out contract as CauseCounts, so plain-run merges
	// stay DeepEqual to fresh zero values and chunked scenario campaigns
	// fold deterministically (jobs folds chunks in a fixed order).
	if a.ScenarioStats != nil || b.ScenarioStats != nil {
		out.ScenarioStats = make(map[string]float64, len(a.ScenarioStats)+len(b.ScenarioStats))
		for k, v := range a.ScenarioStats {
			out.ScenarioStats[k] += v
		}
		for k, v := range b.ScenarioStats {
			out.ScenarioStats[k] += v
		}
	}
	// Forensics merge only when at least one side carries it, so a merge of
	// forensics-free results keeps nil fields (and DeepEqual-based golden
	// comparisons intact).
	if a.Breakdown != nil || b.Breakdown != nil {
		out.Breakdown = make(map[string]int, len(a.Breakdown)+len(b.Breakdown))
		for k, v := range a.Breakdown {
			out.Breakdown[k] += v
		}
		for k, v := range b.Breakdown {
			out.Breakdown[k] += v
		}
	}
	if len(a.Exemplars)+len(b.Exemplars) > 0 {
		out.Exemplars = make([]Forensic, 0, len(a.Exemplars)+len(b.Exemplars))
		out.Exemplars = append(out.Exemplars, a.Exemplars...)
		out.Exemplars = append(out.Exemplars, b.Exemplars...)
	} else {
		out.Exemplars = nil
	}
	return out
}

// RunAdaptive accumulates trials in batches until the failure target or
// the trial cap is hit. Batches use distinct seeds derived from the base
// seed, so results remain reproducible.
func RunAdaptive(opt AdaptiveOptions, pol Policy) Result {
	return RunAdaptiveContext(context.Background(), opt, pol)
}

// RunAdaptiveContext is RunAdaptive under a context: cancellation stops
// the batch loop and returns the trials accumulated so far as a Result
// marked Partial.
func RunAdaptiveContext(ctx context.Context, opt AdaptiveOptions, pol Policy) Result {
	opt = opt.withDefaults()
	var total Result
	total.Policy = pol.name()
	years := int(math.Ceil(opt.LifetimeHours / fault.HoursPerYear))
	total.FailuresByYear = make([]int, years)
	var scrubsSoFar int64
	start := time.Now()
	batch := 0
	for total.Trials < opt.MaxTrials && total.Failures < opt.TargetFailures {
		if err := ctx.Err(); err != nil {
			total.Partial = true
			total.Err = err
			break
		}
		bo := opt.Options
		bo.Trials = opt.BatchTrials
		if remaining := opt.MaxTrials - total.Trials; bo.Trials > remaining {
			bo.Trials = remaining
		}
		// Batch streams live in their own index space (batchStreamBase) so
		// no batch seed can collide with a per-worker stream of another
		// batch — the failure mode of the old Seed+batch*1e6 scheme.
		bo.Seed = deriveSeed(opt.Seed, batchStreamBase+uint64(batch))
		var batchScrubs int64
		if opt.Progress != nil {
			// Rebase per-batch snapshots so the hook sees one continuous
			// run: totals accumulated so far plus this batch's progress,
			// against the adaptive trial cap. Intermediate batch-final
			// snapshots are demoted to non-final.
			doneTrials, doneFailures := total.Trials, total.Failures
			baseScrubs := scrubsSoFar
			bo.Progress = func(p Progress) {
				batchScrubs = p.ScrubPasses
				p.TrialsDone += doneTrials
				p.TrialsTarget = opt.MaxTrials
				p.Failures += doneFailures
				p.ScrubPasses += baseScrubs
				p.Elapsed = time.Since(start)
				p.Done = false
				opt.Progress(p)
			}
		}
		r := RunContext(ctx, bo, pol)
		scrubsSoFar += batchScrubs
		total = Merge(total, r)
		total.Policy = pol.name()
		batch++
		if r.Partial {
			break
		}
	}
	// Converged vs gave up: reaching MaxTrials with too few failures
	// used to be indistinguishable from hitting the target.
	total.TargetMet = total.Failures >= opt.TargetFailures
	if len(total.Exemplars) > opt.MaxExemplars {
		// Batches already arrive in batch order; within a batch the
		// exemplars are (Worker, Trial)-sorted, so truncation keeps the
		// earliest captures.
		total.Exemplars = total.Exemplars[:opt.MaxExemplars]
	}
	if opt.Progress != nil {
		opt.Progress(Progress{
			Policy:       pol.name(),
			RunID:        opt.RunID,
			TrialsDone:   total.Trials,
			TrialsTarget: opt.MaxTrials,
			Failures:     total.Failures,
			ScrubPasses:  scrubsSoFar,
			Elapsed:      time.Since(start),
			Done:         true,
		})
	}
	return total
}
