package faultsim

import (
	"context"
	"math"

	"repro/internal/fault"
)

// AdaptiveOptions controls a failure-count-targeted run: trials are added
// in batches until at least TargetFailures failures are observed (tight
// relative confidence) or MaxTrials is reached. This is how the paper runs
// "more trials for schemes that show lower failure rates, to improve
// accuracy" (§III-B).
type AdaptiveOptions struct {
	Options
	// TargetFailures is the failure count to accumulate (default 100,
	// giving ~±20% relative CI at 95%).
	TargetFailures int
	// MaxTrials bounds the total work (default 10x Options.Trials).
	MaxTrials int
	// BatchTrials is the step size (default Options.Trials).
	BatchTrials int
}

// withDefaults fills zero fields.
func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	o.Options = o.Options.withDefaults()
	if o.TargetFailures == 0 {
		o.TargetFailures = 100
	}
	if o.BatchTrials == 0 {
		o.BatchTrials = o.Options.Trials
	}
	if o.MaxTrials == 0 {
		o.MaxTrials = 10 * o.Options.Trials
	}
	return o
}

// Merge combines two independent runs of the same policy. A partial
// input yields a partial merged result.
func Merge(a, b Result) Result {
	out := a
	out.Trials += b.Trials
	out.Failures += b.Failures
	out.Partial = a.Partial || b.Partial
	if out.Err == nil {
		out.Err = b.Err
	}
	if len(b.FailuresByYear) == len(a.FailuresByYear) {
		out.FailuresByYear = append([]int(nil), a.FailuresByYear...)
		for i := range b.FailuresByYear {
			out.FailuresByYear[i] += b.FailuresByYear[i]
		}
	}
	out.CauseCounts = make(map[string]int, len(a.CauseCounts)+len(b.CauseCounts))
	for k, v := range a.CauseCounts {
		out.CauseCounts[k] += v
	}
	for k, v := range b.CauseCounts {
		out.CauseCounts[k] += v
	}
	return out
}

// RunAdaptive accumulates trials in batches until the failure target or
// the trial cap is hit. Batches use distinct seeds derived from the base
// seed, so results remain reproducible.
func RunAdaptive(opt AdaptiveOptions, pol Policy) Result {
	return RunAdaptiveContext(context.Background(), opt, pol)
}

// RunAdaptiveContext is RunAdaptive under a context: cancellation stops
// the batch loop and returns the trials accumulated so far as a Result
// marked Partial.
func RunAdaptiveContext(ctx context.Context, opt AdaptiveOptions, pol Policy) Result {
	opt = opt.withDefaults()
	var total Result
	total.Policy = pol.name()
	years := int(math.Ceil(opt.LifetimeHours / fault.HoursPerYear))
	total.FailuresByYear = make([]int, years)
	batch := 0
	for total.Trials < opt.MaxTrials && total.Failures < opt.TargetFailures {
		if err := ctx.Err(); err != nil {
			total.Partial = true
			total.Err = err
			break
		}
		bo := opt.Options
		bo.Trials = opt.BatchTrials
		if remaining := opt.MaxTrials - total.Trials; bo.Trials > remaining {
			bo.Trials = remaining
		}
		bo.Seed = opt.Seed + int64(batch)*1e6
		r := RunContext(ctx, bo, pol)
		total = Merge(total, r)
		total.Policy = pol.name()
		batch++
		if r.Partial {
			break
		}
	}
	return total
}
