package faultsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ecc"
	"repro/internal/fault"
)

// Forensic is a post-mortem record of one uncorrectable trial: enough to
// replay the trial deterministically (BaseSeed + Worker + Trial pin the
// exact fault stream) plus the live fault set and a machine-readable reason
// chain explaining which correction mechanism was defeated.
type Forensic struct {
	// Policy is the protection scheme that failed.
	Policy string `json:"policy"`
	// RunID correlates the record with progress lines, metrics, and traces.
	RunID string `json:"runId,omitempty"`
	// BaseSeed is the Options.Seed of the run (for adaptive runs, the
	// derived per-batch seed). Replaying requires this exact seed.
	BaseSeed int64 `json:"baseSeed"`
	// StreamSeed is deriveSeed(BaseSeed, Worker) — the worker RNG stream
	// the trial was drawn from, recorded for diagnostics.
	StreamSeed int64 `json:"streamSeed"`
	// Worker and Trial locate the trial inside the run: trial Trial of
	// worker Worker's stream.
	Worker int `json:"worker"`
	Trial  int `json:"trial"`
	// FailureHours is when the fatal fault arrived.
	FailureHours float64 `json:"failureHours"`
	// Cause is the class of the proximate-cause fault.
	Cause string `json:"cause"`
	// Mode is the fault-mode combination key of the live set at failure
	// (the FailureBreakdown bucket this trial fell into).
	Mode string `json:"mode"`
	// Faults is the full live fault set at the moment of failure.
	Faults []fault.Fault `json:"faults"`
	// Summary renders each live fault for humans.
	Summary []string `json:"summary"`
	// Reasons is the machine-readable reason chain: scheme-level codes
	// from ecc.Explain plus engine-level sparing/TSV codes.
	Reasons []ecc.Reason `json:"reasons"`
}

// String renders the record in one line for logs.
func (f Forensic) String() string {
	return fmt.Sprintf("%s worker=%d trial=%d mode=%s cause=%s at %.0fh (%d live faults, %d reasons)",
		f.Policy, f.Worker, f.Trial, f.Mode, f.Cause, f.FailureHours, len(f.Faults), len(f.Reasons))
}

// numClasses spans fault.Bit..fault.AddrTSV.
const numClasses = int(fault.AddrTSV) + 1

// modeKey buckets a live fault set by its class combination with
// multiplicity, in class order: "bank", "row+bank", "bit*2+data-tsv".
func modeKey(live []fault.Fault) string {
	var counts [numClasses]int
	for _, f := range live {
		if int(f.Class) < numClasses {
			counts[f.Class]++
		}
	}
	var b strings.Builder
	for c := 0; c < numClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		b.WriteString(fault.Class(c).String())
		if counts[c] > 1 {
			fmt.Fprintf(&b, "*%d", counts[c])
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// captureForensic builds the record for a failed trial. It runs off the
// zero-allocation path (only when Options.Forensics is set, after a trial
// has already failed), so it may allocate freely. live is the trial's live
// fault set at the moment of failure; ts carries the sparing/TSV state of
// that same trial.
func captureForensic(opt Options, pol Policy, ts *trialState, worker, trial int, live []fault.Fault, when float64, cause fault.Class) Forensic {
	fx := Forensic{
		Policy:       pol.name(),
		RunID:        opt.RunID,
		BaseSeed:     opt.Seed,
		StreamSeed:   deriveSeed(opt.Seed, uint64(worker)),
		Worker:       worker,
		Trial:        trial,
		FailureHours: when,
		Cause:        cause.String(),
		Mode:         modeKey(live),
		Faults:       append([]fault.Fault(nil), live...),
	}
	fx.Summary = make([]string, len(live))
	for i, f := range live {
		fx.Summary[i] = f.String()
	}
	fx.Reasons = ecc.Explain(pol.Predicate, live)
	// Engine-level reasons: the predicates cannot see the sparing and
	// TSV-repair state, so the engine appends what it knows.
	if ts.tsvUnrepaired > 0 {
		fx.Reasons = append(fx.Reasons, ecc.Reason{
			Code:   ecc.ReasonTSVSwapOverflow,
			Detail: fmt.Sprintf("%d TSV fault(s) arrived after the stand-by budget was exhausted", ts.tsvUnrepaired),
		})
	}
	// The single-fault fast path never consults (or resets) the sparer, so
	// its counters only describe multi-fault trials.
	if len(live) > 1 && ts.sparer != nil {
		if rc, ok := ts.sparer.(interface {
			RejectCounts() (footprint, budget int)
		}); ok {
			fp, budget := rc.RejectCounts()
			if budget > 0 {
				fx.Reasons = append(fx.Reasons, ecc.Reason{
					Code:   ecc.ReasonDDSBankSpares,
					Detail: fmt.Sprintf("%d sparing offer(s) rejected: spare banks exhausted", budget),
				})
			}
			if fp > 0 {
				fx.Reasons = append(fx.Reasons, ecc.Reason{
					Code:   ecc.ReasonDDSFootprint,
					Detail: fmt.Sprintf("%d sparing offer(s) rejected: footprint spans multiple banks", fp),
				})
			}
		}
	}
	return fx
}

// sortExemplars orders forensic records deterministically — by (Worker,
// Trial) — so "the first K exemplars" does not depend on goroutine
// scheduling.
func sortExemplars(ex []Forensic) {
	sort.Slice(ex, func(i, j int) bool {
		if ex[i].Worker != ex[j].Worker {
			return ex[i].Worker < ex[j].Worker
		}
		return ex[i].Trial < ex[j].Trial
	})
}

// ReplayTrial re-executes trial `trial` of worker `worker`'s RNG stream
// under opt and pol, and returns its forensic record. ok is false when the
// replayed trial does not fail (wrong seed/worker/trial coordinates, or
// changed options). Replay is exact because a worker's trials consume its
// stream in order: re-seeding the stream and re-drawing trials 0..trial-1
// reproduces the identical fault sequence.
func ReplayTrial(opt Options, pol Policy, worker, trial int) (Forensic, bool) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(deriveSeed(opt.Seed, uint64(worker))))
	sampler := fault.NewSampler(opt.Config, opt.Rates)
	var buf []fault.Fault
	for t := 0; t < trial; t++ {
		buf = sampler.AppendLifetime(rng, opt.LifetimeHours, buf[:0])
	}
	buf = sampler.AppendLifetime(rng, opt.LifetimeHours, buf[:0])
	if len(buf) == 0 {
		return Forensic{}, false
	}
	ts := newTrialState(opt.Config, pol, opt.ScrubIntervalHours, opt.DisableIncremental)
	var when float64
	var cause fault.Class
	if len(buf) == 1 {
		when, cause = ts.runSingle(buf[0])
	} else {
		when, cause = ts.run(buf)
	}
	if when < 0 {
		return Forensic{}, false
	}
	live := buf
	if len(buf) > 1 {
		live = ts.liveFaults()
	}
	return captureForensic(opt, pol, ts, worker, trial, live, when, cause), true
}

// ReplayForensic replays an exemplar recorded by a previous run: opt must
// match the original run's configuration (rates, geometry, lifetime,
// scrub); the exemplar's own seed coordinates override opt.Seed.
func ReplayForensic(opt Options, pol Policy, ex Forensic) (Forensic, bool) {
	opt.Seed = ex.BaseSeed
	return ReplayTrial(opt, pol, ex.Worker, ex.Trial)
}
