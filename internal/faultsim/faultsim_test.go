package faultsim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/sparing"
	"repro/internal/stack"
)

// skipInShort gates the statistically heavy tests (tens of thousands of
// trials) out of `go test -short`, which the race-enabled tier-1 gate
// uses to stay within CI budget.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy Monte Carlo test skipped in -short mode")
	}
}

// testOptions returns fast options with boosted rates so a few thousand
// trials produce a measurable signal.
func testOptions(trials int, rateScale float64, tsvFIT float64) Options {
	r := fault.Table1()
	r.BitTransient *= rateScale
	r.BitPermanent *= rateScale
	r.WordTransient *= rateScale
	r.WordPermanent *= rateScale
	r.ColumnTransient *= rateScale
	r.ColumnPermanent *= rateScale
	r.RowTransient *= rateScale
	r.RowPermanent *= rateScale
	r.BankTransient *= rateScale
	r.BankPermanent *= rateScale
	r.TSVPerDie = tsvFIT
	return Options{
		Config: stack.DefaultConfig(),
		Rates:  r,
		Trials: trials,
		Seed:   7,
	}
}

func ddsSparer(cfg stack.Config) Sparer { return sparing.New(cfg) }

func TestDeterministicWithSeed(t *testing.T) {
	opt := testOptions(2000, 10, 0)
	opt.Workers = 3
	pol := Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)}
	a := Run(opt, pol)
	b := Run(opt, pol)
	if a.Failures != b.Failures {
		t.Errorf("same seed produced %d and %d failures", a.Failures, b.Failures)
	}
}

func TestNoProtectionMatchesPoissonRate(t *testing.T) {
	skipInShort(t)
	opt := testOptions(20000, 10, 0)
	pol := Policy{Predicate: ecc.NoProtection{}}
	res := Run(opt, pol)
	// P(fail) = P(at least one fault) = 1 - exp(-lambda).
	lambda := opt.Rates.TotalPerDie() * 1e-9 * fault.LifetimeHours *
		float64(opt.Config.Stacks*(opt.Config.DataDies+opt.Config.ECCDies))
	want := 1 - math.Exp(-lambda)
	got := res.Probability()
	if math.Abs(got-want) > 4*res.CI95()+0.01 {
		t.Errorf("P(fail) = %.4f, want ~%.4f", got, want)
	}
}

func TestFailuresByYearMonotone(t *testing.T) {
	skipInShort(t)
	opt := testOptions(5000, 20, 0)
	res := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	if len(res.FailuresByYear) != 7 {
		t.Fatalf("years tracked = %d, want 7", len(res.FailuresByYear))
	}
	for y := 1; y < 7; y++ {
		if res.FailuresByYear[y] < res.FailuresByYear[y-1] {
			t.Errorf("cumulative failures decreased at year %d", y+1)
		}
	}
	if res.FailuresByYear[6] != res.Failures {
		t.Errorf("year-7 cumulative %d != total %d", res.FailuresByYear[6], res.Failures)
	}
}

func TestParityDimensionOrdering(t *testing.T) {
	skipInShort(t)
	// Figure 14's qualitative result: more dimensions, fewer failures.
	opt := testOptions(8000, 40, 0)
	r1 := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	r2 := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.TwoDP)})
	r3 := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)})
	if !(r1.Failures >= r2.Failures && r2.Failures >= r3.Failures) {
		t.Errorf("failures not monotone in dimensions: 1DP=%d 2DP=%d 3DP=%d",
			r1.Failures, r2.Failures, r3.Failures)
	}
	if r1.Failures == 0 {
		t.Error("test signal too weak: 1DP saw no failures")
	}
}

func TestTSVSwapEffectiveness(t *testing.T) {
	skipInShort(t)
	// Figure 9: with TSV-Swap, reliability approaches the no-TSV-fault case
	// even at the highest swept TSV rate.
	opt := testOptions(8000, 1, 1430)
	pred := ecc.NewSymbol8(opt.Config, stack.SameBank)
	noSwap := Run(opt, Policy{Name: "no-swap", Predicate: pred})
	withSwap := Run(opt, Policy{Name: "swap", Predicate: pred, UseTSVSwap: true})
	optNoTSV := opt
	optNoTSV.Rates.TSVPerDie = 0
	noTSV := Run(optNoTSV, Policy{Name: "no-tsv", Predicate: pred})
	if noSwap.Failures <= withSwap.Failures {
		t.Errorf("TSV-Swap did not help: noSwap=%d withSwap=%d", noSwap.Failures, withSwap.Failures)
	}
	// With swap, failures should be within noise of the no-TSV-faults case.
	diff := math.Abs(withSwap.Probability() - noTSV.Probability())
	if diff > 3*(withSwap.CI95()+noTSV.CI95())+0.002 {
		t.Errorf("TSV-Swap (%0.4f) not close to no-TSV baseline (%0.4f)",
			withSwap.Probability(), noTSV.Probability())
	}
}

func TestDDSImprovesOver3DP(t *testing.T) {
	skipInShort(t)
	// Figure 18's qualitative result: sparing prevents permanent-fault
	// accumulation across scrub intervals.
	opt := testOptions(6000, 20, 0)
	p3 := Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)}
	pDDS := Policy{
		Name:      "3DP+DDS",
		Predicate: ecc.NewParity(opt.Config, parity.ThreeDP),
		NewSparer: ddsSparer,
	}
	r3 := Run(opt, p3)
	rDDS := Run(opt, pDDS)
	if rDDS.Failures >= r3.Failures {
		t.Errorf("DDS did not improve: 3DP=%d 3DP+DDS=%d", r3.Failures, rDDS.Failures)
	}
	if r3.Failures < 20 {
		t.Errorf("test signal too weak: 3DP failures = %d", r3.Failures)
	}
}

func TestStripingReliabilityOrdering(t *testing.T) {
	skipInShort(t)
	// Figure 4's qualitative result: Across-Channels beats Across-Banks
	// beats Same-Bank. The separation is cleanest at a moderate TSV rate
	// (143 FIT): Across-Banks still loses whole lines to every address-TSV
	// fault (rate-proportional) while Across-Channels only fails on fault
	// pairs (rate-squared); at 1430 FIT pair failures blur the two.
	opt := testOptions(20000, 1, 143)
	sb := Run(opt, Policy{Predicate: ecc.NewSymbol8(opt.Config, stack.SameBank)})
	ab := Run(opt, Policy{Predicate: ecc.NewSymbol8(opt.Config, stack.AcrossBanks)})
	ac := Run(opt, Policy{Predicate: ecc.NewSymbol8(opt.Config, stack.AcrossChannels)})
	if !(sb.Failures > ab.Failures && ab.Failures > ac.Failures) {
		t.Errorf("striping order violated: same=%d banks=%d channels=%d",
			sb.Failures, ab.Failures, ac.Failures)
	}
	if ab.Failures < 10 {
		t.Errorf("test signal too weak: across-banks failures = %d", ab.Failures)
	}
}

func TestCitadelBeatsSymbolCode(t *testing.T) {
	skipInShort(t)
	// The headline: TSV-Swap + 3DP + DDS outperforms the striped symbol
	// code at high TSV rates.
	opt := testOptions(6000, 20, 1430)
	symbol := Run(opt, Policy{
		Predicate:  ecc.NewSymbol8(opt.Config, stack.AcrossChannels),
		UseTSVSwap: true,
	})
	citadel := Run(opt, Policy{
		Name:       "Citadel",
		Predicate:  ecc.NewParity(opt.Config, parity.ThreeDP),
		UseTSVSwap: true,
		NewSparer:  ddsSparer,
	})
	if citadel.Failures >= symbol.Failures {
		t.Errorf("Citadel (%d) not better than symbol code (%d)",
			citadel.Failures, symbol.Failures)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Policy: "x", Trials: 1000, Failures: 10, FailuresByYear: []int{1, 2, 3, 4, 5, 7, 10}}
	if got := r.Probability(); got != 0.01 {
		t.Errorf("Probability = %v", got)
	}
	if got := r.ProbabilityByYear(3); got != 0.003 {
		t.Errorf("ProbabilityByYear(3) = %v", got)
	}
	if got := r.ProbabilityByYear(0); got != 0 {
		t.Errorf("ProbabilityByYear(0) = %v", got)
	}
	if got := r.ProbabilityByYear(8); got != 0 {
		t.Errorf("ProbabilityByYear(8) = %v", got)
	}
	if r.CI95() <= 0 {
		t.Error("CI95 not positive")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
	var zero Result
	if zero.Probability() != 0 || zero.CI95() != 0 {
		t.Error("zero Result accessors should be 0")
	}
}

func TestCensusBimodal(t *testing.T) {
	skipInShort(t)
	opt := testOptions(4000, 100, 0)
	c := RunCensus(opt, true)
	if c.FaultyBankTotal() == 0 {
		t.Fatal("census saw no faulty banks")
	}
	// Peaks: small (1 row), sub-array (5200), full bank (rows per bank).
	small := c.RowsHistogram[1]
	sub := c.RowsHistogram[5200]
	full := c.RowsHistogram[opt.Config.RowsPerBank]
	if small == 0 || sub == 0 || full == 0 {
		t.Errorf("expected bimodal peaks, got 1:%d 5200:%d 64K:%d", small, sub, full)
	}
	// The valley between 2 and 5200 should be nearly empty: DDS's key
	// observation. Allow the occasional 5201 (sub-array + row) composite.
	for rows, count := range c.RowsHistogram {
		if rows > 4 && rows < 5200 && count > c.FaultyBankTotal()/100 {
			t.Errorf("unexpected mass at %d rows: %d banks", rows, count)
		}
	}
}

func TestCensusTable3Shape(t *testing.T) {
	skipInShort(t)
	// Real Table-I rates: bank failures are rare enough that one failed
	// bank dominates two.
	opt := testOptions(60000, 1, 0)
	c := RunCensus(opt, true)
	if c.TrialsWithBankFailure == 0 {
		t.Fatal("no systems with bank failures")
	}
	p1 := c.FailedBanksPercent(1, false)
	p2 := c.FailedBanksPercent(2, false)
	if p1 <= p2 {
		t.Errorf("P(1 bank)=%.1f%% should exceed P(2 banks)=%.1f%%", p1, p2)
	}
	total := 0.0
	for k := 1; k <= 2; k++ {
		total += c.FailedBanksPercent(k, false)
	}
	total += c.FailedBanksPercent(3, true)
	if math.Abs(total-100) > 0.5 {
		t.Errorf("percentages sum to %.2f, want 100", total)
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	opt := testOptions(500, 10, 0)
	pols := []Policy{
		{Predicate: ecc.NoProtection{}},
		{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)},
	}
	rs := RunAll(opt, pols)
	if len(rs) != 2 || rs[0].Policy != "None" || rs[1].Policy != "3DP" {
		t.Errorf("RunAll order/naming wrong: %+v", rs)
	}
}

func TestScrubClearsTransients(t *testing.T) {
	// Two transient bank faults in different scrub intervals must not
	// collide; simulate directly through trialState.
	cfg := stack.DefaultConfig()
	pol := Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
	ts := newTrialState(cfg, pol, DefaultScrubIntervalHours, false)
	mkBank := func(die, bank uint32, hours float64) fault.Fault {
		return fault.Fault{
			Class:       fault.Bank,
			Persistence: fault.Transient,
			Hours:       hours,
			Region: fault.Region{
				Stack: 0,
				Die:   fault.ExactPattern(die),
				Bank:  fault.ExactPattern(bank),
				Row:   fault.AllPattern(),
				Col:   fault.AllPattern(),
			},
		}
	}
	// Same scrub interval: two bank faults -> loss.
	if when, _ := ts.run([]fault.Fault{mkBank(0, 0, 1), mkBank(1, 1, 2)}); when < 0 {
		t.Error("two concurrent transient bank faults survived (should fail)")
	}
	// Different scrub intervals: first is corrected and scrubbed.
	if when, _ := ts.run([]fault.Fault{mkBank(0, 0, 1), mkBank(1, 1, 30)}); when >= 0 {
		t.Errorf("transient faults in separate scrub intervals failed at %v", when)
	}
}

func TestPermanentFaultsPersistAcrossScrubs(t *testing.T) {
	cfg := stack.DefaultConfig()
	pol := Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
	ts := newTrialState(cfg, pol, DefaultScrubIntervalHours, false)
	mkBank := func(die, bank uint32, hours float64, p fault.Persistence) fault.Fault {
		return fault.Fault{
			Class:       fault.Bank,
			Persistence: p,
			Hours:       hours,
			Region: fault.Region{
				Stack: 0,
				Die:   fault.ExactPattern(die),
				Bank:  fault.ExactPattern(bank),
				Row:   fault.AllPattern(),
				Col:   fault.AllPattern(),
			},
		}
	}
	// Permanent bank fault then, months later, another: without DDS the
	// first is still live -> loss.
	faults := []fault.Fault{
		mkBank(0, 0, 1, fault.Permanent),
		mkBank(1, 1, 5000, fault.Permanent),
	}
	if when, _ := ts.run(faults); when < 0 {
		t.Error("accumulated permanent bank faults survived without DDS")
	}
	// With DDS the first bank is spared at the next scrub.
	polDDS := pol
	polDDS.NewSparer = ddsSparer
	tsDDS := newTrialState(cfg, polDDS, DefaultScrubIntervalHours, false)
	if when, _ := tsDDS.run(faults); when >= 0 {
		t.Errorf("DDS failed to spare first bank; lost at %v", when)
	}
}

func TestMergeResults(t *testing.T) {
	a := Result{Policy: "x", Trials: 100, Failures: 3, FailuresByYear: []int{1, 1, 1, 2, 2, 3, 3}}
	b := Result{Policy: "x", Trials: 200, Failures: 1, FailuresByYear: []int{0, 0, 0, 1, 1, 1, 1}}
	m := Merge(a, b)
	if m.Trials != 300 || m.Failures != 4 {
		t.Errorf("merge totals wrong: %+v", m)
	}
	if m.FailuresByYear[6] != 4 || m.FailuresByYear[0] != 1 {
		t.Errorf("merge by-year wrong: %v", m.FailuresByYear)
	}
	if got := m.Probability(); math.Abs(got-4.0/300) > 1e-12 {
		t.Errorf("merged probability %v", got)
	}
}

func TestRunAdaptiveStopsAtTarget(t *testing.T) {
	opt := AdaptiveOptions{
		Options:        testOptions(2000, 100, 0),
		TargetFailures: 10,
		BatchTrials:    2000,
		MaxTrials:      20000,
	}
	r := RunAdaptive(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	if r.Failures < 10 {
		t.Errorf("stopped with %d failures (target 10, trials %d)", r.Failures, r.Trials)
	}
	if r.Trials > opt.MaxTrials {
		t.Errorf("exceeded max trials: %d", r.Trials)
	}
}

func TestRunAdaptiveRespectsCap(t *testing.T) {
	// Citadel at base rates almost never fails: the cap must stop the run.
	opt := AdaptiveOptions{
		Options:        testOptions(1000, 1, 0),
		TargetFailures: 100,
		BatchTrials:    1000,
		MaxTrials:      3000,
	}
	pol := Policy{
		Predicate: ecc.NewParity(opt.Config, parity.ThreeDP),
		NewSparer: ddsSparer,
	}
	r := RunAdaptive(opt, pol)
	if r.Trials != 3000 {
		t.Errorf("trials = %d, want exactly the 3000 cap", r.Trials)
	}
}

func TestCauseCountsRecorded(t *testing.T) {
	skipInShort(t)
	opt := testOptions(5000, 30, 0)
	res := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	if res.Failures == 0 {
		t.Fatal("no failures to classify")
	}
	total := 0
	for _, n := range res.CauseCounts {
		total += n
	}
	if total != res.Failures {
		t.Errorf("cause counts sum %d != failures %d (%v)", total, res.Failures, res.CauseCounts)
	}
	// 1DP's proximate causes at boosted memory rates must be memory fault
	// classes, not TSVs (rate 0).
	for cause := range res.CauseCounts {
		if cause == "data-tsv" || cause == "addr-tsv" {
			t.Errorf("TSV cause recorded with zero TSV rate: %v", res.CauseCounts)
		}
	}
}

func TestOptionsDefaultsPinned(t *testing.T) {
	// The effective defaults are part of the package contract: trials,
	// scrub cadence, lifetime, and worker clamping must not drift.
	var o Options
	d := o.withDefaults()
	if d.Trials != 100000 {
		t.Errorf("default Trials = %d, want 100000", d.Trials)
	}
	if d.ScrubIntervalHours != DefaultScrubIntervalHours {
		t.Errorf("default ScrubIntervalHours = %v, want %v", d.ScrubIntervalHours, float64(DefaultScrubIntervalHours))
	}
	if d.LifetimeHours != fault.LifetimeHours {
		t.Errorf("default LifetimeHours = %v, want %v", d.LifetimeHours, fault.LifetimeHours)
	}
	max := runtime.GOMAXPROCS(0)
	for _, workers := range []int{0, -1, -100, max + 1, max + 1000} {
		o := Options{Workers: workers}
		if got := o.withDefaults().Workers; got != max {
			t.Errorf("Workers=%d clamped to %d, want GOMAXPROCS=%d", workers, got, max)
		}
	}
	o2 := Options{Workers: 1}
	if got := o2.withDefaults().Workers; got != 1 {
		t.Errorf("Workers=1 changed to %d", got)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := testOptions(10000, 10, 0)
	res := RunContext(ctx, opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)})
	if !res.Partial {
		t.Error("pre-cancelled run not marked Partial")
	}
	if res.Trials != 0 {
		t.Errorf("pre-cancelled run completed %d trials, want 0", res.Trials)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", res.Err)
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	// A large run cancelled shortly after start must return promptly with
	// the trials completed so far.
	opt := testOptions(4_000_000, 1, 0)
	opt.Seed = 11
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := RunContext(ctx, opt, Policy{Predicate: ecc.NoProtection{}})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if !res.Partial {
		t.Fatal("cancelled run not marked Partial")
	}
	if res.Trials <= 0 || res.Trials >= opt.Trials {
		t.Errorf("partial Trials = %d, want in (0, %d)", res.Trials, opt.Trials)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", res.Err)
	}
	// The partial estimate is still an unbiased sample: its failure count
	// must be consistent with the trials that did run.
	if res.Failures > res.Trials {
		t.Errorf("failures %d exceed completed trials %d", res.Failures, res.Trials)
	}
}

func TestRunContextCompleteRunNotPartial(t *testing.T) {
	// A context that is still live when the trial budget finishes must not
	// mark the result partial.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := testOptions(1000, 10, 0)
	res := RunContext(ctx, opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)})
	if res.Partial || res.Err != nil {
		t.Errorf("complete run marked partial: %+v", res)
	}
	if res.Trials != opt.Trials {
		t.Errorf("Trials = %d, want %d", res.Trials, opt.Trials)
	}
}

func TestRunCensusContextCancel(t *testing.T) {
	opt := testOptions(4_000_000, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	c := RunCensusContext(ctx, opt, true)
	if !c.Partial {
		t.Fatal("cancelled census not marked Partial")
	}
	if c.Trials <= 0 || c.Trials >= opt.Trials {
		t.Errorf("partial census Trials = %d, want in (0, %d)", c.Trials, opt.Trials)
	}
}

func TestRunAdaptiveContextCancel(t *testing.T) {
	// Adaptive mode keeps adding batches until the failure target; a
	// cancelled context must stop it at a batch boundary with Partial set.
	opt := AdaptiveOptions{
		Options:        testOptions(1000, 1, 0),
		TargetFailures: 1_000_000, // unreachable
		BatchTrials:    1000,
		MaxTrials:      50_000_000,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := RunAdaptiveContext(ctx, opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)})
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancelled adaptive run took %v", elapsed)
	}
	if !r.Partial {
		t.Error("cancelled adaptive run not marked Partial")
	}
	if r.Trials <= 0 || r.Trials >= opt.MaxTrials {
		t.Errorf("partial adaptive Trials = %d", r.Trials)
	}
}

func TestMergePropagatesPartial(t *testing.T) {
	a := Result{Policy: "x", Trials: 100, Failures: 1, FailuresByYear: make([]int, 7)}
	b := Result{Policy: "x", Trials: 50, Failures: 1, FailuresByYear: make([]int, 7),
		Partial: true, Err: context.Canceled}
	m := Merge(a, b)
	if !m.Partial {
		t.Error("merge of a partial result not marked Partial")
	}
	if !errors.Is(m.Err, context.Canceled) {
		t.Errorf("merged Err = %v", m.Err)
	}
	m2 := Merge(a, Result{Policy: "x", Trials: 10, FailuresByYear: make([]int, 7)})
	if m2.Partial || m2.Err != nil {
		t.Error("merge of complete results spuriously marked Partial")
	}
}
