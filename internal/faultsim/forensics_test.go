package faultsim

import (
	"context"
	"io"
	"reflect"
	"testing"

	"repro/internal/ecc"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/parity"
)

// forensicOptions is a fixed-seed configuration hot enough to produce
// failures in a few thousand trials.
func forensicOptions(trials int) Options {
	opt := testOptions(trials, 40, 1000)
	opt.Seed = 4242
	opt.Workers = 2
	opt.Forensics = true
	return opt
}

func citadelPolicy() Policy {
	cfg := testOptions(0, 1, 0).Config
	return Policy{
		Name:       "Citadel",
		Predicate:  ecc.NewParity(cfg, parity.ThreeDP),
		UseTSVSwap: true,
		NewSparer:  ddsSparer,
	}
}

// TestBreakdownSumsToFailures pins the acceptance criterion: the per-mode
// breakdown counts of a forensics run must sum exactly to Failures.
func TestBreakdownSumsToFailures(t *testing.T) {
	skipInShort(t)
	opt := forensicOptions(4000)
	res := Run(opt, citadelPolicy())
	if res.Failures == 0 {
		t.Fatal("expected failures at these rates; breakdown test needs them")
	}
	if res.Breakdown == nil {
		t.Fatal("Forensics on but Breakdown nil")
	}
	sum := 0
	for mode, n := range res.Breakdown {
		if n <= 0 {
			t.Errorf("mode %q has non-positive count %d", mode, n)
		}
		sum += n
	}
	if sum != res.Failures {
		t.Fatalf("breakdown sums to %d, Failures = %d (%v)", sum, res.Failures, res.Breakdown)
	}
	if len(res.Exemplars) == 0 {
		t.Fatal("no exemplars captured")
	}
	if len(res.Exemplars) > 8 {
		t.Fatalf("exemplars exceed default cap: %d", len(res.Exemplars))
	}
	for i, ex := range res.Exemplars {
		if len(ex.Faults) == 0 || len(ex.Reasons) == 0 || ex.Mode == "" {
			t.Errorf("exemplar %d incomplete: %+v", i, ex)
		}
		if ex.BaseSeed != opt.Seed {
			t.Errorf("exemplar %d BaseSeed = %d, want %d", i, ex.BaseSeed, opt.Seed)
		}
	}
}

// TestForensicsOffKeepsResultClean: without the opt-in, the new Result
// fields must stay nil so golden comparisons of existing runs still hold.
func TestForensicsOffKeepsResultClean(t *testing.T) {
	skipInShort(t)
	opt := testOptions(500, 40, 1000)
	res := Run(opt, citadelPolicy())
	if res.Breakdown != nil || res.Exemplars != nil {
		t.Fatalf("forensics fields set without opt-in: %v %v", res.Breakdown, res.Exemplars)
	}
}

// TestForensicReplayGolden is the golden replay test: every exemplar of a
// fixed-seed run, replayed from its recorded (seed, worker, trial)
// coordinates, must reproduce the identical uncorrectable fault set,
// failure time, mode, and reason chain.
func TestForensicReplayGolden(t *testing.T) {
	skipInShort(t)
	opt := forensicOptions(4000)
	pol := citadelPolicy()
	res := Run(opt, pol)
	if len(res.Exemplars) == 0 {
		t.Fatal("no exemplars to replay")
	}
	for i, ex := range res.Exemplars {
		got, ok := ReplayForensic(opt, pol, ex)
		if !ok {
			t.Fatalf("exemplar %d (%s) did not reproduce a failure", i, ex)
		}
		if !reflect.DeepEqual(got.Faults, ex.Faults) {
			t.Errorf("exemplar %d fault set differs:\n got %v\nwant %v", i, got.Faults, ex.Faults)
		}
		if got.FailureHours != ex.FailureHours || got.Cause != ex.Cause || got.Mode != ex.Mode {
			t.Errorf("exemplar %d verdict differs: got (%.1fh %s %s), want (%.1fh %s %s)",
				i, got.FailureHours, got.Cause, got.Mode, ex.FailureHours, ex.Cause, ex.Mode)
		}
		if !reflect.DeepEqual(got.Reasons, ex.Reasons) {
			t.Errorf("exemplar %d reason chain differs:\n got %v\nwant %v", i, got.Reasons, ex.Reasons)
		}
	}
}

// TestForensicsIncrementalMatchesBatch extends the engine differential to
// the forensic outputs: breakdown and exemplars must be identical across
// the incremental and batch correctability paths.
func TestForensicsIncrementalMatchesBatch(t *testing.T) {
	skipInShort(t)
	opt := forensicOptions(3000)
	opt.Workers = 1
	pol := citadelPolicy()
	inc := Run(opt, pol)
	bo := opt
	bo.DisableIncremental = true
	batch := Run(bo, pol)
	if !reflect.DeepEqual(inc.Breakdown, batch.Breakdown) {
		t.Errorf("breakdown differs:\n inc   %v\n batch %v", inc.Breakdown, batch.Breakdown)
	}
	if !reflect.DeepEqual(inc.Exemplars, batch.Exemplars) {
		t.Errorf("exemplars differ:\n inc   %v\n batch %v", inc.Exemplars, batch.Exemplars)
	}
}

// TestMergeForensics checks Merge's nil preservation and additivity.
func TestMergeForensics(t *testing.T) {
	a := Result{Trials: 10, Failures: 1, Breakdown: map[string]int{"bank": 1},
		Exemplars: []Forensic{{Worker: 0, Trial: 3}}}
	b := Result{Trials: 10, Failures: 2, Breakdown: map[string]int{"bank": 1, "row": 1},
		Exemplars: []Forensic{{Worker: 1, Trial: 5}}}
	m := Merge(a, b)
	if m.Breakdown["bank"] != 2 || m.Breakdown["row"] != 1 {
		t.Errorf("merged breakdown wrong: %v", m.Breakdown)
	}
	if len(m.Exemplars) != 2 {
		t.Errorf("merged exemplars wrong: %v", m.Exemplars)
	}
	// Merging forensics-free results must keep the fields nil.
	plain := Merge(Result{Trials: 5}, Result{Trials: 5})
	if plain.Breakdown != nil || plain.Exemplars != nil {
		t.Errorf("merge of plain results grew forensics fields: %v %v", plain.Breakdown, plain.Exemplars)
	}
}

// TestAdaptiveForensics: the adaptive driver must carry forensics across
// batches, with per-batch seeds recorded so exemplars stay replayable.
func TestAdaptiveForensics(t *testing.T) {
	skipInShort(t)
	opt := AdaptiveOptions{Options: forensicOptions(1000), TargetFailures: 5, MaxTrials: 20000}
	pol := citadelPolicy()
	res := RunAdaptive(opt, pol)
	if res.Failures == 0 {
		t.Skip("no failures accumulated; cannot exercise forensics")
	}
	sum := 0
	for _, n := range res.Breakdown {
		sum += n
	}
	if sum != res.Failures {
		t.Fatalf("adaptive breakdown sums to %d, Failures = %d", sum, res.Failures)
	}
	if len(res.Exemplars) == 0 {
		t.Fatal("no exemplars in adaptive run")
	}
	ex := res.Exemplars[0]
	got, ok := ReplayForensic(opt.Options, pol, ex)
	if !ok {
		t.Fatalf("adaptive exemplar did not replay: %s", ex)
	}
	if !reflect.DeepEqual(got.Faults, ex.Faults) {
		t.Fatalf("adaptive exemplar fault set differs:\n got %v\nwant %v", got.Faults, ex.Faults)
	}
}

// TestRunTraceEvents: a recorder wired into Options captures trial spans
// and failure instants, and exports valid JSON.
func TestRunTraceEvents(t *testing.T) {
	skipInShort(t)
	opt := forensicOptions(2000)
	opt.Forensics = false
	opt.RunID = "r-test-trace"
	opt.Trace = trace.New(trace.Options{Capacity: 4096, RunID: opt.RunID})
	res := Run(opt, citadelPolicy())
	events, _ := opt.Trace.Snapshot()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	var sawTrial, sawRun, sawFailure bool
	for _, ev := range events {
		switch ev.Name {
		case "trial":
			sawTrial = true
		case "run":
			sawRun = true
		case "uncorrectable":
			sawFailure = true
		}
	}
	if !sawTrial || !sawRun {
		t.Errorf("missing event kinds: trial=%v run=%v", sawTrial, sawRun)
	}
	if res.Failures > 0 && !sawFailure {
		t.Errorf("run had %d failures but no uncorrectable events", res.Failures)
	}
	if err := opt.Trace.WriteChromeTrace(io.Discard); err != nil {
		t.Fatalf("chrome trace export failed: %v", err)
	}
}

// TestMetricsScrapeDuringCensusRace scrapes the process-wide registry
// concurrently with a running census; the race detector validates that the
// registry's atomics and the census worker counters never conflict.
func TestMetricsScrapeDuringCensusRace(t *testing.T) {
	opt := testOptions(2000, 25, 500)
	opt.Workers = 2
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Default().WritePrometheus(io.Discard)
			}
		}
	}()
	c := RunCensusContext(context.Background(), opt, true)
	close(stop)
	<-scraped
	if c.Trials != opt.Trials {
		t.Fatalf("census completed %d trials, want %d", c.Trials, opt.Trials)
	}
}
