package faultsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ecc"
	"repro/internal/parity"
)

// Regression tests for the statistics/reproducibility fixes: Merge with
// mismatched horizons, seed-stream decorrelation, and progress reporting.

func TestMergeMismatchedYearSlices(t *testing.T) {
	// Pre-fix, Merge silently dropped FailuresByYear whenever the slice
	// lengths differed (as with RunAdaptive's zero-value accumulator).
	a := Result{Policy: "x", Trials: 100, Failures: 3, FailuresByYear: []int{1, 1, 2, 2, 3, 3, 3}}
	b := Result{Policy: "x", Trials: 50, Failures: 1, FailuresByYear: []int{0, 1, 1}}
	m := Merge(a, b)
	if len(m.FailuresByYear) != 7 {
		t.Fatalf("merged horizon = %d years, want 7: %v", len(m.FailuresByYear), m.FailuresByYear)
	}
	// Within b's horizon the cumulative counts add; beyond it b carries
	// its final count (1) forward: a failure by year 2 is a failure by
	// every later year.
	want := []int{1, 2, 3, 3, 4, 4, 4}
	for i, w := range want {
		if m.FailuresByYear[i] != w {
			t.Errorf("year %d: merged %d, want %d (full: %v)", i+1, m.FailuresByYear[i], w, m.FailuresByYear)
		}
	}
	// Order must not matter.
	m2 := Merge(b, a)
	for i := range want {
		if m2.FailuresByYear[i] != want[i] {
			t.Errorf("reversed merge year %d: %d, want %d", i+1, m2.FailuresByYear[i], want[i])
		}
	}
	// Zero-value accumulator (empty slice) keeps the other side's curve.
	acc := Merge(Result{}, a)
	if len(acc.FailuresByYear) != 7 || acc.FailuresByYear[6] != 3 {
		t.Errorf("accumulator merge lost the curve: %v", acc.FailuresByYear)
	}
}

func TestMergePropagatesErrSymmetrically(t *testing.T) {
	errA := errors.New("a cancelled")
	errB := errors.New("b cancelled")
	if m := Merge(Result{Err: errA}, Result{}); !errors.Is(m.Err, errA) {
		t.Errorf("a.Err dropped: %v", m.Err)
	}
	// Pre-fix, out.Err came from a alone; b's cancellation cause vanished.
	if m := Merge(Result{}, Result{Err: errB}); !errors.Is(m.Err, errB) {
		t.Errorf("b.Err dropped: %v", m.Err)
	}
	if m := Merge(Result{Err: errA}, Result{Err: errB}); !errors.Is(m.Err, errA) {
		t.Errorf("first cause should win when both set: %v", m.Err)
	}
}

func TestDeriveSeedUniqueAcrossStreams(t *testing.T) {
	// The old scheme derived batch seeds as Seed+batch*1e6 and worker
	// seeds as Seed+worker*1e9, so (batch=1000, worker=0) collided with
	// (batch=0, worker=1) — and nearby seeds fed math/rand correlated
	// streams. Every (batch, worker) pair must map to a distinct seed.
	const base = int64(42)
	seen := make(map[int64]string)
	check := func(seed int64, label string) {
		t.Helper()
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision: %s and %s both derive %d", prev, label, seed)
		}
		seen[seed] = label
	}
	for worker := uint64(0); worker < 256; worker++ {
		check(deriveSeed(base, worker), fmt.Sprintf("worker %d", worker))
	}
	for batch := uint64(0); batch < 4096; batch++ {
		batchSeed := deriveSeed(base, batchStreamBase+batch)
		check(batchSeed, fmt.Sprintf("batch %d", batch))
		// A batch seed is itself a base for that batch's worker streams.
		for worker := uint64(0); worker < 8; worker++ {
			check(deriveSeed(batchSeed, worker), fmt.Sprintf("batch %d worker %d", batch, worker))
		}
	}
}

func TestDeriveSeedDecorrelatesNearbyBases(t *testing.T) {
	// Adjacent base seeds must not produce adjacent derived seeds (the
	// additive scheme handed math/rand nearly identical states).
	for base := int64(0); base < 64; base++ {
		d := deriveSeed(base, 0) - deriveSeed(base+1, 0)
		if d == 1 || d == -1 {
			t.Errorf("bases %d and %d derive adjacent seeds", base, base+1)
		}
	}
}

func TestRunAllPairedSeedsReproducible(t *testing.T) {
	// Paired comparisons (same fault stream per policy) must be exactly
	// reproducible for a fixed worker count, across repeated RunAll calls.
	opt := testOptions(3000, 30, 0)
	opt.Workers = 4
	pols := []Policy{
		{Predicate: ecc.NewParity(opt.Config, parity.OneDP)},
		{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)},
	}
	a := RunAll(opt, pols)
	b := RunAll(opt, pols)
	for i := range pols {
		if a[i].Failures != b[i].Failures || a[i].Trials != b[i].Trials {
			t.Errorf("policy %s: run 1 %d/%d failures, run 2 %d/%d — not reproducible",
				a[i].Policy, a[i].Failures, a[i].Trials, b[i].Failures, b[i].Trials)
		}
		for y := range a[i].FailuresByYear {
			if a[i].FailuresByYear[y] != b[i].FailuresByYear[y] {
				t.Errorf("policy %s year %d: %d vs %d", a[i].Policy, y+1,
					a[i].FailuresByYear[y], b[i].FailuresByYear[y])
			}
		}
	}
}

func TestRunProgressFinalSnapshot(t *testing.T) {
	opt := testOptions(2000, 30, 0)
	opt.Workers = 2
	opt.ProgressInterval = time.Millisecond
	var last Progress
	finals := 0
	opt.Progress = func(p Progress) {
		last = p
		if p.Done {
			finals++
		}
	}
	res := Run(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	if finals != 1 {
		t.Fatalf("got %d final snapshots, want exactly 1", finals)
	}
	if !last.Done {
		t.Errorf("last snapshot not the final one: %+v", last)
	}
	if last.TrialsDone != res.Trials || last.TrialsTarget != opt.Trials {
		t.Errorf("final snapshot trials %d/%d, result %d/%d",
			last.TrialsDone, last.TrialsTarget, res.Trials, opt.Trials)
	}
	if last.Failures != res.Failures {
		t.Errorf("final snapshot failures %d, result %d", last.Failures, res.Failures)
	}
	if res.Trials > 0 && last.ScrubPasses <= 0 {
		t.Errorf("no scrub passes reported over %d trials", res.Trials)
	}
}

func TestAdaptiveProgressContinuous(t *testing.T) {
	opt := AdaptiveOptions{
		Options:        testOptions(1000, 100, 0),
		TargetFailures: 1 << 30, // never reached: exercises multiple batches
		BatchTrials:    1000,
		MaxTrials:      4000,
	}
	opt.ProgressInterval = time.Millisecond
	var snaps []Progress
	opt.Progress = func(p Progress) { snaps = append(snaps, p) }
	res := RunAdaptive(opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.ThreeDP)})
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	// Snapshots are serialized (ticker joined before batch end), so the
	// slice append above is race-free; trials must never move backwards
	// across batch boundaries.
	prev := 0
	for i, p := range snaps {
		if p.TrialsDone < prev {
			t.Fatalf("snapshot %d: trials went backwards %d -> %d", i, prev, p.TrialsDone)
		}
		prev = p.TrialsDone
		if p.TrialsTarget != opt.MaxTrials {
			t.Errorf("snapshot %d: target %d, want adaptive cap %d", i, p.TrialsTarget, opt.MaxTrials)
		}
		if (i == len(snaps)-1) != p.Done {
			t.Errorf("snapshot %d: Done=%t out of place", i, p.Done)
		}
	}
	final := snaps[len(snaps)-1]
	if final.TrialsDone != res.Trials || final.Failures != res.Failures {
		t.Errorf("final snapshot %d trials/%d failures, result %d/%d",
			final.TrialsDone, final.Failures, res.Trials, res.Failures)
	}
}

func TestAdaptiveReproducibleAcrossBatchSizes(t *testing.T) {
	// Same total trial budget split into different batch counts must give
	// a deterministic result per batching (each batch has its own derived
	// stream), and the same batching twice must agree exactly.
	opt := AdaptiveOptions{
		Options:        testOptions(1000, 100, 0),
		TargetFailures: 1 << 30,
		BatchTrials:    500,
		MaxTrials:      2000,
	}
	pol := Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)}
	a := RunAdaptive(opt, pol)
	b := RunAdaptive(opt, pol)
	if a.Failures != b.Failures || a.Trials != b.Trials {
		t.Errorf("adaptive rerun diverged: %d/%d vs %d/%d failures/trials",
			a.Failures, a.Trials, b.Failures, b.Trials)
	}
}

func TestRunContextCancelReportsProgress(t *testing.T) {
	// A cancelled run must still deliver its final snapshot so the caller
	// can show what it was doing.
	opt := testOptions(200000, 10, 0)
	opt.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	var final Progress
	opt.Progress = func(p Progress) {
		if p.Done {
			final = p
		}
		if p.TrialsDone > 0 {
			cancel()
		}
	}
	opt.ProgressInterval = time.Millisecond
	res := RunContext(ctx, opt, Policy{Predicate: ecc.NewParity(opt.Config, parity.OneDP)})
	cancel()
	if !res.Partial {
		t.Skip("run finished before cancellation took effect")
	}
	if !final.Done {
		t.Fatal("cancelled run delivered no final snapshot")
	}
	if final.TrialsDone != res.Trials {
		t.Errorf("final snapshot %d trials, partial result %d", final.TrialsDone, res.Trials)
	}
}
