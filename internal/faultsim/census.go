package faultsim

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/tsv"
)

// Census tallies the anatomy of permanent faults over device lifetimes,
// reproducing the analyses behind the paper's Figure 17 (rows needed to
// spare a faulty bank is bimodal) and Table III (number of failed banks in
// systems with at least one).
type Census struct {
	// Trials counts the lifetimes actually simulated; fewer than
	// requested when the census was cancelled (see Partial).
	Trials int
	// RowsHistogram[n] counts faulty banks that would need n spare rows.
	RowsHistogram map[int]int
	// FailedBanksPerSystem[k] counts trials whose system ended with exactly
	// k failed banks (banks needing more than FailedBankThreshold rows).
	FailedBanksPerSystem map[int]int
	// TrialsWithBankFailure counts trials with at least one failed bank.
	TrialsWithBankFailure int
	// FailedBankThreshold is the DDS escalation rule (paper: 4 rows).
	FailedBankThreshold int
	// Partial reports that the census was cancelled before all requested
	// trials completed; the tallies cover the completed trials only.
	Partial bool
}

// FaultyBankTotal returns the total number of faulty banks observed.
func (c Census) FaultyBankTotal() int {
	total := 0
	for _, n := range c.RowsHistogram {
		total += n
	}
	return total
}

// RowsPercent returns the percentage of faulty banks needing exactly n
// spare rows.
func (c Census) RowsPercent(n int) float64 {
	total := c.FaultyBankTotal()
	if total == 0 {
		return 0
	}
	return 100 * float64(c.RowsHistogram[n]) / float64(total)
}

// FailedBanksPercent returns the Table-III distribution: the percentage of
// bank-failure systems having exactly k failed banks (k>=3 aggregates into
// the last bucket when aggregate3Plus is true).
func (c Census) FailedBanksPercent(k int, aggregate3Plus bool) float64 {
	if c.TrialsWithBankFailure == 0 {
		return 0
	}
	count := 0
	if aggregate3Plus && k >= 3 {
		for kk, n := range c.FailedBanksPerSystem {
			if kk >= 3 {
				count += n
			}
		}
	} else {
		count = c.FailedBanksPerSystem[k]
	}
	return 100 * float64(count) / float64(c.TrialsWithBankFailure)
}

// SortedRowCounts returns the distinct row counts in ascending order.
func (c Census) SortedRowCounts() []int {
	keys := make([]int, 0, len(c.RowsHistogram))
	for k := range c.RowsHistogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// RunCensus simulates lifetimes and tallies permanent-fault anatomy.
// useTSVSwap filters TSV faults through TSV-SWAP first, as the DDS analysis
// assumes (paper §V-D: "all systems employ TSV-Swap for the remainder").
func RunCensus(opt Options, useTSVSwap bool) Census {
	return RunCensusContext(context.Background(), opt, useTSVSwap)
}

// RunCensusContext is RunCensus under a context: workers check ctx
// between trial batches and a cancelled run returns the tallies gathered
// so far, marked Partial.
func RunCensusContext(ctx context.Context, opt Options, useTSVSwap bool) Census {
	opt = opt.withDefaults()
	c := Census{
		RowsHistogram:        make(map[int]int),
		FailedBanksPerSystem: make(map[int]int),
		FailedBankThreshold:  4,
	}
	mRunsActive.Inc()
	defer mRunsActive.Dec()
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (opt.Trials + opt.Workers - 1) / opt.Workers
	for w := 0; w < opt.Workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > opt.Trials {
			hi = opt.Trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(deriveSeed(opt.Seed, uint64(worker))))
			sampler := fault.NewSampler(opt.Config, opt.Rates)
			rowsHist := make(map[int]int)
			failedHist := make(map[int]int)
			done := 0
			withFailure := 0
			dies := opt.Config.DataDies + opt.Config.ECCDies
			// Per-worker pools, reset per trial (same allocation discipline
			// as the lifetime engine's trialState).
			var swapper *tsv.Swapper
			if useTSVSwap {
				swapper = tsv.NewSwapper(opt.Config)
			}
			var trialBuf []fault.Fault
			// rows needed per bank, keyed by dense bank id incl. the
			// metadata die.
			perBank := map[int]int{}
			for t := 0; t < n; t++ {
				if t%cancelCheckInterval == 0 && ctx.Err() != nil {
					break
				}
				done++
				trialBuf = sampler.AppendLifetime(rng, opt.LifetimeHours, trialBuf[:0])
				fs := trialBuf
				if swapper != nil {
					swapper.Reset()
				}
				clear(perBank)
				for _, f := range fs {
					if f.Persistence != fault.Permanent {
						continue
					}
					if swapper != nil && f.Class.IsTSV() {
						if _, repaired := swapper.Apply(f); repaired {
							continue
						}
					}
					rows := f.RowsNeedingSparing(opt.Config)
					for die := 0; die < dies; die++ {
						if !f.Region.Die.Contains(uint32(die)) {
							continue
						}
						for bank := 0; bank < opt.Config.BanksPerDie; bank++ {
							if !f.Region.Bank.Contains(uint32(bank)) {
								continue
							}
							id := (f.Region.Stack*dies+die)*opt.Config.BanksPerDie + bank
							perBank[id] += rows
							if perBank[id] > opt.Config.RowsPerBank {
								perBank[id] = opt.Config.RowsPerBank
							}
						}
					}
				}
				failed := 0
				for _, rows := range perBank {
					rowsHist[rows]++
					if rows > c.FailedBankThreshold {
						failed++
					}
				}
				if failed > 0 {
					withFailure++
					failedHist[failed]++
				}
			}
			mTrials.Add(int64(done))
			mu.Lock()
			c.Trials += done
			for k, v := range rowsHist {
				c.RowsHistogram[k] += v
			}
			for k, v := range failedHist {
				c.FailedBanksPerSystem[k] += v
			}
			c.TrialsWithBankFailure += withFailure
			mu.Unlock()
		}(w, hi-lo)
	}
	wg.Wait()
	if ctx.Err() != nil && c.Trials < opt.Trials {
		c.Partial = true
	}
	return c
}
