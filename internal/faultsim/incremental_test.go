package faultsim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// enginePolicies returns the policy zoo the engine-level differential and
// allocation tests sweep: every predicate family, with and without
// TSV-SWAP and DDS.
func enginePolicies(cfg stack.Config) []Policy {
	return []Policy{
		{Predicate: ecc.NewParity(cfg, parity.OneDP)},
		{Predicate: ecc.NewParity(cfg, parity.ThreeDP)},
		{
			Name:       "Citadel",
			Predicate:  ecc.NewParity(cfg, parity.ThreeDP),
			UseTSVSwap: true,
			NewSparer:  ddsSparer,
		},
		{Predicate: ecc.NewSymbol8(cfg, stack.SameBank)},
		{Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels), UseTSVSwap: true},
		{Predicate: ecc.NewBCH6EC7ED(cfg)},
		{Predicate: ecc.NoProtection{}},
	}
}

// TestIncrementalMatchesBatchEngine runs the full engine twice per policy —
// incremental evaluation vs the DisableIncremental batch oracle — and
// requires bit-identical Results. This is the end-to-end companion of the
// per-predicate differential tests in internal/ecc.
func TestIncrementalMatchesBatchEngine(t *testing.T) {
	skipInShort(t)
	opt := testOptions(1500, 25, 800)
	opt.Seed = 12345
	opt.Workers = 1
	for _, pol := range enginePolicies(opt.Config) {
		pol := pol
		t.Run(pol.name(), func(t *testing.T) {
			inc := Run(opt, pol)
			optBatch := opt
			optBatch.DisableIncremental = true
			batch := Run(optBatch, pol)
			if !reflect.DeepEqual(inc, batch) {
				t.Errorf("incremental and batch engines disagree:\nincremental: %+v\nbatch:       %+v", inc, batch)
			}
		})
	}
}

// trialSequences pre-generates fault lifetimes (bypassing the sampler) so
// allocation measurements exercise only the trial loop.
func trialSequences(opt Options, n int) [][]fault.Fault {
	rng := rand.New(rand.NewSource(opt.Seed))
	s := fault.NewSampler(opt.Config, opt.Rates)
	out := make([][]fault.Fault, 0, n)
	for len(out) < n {
		fs := s.SampleLifetime(rng, opt.LifetimeHours)
		if len(fs) >= 2 {
			out = append(out, fs)
		}
	}
	return out
}

// TestTrialLoopAllocFree verifies the acceptance criterion directly: the
// steady-state multi-fault trial loop performs zero heap allocations per
// trial once the per-worker pools are warm, for every policy in the zoo.
func TestTrialLoopAllocFree(t *testing.T) {
	opt := testOptions(0, 40, 1000).withDefaults()
	seqs := trialSequences(opt, 50)
	for _, pol := range enginePolicies(opt.Config) {
		pol := pol
		t.Run(pol.name(), func(t *testing.T) {
			ts := newTrialState(opt.Config, pol, opt.ScrubIntervalHours, false)
			replay := func() {
				for _, fs := range seqs {
					ts.run(fs)
				}
			}
			replay() // warm pools and scratch buffers
			if allocs := testing.AllocsPerRun(10, replay); allocs != 0 {
				t.Errorf("%s: trial loop allocates %.2f per %d-trial replay, want 0",
					pol.name(), allocs, len(seqs))
			}
		})
	}
}

// TestSingleFaultFastPathAllocFree covers runSingle the same way.
func TestSingleFaultFastPathAllocFree(t *testing.T) {
	opt := testOptions(0, 40, 1000).withDefaults()
	seqs := trialSequences(opt, 30)
	for _, pol := range enginePolicies(opt.Config) {
		pol := pol
		t.Run(pol.name(), func(t *testing.T) {
			ts := newTrialState(opt.Config, pol, opt.ScrubIntervalHours, false)
			replay := func() {
				for _, fs := range seqs {
					ts.runSingle(fs[0])
				}
			}
			replay()
			if allocs := testing.AllocsPerRun(10, replay); allocs != 0 {
				t.Errorf("%s: runSingle allocates %.2f per %d-trial replay, want 0",
					pol.name(), allocs, len(seqs))
			}
		})
	}
}

// TestAppendLifetimeAllocFree verifies the sampling half of the trial loop:
// appending into a reused buffer allocates nothing once the buffer has
// grown to working size, and draws the same faults as SampleLifetime.
func TestAppendLifetimeAllocFree(t *testing.T) {
	opt := testOptions(0, 40, 1000).withDefaults()
	s := fault.NewSampler(opt.Config, opt.Rates)
	// Identity: same seed -> same faults through either entry point.
	fsA := s.SampleLifetime(rand.New(rand.NewSource(5)), opt.LifetimeHours)
	fsB := s.AppendLifetime(rand.New(rand.NewSource(5)), opt.LifetimeHours, nil)
	if !reflect.DeepEqual(fsA, fsB) {
		t.Fatalf("AppendLifetime diverges from SampleLifetime:\n%v\nvs\n%v", fsA, fsB)
	}
	rng := rand.New(rand.NewSource(6))
	buf := make([]fault.Fault, 0, 64)
	replay := func() {
		for i := 0; i < 20; i++ {
			buf = s.AppendLifetime(rng, opt.LifetimeHours, buf[:0])
		}
	}
	replay()
	if allocs := testing.AllocsPerRun(10, replay); allocs != 0 {
		t.Errorf("AppendLifetime allocates %.2f per 20-draw replay, want 0", allocs)
	}
}

// --- Retention-safety: the liveFaults aliasing hazard ------------------

// poisonFault is the garbage value the harness writes over the scratch
// buffer between evaluations.
func poisonFault() fault.Fault {
	return fault.Fault{
		Class:       fault.Bank,
		Persistence: fault.Permanent,
		Hours:       -1,
		Region: fault.Region{
			Stack: 0,
			Die:   fault.AllPattern(),
			Bank:  fault.AllPattern(),
			Row:   fault.AllPattern(),
			Col:   fault.AllPattern(),
		},
	}
}

// replayVerdicts evaluates p on growing prefixes of each sequence through
// one reused scratch buffer — exactly the engine's liveFaults discipline.
// With poison set, the buffer contents are overwritten with garbage after
// every call and restored before the next, so any predicate that retains
// the slice between calls observes the garbage and changes its verdicts.
func replayVerdicts(p ecc.Predicate, seqs [][]fault.Fault, poison bool) []bool {
	var verdicts []bool
	var scratch []fault.Fault
	for _, fs := range seqs {
		for n := 1; n <= len(fs); n++ {
			scratch = scratch[:0]
			scratch = append(scratch, fs[:n]...)
			verdicts = append(verdicts, p.Uncorrectable(scratch))
			if poison {
				for i := range scratch {
					scratch[i] = poisonFault()
				}
			}
		}
	}
	return verdicts
}

// retainingPredicate deliberately violates the no-retention contract: it
// keeps the live slice by reference and folds the retained view into the
// next verdict, the way a buggy caching evaluator would.
type retainingPredicate struct{ kept []fault.Fault }

func (r *retainingPredicate) Name() string { return "retaining" }

func (r *retainingPredicate) Uncorrectable(live []fault.Fault) bool {
	bad := false
	for _, f := range r.kept {
		if f.Hours < 0 { // sees the poison through the retained reference
			bad = true
		}
	}
	r.kept = live // retained without copying — the bug under test
	return bad
}

// TestPredicatesDoNotRetainLiveSlice enforces the Predicate contract: every
// stock evaluator must give identical verdicts whether or not the live
// slice is poisoned between calls (i.e. none of them retain it).
func TestPredicatesDoNotRetainLiveSlice(t *testing.T) {
	opt := testOptions(0, 40, 1000).withDefaults()
	seqs := trialSequences(opt, 25)
	cfg := opt.Config
	preds := []ecc.Predicate{
		ecc.NewParity(cfg, parity.OneDP),
		ecc.NewParity(cfg, parity.TwoDP),
		ecc.NewParity(cfg, parity.ThreeDP),
		ecc.NewSymbol8(cfg, stack.SameBank),
		ecc.NewSymbol8(cfg, stack.AcrossBanks),
		ecc.NewSymbol8(cfg, stack.AcrossChannels),
		ecc.NewSymbol8DeviceGranular(cfg, stack.AcrossChannels),
		ecc.NewBCH6EC7ED(cfg),
		ecc.NewTwoDECC(cfg),
		ecc.NewRAID5(cfg),
		ecc.NoProtection{},
	}
	for _, p := range preds {
		clean := replayVerdicts(p, seqs, false)
		poisoned := replayVerdicts(p, seqs, true)
		if !reflect.DeepEqual(clean, poisoned) {
			t.Errorf("%s: verdicts change when the live slice is poisoned between calls — the predicate retains the slice", p.Name())
		}
	}
}

// TestRetentionHarnessCatchesViolation is the meta-test: a predicate that
// does retain the slice must be caught by the poisoning harness, proving
// the harness has teeth.
func TestRetentionHarnessCatchesViolation(t *testing.T) {
	opt := testOptions(0, 40, 1000).withDefaults()
	seqs := trialSequences(opt, 10)
	clean := replayVerdicts(&retainingPredicate{}, seqs, false)
	poisoned := replayVerdicts(&retainingPredicate{}, seqs, true)
	if reflect.DeepEqual(clean, poisoned) {
		t.Fatal("poisoning harness failed to detect a slice-retaining predicate")
	}
}
