package faultsim

import "fmt"

// ChunkEnvelope is the wire form of one completed campaign chunk: the
// chunk's Result plus enough identity (campaign key, chunk index,
// expected trial count) for a coordinator to validate it against the
// chunk it handed out and to deduplicate redelivered results by chunk
// index. Chunks are deterministic — chunk i of a campaign always runs on
// ChunkSeed(base, i) with the spec's pinned worker count — so two
// envelopes for the same (campaign, chunk) carry identical statistics
// and dropping a duplicate loses nothing.
type ChunkEnvelope struct {
	// CampaignKey is the content key of the campaign the chunk belongs
	// to (jobs.Spec.Key of the normalized spec). A coordinator rejects
	// envelopes for campaigns it is not running.
	CampaignKey string `json:"campaignKey"`
	// Chunk is the zero-based chunk index within the campaign.
	Chunk int `json:"chunk"`
	// Trials is the trial count the chunk was asked to run,
	// cross-checked against Result.Trials so a truncated or mismatched
	// result cannot corrupt the campaign merge.
	Trials int `json:"trials"`
	// Result is the chunk's complete (never partial) simulation result.
	Result Result `json:"result"`
}

// Validate rejects envelopes that must not enter a campaign merge: a
// partial result would bias the statistics, a trial-count mismatch means
// the sender ran the wrong work, and a negative chunk index or empty
// campaign key is malformed.
func (e ChunkEnvelope) Validate() error {
	switch {
	case e.CampaignKey == "":
		return fmt.Errorf("faultsim: chunk envelope without campaign key")
	case e.Chunk < 0:
		return fmt.Errorf("faultsim: negative chunk index %d", e.Chunk)
	case e.Trials <= 0:
		return fmt.Errorf("faultsim: chunk %d claims %d trials", e.Chunk, e.Trials)
	case e.Result.Partial:
		return fmt.Errorf("faultsim: chunk %d result is partial (%d/%d trials)", e.Chunk, e.Result.Trials, e.Trials)
	case e.Result.Trials != e.Trials:
		return fmt.Errorf("faultsim: chunk %d result has %d trials, envelope claims %d", e.Chunk, e.Result.Trials, e.Trials)
	case e.Result.FailWeight < 0 || e.Result.FailWeightSq < 0:
		return fmt.Errorf("faultsim: chunk %d carries negative importance weights", e.Chunk)
	case !e.Result.Weighted && (e.Result.FailWeight != 0 || e.Result.FailWeightSq != 0 || len(e.Result.FailWeightByYear) != 0):
		return fmt.Errorf("faultsim: chunk %d carries importance weights without the Weighted flag", e.Chunk)
	case e.Result.Weighted && e.Result.FailWeight > 0 && e.Result.FailWeightSq == 0:
		return fmt.Errorf("faultsim: chunk %d has positive FailWeight with zero FailWeightSq", e.Chunk)
	}
	return nil
}
