package faultsim

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// Engine microbenchmarks for the incremental-vs-batch evaluation paths.
// These drive Run end to end (sampling + scrubbing + evaluation) so the
// trials/s metric is comparable with the root-level
// BenchmarkMonteCarloTrialThroughput figure quoted in the README.

func benchPolicy(cfg stack.Config) Policy {
	return Policy{
		Name:       "Citadel",
		Predicate:  ecc.NewParity(cfg, parity.ThreeDP),
		UseTSVSwap: true,
		NewSparer:  ddsSparer,
	}
}

func benchRun(b *testing.B, disableIncremental bool) {
	opt := Options{
		Config: stack.DefaultConfig(),
		Rates:  fault.Table1().WithTSV(1430),
		Trials: b.N,
		Seed:   1,

		DisableIncremental: disableIncremental,
	}.withDefaults()
	b.ResetTimer()
	r := Run(opt, benchPolicy(opt.Config))
	b.ReportMetric(float64(r.Trials)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkTrialsIncremental is the optimized default path.
func BenchmarkTrialsIncremental(b *testing.B) { benchRun(b, false) }

// BenchmarkTrialsBatch is the pre-optimization oracle path, kept as the
// speedup baseline.
func BenchmarkTrialsBatch(b *testing.B) { benchRun(b, true) }

// BenchmarkTrialStateRun isolates the trial loop from sampling: replay a
// fixed multi-fault lifetime through ts.run.
func BenchmarkTrialStateRun(b *testing.B) {
	opt := testOptions(0, 40, 1000).withDefaults()
	seqs := trialSequences(opt, 64)
	ts := newTrialState(opt.Config, benchPolicy(opt.Config), opt.ScrubIntervalHours, false)
	for _, fs := range seqs {
		ts.run(fs) // warm scratch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.run(seqs[i%len(seqs)])
	}
}

// BenchmarkParityStateAdd measures the incremental parity evaluator's Add
// over a rolling window of live faults.
func BenchmarkParityStateAdd(b *testing.B) {
	opt := testOptions(0, 40, 0).withDefaults()
	seqs := trialSequences(opt, 64)
	an := parity.NewAnalyzer(opt.Config, parity.ThreeDP)
	st := an.NewState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		for _, f := range seqs[i%len(seqs)] {
			if st.Add(f.Region) {
				break
			}
		}
	}
}
