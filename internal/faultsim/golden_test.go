package faultsim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/ecc"
	"repro/internal/parity"
	"repro/internal/stack"
)

// Golden regression tests: fixed-seed, fixed-worker-count runs whose full
// Result statistics (failure counts, by-year curve, proximate-cause tally)
// are pinned to the values produced by the original batch-evaluation
// engine. The incremental evaluator and the allocation-free trial loop must
// keep these bit-identical — any drift here means the optimization changed
// the statistics, not just the speed.
//
// The pinned values were captured from the pre-incremental engine (see
// DESIGN.md "Incremental correctability evaluation"). Workers is pinned to
// one because the per-worker RNG streams shape the sampled fault lifetimes;
// a single worker reproduces on any machine.

const goldenWorkers = 1

type goldenCase struct {
	name string
	pol  func(cfg stack.Config) Policy
	// opt knobs
	trials    int
	rateScale float64
	tsvFIT    float64

	wantFailures int
	wantByYear   []int
	wantCauses   map[string]int
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "3DP",
			pol: func(cfg stack.Config) Policy {
				return Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
			},
			trials: 3000, rateScale: 30, tsvFIT: 0,
			wantFailures: 2044,
			wantByYear:   []int{123, 380, 752, 1126, 1485, 1786, 2044},
			wantCauses: map[string]int{
				"bank": 1518, "bit": 12, "column": 222, "row": 10, "subarray": 282,
			},
		},
		{
			name: "Citadel-3DP-DDS-swap",
			pol: func(cfg stack.Config) Policy {
				return Policy{
					Name:       "Citadel",
					Predicate:  ecc.NewParity(cfg, parity.ThreeDP),
					UseTSVSwap: true,
					NewSparer:  ddsSparer,
				}
			},
			trials: 3000, rateScale: 30, tsvFIT: 1430,
			wantFailures: 350,
			wantByYear:   []int{0, 8, 27, 70, 159, 238, 350},
			wantCauses:   map[string]int{"bank": 267, "column": 26, "subarray": 57},
		},
		{
			name: "Symbol8-AcrossChannels",
			pol: func(cfg stack.Config) Policy {
				return Policy{Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels)}
			},
			trials: 3000, rateScale: 10, tsvFIT: 143,
			wantFailures: 521,
			wantByYear:   []int{17, 61, 126, 205, 306, 405, 521},
			wantCauses: map[string]int{
				"addr-tsv": 14, "bank": 187, "bit": 154, "column": 14,
				"data-tsv": 87, "row": 32, "subarray": 17, "word": 16,
			},
		},
		{
			name: "1DP",
			pol: func(cfg stack.Config) Policy {
				return Policy{Predicate: ecc.NewParity(cfg, parity.OneDP)}
			},
			trials: 2000, rateScale: 30, tsvFIT: 0,
			wantFailures: 1814,
			wantByYear:   []int{324, 765, 1144, 1421, 1596, 1731, 1814},
			wantCauses: map[string]int{
				"bank": 1181, "bit": 423, "column": 39, "row": 69,
				"subarray": 78, "word": 24,
			},
		},
		{
			name: "BCH-6EC7ED",
			pol: func(cfg stack.Config) Policy {
				return Policy{Predicate: ecc.NewBCH6EC7ED(cfg)}
			},
			trials: 2000, rateScale: 5, tsvFIT: 0,
			wantFailures: 1032,
			wantByYear:   []int{196, 360, 520, 675, 799, 918, 1032},
			wantCauses: map[string]int{
				"bank": 533, "row": 251, "subarray": 118, "word": 130,
			},
		},
	}
}

func runGolden(t *testing.T, gc goldenCase, mutate func(*Options)) Result {
	t.Helper()
	if runtime.GOMAXPROCS(0) < goldenWorkers {
		t.Skipf("needs GOMAXPROCS >= %d for pinned worker streams", goldenWorkers)
	}
	opt := testOptions(gc.trials, gc.rateScale, gc.tsvFIT)
	opt.Workers = goldenWorkers
	if mutate != nil {
		mutate(&opt)
	}
	return Run(opt, gc.pol(opt.Config))
}

func checkGolden(t *testing.T, gc goldenCase, res Result) {
	t.Helper()
	if res.Failures != gc.wantFailures {
		t.Errorf("%s: Failures = %d, want %d", gc.name, res.Failures, gc.wantFailures)
	}
	if !reflect.DeepEqual(res.FailuresByYear, gc.wantByYear) {
		t.Errorf("%s: FailuresByYear = %v, want %v", gc.name, res.FailuresByYear, gc.wantByYear)
	}
	if !reflect.DeepEqual(res.CauseCounts, gc.wantCauses) {
		t.Errorf("%s: CauseCounts = %v, want %v", gc.name, res.CauseCounts, gc.wantCauses)
	}
	if res.Trials != gc.trials {
		t.Errorf("%s: Trials = %d, want %d", gc.name, res.Trials, gc.trials)
	}
}

// TestGoldenResults pins the engine's default (incremental) path.
func TestGoldenResults(t *testing.T) {
	skipInShort(t)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			checkGolden(t, gc, runGolden(t, gc, nil))
		})
	}
}

// TestGoldenResultsBatchPath pins the DisableIncremental (batch oracle)
// path to the same values: both evaluation strategies must produce
// bit-identical statistics.
func TestGoldenResultsBatchPath(t *testing.T) {
	skipInShort(t)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			checkGolden(t, gc, runGolden(t, gc, func(o *Options) {
				o.DisableIncremental = true
			}))
		})
	}
}

// printGolden regenerates the pinned literals; run with
//
//	go test -run TestGoldenResults -v -tags ignore ...
//
// by temporarily calling it from a test when rates or geometry change.
func printGolden(t *testing.T) {
	for _, gc := range goldenCases() {
		res := runGolden(t, gc, nil)
		fmt.Printf("%s:\n  wantFailures: %d,\n  wantByYear:   %#v,\n  wantCauses:   %#v,\n",
			gc.name, res.Failures, res.FailuresByYear, res.CauseCounts)
	}
}

var _ = printGolden
