package faultsim

import (
	"repro/internal/fault"
	"repro/internal/stack"
)

// TrialRunner exposes the engine's per-trial state machine — scrubbing,
// TSV-SWAP, sparing, incremental correctability — to out-of-package
// estimators (internal/rare) without exporting the pooled trialState
// internals. One runner serves many trials; like the in-package workers
// it is not safe for concurrent use, and its observable statistics
// (verdict, failure time, proximate cause, scrub tally) are bit-identical
// to the Monte Carlo loop's for the same fault list.
type TrialRunner struct {
	ts *trialState
}

// NewTrialRunner builds a runner for one policy. scrubHours zero selects
// the default 12-hour interval.
func NewTrialRunner(cfg stack.Config, pol Policy, scrubHours float64) *TrialRunner {
	if scrubHours == 0 {
		scrubHours = DefaultScrubIntervalHours
	}
	return &TrialRunner{ts: newTrialState(cfg, pol, scrubHours, false)}
}

// Run executes one trial over a time-sorted fault list; it returns the
// failure time in hours (negative when the system survives) and the
// class of the fault whose arrival made the state uncorrectable. The
// single-fault fast path matches the engine's.
func (t *TrialRunner) Run(faults []fault.Fault) (float64, fault.Class) {
	if len(faults) == 1 {
		return t.ts.runSingle(faults[0])
	}
	return t.ts.run(faults)
}

// RunToLevel runs a trial only until the count of simultaneously live
// faults first reaches level — the importance function of multilevel
// splitting. It returns the crossing arrival's index into faults and
// its time, or crossIdx -1 with failed set when the state went
// uncorrectable at an arrival before any crossing (possible when level
// exceeds the live count a failing arrival needs, e.g. a lone bank
// fault under a weak scheme), or crossIdx -1 and failed false when the
// list ends without either.
//
// Crucially it never examines the fault list past the crossing: a
// splitting stage must classify a trajectory by its prefix alone, so
// that resampling the suffix later is conditionally independent.
// Checking the suffix here (say, whether the whole trial fails) and
// letting that influence stage bookkeeping double-counts failure mass —
// exactly the bias the estimator exists to avoid. The crossing arrival
// itself is not evaluated for correctability; the next stage's replay
// evaluates it.
func (t *TrialRunner) RunToLevel(faults []fault.Fault, level int) (crossIdx int, crossHours float64, failed bool) {
	return t.ts.runToLevel(faults, level)
}

// Scrubs returns the cumulative scrubber invocations across every trial
// run on this runner, for progress accounting.
func (t *TrialRunner) Scrubs() int64 { return t.ts.scrubs }

// runToLevel mirrors run's arrival loop but stops at the first
// live-count crossing. Kept separate rather than folded into run so the
// hot Monte Carlo loop pays nothing for the observation; the two bodies
// must stay in lockstep.
func (ts *trialState) runToLevel(faults []fault.Fault, level int) (crossIdx int, crossHours float64, failed bool) {
	ts.reset()
	for i, f := range faults {
		scrubIdx := int(f.Hours / ts.scrub)
		if scrubIdx > ts.lastScrub {
			ts.doScrub()
			ts.lastScrub = scrubIdx
		}
		if ts.swapper != nil && f.Class.IsTSV() {
			if _, repaired := ts.swapper.Apply(f); repaired {
				continue
			}
			ts.tsvUnrepaired++
		}
		if f.Persistence == fault.Permanent {
			ts.livePerm = append(ts.livePerm, f)
		} else {
			ts.liveTrans = append(ts.liveTrans, f)
		}
		if len(ts.livePerm)+len(ts.liveTrans) >= level {
			return i, f.Hours, false
		}
		var bad bool
		if ts.inc != nil {
			bad = ts.inc.Add(f)
		} else {
			bad = ts.pol.Predicate.Uncorrectable(ts.liveFaults())
		}
		if bad {
			return -1, 0, true
		}
	}
	return -1, 0, false
}
