// Package faultsim is a FaultSim-style Monte Carlo lifetime simulator for
// stacked-memory protection schemes (the paper's reliability methodology,
// §III-B): fault events arrive as Poisson processes at the Table-I FIT
// rates, a scrubber runs every 12 hours, and each scheme's correctability
// predicate classifies the accumulated fault state after every arrival. A
// trial fails at the first uncorrectable state; the probability of system
// failure over a 7-year lifetime is estimated across 10^5–10^6 independent
// trials, parallelized across workers with per-worker deterministic RNG
// streams.
package faultsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/obs/trace"
	"repro/internal/stack"
	"repro/internal/tsv"
)

// DefaultScrubIntervalHours is the paper's 12-hour scrub interval.
const DefaultScrubIntervalHours = 12

// cancelCheckInterval is how many trials a worker completes between
// context checks: cancellation latency is bounded by roughly one
// interval's worth of trials per worker.
const cancelCheckInterval = 256

// Sparer redirects corrected permanent faults to spare storage (DDS).
type Sparer interface {
	// Offer hands over a corrected permanent fault; it returns whether the
	// fault is now spared plus indices into live of other faults spared as
	// a side effect.
	Offer(f fault.Fault, live []fault.Fault) (sparedSelf bool, sparedLive []int)
}

// Arrivals generates the fault-event sequence of one Monte Carlo trial.
// fault.Sampler satisfies it as-is (the Poisson FIT-rate process); fault
// model plugins (internal/scenario) provide alternatives such as
// activation-driven rowhammer arrivals. Implementations must draw all
// randomness from rng — the engine's determinism contract (equal seed and
// worker count give bit-identical Results) extends through this interface
// — and must return the appended portion sorted by Fault.Hours.
type Arrivals interface {
	AppendLifetime(rng *rand.Rand, hours float64, dst []fault.Fault) []fault.Fault
}

// ArrivalStats is optionally implemented by Arrivals sources that
// accumulate per-scenario counters (e.g. rowhammer activation
// histograms). The engine calls FlushStats once per worker after its
// trials finish and folds the maps into Result.ScenarioStats in worker
// order, keeping the merged floats deterministic.
type ArrivalStats interface {
	FlushStats(dst map[string]float64)
}

// Observer watches applied fault arrivals of one worker's trials —
// scenario plugins use it to surface repair-cost statistics (e.g.
// two-tier backing-store fetch traffic) without touching the
// correctability verdict. Observers are constructed per worker
// (Policy.NewObserver), so implementations need no locking, and must not
// influence the simulation: verdicts, RNG draws, and trial control flow
// are identical with or without one.
type Observer interface {
	// Arrival is called once per fault arrival that enters the live set
	// (TSV-SWAP-repaired faults are not applied and not observed), after
	// the correctability verdict for that arrival.
	Arrival(f fault.Fault, uncorrectable bool)
	// FlushStats adds the worker's accumulated counters into dst; the
	// engine merges per-worker maps into Result.ScenarioStats in worker
	// order.
	FlushStats(dst map[string]float64)
}

// Policy is a complete protection configuration to simulate.
type Policy struct {
	// Name appears in reports; defaults to the predicate's name.
	Name string
	// Predicate decides correctability of the live fault set.
	Predicate ecc.Predicate
	// UseTSVSwap enables TSV-SWAP repair of TSV fault arrivals.
	UseTSVSwap bool
	// TSVStandbyPool overrides the stand-by TSV count per channel
	// (0 = the paper's default of 4).
	TSVStandbyPool int
	// NewSparer, when non-nil, constructs per-trial sparing state (DDS).
	NewSparer func(cfg stack.Config) Sparer
	// NewObserver, when non-nil, constructs a per-worker arrival observer
	// whose flushed counters land in Result.ScenarioStats. Observers are
	// passive: they must not change verdicts or draw randomness.
	NewObserver func(cfg stack.Config) Observer
}

// name returns the effective policy name.
func (p Policy) name() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Predicate.Name()
}

// Options configures a Monte Carlo run.
type Options struct {
	Config             stack.Config
	Rates              fault.Rates
	Trials             int
	LifetimeHours      float64 // default: fault.LifetimeHours (7 years)
	ScrubIntervalHours float64 // default: 12
	Seed               int64
	// Workers bounds parallelism; it is clamped to [1, GOMAXPROCS]
	// (0 or negative selects GOMAXPROCS). Note that the worker count
	// shapes the per-worker RNG streams, so seeded results are
	// reproducible only for equal effective worker counts.
	Workers int
	// Progress, when non-nil, receives a snapshot of the run roughly
	// every ProgressInterval plus one final snapshot (Done set) when the
	// run ends. Calls are serialized: the hook never runs concurrently
	// with itself.
	Progress func(Progress)
	// ProgressInterval throttles Progress callbacks (default 1s).
	ProgressInterval time.Duration
	// DisableIncremental forces the batch Uncorrectable path even when the
	// policy's predicate implements ecc.IncrementalPredicate. The two paths
	// produce bit-identical Results; this is a differential-testing and
	// debugging escape hatch, not a tuning knob.
	DisableIncremental bool
	// RunID is the correlation key threaded into Progress snapshots,
	// forensic exemplars, and trace events. Optional.
	RunID string
	// Forensics enables failure forensics: each uncorrectable trial is
	// bucketed into Result.Breakdown by fault-mode combination and the
	// first MaxExemplars failures are captured as replayable
	// Result.Exemplars. Off by default — the capture path allocates, the
	// plain trial loop does not.
	Forensics bool
	// MaxExemplars bounds the captured exemplars (default 8 when
	// Forensics is set).
	MaxExemplars int
	// Trace, when non-nil, receives flight-recorder events (sampled trial
	// spans, failure instants, run lifecycle). A nil recorder is fully
	// disabled and costs one branch per trial.
	Trace *trace.Recorder
	// NewArrivals, when non-nil, constructs one arrival process per worker
	// in place of the default fault.NewSampler(Config, Rates). The factory
	// is called once per worker goroutine, so the returned source may keep
	// unsynchronized state; all randomness must come from the rng handed
	// to AppendLifetime. Nil keeps the Poisson FIT-rate process and is
	// bit-identical to the poisson fault-model plugin (internal/scenario),
	// whose factory performs exactly the same construction.
	NewArrivals func() Arrivals
}

// Progress is a point-in-time snapshot of a running Monte Carlo study.
type Progress struct {
	Policy string
	// RunID echoes Options.RunID so progress lines carry the same
	// correlation key as forensic exemplars and trace files.
	RunID string
	// TrialsDone counts trials completed so far out of TrialsTarget.
	TrialsDone, TrialsTarget int
	// Failures counts failing trials so far.
	Failures int
	// ScrubPasses counts scrubber invocations across all trials so far.
	ScrubPasses int64
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Done marks the final snapshot of the run.
	Done bool
}

// TrialsPerSec returns the observed trial throughput.
func (p Progress) TrialsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.TrialsDone) / p.Elapsed.Seconds()
}

// withDefaults fills zero fields. It is the single source of truth for
// effective simulation defaults; citadel.ReliabilityOptions funnels here.
func (o Options) withDefaults() Options {
	if o.LifetimeHours == 0 {
		o.LifetimeHours = fault.LifetimeHours
	}
	if o.ScrubIntervalHours == 0 {
		o.ScrubIntervalHours = DefaultScrubIntervalHours
	}
	if o.Trials == 0 {
		o.Trials = 100000
	}
	if max := runtime.GOMAXPROCS(0); o.Workers <= 0 || o.Workers > max {
		o.Workers = max
	}
	if o.Forensics && o.MaxExemplars == 0 {
		o.MaxExemplars = 8
	}
	return o
}

// Result summarizes a Monte Carlo run.
type Result struct {
	Policy string
	// Trials counts the trials actually completed. It equals the
	// requested Options.Trials unless the run was cancelled (see
	// Partial).
	Trials   int
	Failures int
	// FailuresByYear[y] counts trials that failed within the first y+1
	// years (cumulative).
	FailuresByYear []int
	// CauseCounts tallies, per failing trial, the class of the fault whose
	// arrival made the state uncorrectable — the proximate cause.
	CauseCounts map[string]int
	// Breakdown tallies failing trials by fault-mode combination (the
	// modeKey of the live set at failure, e.g. "row+bank"). Nil unless
	// Options.Forensics was set; the per-mode counts sum to Failures.
	Breakdown map[string]int
	// Exemplars holds the first MaxExemplars forensic records in
	// deterministic (Worker, Trial) order. Nil unless Options.Forensics.
	Exemplars []Forensic
	// ScenarioStats carries additive per-scenario counters flushed by the
	// policy's Observer and the arrival source's ArrivalStats (e.g.
	// two-tier fetch traffic, rowhammer activation histograms). Nil unless
	// the scenario produced any — plain runs stay DeepEqual to their old
	// selves. Merge adds values key-wise with nil-in/nil-out semantics
	// like CauseCounts, and the JSON checkpoint round-trips it unchanged.
	ScenarioStats map[string]float64
	// Weighted marks an importance-sampled result (internal/rare):
	// trials were drawn under a biased fault-arrival measure and each
	// failing trial carries a likelihood-ratio weight. Failures still
	// counts failing trials, but the probability estimate comes from
	// FailWeight, and CI95 switches to the weighted-sample interval.
	Weighted bool
	// FailWeight is the sum of likelihood-ratio weights over failing
	// trials (for a plain run this would equal Failures, every weight
	// being one). Zero unless Weighted.
	FailWeight float64
	// FailWeightSq is the sum of squared likelihood-ratio weights over
	// failing trials; it drives the weighted-sample variance and the
	// effective sample size. Zero unless Weighted.
	FailWeightSq float64
	// FailWeightByYear is the weighted analogue of FailuresByYear
	// (cumulative). Nil unless Weighted.
	FailWeightByYear []float64
	// TargetMet reports, for adaptive runs (RunAdaptive), that the
	// failure target was reached before the trial cap — i.e. the run
	// converged rather than gave up at MaxTrials. Always false for
	// fixed-budget runs.
	TargetMet bool
	// Partial reports that the run was cancelled before all requested
	// trials completed; the statistics cover the completed trials only
	// and remain unbiased (trials are independent).
	Partial bool
	// Err records the cancellation cause (context.Canceled or
	// context.DeadlineExceeded) when Partial is set.
	Err error
}

// Probability returns the estimated probability of system failure over the
// full lifetime.
func (r Result) Probability() float64 {
	if r.Trials == 0 {
		return 0
	}
	if r.Weighted {
		return r.FailWeight / float64(r.Trials)
	}
	return float64(r.Failures) / float64(r.Trials)
}

// ProbabilityByYear returns the cumulative failure probability by the end
// of year y (1-based).
func (r Result) ProbabilityByYear(y int) float64 {
	if r.Trials == 0 || y < 1 {
		return 0
	}
	if r.Weighted {
		if y > len(r.FailWeightByYear) {
			return 0
		}
		return r.FailWeightByYear[y-1] / float64(r.Trials)
	}
	if y > len(r.FailuresByYear) {
		return 0
	}
	return float64(r.FailuresByYear[y-1]) / float64(r.Trials)
}

// zeroFailUpper95 is -ln(0.025): the exact 95% one-sided upper bound on
// np when zero failures are observed ((1-p)^n >= 0.025), the "rule of
// three" constant at the 97.5th percentile so it composes with the
// two-sided intervals used elsewhere.
const zeroFailUpper95 = 3.6888794541139363

// CI95 returns the half-width of the 95% confidence interval on
// Probability. For counting runs it is the Wilson score half-width —
// which, unlike the normal approximation it replaced, stays positive and
// calibrated at low counts — and when no failures were observed at all it
// returns the rule-of-three upper bound (~3.7/Trials), so a zero-failure
// run reports a resolvable bound instead of the old "± 0". For weighted
// (importance-sampled) runs it is the weighted-sample interval
// 1.96·sqrt(Var̂/Trials) over the per-trial weight observations. The only
// zero return is the degenerate Trials == 0.
//
// Note the Wilson interval is centered at (p + z²/2n)/(1 + z²/n), a hair
// above the point estimate; callers printing "p ± CI95()" overstate the
// lower edge slightly, conservatively.
func (r Result) CI95() float64 {
	if r.Trials == 0 {
		return 0
	}
	n := float64(r.Trials)
	if r.Failures == 0 {
		// Observed nothing: an interval around 0 is meaningless, an upper
		// bound is not. Applies to weighted runs too — biased sampling
		// inflates failure draws, so the unweighted zero-count bound is
		// conservative for the unbiased probability.
		u := zeroFailUpper95 / n
		if u > 1 {
			u = 1
		}
		return u
	}
	if r.Weighted {
		mean := r.FailWeight / n
		if r.Trials < 2 {
			return mean
		}
		variance := (r.FailWeightSq - r.FailWeight*r.FailWeight/n) / (n - 1)
		if variance <= 0 {
			// Every trial failed with an identical weight; the sample
			// variance cannot see the estimator's spread, so report the
			// mean itself rather than a false zero.
			return mean
		}
		return 1.96 * math.Sqrt(variance/n)
	}
	const z = 1.96
	p := float64(r.Failures) / n
	z2 := z * z
	return z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / (1 + z2/n)
}

// ESS returns the effective sample size of a weighted result's failing
// trials, FailWeight²/FailWeightSq: the number of equally-weighted
// failures carrying the same statistical information. Far below Failures
// means the weights are ragged and the estimate leans on few trials. For
// plain results it is simply Failures.
func (r Result) ESS() float64 {
	if !r.Weighted {
		return float64(r.Failures)
	}
	if r.FailWeightSq <= 0 {
		return 0
	}
	return r.FailWeight * r.FailWeight / r.FailWeightSq
}

// EffectiveTrials returns how many naive Monte Carlo trials would be
// needed to match this result's variance on Probability — the speedup
// metric of the rare-event engine. For plain results it equals Trials.
func (r Result) EffectiveTrials() float64 {
	if !r.Weighted || r.Trials < 2 {
		return float64(r.Trials)
	}
	n := float64(r.Trials)
	variance := (r.FailWeightSq - r.FailWeight*r.FailWeight/n) / (n - 1)
	if variance <= 0 {
		return n
	}
	p := r.Probability()
	return n * p * (1 - p) / variance
}

// String renders the result in one line. Zero-failure runs print the
// rule-of-three upper bound rather than a misleading "0 ± 0"; weighted
// runs are tagged IS and carry their effective sample size.
func (r Result) String() string {
	var s string
	switch {
	case r.Trials > 0 && r.Failures == 0:
		s = fmt.Sprintf("%s: P(fail,7y) = 0 (< %.2g at 95%%) (0/%d trials)",
			r.Policy, r.CI95(), r.Trials)
	case r.Weighted:
		s = fmt.Sprintf("%s: P(fail,7y) = %.3g ± %.2g (IS, %d/%d trials, ESS %.1f)",
			r.Policy, r.Probability(), r.CI95(), r.Failures, r.Trials, r.ESS())
	default:
		s = fmt.Sprintf("%s: P(fail,7y) = %.3g ± %.2g (%d/%d trials)",
			r.Policy, r.Probability(), r.CI95(), r.Failures, r.Trials)
	}
	if r.Partial {
		s += " [partial]"
	}
	return s
}

// trialState holds the per-trial simulation state. One trialState serves
// every trial of a worker: the swapper, sparer, incremental evaluator, and
// all slices are pooled and reset between trials, so the steady-state trial
// loop performs no heap allocation.
type trialState struct {
	cfg       stack.Config
	pol       Policy
	scrub     float64
	swapper   *tsv.Swapper
	sparer    Sparer
	livePerm  []fault.Fault
	liveTrans []fault.Fault
	lastScrub int
	scratch   []fault.Fault
	// inc, when non-nil, maintains the correctability verdict incrementally
	// (ecc.IncrementalPredicate). It mirrors livePerm+liveTrans exactly:
	// every append pairs with inc.Add, every drop with inc.Remove. Nil means
	// the batch Predicate.Uncorrectable path.
	inc ecc.IncrementalState
	// dropScratch is doScrub's reusable drop-mark buffer (was a per-offer
	// map allocation).
	dropScratch []bool
	// scrubs counts doScrub invocations across every trial run on this
	// state; workers flush it into the run's progress counters.
	scrubs int64
	// tsvUnrepaired counts, within the current trial, TSV faults the
	// swapper saw but could not repair (stand-by budget overflow) — a
	// forensic signal. Plain int: it rides the zero-allocation loop.
	tsvUnrepaired int
	// obs, when non-nil, watches applied arrivals (Policy.NewObserver).
	// Purely passive: it never changes a verdict or the control flow.
	obs Observer
}

func newTrialState(cfg stack.Config, pol Policy, scrub float64, disableIncremental bool) *trialState {
	ts := &trialState{cfg: cfg, pol: pol, scrub: scrub}
	if !disableIncremental {
		if ip, ok := pol.Predicate.(ecc.IncrementalPredicate); ok {
			ts.inc = ip.Begin()
		}
	}
	if pol.NewObserver != nil {
		ts.obs = pol.NewObserver(cfg)
	}
	ts.reset()
	return ts
}

func (ts *trialState) reset() {
	if ts.pol.UseTSVSwap {
		if ts.swapper != nil {
			ts.swapper.Reset()
		} else if ts.pol.TSVStandbyPool > 0 {
			ts.swapper = tsv.NewSwapperWithPool(ts.cfg, ts.pol.TSVStandbyPool)
		} else {
			ts.swapper = tsv.NewSwapper(ts.cfg)
		}
	} else {
		ts.swapper = nil
	}
	if ts.pol.NewSparer != nil {
		// Reuse the sparer when it supports resetting (DDS does);
		// otherwise rebuild per trial as before.
		if r, ok := ts.sparer.(interface{ Reset() }); ok {
			r.Reset()
		} else {
			ts.sparer = ts.pol.NewSparer(ts.cfg)
		}
	} else {
		ts.sparer = nil
	}
	if ts.inc != nil {
		ts.inc.Reset()
	}
	ts.livePerm = ts.livePerm[:0]
	ts.liveTrans = ts.liveTrans[:0]
	ts.lastScrub = 0
	ts.tsvUnrepaired = 0
}

// doScrub clears correctable transients and offers permanent faults to the
// sparer. Offers repeat until a full pass spares nothing, because sparing
// one fault (e.g. escalating a bank) can spare co-resident faults too.
func (ts *trialState) doScrub() {
	ts.scrubs++
	if ts.inc != nil {
		for _, f := range ts.liveTrans {
			ts.inc.Remove(f)
		}
	}
	ts.liveTrans = ts.liveTrans[:0]
	if ts.sparer == nil {
		return
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ts.livePerm); i++ {
			spared, extra := ts.sparer.Offer(ts.livePerm[i], ts.livePerm)
			if !spared && len(extra) == 0 {
				continue
			}
			drop := ts.dropScratch[:0]
			for range ts.livePerm {
				drop = append(drop, false)
			}
			ts.dropScratch = drop
			for _, e := range extra {
				drop[e] = true
			}
			if spared {
				drop[i] = true
			}
			kept := ts.livePerm[:0]
			for j, f := range ts.livePerm {
				if drop[j] {
					if ts.inc != nil {
						ts.inc.Remove(f)
					}
					continue
				}
				kept = append(kept, f)
			}
			ts.livePerm = kept
			changed = true
			break // indices shifted; rescan
		}
	}
}

// liveFaults rebuilds the scratch slice of all live faults for the batch
// evaluation path. The slice hands the predicate a view of reused backing
// memory: Predicate.Uncorrectable implementations must not retain it past
// the call (see TestPredicatesDoNotRetainLiveSlice).
func (ts *trialState) liveFaults() []fault.Fault {
	ts.scratch = ts.scratch[:0]
	ts.scratch = append(ts.scratch, ts.livePerm...)
	ts.scratch = append(ts.scratch, ts.liveTrans...)
	return ts.scratch
}

// run executes one trial; it returns the failure time in hours (negative
// when the system survives) and the proximate cause — the class of the
// fault whose arrival made the state uncorrectable.
func (ts *trialState) run(faults []fault.Fault) (float64, fault.Class) {
	ts.reset()
	for _, f := range faults {
		scrubIdx := int(f.Hours / ts.scrub)
		if scrubIdx > ts.lastScrub {
			ts.doScrub()
			ts.lastScrub = scrubIdx
		}
		if ts.swapper != nil && f.Class.IsTSV() {
			if _, repaired := ts.swapper.Apply(f); repaired {
				continue
			}
			ts.tsvUnrepaired++
		}
		if f.Persistence == fault.Permanent {
			ts.livePerm = append(ts.livePerm, f)
		} else {
			ts.liveTrans = append(ts.liveTrans, f)
		}
		var bad bool
		if ts.inc != nil {
			bad = ts.inc.Add(f)
		} else {
			bad = ts.pol.Predicate.Uncorrectable(ts.liveFaults())
		}
		if ts.obs != nil {
			ts.obs.Arrival(f, bad)
		}
		if bad {
			return f.Hours, f.Class
		}
	}
	return -1, 0
}

// runSingle is the fast path for one-fault trials (the overwhelmingly
// common case at realistic FIT rates): with no other fault in the lifetime,
// scrubbing and sparing cannot change the outcome, so the full per-trial
// state reset is skipped. Observable statistics (verdict, failure time,
// cause, scrub count) match run exactly.
func (ts *trialState) runSingle(f fault.Fault) (float64, fault.Class) {
	ts.tsvUnrepaired = 0
	if int(f.Hours/ts.scrub) > 0 {
		// run would scrub once before this arrival; on an empty state the
		// scrub has no effect beyond its tally.
		ts.scrubs++
	}
	if ts.swapper != nil && f.Class.IsTSV() {
		ts.swapper.Reset()
		if _, repaired := ts.swapper.Apply(f); repaired {
			return -1, 0
		}
		ts.tsvUnrepaired++
	}
	var bad bool
	if ts.inc != nil {
		ts.inc.Reset()
		bad = ts.inc.Add(f)
	} else {
		ts.scratch = ts.scratch[:0]
		ts.scratch = append(ts.scratch, f)
		bad = ts.pol.Predicate.Uncorrectable(ts.scratch)
	}
	if ts.obs != nil {
		ts.obs.Arrival(f, bad)
	}
	if bad {
		return f.Hours, f.Class
	}
	return -1, 0
}

// Run estimates the failure probability of a policy over the full trial
// budget; it cannot be interrupted (see RunContext).
func Run(opt Options, pol Policy) Result {
	return RunContext(context.Background(), opt, pol)
}

// RunContext estimates the failure probability of a policy. Worker
// goroutines check ctx between trial batches (cancelCheckInterval); on
// cancellation the completed trials are merged into a Result marked
// Partial rather than discarded.
func RunContext(ctx context.Context, opt Options, pol Policy) Result {
	opt = opt.withDefaults()
	years := int(math.Ceil(opt.LifetimeHours / fault.HoursPerYear))
	res := Result{
		Policy:         pol.name(),
		FailuresByYear: make([]int, years),
		CauseCounts:    make(map[string]int),
	}
	if opt.Forensics {
		res.Breakdown = make(map[string]int)
	}
	mRunsActive.Inc()
	defer mRunsActive.Dec()
	tr := opt.Trace
	runStart := tr.Now()
	// Live counters: workers flush local tallies here every
	// cancelCheckInterval trials so the progress reporter and the global
	// metrics see the run move without per-trial atomics.
	var progTrials, progFailures, progScrubs atomic.Int64
	start := time.Now()
	snapshot := func(done bool) Progress {
		return Progress{
			Policy:       pol.name(),
			RunID:        opt.RunID,
			TrialsDone:   int(progTrials.Load()),
			TrialsTarget: opt.Trials,
			Failures:     int(progFailures.Load()),
			ScrubPasses:  progScrubs.Load(),
			Elapsed:      time.Since(start),
			Done:         done,
		}
	}
	stopProg := make(chan struct{})
	progDone := make(chan struct{})
	if opt.Progress != nil {
		interval := opt.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		go func() {
			defer close(progDone)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					opt.Progress(snapshot(false))
				}
			}
		}()
	} else {
		close(progDone)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (opt.Trials + opt.Workers - 1) / opt.Workers
	// Scenario counters are floats, and float addition is not associative,
	// so workers park their stats here and the fold below runs in worker
	// order — keeping ScenarioStats bit-identical across repeat runs
	// regardless of goroutine completion order.
	statsByWorker := make([]map[string]float64, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > opt.Trials {
			hi = opt.Trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(deriveSeed(opt.Seed, uint64(worker))))
			var src Arrivals
			if opt.NewArrivals != nil {
				src = opt.NewArrivals()
			} else {
				src = fault.NewSampler(opt.Config, opt.Rates)
			}
			ts := newTrialState(opt.Config, pol, opt.ScrubIntervalHours, opt.DisableIncremental)
			var trialBuf []fault.Fault
			done := 0
			failures := 0
			byYear := make([]int, years)
			causes := make(map[string]int)
			var breakdown map[string]int
			var exemplars []Forensic
			if opt.Forensics {
				breakdown = make(map[string]int)
			}
			traceOn := tr.Enabled()
			var flushedDone, flushedFailures, flushedScrubs int64
			flush := func() {
				progTrials.Add(int64(done) - flushedDone)
				progFailures.Add(int64(failures) - flushedFailures)
				progScrubs.Add(ts.scrubs - flushedScrubs)
				mTrials.Add(int64(done) - flushedDone)
				mFailures.Add(int64(failures) - flushedFailures)
				mScrubs.Add(ts.scrubs - flushedScrubs)
				flushedDone, flushedFailures, flushedScrubs = int64(done), int64(failures), ts.scrubs
			}
			defer flush()
			for t := 0; t < n; t++ {
				if t%cancelCheckInterval == 0 {
					flush()
					if ctx.Err() != nil {
						break
					}
				}
				done++
				trialBuf = src.AppendLifetime(rng, opt.LifetimeHours, trialBuf[:0])
				fs := trialBuf
				if len(fs) == 0 {
					continue
				}
				var when float64
				var cause fault.Class
				sampled := traceOn && tr.ShouldSample(uint64(worker)<<32|uint64(t))
				var spanStart float64
				if sampled {
					spanStart = tr.Now()
				}
				if len(fs) == 1 {
					when, cause = ts.runSingle(fs[0])
				} else {
					when, cause = ts.run(fs)
				}
				if sampled {
					ev := trace.Event{
						Name: "trial", Cat: "faultsim", Phase: trace.PhaseComplete,
						TS: spanStart, Dur: tr.Now() - spanStart, TID: int64(worker),
					}
					ev.Args[0] = trace.Arg{Key: "trial", Val: float64(t)}
					ev.Args[1] = trace.Arg{Key: "faults", Val: float64(len(fs))}
					if when >= 0 {
						ev.Args[2] = trace.Arg{Key: "failed", Val: 1}
					}
					ev.Args[3] = trace.Arg{Key: "runId", Str: opt.RunID}
					tr.Emit(ev)
				}
				if when >= 0 {
					failures++
					causes[cause.String()]++
					y := int(when / fault.HoursPerYear)
					if y >= years {
						y = years - 1
					}
					for i := y; i < years; i++ {
						byYear[i]++
					}
					if traceOn {
						ev := trace.Event{
							Name: "uncorrectable", Cat: "faultsim", Phase: trace.PhaseInstant,
							TS: tr.Now(), TID: int64(worker),
						}
						ev.Args[0] = trace.Arg{Key: "trial", Val: float64(t)}
						ev.Args[1] = trace.Arg{Key: "hours", Val: when}
						ev.Args[2] = trace.Arg{Key: "cause", Str: cause.String()}
						ev.Args[3] = trace.Arg{Key: "runId", Str: opt.RunID}
						tr.Emit(ev)
					}
					if opt.Forensics {
						// The live set at failure: the single drawn fault on
						// the fast path, otherwise the trial state's live
						// permanent+transient faults.
						live := fs
						if len(fs) > 1 {
							live = ts.liveFaults()
						}
						breakdown[modeKey(live)]++
						if len(exemplars) < opt.MaxExemplars {
							exemplars = append(exemplars,
								captureForensic(opt, pol, ts, worker, t, live, when, cause))
						}
					}
				}
			}
			var stats map[string]float64
			if so, ok := src.(ArrivalStats); ok {
				stats = make(map[string]float64)
				so.FlushStats(stats)
			}
			if ts.obs != nil {
				if stats == nil {
					stats = make(map[string]float64)
				}
				ts.obs.FlushStats(stats)
			}
			statsByWorker[worker] = stats
			mu.Lock()
			res.Trials += done
			res.Failures += failures
			for i := range byYear {
				res.FailuresByYear[i] += byYear[i]
			}
			for k, v := range causes {
				res.CauseCounts[k] += v
			}
			for k, v := range breakdown {
				res.Breakdown[k] += v
			}
			res.Exemplars = append(res.Exemplars, exemplars...)
			mu.Unlock()
		}(w, hi-lo)
	}
	wg.Wait()
	close(stopProg)
	<-progDone
	// Fold scenario stats in worker order (float addition order matters
	// for bit-identical repeats). Nil when no worker produced any, so
	// plain runs keep a nil map.
	for _, stats := range statsByWorker {
		if len(stats) == 0 {
			continue
		}
		if res.ScenarioStats == nil {
			res.ScenarioStats = make(map[string]float64, len(stats))
		}
		for k, v := range stats {
			res.ScenarioStats[k] += v
		}
	}
	if err := ctx.Err(); err != nil && res.Trials < opt.Trials {
		res.Partial = true
		res.Err = err
	}
	if len(res.Exemplars) > 0 {
		// Workers each kept up to MaxExemplars; order deterministically and
		// keep the global first K so the exemplar set is independent of
		// goroutine scheduling.
		sortExemplars(res.Exemplars)
		if len(res.Exemplars) > opt.MaxExemplars {
			res.Exemplars = res.Exemplars[:opt.MaxExemplars]
		}
	}
	if tr.Enabled() {
		ev := trace.Event{
			Name: "run", Cat: "faultsim", Phase: trace.PhaseComplete,
			TS: runStart, Dur: tr.Now() - runStart, TID: -1,
		}
		ev.Args[0] = trace.Arg{Key: "policy", Str: pol.name()}
		ev.Args[1] = trace.Arg{Key: "trials", Val: float64(res.Trials)}
		ev.Args[2] = trace.Arg{Key: "failures", Val: float64(res.Failures)}
		ev.Args[3] = trace.Arg{Key: "runId", Str: opt.RunID}
		tr.Emit(ev)
	}
	if opt.Progress != nil {
		opt.Progress(snapshot(true))
	}
	return res
}

// RunAll evaluates several policies under the same options. Each policy
// sees an identical fault stream seed, making comparisons paired.
func RunAll(opt Options, pols []Policy) []Result {
	return RunAllContext(context.Background(), opt, pols)
}

// RunAllContext is RunAll under a context: once ctx is cancelled the
// in-flight policy returns a partial Result and the remaining policies
// return immediately with zero completed trials, all marked Partial.
func RunAllContext(ctx context.Context, opt Options, pols []Policy) []Result {
	out := make([]Result, len(pols))
	for i, p := range pols {
		out[i] = RunContext(ctx, opt, p)
	}
	return out
}
