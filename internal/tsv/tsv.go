// Package tsv models through-silicon-via faults and Citadel's TSV-SWAP
// repair mechanism (paper §V).
//
// Each channel owns DataTSVs data TSVs and AddrTSVs address TSVs shared by
// all banks on the die. TSV-SWAP designates a small pool of existing data
// TSVs as stand-by TSVs: their bits are replicated in the per-line metadata
// (8 bits of "swap data"), so a stand-by TSV can be rerouted — via the TSV
// Redirection Register (TRR) and pass-transistor swap lanes — to carry the
// traffic of a faulty data or address TSV without losing information.
//
// Repair budget: a stand-by data TSV provides BurstLength (2) transfer
// beats. Redirecting a faulty data TSV consumes a whole stand-by TSV (both
// beats); redirecting a faulty address TSV consumes a single beat. With four
// stand-by TSVs this yields the paper's "up to 8 faulty TSVs" capacity when
// the faults are address TSVs.
package tsv

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/stack"
)

// DefaultStandbyCount is the number of data TSVs designated as stand-by
// (DTSV-0, DTSV-64, DTSV-128, DTSV-192 in the paper's design).
const DefaultStandbyCount = 4

// Channel tracks TSV health and TSV-SWAP state for one channel (die).
type Channel struct {
	cfg     stack.Config
	standby []int // stand-by data TSV indices

	faultyData map[int]bool // data TSV index -> faulty
	faultyAddr map[int]bool // addr TSV index -> faulty

	// trr maps a repaired TSV to the stand-by TSV now carrying it. Keys are
	// data TSV indices for data repairs and AddrKey(k) for address repairs.
	trr map[int]int

	beatsFree int // remaining stand-by transfer beats
}

// AddrKey namespaces address TSV indices in the TRR key space.
func AddrKey(k int) int { return 1<<20 | k }

// NewChannel builds TSV-SWAP state for one channel with the paper's
// default stand-by pool.
func NewChannel(cfg stack.Config) *Channel { return NewChannelWithPool(cfg, DefaultStandbyCount) }

// NewChannelWithPool builds TSV-SWAP state with n stand-by TSVs spread
// evenly across the data TSVs (for pool-size sensitivity studies).
func NewChannelWithPool(cfg stack.Config, n int) *Channel {
	if n <= 0 {
		n = DefaultStandbyCount
	}
	standby := make([]int, n)
	for i := range standby {
		standby[i] = i * cfg.DataTSVs / n
	}
	return &Channel{
		cfg:        cfg,
		standby:    standby,
		faultyData: make(map[int]bool),
		faultyAddr: make(map[int]bool),
		trr:        make(map[int]int),
		beatsFree:  n * cfg.BurstLength,
	}
}

// Reset restores the channel to its freshly-built state, retaining map
// capacity so the Monte Carlo engine can reuse channels across trials.
func (c *Channel) Reset() {
	clear(c.faultyData)
	clear(c.faultyAddr)
	clear(c.trr)
	c.beatsFree = len(c.standby) * c.cfg.BurstLength
}

// Standby returns the stand-by data TSV indices.
func (c *Channel) Standby() []int { return append([]int(nil), c.standby...) }

// SwapDataBits returns the line bit positions replicated in metadata: the
// bits carried by the stand-by TSVs (8 bits for the default config, matching
// the 8-bit swap-data field of Citadel's metadata).
func (c *Channel) SwapDataBits() []int {
	var bitsOut []int
	for _, t := range c.standby {
		bitsOut = append(bitsOut, c.cfg.BitsOnTSV(t)...)
	}
	return bitsOut
}

// BeatsFree returns the remaining repair budget in transfer beats.
func (c *Channel) BeatsFree() int { return c.beatsFree }

// InjectDataFault marks a data TSV faulty. It returns an error for an
// out-of-range index.
func (c *Channel) InjectDataFault(t int) error {
	if t < 0 || t >= c.cfg.DataTSVs {
		return fmt.Errorf("tsv: data TSV %d out of range [0,%d)", t, c.cfg.DataTSVs)
	}
	c.faultyData[t] = true
	return nil
}

// InjectAddrFault marks an address TSV faulty.
func (c *Channel) InjectAddrFault(k int) error {
	if k < 0 || k >= c.cfg.AddrTSVs {
		return fmt.Errorf("tsv: addr TSV %d out of range [0,%d)", k, c.cfg.AddrTSVs)
	}
	c.faultyAddr[k] = true
	return nil
}

// dataRepairCost and addrRepairCost are the beat costs of each repair type.
const (
	addrRepairCost = 1
)

func (c *Channel) dataRepairCost() int { return c.cfg.BurstLength }

// RunBIST scans for unrepaired faulty TSVs and repairs as many as the
// stand-by budget allows, loading the TRR. It returns the number of repairs
// performed. Data TSV faults on stand-by TSVs themselves need no lane (their
// bits already live in metadata) but still consume that stand-by's beats.
func (c *Channel) RunBIST() int {
	repaired := 0
	// Address TSVs first: a single ATSV fault makes half the channel
	// unreachable, so they are the most valuable repairs (paper Insight 1).
	for k := 0; k < c.cfg.AddrTSVs; k++ {
		if !c.faultyAddr[k] {
			continue
		}
		if _, done := c.trr[AddrKey(k)]; done {
			continue
		}
		if c.beatsFree < addrRepairCost {
			return repaired
		}
		c.beatsFree -= addrRepairCost
		c.trr[AddrKey(k)] = c.standby[0]
		repaired++
	}
	for t := 0; t < c.cfg.DataTSVs; t++ {
		if !c.faultyData[t] {
			continue
		}
		if _, done := c.trr[t]; done {
			continue
		}
		if c.beatsFree < c.dataRepairCost() {
			return repaired
		}
		c.beatsFree -= c.dataRepairCost()
		c.trr[t] = c.standby[0]
		repaired++
	}
	return repaired
}

// Repaired reports whether the given TSV fault has been redirected.
func (c *Channel) Repaired(f fault.Fault) bool {
	switch f.Class {
	case fault.DataTSV:
		_, ok := c.trr[f.TSV]
		return ok
	case fault.AddrTSV:
		_, ok := c.trr[AddrKey(f.TSV)]
		return ok
	default:
		return false
	}
}

// CorruptedBits returns the line bit positions still corrupted by
// unrepaired faulty data TSVs.
func (c *Channel) CorruptedBits() []int {
	var out []int
	for t := range c.faultyData {
		if _, ok := c.trr[t]; ok {
			continue
		}
		out = append(out, c.cfg.BitsOnTSV(t)...)
	}
	return out
}

// UnreachableAddrBits returns the address-TSV indices whose faults remain
// unrepaired; each makes half of the channel's rows unreachable.
func (c *Channel) UnreachableAddrBits() []int {
	var out []int
	for k := range c.faultyAddr {
		if _, ok := c.trr[AddrKey(k)]; !ok {
			out = append(out, k)
		}
	}
	return out
}

// HasCorruptedBits reports whether any unrepaired faulty data TSV remains —
// the emptiness test of CorruptedBits without building the bit list (the
// simulator asks this on every TSV event).
func (c *Channel) HasCorruptedBits() bool {
	for t := range c.faultyData {
		if _, ok := c.trr[t]; !ok {
			return true
		}
	}
	return false
}

// HasUnreachableAddr reports whether any unrepaired faulty address TSV
// remains — the emptiness test of UnreachableAddrBits without allocating.
func (c *Channel) HasUnreachableAddr() bool {
	for k := range c.faultyAddr {
		if _, ok := c.trr[AddrKey(k)]; !ok {
			return true
		}
	}
	return false
}

// Detector models Citadel's TSV-fault detection flow (paper §V-C.2): two
// fixed rows per die hold known data at bit-inverse addresses. A CRC
// mismatch on a demand read triggers a read of the fixed rows; a mismatch
// there points at TSV (rather than cell) faults and triggers BIST.
type Detector struct {
	ch *Channel
	// FixedRowsCorrupt is set by the functional model when a read of the
	// fixed rows returns unexpected data.
	FixedRowsCorrupt bool
}

// NewDetector builds a detector for a channel.
func NewDetector(ch *Channel) *Detector { return &Detector{ch: ch} }

// FixedRowAddresses returns the two probe row addresses: all-zeros and
// all-ones within the row address space, each bit the inverse of the other.
func (d *Detector) FixedRowAddresses() (int, int) {
	return 0, d.ch.cfg.RowsPerBank - 1
}

// CheckFixedRows simulates reading the fixed rows: they appear corrupt when
// any unrepaired data-TSV fault corrupts their bits, or when an unrepaired
// address-TSV fault makes one of them unreachable.
func (d *Detector) CheckFixedRows() bool {
	if d.ch.HasCorruptedBits() || d.ch.HasUnreachableAddr() {
		d.FixedRowsCorrupt = true
		return true
	}
	d.FixedRowsCorrupt = false
	return false
}

// OnCRCMismatch drives the detection flow: probe the fixed rows, and when
// they implicate the TSVs, run BIST to repair. It reports whether a TSV
// fault was found and how many repairs were made.
func (d *Detector) OnCRCMismatch() (tsvFault bool, repairs int) {
	if !d.CheckFixedRows() {
		return false, 0
	}
	return true, d.ch.RunBIST()
}

// Swapper applies TSV-SWAP across a whole system for the reliability
// simulator: it consumes TSV fault events and reports which remain
// unrepaired (and therefore keep their footprints).
type Swapper struct {
	cfg      stack.Config
	pool     int
	channels map[[2]int]*Channel // (stack, die) -> channel state
	dirty    bool                // any channel mutated since the last Reset
}

// NewSwapper builds system-wide TSV-SWAP state with the default pool.
func NewSwapper(cfg stack.Config) *Swapper { return NewSwapperWithPool(cfg, DefaultStandbyCount) }

// NewSwapperWithPool builds system-wide TSV-SWAP state with n stand-by
// TSVs per channel.
func NewSwapperWithPool(cfg stack.Config, n int) *Swapper {
	return &Swapper{cfg: cfg, pool: n, channels: make(map[[2]int]*Channel)}
}

// channel returns (lazily creating) the per-channel state.
func (s *Swapper) channel(stackIdx, die int) *Channel {
	key := [2]int{stackIdx, die}
	ch := s.channels[key]
	if ch == nil {
		ch = NewChannelWithPool(s.cfg, s.pool)
		s.channels[key] = ch
	}
	return ch
}

// Reset restores every channel to its freshly-built state, retaining the
// channel objects and map capacity so a Swapper can be reused across Monte
// Carlo trials. It is a no-op when nothing has been applied since the last
// reset.
func (s *Swapper) Reset() {
	if !s.dirty {
		return
	}
	for _, ch := range s.channels {
		ch.Reset()
	}
	s.dirty = false
}

// Apply consumes a TSV fault event, injects it into the owning channel,
// runs detection/BIST, and reports whether the fault was repaired. Non-TSV
// faults are ignored (returned as unrepaired=false, handled=false).
func (s *Swapper) Apply(f fault.Fault) (handled, repaired bool) {
	if !f.Class.IsTSV() {
		return false, false
	}
	s.dirty = true
	die := int(f.Region.Die.Val)
	ch := s.channel(f.Region.Stack, die)
	switch f.Class {
	case fault.DataTSV:
		if err := ch.InjectDataFault(f.TSV); err != nil {
			return true, false
		}
	case fault.AddrTSV:
		if err := ch.InjectAddrFault(f.TSV); err != nil {
			return true, false
		}
	}
	// The detection flow of Detector.OnCRCMismatch, inlined so the hot path
	// does not allocate a Detector per event: corrupt fixed rows implicate
	// the TSVs and trigger BIST.
	if ch.HasCorruptedBits() || ch.HasUnreachableAddr() {
		ch.RunBIST()
	}
	return true, ch.Repaired(f)
}
