package tsv

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	return NewChannel(stack.DefaultConfig())
}

func TestStandbyPool(t *testing.T) {
	ch := newTestChannel(t)
	want := []int{0, 64, 128, 192}
	got := ch.Standby()
	if len(got) != len(want) {
		t.Fatalf("standby pool size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("standby[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSwapDataBits(t *testing.T) {
	ch := newTestChannel(t)
	bits := ch.SwapDataBits()
	// Paper: bit[0], bit[64], ..., bit[448] — 8 bits total.
	if len(bits) != 8 {
		t.Fatalf("swap data bits = %d, want 8", len(bits))
	}
	want := map[int]bool{0: true, 64: true, 128: true, 192: true, 256: true, 320: true, 384: true, 448: true}
	for _, b := range bits {
		if !want[b] {
			t.Errorf("unexpected swap bit %d", b)
		}
	}
}

func TestRepairSingleDataTSV(t *testing.T) {
	ch := newTestChannel(t)
	if err := ch.InjectDataFault(1); err != nil {
		t.Fatal(err)
	}
	if n := len(ch.CorruptedBits()); n != 2 {
		t.Fatalf("DTSV fault corrupts %d bits, want 2 (burst length)", n)
	}
	if got := ch.RunBIST(); got != 1 {
		t.Fatalf("RunBIST repaired %d, want 1", got)
	}
	if n := len(ch.CorruptedBits()); n != 0 {
		t.Errorf("%d bits corrupt after repair", n)
	}
}

func TestRepairAddrTSV(t *testing.T) {
	ch := newTestChannel(t)
	if err := ch.InjectAddrFault(0); err != nil {
		t.Fatal(err)
	}
	if n := len(ch.UnreachableAddrBits()); n != 1 {
		t.Fatalf("unrepaired addr faults = %d, want 1", n)
	}
	ch.RunBIST()
	if n := len(ch.UnreachableAddrBits()); n != 0 {
		t.Errorf("addr fault not repaired")
	}
}

func TestRepairBudget(t *testing.T) {
	ch := newTestChannel(t)
	// 4 stand-by TSVs x burst 2 = 8 beats. 8 addr faults cost 1 beat each.
	for k := 0; k < 8; k++ {
		if err := ch.InjectAddrFault(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := ch.RunBIST(); got != 8 {
		t.Fatalf("repaired %d addr faults, want 8", got)
	}
	// Ninth fault exceeds the budget.
	if err := ch.InjectAddrFault(8); err != nil {
		t.Fatal(err)
	}
	if got := ch.RunBIST(); got != 0 {
		t.Fatalf("repaired %d beyond budget, want 0", got)
	}
	if n := len(ch.UnreachableAddrBits()); n != 1 {
		t.Errorf("unrepaired addr faults = %d, want 1", n)
	}
}

func TestDataRepairCostsBurstBeats(t *testing.T) {
	ch := newTestChannel(t)
	// 4 data faults cost 2 beats each = 8 beats, exactly the budget.
	for _, tsv := range []int{10, 20, 30, 40} {
		if err := ch.InjectDataFault(tsv); err != nil {
			t.Fatal(err)
		}
	}
	if got := ch.RunBIST(); got != 4 {
		t.Fatalf("repaired %d data faults, want 4", got)
	}
	if ch.BeatsFree() != 0 {
		t.Errorf("beats free = %d, want 0", ch.BeatsFree())
	}
	if err := ch.InjectDataFault(50); err != nil {
		t.Fatal(err)
	}
	if got := ch.RunBIST(); got != 0 {
		t.Errorf("repaired %d with no budget", got)
	}
}

func TestAddrFaultsPrioritized(t *testing.T) {
	ch := newTestChannel(t)
	// 4 data faults (8 beats) + 2 addr faults (2 beats) exceed the budget;
	// the addr faults must win slots first.
	for _, tsv := range []int{10, 20, 30, 40} {
		if err := ch.InjectDataFault(tsv); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 2; k++ {
		if err := ch.InjectAddrFault(k); err != nil {
			t.Fatal(err)
		}
	}
	ch.RunBIST()
	if n := len(ch.UnreachableAddrBits()); n != 0 {
		t.Errorf("addr faults unrepaired = %d, want 0 (priority)", n)
	}
	// 8-2 = 6 beats left for data: 3 of 4 repaired.
	if n := len(ch.CorruptedBits()); n != 2 {
		t.Errorf("corrupted bits = %d, want 2 (one data TSV left)", n)
	}
}

func TestInjectValidation(t *testing.T) {
	ch := newTestChannel(t)
	if err := ch.InjectDataFault(-1); err == nil {
		t.Error("accepted negative data TSV")
	}
	if err := ch.InjectDataFault(256); err == nil {
		t.Error("accepted out-of-range data TSV")
	}
	if err := ch.InjectAddrFault(24); err == nil {
		t.Error("accepted out-of-range addr TSV")
	}
}

func TestDetectorFlow(t *testing.T) {
	ch := newTestChannel(t)
	det := NewDetector(ch)
	lo, hi := det.FixedRowAddresses()
	if lo != 0 || hi != 65535 {
		t.Errorf("fixed rows = %d,%d want 0,65535", lo, hi)
	}
	// Healthy channel: CRC mismatch does not implicate TSVs.
	if tsvFault, _ := det.OnCRCMismatch(); tsvFault {
		t.Error("healthy channel flagged TSV fault")
	}
	if err := ch.InjectDataFault(7); err != nil {
		t.Fatal(err)
	}
	tsvFault, repairs := det.OnCRCMismatch()
	if !tsvFault {
		t.Error("faulty TSV not detected")
	}
	if repairs != 1 {
		t.Errorf("repairs = %d, want 1", repairs)
	}
}

func TestSwapperApply(t *testing.T) {
	cfg := stack.DefaultConfig()
	s := NewSwapper(cfg)
	mkFault := func(class fault.Class, stackIdx, die, tsvIdx int) fault.Fault {
		return fault.Fault{
			Class: class,
			TSV:   tsvIdx,
			Region: fault.Region{
				Stack: stackIdx,
				Die:   fault.ExactPattern(uint32(die)),
				Bank:  fault.AllPattern(),
				Row:   fault.AllPattern(),
				Col:   fault.AllPattern(),
			},
		}
	}
	handled, repaired := s.Apply(mkFault(fault.DataTSV, 0, 3, 42))
	if !handled || !repaired {
		t.Errorf("data TSV fault: handled=%v repaired=%v", handled, repaired)
	}
	// Non-TSV faults pass through untouched.
	handled, _ = s.Apply(fault.Fault{Class: fault.Bank})
	if handled {
		t.Error("bank fault handled by swapper")
	}
	// Exhaust one channel's budget; other channels are unaffected.
	for i := 0; i < 4; i++ {
		s.Apply(mkFault(fault.DataTSV, 0, 5, i+1))
	}
	_, repaired = s.Apply(mkFault(fault.DataTSV, 0, 5, 200))
	if repaired {
		t.Error("repaired beyond channel budget")
	}
	_, repaired = s.Apply(mkFault(fault.DataTSV, 0, 6, 200))
	if !repaired {
		t.Error("fresh channel failed to repair")
	}
	_, repaired = s.Apply(mkFault(fault.DataTSV, 1, 5, 200))
	if !repaired {
		t.Error("other stack's channel failed to repair")
	}
}
