package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenCorrupt drops arbitrary bytes where the store keeps its index,
// a result, and a job checkpoint, then exercises the full read/write
// surface. The store's contract under corruption is "warn and treat as a
// miss" — any panic or failed Open is a bug. (Satellite: checkpoint and
// index corruption must never take the process down.)
func FuzzOpenCorrupt(f *testing.F) {
	f.Add([]byte(`{"seq":3,"entries":[{"key":"aaa","size":1,"seq":3}]}`))
	f.Add([]byte(`{"seq":`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"seq":-9223372036854775808,"entries":[{"key":"../x","size":-5,"seq":0}]}`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		for _, d := range []string{filepath.Join(dir, resultsDir), filepath.Join(dir, jobsDir)} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		// The same bytes land as the index, a result artifact, and a job
		// checkpoint.
		for _, p := range []string{
			filepath.Join(dir, resultsDir, indexName),
			filepath.Join(dir, resultsDir, "aaa.json"),
			filepath.Join(dir, jobsDir, "ckpt.json"),
		} {
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := Open(dir, Options{Logf: quiet})
		if err != nil {
			t.Fatalf("Open must tolerate corruption, got %v", err)
		}
		s.GetResult("aaa")
		s.ListJobs()
		s.GetJob("ckpt")
		if err := s.PutResult("bbb", []byte(`{"fresh":true}`)); err != nil {
			t.Fatalf("PutResult after corrupted open: %v", err)
		}
		if got, ok := s.GetResult("bbb"); !ok || string(got) != `{"fresh":true}` {
			t.Fatalf("fresh write unreadable after corrupted open: %q, %v", got, ok)
		}
		// Reopen once more: the rewritten index must parse.
		if _, err := Open(dir, Options{Logf: quiet}); err != nil {
			t.Fatalf("second Open: %v", err)
		}
	})
}
