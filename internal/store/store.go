// Package store is a disk-backed, content-addressed artifact store for
// simulation campaigns: results are keyed by a canonical SHA-256 hash of
// the normalized options that produced them (so identical requests hit
// the cache instead of re-simulating), and job checkpoints are keyed the
// same way so a killed process resumes a campaign instead of restarting
// it.
//
// Durability model: every write goes to a temp file in the target
// directory and is renamed into place, so a crash never leaves a
// half-written artifact under a live name. The result index is itself
// written atomically; on open, the index is reconciled against the
// directory contents (entries whose file vanished are dropped, files the
// index missed are re-adopted), and any unreadable or corrupted entry is
// skipped with a logged warning — corruption costs a cache miss, never a
// panic or a failed open.
//
// The result area is LRU-capped by total bytes: inserting past the cap
// evicts least-recently-used entries. Checkpoints are small and bounded
// by the number of in-flight jobs, so they are not capped.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Key returns the canonical content address of v: the hex SHA-256 of its
// JSON encoding. Struct fields marshal in declaration order and map keys
// sort, so equal values produce equal keys. Callers must normalize v
// (apply defaults) before hashing — see jobs.Spec.Normalize — so that a
// zero field and its explicit default map to the same address.
func Key(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: hashing key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// ETag renders a content key (or any stable identity string) as a
// strong HTTP entity tag. The store's keys are already collision-free
// content addresses — the SHA-256 of the normalized spec that
// deterministically produced the result — so a key equality check is a
// byte equality check on the payload, which is exactly the contract a
// strong ETag makes: the HTTP layer can answer If-None-Match with 304
// without touching (or re-marshalling) the stored bytes.
func ETag(identity string) string { return `"` + identity + `"` }

// DefaultMaxBytes caps the result area when Options.MaxBytes is zero.
const DefaultMaxBytes = 256 << 20 // 256 MiB

// Options configures a Store.
type Options struct {
	// MaxBytes caps the total size of stored results; least-recently-used
	// entries are evicted past it. 0 selects DefaultMaxBytes; negative
	// disables the cap.
	MaxBytes int64
	// Logf sinks corruption warnings and eviction notices (default
	// log.Printf).
	Logf func(format string, args ...any)
}

// entry is one result-index record.
type entry struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
	// Seq is the logical access clock: higher = more recently used.
	Seq int64 `json:"seq"`
}

// indexFile is the persisted form of the result index.
type indexFile struct {
	Seq     int64   `json:"seq"`
	Entries []entry `json:"entries"`
}

// Store is a content-addressed result store plus a checkpoint area.
type Store struct {
	dir      string
	maxBytes int64
	logf     func(string, ...any)

	mu    sync.Mutex
	index map[string]*entry
	seq   int64
	total int64
}

const (
	resultsDir = "results"
	jobsDir    = "jobs"
	indexName  = "index.json"
	jsonExt    = ".json"
)

// Open creates (or reopens) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	for _, d := range []string{dir, filepath.Join(dir, resultsDir), filepath.Join(dir, jobsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		logf:     opts.Logf,
		index:    make(map[string]*entry),
	}
	s.loadIndex()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether k is safe to use as a file stem. Keys are
// SHA-256 hex in practice; the check keeps a corrupted index entry (or a
// hostile key) from escaping the store directory.
func validKey(k string) bool {
	if k == "" || len(k) > 128 {
		return false
	}
	for _, c := range k {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (s *Store) resultPath(key string) string {
	return filepath.Join(s.dir, resultsDir, key+jsonExt)
}

func (s *Store) jobPath(key string) string {
	return filepath.Join(s.dir, jobsDir, key+jsonExt)
}

// loadIndex reads the persisted index and reconciles it against the
// results directory. Every failure mode degrades to "treat as empty /
// re-adopt from disk" with a warning.
func (s *Store) loadIndex() {
	var idx indexFile
	path := filepath.Join(s.dir, resultsDir, indexName)
	if data, err := os.ReadFile(path); err == nil {
		if jerr := json.Unmarshal(data, &idx); jerr != nil {
			s.logf("store: corrupted index %s (%v); rebuilding from directory", path, jerr)
			idx = indexFile{}
		}
	}
	s.seq = idx.Seq
	for i := range idx.Entries {
		e := idx.Entries[i]
		if !validKey(e.Key) {
			s.logf("store: skipping index entry with invalid key %q", e.Key)
			continue
		}
		fi, err := os.Stat(s.resultPath(e.Key))
		if err != nil {
			// File vanished (crash between rename and index write, or
			// manual cleanup): drop the entry.
			continue
		}
		e.Size = fi.Size()
		if e.Seq > s.seq {
			s.seq = e.Seq
		}
		ent := e
		s.index[e.Key] = &ent
		s.total += e.Size
	}
	// Adopt result files the index missed (crash after rename, before
	// index persist). They enter as least-recently used.
	names, err := os.ReadDir(filepath.Join(s.dir, resultsDir))
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if name == indexName || !strings.HasSuffix(name, jsonExt) || de.IsDir() {
			continue
		}
		key := strings.TrimSuffix(name, jsonExt)
		if !validKey(key) || s.index[key] != nil {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		s.index[key] = &entry{Key: key, Size: fi.Size(), Seq: 0}
		s.total += fi.Size()
	}
}

// persistIndexLocked writes the index atomically. Callers hold s.mu.
func (s *Store) persistIndexLocked() {
	idx := indexFile{Seq: s.seq}
	idx.Entries = make([]entry, 0, len(s.index))
	for _, e := range s.index {
		idx.Entries = append(idx.Entries, *e)
	}
	sort.Slice(idx.Entries, func(i, j int) bool { return idx.Entries[i].Key < idx.Entries[j].Key })
	data, err := json.Marshal(idx)
	if err != nil {
		s.logf("store: encoding index: %v", err)
		return
	}
	if err := atomicWrite(filepath.Join(s.dir, resultsDir, indexName), data); err != nil {
		s.logf("store: persisting index: %v", err)
	}
}

// atomicWrite writes data to a temp file next to path and renames it into
// place, so readers never observe a partial file under the final name.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// PutResult stores data under key, evicting least-recently-used results
// if the total exceeds the size cap. An oversized single artifact is
// rejected rather than flushing the whole cache for it.
func (s *Store) PutResult(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
		return fmt.Errorf("store: result %s (%d bytes) exceeds the %d-byte cap", key, len(data), s.maxBytes)
	}
	if err := atomicWrite(s.resultPath(key), data); err != nil {
		return fmt.Errorf("store: writing result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.index[key]; old != nil {
		s.total -= old.Size
	}
	s.seq++
	s.index[key] = &entry{Key: key, Size: int64(len(data)), Seq: s.seq}
	s.total += int64(len(data))
	s.evictLocked()
	s.persistIndexLocked()
	return nil
}

// evictLocked removes least-recently-used entries until the total fits
// the cap. Callers hold s.mu.
func (s *Store) evictLocked() {
	for s.maxBytes > 0 && s.total > s.maxBytes && len(s.index) > 1 {
		var victim *entry
		for _, e := range s.index {
			if victim == nil || e.Seq < victim.Seq {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		if err := os.Remove(s.resultPath(victim.Key)); err != nil && !os.IsNotExist(err) {
			s.logf("store: evicting %s: %v", victim.Key, err)
		}
		s.total -= victim.Size
		delete(s.index, victim.Key)
		s.logf("store: evicted result %s (%d bytes, LRU)", victim.Key, victim.Size)
	}
}

// GetResult returns the stored bytes for key and refreshes its LRU
// position. A missing or unreadable entry is a miss.
func (s *Store) GetResult(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.resultPath(key))
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	if e := s.index[key]; e != nil {
		s.seq++
		e.Seq = s.seq
	}
	s.mu.Unlock()
	return data, true
}

// DeleteResult removes a stored result (e.g. one that failed to decode).
func (s *Store) DeleteResult(key string) {
	if !validKey(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.index[key]; e != nil {
		s.total -= e.Size
		delete(s.index, key)
		s.persistIndexLocked()
	}
	if err := os.Remove(s.resultPath(key)); err != nil && !os.IsNotExist(err) {
		s.logf("store: deleting result %s: %v", key, err)
	}
}

// ResultBytes returns the current total size of the result area.
func (s *Store) ResultBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// ResultCount returns the number of stored results.
func (s *Store) ResultCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// PutJob persists a job checkpoint under its spec key, atomically.
func (s *Store) PutJob(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid job key %q", key)
	}
	if err := atomicWrite(s.jobPath(key), data); err != nil {
		return fmt.Errorf("store: writing job checkpoint: %w", err)
	}
	return nil
}

// GetJob returns the checkpoint stored under key, if any.
func (s *Store) GetJob(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.jobPath(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// DeleteJob removes a job checkpoint (completed or cancelled jobs).
func (s *Store) DeleteJob(key string) {
	if !validKey(key) {
		return
	}
	if err := os.Remove(s.jobPath(key)); err != nil && !os.IsNotExist(err) {
		s.logf("store: deleting job %s: %v", key, err)
	}
}

// ListJobs returns every readable job checkpoint, keyed by spec key.
// Unreadable files are skipped with a warning — a corrupted checkpoint
// costs a restart of that one campaign, not the whole recovery.
func (s *Store) ListJobs() map[string][]byte {
	out := make(map[string][]byte)
	entries, err := os.ReadDir(filepath.Join(s.dir, jobsDir))
	if err != nil {
		s.logf("store: listing jobs: %v", err)
		return out
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, jsonExt) || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		key := strings.TrimSuffix(name, jsonExt)
		if !validKey(key) {
			s.logf("store: skipping job file with invalid key %q", name)
			continue
		}
		data, err := os.ReadFile(s.jobPath(key))
		if err != nil {
			s.logf("store: skipping unreadable job %s: %v", key, err)
			continue
		}
		out[key] = data
	}
	return out
}
