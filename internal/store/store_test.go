package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// quiet discards store warnings so corruption tests don't spam output.
func quiet(string, ...any) {}

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	if opts.Logf == nil {
		opts.Logf = quiet
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, dir
}

func TestKeyDeterministic(t *testing.T) {
	type spec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	k1, err := Key(spec{A: 1, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(spec{A: 1, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equal values hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 || !validKey(k1) {
		t.Errorf("key %q is not 64-char hex", k1)
	}
	k3, err := Key(spec{A: 2, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different values share a key")
	}
}

func TestResultRoundtripAndReopen(t *testing.T) {
	s, dir := openTemp(t, Options{})
	key, _ := Key(map[string]int{"n": 1})
	want := []byte(`{"ok":true}`)
	if err := s.PutResult(key, want); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	got, ok := s.GetResult(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("GetResult = %q, %v; want %q, true", got, ok, want)
	}
	if n := s.ResultCount(); n != 1 {
		t.Errorf("ResultCount = %d, want 1", n)
	}
	if b := s.ResultBytes(); b != int64(len(want)) {
		t.Errorf("ResultBytes = %d, want %d", b, len(want))
	}

	// A fresh Store over the same directory sees the same content.
	s2, err := Open(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok = s2.GetResult(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("after reopen GetResult = %q, %v; want %q, true", got, ok, want)
	}
}

func TestLRUEviction(t *testing.T) {
	// Cap fits two 40-byte artifacts but not three.
	s, _ := openTemp(t, Options{MaxBytes: 100})
	payload := []byte(strings.Repeat("x", 40))
	if err := s.PutResult("aaa", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("bbb", payload); err != nil {
		t.Fatal(err)
	}
	// Touch aaa so bbb becomes the LRU victim.
	if _, ok := s.GetResult("aaa"); !ok {
		t.Fatal("aaa missing before eviction")
	}
	if err := s.PutResult("ccc", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetResult("bbb"); ok {
		t.Error("bbb survived eviction; want LRU victim")
	}
	if _, ok := s.GetResult("aaa"); !ok {
		t.Error("aaa evicted despite recent access")
	}
	if _, ok := s.GetResult("ccc"); !ok {
		t.Error("ccc (just inserted) evicted")
	}
	if b := s.ResultBytes(); b > 100 {
		t.Errorf("ResultBytes = %d, want <= cap 100", b)
	}
}

func TestOversizedResultRejected(t *testing.T) {
	s, _ := openTemp(t, Options{MaxBytes: 10})
	if err := s.PutResult("big", []byte(strings.Repeat("x", 11))); err == nil {
		t.Error("oversized PutResult succeeded; want error")
	}
	if n := s.ResultCount(); n != 0 {
		t.Errorf("ResultCount = %d after rejected put, want 0", n)
	}
}

func TestCorruptedIndexRebuild(t *testing.T) {
	s, dir := openTemp(t, Options{})
	if err := s.PutResult("aaa", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("bbb", []byte("22")); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, resultsDir, indexName)
	if err := os.WriteFile(idx, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatalf("reopen with corrupt index: %v", err)
	}
	if n := s2.ResultCount(); n != 2 {
		t.Errorf("ResultCount after rebuild = %d, want 2", n)
	}
	if _, ok := s2.GetResult("bbb"); !ok {
		t.Error("bbb lost after index rebuild")
	}
}

func TestIndexReconciliation(t *testing.T) {
	s, dir := openTemp(t, Options{})
	if err := s.PutResult("aaa", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Vanish aaa behind the index's back; drop an unindexed file in.
	if err := os.Remove(filepath.Join(dir, resultsDir, "aaa"+jsonExt)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, resultsDir, "orphan"+jsonExt), []byte("33"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetResult("aaa"); ok {
		t.Error("vanished entry still served")
	}
	if _, ok := s2.GetResult("orphan"); !ok {
		t.Error("unindexed file not adopted on open")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, _ := openTemp(t, Options{})
	for _, k := range []string{"", "../escape", "a/b", "a.b", strings.Repeat("x", 129)} {
		if err := s.PutResult(k, []byte("x")); err == nil {
			t.Errorf("PutResult(%q) succeeded; want error", k)
		}
		if _, ok := s.GetResult(k); ok {
			t.Errorf("GetResult(%q) hit; want miss", k)
		}
		if err := s.PutJob(k, []byte("x")); err == nil {
			t.Errorf("PutJob(%q) succeeded; want error", k)
		}
	}
}

func TestJobCheckpointRoundtrip(t *testing.T) {
	s, dir := openTemp(t, Options{})
	if err := s.PutJob("job1", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetJob("job1")
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("GetJob = %q, %v", got, ok)
	}
	// Files ListJobs must skip: temp leftovers, invalid key stems,
	// directories.
	jdir := filepath.Join(dir, jobsDir)
	if err := os.WriteFile(filepath.Join(jdir, ".tmp-123.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jdir, "bad key!.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(jdir, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	listed := s.ListJobs()
	if len(listed) != 1 || string(listed["job1"]) != `{"v":1}` {
		t.Fatalf("ListJobs = %v, want only job1", listed)
	}
	s.DeleteJob("job1")
	if _, ok := s.GetJob("job1"); ok {
		t.Error("job1 survived DeleteJob")
	}
}

func TestDeleteResult(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.PutResult("aaa", []byte("123")); err != nil {
		t.Fatal(err)
	}
	s.DeleteResult("aaa")
	if _, ok := s.GetResult("aaa"); ok {
		t.Error("aaa survived DeleteResult")
	}
	if n, b := s.ResultCount(), s.ResultBytes(); n != 0 || b != 0 {
		t.Errorf("count=%d bytes=%d after delete, want 0/0", n, b)
	}
}

// TestConcurrentPutGetEviction hammers the LRU with concurrent writers
// and readers and asserts the byte-cap invariant holds at every
// observable instant: with more than one cached entry, the accounted
// total never exceeds MaxBytes — eviction happens inside the same
// critical section as the insert, so no reader can catch the store
// over budget mid-flight. Run under -race via `go test -race`.
func TestConcurrentPutGetEviction(t *testing.T) {
	val := []byte(strings.Repeat("x", 512))
	// Cap fits ~8 entries, far fewer than the writers insert, so
	// eviction churns continuously under contention.
	maxBytes := int64(8 * len(val))
	s, _ := openTemp(t, Options{MaxBytes: maxBytes})

	const writers, perWriter = 8, 40
	stop := make(chan struct{})

	// Observer: polls the accounted total for the whole run, while puts
	// and evictions race underneath it.
	var overBudget atomic.Int64
	var obsWg sync.WaitGroup
	obsWg.Add(1)
	go func() {
		defer obsWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := s.ResultBytes(); got > maxBytes && s.ResultCount() > 1 {
				overBudget.Store(got)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("cc-%02d-%03d", w, i)
				if err := s.PutResult(key, val); err != nil {
					t.Errorf("PutResult(%s): %v", key, err)
					return
				}
				// Readers touch recent keys, racing eviction's LRU scan.
				if data, ok := s.GetResult(key); ok && len(data) != len(val) {
					t.Errorf("GetResult(%s) = %d bytes, want %d", key, len(data), len(val))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	obsWg.Wait()

	if got := overBudget.Load(); got != 0 {
		t.Errorf("observer caught the store %d bytes over its %d-byte cap mid-flight", got, maxBytes)
	}
	if got := s.ResultBytes(); got > maxBytes {
		t.Errorf("final accounted bytes %d exceed cap %d", got, maxBytes)
	}
	if n := s.ResultCount(); n < 1 {
		t.Errorf("eviction emptied the store entirely (%d entries)", n)
	}
}

func TestETagIsStrongValidator(t *testing.T) {
	keyA, err := Key(map[string]int{"trials": 1000})
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := Key(map[string]int{"trials": 2000})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ETag(keyA), ETag(keyB)
	if a == b {
		t.Fatalf("distinct keys share ETag %s", a)
	}
	// Strong validators are quoted opaque strings (RFC 9110 §8.8.3) and
	// deterministic: same content key, same tag.
	if !strings.HasPrefix(a, `"`) || !strings.HasSuffix(a, `"`) {
		t.Fatalf("ETag %q is not quoted", a)
	}
	if again := ETag(keyA); again != a {
		t.Fatalf("ETag not deterministic: %s vs %s", a, again)
	}
}
