// Package power implements an active-power model for stacked DRAM in the
// style of the Micron system-power technical note the paper uses (§III-B):
// energy is accounted per DRAM operation (activate/precharge pair, read
// burst, write burst) plus refresh, and average active power is energy
// divided by execution time.
//
// Absolute numbers are representative of an 8 Gb DDR3-class die; the
// experiments only use ratios (normalized active power), which depend on
// operation counts and execution time rather than on the exact constants.
package power

import "fmt"

// Params holds per-operation energies and refresh power for one die.
type Params struct {
	// EnergyACT is the energy of one activate/precharge pair (nJ).
	EnergyACT float64
	// EnergyRD is the energy of one 64-byte read burst (nJ).
	EnergyRD float64
	// EnergyWR is the energy of one 64-byte write burst (nJ).
	EnergyWR float64
	// RefreshPower is the standing refresh power per die (mW), at the
	// HBM-style 32 ms refresh interval.
	RefreshPower float64
	// ClockHz is the memory clock used to convert cycles to seconds.
	ClockHz float64
}

// Default8Gb returns representative parameters for an 8 Gb die with a 2 KB
// row buffer (Micron TN-41-01-style values adapted to a stacked die).
func Default8Gb() Params {
	return Params{
		EnergyACT:    10.0, // nJ per ACT+PRE of a 2KB row (IDD0-based)
		EnergyRD:     4.0,  // nJ per 64B read burst
		EnergyWR:     4.5,  // nJ per 64B write burst
		RefreshPower: 2,    // mW per die at the 32 ms HBM refresh interval
		ClockHz:      800e6,
	}
}

// Counts tallies DRAM operations over a simulated interval. Data-transfer
// energy scales with bytes moved (a striped access moves the same 64 bytes
// as an unstriped one, just split across banks), while activation energy
// scales with the number of row activations (striping multiplies these).
type Counts struct {
	Activates  uint64
	ReadBytes  uint64
	WriteBytes uint64
	// Cycles is the execution time in memory-clock cycles.
	Cycles uint64
	// Dies is the number of powered dies (for refresh accounting).
	Dies int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Activates += other.Activates
	c.ReadBytes += other.ReadBytes
	c.WriteBytes += other.WriteBytes
	if other.Cycles > c.Cycles {
		c.Cycles = other.Cycles
	}
	if other.Dies > c.Dies {
		c.Dies = other.Dies
	}
}

// Energy returns the total active energy in nanojoules.
func (p Params) Energy(c Counts) float64 {
	dynamic := float64(c.Activates)*p.EnergyACT +
		float64(c.ReadBytes)/64*p.EnergyRD +
		float64(c.WriteBytes)/64*p.EnergyWR
	seconds := p.Seconds(c)
	refresh := p.RefreshPower * 1e-3 * float64(c.Dies) * seconds * 1e9 // mW*s -> nJ
	return dynamic + refresh
}

// Seconds converts the count's cycle total to seconds.
func (p Params) Seconds(c Counts) float64 {
	if p.ClockHz == 0 {
		return 0
	}
	return float64(c.Cycles) / p.ClockHz
}

// ActivePower returns the average active power in watts over the interval.
func (p Params) ActivePower(c Counts) float64 {
	s := p.Seconds(c)
	if s == 0 {
		return 0
	}
	return p.Energy(c) * 1e-9 / s
}

// String renders counts for logs.
func (c Counts) String() string {
	return fmt.Sprintf("counts{act:%d rdB:%d wrB:%d cycles:%d}", c.Activates, c.ReadBytes, c.WriteBytes, c.Cycles)
}
