package power

import (
	"math"
	"testing"
)

func TestEnergyComposition(t *testing.T) {
	p := Default8Gb()
	c := Counts{Activates: 100, ReadBytes: 50 * 64, WriteBytes: 25 * 64, Cycles: 800, Dies: 0}
	want := 100*p.EnergyACT + 50*p.EnergyRD + 25*p.EnergyWR
	if got := p.Energy(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestRefreshScalesWithTimeAndDies(t *testing.T) {
	p := Default8Gb()
	base := Counts{Cycles: 800e6, Dies: 1} // 1 second
	one := p.Energy(base)
	twoDies := base
	twoDies.Dies = 2
	if got := p.Energy(twoDies); math.Abs(got-2*one) > 1e-6 {
		t.Errorf("2-die refresh energy = %v, want %v", got, 2*one)
	}
	twice := base
	twice.Cycles *= 2
	if got := p.Energy(twice); math.Abs(got-2*one) > 1e-6 {
		t.Errorf("2-second refresh energy = %v, want %v", got, 2*one)
	}
}

func TestActivePower(t *testing.T) {
	p := Default8Gb()
	// 1e6 activates over 1 second: EnergyACT nJ each -> EnergyACT mW.
	c := Counts{Activates: 1e6, Cycles: uint64(p.ClockHz)}
	want := p.EnergyACT * 1e-3
	if got := p.ActivePower(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("ActivePower = %v, want %v", got, want)
	}
	if got := p.ActivePower(Counts{}); got != 0 {
		t.Errorf("zero counts power = %v", got)
	}
}

func TestActivationDominatesWhenFannedOut(t *testing.T) {
	// The striping experiments rely on activation energy scaling with the
	// number of banks touched while burst energy stays constant.
	p := Default8Gb()
	sameBank := Counts{Activates: 1000, ReadBytes: 1000 * 64, Cycles: 1e6}
	striped := Counts{Activates: 8000, ReadBytes: 1000 * 64, Cycles: 1e6}
	ratio := p.Energy(striped) / p.Energy(sameBank)
	if ratio < 3 || ratio > 8 {
		t.Errorf("8x activation energy ratio = %.2f, want within (3,8)", ratio)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Activates: 1, ReadBytes: 2, WriteBytes: 3, Cycles: 10, Dies: 2}
	b := Counts{Activates: 10, ReadBytes: 20, WriteBytes: 30, Cycles: 5, Dies: 4}
	a.Add(b)
	if a.Activates != 11 || a.ReadBytes != 22 || a.WriteBytes != 33 {
		t.Errorf("Add got %+v", a)
	}
	if a.Cycles != 10 {
		t.Errorf("Cycles should keep max: %d", a.Cycles)
	}
	if a.Dies != 4 {
		t.Errorf("Dies should keep max: %d", a.Dies)
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestSecondsZeroClock(t *testing.T) {
	var p Params
	if p.Seconds(Counts{Cycles: 100}) != 0 {
		t.Error("zero clock should give zero seconds")
	}
}
