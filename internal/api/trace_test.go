package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/trace"
)

// TestDebugTraceEndpoint: a server built with a recorder serves the
// flight-recorder contents at /debug/trace, populated by simulation runs
// and correlated with their X-Run-Id.
func TestDebugTraceEndpoint(t *testing.T) {
	rec := trace.New(trace.Options{Capacity: 4096, RunID: "proc"})
	srv := httptest.NewServer(New(Options{Logf: quietLogf, Trace: rec}).Handler())
	defer srv.Close()

	var rel struct {
		RunID string `json:"runId"`
	}
	resp := postJSON(t, srv.URL+"/api/v1/reliability",
		map[string]any{"scheme": "None", "trials": 500}, &rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reliability status %d", resp.StatusCode)
	}
	if rel.RunID == "" || rel.RunID != resp.Header.Get("X-Run-Id") {
		t.Fatalf("response runId %q does not match X-Run-Id %q", rel.RunID, resp.Header.Get("X-Run-Id"))
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	tresp := getJSON(t, srv.URL+"/debug/trace", &doc)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events after a simulation run")
	}
	sawRun := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "run" && ev.Ph == "X" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("no run span in trace")
	}

	textResp, err := http.Get(srv.URL + "/debug/trace?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer textResp.Body.Close()
	body, _ := io.ReadAll(textResp.Body)
	if !strings.HasPrefix(string(body), "# trace ") {
		t.Errorf("text dump header missing: %.60q", string(body))
	}

	badResp, err := http.Get(srv.URL + "/debug/trace?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status %d, want 400", badResp.StatusCode)
	}
}

// TestDebugTraceAbsentWithoutRecorder: without Options.Trace the route
// must not exist.
func TestDebugTraceAbsentWithoutRecorder(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestReliabilityForensics: with forensics requested, the response carries
// a breakdown summing to failures plus exemplar records; without it, the
// fields stay absent.
func TestReliabilityForensics(t *testing.T) {
	srv := testServer(t)
	req := map[string]any{
		"scheme": "None", "trials": 4000, "tsvFit": 1000,
		"lifetimeYears": 7, "seed": 7, "forensics": true,
	}
	var out struct {
		RunID     string           `json:"runId"`
		Failures  int              `json:"failures"`
		Breakdown map[string]int   `json:"breakdown"`
		Exemplars []map[string]any `json:"exemplars"`
	}
	resp := postJSON(t, srv.URL+"/api/v1/reliability", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Failures == 0 {
		t.Fatal("expected failures from the unprotected scheme at these rates")
	}
	sum := 0
	for _, n := range out.Breakdown {
		sum += n
	}
	if sum != out.Failures {
		t.Errorf("breakdown sums to %d, failures = %d", sum, out.Failures)
	}
	if len(out.Exemplars) == 0 {
		t.Fatal("no exemplars in forensics response")
	}
	if got := out.Exemplars[0]["runId"]; got != out.RunID {
		t.Errorf("exemplar runId = %v, want %v", got, out.RunID)
	}

	// Same request without forensics: fields stay absent from the JSON.
	delete(req, "forensics")
	var raw map[string]json.RawMessage
	postJSON(t, srv.URL+"/api/v1/reliability", req, &raw)
	if _, ok := raw["breakdown"]; ok {
		t.Error("breakdown present without forensics opt-in")
	}
	if _, ok := raw["exemplars"]; ok {
		t.Error("exemplars present without forensics opt-in")
	}
}

// TestReliabilityMaxExemplarsValidation rejects out-of-range caps.
func TestReliabilityMaxExemplarsValidation(t *testing.T) {
	srv := httptest.NewServer(New(Options{Logf: quietLogf}).Handler())
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/api/v1/reliability",
		map[string]any{"scheme": "None", "maxExemplars": 1000}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

// TestPerformancePhases: the performance response exposes the latency
// attribution and the 3DP parity overhead.
func TestPerformancePhases(t *testing.T) {
	srv := testServer(t)
	var out struct {
		RunID      string `json:"runId"`
		ReadPhases struct {
			CAS   float64 `json:"cas"`
			Burst float64 `json:"burst"`
		} `json:"readPhases"`
		AvgParityOverhead float64 `json:"avgParityOverheadCycles"`
	}
	resp := postJSON(t, srv.URL+"/api/v1/performance",
		map[string]any{"benchmark": "mcf", "protection": "3dp", "requests": 20000}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.RunID == "" {
		t.Error("performance response missing runId")
	}
	if out.ReadPhases.CAS <= 0 || out.ReadPhases.Burst <= 0 {
		t.Errorf("phase averages not populated: %+v", out.ReadPhases)
	}
	if out.AvgParityOverhead <= 0 {
		t.Errorf("3DP run reported no parity overhead")
	}
}
