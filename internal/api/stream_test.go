package api

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/stream"
)

// streamServer builds a test server with the job routes and the SSE hub
// wired together the way cmd/citadel-server does: the orchestrator
// publishes into the hub, the API serves it at /api/v1/jobs/{id}/events.
func streamServer(t *testing.T, hubOpts stream.Options, workers, depth int) (*httptest.Server, *stream.Hub, *Server) {
	t.Helper()
	if hubOpts.Logf == nil {
		hubOpts.Logf = quietLogf
	}
	hub := stream.New(hubOpts)
	st, err := store.Open(t.TempDir(), store.Options{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	orch := jobs.New(jobs.Options{Store: st, Workers: workers, QueueDepth: depth, Stream: hub, Logf: quietLogf})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		orch.Close(ctx)
	})
	apiSrv := New(Options{Jobs: orch, Stream: hub, StreamKeepAlive: 50 * time.Millisecond, Logf: quietLogf})
	srv := httptest.NewServer(apiSrv.Handler())
	t.Cleanup(srv.Close)
	return srv, hub, apiSrv
}

type sseEvent struct {
	id    string
	event string
	data  string
}

// readEvent parses one SSE frame, skipping comment keepalives.
func readEvent(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	got := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if got {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // keepalive comment
		case strings.HasPrefix(line, "id: "):
			ev.id, got = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "event: "):
			ev.event, got = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			ev.data, got = strings.TrimPrefix(line, "data: "), true
		}
	}
}

// openEvents connects to the job's SSE stream.
func openEvents(t *testing.T, base, id string, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestJobEventsStreamToTerminal(t *testing.T) {
	srv, _, _ := streamServer(t, stream.Options{}, 1, 8)
	var sub JobResponse
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(31), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	resp := openEvents(t, srv.URL, sub.Job.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("SSE response got Content-Encoding %q — stream must not be compressed", ce)
	}
	br := bufio.NewReader(resp.Body)
	var last sseEvent
	for {
		ev, err := readEvent(br)
		if err != nil {
			break // server closes the stream after the terminal frame
		}
		last = ev
	}
	if last.event != "done" {
		t.Fatalf("final event = %q (data %q), want done", last.event, last.data)
	}
	if !strings.Contains(last.data, `"state":"done"`) {
		t.Fatalf("terminal snapshot missing done state: %q", last.data)
	}
}

func TestJobEventsResumeLastEventID(t *testing.T) {
	srv, _, _ := streamServer(t, stream.Options{}, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(32), &sub)

	// Let the job finish first so the topic is terminal.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var got JobResponse
		getJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, &got)
		if got.Job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fresh connection: the latest (terminal) snapshot is replayed, then
	// the stream closes.
	resp := openEvents(t, srv.URL, sub.Job.ID, "")
	br := bufio.NewReader(resp.Body)
	ev, err := readEvent(br)
	if err != nil {
		t.Fatalf("reading replayed terminal event: %v", err)
	}
	if ev.event != "done" {
		t.Fatalf("replayed event = %q, want done", ev.event)
	}
	if _, err := readEvent(br); err == nil {
		t.Fatal("stream stayed open past the terminal frame")
	}

	// Reconnect confirming that event ID: nothing to replay, immediate
	// close — the client already has the final state.
	resp2 := openEvents(t, srv.URL, sub.Job.ID, ev.id)
	br2 := bufio.NewReader(resp2.Body)
	if ev2, err := readEvent(br2); err == nil {
		t.Fatalf("resume with Last-Event-ID=%s replayed event %q", ev.id, ev2.event)
	}
}

func TestJobEventsNotFound(t *testing.T) {
	srv, _, _ := streamServer(t, stream.Options{}, 1, 8)
	resp := openEvents(t, srv.URL, "nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestJobEventsSubscriberLimit(t *testing.T) {
	srv, _, _ := streamServer(t, stream.Options{MaxSubscribers: 1}, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(33), &sub)

	resp := openEvents(t, srv.URL, sub.Job.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first subscriber status = %d", resp.StatusCode)
	}
	// Hold the first stream open: read its initial frame.
	br := bufio.NewReader(resp.Body)
	if _, err := readEvent(br); err != nil {
		t.Fatalf("first subscriber frame: %v", err)
	}

	resp2 := openEvents(t, srv.URL, sub.Job.ID, "")
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second subscriber status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, nil)
}

func TestDrainSendsTerminalEvent(t *testing.T) {
	srv, hub, apiSrv := streamServer(t, stream.Options{}, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(34), &sub)

	resp := openEvents(t, srv.URL, sub.Job.ID, "")
	br := bufio.NewReader(resp.Body)
	if _, err := readEvent(br); err != nil {
		t.Fatalf("initial frame: %v", err)
	}

	apiSrv.Drain()
	var last sseEvent
	for {
		ev, err := readEvent(br)
		if err != nil {
			break
		}
		last = ev
	}
	if last.event != stream.DrainEvent {
		t.Fatalf("final event = %q, want %q", last.event, stream.DrainEvent)
	}
	if got := hub.Subscribers(); got != 0 {
		t.Fatalf("hub.Subscribers() after drain = %d, want 0", got)
	}
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, nil)
}

func TestReadyzReportsStreamSubscribers(t *testing.T) {
	srv, _, _ := streamServer(t, stream.Options{}, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(35), &sub)
	resp := openEvents(t, srv.URL, sub.Job.ID, "")
	br := bufio.NewReader(resp.Body)
	if _, err := readEvent(br); err != nil {
		t.Fatalf("initial frame: %v", err)
	}

	var body map[string]any
	getJSON(t, srv.URL+"/api/v1/readyz", &body)
	if n, ok := body["streamSubscribers"].(float64); !ok || n != 1 {
		t.Fatalf("readyz streamSubscribers = %v, want 1", body["streamSubscribers"])
	}
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, nil)
}
