package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/store"
)

// clusterServer builds a test server with both the job and coordinator
// routes mounted.
func clusterServer(t *testing.T) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	coord := cluster.New(cluster.Options{
		LeaseTTL: time.Second, Tick: 100 * time.Millisecond, NoWorkerGrace: -1, Logf: quietLogf,
	})
	t.Cleanup(coord.Close)
	st, err := store.Open(t.TempDir(), store.Options{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	orch := jobs.New(jobs.Options{Store: st, Workers: 1, QueueDepth: 4, Logf: quietLogf, ChunkExec: coord})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		orch.Close(ctx)
	})
	srv := httptest.NewServer(New(Options{Jobs: orch, Cluster: coord, Logf: quietLogf}).Handler())
	t.Cleanup(srv.Close)
	return srv, coord
}

func postClusterJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestClusterRoutes drives the worker protocol over HTTP: idle lease is
// 204, contact makes the worker visible in the fleet listing and readyz,
// and malformed requests are 400s.
func TestClusterRoutes(t *testing.T) {
	srv, _ := clusterServer(t)

	// No campaigns: leasing answers 204 No Content.
	resp := postClusterJSON(t, srv.URL+cluster.LeasePath, cluster.LeaseRequest{WorkerID: "w1"}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle lease = %d, want 204", resp.StatusCode)
	}
	// Missing worker ID is a 400.
	resp = postClusterJSON(t, srv.URL+cluster.LeasePath, cluster.LeaseRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lease without workerId = %d, want 400", resp.StatusCode)
	}
	// Heartbeat on an unknown lease is a clean "not extended", not an error.
	var hb cluster.HeartbeatResponse
	resp = postClusterJSON(t, srv.URL+cluster.HeartbeatPath,
		cluster.HeartbeatRequest{WorkerID: "w1", LeaseID: "nope"}, &hb)
	if resp.StatusCode != http.StatusOK || hb.Extended {
		t.Fatalf("unknown-lease heartbeat = %d extended=%t, want 200 extended=false", resp.StatusCode, hb.Extended)
	}
	// Complete without an envelope is a 400.
	resp = postClusterJSON(t, srv.URL+cluster.CompletePath,
		cluster.CompleteRequest{WorkerID: "w1", LeaseID: "nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("complete without envelope = %d, want 400", resp.StatusCode)
	}
	// The worker that made contact shows up in the fleet listing.
	var ws cluster.WorkersResponse
	if resp := getJSON(t, srv.URL+cluster.WorkersPath, &ws); resp.StatusCode != http.StatusOK {
		t.Fatalf("workers = %d, want 200", resp.StatusCode)
	}
	if len(ws.Workers) != 1 || ws.Workers[0].ID != "w1" || ws.LiveWorkers != 1 {
		t.Fatalf("workers listing = %+v, want exactly live w1", ws)
	}
}

// TestReadyzReportsQueueAndWorkers: with jobs and clustering enabled,
// readiness reports the job-queue depth and the live-worker count so
// operators can see both backlogs from one probe.
func TestReadyzReportsQueueAndWorkers(t *testing.T) {
	srv, coord := clusterServer(t)

	// A worker makes contact so the live count is non-zero.
	coord.Lease("w1")

	var body struct {
		Status        string `json:"status"`
		JobQueueDepth *int   `json:"jobQueueDepth"`
		JobQueueCap   *int   `json:"jobQueueCap"`
		LiveWorkers   *int   `json:"liveWorkers"`
	}
	resp := getJSON(t, srv.URL+"/api/v1/readyz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ready" {
		t.Fatalf("readyz = %d %q, want 200 ready", resp.StatusCode, body.Status)
	}
	if body.JobQueueDepth == nil || body.JobQueueCap == nil {
		t.Fatal("readyz is missing jobQueueDepth/jobQueueCap with jobs enabled")
	}
	if *body.JobQueueCap != 4 {
		t.Errorf("jobQueueCap = %d, want 4", *body.JobQueueCap)
	}
	if body.LiveWorkers == nil {
		t.Fatal("readyz is missing liveWorkers with clustering enabled")
	}
	if *body.LiveWorkers != 1 {
		t.Errorf("liveWorkers = %d, want 1", *body.LiveWorkers)
	}
}

// TestReadyzOmitsClusterFieldsWhenDisabled: the plain server keeps its
// original readiness shape.
func TestReadyzOmitsClusterFieldsWhenDisabled(t *testing.T) {
	srv := testServer(t)
	var body map[string]any
	resp := getJSON(t, srv.URL+"/api/v1/readyz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	for _, k := range []string{"jobQueueDepth", "jobQueueCap", "liveWorkers"} {
		if _, ok := body[k]; ok {
			t.Errorf("readyz reports %q without the feature enabled", k)
		}
	}
}

// TestRetryAfterJitter: the queue-depth-scaled Retry-After hint must stay
// inside its ±25% band around 2s/job, stay clamped to [1, 120], and
// actually spread — identical hints would stampede every shed client
// back at the same instant.
func TestRetryAfterJitter(t *testing.T) {
	const depth = 20 // base 40s, band [30, 50]
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfterSeconds(depth)
		if v < 30 || v > 50 {
			t.Fatalf("retryAfterSeconds(%d) = %d, outside the jitter band [30, 50]", depth, v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 samples produced %d distinct hints; jitter is not spreading retries", len(seen))
	}
	// Clamps survive the jitter.
	for i := 0; i < 200; i++ {
		if v := retryAfterSeconds(0); v != 1 {
			t.Fatalf("retryAfterSeconds(0) = %d, want 1", v)
		}
		if v := retryAfterSeconds(1000); v != 120 {
			t.Fatalf("retryAfterSeconds(1000) = %d, want 120", v)
		}
	}
}
