package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrapeMetrics fetches and returns the /metrics body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts an un-labelled sample value from Prometheus text.
func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestMetricsScrapeDuringLiveSimulation is the acceptance check for the
// observability layer: while a reliability run is in flight, /metrics must
// show the in-flight gauge up and the engine trial counter moving.
func TestMetricsScrapeDuringLiveSimulation(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, Logf: quietLogf})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	before := scrapeMetrics(t, srv.URL)
	trialsBefore, _ := metricValue(before, "citadel_faultsim_trials_total")
	runsBefore, _ := metricValue(before, "citadel_api_sim_runs_total")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: maxTrialsPerCall, Seed: 1})
		req := httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)).WithContext(ctx)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	for i := 0; s.InFlight() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.InFlight() != 1 {
		t.Fatal("run never acquired a simulation slot")
	}

	// Workers flush tallies every few hundred trials, so the counter must
	// move within the deadline while the run is still alive.
	deadline := time.Now().Add(15 * time.Second)
	sawLive := false
	for time.Now().Before(deadline) {
		body := scrapeMetrics(t, srv.URL)
		trials, ok := metricValue(body, "citadel_faultsim_trials_total")
		inflight, ok2 := metricValue(body, "citadel_api_inflight_runs")
		active, ok3 := metricValue(body, "citadel_faultsim_runs_active")
		if ok && ok2 && ok3 && trials > trialsBefore && inflight >= 1 && active >= 1 {
			sawLive = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawLive {
		t.Fatal("metrics never showed the live run (trials moving + in-flight gauge up)")
	}

	cancel()
	<-done

	after := scrapeMetrics(t, srv.URL)
	for _, name := range []string{
		"citadel_faultsim_trials_total",
		"citadel_faultsim_failures_total",
		"citadel_faultsim_scrub_passes_total",
		"citadel_api_requests_total",
		"citadel_api_sim_runs_total",
	} {
		if _, ok := metricValue(after, name); !ok {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
	if runs, _ := metricValue(after, "citadel_api_sim_runs_total"); runs < runsBefore+1 {
		t.Errorf("sim runs counter %v, want > %v", runs, runsBefore)
	}
	if inflight, _ := metricValue(after, "citadel_api_inflight_runs"); inflight != 0 {
		t.Errorf("in-flight gauge %v after run completed, want 0", inflight)
	}
}

func TestMetricsExposePerformanceCounters(t *testing.T) {
	srv := testServer(t)
	before := scrapeMetrics(t, srv.URL)
	reqBefore, _ := metricValue(before, "citadel_perfsim_requests_total")

	var out PerformanceResponse
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{
		Benchmark: "mcf", Requests: 5000, Seed: 3,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	after := scrapeMetrics(t, srv.URL)
	// The handler runs a baseline plus the requested config: 10000 total.
	reqAfter, ok := metricValue(after, "citadel_perfsim_requests_total")
	if !ok || reqAfter < reqBefore+10000 {
		t.Errorf("perfsim requests counter %v, want >= %v", reqAfter, reqBefore+10000)
	}
	for _, want := range []string{
		"# TYPE citadel_perfsim_read_latency_cycles histogram",
		"citadel_perfsim_read_latency_cycles_bucket{le=\"+Inf\"}",
		"citadel_perfsim_read_latency_cycles_sum",
		"citadel_perfsim_read_latency_cycles_count",
		"citadel_perfsim_row_hits_total",
		"# HELP citadel_faultsim_trials_total",
	} {
		if !strings.Contains(after, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRunIDHeaderAndStructuredLogs(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	s := New(Options{Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: 1000, Seed: 1})
	resp, err := http.Post(srv.URL+"/api/v1/reliability", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	runID := resp.Header.Get("X-Run-Id")
	if runID == "" {
		t.Fatal("response missing X-Run-Id header")
	}

	mu.Lock()
	defer mu.Unlock()
	var start, done bool
	for _, l := range logs {
		if strings.Contains(l, "run="+runID) {
			if strings.HasSuffix(l, "start") {
				start = true
			}
			if strings.HasSuffix(l, "done") {
				done = true
			}
		}
	}
	if !start || !done {
		t.Errorf("missing structured run logs for %s (start=%t done=%t): %v", runID, start, done, logs)
	}
}

func TestPerformanceRunIDHeader(t *testing.T) {
	srv := testServer(t)
	var out PerformanceResponse
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{
		Benchmark: "gcc", Requests: 2000, Seed: 1,
	}, &out)
	if resp.Header.Get("X-Run-Id") == "" {
		t.Error("performance response missing X-Run-Id header")
	}
}

func TestPprofGatedByOption(t *testing.T) {
	off := httptest.NewServer(New(Options{Logf: quietLogf}).Handler())
	t.Cleanup(off.Close)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(New(Options{EnablePprof: true, Logf: quietLogf}).Handler())
	t.Cleanup(on.Close)
	resp2, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof enabled: status %d, body %q", resp2.StatusCode, string(body[:min(len(body), 200)]))
	}
}
