package api

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
)

// condGet performs a GET with an optional If-None-Match header and
// returns the response with its body consumed into out (when non-nil the
// body must be empty for 304s, so out is only decoded on 200).
func condGet(t *testing.T, url, ifNoneMatch string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func waitTerminal(t *testing.T, base, id string) *http.Response {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var got JobResponse
		resp := getJSON(t, base+"/api/v1/jobs/"+id, &got)
		if got.Job != nil && got.Job.State.Terminal() {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, got.Job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobStatusETagRoundTrip(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(41), &sub)
	done := waitTerminal(t, srv.URL, sub.Job.ID)

	etag := done.Header.Get("ETag")
	if etag == "" {
		t.Fatal("terminal job status has no ETag")
	}
	if cc := done.Header.Get("Cache-Control"); !strings.Contains(cc, "public") {
		t.Fatalf("terminal Cache-Control = %q, want public", cc)
	}

	// Revalidation: the stored ETag answers 304 with an empty body.
	resp := condGet(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body))
	}

	// A stale validator still gets the full representation.
	resp = condGet(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, `"stale"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET status = %d, want 200", resp.StatusCode)
	}

	// A different spec produces a different content key, so its ETag must
	// not collide: the validator really is derived from the content.
	var sub2 JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(42), &sub2)
	done2 := waitTerminal(t, srv.URL, sub2.Job.ID)
	if etag2 := done2.Header.Get("ETag"); etag2 == "" || etag2 == etag {
		t.Fatalf("distinct jobs share ETag %q", etag2)
	}
}

func TestJobStatusRunningNotCached(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	var sub JobResponse
	postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(43), &sub)

	var got JobResponse
	resp := getJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, &got)
	if got.Job.State.Terminal() {
		t.Skip("job finished before the running-state poll")
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("running Cache-Control = %q, want no-store", cc)
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		t.Fatalf("running job has ETag %q — only terminal states are immutable", etag)
	}
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, nil)
}

func TestJobListNoStore(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	var body map[string]any
	resp := getJSON(t, srv.URL+"/api/v1/jobs", &body)
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("list Cache-Control = %q, want no-store", cc)
	}
}

func TestBenchmarksETag(t *testing.T) {
	srv := testServer(t)
	resp := condGet(t, srv.URL+"/api/v1/benchmarks", "")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("status = %d, etag = %q", resp.StatusCode, etag)
	}
	resp2 := condGet(t, srv.URL+"/api/v1/benchmarks", etag)
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", resp2.StatusCode)
	}
	// Weak-form validators from intermediaries revalidate too.
	resp3 := condGet(t, srv.URL+"/api/v1/benchmarks", "W/"+etag)
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("weak conditional status = %d, want 304", resp3.StatusCode)
	}
}

// TestMetricsGzip pins the middleware integration: a metrics scrape —
// the chattiest endpoint — compresses when asked, and stays plain for
// clients that do not accept gzip.
func TestMetricsGzip(t *testing.T) {
	srv := testServer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	// Disable the transport's transparent decompression so the header is
	// observable.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "citadel_api_requests_total") {
		t.Fatal("decompressed metrics body missing expected series")
	}

	resp2, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ce := resp2.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("uncompressed request got Content-Encoding %q", ce)
	}
}

// cachedJobServer builds a handler whose job store is pre-seeded with a
// large result under the spec's own content key, so the submitted job
// completes instantly as a cache hit carrying a payload big enough to
// make body marshalling the dominant cost of a full poll.
func cachedJobServer(b *testing.B, payloadBytes int) (http.Handler, string) {
	b.Helper()
	st, err := store.Open(b.TempDir(), store.Options{Logf: quietLogf})
	if err != nil {
		b.Fatal(err)
	}
	spec := jobs.Spec{Reliability: &jobs.ReliabilitySpec{
		Scheme: "Citadel", Trials: 2000, CheckpointTrials: 500, Workers: 1, Seed: 7, TSVFIT: 1430,
	}}
	key, err := spec.Normalize().Key()
	if err != nil {
		b.Fatal(err)
	}
	big := []byte(`{"pad":"` + strings.Repeat("x", payloadBytes) + `"}`)
	if err := st.PutResult(key, big); err != nil {
		b.Fatal(err)
	}
	orch := jobs.New(jobs.Options{Store: st, Workers: 1, QueueDepth: 4, Logf: quietLogf})
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		orch.Close(ctx)
	})
	job, err := orch.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if !job.State.Terminal() {
		b.Fatalf("pre-seeded job state = %s, want a cache-hit terminal state", job.State)
	}
	handler := New(Options{Jobs: orch, Logf: quietLogf}).Handler()
	return handler, "/api/v1/jobs/" + job.ID
}

// BenchmarkJobPoll measures the conditional-GET win on the job-status
// route: "full" re-marshals the terminal job including its 256KiB result
// on every poll, "not-modified" answers 304 from the content-key ETag
// without touching the body. polls/s is the unit cmd/benchjson gates;
// the 304 path is required to be >=10x the full path.
func BenchmarkJobPoll(b *testing.B) {
	handler, path := cachedJobServer(b, 256<<10)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	etag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || etag == "" {
		b.Fatalf("probe status = %d, etag = %q", rec.Code, etag)
	}

	poll := func(b *testing.B, ifNoneMatch string, wantStatus int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			if ifNoneMatch != "" {
				req.Header.Set("If-None-Match", ifNoneMatch)
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != wantStatus {
				b.Fatalf("status = %d, want %d", rec.Code, wantStatus)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "polls/s")
	}
	b.Run("full", func(b *testing.B) { poll(b, "", http.StatusOK) })
	b.Run("not-modified", func(b *testing.B) { poll(b, etag, http.StatusNotModified) })
}
