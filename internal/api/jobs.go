package api

import (
	"errors"
	"math/rand"
	"net/http"
	"strconv"

	"repro/internal/jobs"
	"repro/internal/store"
)

// Job routes: asynchronous campaign submission over the orchestrator.
//
//	POST   /api/v1/jobs       submit (202 + job ID; 429 when the queue is full)
//	GET    /api/v1/jobs       list jobs known to this process
//	GET    /api/v1/jobs/{id}  status / progress / result
//	DELETE /api/v1/jobs/{id}  cancel
//
// Unlike the synchronous simulation routes, submission does NOT pass
// through the simulation-slot semaphore: accepting a job is cheap (the
// heavy work runs later on the orchestrator's own bounded worker pool),
// so blocking a handler goroutine on sim capacity would only add a
// second, redundant queue in front of the real one. Backpressure comes
// from the orchestrator's bounded queue instead: a full queue answers
// 429 with a Retry-After hint derived from the queue depth.

// JobRequest is the POST /api/v1/jobs body. Kind may be omitted when
// exactly one sub-spec is present.
type JobRequest struct {
	Kind        string                `json:"kind,omitempty"`
	Priority    int                   `json:"priority,omitempty"`
	Reliability *jobs.ReliabilitySpec `json:"reliability,omitempty"`
	Performance *jobs.PerformanceSpec `json:"performance,omitempty"`
	Experiment  *jobs.ExperimentSpec  `json:"experiment,omitempty"`
}

// JobResponse mirrors jobs.Job for the wire.
type JobResponse struct {
	*jobs.Job
	// QueueDepth reports the orchestrator queue at response time, so
	// pollers can see the backlog their job sits behind.
	QueueDepth int `json:"queueDepth,omitempty"`
}

// retryAfterSeconds derives the 429 Retry-After hint from the queue
// depth: roughly two seconds of drain per queued campaign, jittered to
// ±25% and clamped to [1s, 120s]. It is a hint, not a promise —
// campaigns vary wildly in size — but it scales the client's backoff
// with the actual backlog instead of a constant, and the jitter spreads
// retries from clients that were all shed by the same full queue so
// they do not stampede back in the same second.
func retryAfterSeconds(depth int) int {
	retry := 2 * depth
	if q := retry / 4; q > 0 {
		retry += rand.Intn(2*q+1) - q
	}
	if retry < 1 {
		retry = 1
	}
	if retry > 120 {
		retry = 120
	}
	return retry
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if rel := req.Reliability; rel != nil {
		if rel.Trials < 0 || rel.TSVFIT < 0 || rel.LifetimeYears < 0 || rel.ScrubHours < 0 {
			s.writeError(w, http.StatusBadRequest,
				"trials, tsvFit, lifetimeYears and scrubHours must be non-negative")
			return
		}
		if rel.Trials > maxTrialsPerCall {
			s.writeError(w, http.StatusBadRequest, "trials capped at %d per job", maxTrialsPerCall)
			return
		}
		if rel.BiasFactor != 0 && !rel.RareEvent {
			s.writeError(w, http.StatusBadRequest, "biasFactor requires rareEvent")
			return
		}
		if rel.RareEvent && rel.BiasFactor < 0 {
			s.writeError(w, http.StatusBadRequest, "biasFactor must be >= 1 (or 0 for the default)")
			return
		}
	}
	if p := req.Performance; p != nil {
		if p.Requests < 0 {
			s.writeError(w, http.StatusBadRequest, "requests must be non-negative")
			return
		}
		if p.Requests > 2_000_000 {
			s.writeError(w, http.StatusBadRequest, "requests capped at 2000000 per job")
			return
		}
	}
	if e := req.Experiment; e != nil {
		if e.Trials < 0 || e.Requests < 0 {
			s.writeError(w, http.StatusBadRequest, "trials and requests must be non-negative")
			return
		}
		if e.Trials > maxTrialsPerCall {
			s.writeError(w, http.StatusBadRequest, "trials capped at %d per job", maxTrialsPerCall)
			return
		}
	}
	spec := jobs.Spec{
		Kind:        req.Kind,
		Priority:    req.Priority,
		Reliability: req.Reliability,
		Performance: req.Performance,
		Experiment:  req.Experiment,
	}
	job, err := s.opts.Jobs.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		depth := s.opts.Jobs.QueueDepth()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(depth)))
		s.writeError(w, http.StatusTooManyRequests,
			"job queue full (%d campaigns waiting)", depth)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "orchestrator is shutting down")
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, JobResponse{Job: job, QueueDepth: s.opts.Jobs.QueueDepth()})
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	list := s.opts.Jobs.List()
	out := make([]JobResponse, 0, len(list))
	for _, j := range list {
		// Drop result payloads from the listing; they can be large and
		// are one GET /jobs/{id} away.
		j.Result = nil
		out = append(out, JobResponse{Job: j})
	}
	// The listing mutates as jobs progress — never let a cache serve it.
	w.Header().Set("Cache-Control", "no-store")
	s.writeJSON(w, http.StatusOK, map[string]any{
		"jobs":       out,
		"queueDepth": s.opts.Jobs.QueueDepth(),
		"queueCap":   s.opts.Jobs.QueueCap(),
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.opts.Jobs.Status(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if job.State.Terminal() {
		// A finished job never changes again and its result bytes are
		// identified by the spec's content key, so state+key is a strong
		// validator: pollers revalidate with If-None-Match and the 304
		// path skips marshalling the (potentially large) result payload.
		etag := store.ETag(string(job.State) + "-" + job.Key)
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "public, max-age=3600")
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			mNotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	} else {
		w.Header().Set("Cache-Control", "no-store")
	}
	s.writeJSON(w, http.StatusOK, JobResponse{Job: job})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.opts.Jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "no such job %q", id)
	case errors.Is(err, jobs.ErrFinished):
		s.writeError(w, http.StatusConflict, "job %s already finished", id)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		job, _ := s.opts.Jobs.Status(id)
		s.writeJSON(w, http.StatusOK, JobResponse{Job: job})
	}
}
