package api

import (
	"net/http"

	"repro/internal/cluster"
)

// Cluster routes: the coordinator side of the distributed campaign
// protocol (see internal/cluster). Mounted only with Options.Cluster.
//
//	POST /api/v1/cluster/lease      pull one chunk lease (204 when no work)
//	POST /api/v1/cluster/heartbeat  extend a lease
//	POST /api/v1/cluster/complete   deliver a chunk result or failure
//	GET  /api/v1/cluster/workers    ops view of the worker fleet
//
// These routes bypass the simulation-slot semaphore: they are cheap
// bookkeeping calls, and stalling a heartbeat behind a saturated sim
// pool would expire healthy leases.

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		s.writeError(w, http.StatusBadRequest, "workerId is required")
		return
	}
	grant, ok := s.opts.Cluster.Lease(req.WorkerID)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" || req.LeaseID == "" {
		s.writeError(w, http.StatusBadRequest, "workerId and leaseId are required")
		return
	}
	extended := s.opts.Cluster.Heartbeat(req.WorkerID, req.LeaseID)
	resp := cluster.HeartbeatResponse{Extended: extended}
	if extended {
		resp.TTLMillis = s.opts.Cluster.LeaseTTL().Milliseconds()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	var req cluster.CompleteRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" || req.LeaseID == "" {
		s.writeError(w, http.StatusBadRequest, "workerId and leaseId are required")
		return
	}
	if req.Failed {
		s.opts.Cluster.Fail(req.WorkerID, req.LeaseID, req.Reason)
		s.writeJSON(w, http.StatusOK, cluster.CompleteResponse{Status: cluster.CompleteAccepted})
		return
	}
	if req.Envelope == nil {
		s.writeError(w, http.StatusBadRequest, "envelope is required unless failed is set")
		return
	}
	status, err := s.opts.Cluster.Complete(req.WorkerID, req.LeaseID, *req.Envelope)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, cluster.CompleteResponse{Status: status})
}

func (s *Server) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.opts.Cluster.Workers())
}
