package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSchemesEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Schemes []string `json:"schemes"`
	}
	resp := getJSON(t, srv.URL+"/api/v1/schemes", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Schemes) != 12 {
		t.Errorf("schemes = %d, want 12", len(out.Schemes))
	}
	found := false
	for _, s := range out.Schemes {
		if s == "Citadel" {
			found = true
		}
	}
	if !found {
		t.Error("Citadel missing from scheme list")
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
	}
	getJSON(t, srv.URL+"/api/v1/benchmarks", &out)
	if len(out.Benchmarks) != 38 {
		t.Errorf("benchmarks = %d, want 38", len(out.Benchmarks))
	}
}

func TestOverheadEndpoint(t *testing.T) {
	srv := testServer(t)
	var out map[string]float64
	getJSON(t, srv.URL+"/api/v1/overhead", &out)
	if total := out["totalFraction"]; total < 0.13 || total > 0.15 {
		t.Errorf("total overhead = %v", total)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	srv := testServer(t)
	var out ReliabilityResponse
	resp := postJSON(t, srv.URL+"/api/v1/reliability", ReliabilityRequest{
		Scheme: "None", Trials: 3000, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Trials != 3000 || out.Policy != "None" {
		t.Errorf("response %+v", out)
	}
	if out.Probability <= 0 {
		t.Error("unprotected baseline showed no failures")
	}
	if len(out.ByYear) != 7 {
		t.Errorf("byYear len %d", len(out.ByYear))
	}
}

func TestReliabilityAdaptiveEndpoint(t *testing.T) {
	srv := testServer(t)
	var out ReliabilityResponse
	postJSON(t, srv.URL+"/api/v1/reliability", ReliabilityRequest{
		Scheme: "1DP", Trials: 2000, TargetFailures: 3, MaxTrials: 100000, Seed: 2,
	}, &out)
	if out.Failures < 3 && out.Trials < 100000 {
		t.Errorf("adaptive run stopped early: %+v", out)
	}
}

func TestReliabilityValidation(t *testing.T) {
	srv := testServer(t)
	cases := []ReliabilityRequest{
		{Scheme: "NoSuchScheme"},
		{Scheme: "3DP", Trials: 100_000_000},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/api/v1/reliability", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", c, resp.StatusCode)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/api/v1/reliability", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
}

func TestPerformanceEndpoint(t *testing.T) {
	srv := testServer(t)
	var out PerformanceResponse
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{
		Benchmark: "mcf", Striping: "across-channels", Requests: 10000, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.NormalizedTime <= 1 {
		t.Errorf("across-channels normalized time %v, want > 1", out.NormalizedTime)
	}
	if out.Cycles == 0 || out.ActivePowerWatts <= 0 {
		t.Errorf("degenerate response %+v", out)
	}
}

func TestPerformanceValidation(t *testing.T) {
	srv := testServer(t)
	cases := []PerformanceRequest{
		{Benchmark: "nope"},
		{Benchmark: "mcf", Striping: "diagonal"},
		{Benchmark: "mcf", Protection: "raid0"},
		{Benchmark: "mcf", Requests: 100_000_000},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/api/v1/performance", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", c, resp.StatusCode)
		}
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	srv := testServer(t)
	resp := getJSON(t, srv.URL+"/api/v1/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d", resp.StatusCode)
	}
	// GET on a POST-only route.
	resp2 := getJSON(t, srv.URL+"/api/v1/reliability", nil)
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("method mismatch: %d", resp2.StatusCode)
	}
}
