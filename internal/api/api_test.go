package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// quietLogf silences server logs in tests that exercise error paths.
func quietLogf(string, ...any) {}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSchemesEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Schemes []string `json:"schemes"`
	}
	resp := getJSON(t, srv.URL+"/api/v1/schemes", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Schemes) != 12 {
		t.Errorf("schemes = %d, want 12", len(out.Schemes))
	}
	found := false
	for _, s := range out.Schemes {
		if s == "Citadel" {
			found = true
		}
	}
	if !found {
		t.Error("Citadel missing from scheme list")
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	srv := testServer(t)
	var out struct {
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
	}
	getJSON(t, srv.URL+"/api/v1/benchmarks", &out)
	if len(out.Benchmarks) != 38 {
		t.Errorf("benchmarks = %d, want 38", len(out.Benchmarks))
	}
}

func TestOverheadEndpoint(t *testing.T) {
	srv := testServer(t)
	var out map[string]float64
	getJSON(t, srv.URL+"/api/v1/overhead", &out)
	if total := out["totalFraction"]; total < 0.13 || total > 0.15 {
		t.Errorf("total overhead = %v", total)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	srv := testServer(t)
	var out ReliabilityResponse
	resp := postJSON(t, srv.URL+"/api/v1/reliability", ReliabilityRequest{
		Scheme: "None", Trials: 3000, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Trials != 3000 || out.Policy != "None" {
		t.Errorf("response %+v", out)
	}
	if out.Probability <= 0 {
		t.Error("unprotected baseline showed no failures")
	}
	if len(out.ByYear) != 7 {
		t.Errorf("byYear len %d", len(out.ByYear))
	}
}

func TestReliabilityAdaptiveEndpoint(t *testing.T) {
	srv := testServer(t)
	var out ReliabilityResponse
	postJSON(t, srv.URL+"/api/v1/reliability", ReliabilityRequest{
		Scheme: "1DP", Trials: 2000, TargetFailures: 3, MaxTrials: 100000, Seed: 2,
	}, &out)
	if out.Failures < 3 && out.Trials < 100000 {
		t.Errorf("adaptive run stopped early: %+v", out)
	}
}

func TestReliabilityValidation(t *testing.T) {
	srv := testServer(t)
	cases := []ReliabilityRequest{
		{Scheme: "NoSuchScheme"},
		{Scheme: "3DP", Trials: 100_000_000},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/api/v1/reliability", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", c, resp.StatusCode)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/api/v1/reliability", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
}

func TestPerformanceEndpoint(t *testing.T) {
	srv := testServer(t)
	var out PerformanceResponse
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{
		Benchmark: "mcf", Striping: "across-channels", Requests: 10000, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.NormalizedTime <= 1 {
		t.Errorf("across-channels normalized time %v, want > 1", out.NormalizedTime)
	}
	if out.Cycles == 0 || out.ActivePowerWatts <= 0 {
		t.Errorf("degenerate response %+v", out)
	}
}

func TestPerformanceValidation(t *testing.T) {
	srv := testServer(t)
	cases := []PerformanceRequest{
		{Benchmark: "nope"},
		{Benchmark: "mcf", Striping: "diagonal"},
		{Benchmark: "mcf", Protection: "raid0"},
		{Benchmark: "mcf", Requests: 100_000_000},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/api/v1/performance", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, want 400", c, resp.StatusCode)
		}
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	srv := testServer(t)
	resp := getJSON(t, srv.URL+"/api/v1/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d", resp.StatusCode)
	}
	// GET on a POST-only route.
	resp2 := getJSON(t, srv.URL+"/api/v1/reliability", nil)
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("method mismatch: %d", resp2.StatusCode)
	}
}

func TestWrongMethodOnEveryRoute(t *testing.T) {
	srv := testServer(t)
	cases := []struct{ method, path string }{
		{http.MethodPost, "/api/v1/healthz"},
		{http.MethodPost, "/api/v1/readyz"},
		{http.MethodPost, "/api/v1/schemes"},
		{http.MethodPost, "/api/v1/benchmarks"},
		{http.MethodPost, "/api/v1/overhead"},
		{http.MethodGet, "/api/v1/reliability"},
		{http.MethodGet, "/api/v1/performance"},
		{http.MethodDelete, "/api/v1/reliability"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := New(Options{Logf: quietLogf})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	var health map[string]any
	if resp := getJSON(t, srv.URL+"/api/v1/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var ready map[string]any
	if resp := getJSON(t, srv.URL+"/api/v1/readyz", &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	if ready["status"] != "ready" || ready["capacity"] == nil {
		t.Errorf("readyz body %v", ready)
	}
	s.Drain()
	resp := getJSON(t, srv.URL+"/api/v1/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	// Liveness is unaffected by draining.
	if resp := getJSON(t, srv.URL+"/api/v1/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	s := New(Options{MaxBodyBytes: 128, Logf: quietLogf})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	big := `{"scheme":"` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{"/api/v1/reliability", "/api/v1/performance"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestNegativeParameterValidation(t *testing.T) {
	srv := testServer(t)
	relCases := []ReliabilityRequest{
		{Scheme: "3DP", Trials: -1},
		{Scheme: "3DP", LifetimeYears: -2},
		{Scheme: "3DP", ScrubHours: -1},
		{Scheme: "3DP", TSVFIT: -10},
		{Scheme: "3DP", TargetFailures: -1},
	}
	for _, c := range relCases {
		resp := postJSON(t, srv.URL+"/api/v1/reliability", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("reliability %+v: status %d, want 400", c, resp.StatusCode)
		}
	}
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{Benchmark: "mcf", Requests: -5}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("performance negative requests: status %d, want 400", resp.StatusCode)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Options{Logf: quietLogf})
	h := s.recoverer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var out apiError
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil || out.Error == "" {
		t.Errorf("expected JSON error body, got %q (err %v)", rec.Body.String(), err)
	}
}

// TestReliabilityClientDisconnectPartial simulates a client that goes
// away mid-run: the request context is cancelled, and the handler must
// come back within about one trial batch carrying a partial result.
func TestReliabilityClientDisconnectPartial(t *testing.T) {
	s := New(Options{Logf: quietLogf})
	h := s.Handler()
	body, err := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: maxTrialsPerCall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	h.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("handler took %v after cancellation", elapsed)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out ReliabilityResponse
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Error("cancelled run not marked partial")
	}
	if out.Trials <= 0 || out.Trials >= maxTrialsPerCall {
		t.Errorf("partial trials = %d, want in (0, %d)", out.Trials, maxTrialsPerCall)
	}
}

// TestReliabilityDeadlinePartial exercises the per-run deadline: a run
// that exceeds SimTimeout still answers 200 with a partial result.
func TestReliabilityDeadlinePartial(t *testing.T) {
	s := New(Options{SimTimeout: 100 * time.Millisecond, Logf: quietLogf})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	var out ReliabilityResponse
	resp := postJSON(t, srv.URL+"/api/v1/reliability", ReliabilityRequest{
		Scheme: "None", Trials: maxTrialsPerCall, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Partial {
		t.Error("deadline-bounded run not marked partial")
	}
	if out.Trials <= 0 || out.Trials >= maxTrialsPerCall {
		t.Errorf("partial trials = %d, want in (0, %d)", out.Trials, maxTrialsPerCall)
	}
}

func TestPerformanceDeadlinePartial(t *testing.T) {
	s := New(Options{SimTimeout: 30 * time.Millisecond, Logf: quietLogf})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	var out PerformanceResponse
	resp := postJSON(t, srv.URL+"/api/v1/performance", PerformanceRequest{
		Benchmark: "mcf", Requests: 2_000_000, Seed: 1,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Partial {
		t.Error("deadline-bounded run not marked partial")
	}
}

// TestBackpressureSheds429 saturates the single simulation slot and
// asserts the next request is shed with 429 + Retry-After instead of
// queueing, then releases the slot and checks the long run returns a
// partial result.
func TestBackpressureSheds429(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueWait: -1, Logf: quietLogf})
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: maxTrialsPerCall, Seed: 1})
		req := httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		done <- rec
	}()
	for i := 0; s.InFlight() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.InFlight() != 1 {
		t.Fatal("long run never acquired the simulation slot")
	}
	body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: 1000, Seed: 2})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	cancel()
	first := <-done
	if first.Code != http.StatusOK {
		t.Fatalf("long run status %d", first.Code)
	}
	var out ReliabilityResponse
	if err := json.NewDecoder(first.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Error("cancelled long run not marked partial")
	}
	if s.InFlight() != 0 {
		t.Errorf("slot not released: %d in flight", s.InFlight())
	}
}

// TestQueueWaitAdmitsWhenSlotFrees covers the backpressure wait path: a
// request that arrives while the slot is busy is admitted once the slot
// frees within QueueWait.
func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueWait: 10 * time.Second, Logf: quietLogf})
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: maxTrialsPerCall, Seed: 1})
		req := httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	for i := 0; s.InFlight() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Free the slot shortly after the second request starts waiting.
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	body, _ := json.Marshal(ReliabilityRequest{Scheme: "None", Trials: 1000, Seed: 2})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/reliability", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("queued request: status %d, want 200 after slot freed", rec.Code)
	}
	<-done
}
