// Package api exposes the simulators over HTTP/JSON so experiment runners
// (notebooks, sweep scripts, dashboards) can drive them remotely. The
// handler is stdlib-only; cmd/citadel-server mounts it.
//
// The server is built to degrade gracefully under load and partial
// failure: simulation routes run under a bounded concurrency semaphore
// (excess requests are shed with 429 and a Retry-After hint instead of
// piling up goroutines), every run is bounded by a per-run deadline and
// the request context (a disconnected client cancels its run), POST
// bodies are size-capped, panics are recovered into 500s, and cancelled
// runs return the trials completed so far marked "partial" rather than
// discarding the work.
package api

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	citadel "repro"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/stream"
)

// Server-level metrics, exposed at GET /metrics alongside the engine
// metrics. They are process-wide: multiple Server instances (as in tests)
// share them, which is why acquire/release updates the gauge with paired
// deltas instead of overwriting it.
var (
	mHTTPRequests = obs.Default().Counter("citadel_api_requests_total",
		"HTTP requests served by the API.")
	mSimRuns = obs.Default().Counter("citadel_api_sim_runs_total",
		"Simulation runs started via the API.")
	mSimShed = obs.Default().Counter("citadel_api_shed_total",
		"Simulation requests shed with 429 at capacity.")
	mInFlight = obs.Default().Gauge("citadel_api_inflight_runs",
		"Simulation runs currently executing.")
	mNotModified = obs.Default().Counter("citadel_api_not_modified_total",
		"Conditional GETs answered 304 from the content-key ETag, body skipped.")
)

// etagMatches reports whether an If-None-Match header value matches the
// given strong ETag. Clients may send a comma-separated list or "*".
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, c := range strings.Split(ifNoneMatch, ",") {
		c = strings.TrimSpace(c)
		// A weak validator still matches a strong ETag for GET
		// revalidation (RFC 9110 §8.8.3.2 weak comparison).
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// Options tunes the server's robustness envelope. The zero value selects
// production-safe defaults.
type Options struct {
	// MaxConcurrent bounds simultaneously executing simulation runs;
	// excess requests wait up to QueueWait for a slot and are then shed
	// with 429 (default: GOMAXPROCS).
	MaxConcurrent int
	// QueueWait is how long a simulation request may wait for a free
	// slot before being shed (default 2s; negative sheds immediately).
	QueueWait time.Duration
	// SimTimeout is the wall-clock budget of one simulation run; a run
	// that hits it returns its partial result (default 5m; negative
	// disables the deadline).
	SimTimeout time.Duration
	// MaxBodyBytes caps POST request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logf sinks server logs (default log.Printf).
	Logf func(format string, args ...any)
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// profiling. Off by default; enable only on trusted networks.
	EnablePprof bool
	// Trace, when non-nil, is the process flight recorder: simulation runs
	// record sampled spans into it (tagged with their X-Run-Id), and the
	// retained events are served at GET /debug/trace as Chrome trace-event
	// JSON (?format=text for a line dump).
	Trace *trace.Recorder
	// Jobs, when non-nil, mounts the asynchronous campaign routes under
	// /api/v1/jobs (see jobs.go). Job submission bypasses the
	// MaxConcurrent semaphore — the orchestrator enforces its own worker
	// and queue bounds — so a saturated synchronous pool never blocks an
	// async submit.
	Jobs *jobs.Orchestrator
	// Cluster, when non-nil, mounts the distributed-campaign coordinator
	// routes under /api/v1/cluster (see cluster.go): workers pull chunk
	// leases, heartbeat them, and deliver results here. Like the job
	// routes, they bypass the simulation-slot semaphore — a heartbeat
	// stalled behind a saturated sim pool would expire healthy leases.
	Cluster *cluster.Coordinator
	// Stream, when non-nil (and Jobs is set), mounts the SSE route
	// GET /api/v1/jobs/{id}/events (see stream.go). The orchestrator
	// must publish into the same hub (jobs.Options.Stream) or
	// subscribers will see only keepalives. Drain broadcasts a terminal
	// drain event to every subscriber.
	Stream *stream.Hub
	// StreamKeepAlive is the SSE comment-frame interval that keeps idle
	// streaming connections from being reaped by proxies (default 15s).
	StreamKeepAlive time.Duration
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.QueueWait == 0 {
		o.QueueWait = 2 * time.Second
	}
	if o.SimTimeout == 0 {
		o.SimTimeout = 5 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.StreamKeepAlive <= 0 {
		o.StreamKeepAlive = 15 * time.Second
	}
	return o
}

// Server holds the API's concurrency and lifecycle state.
type Server struct {
	opts     Options
	sem      chan struct{}
	draining atomic.Bool
}

// New builds a Server with the given options.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{opts: opts, sem: make(chan struct{}, opts.MaxConcurrent)}
}

// Handler returns an API handler with default Options.
func Handler() http.Handler { return New(Options{}).Handler() }

// Capacity returns the simulation-slot count.
func (s *Server) Capacity() int { return cap(s.sem) }

// InFlight returns the number of simulation runs currently executing.
func (s *Server) InFlight() int { return len(s.sem) }

// Drain marks the server not-ready (readyz turns 503) so load balancers
// stop routing new work; in-flight runs continue. With a stream hub it
// also broadcasts a terminal drain event so every SSE subscriber learns
// the server is going away instead of watching a silent connection die.
// cmd/citadel-server calls this on SIGTERM before http.Server.Shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	if s.opts.Stream != nil {
		s.opts.Stream.Drain(map[string]any{"status": "draining"})
	}
}

// Handler returns the routed http.Handler wrapped in panic recovery.
//
// Routes:
//
//	GET  /api/v1/healthz      liveness probe
//	GET  /api/v1/readyz       readiness probe (503 while draining)
//	GET  /api/v1/schemes      list protection schemes
//	GET  /api/v1/benchmarks   list workload profiles
//	GET  /api/v1/scenarios    scenario-registry catalog (schemes + fault models)
//	GET  /api/v1/overhead     Citadel storage-overhead accounting
//	POST /api/v1/reliability  run a Monte Carlo study
//	POST /api/v1/performance  run the timing/power model
//	POST /api/v1/jobs         submit an async campaign (only with Options.Jobs)
//	GET  /api/v1/jobs         list jobs (only with Options.Jobs)
//	GET  /api/v1/jobs/{id}    job status/progress/result (only with Options.Jobs)
//	DELETE /api/v1/jobs/{id}  cancel a job (only with Options.Jobs)
//	POST /api/v1/cluster/lease      worker pulls a chunk lease (only with Options.Cluster)
//	POST /api/v1/cluster/heartbeat  worker extends a lease (only with Options.Cluster)
//	POST /api/v1/cluster/complete   worker delivers a chunk (only with Options.Cluster)
//	GET  /api/v1/cluster/workers    worker fleet view (only with Options.Cluster)
//	GET  /metrics             Prometheus text metrics (engine + API)
//	GET  /debug/trace         flight-recorder dump (only with Options.Trace)
//	GET  /debug/pprof/...     live profiling (only with Options.EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /api/v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /api/v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /api/v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /api/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /api/v1/overhead", s.handleOverhead)
	mux.HandleFunc("POST /api/v1/reliability", s.handleReliability)
	mux.HandleFunc("POST /api/v1/performance", s.handlePerformance)
	if s.opts.Jobs != nil {
		mux.HandleFunc("POST /api/v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /api/v1/jobs", s.handleJobList)
		mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
		mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
		if s.opts.Stream != nil {
			mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleJobEvents)
		}
	}
	if s.opts.Cluster != nil {
		mux.HandleFunc("POST "+cluster.LeasePath, s.handleClusterLease)
		mux.HandleFunc("POST "+cluster.HeartbeatPath, s.handleClusterHeartbeat)
		mux.HandleFunc("POST "+cluster.CompletePath, s.handleClusterComplete)
		mux.HandleFunc("GET "+cluster.WorkersPath, s.handleClusterWorkers)
	}
	mux.Handle("GET /metrics", obs.Default().Handler())
	if s.opts.Trace.Enabled() {
		mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	}
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Gzip sits inside the recoverer: large JSON results and /metrics
	// scrapes compress when the client accepts it, while event streams
	// and small bodies pass through (see obs.GzipHandler).
	return s.recoverer(obs.GzipHandler(mux))
}

// statusWriter tracks whether a response has been started, so the panic
// recoverer knows if it can still write an error body.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes (SSE) through the recoverer.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		sw.wrote = true
		f.Flush()
	}
}

// recoverer converts handler panics into logged 500s instead of killing
// the connection (and, pre-Go-1.8-style, the process).
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.opts.Logf("api: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				if !sw.wrote {
					s.writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// writeJSON sends v with the proper content type. Encoding failures past
// the status line can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.opts.Logf("api: encoding response: %v", err)
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON reads a size-capped JSON body into v, answering 413 for
// oversized bodies and 400 for malformed ones.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		} else {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// acquire reserves a simulation slot, waiting up to QueueWait. When the
// server is saturated it answers 429 with a Retry-After hint and reports
// false — backpressure instead of unbounded pile-up.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	grant := func() func() {
		mInFlight.Inc()
		return func() {
			mInFlight.Dec()
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return grant(), true
	default:
	}
	if s.opts.QueueWait > 0 {
		t := time.NewTimer(s.opts.QueueWait)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
			return grant(), true
		case <-r.Context().Done():
			// Client gave up while queued; the response goes nowhere.
		case <-t.C:
		}
	}
	mSimShed.Inc()
	retry := int(s.opts.QueueWait / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	s.writeError(w, http.StatusTooManyRequests,
		"server at simulation capacity (%d runs in flight)", cap(s.sem))
	return nil, false
}

// simContext derives the run context: the request context (a client
// disconnect cancels the run) bounded by SimTimeout.
func (s *Server) simContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.SimTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.SimTimeout)
	}
	return context.WithCancel(r.Context())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	body := map[string]any{
		"status":   "ready",
		"inFlight": s.InFlight(),
		"capacity": s.Capacity(),
	}
	if s.opts.Jobs != nil {
		body["jobQueueDepth"] = s.opts.Jobs.QueueDepth()
		body["jobQueueCap"] = s.opts.Jobs.QueueCap()
	}
	if s.opts.Cluster != nil {
		body["liveWorkers"] = s.opts.Cluster.LiveWorkers()
	}
	if s.opts.Stream != nil {
		body["streamSubscribers"] = s.opts.Stream.Subscribers()
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	schemes := citadel.Schemes()
	names := make([]string, 0, len(schemes))
	for _, sc := range schemes {
		names = append(names, sc.String())
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"schemes": names})
}

// benchmarksBody renders the static benchmark catalog once and derives a
// strong ETag from its content hash, so repeat polls revalidate with 304
// instead of re-marshalling the same bytes.
var benchmarksBody = sync.OnceValues(func() ([]byte, string) {
	type bench struct {
		Name  string  `json:"name"`
		Suite string  `json:"suite"`
		MPKI  float64 `json:"mpki"`
		WBPKI float64 `json:"wbpki"`
	}
	profiles := citadel.Benchmarks()
	out := make([]bench, 0, len(profiles))
	for _, b := range profiles {
		out = append(out, bench{Name: b.Name, Suite: b.Suite.String(), MPKI: b.MPKI, WBPKI: b.WBPKI})
	}
	body, err := json.Marshal(map[string]any{"benchmarks": out})
	if err != nil {
		panic(err) // static catalog of plain structs; cannot fail
	}
	sum := sha256.Sum256(body)
	return append(body, '\n'), store.ETag(hex.EncodeToString(sum[:]))
})

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	body, etag := benchmarksBody()
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=60")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		mNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// scenariosBody renders the scenario-registry catalog once and derives a
// strong ETag from its content hash. Registration happens in init
// functions, so the registry is immutable by the time a request arrives
// and the body can be cached for the process lifetime, exactly like the
// benchmark catalog.
var scenariosBody = sync.OnceValues(func() ([]byte, string) {
	body, err := json.Marshal(scenario.BuildCatalog())
	if err != nil {
		panic(err) // static catalog of plain structs; cannot fail
	}
	sum := sha256.Sum256(body)
	return append(body, '\n'), store.ETag(hex.EncodeToString(sum[:]))
})

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	body, etag := scenariosBody()
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=60")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		mNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleOverhead(w http.ResponseWriter, _ *http.Request) {
	ov := citadel.ComputeStorageOverhead(citadel.DefaultConfig())
	s.writeJSON(w, http.StatusOK, map[string]any{
		"metadataFraction":   ov.MetadataFraction,
		"parityBankFraction": ov.ParityBankFraction,
		"totalFraction":      ov.Total(),
		"sramBytes":          ov.SRAMBytes,
	})
}

// ReliabilityRequest is the POST /reliability body.
type ReliabilityRequest struct {
	Scheme         string  `json:"scheme"`
	Trials         int     `json:"trials"`
	TSVFIT         float64 `json:"tsvFit"`
	TSVSwap        bool    `json:"tsvSwap"`
	LifetimeYears  float64 `json:"lifetimeYears"`
	ScrubHours     float64 `json:"scrubHours"`
	Seed           int64   `json:"seed"`
	TargetFailures int     `json:"targetFailures"` // >0 enables adaptive mode
	MaxTrials      int     `json:"maxTrials"`
	// Forensics enables failure forensics: the response then carries the
	// per-mode failure breakdown and up to MaxExemplars replayable
	// exemplar records.
	Forensics    bool `json:"forensics"`
	MaxExemplars int  `json:"maxExemplars"`
	// FaultModel selects a registered arrival-process plugin (empty means
	// the default Poisson process); GET /api/v1/scenarios lists them.
	FaultModel string `json:"faultModel"`
	// ScenarioParams are scheme/fault-model plugin knobs (flat namespace,
	// validated against the plugins' declared parameters).
	ScenarioParams map[string]float64 `json:"scenarioParams"`
}

// ReliabilityResponse mirrors citadel.Result. Partial marks a run cut
// short by cancellation or the per-run deadline: Trials then counts only
// the completed trials and the statistics cover those. RunID echoes the
// X-Run-Id header so the run's log lines, forensic exemplars, and trace
// events can be correlated from the body alone.
type ReliabilityResponse struct {
	RunID       string             `json:"runId"`
	Policy      string             `json:"policy"`
	Trials      int                `json:"trials"`
	Failures    int                `json:"failures"`
	Probability float64            `json:"probability"`
	CI95        float64            `json:"ci95"`
	ByYear      []float64          `json:"probabilityByYear"`
	Causes      map[string]int     `json:"causes,omitempty"`
	Breakdown   map[string]int     `json:"breakdown,omitempty"`
	Exemplars   []citadel.Forensic `json:"exemplars,omitempty"`
	// ScenarioStats carries scenario-plugin counters (replica-fetch
	// traffic, rowhammer episodes, ...) when the selected scenario
	// produced any.
	ScenarioStats map[string]float64 `json:"scenarioStats,omitempty"`
	Partial       bool               `json:"partial,omitempty"`
}

// maxTrialsPerCall bounds request cost.
const maxTrialsPerCall = 5_000_000

// maxExemplarsPerCall bounds the forensic payload of one response.
const maxExemplarsPerCall = 64

func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	var req ReliabilityRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if _, ok := scenario.SchemeByName(req.Scheme); !ok {
		s.writeError(w, http.StatusBadRequest, "unknown scheme %q", req.Scheme)
		return
	}
	if _, ok := scenario.FaultModelByName(req.FaultModel); !ok {
		s.writeError(w, http.StatusBadRequest, "unknown fault model %q", req.FaultModel)
		return
	}
	if err := scenario.ValidateParams(req.Scheme, req.FaultModel, scenario.Params(req.ScenarioParams)); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Trials < 0 || req.MaxTrials < 0 || req.TargetFailures < 0 {
		s.writeError(w, http.StatusBadRequest, "trials, maxTrials and targetFailures must be non-negative")
		return
	}
	if req.MaxExemplars < 0 || req.MaxExemplars > maxExemplarsPerCall {
		s.writeError(w, http.StatusBadRequest, "maxExemplars must be in [0, %d]", maxExemplarsPerCall)
		return
	}
	if req.LifetimeYears < 0 || req.ScrubHours < 0 || req.TSVFIT < 0 {
		s.writeError(w, http.StatusBadRequest, "lifetimeYears, scrubHours and tsvFit must be non-negative")
		return
	}
	if req.Trials == 0 {
		req.Trials = 10000
	}
	if req.Trials > maxTrialsPerCall || req.MaxTrials > maxTrialsPerCall {
		s.writeError(w, http.StatusBadRequest, "trials capped at %d per call", maxTrialsPerCall)
		return
	}
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.simContext(r)
	defer cancel()
	runID := obs.NewRunID()
	w.Header().Set("X-Run-Id", runID)
	mSimRuns.Inc()
	start := time.Now()
	s.opts.Logf("api: run=%s kind=reliability scheme=%s trials=%d targetFailures=%d seed=%d start",
		runID, req.Scheme, req.Trials, req.TargetFailures, req.Seed)
	opts := citadel.ReliabilityOptions{
		Rates:              citadel.Table1Rates().WithTSV(req.TSVFIT),
		Trials:             req.Trials,
		LifetimeYears:      req.LifetimeYears,
		ScrubIntervalHours: req.ScrubHours,
		TSVSwap:            req.TSVSwap,
		Seed:               req.Seed,
		RunID:              runID,
		Forensics:          req.Forensics,
		MaxExemplars:       req.MaxExemplars,
		Trace:              s.opts.Trace,
		FaultModel:         req.FaultModel,
		ScenarioParams:     req.ScenarioParams,
	}
	var res citadel.Result
	var err error
	if req.TargetFailures > 0 {
		res, err = citadel.SimulateScenarioReliabilityAdaptiveContext(ctx, opts, req.Scheme, req.TargetFailures, req.MaxTrials)
	} else {
		res, err = citadel.SimulateScenarioReliabilityContext(ctx, opts, req.Scheme)
	}
	if err != nil {
		// Plugin builders reject parameter values (not just keys) at build
		// time; surface that as a client error.
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.opts.Logf("api: run=%s kind=reliability scheme=%s trials=%d failures=%d partial=%t duration=%s done",
		runID, req.Scheme, res.Trials, res.Failures, res.Partial, time.Since(start).Round(time.Millisecond))
	byYear := make([]float64, len(res.FailuresByYear))
	for y := range byYear {
		byYear[y] = res.ProbabilityByYear(y + 1)
	}
	s.writeJSON(w, http.StatusOK, ReliabilityResponse{
		RunID:         runID,
		Policy:        res.Policy,
		Trials:        res.Trials,
		Failures:      res.Failures,
		Probability:   res.Probability(),
		CI95:          res.CI95(),
		ByYear:        byYear,
		Causes:        res.CauseCounts,
		Breakdown:     res.Breakdown,
		Exemplars:     res.Exemplars,
		ScenarioStats: res.ScenarioStats,
		Partial:       res.Partial,
	})
}

// PerformanceRequest is the POST /performance body.
type PerformanceRequest struct {
	Benchmark  string `json:"benchmark"`
	Striping   string `json:"striping"`   // same-bank | across-banks | across-channels
	Protection string `json:"protection"` // none | 3dp | 3dp-no-cache
	Requests   int    `json:"requests"`
	Seed       int64  `json:"seed"`
}

// PerformanceResponse mirrors citadel.PerfResult plus the baseline ratio.
// Partial marks a run cut short by cancellation or the per-run deadline;
// the normalized ratios then cover the completed request prefix.
type PerformanceResponse struct {
	RunID            string  `json:"runId"`
	Benchmark        string  `json:"benchmark"`
	Cycles           uint64  `json:"cycles"`
	NormalizedTime   float64 `json:"normalizedTime"`
	ActivePowerWatts float64 `json:"activePowerWatts"`
	NormalizedPower  float64 `json:"normalizedPower"`
	RowHitRate       float64 `json:"rowHitRate"`
	AvgReadLatency   float64 `json:"avgReadLatencyCycles"`
	// ReadPhases attributes the average demand-read latency (memory-bus
	// cycles per read) to queueing, activation, column access, bus
	// contention, and burst transfer.
	ReadPhases citadel.ReadPhases `json:"readPhases"`
	// AvgParityOverhead is the mean background cycles per parity-touching
	// writeback (zero without 3DP protection).
	AvgParityOverhead float64 `json:"avgParityOverheadCycles"`
	Partial           bool    `json:"partial,omitempty"`
}

func (s *Server) handlePerformance(w http.ResponseWriter, r *http.Request) {
	var req PerformanceRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	b, ok := citadel.BenchmarkByName(req.Benchmark)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}
	var striping citadel.Striping
	switch req.Striping {
	case "", "same-bank":
		striping = citadel.SameBank
	case "across-banks":
		striping = citadel.AcrossBanks
	case "across-channels":
		striping = citadel.AcrossChannels
	default:
		s.writeError(w, http.StatusBadRequest, "unknown striping %q", req.Striping)
		return
	}
	var prot citadel.Protection
	switch req.Protection {
	case "", "none":
		prot = citadel.NoProtection
	case "3dp":
		prot = citadel.Protection3DP
	case "3dp-no-cache":
		prot = citadel.Protection3DPNoCache
	default:
		s.writeError(w, http.StatusBadRequest, "unknown protection %q", req.Protection)
		return
	}
	if req.Requests < 0 {
		s.writeError(w, http.StatusBadRequest, "requests must be non-negative")
		return
	}
	if req.Requests == 0 {
		req.Requests = 50000
	}
	if req.Requests > 2_000_000 {
		s.writeError(w, http.StatusBadRequest, "requests capped at 2000000 per call")
		return
	}
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.simContext(r)
	defer cancel()
	runID := obs.NewRunID()
	w.Header().Set("X-Run-Id", runID)
	mSimRuns.Inc()
	start := time.Now()
	s.opts.Logf("api: run=%s kind=performance benchmark=%s striping=%s protection=%s requests=%d seed=%d start",
		runID, req.Benchmark, req.Striping, req.Protection, req.Requests, req.Seed)
	base := citadel.SimulatePerformanceContext(ctx, b, citadel.PerfOptions{Requests: req.Requests, Seed: req.Seed})
	res := citadel.SimulatePerformanceContext(ctx, b, citadel.PerfOptions{
		Striping: striping, Protection: prot, Requests: req.Requests, Seed: req.Seed,
		RunID: runID, Tracer: s.opts.Trace,
	})
	s.opts.Logf("api: run=%s kind=performance benchmark=%s requestsDone=%d partial=%t duration=%s done",
		runID, req.Benchmark, res.RequestsDone, base.Partial || res.Partial, time.Since(start).Round(time.Millisecond))
	// Guard the ratios: a cancelled base run can have zero cycles, and
	// NaN/Inf are not encodable as JSON.
	normTime, normPower := 0.0, 0.0
	if base.Cycles > 0 {
		normTime = float64(res.Cycles) / float64(base.Cycles)
	}
	if base.ActivePowerWatts > 0 {
		normPower = res.ActivePowerWatts / base.ActivePowerWatts
	}
	s.writeJSON(w, http.StatusOK, PerformanceResponse{
		RunID:             runID,
		Benchmark:         res.Benchmark,
		Cycles:            res.Cycles,
		NormalizedTime:    normTime,
		ActivePowerWatts:  res.ActivePowerWatts,
		NormalizedPower:   normPower,
		RowHitRate:        res.RowHitRate,
		AvgReadLatency:    res.AvgReadLatencyCycles,
		ReadPhases:        res.ReadPhases,
		AvgParityOverhead: res.AvgParityOverheadCycles,
		Partial:           base.Partial || res.Partial,
	})
}

// handleDebugTrace serves the process flight recorder. The default is
// Chrome trace-event JSON (open in Perfetto / chrome://tracing);
// ?format=text renders a line dump for quick terminal inspection.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := s.opts.Trace.WriteChromeTrace(w); err != nil {
			s.opts.Logf("api: writing trace: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.opts.Trace.WriteText(w); err != nil {
			s.opts.Logf("api: writing trace: %v", err)
		}
	default:
		s.writeError(w, http.StatusBadRequest, "unknown format %q (want json or text)", r.URL.Query().Get("format"))
	}
}
