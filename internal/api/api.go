// Package api exposes the simulators over HTTP/JSON so experiment runners
// (notebooks, sweep scripts, dashboards) can drive them remotely. The
// handler is stdlib-only and stateless; cmd/citadel-server mounts it.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	citadel "repro"
)

// Handler returns the API's http.Handler. Routes:
//
//	GET  /api/v1/schemes      list protection schemes
//	GET  /api/v1/benchmarks   list workload profiles
//	GET  /api/v1/overhead     Citadel storage-overhead accounting
//	POST /api/v1/reliability  run a Monte Carlo study
//	POST /api/v1/performance  run the timing/power model
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/schemes", handleSchemes)
	mux.HandleFunc("GET /api/v1/benchmarks", handleBenchmarks)
	mux.HandleFunc("GET /api/v1/overhead", handleOverhead)
	mux.HandleFunc("POST /api/v1/reliability", handleReliability)
	mux.HandleFunc("POST /api/v1/performance", handlePerformance)
	return mux
}

// writeJSON sends v with the proper content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func handleSchemes(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0)
	for _, s := range citadel.Schemes() {
		names = append(names, s.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemes": names})
}

func handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	type bench struct {
		Name  string  `json:"name"`
		Suite string  `json:"suite"`
		MPKI  float64 `json:"mpki"`
		WBPKI float64 `json:"wbpki"`
	}
	out := make([]bench, 0)
	for _, b := range citadel.Benchmarks() {
		out = append(out, bench{Name: b.Name, Suite: b.Suite.String(), MPKI: b.MPKI, WBPKI: b.WBPKI})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": out})
}

func handleOverhead(w http.ResponseWriter, _ *http.Request) {
	ov := citadel.ComputeStorageOverhead(citadel.DefaultConfig())
	writeJSON(w, http.StatusOK, map[string]any{
		"metadataFraction":   ov.MetadataFraction,
		"parityBankFraction": ov.ParityBankFraction,
		"totalFraction":      ov.Total(),
		"sramBytes":          ov.SRAMBytes,
	})
}

// ReliabilityRequest is the POST /reliability body.
type ReliabilityRequest struct {
	Scheme         string  `json:"scheme"`
	Trials         int     `json:"trials"`
	TSVFIT         float64 `json:"tsvFit"`
	TSVSwap        bool    `json:"tsvSwap"`
	LifetimeYears  float64 `json:"lifetimeYears"`
	ScrubHours     float64 `json:"scrubHours"`
	Seed           int64   `json:"seed"`
	TargetFailures int     `json:"targetFailures"` // >0 enables adaptive mode
	MaxTrials      int     `json:"maxTrials"`
}

// ReliabilityResponse mirrors citadel.Result.
type ReliabilityResponse struct {
	Policy      string         `json:"policy"`
	Trials      int            `json:"trials"`
	Failures    int            `json:"failures"`
	Probability float64        `json:"probability"`
	CI95        float64        `json:"ci95"`
	ByYear      []float64      `json:"probabilityByYear"`
	Causes      map[string]int `json:"causes,omitempty"`
}

// maxTrialsPerCall bounds request cost.
const maxTrialsPerCall = 5_000_000

func handleReliability(w http.ResponseWriter, r *http.Request) {
	var req ReliabilityRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var scheme citadel.Scheme
	found := false
	for _, s := range citadel.Schemes() {
		if s.String() == req.Scheme {
			scheme, found = s, true
			break
		}
	}
	if !found {
		writeError(w, http.StatusBadRequest, "unknown scheme %q", req.Scheme)
		return
	}
	if req.Trials <= 0 {
		req.Trials = 10000
	}
	if req.Trials > maxTrialsPerCall || req.MaxTrials > maxTrialsPerCall {
		writeError(w, http.StatusBadRequest, "trials capped at %d per call", maxTrialsPerCall)
		return
	}
	opts := citadel.ReliabilityOptions{
		Rates:              citadel.Table1Rates().WithTSV(req.TSVFIT),
		Trials:             req.Trials,
		LifetimeYears:      req.LifetimeYears,
		ScrubIntervalHours: req.ScrubHours,
		TSVSwap:            req.TSVSwap,
		Seed:               req.Seed,
	}
	var res citadel.Result
	if req.TargetFailures > 0 {
		res = citadel.SimulateReliabilityAdaptive(opts, scheme, req.TargetFailures, req.MaxTrials)
	} else {
		res = citadel.SimulateReliability(opts, scheme)
	}
	byYear := make([]float64, len(res.FailuresByYear))
	for y := range byYear {
		byYear[y] = res.ProbabilityByYear(y + 1)
	}
	writeJSON(w, http.StatusOK, ReliabilityResponse{
		Policy:      res.Policy,
		Trials:      res.Trials,
		Failures:    res.Failures,
		Probability: res.Probability(),
		CI95:        res.CI95(),
		ByYear:      byYear,
		Causes:      res.CauseCounts,
	})
}

// PerformanceRequest is the POST /performance body.
type PerformanceRequest struct {
	Benchmark  string `json:"benchmark"`
	Striping   string `json:"striping"`   // same-bank | across-banks | across-channels
	Protection string `json:"protection"` // none | 3dp | 3dp-no-cache
	Requests   int    `json:"requests"`
	Seed       int64  `json:"seed"`
}

// PerformanceResponse mirrors citadel.PerfResult plus the baseline ratio.
type PerformanceResponse struct {
	Benchmark        string  `json:"benchmark"`
	Cycles           uint64  `json:"cycles"`
	NormalizedTime   float64 `json:"normalizedTime"`
	ActivePowerWatts float64 `json:"activePowerWatts"`
	NormalizedPower  float64 `json:"normalizedPower"`
	RowHitRate       float64 `json:"rowHitRate"`
	AvgReadLatency   float64 `json:"avgReadLatencyCycles"`
}

func handlePerformance(w http.ResponseWriter, r *http.Request) {
	var req PerformanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	b, ok := citadel.BenchmarkByName(req.Benchmark)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}
	var striping citadel.Striping
	switch req.Striping {
	case "", "same-bank":
		striping = citadel.SameBank
	case "across-banks":
		striping = citadel.AcrossBanks
	case "across-channels":
		striping = citadel.AcrossChannels
	default:
		writeError(w, http.StatusBadRequest, "unknown striping %q", req.Striping)
		return
	}
	var prot citadel.Protection
	switch req.Protection {
	case "", "none":
		prot = citadel.NoProtection
	case "3dp":
		prot = citadel.Protection3DP
	case "3dp-no-cache":
		prot = citadel.Protection3DPNoCache
	default:
		writeError(w, http.StatusBadRequest, "unknown protection %q", req.Protection)
		return
	}
	if req.Requests <= 0 {
		req.Requests = 50000
	}
	if req.Requests > 2_000_000 {
		writeError(w, http.StatusBadRequest, "requests capped at 2000000 per call")
		return
	}
	base := citadel.SimulatePerformance(b, citadel.PerfOptions{Requests: req.Requests, Seed: req.Seed})
	res := citadel.SimulatePerformance(b, citadel.PerfOptions{
		Striping: striping, Protection: prot, Requests: req.Requests, Seed: req.Seed,
	})
	writeJSON(w, http.StatusOK, PerformanceResponse{
		Benchmark:        res.Benchmark,
		Cycles:           res.Cycles,
		NormalizedTime:   float64(res.Cycles) / float64(base.Cycles),
		ActivePowerWatts: res.ActivePowerWatts,
		NormalizedPower:  res.ActivePowerWatts / base.ActivePowerWatts,
		RowHitRate:       res.RowHitRate,
		AvgReadLatency:   res.AvgReadLatencyCycles,
	})
}
