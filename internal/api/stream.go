package api

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/stream"
)

// handleJobEvents streams job snapshots over Server-Sent Events. The
// response is a sequence of frames rendered once by the hub and shared
// across every subscriber; this handler only writes pre-built bytes and
// flushes. The stream ends when the job reaches a terminal state (the
// terminal frame is delivered first), when the hub evicts the client for
// not draining, or when the client disconnects.
//
// A reconnecting client sends Last-Event-ID (the standard EventSource
// behaviour) and is immediately re-sent the latest snapshot if it missed
// anything; intermediate progress snapshots are not replayed — each
// snapshot supersedes the last, so only the newest matters.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.opts.Jobs.Status(id); !ok {
		s.writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var lastEventID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		lastEventID, _ = strconv.ParseUint(v, 10, 64)
	}
	sub, err := s.opts.Stream.Subscribe(id, lastEventID)
	if err != nil {
		if errors.Is(err, stream.ErrSubscriberLimit) {
			// Same shed-don't-queue posture as the sim semaphore: tell
			// the client when to come back instead of holding the fd.
			w.Header().Set("Retry-After", strconv.Itoa(2+rand.Intn(5)))
			s.writeError(w, http.StatusTooManyRequests, "subscriber limit reached")
			return
		}
		s.writeError(w, http.StatusInternalServerError, "subscribe: %v", err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // reverse-proxy buffering defeats push
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(s.opts.StreamKeepAlive)
	defer keepalive.Stop()
	for {
		select {
		case f, ok := <-sub.Frames():
			if !ok {
				return // evicted, or terminal frame already consumed
			}
			if _, err := w.Write(f.Data); err != nil {
				return
			}
			fl.Flush()
			if f.Terminal {
				return
			}
		case <-keepalive.C:
			// Comment frame: ignored by EventSource, keeps proxies and
			// LB idle timers from reaping a quiet stream.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
