package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
)

// jobsServer builds a test server with the async job routes enabled.
func jobsServer(t *testing.T, workers, depth int) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	orch := jobs.New(jobs.Options{Store: st, Workers: workers, QueueDepth: depth, Logf: quietLogf})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		orch.Close(ctx)
	})
	srv := httptest.NewServer(New(Options{Jobs: orch, Logf: quietLogf}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func smallJobBody(seed int64) map[string]any {
	return map[string]any{
		"reliability": map[string]any{
			"scheme":           "Citadel",
			"trials":           2000,
			"checkpointTrials": 500,
			"workers":          1,
			"seed":             seed,
			"tsvFit":           1430,
		},
	}
}

func longJobBody(seed int64) map[string]any {
	return map[string]any{
		"reliability": map[string]any{
			"scheme":           "Citadel",
			"trials":           2_000_000,
			"checkpointTrials": 100000,
			"workers":          1,
			"seed":             seed,
			"tsvFit":           1430,
		},
	}
}

func deleteJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestJobSubmitPollResult(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	var sub JobResponse
	resp := postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(11), &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if sub.Job == nil || sub.Job.ID == "" {
		t.Fatal("202 response carries no job ID")
	}

	deadline := time.Now().Add(2 * time.Minute)
	var got JobResponse
	for {
		resp := getJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if got.Job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Job.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", got.Job.State, got.Job.Error)
	}
	if len(got.Job.Result) == 0 {
		t.Error("done job has no result payload")
	}

	var list struct {
		Jobs       []JobResponse `json:"jobs"`
		QueueDepth int           `json:"queueDepth"`
		QueueCap   int           `json:"queueCap"`
	}
	if resp := getJSON(t, srv.URL+"/api/v1/jobs", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if len(list.Jobs) != 1 || list.QueueCap != 8 {
		t.Errorf("list = %d jobs cap %d, want 1 jobs cap 8", len(list.Jobs), list.QueueCap)
	}
	if len(list.Jobs) == 1 && len(list.Jobs[0].Job.Result) != 0 {
		t.Error("listing includes result payloads; they should be stripped")
	}

	// Resubmitting the same spec is a cache hit: done immediately.
	var cached JobResponse
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(11), &cached); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cached submit status = %d", resp.StatusCode)
	}
	if !cached.Job.Cached || cached.Job.State != jobs.StateDone {
		t.Errorf("resubmit cached=%v state=%s, want cached done", cached.Job.Cached, cached.Job.State)
	}
}

func TestJobCancelAndNotFound(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	var sub JobResponse
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(12), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var cancelled JobResponse
	if resp := deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, &cancelled); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		var got JobResponse
		getJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, &got)
		if got.Job.State.Terminal() {
			if got.Job.State != jobs.StateCancelled {
				t.Fatalf("state after cancel = %s", got.Job.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Second cancel conflicts; unknown IDs are 404.
	if resp := deleteJSON(t, srv.URL+"/api/v1/jobs/"+sub.Job.ID, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", resp.StatusCode)
	}
	if resp := deleteJSON(t, srv.URL+"/api/v1/jobs/j-nope-1", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown status = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/api/v1/jobs/j-nope-1", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status unknown = %d, want 404", resp.StatusCode)
	}
}

func TestJobQueueFullRetryAfter(t *testing.T) {
	srv := jobsServer(t, 1, 1)
	var a JobResponse
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(13), &a); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit a = %d", resp.StatusCode)
	}
	// Wait for the long job to occupy the worker so the next submit
	// really sits in the queue.
	deadline := time.Now().Add(time.Minute)
	for {
		var got JobResponse
		getJSON(t, srv.URL+"/api/v1/jobs/"+a.Job.ID, &got)
		if got.Job.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job a never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var b JobResponse
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(14), &b); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit b = %d", resp.StatusCode)
	}
	resp := postJSON(t, srv.URL+"/api/v1/jobs", longJobBody(15), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past bound = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+b.Job.ID, nil)
	deleteJSON(t, srv.URL+"/api/v1/jobs/"+a.Job.ID, nil)
}

func TestJobSubmitValidation(t *testing.T) {
	srv := jobsServer(t, 1, 8)
	cases := []map[string]any{
		{}, // no sub-spec
		{"reliability": map[string]any{"scheme": "NoSuch"}},                        // unknown scheme
		{"reliability": map[string]any{"scheme": "Citadel", "trials": -1}},         // negative
		{"reliability": map[string]any{"scheme": "Citadel", "trials": 10_000_000}}, // over cap
		{"performance": map[string]any{"benchmark": "mcf", "requests": 3_000_000}}, // over cap
	}
	for i, body := range cases {
		if resp := postJSON(t, srv.URL+"/api/v1/jobs", body, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestJobRoutesAbsentWithoutOrchestrator(t *testing.T) {
	srv := testServer(t)
	if resp := postJSON(t, srv.URL+"/api/v1/jobs", smallJobBody(1), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("jobs route without orchestrator = %d, want 404", resp.StatusCode)
	}
}
