package api

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/stream"
)

// sseSink is a Flusher-implementing ResponseWriter that lets the stress
// test drive the real SSE handler through ServeHTTP without sockets, so
// ten thousand concurrent subscribers fit under the race detector with
// no file-descriptor ceiling. An optional per-write delay models a slow
// client that cannot drain its frames.
type sseSink struct {
	hdr    http.Header
	slow   time.Duration
	mu     sync.Mutex
	status int
	buf    bytes.Buffer
}

func (w *sseSink) Header() http.Header  { return w.hdr }
func (w *sseSink) WriteHeader(code int) { w.status = code }
func (w *sseSink) Flush()               {}

func (w *sseSink) Write(p []byte) (int, error) {
	if w.slow > 0 {
		time.Sleep(w.slow)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *sseSink) body() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestStressStreamSubscribers fans one running campaign out to 10k SSE
// subscribers while ~30% disconnect at random moments and one client is
// deliberately slow, then asserts the invariants the hub promises: every
// subscriber that stayed connected observes the terminal frame, and the
// hub ends with zero registered subscribers (no leaked buffers). Run via
// `make stress-stream` (under -race); skipped with -short.
func TestStressStreamSubscribers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make stress-stream")
	}
	const nSubs = 10_000

	hub := stream.New(stream.Options{
		MaxSubscribers: nSubs + 16,
		BufferFrames:   4,
		MaxCoalesced:   64,
		Logf:           quietLogf,
	})
	st, err := store.Open(t.TempDir(), store.Options{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	orch := jobs.New(jobs.Options{Store: st, Workers: 1, QueueDepth: 4, Stream: hub, Logf: quietLogf})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		orch.Close(ctx)
	}()
	handler := New(Options{Jobs: orch, Stream: hub, StreamKeepAlive: 100 * time.Millisecond, Logf: quietLogf}).Handler()

	// A campaign long enough that most subscribers attach while it runs,
	// checkpointing often so plenty of progress frames flow.
	job, err := orch.Submit(jobs.Spec{Reliability: &jobs.ReliabilitySpec{
		Scheme: "Citadel", Trials: 400_000, CheckpointTrials: 10_000, Workers: 1, Seed: 99, TSVFIT: 1430,
	}})
	if err != nil {
		t.Fatal(err)
	}
	path := "/api/v1/jobs/" + job.ID + "/events"

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	type result struct {
		cancelled bool
		body      string
	}
	results := make([]result, nSubs)
	var wg sync.WaitGroup
	for i := 0; i < nSubs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			sink := &sseSink{hdr: make(http.Header)}
			if i == 0 {
				sink.slow = 2 * time.Millisecond // one reader that lags every write
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cancelled := false
			if i != 0 && rng.Intn(10) < 3 {
				cancelled = true
				delay := time.Duration(rng.Intn(400)) * time.Millisecond
				timer := time.AfterFunc(delay, cancel)
				defer timer.Stop()
			}
			req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
			handler.ServeHTTP(sink, req)
			results[i] = result{cancelled: cancelled, body: sink.body()}
		}(i)
	}
	wg.Wait()

	var terminal, dropped int
	for i, r := range results {
		ended := strings.Contains(r.body, "event: done") || strings.Contains(r.body, "event: "+stream.DrainEvent)
		if ended {
			terminal++
			continue
		}
		if !r.cancelled {
			// Survivors must see how the job ended; only a deliberately
			// slow client may have been evicted instead.
			if i != 0 {
				t.Errorf("subscriber %d stayed connected but saw no terminal frame (%d bytes)", i, len(r.body))
			}
			continue
		}
		dropped++
	}
	if terminal == 0 {
		t.Fatal("no subscriber observed a terminal frame")
	}
	if got := hub.Subscribers(); got != 0 {
		t.Fatalf("hub.Subscribers() after all handlers returned = %d, want 0", got)
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	// Bounded-memory check: with every subscriber detached nothing about
	// the fan-out should still be live. Allow generous slack for runtime
	// noise — this catches a leaked per-subscriber buffer design bug
	// (10k * retained frames), not byte-level regressions.
	const slack = 64 << 20
	if after.HeapAlloc > before.HeapAlloc+slack {
		t.Fatalf("heap grew %d -> %d bytes after stream teardown", before.HeapAlloc, after.HeapAlloc)
	}
	t.Logf("subscribers: %d saw terminal, %d disconnected early; heap %d -> %d bytes",
		terminal, dropped, before.HeapAlloc, after.HeapAlloc)
}
