package api

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/scenario"
)

// GET /api/v1/scenarios serves the registry catalog with the same
// conditional-GET contract as /api/v1/benchmarks: a strong content-hash
// ETag, 304 on If-None-Match (strong or weak form), and gzip when the
// client accepts it.
func TestScenariosCatalogEndpoint(t *testing.T) {
	srv := testServer(t)
	resp := condGet(t, srv.URL+"/api/v1/scenarios", "")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("status = %d, etag = %q", resp.StatusCode, etag)
	}
	var cat scenario.Catalog
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	want := scenario.BuildCatalog()
	if len(cat.Schemes) != len(want.Schemes) || len(cat.FaultModels) != len(want.FaultModels) {
		t.Fatalf("served catalog has %d schemes / %d models, registry has %d / %d",
			len(cat.Schemes), len(cat.FaultModels), len(want.Schemes), len(want.FaultModels))
	}
	names := map[string]bool{}
	for _, s := range cat.Schemes {
		names[s.Name] = true
	}
	for _, mustHave := range []string{"Citadel", "two-tier-replication", "cerberus-cross-layer"} {
		if !names[mustHave] {
			t.Errorf("catalog missing scheme %q", mustHave)
		}
	}

	resp2 := condGet(t, srv.URL+"/api/v1/scenarios", etag)
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", resp2.StatusCode)
	}
	resp3 := condGet(t, srv.URL+"/api/v1/scenarios", "W/"+etag)
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("weak conditional status = %d, want 304", resp3.StatusCode)
	}
}

func TestScenariosCatalogGzip(t *testing.T) {
	srv := testServer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/scenarios", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	var cat scenario.Catalog
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatalf("decompressed catalog unparsable: %v", err)
	}
}

// The reliability endpoint accepts scenario selections and rejects
// unknown ones with a client error, not a failed job.
func TestReliabilityScenarioSelection(t *testing.T) {
	srv := testServer(t)
	post := func(body ReliabilityRequest) (*http.Response, ReliabilityResponse) {
		var out ReliabilityResponse
		resp := postJSON(t, srv.URL+"/api/v1/reliability", body, &out)
		return resp, out
	}

	resp, out := post(ReliabilityRequest{
		Scheme: "Citadel", Trials: 200, Seed: 5,
		FaultModel:     "rowhammer",
		ScenarioParams: map[string]float64{"breakthroughProb": 1e-7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rowhammer request status = %d", resp.StatusCode)
	}
	if out.ScenarioStats["hammerTrials"] != 200 {
		t.Fatalf("hammerTrials = %g, want 200 (stats: %v)", out.ScenarioStats["hammerTrials"], out.ScenarioStats)
	}

	resp, _ = post(ReliabilityRequest{Scheme: "two-tier-replication", Trials: 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("two-tier request status = %d", resp.StatusCode)
	}

	resp, _ = post(ReliabilityRequest{Scheme: "Citadel", Trials: 10, FaultModel: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown fault model status = %d, want 400", resp.StatusCode)
	}
	resp, _ = post(ReliabilityRequest{Scheme: "Citadel", Trials: 10,
		ScenarioParams: map[string]float64{"bogus": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown param status = %d, want 400", resp.StatusCode)
	}
}
