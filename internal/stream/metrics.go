package stream

import "repro/internal/obs"

// Hub metrics, exposed by cmd/citadel-server at GET /metrics. Together
// they make the fan-out observable: frames/publishes is the effective
// fan-out factor, coalesced counts snapshots slow clients skipped, and
// evicted counts clients detached for not draining at all.
var (
	mPublishes = obs.Default().Counter("citadel_stream_publishes_total",
		"Snapshots published to the SSE hub (one JSON marshal each).")
	mFrames = obs.Default().Counter("citadel_stream_frames_total",
		"SSE frames enqueued to subscribers (shared bytes, no re-encoding).")
	mCoalesced = obs.Default().Counter("citadel_stream_coalesced_total",
		"Progress frames dropped latest-wins because a subscriber buffer was full.")
	mEvicted = obs.Default().Counter("citadel_stream_evicted_total",
		"Subscribers evicted for falling too far behind.")
	mRejected = obs.Default().Counter("citadel_stream_rejected_total",
		"Subscriptions rejected at the subscriber cap (HTTP 429).")
	mSubscribers = obs.Default().Gauge("citadel_stream_subscribers",
		"Currently connected SSE subscribers across all topics.")
)
