// Package stream is the push side of the result plane: a per-topic
// subscriber hub that broadcasts job progress and results as
// Server-Sent Events frames.
//
// The hub exists to make fan-out cheap at high subscriber counts. Each
// published snapshot is JSON-marshalled exactly once and rendered into a
// single SSE wire frame ([]byte); every subscriber receives the same
// shared slice, so the cost of a publish is one marshal plus N channel
// sends regardless of N (see TestPublishAllocsIndependentOfSubscribers).
//
// Backpressure follows the PR-1 discipline: subscribers own bounded
// buffers, intermediate progress frames coalesce latest-wins when a
// buffer is full (a dashboard that missed three snapshots only wants the
// newest one), and a subscriber that keeps forcing coalescing is evicted
// instead of buffered without bound. Terminal frames — the done/failed/
// cancelled snapshot, or the drain notice on SIGTERM — are never
// dropped: the publisher makes room by discarding stale progress frames,
// so every surviving subscriber observes how its job ended.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strconv"
	"sync"
)

// Subscription errors.
var (
	// ErrSubscriberLimit rejects a subscribe past Options.MaxSubscribers.
	// The HTTP layer maps it to 429 with a Retry-After hint.
	ErrSubscriberLimit = errors.New("stream: subscriber limit reached")
)

// DrainEvent is the event name of the terminal frame Drain broadcasts:
// the server is shutting down and the client should reconnect elsewhere
// (or poll the durable job store once the process returns).
const DrainEvent = "drain"

// Options tunes a Hub. The zero value selects production defaults.
type Options struct {
	// MaxSubscribers caps concurrent subscribers across all topics
	// (default 16384). Subscribe past it fails with ErrSubscriberLimit.
	MaxSubscribers int
	// BufferFrames is the per-subscriber ring capacity (default 8).
	// Progress frames past it coalesce latest-wins.
	BufferFrames int
	// MaxCoalesced evicts a subscriber after this many consecutive
	// coalesced (dropped-oldest) progress frames (default 1024): a
	// client that far behind is holding a connection, not reading it.
	MaxCoalesced int
	// Logf sinks eviction notices (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxSubscribers <= 0 {
		o.MaxSubscribers = 16384
	}
	if o.BufferFrames <= 0 {
		o.BufferFrames = 8
	}
	if o.MaxCoalesced <= 0 {
		o.MaxCoalesced = 1024
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Frame is one rendered SSE event. Data is the complete wire form
// ("id: N\nevent: e\ndata: {...}\n\n"), shared by every subscriber of
// the topic — handlers write it verbatim and must not mutate it.
type Frame struct {
	// ID is the topic-scoped event sequence number, echoed by clients in
	// Last-Event-ID to resume.
	ID uint64
	// Event is the SSE event name ("progress", "done", "failed",
	// "cancelled", DrainEvent).
	Event string
	// Terminal marks the topic's final frame; no frames follow it.
	Terminal bool
	// Data is the rendered SSE frame, ready to write to the client.
	Data []byte
}

// topic is one broadcast group (one job).
type topic struct {
	mu       sync.Mutex
	subs     map[*Subscriber]struct{}
	seq      uint64
	latest   Frame // most recent frame, replayed to (re)subscribers
	terminal bool
}

// Hub fans published frames out to per-topic subscribers.
type Hub struct {
	opts Options

	mu     sync.Mutex
	topics map[string]*topic
	nsubs  int
}

// New builds a Hub.
func New(opts Options) *Hub {
	return &Hub{opts: opts.withDefaults(), topics: make(map[string]*topic)}
}

// Subscribers returns the current subscriber count across all topics.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nsubs
}

// topicFor returns (creating if needed) the named topic.
func (h *Hub) topicFor(id string) *topic {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[id]
	if t == nil {
		t = &topic{subs: make(map[*Subscriber]struct{})}
		h.topics[id] = t
	}
	return t
}

// renderFrame builds the SSE wire bytes once per publish; subscribers
// share the result.
func renderFrame(id uint64, event string, data []byte) []byte {
	buf := make([]byte, 0, len(data)+len(event)+32)
	buf = append(buf, "id: "...)
	buf = strconv.AppendUint(buf, id, 10)
	buf = append(buf, "\nevent: "...)
	buf = append(buf, event...)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, data...) // json.Marshal output never contains raw newlines
	buf = append(buf, "\n\n"...)
	return buf
}

// Publish marshals v exactly once, renders one shared SSE frame, and
// fans it out to every subscriber of the topic. A terminal publish
// closes the topic: subscribers receive the frame and are detached, and
// later publishes to the topic are ignored (the snapshot after "done"
// carries no new information). Publishing to a topic nobody has touched
// creates it, so late subscribers can replay the latest snapshot.
func (h *Hub) Publish(topicID, event string, v any, terminal bool) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("stream: encoding %s event: %w", event, err)
	}
	t := h.topicFor(topicID)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.terminal {
		return nil
	}
	t.seq++
	f := Frame{ID: t.seq, Event: event, Terminal: terminal, Data: renderFrame(t.seq, event, data)}
	t.latest = f
	if terminal {
		t.terminal = true
	}
	mPublishes.Inc()
	var detached int
	for sub := range t.subs {
		if !h.pushLocked(t, sub, f) {
			continue // evicted inside pushLocked
		}
		if terminal {
			sub.closed = true
			close(sub.ch)
			delete(t.subs, sub)
			detached++
		}
	}
	if detached > 0 {
		h.mu.Lock()
		h.nsubs -= detached
		h.mu.Unlock()
		mSubscribers.Add(int64(-detached))
	}
	return nil
}

// pushLocked delivers f to sub, coalescing latest-wins when the buffer
// is full. Terminal frames always land: stale progress frames are
// discarded until there is room (the publisher is the only sender and
// the consumer only drains, so room appears after one drop). A
// subscriber that exceeds MaxCoalesced consecutive drops on a progress
// frame is evicted. Callers hold t.mu; reports false if sub was evicted.
func (h *Hub) pushLocked(t *topic, sub *Subscriber, f Frame) bool {
	dropped := false
	for {
		select {
		case sub.ch <- f:
			mFrames.Inc()
			// Only a clean send proves the consumer is keeping up: a send
			// that needed a drop first always succeeds (the publisher is
			// the only sender), so resetting on it would mask a stuck
			// client forever.
			if !dropped {
				sub.coalesced = 0
			}
			return true
		default:
		}
		select {
		case <-sub.ch:
			mCoalesced.Inc()
			dropped = true
			sub.coalesced++
			if !f.Terminal && sub.coalesced >= h.opts.MaxCoalesced {
				h.evictLocked(t, sub)
				return false
			}
		default:
			// The consumer drained between the two selects; retry the send.
		}
	}
}

// evictLocked detaches a subscriber that stopped draining. Callers hold
// t.mu.
func (h *Hub) evictLocked(t *topic, sub *Subscriber) {
	sub.closed = true
	sub.evicted = true
	close(sub.ch)
	delete(t.subs, sub)
	h.mu.Lock()
	h.nsubs--
	h.mu.Unlock()
	mSubscribers.Dec()
	mEvicted.Inc()
	h.opts.Logf("stream: evicted subscriber of %s (%d consecutive coalesced frames)",
		sub.topicID, sub.coalesced)
}

// Subscriber is one client's bounded view of a topic's frame stream.
type Subscriber struct {
	h       *Hub
	t       *topic
	topicID string
	ch      chan Frame

	// coalesced counts consecutive dropped-oldest frames; guarded by
	// t.mu.
	coalesced int
	// closed guards against double-close across Publish/evict/Close;
	// guarded by t.mu.
	closed bool
	// evicted marks a hub-side close for slowness; guarded by t.mu
	// before close, read-only after Frames is closed.
	evicted bool
}

// Frames returns the subscriber's frame channel. It is closed after the
// terminal frame is delivered, or without one when the subscriber was
// evicted (see Evicted).
func (s *Subscriber) Frames() <-chan Frame { return s.ch }

// Evicted reports whether the hub closed this subscriber for falling too
// far behind. Only meaningful after Frames is closed.
func (s *Subscriber) Evicted() bool {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.evicted
}

// Close detaches the subscriber (client disconnect). Safe to call after
// the hub already closed it.
func (s *Subscriber) Close() {
	s.t.mu.Lock()
	if s.closed {
		s.t.mu.Unlock()
		return
	}
	s.closed = true
	close(s.ch)
	delete(s.t.subs, s)
	s.t.mu.Unlock()
	s.h.mu.Lock()
	s.h.nsubs--
	s.h.mu.Unlock()
	mSubscribers.Dec()
}

// Subscribe attaches a subscriber to the topic. lastEventID is the
// client's Last-Event-ID (0 for a fresh connection): when the topic's
// latest frame is newer, it is replayed immediately so a resuming client
// catches up from one frame — the hub keeps only the latest snapshot per
// topic, not a history, because snapshots are cumulative. Subscribing to
// an already-terminal topic delivers the terminal frame (unless the
// client confirmed seeing it) and closes the channel at once.
func (h *Hub) Subscribe(topicID string, lastEventID uint64) (*Subscriber, error) {
	h.mu.Lock()
	if h.nsubs >= h.opts.MaxSubscribers {
		h.mu.Unlock()
		mRejected.Inc()
		return nil, ErrSubscriberLimit
	}
	h.nsubs++
	h.mu.Unlock()
	mSubscribers.Inc()
	t := h.topicFor(topicID)
	sub := &Subscriber{h: h, t: t, topicID: topicID, ch: make(chan Frame, h.opts.BufferFrames)}
	t.mu.Lock()
	defer t.mu.Unlock()
	replay := t.latest.ID > 0 && t.latest.ID != lastEventID
	if t.terminal {
		if replay {
			sub.ch <- t.latest
			mFrames.Inc()
		}
		sub.closed = true
		close(sub.ch)
		h.mu.Lock()
		h.nsubs--
		h.mu.Unlock()
		mSubscribers.Dec()
		return sub, nil
	}
	if replay {
		sub.ch <- t.latest
		mFrames.Inc()
	}
	t.subs[sub] = struct{}{}
	return sub, nil
}

// Drain broadcasts a terminal DrainEvent frame carrying v to every
// non-terminal topic: the process is shutting down, so streaming clients
// learn they were cut off by the server rather than the network. The
// server calls it on SIGTERM before closing listeners.
func (h *Hub) Drain(v any) {
	// Collect IDs under h.mu only: Publish acquires t.mu then h.mu, so
	// touching t.mu here would invert the lock order. Publish already
	// ignores terminal topics.
	h.mu.Lock()
	ids := make([]string, 0, len(h.topics))
	for id := range h.topics {
		ids = append(ids, id)
	}
	h.mu.Unlock()
	for _, id := range ids {
		if err := h.Publish(id, DrainEvent, v, true); err != nil {
			h.opts.Logf("stream: drain %s: %v", id, err)
		}
	}
}
