package stream

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func quiet(string, ...any) {}

func newHub(opts Options) *Hub {
	if opts.Logf == nil {
		opts.Logf = quiet
	}
	return New(opts)
}

// recv pulls one frame or fails the test after a timeout.
func recv(t *testing.T, sub *Subscriber) Frame {
	t.Helper()
	select {
	case f, ok := <-sub.Frames():
		if !ok {
			t.Fatalf("frames channel closed while expecting a frame")
		}
		return f
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for a frame")
	}
	panic("unreachable")
}

// recvClosed asserts the channel closes without another frame.
func recvClosed(t *testing.T, sub *Subscriber) {
	t.Helper()
	select {
	case f, ok := <-sub.Frames():
		if ok {
			t.Fatalf("expected closed channel, got frame id=%d event=%s", f.ID, f.Event)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for channel close")
	}
}

type snap struct {
	Trials int `json:"trials"`
}

func TestFanoutSharesOneFrame(t *testing.T) {
	h := newHub(Options{})
	subs := make([]*Subscriber, 8)
	for i := range subs {
		s, err := h.Subscribe("job-1", 0)
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		subs[i] = s
	}
	if got := h.Subscribers(); got != len(subs) {
		t.Fatalf("Subscribers() = %d, want %d", got, len(subs))
	}
	if err := h.Publish("job-1", "progress", snap{Trials: 42}, false); err != nil {
		t.Fatalf("publish: %v", err)
	}
	var first Frame
	for i, s := range subs {
		f := recv(t, s)
		if i == 0 {
			first = f
			want := "id: 1\nevent: progress\ndata: {\"trials\":42}\n\n"
			if string(f.Data) != want {
				t.Fatalf("frame data = %q, want %q", f.Data, want)
			}
			continue
		}
		// Same backing array, not a copy: the single-marshal contract.
		if &f.Data[0] != &first.Data[0] {
			t.Fatalf("subscriber %d received a copied frame", i)
		}
	}
	for _, s := range subs {
		s.Close()
	}
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after close = %d, want 0", got)
	}
}

func TestCoalescingKeepsLatest(t *testing.T) {
	h := newHub(Options{BufferFrames: 2})
	sub, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	for i := 1; i <= 10; i++ {
		if err := h.Publish("job-1", "progress", snap{Trials: i}, false); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	// Buffer held 2; drop-oldest means the tail of the stream survives.
	f1, f2 := recv(t, sub), recv(t, sub)
	if f1.ID != 9 || f2.ID != 10 {
		t.Fatalf("coalesced frames = %d,%d, want 9,10", f1.ID, f2.ID)
	}
}

func TestTerminalNeverDropped(t *testing.T) {
	h := newHub(Options{BufferFrames: 1})
	sub, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 1; i <= 5; i++ {
		h.Publish("job-1", "progress", snap{Trials: i}, false)
	}
	if err := h.Publish("job-1", "done", snap{Trials: 5}, true); err != nil {
		t.Fatalf("terminal publish: %v", err)
	}
	f := recv(t, sub)
	if !f.Terminal || f.Event != "done" {
		t.Fatalf("frame = %+v, want terminal done", f)
	}
	recvClosed(t, sub)
	if sub.Evicted() {
		t.Fatal("terminal delivery flagged as eviction")
	}
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after terminal = %d, want 0", got)
	}
	// Publishing past terminal is a silent no-op.
	if err := h.Publish("job-1", "progress", snap{}, false); err != nil {
		t.Fatalf("post-terminal publish: %v", err)
	}
}

func TestSlowSubscriberEvicted(t *testing.T) {
	h := newHub(Options{BufferFrames: 1, MaxCoalesced: 3})
	sub, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 1; i <= 10; i++ {
		h.Publish("job-1", "progress", snap{Trials: i}, false)
	}
	// Drain whatever landed before eviction; the channel must end closed.
	for range sub.Frames() {
	}
	if !sub.Evicted() {
		t.Fatal("slow subscriber was not evicted")
	}
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after eviction = %d, want 0", got)
	}
	// Eviction is not fatal to the topic: a fresh subscriber still works.
	sub2, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	if f := recv(t, sub2); f.ID != 10 {
		t.Fatalf("replayed frame id = %d, want 10", f.ID)
	}
	sub2.Close()
}

func TestResumeReplaysLatestOnly(t *testing.T) {
	h := newHub(Options{})
	for i := 1; i <= 3; i++ {
		h.Publish("job-1", "progress", snap{Trials: i}, false)
	}
	// A client that saw frame 1 gets frame 3 immediately — not 2 then 3.
	sub, err := h.Subscribe("job-1", 1)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if f := recv(t, sub); f.ID != 3 {
		t.Fatalf("replayed frame id = %d, want 3", f.ID)
	}
	select {
	case f := <-sub.Frames():
		t.Fatalf("unexpected second replay frame id=%d", f.ID)
	default:
	}
	sub.Close()

	// A client that already saw the latest frame gets nothing replayed.
	sub2, err := h.Subscribe("job-1", 3)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	select {
	case f := <-sub2.Frames():
		t.Fatalf("replay to an up-to-date client: frame id=%d", f.ID)
	default:
	}
	sub2.Close()
}

func TestSubscribeTerminalTopic(t *testing.T) {
	h := newHub(Options{})
	h.Publish("job-1", "progress", snap{Trials: 1}, false)
	h.Publish("job-1", "done", snap{Trials: 2}, true)

	// Late subscriber: terminal frame delivered, then closed.
	sub, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if f := recv(t, sub); !f.Terminal || f.ID != 2 {
		t.Fatalf("frame = %+v, want terminal id 2", f)
	}
	recvClosed(t, sub)

	// Client that confirmed the terminal frame: closed with no replay.
	sub2, err := h.Subscribe("job-1", 2)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	recvClosed(t, sub2)
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() = %d, want 0", got)
	}
}

func TestSubscriberLimit(t *testing.T) {
	h := newHub(Options{MaxSubscribers: 1})
	sub, err := h.Subscribe("job-1", 0)
	if err != nil {
		t.Fatalf("first subscribe: %v", err)
	}
	if _, err := h.Subscribe("job-2", 0); !errors.Is(err, ErrSubscriberLimit) {
		t.Fatalf("second subscribe err = %v, want ErrSubscriberLimit", err)
	}
	sub.Close()
	if _, err := h.Subscribe("job-2", 0); err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
}

func TestDrainBroadcastsTerminal(t *testing.T) {
	h := newHub(Options{})
	a, _ := h.Subscribe("job-a", 0)
	b, _ := h.Subscribe("job-b", 0)
	h.Publish("job-a", "progress", snap{Trials: 1}, false)
	recv(t, a) // leave a clean buffer so the drain frame is next

	h.Drain(map[string]string{"status": "draining"})
	for name, sub := range map[string]*Subscriber{"a": a, "b": b} {
		f := recv(t, sub)
		if !f.Terminal || f.Event != DrainEvent {
			t.Fatalf("subscriber %s: frame = %+v, want terminal %s", name, f, DrainEvent)
		}
		if !strings.Contains(string(f.Data), `"status":"draining"`) {
			t.Fatalf("subscriber %s: drain payload missing: %q", name, f.Data)
		}
		recvClosed(t, sub)
	}
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after drain = %d, want 0", got)
	}
}

// TestPublishAllocsIndependentOfSubscribers pins the single-marshal
// contract: the allocations of one publish must not grow with the
// subscriber count, because every subscriber shares the one rendered
// frame. If a per-subscriber copy or re-encoding sneaks in, the
// high-subscriber measurement jumps and this fails.
func TestPublishAllocsIndependentOfSubscribers(t *testing.T) {
	allocsWith := func(n int) float64 {
		h := newHub(Options{
			MaxSubscribers: n,
			BufferFrames:   4,
			MaxCoalesced:   1 << 30, // coalesce forever, never evict
		})
		for i := 0; i < n; i++ {
			if _, err := h.Subscribe("job-1", 0); err != nil {
				t.Fatalf("subscribe %d: %v", i, err)
			}
		}
		trials := 0
		return testing.AllocsPerRun(200, func() {
			trials++
			if err := h.Publish("job-1", "progress", snap{Trials: trials}, false); err != nil {
				t.Fatalf("publish: %v", err)
			}
		})
	}
	one, many := allocsWith(1), allocsWith(1024)
	if many > one+1 {
		t.Fatalf("publish allocs grew with subscribers: %0.1f at 1 sub, %0.1f at 1024", one, many)
	}
	t.Logf("publish allocs: %.1f at 1 subscriber, %.1f at 1024", one, many)
}

// BenchmarkBroadcastFanout measures fan-out throughput: frames/s is
// total frames delivered to subscribers per second of publishing, the
// unit cmd/benchjson gates.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, nsubs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", nsubs), func(b *testing.B) {
			h := newHub(Options{
				MaxSubscribers: nsubs,
				BufferFrames:   64,
				MaxCoalesced:   1 << 30,
			})
			subs := make([]*Subscriber, nsubs)
			for i := range subs {
				s, err := h.Subscribe("job-1", 0)
				if err != nil {
					b.Fatal(err)
				}
				subs[i] = s
			}
			var wg sync.WaitGroup
			for _, s := range subs {
				wg.Add(1)
				go func(s *Subscriber) {
					defer wg.Done()
					for range s.Frames() {
					}
				}(s)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish("job-1", "progress", snap{Trials: i}, false)
			}
			b.StopTimer()
			delivered := float64(b.N) * float64(nsubs) // enqueue work; coalescing trims writes, not fan-out cost
			b.ReportMetric(delivered/b.Elapsed().Seconds(), "frames/s")
			h.Publish("job-1", "done", snap{}, true)
			wg.Wait()
		})
	}
}
