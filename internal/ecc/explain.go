package ecc

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/stack"
)

// Reason-chain codes. A forensic record carries an ordered list of Reasons
// explaining why a trial's live fault set defeated its protection scheme.
// Scheme-level codes come from the Explainer implementations below;
// engine-level codes (DDS spare exhaustion, TSV-SWAP budget overflow) are
// appended by the Monte Carlo engine, which sees the sparing state the
// predicates do not. The vocabulary is documented in DESIGN.md.
const (
	// ReasonSymbolBudget: one fault alone corrupts more symbols per
	// codeword than the symbol code can correct.
	ReasonSymbolBudget = "symbol-budget-exceeded"
	// ReasonSymbolPair: two individually-correctable faults collide in a
	// common codeword and together exceed the symbol budget.
	ReasonSymbolPair = "symbol-pair-collision"
	// ReasonDeviceGranularPair: FaultSim-style bookkeeping — two
	// permanently faulty units share a codeword domain.
	ReasonDeviceGranularPair = "device-granular-pair"
	// ReasonBCHBudget: a fault corrupts more bits per line than BCH corrects.
	ReasonBCHBudget = "bch-bit-budget"
	// ReasonBCHPair: two faults co-locate on a line and exceed the bit budget.
	ReasonBCHPair = "bch-pair-collision"
	// ReasonNoProtection: the unprotected baseline fails on any fault.
	ReasonNoProtection = "no-protection"
	// ReasonUncorrectable is the generic fallback for predicates without a
	// scheme-specific explainer.
	ReasonUncorrectable = "uncorrectable"

	// Engine-level codes, appended by internal/faultsim at capture time.

	// ReasonDDSFootprint: DDS rejected a fault whose footprint spans more
	// than one bank (row/bank sparing cannot cover it).
	ReasonDDSFootprint = "dds-unsparable-footprint"
	// ReasonDDSBankSpares: DDS rejected a bank-sparing request because the
	// stack's spare banks were exhausted.
	ReasonDDSBankSpares = "dds-bank-spares-exhausted"
	// ReasonTSVSwapOverflow: a TSV fault arrived after the TSV-SWAP
	// stand-by budget for its channel was exhausted.
	ReasonTSVSwapOverflow = "tsvswap-budget-overflow"
	// ReasonCRCUndetected is reserved: the reliability model assumes the
	// per-line CRC-32 detects every corruption (paper §VI-C measures the
	// undetected-error probability as negligible), so the Monte Carlo
	// engine never emits this code today. It is part of the vocabulary so
	// a future detection-model extension has a stable name.
	ReasonCRCUndetected = "crc-undetected"
)

// ReasonParityCollision returns the code for a parity-dimension collision,
// e.g. "parity-dim1-collision".
func ReasonParityCollision(dim fmt.Stringer) string {
	return "parity-" + dim.String() + "-collision"
}

// Reason is one machine-readable step of a forensic reason chain.
type Reason struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// Explainer is implemented by predicates that can attribute an
// uncorrectable verdict to specific faults and mechanisms. Explain is only
// meaningful when Uncorrectable(live) is true; it must not retain the live
// slice (same contract as Predicate.Uncorrectable) and is allowed to
// allocate — it runs once per captured failure, never on the trial hot path.
type Explainer interface {
	Explain(live []fault.Fault) []Reason
}

// Explain produces the reason chain for an uncorrectable live set, falling
// back to a generic reason for predicates without scheme-specific support
// (e.g. 2D-ECC).
func Explain(p Predicate, live []fault.Fault) []Reason {
	if e, ok := p.(Explainer); ok {
		if rs := e.Explain(live); len(rs) > 0 {
			return rs
		}
	}
	return []Reason{{Code: ReasonUncorrectable, Detail: p.Name()}}
}

// Explain implements Explainer: it mirrors Uncorrectable but enumerates
// every violated rule instead of returning at the first.
func (s *Symbol8) Explain(live []fault.Fault) []Reason {
	var out []Reason
	ds := make([]damage, len(live))
	for i, f := range live {
		d := s.assess(f)
		ds[i] = d
		single := false
		switch s.striping {
		case stack.SameBank:
			single = !d.meta && d.symbols > s.SymbolBudget
		default:
			single = d.units >= 2 && d.symbols > s.SymbolBudget
		}
		if single {
			out = append(out, Reason{
				Code: ReasonSymbolBudget,
				Detail: fmt.Sprintf("fault #%d (%s) corrupts %d symbols across %d unit(s) in one codeword, budget %d",
					i, f, d.symbols, d.units, s.SymbolBudget),
			})
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if s.pairFails(live[i], ds[i], live[j], ds[j]) {
				out = append(out, Reason{
					Code: ReasonSymbolPair,
					Detail: fmt.Sprintf("faults #%d (%s) and #%d (%s) share a codeword: %d+%d symbols exceed budget %d",
						i, live[i], j, live[j], ds[i].symbols, ds[j].symbols, s.SymbolBudget),
				})
			}
			if s.DeviceGranular && s.striping != stack.SameBank &&
				s.deviceGranularPairFails(live[i], live[j]) {
				out = append(out, Reason{
					Code: ReasonDeviceGranularPair,
					Detail: fmt.Sprintf("faults #%d (%s) and #%d (%s) mark two permanently faulty units in one codeword domain",
						i, live[i], j, live[j]),
				})
			}
		}
	}
	return out
}

// Explain implements Explainer for the BCH code.
func (b *BCH6EC7ED) Explain(live []fault.Fault) []Reason {
	var out []Reason
	bits := make([]int, len(live))
	for i, f := range live {
		bits[i] = b.bitsPerLine(f)
		if bits[i] > b.BitBudget {
			out = append(out, Reason{
				Code: ReasonBCHBudget,
				Detail: fmt.Sprintf("fault #%d (%s) corrupts %d bits/line, budget %d",
					i, f, bits[i], b.BitBudget),
			})
		}
	}
	lineB := b.cfg.LineBytes * 8
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if bits[i]+bits[j] <= b.BitBudget {
				continue
			}
			ai, aj := live[i].Region, live[j].Region
			colocated := false
			if live[i].Class == fault.DataTSV || live[j].Class == fault.DataTSV {
				colocated = ai.Stack == aj.Stack && ai.Die.Intersects(aj.Die)
			} else {
				colocated = ai.Stack == aj.Stack &&
					ai.Die.Intersects(aj.Die) && ai.Bank.Intersects(aj.Bank) &&
					ai.Row.Intersects(aj.Row) &&
					windowsIntersect(ai.Col, aj.Col, lineB, b.cfg.RowBytes*8)
			}
			if colocated {
				out = append(out, Reason{
					Code: ReasonBCHPair,
					Detail: fmt.Sprintf("faults #%d (%s) and #%d (%s) co-locate on a line: %d+%d bits exceed budget %d",
						i, live[i], j, live[j], bits[i], bits[j], b.BitBudget),
				})
			}
		}
	}
	return out
}

// Explain implements Explainer for the parity (kDP) predicate: it replays
// the peeling fixpoint with index tracking and reports, per surviving fault
// and per parity dimension, which faults block its reconstruction groups.
func (p *ParityPredicate) Explain(live []fault.Fault) []Reason {
	regions := make([]fault.Region, len(live))
	for i, f := range live {
		regions[i] = f.Region
	}
	blames := p.an.Explain(regions)
	var out []Reason
	dims := p.an.Dims().List()
	for _, bl := range blames {
		for _, d := range dims {
			out = append(out, Reason{
				Code: ReasonParityCollision(d),
				Detail: fmt.Sprintf("fault #%d (%s) blocked in %s by fault(s) %v",
					bl.Index, live[bl.Index], d, bl.Blockers[d]),
			})
		}
	}
	return out
}

// Explain implements Explainer for RAID-5 by reusing the inner symbol-code
// attribution under RAID-5 codes (the capability model is the single-
// erasure special case of the Across-Channels symbol code).
func (r *RAID5) Explain(live []fault.Fault) []Reason {
	out := r.inner.Explain(live)
	for i := range out {
		out[i].Code = strings.Replace(out[i].Code, "symbol-", "raid5-", 1)
	}
	return out
}

// Explain implements Explainer for the unprotected baseline.
func (NoProtection) Explain(live []fault.Fault) []Reason {
	if len(live) == 0 {
		return nil
	}
	return []Reason{{
		Code:   ReasonNoProtection,
		Detail: fmt.Sprintf("%d live fault(s), first: %s", len(live), live[0]),
	}}
}
