package ecc

import (
	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// Incremental correctability evaluation. The Monte Carlo engine's trial
// loop evaluates the live fault set after every arrival; the batch
// Predicate.Uncorrectable re-derives the verdict from scratch each time,
// which is quadratic per trial in the number of faults (and worse for the
// parity schemes). IncrementalPredicate lets a predicate maintain the
// verdict under single-fault additions and removals instead.
//
// Begin allocates once per worker; the Add/Remove/Reset steady state is
// allocation-free once scratch buffers are warm. The batch Uncorrectable
// implementations are deliberately left untouched: they are the oracle the
// differential tests replay against (see incremental_test.go), and the
// engine's DisableIncremental escape hatch.

// IncrementalState maintains the verdict for a multiset of live faults
// under incremental updates. Implementations must give, at every step,
// exactly the verdict the predicate's batch Uncorrectable would give on the
// same multiset.
type IncrementalState interface {
	// Add inserts the fault and returns the updated verdict.
	Add(f fault.Fault) bool
	// Remove deletes one fault equal to f (no-op if absent) and returns
	// the updated verdict.
	Remove(f fault.Fault) bool
	// Reset empties the state, retaining capacity.
	Reset()
	// Uncorrectable reports the current verdict.
	Uncorrectable() bool
}

// IncrementalPredicate is implemented by predicates that support
// incremental evaluation. The engine type-asserts for it and falls back to
// the batch path otherwise.
type IncrementalPredicate interface {
	Predicate
	// Begin returns a fresh empty state. States are not safe for
	// concurrent use; the engine creates one per worker.
	Begin() IncrementalState
}

// pairCounter incrementalizes the common batch shape "uncorrectable iff
// some fault alone violates the code OR some pair of faults violates it":
// it counts the violating singles and pairs. Both rules are pure functions
// of the faults involved and the pair rule is symmetric, so the counts are
// order-independent and removal can subtract exactly what addition added —
// the verdict (count > 0) always matches the batch all-pairs scan.
//
// assess computes a per-fault annotation (cached so the pair rule never
// recomputes it) plus the single-fault verdict; pair is the symmetric
// two-fault rule.
type pairCounter[A any] struct {
	assess func(f fault.Fault) (A, bool)
	pair   func(fa fault.Fault, aa A, fb fault.Fault, ab A) bool

	faults  []fault.Fault
	anns    []A
	single  []bool
	nSingle int
	nPair   int
}

func (pc *pairCounter[A]) Uncorrectable() bool { return pc.nSingle > 0 || pc.nPair > 0 }

func (pc *pairCounter[A]) Reset() {
	pc.faults = pc.faults[:0]
	pc.anns = pc.anns[:0]
	pc.single = pc.single[:0]
	pc.nSingle = 0
	pc.nPair = 0
}

func (pc *pairCounter[A]) Add(f fault.Fault) bool {
	ann, bad := pc.assess(f)
	for j := range pc.faults {
		if pc.pair(pc.faults[j], pc.anns[j], f, ann) {
			pc.nPair++
		}
	}
	pc.faults = append(pc.faults, f)
	pc.anns = append(pc.anns, ann)
	pc.single = append(pc.single, bad)
	if bad {
		pc.nSingle++
	}
	return pc.Uncorrectable()
}

func (pc *pairCounter[A]) Remove(f fault.Fault) bool {
	for i := range pc.faults {
		if pc.faults[i] != f {
			continue
		}
		for j := range pc.faults {
			if j != i && pc.pair(pc.faults[j], pc.anns[j], pc.faults[i], pc.anns[i]) {
				pc.nPair--
			}
		}
		if pc.single[i] {
			pc.nSingle--
		}
		last := len(pc.faults) - 1
		pc.faults[i] = pc.faults[last]
		pc.anns[i] = pc.anns[last]
		pc.single[i] = pc.single[last]
		pc.faults = pc.faults[:last]
		pc.anns = pc.anns[:last]
		pc.single = pc.single[:last]
		break
	}
	return pc.Uncorrectable()
}

// Begin implements IncrementalPredicate. The single rule mirrors the
// striping switch at the top of Symbol8.Uncorrectable; the pair rule is
// pairFails plus the optional device-granular bookkeeping.
func (s *Symbol8) Begin() IncrementalState {
	return &pairCounter[damage]{
		assess: func(f fault.Fault) (damage, bool) {
			d := s.assess(f)
			switch s.striping {
			case stack.SameBank:
				return d, !d.meta && d.symbols > s.SymbolBudget
			default:
				return d, d.units >= 2 && d.symbols > s.SymbolBudget
			}
		},
		pair: func(fa fault.Fault, da damage, fb fault.Fault, db damage) bool {
			if s.pairFails(fa, da, fb, db) {
				return true
			}
			return s.DeviceGranular && s.striping != stack.SameBank &&
				s.deviceGranularPairFails(fa, fb)
		},
	}
}

// Begin implements IncrementalPredicate.
func (b *BCH6EC7ED) Begin() IncrementalState {
	return &pairCounter[int]{
		assess: func(f fault.Fault) (int, bool) {
			bits := b.bitsPerLine(f)
			return bits, bits > b.BitBudget
		},
		pair: func(fa fault.Fault, ba int, fb fault.Fault, bb int) bool {
			return ba+bb > b.BitBudget && b.pairColocated(fa, fb)
		},
	}
}

// pairColocated is the colocation test from the batch BCH pair loop,
// factored for the incremental path.
func (b *BCH6EC7ED) pairColocated(fa, fb fault.Fault) bool {
	ai, aj := fa.Region, fb.Region
	if ai.Stack != aj.Stack {
		return false
	}
	if fa.Class == fault.DataTSV || fb.Class == fault.DataTSV {
		return ai.Die.Intersects(aj.Die)
	}
	lineB := b.cfg.LineBytes * 8
	return ai.Die.Intersects(aj.Die) && ai.Bank.Intersects(aj.Bank) &&
		ai.Row.Intersects(aj.Row) &&
		windowsIntersect(ai.Col, aj.Col, lineB, b.cfg.RowBytes*8)
}

// Begin implements IncrementalPredicate.
func (e *TwoDECC) Begin() IncrementalState {
	return &pairCounter[struct{}]{
		assess: func(f fault.Fault) (struct{}, bool) {
			return struct{}{}, e.singleFaultFatal(f)
		},
		pair: func(fa fault.Fault, _ struct{}, fb fault.Fault, _ struct{}) bool {
			return e.pairHitsSameTile(fa, fb)
		},
	}
}

// pairHitsSameTile is the tile-colocation test from the batch TwoDECC pair
// loop, factored for the incremental path.
func (e *TwoDECC) pairHitsSameTile(a, b fault.Fault) bool {
	if a.Region.Stack != b.Region.Stack {
		return false
	}
	if !a.Region.Die.Intersects(b.Region.Die) || !a.Region.Bank.Intersects(b.Region.Bank) {
		return false
	}
	sameRowBand := false
	for lo := 0; lo < e.cfg.RowsPerBank; lo += e.BlockDim {
		band := fault.RangePattern(uint32(lo), uint32(lo+e.BlockDim))
		if a.Region.Row.Intersects(band) && b.Region.Row.Intersects(band) {
			sameRowBand = true
			break
		}
	}
	if !sameRowBand {
		return false
	}
	return windowsIntersect(a.Region.Col, b.Region.Col, e.BlockDim, e.cfg.RowBytes*8)
}

// parityState adapts parity.State (which tracks regions) to fault-level
// IncrementalState.
type parityState struct{ st *parity.State }

// Begin implements IncrementalPredicate.
func (p *ParityPredicate) Begin() IncrementalState {
	return &parityState{st: p.an.NewState()}
}

func (s *parityState) Add(f fault.Fault) bool    { return s.st.Add(f.Region) }
func (s *parityState) Remove(f fault.Fault) bool { return s.st.Remove(f.Region) }
func (s *parityState) Reset()                    { s.st.Reset() }
func (s *parityState) Uncorrectable() bool       { return s.st.Uncorrectable() }

// Begin implements IncrementalPredicate by delegating to the inner
// Across-Channels symbol code.
func (r *RAID5) Begin() IncrementalState { return r.inner.Begin() }

// Begin implements IncrementalPredicate: every fault is a single-fault
// violation and no pair rule is needed, so the pairCounter's multiset
// bookkeeping gives "uncorrectable iff any fault is live".
func (NoProtection) Begin() IncrementalState {
	return &pairCounter[struct{}]{
		assess: func(fault.Fault) (struct{}, bool) { return struct{}{}, true },
		pair:   func(fault.Fault, struct{}, fault.Fault, struct{}) bool { return false },
	}
}
