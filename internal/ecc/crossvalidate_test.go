package ecc

// Cross-validation of the Symbol8 capability model against the actual
// Reed-Solomon codec: the Monte Carlo predicates assume an RS(72,64)-style
// code corrects 4 unknown symbol errors or an 8-symbol known-position unit
// erasure. These tests confirm the codec delivers exactly that.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/reedsolomon"
	"repro/internal/stack"
)

func rs72(t *testing.T) *reedsolomon.Code {
	t.Helper()
	c, err := reedsolomon.New(72, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSymbolBudgetMatchesCodec(t *testing.T) {
	c := rs72(t)
	s := NewSymbol8(stack.DefaultConfig(), stack.SameBank)
	if s.SymbolBudget != c.CorrectableErrors() {
		t.Errorf("model budget %d != RS(72,64) capability %d",
			s.SymbolBudget, c.CorrectableErrors())
	}
}

func TestCodecCorrectsWithinBudget(t *testing.T) {
	c := rs72(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		nerr := 1 + rng.Intn(4) // within the model's budget
		for _, p := range rng.Perm(72)[:nerr] {
			cw[p] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d: %d errors uncorrectable (model says budget 4)", trial, nerr)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestCodecUnitErasureProperty(t *testing.T) {
	// The ChipKill property the striped predicates rely on: a whole
	// 8-symbol unit at a KNOWN position is correctable (8 erasures = n-k).
	c := rs72(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		cw, _ := c.Encode(data)
		unit := rng.Intn(9) // 9 units of 8 symbols
		erasures := make([]int, 8)
		for i := 0; i < 8; i++ {
			pos := unit*8 + i
			erasures[i] = pos
			cw[pos] = byte(rng.Intn(256))
		}
		got, _, err := c.DecodeErasures(cw, erasures)
		if err != nil {
			t.Fatalf("trial %d: unit %d erasure uncorrectable", trial, unit)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestCodecUnitErasurePlusErrorFails(t *testing.T) {
	// The failure rule behind pairFails: a full unit erasure plus even one
	// unknown error elsewhere exceeds 2e+f = 8.
	c := rs72(t)
	rng := rand.New(rand.NewSource(43))
	failures := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		orig, _ := c.Encode(data)
		cw := append([]byte(nil), orig...)
		erasures := make([]int, 8)
		for i := 0; i < 8; i++ {
			erasures[i] = i // unit 0
			cw[i] ^= byte(1 + rng.Intn(255))
		}
		// One unknown error in another unit.
		p := 8 + rng.Intn(64)
		cw[p] ^= byte(1 + rng.Intn(255))
		got, _, err := c.DecodeErasures(cw, erasures)
		if err != nil || !bytes.Equal(got, data) {
			failures++
		}
	}
	if failures < trials*9/10 {
		t.Errorf("unit erasure + 1 error decoded correctly in %d/%d trials (should almost always fail)",
			trials-failures, trials)
	}
}

func TestCodecDataTSVDamageCorrectable(t *testing.T) {
	// A data-TSV fault corrupts exactly 2 symbols per line (bits t and
	// t+256 live in different bytes); the model says that is always within
	// budget — confirm with the codec across every TSV position.
	c := rs72(t)
	cfg := stack.DefaultConfig()
	rng := rand.New(rand.NewSource(44))
	for tsv := 0; tsv < cfg.DataTSVs; tsv += 17 {
		data := make([]byte, 64)
		rng.Read(data)
		cw, _ := c.Encode(data)
		for _, bit := range cfg.BitsOnTSV(tsv) {
			cw[bit/8] ^= 1 << (bit % 8)
		}
		got, _, err := c.Decode(cw)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("TSV %d damage uncorrectable", tsv)
		}
	}
}
