package ecc

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// newTestRand returns a deterministic RNG for randomized tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func cfg() stack.Config { return stack.DefaultConfig() }

// mk builds faults with the standard footprint shapes on the default
// geometry, mirroring internal/fault's sampler.
func mk(class fault.Class, die, bank, row, col uint32) fault.Fault {
	r := fault.Region{
		Stack: 0,
		Die:   fault.ExactPattern(die),
		Bank:  fault.ExactPattern(bank),
		Row:   fault.ExactPattern(row),
		Col:   fault.ExactPattern(col),
	}
	switch class {
	case fault.Word:
		r.Col = fault.MaskPattern(^uint32(63), col&^uint32(63))
	case fault.Row:
		r.Col = fault.AllPattern()
	case fault.Column:
		r.Row = fault.RangePattern(0, 5200)
	case fault.SubArray:
		r.Row = fault.RangePattern(0, 5200)
		r.Col = fault.AllPattern()
	case fault.Bank:
		r.Row = fault.AllPattern()
		r.Col = fault.AllPattern()
	case fault.DataTSV:
		r.Bank = fault.AllPattern()
		r.Row = fault.AllPattern()
		r.Col = fault.MaskPattern(255, col&255)
	case fault.AddrTSV:
		r.Bank = fault.AllPattern()
		r.Row = fault.MaskPattern(1<<15, 1<<15)
		r.Col = fault.AllPattern()
	}
	return fault.Fault{Class: class, Persistence: fault.Permanent, Region: r, TSV: int(col)}
}

func one(f fault.Fault) []fault.Fault { return []fault.Fault{f} }

func TestSymbol8SameBankSingleFaults(t *testing.T) {
	s := NewSymbol8(cfg(), stack.SameBank)
	cases := []struct {
		name string
		f    fault.Fault
		want bool // uncorrectable?
	}{
		{"bit", mk(fault.Bit, 0, 0, 10, 5), false},
		{"word", mk(fault.Word, 0, 0, 10, 128), true},   // 8 symbols > 4
		{"column", mk(fault.Column, 0, 0, 0, 5), false}, // 1 bit per line
		{"row", mk(fault.Row, 0, 0, 10, 0), true},
		{"bank", mk(fault.Bank, 0, 0, 0, 0), true},
		{"data-tsv", mk(fault.DataTSV, 0, 0, 0, 7), false}, // 2 symbols per line
		{"addr-tsv", mk(fault.AddrTSV, 0, 0, 0, 0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.Uncorrectable(one(tc.f)); got != tc.want {
				t.Errorf("Uncorrectable = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSymbol8SameBankPairs(t *testing.T) {
	s := NewSymbol8(cfg(), stack.SameBank)
	a := mk(fault.Bit, 0, 0, 10, 5)
	b := mk(fault.Bit, 0, 0, 10, 100)
	if s.Uncorrectable([]fault.Fault{a, b}) {
		t.Error("two bit faults on one line uncorrectable (budget 4)")
	}
	// Bit faults in different banks never share a codeword.
	var spread []fault.Fault
	for bank := uint32(1); bank <= 5; bank++ {
		spread = append(spread, mk(fault.Bit, 0, bank, 10, 5))
	}
	if s.Uncorrectable(spread) {
		t.Error("bit faults in distinct banks uncorrectable")
	}
	// Column fault (1 symbol/line) + data-TSV (2 symbols/line) in same
	// channel: 3 <= 4, fine.
	mix := []fault.Fault{mk(fault.Column, 0, 0, 0, 5), mk(fault.DataTSV, 0, 0, 0, 77)}
	if s.Uncorrectable(mix) {
		t.Error("column+TSV (3 symbols/line) uncorrectable")
	}
	// Three data-TSVs in one channel: pairwise sums 4 <= 4, fine (known
	// pairwise approximation).
	three := []fault.Fault{mk(fault.DataTSV, 0, 0, 0, 1), mk(fault.DataTSV, 0, 0, 0, 2)}
	if s.Uncorrectable(three) {
		t.Error("two data-TSVs (4 symbols/line) uncorrectable under budget 4")
	}
}

func TestSymbol8AcrossBanks(t *testing.T) {
	s := NewSymbol8(cfg(), stack.AcrossBanks)
	// A bank failure corrupts one unit: correctable (ChipKill erasure).
	if s.Uncorrectable(one(mk(fault.Bank, 0, 3, 0, 0))) {
		t.Error("single bank failure uncorrectable under Across-Banks")
	}
	// A data TSV fault corrupts 2 bits in 2 units: within the 4-symbol
	// budget, correctable.
	if s.Uncorrectable(one(mk(fault.DataTSV, 0, 0, 0, 7))) {
		t.Error("single data-TSV fault uncorrectable under Across-Banks")
	}
	// An addr TSV fault makes whole lines unreachable: fail.
	if !s.Uncorrectable(one(mk(fault.AddrTSV, 0, 0, 0, 0))) {
		t.Error("addr-TSV fault correctable under Across-Banks (should fail)")
	}
	// Two bank failures in the same die share every codeword.
	two := []fault.Fault{mk(fault.Bank, 0, 3, 0, 0), mk(fault.Bank, 0, 4, 0, 0)}
	if !s.Uncorrectable(two) {
		t.Error("two bank failures in one die correctable (should fail)")
	}
	// Two bank failures in different dies never share a codeword.
	sep := []fault.Fault{mk(fault.Bank, 0, 3, 0, 0), mk(fault.Bank, 1, 4, 0, 0)}
	if s.Uncorrectable(sep) {
		t.Error("bank failures in different dies uncorrectable")
	}
	// Bank failure + word fault in another bank of the same die, same row
	// and slice window: 8 erasures + 8 symbols >> budget.
	pair := []fault.Fault{mk(fault.Bank, 0, 3, 0, 0), mk(fault.Word, 0, 4, 10, 0)}
	if !s.Uncorrectable(pair) {
		t.Error("bank + word in same die correctable (should fail)")
	}
	// Bank failure + bit fault in another bank: 8 + 1 symbols > 4.
	pair2 := []fault.Fault{mk(fault.Bank, 0, 3, 0, 0), mk(fault.Bit, 0, 4, 10, 0)}
	if !s.Uncorrectable(pair2) {
		t.Error("bank + bit in same die correctable (should fail)")
	}
	// Two bit faults in different banks: 2 symbols total <= 4, fine.
	bits := []fault.Fault{mk(fault.Bit, 0, 1, 10, 5), mk(fault.Bit, 0, 2, 10, 7)}
	if s.Uncorrectable(bits) {
		t.Error("two bit faults in different banks uncorrectable (2 <= 4)")
	}
	// Data-TSV + bank failure in the same die: 2 + 8 symbols > 4, and the
	// TSV co-locates with every line.
	tsvBank := []fault.Fault{mk(fault.DataTSV, 0, 0, 0, 7), mk(fault.Bank, 0, 3, 0, 0)}
	if !s.Uncorrectable(tsvBank) {
		t.Error("data-TSV + bank failure correctable (should fail)")
	}
}

func TestSymbol8AcrossChannels(t *testing.T) {
	s := NewSymbol8(cfg(), stack.AcrossChannels)
	// Whole-channel faults confined to one die are correctable.
	for _, class := range []fault.Class{fault.Bank, fault.DataTSV, fault.AddrTSV} {
		if s.Uncorrectable(one(mk(class, 2, 0, 0, 7))) {
			t.Errorf("%v fault uncorrectable under Across-Channels", class)
		}
	}
	// Two channel faults in different dies of one stack: fail.
	two := []fault.Fault{mk(fault.AddrTSV, 2, 0, 0, 0), mk(fault.DataTSV, 3, 0, 0, 7)}
	if !s.Uncorrectable(two) {
		t.Error("two faulty channels correctable (should fail)")
	}
	// Same faults in different stacks: fine.
	other := mk(fault.DataTSV, 3, 0, 0, 7)
	other.Region.Stack = 1
	sep := []fault.Fault{mk(fault.AddrTSV, 2, 0, 0, 0), other}
	if s.Uncorrectable(sep) {
		t.Error("faults in separate stacks uncorrectable")
	}
	// Bank faults in two dies with different bank indices never share a
	// codeword.
	diffBank := []fault.Fault{mk(fault.Bank, 2, 0, 0, 0), mk(fault.Bank, 3, 1, 0, 0)}
	if s.Uncorrectable(diffBank) {
		t.Error("bank faults with different bank indices uncorrectable")
	}
	// Same bank index in two dies: every codeword of that bank collides.
	sameBank := []fault.Fault{mk(fault.Bank, 2, 0, 0, 0), mk(fault.Bank, 3, 0, 0, 0)}
	if !s.Uncorrectable(sameBank) {
		t.Error("bank faults at same bank index in two dies correctable (should fail)")
	}
	// Two bit faults in different dies, same codeword: 2 <= 4, fine.
	bits := []fault.Fault{mk(fault.Bit, 2, 0, 10, 5), mk(fault.Bit, 3, 0, 10, 7)}
	if s.Uncorrectable(bits) {
		t.Error("two scattered bit errors uncorrectable under budget 4")
	}
}

func TestSymbol8MetadataDiePairing(t *testing.T) {
	s := NewSymbol8(cfg(), stack.AcrossChannels)
	meta := mk(fault.Bank, 8, 0, 0, 0)
	data := mk(fault.Bank, 2, 0, 0, 0)
	if !s.Uncorrectable([]fault.Fault{meta, data}) {
		t.Error("metadata + data die corruption correctable (should fail)")
	}
	if s.Uncorrectable(one(meta)) {
		t.Error("metadata-die-only fault uncorrectable")
	}
}

func TestBCH6EC7ED(t *testing.T) {
	b := NewBCH6EC7ED(cfg())
	cases := []struct {
		name string
		f    fault.Fault
		want bool
	}{
		{"bit", mk(fault.Bit, 0, 0, 10, 5), false},
		{"word", mk(fault.Word, 0, 0, 10, 128), true}, // 64 bits
		{"column", mk(fault.Column, 0, 0, 0, 5), false},
		{"row", mk(fault.Row, 0, 0, 10, 0), true},
		{"bank", mk(fault.Bank, 0, 0, 0, 0), true},
		{"data-tsv", mk(fault.DataTSV, 0, 0, 0, 7), false}, // 2 bits/line
		{"addr-tsv", mk(fault.AddrTSV, 0, 0, 0, 0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := b.Uncorrectable(one(tc.f)); got != tc.want {
				t.Errorf("Uncorrectable = %v, want %v", got, tc.want)
			}
		})
	}
	a := mk(fault.Bit, 0, 0, 10, 5)
	c := mk(fault.Bit, 0, 0, 10, 6)
	if b.Uncorrectable([]fault.Fault{a, c}) {
		t.Error("two bit faults on one line uncorrectable under 6EC7ED")
	}
	if b.Uncorrectable([]fault.Fault{mk(fault.DataTSV, 0, 0, 0, 7), a}) {
		t.Error("data-TSV + bit (3 bits/line) uncorrectable under 6EC7ED")
	}
	// Three data TSVs in one channel: pairwise 4 <= 6 passes, single 2 <= 6
	// passes; with a 5-bit cluster they exceed: column (1 bit) + word is
	// already singly fatal. Pair: two TSVs + bit = 5 bits, fine.
	if b.Uncorrectable([]fault.Fault{mk(fault.DataTSV, 0, 0, 0, 7), mk(fault.DataTSV, 0, 0, 0, 9)}) {
		t.Error("two data-TSVs (4 bits/line) uncorrectable under 6EC7ED")
	}
}

func TestRAID5(t *testing.T) {
	r := NewRAID5(cfg())
	if r.Name() != "RAID-5" {
		t.Errorf("Name = %q", r.Name())
	}
	// Single-channel faults are correctable.
	for _, class := range []fault.Class{fault.Bank, fault.AddrTSV} {
		if r.Uncorrectable(one(mk(class, 2, 0, 0, 0))) {
			t.Errorf("single %v fault uncorrectable under RAID-5", class)
		}
	}
	// Unlike the symbol code, RAID-5 cannot fix two scattered bit errors in
	// different dies of the same codeword.
	bits := []fault.Fault{mk(fault.Bit, 2, 0, 10, 5), mk(fault.Bit, 3, 0, 10, 7)}
	if !r.Uncorrectable(bits) {
		t.Error("RAID-5 corrected two corrupted units (should fail)")
	}
	two := []fault.Fault{mk(fault.Bank, 2, 0, 0, 0), mk(fault.Bank, 3, 0, 0, 0)}
	if !r.Uncorrectable(two) {
		t.Error("two corrupted channels correctable under RAID-5 (should fail)")
	}
}

func TestParityPredicateAdapters(t *testing.T) {
	for _, dims := range []parity.Dims{parity.OneDP, parity.TwoDP, parity.ThreeDP} {
		p := NewParity(cfg(), dims)
		if p.Name() != dims.String() {
			t.Errorf("Name = %q, want %q", p.Name(), dims.String())
		}
		if p.Uncorrectable(nil) {
			t.Errorf("%v: empty set uncorrectable", dims)
		}
		if p.Uncorrectable(one(mk(fault.Bank, 0, 0, 0, 0))) {
			t.Errorf("%v: single bank fault uncorrectable", dims)
		}
	}
}

func TestNoProtection(t *testing.T) {
	var n NoProtection
	if n.Uncorrectable(nil) {
		t.Error("no faults should be fine even unprotected")
	}
	if !n.Uncorrectable(one(mk(fault.Bit, 0, 0, 0, 0))) {
		t.Error("any fault must fail without protection")
	}
}

func TestDistinctValuesAvailable(t *testing.T) {
	a := fault.ExactPattern(3)
	b := fault.ExactPattern(3)
	if distinctValuesAvailable(a, b, 8) {
		t.Error("same singleton reported distinct")
	}
	c := fault.ExactPattern(4)
	if !distinctValuesAvailable(a, c, 8) {
		t.Error("different singletons not distinct")
	}
	all := fault.AllPattern()
	if !distinctValuesAvailable(a, all, 8) {
		t.Error("singleton vs all not distinct")
	}
	empty := fault.RangePattern(9, 10) // outside [0,8)
	if distinctValuesAvailable(a, empty, 8) {
		t.Error("empty pattern reported distinct")
	}
}

func TestWindowsIntersect(t *testing.T) {
	a := fault.ExactPattern(5)  // window 0 of 64-bit windows
	b := fault.ExactPattern(63) // still window 0
	c := fault.ExactPattern(64) // window 1
	if !windowsIntersect(a, b, 64, 16384) {
		t.Error("bits 5 and 63 should share window 0")
	}
	if windowsIntersect(a, c, 64, 16384) {
		t.Error("bits 5 and 64 should not share a window")
	}
	tsvP := fault.MaskPattern(255, 7) // bit positions ≡ 7 (mod 256)
	if windowsIntersect(tsvP, c, 64, 16384) {
		t.Error("TSV stride (7 mod 256) should miss window [64,128)")
	}
	d := fault.ExactPattern(300) // window [256,320), which contains 263
	if !windowsIntersect(tsvP, d, 64, 16384) {
		t.Error("TSV stride should hit window [256,320) via bit 263")
	}
}

func TestMaxUnitsPerWindow(t *testing.T) {
	word := fault.MaskPattern(^uint32(63), 128)
	if got := maxUnitsPerWindow(word, 8, 512, 16384); got != 8 {
		t.Errorf("word symbols/line = %d, want 8", got)
	}
	tsvP := fault.MaskPattern(255, 7)
	if got := maxUnitsPerWindow(tsvP, 8, 512, 16384); got != 2 {
		t.Errorf("TSV symbols/line = %d, want 2", got)
	}
	if got := maxUnitsPerWindow(fault.AllPattern(), 8, 512, 16384); got != 64 {
		t.Errorf("row symbols/line = %d, want 64", got)
	}
	if got := maxUnitsPerWindow(fault.ExactPattern(1000), 8, 512, 16384); got != 1 {
		t.Errorf("bit symbols/line = %d, want 1", got)
	}
}

func TestTwoDECC(t *testing.T) {
	e := NewTwoDECC(cfg())
	if e.Name() != "2D-ECC" {
		t.Errorf("Name = %q", e.Name())
	}
	// Small-granularity faults are correctable.
	for _, class := range []fault.Class{fault.Bit, fault.Word, fault.Row, fault.Column} {
		if e.Uncorrectable(one(mk(class, 0, 0, 10, 5))) {
			t.Errorf("%v fault uncorrectable under 2D-ECC", class)
		}
	}
	// Large-granularity and TSV faults defeat it (why 3DP wins, §VIII-E).
	for _, class := range []fault.Class{fault.SubArray, fault.Bank, fault.DataTSV, fault.AddrTSV} {
		if !e.Uncorrectable(one(mk(class, 0, 0, 0, 7))) {
			t.Errorf("%v fault correctable under 2D-ECC (should fail)", class)
		}
	}
	// Two bit faults in the same 32x32 tile: fail.
	a := mk(fault.Bit, 0, 0, 10, 5)
	b := mk(fault.Bit, 0, 0, 12, 7) // same row band, same column band
	if !e.Uncorrectable([]fault.Fault{a, b}) {
		t.Error("two faults in one tile correctable (should fail)")
	}
	// Same band rows but distant columns: different tiles, fine.
	c := mk(fault.Bit, 0, 0, 12, 5000)
	if e.Uncorrectable([]fault.Fault{a, c}) {
		t.Error("faults in different tiles uncorrectable")
	}
	// Different banks never share a tile.
	d := mk(fault.Bit, 0, 1, 10, 5)
	if e.Uncorrectable([]fault.Fault{a, d}) {
		t.Error("faults in different banks uncorrectable")
	}
}

func TestSymbol8DeviceGranular(t *testing.T) {
	s := NewSymbol8DeviceGranular(cfg(), stack.AcrossChannels)
	if s.Name() != "Symbol8/Across-Channels/dev-gran" {
		t.Errorf("Name = %q", s.Name())
	}
	// Two permanent bit faults in different dies: exact bookkeeping says
	// correctable (2 symbols), device-granular says failure.
	a := mk(fault.Bit, 2, 0, 10, 5)
	b := mk(fault.Bit, 3, 1, 99, 7)
	exact := NewSymbol8(cfg(), stack.AcrossChannels)
	if exact.Uncorrectable([]fault.Fault{a, b}) {
		t.Error("exact model failed two scattered bits")
	}
	if !s.Uncorrectable([]fault.Fault{a, b}) {
		t.Error("device-granular model corrected two faulty dies (should fail)")
	}
	// Transient faults do not mark devices.
	at, bt := a, b
	at.Persistence = fault.Transient
	bt.Persistence = fault.Transient
	if s.Uncorrectable([]fault.Fault{at, bt}) {
		t.Error("transient faults marked devices")
	}
	// Same die: one suspect unit only.
	c := mk(fault.Bit, 2, 1, 50, 9)
	if s.Uncorrectable([]fault.Fault{a, c}) {
		t.Error("two faults in one die failed under device-granular")
	}
	// Different stacks never share a codeword.
	d := mk(fault.Bit, 3, 0, 10, 5)
	d.Region.Stack = 1
	if s.Uncorrectable([]fault.Fault{a, d}) {
		t.Error("faults in different stacks failed")
	}
}

// TestDeviceGranularIsCoarser checks the containment invariant: everything
// the exact model calls uncorrectable, the device-granular model does too.
func TestDeviceGranularIsCoarser(t *testing.T) {
	c := cfg()
	exact := NewSymbol8(c, stack.AcrossChannels)
	coarse := NewSymbol8DeviceGranular(c, stack.AcrossChannels)
	classes := []fault.Class{fault.Bit, fault.Word, fault.Row, fault.Column, fault.SubArray, fault.Bank, fault.DataTSV, fault.AddrTSV}
	rng := newTestRand()
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(3)
		live := make([]fault.Fault, n)
		for i := range live {
			f := mk(classes[rng.Intn(len(classes))],
				uint32(rng.Intn(9)), uint32(rng.Intn(8)),
				uint32(rng.Intn(65536)), uint32(rng.Intn(16384)))
			if rng.Intn(3) == 0 {
				f.Persistence = fault.Transient
			}
			live[i] = f
		}
		if exact.Uncorrectable(live) && !coarse.Uncorrectable(live) {
			t.Fatalf("trial %d: exact fails but device-granular passes: %+v", trial, live)
		}
	}
}
