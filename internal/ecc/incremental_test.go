package ecc

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// incrementalPredicates enumerates every predicate that implements
// IncrementalPredicate, in both DefaultConfig geometry and all striping
// layouts, so the differential tests cover the whole zoo.
func incrementalPredicates() []IncrementalPredicate {
	c := stack.DefaultConfig()
	return []IncrementalPredicate{
		NewSymbol8(c, stack.SameBank),
		NewSymbol8(c, stack.AcrossBanks),
		NewSymbol8(c, stack.AcrossChannels),
		NewSymbol8DeviceGranular(c, stack.AcrossBanks),
		NewSymbol8DeviceGranular(c, stack.AcrossChannels),
		NewBCH6EC7ED(c),
		NewTwoDECC(c),
		NewParity(c, parity.OneDP),
		NewParity(c, parity.TwoDP),
		NewParity(c, parity.ThreeDP),
		NewRAID5(c),
		NoProtection{},
	}
}

// sampleFaultPool draws realistic faults from the Monte Carlo sampler
// itself, so the differential test exercises exactly the footprint shapes
// the engine produces (plus TSV faults via a nonzero TSV FIT rate).
func sampleFaultPool(rng *rand.Rand, n int) []fault.Fault {
	cfg := stack.DefaultConfig()
	rates := fault.Table1().WithTSV(500)
	s := fault.NewSampler(cfg, rates)
	var pool []fault.Fault
	for len(pool) < n {
		pool = append(pool, s.SampleLifetime(rng, 7*365*24)...)
	}
	return pool[:n]
}

// replayDifferential drives one random add/remove sequence through st,
// comparing against the batch oracle p.Uncorrectable after every step.
func replayDifferential(t *testing.T, p IncrementalPredicate, st IncrementalState,
	pool []fault.Fault, rng *rand.Rand, steps int) {
	t.Helper()
	st.Reset()
	var cur []fault.Fault
	for step := 0; step < steps; step++ {
		var got bool
		if len(cur) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(cur))
			f := cur[i]
			cur = append(cur[:i], cur[i+1:]...)
			got = st.Remove(f)
		} else {
			f := pool[rng.Intn(len(pool))]
			cur = append(cur, f)
			got = st.Add(f)
		}
		want := p.Uncorrectable(cur)
		if got != want {
			t.Fatalf("%s step %d: incremental = %v, batch = %v\nlive: %v",
				p.Name(), step, got, want, cur)
		}
		if st.Uncorrectable() != got {
			t.Fatalf("%s step %d: Uncorrectable() disagrees with Add/Remove return", p.Name(), step)
		}
	}
}

// TestIncrementalMatchesBatchOracle replays random fault sequences through
// every incremental evaluator and requires the verdict to match the batch
// Uncorrectable on the same multiset after every single Add and Remove.
func TestIncrementalMatchesBatchOracle(t *testing.T) {
	rng := newTestRand()
	pool := sampleFaultPool(rng, 300)
	for _, p := range incrementalPredicates() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			st := p.Begin()
			for seq := 0; seq < 25; seq++ {
				replayDifferential(t, p, st, pool, rng, 3+rng.Intn(12))
			}
		})
	}
}

// FuzzIncrementalMatchesBatch fuzzes the add/remove schedule: the fuzz
// input selects which pool faults to add and when to remove, and the
// incremental verdict must track the batch oracle throughout.
func FuzzIncrementalMatchesBatch(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 0x80, 3})
	f.Fuzz(func(t *testing.T, seed int64, schedule []byte) {
		if len(schedule) > 64 {
			schedule = schedule[:64]
		}
		rng := rand.New(rand.NewSource(seed))
		pool := sampleFaultPool(rng, 64)
		for _, p := range incrementalPredicates() {
			st := p.Begin()
			var cur []fault.Fault
			for _, op := range schedule {
				var got bool
				if op >= 0x80 && len(cur) > 0 {
					i := int(op&0x7f) % len(cur)
					f := cur[i]
					cur = append(cur[:i], cur[i+1:]...)
					got = st.Remove(f)
				} else {
					f := pool[int(op)%len(pool)]
					cur = append(cur, f)
					got = st.Add(f)
				}
				if want := p.Uncorrectable(cur); got != want {
					t.Fatalf("%s: incremental = %v, batch = %v on %v", p.Name(), got, want, cur)
				}
			}
		}
	})
}

// TestIncrementalSteadyStateAllocFree verifies the per-trial Add/Remove/
// Reset loop allocates nothing once warm, for every evaluator.
func TestIncrementalSteadyStateAllocFree(t *testing.T) {
	rng := newTestRand()
	pool := sampleFaultPool(rng, 40)
	for _, p := range incrementalPredicates() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			st := p.Begin()
			replay := func() {
				st.Reset()
				for _, f := range pool {
					st.Add(f)
				}
				for i := len(pool) - 1; i >= 0; i-- {
					st.Remove(pool[i])
				}
			}
			replay() // warm scratch buffers
			if allocs := testing.AllocsPerRun(10, replay); allocs != 0 {
				t.Errorf("%s: steady-state loop allocates %.1f per replay, want 0", p.Name(), allocs)
			}
		})
	}
}
