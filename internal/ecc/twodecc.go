package ecc

import (
	"repro/internal/fault"
	"repro/internal/stack"
)

// TwoDECC models the 2D error coding of Kim et al. (MICRO-40), the prior
// parity scheme Citadel's §VIII-E compares against: each BlockDim x
// BlockDim cell tile inside a bank keeps horizontal and vertical parity,
// correcting error patterns confined to a single row segment or a single
// column segment of the tile. It protects against small-granularity faults
// only — whole-row faults are tolerated (one row segment per tile), but
// multi-row faults (sub-array, bank) and channel-wide TSV faults defeat it,
// which is why 3DP claims ~130x better resilience at far less storage.
type TwoDECC struct {
	cfg stack.Config
	// BlockDim is the tile dimension in cells (32 in the original paper).
	BlockDim int
}

// NewTwoDECC builds the 2D-ECC predicate.
func NewTwoDECC(cfg stack.Config) *TwoDECC {
	return &TwoDECC{cfg: cfg, BlockDim: 32}
}

// Name implements Predicate.
func (e *TwoDECC) Name() string { return "2D-ECC" }

// singleFaultFatal reports whether one fault alone defeats the tile code:
// anything touching more than one row AND more than one column of some
// tile (the two parity directions cannot isolate a 2D extent).
func (e *TwoDECC) singleFaultFatal(f fault.Fault) bool {
	switch f.Class {
	case fault.Bit, fault.Word, fault.Row:
		// Confined to one row segment per tile: correctable by vertical
		// parity.
		return false
	case fault.Column:
		// One bit-column across many rows: one column segment per tile,
		// correctable by horizontal parity.
		return false
	case fault.DataTSV:
		// Two bit positions per line across all rows: two column segments
		// in some tiles — beyond a single-direction pattern.
		return true
	case fault.AddrTSV, fault.SubArray, fault.Bank:
		// Many rows and many columns at once.
		return true
	default:
		return true
	}
}

// Uncorrectable implements Predicate. Pairs fail when they can hit the
// same tile: same (die, bank), rows within the same BlockDim-row band, and
// columns within the same BlockDim-bit band.
func (e *TwoDECC) Uncorrectable(live []fault.Fault) bool {
	for _, f := range live {
		if e.singleFaultFatal(f) {
			return true
		}
	}
	rowBits := e.cfg.RowBytes * 8
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i], live[j]
			if a.Region.Stack != b.Region.Stack {
				continue
			}
			if !a.Region.Die.Intersects(b.Region.Die) ||
				!a.Region.Bank.Intersects(b.Region.Bank) {
				continue
			}
			// Same row band?
			sameRowBand := false
			for lo := 0; lo < e.cfg.RowsPerBank; lo += e.BlockDim {
				band := fault.RangePattern(uint32(lo), uint32(lo+e.BlockDim))
				if a.Region.Row.Intersects(band) && b.Region.Row.Intersects(band) {
					sameRowBand = true
					break
				}
			}
			if !sameRowBand {
				continue
			}
			if windowsIntersect(a.Region.Col, b.Region.Col, e.BlockDim, rowBits) {
				return true
			}
		}
	}
	return false
}
