package ecc

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// codes extracts the reason codes from a chain.
func codes(rs []Reason) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Code
	}
	return out
}

func hasCode(rs []Reason, code string) bool {
	for _, r := range rs {
		if r.Code == code {
			return true
		}
	}
	return false
}

func TestExplainParityCollision(t *testing.T) {
	p := NewParity(cfg(), parity.ThreeDP)
	// Two whole-bank faults in the same die defeat 3DP: every cell of each
	// bank is blocked in dim2 (same die) by the other bank, in dim1/dim3 by
	// its own sibling cells.
	live := []fault.Fault{
		mk(fault.Bank, 0, 0, 0, 0),
		mk(fault.Bank, 0, 1, 0, 0),
	}
	if !p.Uncorrectable(live) {
		t.Fatal("two same-die bank faults should defeat 3DP")
	}
	rs := Explain(p, live)
	if len(rs) == 0 {
		t.Fatal("empty reason chain")
	}
	for _, dim := range []string{"parity-dim1-collision", "parity-dim2-collision", "parity-dim3-collision"} {
		if !hasCode(rs, dim) {
			t.Errorf("reason chain missing %s: %v", dim, codes(rs))
		}
	}
	// Blame must reference both faults somewhere in the details.
	all := ""
	for _, r := range rs {
		all += r.Detail + "\n"
	}
	if !strings.Contains(all, "fault #0") || !strings.Contains(all, "fault #1") {
		t.Errorf("details do not name both faults:\n%s", all)
	}
}

func TestExplainParityCorrectableIsEmpty(t *testing.T) {
	p := NewParity(cfg(), parity.ThreeDP)
	live := one(mk(fault.Bank, 0, 0, 0, 0))
	if p.Uncorrectable(live) {
		t.Fatal("single bank fault should be 3DP-correctable")
	}
	if rs := p.Explain(live); len(rs) != 0 {
		t.Fatalf("correctable set produced reasons: %v", codes(rs))
	}
}

func TestExplainSymbolBudget(t *testing.T) {
	s := NewSymbol8(cfg(), stack.SameBank)
	live := one(mk(fault.Row, 0, 0, 10, 0))
	if !s.Uncorrectable(live) {
		t.Fatal("row fault should defeat the Same-Bank symbol code")
	}
	rs := Explain(s, live)
	if !hasCode(rs, ReasonSymbolBudget) {
		t.Fatalf("want %s, got %v", ReasonSymbolBudget, codes(rs))
	}
}

func TestExplainSymbolPair(t *testing.T) {
	s := NewSymbol8(cfg(), stack.SameBank)
	// Two word faults on the same line: 8+8 symbols > 4 budget.
	live := []fault.Fault{
		mk(fault.Bit, 0, 0, 10, 5),
		mk(fault.Word, 0, 0, 10, 128),
	}
	rs := s.Explain(live)
	if !hasCode(rs, ReasonSymbolPair) && !hasCode(rs, ReasonSymbolBudget) {
		t.Fatalf("want a symbol reason, got %v", codes(rs))
	}
}

func TestExplainBCH(t *testing.T) {
	b := NewBCH6EC7ED(cfg())
	live := one(mk(fault.Word, 0, 0, 10, 128))
	if !b.Uncorrectable(live) {
		t.Fatal("word fault (64 bits) should defeat BCH-6EC7ED")
	}
	if rs := Explain(b, live); !hasCode(rs, ReasonBCHBudget) {
		t.Fatalf("want %s, got %v", ReasonBCHBudget, codes(rs))
	}
}

func TestExplainNoProtection(t *testing.T) {
	if rs := Explain(NoProtection{}, one(mk(fault.Bit, 0, 0, 0, 0))); !hasCode(rs, ReasonNoProtection) {
		t.Fatalf("want %s, got %v", ReasonNoProtection, codes(rs))
	}
}

func TestExplainRAID5RewritesCodes(t *testing.T) {
	r := NewRAID5(cfg())
	// Two die-spanning faults defeat single-parity RAID-5.
	live := []fault.Fault{
		mk(fault.Bank, 0, 0, 0, 0),
		mk(fault.Bank, 1, 0, 0, 0),
	}
	if !r.Uncorrectable(live) {
		t.Fatal("two-die faults should defeat RAID-5")
	}
	rs := Explain(r, live)
	for _, reason := range rs {
		if strings.HasPrefix(reason.Code, "symbol-") {
			t.Fatalf("RAID-5 reason kept symbol code: %v", codes(rs))
		}
	}
	if len(rs) == 0 {
		t.Fatal("empty RAID-5 reason chain")
	}
}

// TestExplainFallback pins the generic path for predicates without an
// Explainer (2D-ECC).
func TestExplainFallback(t *testing.T) {
	e := NewTwoDECC(cfg())
	live := one(mk(fault.Bank, 0, 0, 0, 0))
	if !e.Uncorrectable(live) {
		t.Skip("bank fault unexpectedly correctable under 2D-ECC")
	}
	rs := Explain(e, live)
	if len(rs) != 1 || rs[0].Code != ReasonUncorrectable {
		t.Fatalf("want generic fallback, got %v", codes(rs))
	}
}
