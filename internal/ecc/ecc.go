// Package ecc provides the correction-capability predicates that the Monte
// Carlo engine evaluates for each protection scheme Citadel compares
// against: the strong 8-bit symbol-based (ChipKill-like) code under the
// three data-striping layouts, a 6EC7ED BCH code, and RAID-5 style parity.
// (The parity-based 1DP/2DP/3DP predicates live in internal/parity; this
// package adapts everything to a single Predicate interface.)
//
// Predicates answer one question: given the set of live faults, is there at
// least one codeword whose errors exceed the scheme's correction
// capability? They reason symbolically over fault footprints using the
// pattern algebra of internal/fault, with one crucial distinction: TSV
// faults corrupt *transfers*, not storage, so their damage per codeword is
// fixed (burst-length bits at fixed line positions) regardless of where the
// codeword's bits are stored — which is exactly why striping changes their
// impact (paper §V-B).
package ecc

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/parity"
	"repro/internal/stack"
)

// Predicate decides whether a live fault set defeats a protection scheme.
type Predicate interface {
	// Name identifies the scheme in reports.
	Name() string
	// Uncorrectable reports whether the live faults cause data loss.
	//
	// Implementations must not retain the live slice (or any view of its
	// backing array) past the call: the Monte Carlo engine reuses one
	// scratch buffer for every evaluation of a trial, so a retained slice
	// is silently overwritten by later faults and trials. Reading it
	// during the call is free — no defensive copy is required. The engine
	// tests enforce this contract (faultsim TestPredicatesDoNotRetainLiveSlice).
	Uncorrectable(live []fault.Fault) bool
}

// windowsIntersect reports whether two column patterns both touch some
// aligned window of windowBits within a row of totalBits.
func windowsIntersect(a, b fault.Pattern, windowBits, totalBits int) bool {
	for lo := 0; lo < totalBits; lo += windowBits {
		w := fault.RangePattern(uint32(lo), uint32(lo+windowBits))
		if a.Intersects(w) && b.Intersects(w) {
			return true
		}
	}
	return false
}

// maxUnitsPerWindow returns the maximum, over aligned outer windows of
// outerBits, of the number of aligned inner units (unitBits wide) inside
// that window touched by pattern p. E.g. with outer = a 512-bit line and
// unit = 8-bit symbols, it returns the worst-case corrupted symbols per
// line.
func maxUnitsPerWindow(p fault.Pattern, unitBits, outerBits, totalBits int) int {
	maxCount := 0
	for lo := 0; lo < totalBits; lo += outerBits {
		outer := fault.RangePattern(uint32(lo), uint32(lo+outerBits))
		if !p.Intersects(outer) {
			continue
		}
		count := 0
		for u := lo; u < lo+outerBits; u += unitBits {
			if p.Intersects(fault.RangePattern(uint32(u), uint32(u+unitBits))) {
				count++
			}
		}
		if count > maxCount {
			maxCount = count
		}
	}
	return maxCount
}

// storageSymbols returns the worst-case corrupted byte-symbols a storage
// fault of the given class contributes within one aligned window of
// windowBits (closed form; footprint shapes are class-determined, so no
// pattern enumeration is needed on the Monte Carlo hot path).
func storageSymbols(class fault.Class, windowBits int) int {
	capSym := windowBits / 8
	switch class {
	case fault.Bit, fault.Column:
		return 1
	case fault.Word:
		if capSym < 8 {
			return capSym
		}
		return 8
	default: // Row, SubArray, Bank: the whole window
		return capSym
	}
}

// distinctValuesAvailable reports whether patterns a and b admit two
// different values within [0, n) — i.e. a codeword can see them in two
// different units.
func distinctValuesAvailable(a, b fault.Pattern, n int) bool {
	ca, cb := a.CountBelow(uint32(n)), b.CountBelow(uint32(n))
	if ca == 0 || cb == 0 {
		return false
	}
	if ca > 1 || cb > 1 {
		return true
	}
	for v := uint32(0); v < uint32(n); v++ {
		if a.Contains(v) {
			return !b.Contains(v)
		}
	}
	return false
}

// Symbol8 is the paper's baseline: a strong 8-bit-symbol code (similar to
// ChipKill) with 64 check bits per 512-bit line — an RS(72,64)-style code —
// applied under one of the three striping layouts.
//
// Capability model (per codeword = one cache line + its 8 check symbols):
//
//   - up to SymbolBudget (4) corrupted symbols at unknown positions are
//     always correctable;
//   - under the striped layouts, corruption confined to ONE striping unit
//     is correctable regardless of size (the ChipKill property: the failed
//     unit is identified and erased — 8 erasures fit the 8 check symbols);
//   - corruption spanning two or more units with more than SymbolBudget
//     total symbols is uncorrectable (erasing a whole unit leaves no margin
//     for additional errors: 2*errors + erasures exceeds 8).
//
// TSV faults are evaluated in the transfer domain: a faulty data TSV flips
// BurstLength (2) fixed bit positions of every transferred line of its
// channel; a faulty address TSV makes half the channel's rows unreachable
// (the whole line for layouts that gather the line through that channel's
// address TSVs, one unit for Across-Channels).
type Symbol8 struct {
	cfg      stack.Config
	striping stack.Striping

	// SymbolBudget is the number of corrupted symbols per codeword
	// correctable at unknown positions (4 for RS(72,64)).
	SymbolBudget int

	// DeviceGranular switches the striped layouts to FaultSim-style
	// device-granularity bookkeeping: once a unit (die/bank) has any
	// permanent fault, the decoder must treat that unit as suspect in
	// every codeword, so a second permanently-faulty unit in the same
	// codeword domain is uncorrectable regardless of fine co-location.
	// This is coarser than the true RS(72,64) capability (which needs the
	// two faults to share a codeword) but matches how FaultSim-class
	// tools — and hence the paper's Figures 14/18 — book ChipKill
	// failures.
	DeviceGranular bool
}

// NewSymbol8 builds the symbol-code predicate for a striping layout with
// exact codeword-level bookkeeping.
func NewSymbol8(cfg stack.Config, s stack.Striping) *Symbol8 {
	return &Symbol8{cfg: cfg, striping: s, SymbolBudget: 4}
}

// NewSymbol8DeviceGranular builds the predicate with FaultSim-style
// device-granularity bookkeeping (see Symbol8.DeviceGranular).
func NewSymbol8DeviceGranular(cfg stack.Config, s stack.Striping) *Symbol8 {
	p := NewSymbol8(cfg, s)
	p.DeviceGranular = true
	return p
}

// Name implements Predicate.
func (s *Symbol8) Name() string {
	name := "Symbol8/" + s.striping.String()
	if s.DeviceGranular {
		name += "/dev-gran"
	}
	return name
}

// Striping returns the layout the predicate models.
func (s *Symbol8) Striping() stack.Striping { return s.striping }

func (s *Symbol8) rowBits() int  { return s.cfg.RowBytes * 8 }
func (s *Symbol8) lineBits() int { return s.cfg.LineBytes * 8 }
func (s *Symbol8) metaDie() int  { return s.cfg.DataDies }

// isMetaDie reports whether the footprint lies in the metadata die.
func (s *Symbol8) isMetaDie(r fault.Region) bool {
	return r.Die.CountBelow(uint32(s.cfg.DataDies)) == 0 &&
		r.Die.Contains(uint32(s.metaDie()))
}

// damage characterizes a fault's worst-case effect on one codeword.
type damage struct {
	units   int  // distinct striping units touched within one codeword
	symbols int  // worst-case corrupted symbols in one codeword
	meta    bool // corruption lives in the metadata/ECC unit
	tsvData bool // data-TSV transfer fault (co-locates with every line)
	atsv    bool // address-TSV fault
}

// assess computes the damage of one fault under the configured striping.
func (s *Symbol8) assess(f fault.Fault) damage {
	meta := s.isMetaDie(f.Region)
	lineSymbols := s.cfg.LineBytes // 64 symbols for a 64B line
	switch s.striping {
	case stack.SameBank:
		switch f.Class {
		case fault.DataTSV:
			// BurstLength fixed bit positions per line: that many symbols.
			return damage{units: 1, symbols: s.cfg.BurstLength, meta: meta, tsvData: true}
		case fault.AddrTSV:
			if meta {
				// Half the metadata rows unreachable: the ECC symbols of
				// affected lines are lost (8 of 72) — erasable? No: the
				// Same-Bank layout has no cross-unit erasure, but losing
				// only check symbols keeps the data intact.
				return damage{units: 1, symbols: s.cfg.LineBytes * 8 / 64, meta: true, atsv: true}
			}
			return damage{units: 1, symbols: lineSymbols, atsv: true}
		default:
			if meta {
				// ECC slice of a line is 64 bits: at most 8 symbols.
				return damage{units: 1, symbols: storageSymbols(f.Class, 64), meta: true}
			}
			return damage{units: 1, symbols: storageSymbols(f.Class, s.lineBits())}
		}
	case stack.AcrossBanks:
		units := s.cfg.BanksPerDie
		sliceBits := s.lineBits() / units
		switch f.Class {
		case fault.DataTSV:
			if meta {
				return damage{units: 1, symbols: s.cfg.BurstLength, meta: true, tsvData: true}
			}
			// BurstLength corrupted bits land in BurstLength different
			// 64-bit slices (positions t and t+DataTSVs are 4 slices apart).
			return damage{units: s.cfg.BurstLength, symbols: s.cfg.BurstLength, tsvData: true}
		case fault.AddrTSV:
			if meta {
				return damage{units: 1, symbols: 8, meta: true, atsv: true}
			}
			// All banks share the address TSVs: the whole line vanishes.
			return damage{units: units, symbols: lineSymbols, atsv: true}
		default:
			if meta {
				return damage{units: 1, symbols: storageSymbols(f.Class, sliceBits), meta: true}
			}
			// Storage faults are confined to single banks in our fault
			// model; damage within that bank's slice.
			nBanks := f.Region.Bank.CountBelow(uint32(s.cfg.BanksPerDie))
			sym := storageSymbols(f.Class, sliceBits)
			return damage{units: nBanks, symbols: sym * nBanks}
		}
	case stack.AcrossChannels:
		sliceBits := s.lineBits() / s.cfg.Channels()
		switch f.Class {
		case fault.DataTSV:
			// The faulty TSV corrupts only this channel's slice.
			sym := s.cfg.BurstLength
			if sym > sliceBits/8 {
				sym = sliceBits / 8
			}
			return damage{units: 1, symbols: sym, meta: meta, tsvData: true}
		case fault.AddrTSV:
			// One channel's slice unreachable: a single-unit erasure.
			return damage{units: 1, symbols: sliceBits / 8, meta: meta, atsv: true}
		default:
			return damage{units: 1, symbols: storageSymbols(f.Class, sliceBits), meta: meta}
		}
	default:
		return damage{units: 99, symbols: 99}
	}
}

// Uncorrectable implements Predicate.
func (s *Symbol8) Uncorrectable(live []fault.Fault) bool {
	ds := make([]damage, len(live))
	for i, f := range live {
		d := s.assess(f)
		ds[i] = d
		// Single-fault rule: corruption confined to one unit is always
		// erasable under the striped layouts; under Same-Bank there is no
		// cross-unit redundancy for data (the budget decides), except that
		// metadata-only damage never loses data by itself.
		switch s.striping {
		case stack.SameBank:
			if !d.meta && d.symbols > s.SymbolBudget {
				return true
			}
		default:
			if d.units >= 2 && d.symbols > s.SymbolBudget {
				return true
			}
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if s.pairFails(live[i], ds[i], live[j], ds[j]) {
				return true
			}
			if s.DeviceGranular && s.striping != stack.SameBank &&
				s.deviceGranularPairFails(live[i], live[j]) {
				return true
			}
		}
	}
	return false
}

// deviceGranularPairFails implements the coarse bookkeeping: two
// permanently faulty units in the same codeword domain (same stack for
// Across-Channels; same die for Across-Banks) are booked as failure.
func (s *Symbol8) deviceGranularPairFails(fa, fb fault.Fault) bool {
	if fa.Persistence != fault.Permanent || fb.Persistence != fault.Permanent {
		return false
	}
	if fa.Region.Stack != fb.Region.Stack {
		return false
	}
	switch s.striping {
	case stack.AcrossChannels:
		dies := s.cfg.DataDies + s.cfg.ECCDies
		return distinctValuesAvailable(fa.Region.Die, fb.Region.Die, dies)
	case stack.AcrossBanks:
		return fa.Region.Die.Intersects(fb.Region.Die) &&
			distinctValuesAvailable(fa.Region.Bank, fb.Region.Bank, s.cfg.BanksPerDie)
	default:
		return false
	}
}

// pairFails reports whether two individually-correctable faults can defeat
// the code on a common codeword.
func (s *Symbol8) pairFails(fa fault.Fault, da damage, fb fault.Fault, db damage) bool {
	if fa.Region.Stack != fb.Region.Stack {
		return false
	}
	if da.symbols+db.symbols <= s.SymbolBudget {
		return false
	}
	switch s.striping {
	case stack.SameBank:
		return s.sameLinePossible(fa, da, fb, db)
	case stack.AcrossBanks:
		return s.acrossBanksPairHits(fa, da, fb, db)
	case stack.AcrossChannels:
		return s.acrossChannelsPairHits(fa, da, fb, db)
	}
	return true
}

// sameLinePossible: can the two faults corrupt the same Same-Bank codeword
// (a line plus its metadata ECC slice)?
func (s *Symbol8) sameLinePossible(fa fault.Fault, da damage, fb fault.Fault, db damage) bool {
	a, b := fa.Region, fb.Region
	lineB := s.lineBits()
	// A data-TSV transfer fault hits every line of its channel: co-located
	// with any fault in the same die.
	if da.tsvData || db.tsvData {
		return a.Die.Intersects(b.Die)
	}
	switch {
	case !da.meta && !db.meta:
		return a.Die.Intersects(b.Die) && a.Bank.Intersects(b.Bank) &&
			a.Row.Intersects(b.Row) &&
			windowsIntersect(a.Col, b.Col, lineB, s.rowBits())
	case da.meta && db.meta:
		return a.Bank.Intersects(b.Bank) && a.Row.Intersects(b.Row) &&
			windowsIntersect(a.Col, b.Col, 64, s.rowBits())
	default:
		meta, data := fa, fb
		if db.meta {
			meta, data = fb, fa
		}
		if !meta.Region.Bank.Intersects(data.Region.Bank) || !meta.Region.Row.Intersects(data.Region.Row) {
			return false
		}
		if meta.Class == fault.AddrTSV {
			// Half the metadata rows lost: co-located with any data fault
			// whose row pattern meets the lost half.
			return true
		}
		// ECC of line l of die D lives at metadata columns
		// [D*perDie + l*eccSlice, +eccSlice) of the co-located (bank, row).
		perDie := s.rowBits() / s.cfg.DataDies
		lines := s.cfg.LinesPerRow()
		eccSlice := perDie / lines
		for d := 0; d < s.cfg.DataDies; d++ {
			if !data.Region.Die.Contains(uint32(d)) {
				continue
			}
			for l := 0; l < lines; l++ {
				dataWin := fault.RangePattern(uint32(l*lineB), uint32((l+1)*lineB))
				if !data.Region.Col.Intersects(dataWin) {
					continue
				}
				lo := d*perDie + l*eccSlice
				if meta.Region.Col.Intersects(fault.RangePattern(uint32(lo), uint32(lo+eccSlice))) {
					return true
				}
			}
		}
		return false
	}
}

// acrossBanksPairHits: can the two faults corrupt two different units of a
// common Across-Banks codeword?
func (s *Symbol8) acrossBanksPairHits(fa fault.Fault, da damage, fb fault.Fault, db damage) bool {
	a, b := fa.Region, fb.Region
	sliceBits := s.lineBits() / s.cfg.BanksPerDie
	// TSV transfer faults co-locate with every line of the channel and
	// occupy their own units.
	if da.tsvData || db.tsvData {
		return a.Die.Intersects(b.Die)
	}
	switch {
	case !da.meta && !db.meta:
		return a.Die.Intersects(b.Die) &&
			distinctValuesAvailable(a.Bank, b.Bank, s.cfg.BanksPerDie) &&
			a.Row.Intersects(b.Row) &&
			windowsIntersect(a.Col, b.Col, sliceBits, s.rowBits())
	case da.meta && db.meta:
		// Both corrupt only the ECC unit.
		return false
	default:
		meta, data := fa, fb
		if db.meta {
			meta, data = fb, fa
		}
		if meta.Class == fault.AddrTSV {
			return true // half the ECC rows lost; pairs with any data fault
		}
		// ECC for lines of data die D is held in metadata bank D.
		metaBankMeetsDie := false
		for d := 0; d < s.cfg.DataDies; d++ {
			if data.Region.Die.Contains(uint32(d)) && meta.Region.Bank.Contains(uint32(d)) {
				metaBankMeetsDie = true
				break
			}
		}
		return metaBankMeetsDie && meta.Region.Row.Intersects(data.Region.Row) &&
			windowsIntersect(meta.Region.Col, data.Region.Col, sliceBits, s.rowBits())
	}
}

// acrossChannelsPairHits: can the two faults corrupt two different dies of
// a common Across-Channels codeword?
func (s *Symbol8) acrossChannelsPairHits(fa fault.Fault, da damage, fb fault.Fault, db damage) bool {
	a, b := fa.Region, fb.Region
	dies := s.cfg.DataDies + s.cfg.ECCDies
	if !distinctValuesAvailable(a.Die, b.Die, dies) {
		return false
	}
	sliceBits := s.lineBits() / s.cfg.Channels()
	// Channel-wide transfer faults co-locate with every codeword touching
	// their channel.
	if da.tsvData || da.atsv || db.tsvData || db.atsv {
		return true
	}
	return a.Bank.Intersects(b.Bank) && a.Row.Intersects(b.Row) &&
		windowsIntersect(a.Col, b.Col, sliceBits, s.rowBits())
}

// BCH6EC7ED models a 6-bit-correct, 7-bit-detect BCH code applied per cache
// line in the Same-Bank layout (paper §VIII-F / Figure 19).
type BCH6EC7ED struct {
	cfg stack.Config
	// BitBudget is the number of correctable bit errors per line (6).
	BitBudget int
}

// NewBCH6EC7ED builds the BCH predicate.
func NewBCH6EC7ED(cfg stack.Config) *BCH6EC7ED {
	return &BCH6EC7ED{cfg: cfg, BitBudget: 6}
}

// Name implements Predicate.
func (b *BCH6EC7ED) Name() string { return "BCH-6EC7ED" }

// bitsPerLine is the worst-case corrupted bits per line for a fault
// (closed form by class).
func (b *BCH6EC7ED) bitsPerLine(f fault.Fault) int {
	switch f.Class {
	case fault.DataTSV:
		return b.cfg.BurstLength
	case fault.AddrTSV:
		return b.cfg.LineBytes * 8
	case fault.Bit, fault.Column:
		return 1
	case fault.Word:
		return 64
	default: // Row, SubArray, Bank
		return b.cfg.LineBytes * 8
	}
}

// Uncorrectable implements Predicate.
func (b *BCH6EC7ED) Uncorrectable(live []fault.Fault) bool {
	bits := make([]int, len(live))
	for i, f := range live {
		bits[i] = b.bitsPerLine(f)
		if bits[i] > b.BitBudget {
			return true
		}
	}
	lineB := b.cfg.LineBytes * 8
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if bits[i]+bits[j] <= b.BitBudget {
				continue
			}
			ai, aj := live[i].Region, live[j].Region
			colocated := false
			if live[i].Class == fault.DataTSV || live[j].Class == fault.DataTSV {
				colocated = ai.Stack == aj.Stack && ai.Die.Intersects(aj.Die)
			} else {
				colocated = ai.Stack == aj.Stack &&
					ai.Die.Intersects(aj.Die) && ai.Bank.Intersects(aj.Bank) &&
					ai.Row.Intersects(aj.Row) &&
					windowsIntersect(ai.Col, aj.Col, lineB, b.cfg.RowBytes*8)
			}
			if colocated {
				return true
			}
		}
	}
	return false
}

// ParityPredicate adapts a parity.Analyzer (1DP/2DP/3DP) to Predicate. TSV
// faults keep their storage-domain footprints: parity reconstruction must
// itself read through the faulty TSVs, so a channel-wide TSV fault defeats
// the parity dimensions exactly as its footprint implies.
type ParityPredicate struct {
	an *parity.Analyzer
}

// NewParity builds the kDP predicate.
func NewParity(cfg stack.Config, dims parity.Dims) *ParityPredicate {
	return &ParityPredicate{an: parity.NewAnalyzer(cfg, dims)}
}

// Name implements Predicate.
func (p *ParityPredicate) Name() string { return p.an.Dims().String() }

// Uncorrectable implements Predicate.
func (p *ParityPredicate) Uncorrectable(live []fault.Fault) bool {
	regions := make([]fault.Region, len(live))
	for i, f := range live {
		regions[i] = f.Region
	}
	return p.an.Uncorrectable(regions)
}

// RAID5 models RAID-5-style single parity striped across the channels of a
// stack at line granularity: any faults confined to one die (channel) per
// parity group are correctable; two corrupted dies in the same group lose
// data. This matches the Across-Channels symbol code's unit-level
// capability with no scattered-error budget (paper §VIII-F).
type RAID5 struct {
	inner *Symbol8
}

// NewRAID5 builds the RAID-5 predicate.
func NewRAID5(cfg stack.Config) *RAID5 {
	s := NewSymbol8(cfg, stack.AcrossChannels)
	s.SymbolBudget = 0 // pure single-erasure parity: no error budget
	return &RAID5{inner: s}
}

// Name implements Predicate.
func (r *RAID5) Name() string { return "RAID-5" }

// Uncorrectable implements Predicate.
func (r *RAID5) Uncorrectable(live []fault.Fault) bool {
	return r.inner.Uncorrectable(live)
}

// NoProtection fails on any fault at all — the unprotected baseline.
type NoProtection struct{}

// Name implements Predicate.
func (NoProtection) Name() string { return "None" }

// Uncorrectable implements Predicate.
func (NoProtection) Uncorrectable(live []fault.Fault) bool { return len(live) > 0 }

// String renders any predicate by name for logs.
func String(p Predicate) string { return fmt.Sprintf("scheme(%s)", p.Name()) }
