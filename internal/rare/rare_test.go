package rare

import (
	"context"
	"math"
	"testing"

	"strings"

	"repro/internal/analytic"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/parity"
	"repro/internal/sparing"
	"repro/internal/stack"
)

func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy Monte Carlo test skipped in -short mode")
	}
}

// scaledRates boosts every class rate so a modest trial count produces a
// measurable failure signal (mirrors faultsim's testOptions).
func scaledRates(scale, tsvFIT float64) fault.Rates {
	r := fault.Table1()
	r.BitTransient *= scale
	r.BitPermanent *= scale
	r.WordTransient *= scale
	r.WordPermanent *= scale
	r.ColumnTransient *= scale
	r.ColumnPermanent *= scale
	r.RowTransient *= scale
	r.RowPermanent *= scale
	r.BankTransient *= scale
	r.BankPermanent *= scale
	r.TSVPerDie = tsvFIT
	return r
}

// tailRates is the ~1e-6-tail configuration: Table I scaled down 20x, so
// the 3DP colliding-pair probability lands around 6e-6 over 7 years —
// resolvable by the rare-event engine, hopeless for naive MC at any
// reasonable budget.
func tailRates() fault.Rates { return scaledRates(0.05, 0) }

func threeDP(cfg stack.Config) faultsim.Policy {
	return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
}

func oneDP(cfg stack.Config) faultsim.Policy {
	return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.OneDP)}
}

// TestBiasFactorOneMatchesUnitWeights pins the degenerate case: with no
// bias the likelihood ratio of every trial is exactly one, so the
// weighted tallies must equal the integer tallies bit for bit.
func TestBiasFactorOneMatchesUnitWeights(t *testing.T) {
	cfg := stack.DefaultConfig()
	opt := Options{
		Options: faultsim.Options{
			Config: cfg, Rates: scaledRates(30, 0),
			Trials: 4000, Seed: 7, Workers: 2,
		},
		BiasFactor: 1,
	}
	res := RunIS(opt, oneDP(cfg))
	if res.Failures == 0 {
		t.Fatal("test signal too weak: no failures at scale 30")
	}
	if !res.Weighted {
		t.Error("RunIS result not marked Weighted")
	}
	if res.FailWeight != float64(res.Failures) {
		t.Errorf("FailWeight = %v, want exactly %d", res.FailWeight, res.Failures)
	}
	if res.FailWeightSq != float64(res.Failures) {
		t.Errorf("FailWeightSq = %v, want exactly %d", res.FailWeightSq, res.Failures)
	}
	for i := range res.FailWeightByYear {
		if res.FailWeightByYear[i] != float64(res.FailuresByYear[i]) {
			t.Errorf("FailWeightByYear[%d] = %v, want exactly %d",
				i, res.FailWeightByYear[i], res.FailuresByYear[i])
		}
	}
}

// TestISDeterministic pins the float determinism contract: equal (seed,
// workers) give bit-identical weighted tallies, the property checkpointed
// campaigns depend on.
func TestISDeterministic(t *testing.T) {
	cfg := stack.DefaultConfig()
	opt := Options{
		Options: faultsim.Options{
			Config: cfg, Rates: scaledRates(20, 0),
			Trials: 3000, Seed: 11, Workers: 3,
		},
		BiasFactor: 4,
	}
	a := RunIS(opt, oneDP(cfg))
	b := RunIS(opt, oneDP(cfg))
	if a.FailWeight != b.FailWeight || a.FailWeightSq != b.FailWeightSq {
		t.Errorf("same seed produced FailWeight %v/%v and FailWeightSq %v/%v",
			a.FailWeight, b.FailWeight, a.FailWeightSq, b.FailWeightSq)
	}
	if a.Failures != b.Failures || a.Trials != b.Trials {
		t.Errorf("same seed produced %d/%d failures over %d/%d trials",
			a.Failures, b.Failures, a.Trials, b.Trials)
	}
}

// TestISMatchesNaiveOnInflatedConfig cross-validates the importance
// sampler against the batch oracle where naive MC is tractable: the two
// estimates must agree within their combined 95% intervals.
func TestISMatchesNaiveOnInflatedConfig(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()
	base := faultsim.Options{
		Config: cfg, Rates: scaledRates(10, 0),
		Trials: 30000, Seed: 5,
	}
	naive := faultsim.Run(base, oneDP(cfg))
	is := RunIS(Options{Options: base, BiasFactor: 2}, oneDP(cfg))
	if naive.Failures < 50 {
		t.Fatalf("test signal too weak: naive saw only %d failures", naive.Failures)
	}
	diff := math.Abs(naive.Probability() - is.Probability())
	tol := 3 * (naive.CI95() + is.CI95())
	if diff > tol {
		t.Errorf("IS %.4g vs naive %.4g: |diff| %.4g > tol %.4g (IS: %s)",
			is.Probability(), naive.Probability(), diff, tol, is)
	}
	if ess := is.ESS(); ess <= 0 {
		t.Errorf("ESS = %v, want > 0 with %d failures", ess, is.Failures)
	}
}

// TestISMatchesAnalytic3DP checks the second correctness pin: the
// importance-sampled 3DP estimate against the closed-form colliding-pair
// approximation.
func TestISMatchesAnalytic3DP(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()
	rates := fault.Table1()
	opt := Options{
		Options: faultsim.Options{
			Config: cfg, Rates: rates,
			Trials: 60000, Seed: 3,
		},
		BiasFactor: 4,
	}
	res := RunIS(opt, threeDP(cfg))
	want := analytic.PFail3DPNoDDS(cfg, rates, fault.LifetimeHours)
	if res.Failures < 20 {
		t.Fatalf("IS signal too weak: %d failures", res.Failures)
	}
	got := res.Probability()
	// The closed form is an approximation (pairs only, collision
	// geometry averaged), so allow 3 sigma plus 25% model error.
	tol := 3*res.CI95() + 0.25*want
	if math.Abs(got-want) > tol {
		t.Errorf("IS P(fail) = %.4g, analytic %.4g, |diff| > tol %.4g (%s)",
			got, want, tol, res)
	}
}

// TestSplitCrossValidatesNaive checks the splitting estimator against
// the batch oracle on an inflated config.
func TestSplitCrossValidatesNaive(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()
	base := faultsim.Options{
		Config: cfg, Rates: scaledRates(10, 0),
		Trials: 30000, Seed: 9,
	}
	naive := faultsim.Run(base, oneDP(cfg))
	split := RunSplit(SplitOptions{Options: base}, oneDP(cfg))
	if naive.Failures < 50 {
		t.Fatalf("test signal too weak: naive saw only %d failures", naive.Failures)
	}
	if split.Partial {
		t.Fatalf("split unexpectedly partial: %v", split.Err)
	}
	if len(split.StageProbs) != 3 {
		t.Fatalf("default levels [1 2] should give 3 stages, got %v", split.StageProbs)
	}
	diff := math.Abs(naive.Probability() - split.Probability)
	tol := 3 * (naive.CI95() + split.CI95())
	if diff > tol {
		t.Errorf("split %.4g vs naive %.4g: |diff| %.4g > tol %.4g (stages %v)",
			split.Probability, naive.Probability(), diff, tol, split.StageProbs)
	}
}

// TestSplitCrossValidatesISOnTail is the tail-config cross-check the
// tentpole asks for: two estimators sharing no bias machinery agreeing
// on a ~1e-6 probability.
func TestSplitCrossValidatesISOnTail(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()
	base := faultsim.Options{Config: cfg, Rates: tailRates(), Trials: 150000, Seed: 17}
	is := RunIS(Options{Options: base, BiasFactor: 16}, threeDP(cfg))
	split := RunSplit(SplitOptions{Options: base}, threeDP(cfg))
	if is.Failures < 30 {
		t.Fatalf("IS signal too weak on the tail: %d failures", is.Failures)
	}
	if split.Probability == 0 {
		t.Fatalf("splitting resolved nothing on the tail: stages %v", split.StageProbs)
	}
	diff := math.Abs(is.Probability() - split.Probability)
	tol := 3 * (is.CI95() + split.CI95())
	if diff > tol {
		t.Errorf("split %.4g vs IS %.4g: |diff| %.4g > tol %.4g (stages %v, IS %s)",
			split.Probability, is.Probability(), diff, tol, split.StageProbs, is)
	}
}

// TestRareEventSpeedupOnTail pins the acceptance criterion: on a
// ~1e-6-tail config the engine reaches a <= +-20% relative CI while its
// variance matches >= 100x as many naive trials.
func TestRareEventSpeedupOnTail(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()
	opt := Options{
		Options:    faultsim.Options{Config: cfg, Rates: tailRates(), Trials: 200000, Seed: 1},
		BiasFactor: 16,
	}
	res := RunIS(opt, threeDP(cfg))
	p := res.Probability()
	if p <= 0 || p > 1e-4 {
		t.Fatalf("tail config drifted: P(fail) = %.3g, want ~1e-6..1e-4 (%s)", p, res)
	}
	if rel := res.CI95() / p; rel > 0.20 {
		t.Errorf("relative CI %.1f%% > 20%% (%d failures, ESS %.1f)",
			100*rel, res.Failures, res.ESS())
	}
	if eff := res.EffectiveTrials(); eff < 100*float64(res.Trials) {
		t.Errorf("effective trials %.3g < 100x the %d simulated (speedup %.0fx)",
			eff, res.Trials, eff/float64(res.Trials))
	}
}

// TestISCancellation mirrors the plain engine's contract: a cancelled
// run keeps its completed trials and is marked Partial.
func TestISCancellation(t *testing.T) {
	cfg := stack.DefaultConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{
		Options: faultsim.Options{Config: cfg, Rates: scaledRates(10, 0), Trials: 50000, Seed: 2},
	}
	res := RunISContext(ctx, opt, oneDP(cfg))
	if !res.Partial {
		t.Error("cancelled run not marked Partial")
	}
	if res.Err == nil {
		t.Error("cancelled run carries no Err")
	}
	if res.Trials >= opt.Trials {
		t.Errorf("cancelled run completed all %d trials", res.Trials)
	}
}

// TestSplitRejectsBadLevels pins level validation.
func TestSplitRejectsBadLevels(t *testing.T) {
	cfg := stack.DefaultConfig()
	for _, levels := range [][]int{{0}, {2, 2}, {3, 1}} {
		res := RunSplit(SplitOptions{
			Options: faultsim.Options{Config: cfg, Rates: scaledRates(10, 0), Trials: 10},
			Levels:  levels,
		}, oneDP(cfg))
		if res.Err == nil {
			t.Errorf("levels %v accepted, want error", levels)
		}
	}
}

// citadelLike is the full production policy shape — 3DP plus DDS
// sparing — whose scrub-time sparing removes permanent faults from the
// live set and thereby decouples the live-fault count from the failure
// mechanism at realistic rates.
func citadelLike(cfg stack.Config) faultsim.Policy {
	return faultsim.Policy{
		Name:      "CitadelLike",
		Predicate: ecc.NewParity(cfg, parity.ThreeDP),
		NewSparer: func(c stack.Config) faultsim.Sparer { return sparing.New(c) },
	}
}

// TestSplitAncestorDiversity pins the degeneracy diagnostic. On an
// inflated config the live-fault importance function tracks failure and
// successes descend from thousands of distinct entrances; at Table I
// rates with sparing active almost no entrance state can fail, the
// whole product hangs off at most a couple of lucky draws, and the
// result must say so instead of presenting its (meaningless) binomial
// CI at face value.
func TestSplitAncestorDiversity(t *testing.T) {
	skipInShort(t)
	cfg := stack.DefaultConfig()

	healthy := RunSplit(SplitOptions{
		Options: faultsim.Options{Config: cfg, Rates: scaledRates(10, 0), Trials: 60000, Seed: 1},
	}, citadelLike(cfg))
	if healthy.MinAncestors < minHealthyAncestors {
		t.Errorf("inflated config: MinAncestors %d < %d, expected healthy diversity (stages %v, ancestors %v)",
			healthy.MinAncestors, minHealthyAncestors, healthy.StageProbs, healthy.StageAncestors)
	}
	if s := healthy.String(); strings.Contains(s, "unreliable") {
		t.Errorf("healthy estimate flagged unreliable: %s", s)
	}
	if len(healthy.StageAncestors) != len(healthy.Levels) {
		t.Errorf("want one ancestor count per branching stage (%d), got %v",
			len(healthy.Levels), healthy.StageAncestors)
	}

	degenerate := RunSplit(SplitOptions{
		Options: faultsim.Options{Config: cfg, Rates: scaledRates(1, 0), Trials: 60000, Seed: 3},
	}, citadelLike(cfg))
	if degenerate.MinAncestors >= minHealthyAncestors {
		t.Fatalf("Table I config: MinAncestors %d, expected diversity collapse (stages %v, ancestors %v)",
			degenerate.MinAncestors, degenerate.StageProbs, degenerate.StageAncestors)
	}
	s := degenerate.String()
	if degenerate.RelCI95 != math.Inf(1) && !strings.Contains(s, "unreliable") {
		t.Errorf("degenerate resolved estimate not flagged: %s", s)
	}
	if degenerate.RelCI95 == math.Inf(1) && !strings.Contains(s, "unresolved") {
		t.Errorf("zero-success estimate must say unresolved, got: %s", s)
	}
}
