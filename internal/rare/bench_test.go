package rare

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/stack"
)

// BenchmarkRareEventTail drives the importance sampler over the
// ~1e-6-tail configuration (Table I scaled 20x down, 3DP). Two metrics
// feed BENCH_faultsim.json: trials/s is the raw simulation rate, and
// efftrials/s the variance-equivalent naive throughput — the number of
// plain Monte Carlo trials per second a naive run would need to match
// this estimator's precision. The ratio of the two is the rare-event
// speedup (>= 100x is the engine's acceptance bar); the bench-check gate
// watches both, so a weight-handling bug that silently inflates variance
// fails CI even if wall-clock speed is unchanged.
func BenchmarkRareEventTail(b *testing.B) {
	cfg := stack.DefaultConfig()
	opt := Options{
		Options:    faultsim.Options{Config: cfg, Rates: tailRates(), Trials: b.N, Seed: 1},
		BiasFactor: 16,
	}
	b.ResetTimer()
	res := RunIS(opt, threeDP(cfg))
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(res.Trials)/secs, "trials/s")
		b.ReportMetric(res.EffectiveTrials()/secs, "efftrials/s")
	}
}
