package rare

import "repro/internal/obs"

// Rare-event engine metrics, exposed by cmd/citadel-server at
// GET /metrics alongside the plain engine's citadel_faultsim_* family.
var (
	mRareTrials = obs.Default().Counter("citadel_rare_trials_total",
		"Importance-sampled trials completed across all rare-event runs.")
	mRareFailures = obs.Default().Counter("citadel_rare_failures_total",
		"Importance-sampled trials that ended in uncorrectable failure (unweighted count).")
	mRareRunsActive = obs.Default().Gauge("citadel_rare_runs_active",
		"Rare-event estimator runs currently executing.")
	mSplitStages = obs.Default().Counter("citadel_rare_split_stages_total",
		"Multilevel-splitting stages completed.")
)
