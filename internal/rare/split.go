package rare

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

// SplitOptions configures a multilevel-splitting run. The embedded
// faultsim.Options keep their meaning; Trials is the per-stage effort.
type SplitOptions struct {
	faultsim.Options
	// Levels are the live-fault thresholds of the intermediate stages,
	// strictly increasing and >= 1 (default [1, 2]): stage k estimates
	// the probability of ever having Levels[k] simultaneously live
	// faults given Levels[k-1] were reached, and a final stage estimates
	// failure given the last level.
	Levels []int
}

// SplitResult is a multilevel-splitting estimate. It deliberately does
// not reuse faultsim.Result: the product-of-stages estimator has no
// per-trial weights to merge, and its variance composes differently.
type SplitResult struct {
	Policy string
	// Levels echoes the thresholds used.
	Levels []int
	// StageProbs[k] is the estimated conditional probability of stage k:
	// reaching Levels[k] given the previous level for k < len(Levels),
	// and failing given the last level for the final entry
	// (len(StageProbs) == len(Levels)+1).
	StageProbs []float64
	// Probability is the product of the stage estimates.
	Probability float64
	// RelCI95 is the approximate relative half-width of the 95% interval
	// on Probability, composed from the per-stage binomial variances
	// under the usual stage-independence approximation. Infinite when
	// any stage observed zero successes. The approximation also assumes
	// each stage's successes descend from many distinct entrance states;
	// see MinAncestors for the diagnostic that validates it.
	RelCI95 float64
	// StageAncestors[k] counts, for branching stage k+1 (stage 0 draws
	// fresh lifetimes and has no entrances), the distinct entrance
	// states its successes descended from. It is the splitting analogue
	// of the IS engine's effective sample size: resampling with
	// replacement makes a stage's trials exchangeable but not
	// independent, and when few ancestors carry all the success mass the
	// binomial variance model under-reports by the concentration factor.
	StageAncestors []int
	// MinAncestors is the minimum of StageAncestors — the bottleneck
	// diversity. Small values (≲30) mean the estimate hinges on a
	// handful of lucky entrance draws: the importance function (live
	// fault count) is not tracking the failure mechanism for this
	// config, typical realizations sit below the true mean, and RelCI95
	// is not to be trusted. Raise per-stage trials or prefer RunIS.
	// Zero when no branching stage recorded a success.
	MinAncestors int
	// TrialsPerStage is the fixed effort spent at each stage.
	TrialsPerStage int
	// Partial and Err mirror faultsim.Result's cancellation contract.
	Partial bool
	Err     error
}

// CI95 returns the absolute half-width on Probability.
func (r SplitResult) CI95() float64 {
	if math.IsInf(r.RelCI95, 0) {
		return math.Inf(1)
	}
	return r.Probability * r.RelCI95
}

// minHealthyAncestors is the diversity floor below which a splitting
// estimate is flagged unreliable: with fewer distinct ancestors behind
// a stage's successes, the stage-independence variance model has no
// basis and the realization is typically far below the mean.
const minHealthyAncestors = 30

// String renders the estimate in one line. A stage with zero successes
// leaves the product unresolved (infinite relative CI); that is spelled
// out rather than rendered as a bare "0 ±Inf%", which reads like a
// claim of zero risk. A resolved estimate resting on too few distinct
// entrance ancestors carries an explicit unreliability warning for the
// same reason: the number would read as more certain than it is.
func (r SplitResult) String() string {
	var s string
	if math.IsInf(r.RelCI95, 0) {
		s = fmt.Sprintf("%s: P(fail,7y) unresolved at %d/stage — a stage saw 0 successes; raise per-stage trials (splitting, levels %v)",
			r.Policy, r.TrialsPerStage, r.Levels)
	} else {
		s = fmt.Sprintf("%s: P(fail,7y) = %.3g ±%.0f%% (splitting, levels %v, %d/stage)",
			r.Policy, r.Probability, 100*r.RelCI95, r.Levels, r.TrialsPerStage)
		if len(r.StageAncestors) > 0 && r.MinAncestors < minHealthyAncestors {
			s += fmt.Sprintf(" [unreliable: a stage's successes descend from only %d distinct entrances — raise per-stage trials or prefer the IS engine]",
				r.MinAncestors)
		}
	}
	if r.Partial {
		s += " [partial]"
	}
	return s
}

// withDefaults mirrors the IS defaults and fills Levels.
func (o SplitOptions) withDefaults() SplitOptions {
	if o.LifetimeHours == 0 {
		o.LifetimeHours = fault.LifetimeHours
	}
	if o.ScrubIntervalHours == 0 {
		o.ScrubIntervalHours = faultsim.DefaultScrubIntervalHours
	}
	if o.Trials == 0 {
		o.Trials = 100000
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{1, 2}
	}
	return o
}

// entrance is one trajectory frozen at the moment it first reached a
// level: the fault-list prefix through the crossing arrival and the
// crossing time. failed marks trajectories that went uncorrectable
// before ever crossing — failure is the event being estimated, so it
// absorbs: such a trajectory counts as a success at this and every
// later stage. A trajectory is never classified by anything past its
// crossing (RunToLevel stops there); looking further — e.g. absorbing
// trajectories whose original suffix failed after the crossing while
// resampling fresh suffixes for the survivors — selects survivors for a
// reroll and double-counts failure mass, biasing the product upward.
type entrance struct {
	prefix []fault.Fault
	at     float64
	failed bool
}

// RunSplit estimates failure probability by fixed-effort multilevel
// splitting; it cannot be interrupted (see RunSplitContext).
func RunSplit(opt SplitOptions, pol faultsim.Policy) SplitResult {
	return RunSplitContext(context.Background(), opt, pol)
}

// RunSplitContext runs the splitting estimator on the number of
// simultaneously live faults. Stage 0 draws Trials whole lifetimes and
// keeps those that reach Levels[0] (or fail outright); each later stage
// draws Trials trajectories by picking a random entrance state from the
// previous stage and — Poisson arrivals being memoryless — resampling
// the suffix of the lifetime on (t, T] with fault.Sampler.AppendWindow;
// the final stage scores failure. The estimate is the product of the
// per-stage success fractions.
//
// The estimator is deliberately single-threaded: entrance selection
// feeds back between trials, so a deterministic parallel version would
// need per-stage barriers for little gain, and this path exists to
// cross-validate RunIS, not to replace it. Each stage draws from its own
// faultsim.SplitStreamSeed stream.
func RunSplitContext(ctx context.Context, opt SplitOptions, pol faultsim.Policy) SplitResult {
	opt = opt.withDefaults()
	res := SplitResult{
		Policy:         policyName(pol),
		Levels:         append([]int(nil), opt.Levels...),
		TrialsPerStage: opt.Trials,
	}
	for i, l := range opt.Levels {
		if l < 1 || (i > 0 && l <= opt.Levels[i-1]) {
			res.Err = fmt.Errorf("rare: levels must be strictly increasing and >= 1, got %v", opt.Levels)
			res.Partial = true
			return res
		}
	}
	sampler := fault.NewSampler(opt.Config, opt.Rates)
	runner := faultsim.NewTrialRunner(opt.Config, pol, opt.ScrubIntervalHours)

	stages := len(opt.Levels) + 1
	current := []entrance(nil)
	varTerm := 0.0 // Σ (1−p̂)/(N·p̂) across stages
	var buf []fault.Fault
	for stage := 0; stage < stages; stage++ {
		rng := rand.New(rand.NewSource(faultsim.SplitStreamSeed(opt.Seed, stage)))
		final := stage == stages-1
		var level int
		if !final {
			level = opt.Levels[stage]
		}
		next := make([]entrance, 0, opt.Trials/4)
		successes := 0
		// Branching stages resample entrances with replacement, so their
		// trials are exchangeable but not independent: record which
		// distinct ancestors the successes descend from (see
		// SplitResult.StageAncestors).
		var ancestors map[int]struct{}
		if stage > 0 {
			ancestors = make(map[int]struct{})
		}
		for t := 0; t < opt.Trials; t++ {
			if t%cancelCheckInterval == 0 && ctx.Err() != nil {
				res.Partial = true
				res.Err = ctx.Err()
				return res
			}
			// Build this trial's fault list: a fresh lifetime at stage 0,
			// afterwards a resampled continuation of a random entrance.
			var from entrance
			fromIdx := -1
			if stage == 0 {
				buf = sampler.AppendLifetime(rng, opt.LifetimeHours, buf[:0])
			} else {
				fromIdx = rng.Intn(len(current))
				from = current[fromIdx]
				if from.failed {
					successes++
					ancestors[fromIdx] = struct{}{}
					if !final {
						next = append(next, from)
					}
					continue
				}
				buf = append(buf[:0], from.prefix...)
				buf = sampler.AppendWindow(rng, from.at, opt.LifetimeHours-from.at, buf)
			}
			if final {
				if len(buf) == 0 {
					continue
				}
				if when, _ := runner.Run(buf); when >= 0 {
					successes++
					ancestors[fromIdx] = struct{}{}
				}
				continue
			}
			crossIdx, crossAt, failed := runner.RunToLevel(buf, level)
			switch {
			case crossIdx >= 0:
				successes++
				next = append(next, entrance{
					prefix: append([]fault.Fault(nil), buf[:crossIdx+1]...),
					at:     crossAt,
				})
			case failed:
				successes++
				next = append(next, entrance{failed: true})
			}
			if ancestors != nil && (crossIdx >= 0 || failed) {
				ancestors[fromIdx] = struct{}{}
			}
		}
		mSplitStages.Inc()
		if stage > 0 {
			res.StageAncestors = append(res.StageAncestors, len(ancestors))
			if stage == 1 || len(ancestors) < res.MinAncestors {
				res.MinAncestors = len(ancestors)
			}
		}
		p := float64(successes) / float64(opt.Trials)
		res.StageProbs = append(res.StageProbs, p)
		if successes == 0 {
			res.Probability = 0
			res.RelCI95 = math.Inf(1)
			return res
		}
		varTerm += (1 - p) / (float64(opt.Trials) * p)
		current = next
	}
	res.Probability = 1
	for _, p := range res.StageProbs {
		res.Probability *= p
	}
	res.RelCI95 = 1.96 * math.Sqrt(varTerm)
	return res
}
