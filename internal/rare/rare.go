// Package rare estimates tail failure probabilities that naive Monte
// Carlo cannot resolve. Citadel-class schemes push 7-year uncorrectable
// probabilities to ~1e-5 and below, so a realistic trial budget sees
// zero failures and learns only an upper bound. This package supplies
// the standard rare-event toolkit over the faultsim engine:
//
//   - Importance sampling (RunIS): the Poisson fault-arrival process is
//     biased toward the large-granularity classes (column and above —
//     bank, TSV) that dominate uncorrectable states, and every failing
//     trial is unbiased by its likelihood ratio. Results ride the
//     ordinary faultsim.Result (Weighted fields), so Merge, chunked
//     campaigns, and the cluster executor carry them unchanged.
//
//   - Multilevel splitting (RunSplit): an independent estimator that
//     conditions on the number of simultaneously-live faults, used to
//     cross-validate the importance-sampled answer without sharing its
//     bias machinery.
//
// Biasing only the arrival rates leaves placement and arrival-time
// distributions untouched, so the per-trial likelihood ratio depends
// only on the large-granularity event count n:
//
//	w = Π_c e^{λ'_c−λ_c} (λ_c/λ'_c)^{n_c} = e^{(B−1)Λ} B^{−n}
//
// with Λ the total expected large-granularity events per lifetime
// (fault.Rates.LargeLambda) and B the bias factor.
package rare

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

// DefaultBiasFactor inflates large-granularity rates 16×. At Table-I
// rates Λ is a few tenths, so exp((B−1)Λ) stays modest while B^(−n)
// concentrates weight on the multi-fault trials that actually fail;
// empirically this lands within a factor of a few of the
// variance-optimal bias across the paper's configurations.
const DefaultBiasFactor = 16

// cancelCheckInterval matches the plain engine: workers poll ctx every
// this many trials.
const cancelCheckInterval = 256

// Options configures an importance-sampled run. The embedded
// faultsim.Options keep their meaning; Rates are the *physical* rates —
// the engine applies the bias internally and reports unbiased estimates.
type Options struct {
	faultsim.Options
	// BiasFactor multiplies every large-granularity FIT rate during
	// sampling (>= 1; 0 selects DefaultBiasFactor, 1 degenerates to
	// plain Monte Carlo with unit weights).
	BiasFactor float64
}

// withDefaults mirrors faultsim's effective defaults (trials, lifetime,
// scrub interval, worker clamp) and fills the bias factor.
func (o Options) withDefaults() Options {
	if o.LifetimeHours == 0 {
		o.LifetimeHours = fault.LifetimeHours
	}
	if o.ScrubIntervalHours == 0 {
		o.ScrubIntervalHours = faultsim.DefaultScrubIntervalHours
	}
	if o.Trials == 0 {
		o.Trials = 100000
	}
	if max := runtime.GOMAXPROCS(0); o.Workers <= 0 || o.Workers > max {
		o.Workers = max
	}
	if o.BiasFactor == 0 {
		o.BiasFactor = DefaultBiasFactor
	}
	return o
}

// policyName mirrors faultsim's effective policy naming.
func policyName(pol faultsim.Policy) string {
	if pol.Name != "" {
		return pol.Name
	}
	return pol.Predicate.Name()
}

// isPartial is one worker's tallies. Workers never share accumulators;
// the fold happens once, in worker order, so the float sums are a pure
// function of (seed, trial layout, worker count) — the determinism
// contract checkpointed campaigns rely on.
type isPartial struct {
	done, failures int
	failW, failWSq float64
	byYear         []int
	wByYear        []float64
	causes         map[string]int
}

// RunIS estimates failure probability with importance sampling; it
// cannot be interrupted (see RunISContext).
func RunIS(opt Options, pol faultsim.Policy) faultsim.Result {
	return RunISContext(context.Background(), opt, pol)
}

// RunISContext runs the importance-sampled estimator. Worker goroutines
// draw fault histories under the biased rates and weight every failing
// trial by its likelihood ratio; the returned Result is Weighted, and
// its Probability/CI95/ESS report the unbiased estimate. Cancellation
// mirrors the plain engine: completed trials are kept and the Result is
// marked Partial.
//
// Per-worker RNG streams come from faultsim.RareStreamSeed, a seed space
// disjoint from the plain engine's, so an IS run and a naive run sharing
// a base seed are statistically independent. As with the plain engine,
// seeded results are reproducible only for equal worker counts.
func RunISContext(ctx context.Context, opt Options, pol faultsim.Policy) faultsim.Result {
	opt = opt.withDefaults()
	years := int(math.Ceil(opt.LifetimeHours / fault.HoursPerYear))
	res := faultsim.Result{
		Policy:           policyName(pol),
		Weighted:         true,
		FailuresByYear:   make([]int, years),
		FailWeightByYear: make([]float64, years),
		CauseCounts:      make(map[string]int),
	}
	biased := opt.Rates.BiasLarge(opt.BiasFactor)
	// Likelihood-ratio constants: log w = delta − n·lnB per trial.
	delta := (opt.BiasFactor - 1) * opt.Rates.LargeLambda(opt.Config, opt.LifetimeHours)
	lnB := math.Log(opt.BiasFactor)

	mRareRunsActive.Inc()
	defer mRareRunsActive.Dec()
	var progTrials, progFailures, progScrubs atomic.Int64
	start := time.Now()
	snapshot := func(done bool) faultsim.Progress {
		return faultsim.Progress{
			Policy:       policyName(pol),
			RunID:        opt.RunID,
			TrialsDone:   int(progTrials.Load()),
			TrialsTarget: opt.Trials,
			Failures:     int(progFailures.Load()),
			ScrubPasses:  progScrubs.Load(),
			Elapsed:      time.Since(start),
			Done:         done,
		}
	}
	stopProg := make(chan struct{})
	progDone := make(chan struct{})
	if opt.Progress != nil {
		interval := opt.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		go func() {
			defer close(progDone)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					opt.Progress(snapshot(false))
				}
			}
		}()
	} else {
		close(progDone)
	}

	var wg sync.WaitGroup
	per := (opt.Trials + opt.Workers - 1) / opt.Workers
	parts := make([]*isPartial, 0, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > opt.Trials {
			hi = opt.Trials
		}
		if lo >= hi {
			break
		}
		p := &isPartial{
			byYear:  make([]int, years),
			wByYear: make([]float64, years),
			causes:  make(map[string]int),
		}
		parts = append(parts, p)
		wg.Add(1)
		go func(worker, n int, p *isPartial) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(faultsim.RareStreamSeed(opt.Seed, worker)))
			sampler := fault.NewSampler(opt.Config, biased)
			runner := faultsim.NewTrialRunner(opt.Config, pol, opt.ScrubIntervalHours)
			var buf []fault.Fault
			var flushedDone, flushedFailures, flushedScrubs int64
			flush := func() {
				progTrials.Add(int64(p.done) - flushedDone)
				progFailures.Add(int64(p.failures) - flushedFailures)
				progScrubs.Add(runner.Scrubs() - flushedScrubs)
				mRareTrials.Add(int64(p.done) - flushedDone)
				mRareFailures.Add(int64(p.failures) - flushedFailures)
				flushedDone, flushedFailures, flushedScrubs = int64(p.done), int64(p.failures), runner.Scrubs()
			}
			defer flush()
			for t := 0; t < n; t++ {
				if t%cancelCheckInterval == 0 {
					flush()
					if ctx.Err() != nil {
						break
					}
				}
				p.done++
				buf = sampler.AppendLifetime(rng, opt.LifetimeHours, buf[:0])
				if len(buf) == 0 {
					continue
				}
				when, cause := runner.Run(buf)
				if when < 0 {
					continue
				}
				nBig := 0
				for _, f := range buf {
					if f.Class.LargeGranularity() {
						nBig++
					}
				}
				lw := math.Exp(delta - float64(nBig)*lnB)
				p.failures++
				p.failW += lw
				p.failWSq += lw * lw
				p.causes[cause.String()]++
				y := int(when / fault.HoursPerYear)
				if y >= years {
					y = years - 1
				}
				for i := y; i < years; i++ {
					p.byYear[i]++
					p.wByYear[i] += lw
				}
			}
		}(w, hi-lo, p)
	}
	wg.Wait()
	close(stopProg)
	<-progDone
	// Fold partials in worker order: float accumulation must follow a
	// fixed order to stay bit-identical across runs (the plain engine's
	// any-order merge is fine only because its tallies are integers).
	for _, p := range parts {
		res.Trials += p.done
		res.Failures += p.failures
		res.FailWeight += p.failW
		res.FailWeightSq += p.failWSq
		for i := range p.byYear {
			res.FailuresByYear[i] += p.byYear[i]
			res.FailWeightByYear[i] += p.wByYear[i]
		}
		for k, v := range p.causes {
			res.CauseCounts[k] += v
		}
	}
	if err := ctx.Err(); err != nil && res.Trials < opt.Trials {
		res.Partial = true
		res.Err = err
	}
	if opt.Progress != nil {
		opt.Progress(snapshot(true))
	}
	return res
}
