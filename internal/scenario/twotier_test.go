package scenario

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/stack"
)

func buildTwoTier(t *testing.T, p Params) (*twoTierPredicate, *twoTierObserver) {
	t.Helper()
	cfg := stack.DefaultConfig()
	pol, err := BuildScheme(twoTierSchemeName, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return pol.Predicate.(*twoTierPredicate), pol.NewObserver(cfg).(*twoTierObserver)
}

// exactFault places a die-exact fault at one (die, bank, row) with full
// column coverage, the footprint shape the sampler emits for Row faults.
func exactFault(die, bank, row uint32) fault.Fault {
	return fault.Fault{
		Class: fault.Row,
		Region: fault.Region{
			Die:  fault.ExactPattern(die),
			Bank: fault.ExactPattern(bank),
			Row:  fault.ExactPattern(row),
			Col:  fault.AllPattern(),
		},
	}
}

func TestTwoTierBuildValidation(t *testing.T) {
	odd := stack.DefaultConfig()
	odd.DataDies = 3
	if _, err := BuildScheme(twoTierSchemeName, odd, nil); err == nil {
		t.Fatal("expected error for odd data-die count")
	}
	if _, err := BuildScheme(twoTierSchemeName, stack.DefaultConfig(), Params{"fetchBandwidthGBps": 0}); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
	if _, err := BuildScheme(twoTierSchemeName, stack.DefaultConfig(), Params{"fetchLatencyMicros": -1}); err == nil {
		t.Fatal("expected error for negative latency")
	}
}

func TestTwoTierPredicate(t *testing.T) {
	pred, _ := buildTwoTier(t, nil)
	half := uint32(stack.DefaultConfig().DataDies / 2)

	// A single fast-tier fault: replica intact, correctable.
	if pred.Uncorrectable([]fault.Fault{exactFault(0, 2, 7)}) {
		t.Fatal("single fast-tier fault should be correctable")
	}
	// Fast copy and its mirror both faulty: data loss.
	if !pred.Uncorrectable([]fault.Fault{exactFault(0, 2, 7), exactFault(half, 2, 7)}) {
		t.Fatal("fast fault + mirrored backing fault should be fatal")
	}
	// Mirror pair in different banks never overlaps.
	if pred.Uncorrectable([]fault.Fault{exactFault(0, 2, 7), exactFault(half, 3, 7)}) {
		t.Fatal("different banks should not pair-kill")
	}
	// Two fast-tier faults: both replicas live in the backing tier.
	if pred.Uncorrectable([]fault.Fault{exactFault(0, 2, 7), exactFault(1, 2, 7)}) {
		t.Fatal("two fast-tier faults should be correctable")
	}
	// Different stacks never pair.
	g := exactFault(half, 2, 7)
	g.Region.Stack = 1
	if pred.Uncorrectable([]fault.Fault{exactFault(0, 2, 7), g}) {
		t.Fatal("different stacks should not pair-kill")
	}
	// One footprint spanning every die (an address-TSV-like wide fault)
	// covers a cell and its mirror by itself: i == j must be considered.
	wide := exactFault(0, 2, 7)
	wide.Region.Die = fault.AllPattern()
	if !pred.Uncorrectable([]fault.Fault{wide}) {
		t.Fatal("all-die footprint should be fatal on its own")
	}
	// Metadata-die faults are outside the mirror mapping.
	meta := exactFault(uint32(stack.DefaultConfig().DataDies), 2, 7)
	if pred.Uncorrectable([]fault.Fault{meta, exactFault(0, 2, 7)}) {
		t.Fatal("metadata-die fault should not pair-kill")
	}
}

func TestTwoTierObserverStats(t *testing.T) {
	cfg := stack.DefaultConfig()
	_, obs := buildTwoTier(t, Params{"fetchLatencyMicros": 2, "fetchBandwidthGBps": 4})

	// Correctable fast-tier row fault: one fetch event, one row.
	obs.Arrival(exactFault(0, 1, 5), false)
	// Backing-tier fault: no fetch.
	obs.Arrival(exactFault(uint32(cfg.DataDies/2), 1, 5), false)
	// Uncorrectable arrival: data lost, not repaired, not counted.
	obs.Arrival(exactFault(1, 1, 5), true)
	// Fast-tier bank fault: whole bank's rows fetched.
	bankFault := exactFault(2, 3, 0)
	bankFault.Class = fault.Bank
	bankFault.Region.Row = fault.AllPattern()
	obs.Arrival(bankFault, false)

	stats := map[string]float64{}
	obs.FlushStats(stats)
	wantRows := float64(1 + cfg.RowsPerBank)
	if stats["tierFetchEvents"] != 2 {
		t.Fatalf("tierFetchEvents = %g, want 2", stats["tierFetchEvents"])
	}
	if stats["tierFetchRows"] != wantRows {
		t.Fatalf("tierFetchRows = %g, want %g", stats["tierFetchRows"], wantRows)
	}
	wantBytes := wantRows * float64(cfg.RowBytes)
	if stats["tierFetchBytes"] != wantBytes {
		t.Fatalf("tierFetchBytes = %g, want %g", stats["tierFetchBytes"], wantBytes)
	}
	wantSec := 2*2e-6 + wantBytes/4e9
	if math.Abs(stats["tierFetchSeconds"]-wantSec) > 1e-12 {
		t.Fatalf("tierFetchSeconds = %g, want %g", stats["tierFetchSeconds"], wantSec)
	}
	// FlushStats adds into the destination (per-worker fold contract).
	obs.FlushStats(stats)
	if stats["tierFetchEvents"] != 4 {
		t.Fatalf("second flush did not accumulate: %g", stats["tierFetchEvents"])
	}
}
