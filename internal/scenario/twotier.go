package scenario

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/stack"
)

// two-tier-replication models the memory-replication organization of
// Volos & Sazeides: the stack's data dies split into a fast tier (the
// first DataDies/2 dies of each stack) and a slower backing tier (the
// remaining half), with every fast-tier row mirrored at the same
// (bank, row) of its partner die d + DataDies/2. Per-line CRC detects
// corruption; a detected-bad fast-tier access is repaired by fetching the
// replica from the backing tier, so data is lost only when both copies of
// some cell are faulty at once — a fast-tier footprint and a backing-tier
// footprint overlapping under the mirror mapping.
//
// Repair is not free: every corrected fault arrival that touches the fast
// tier triggers replica fetches for the rows its footprint covers. The
// fetch traffic and its latency/bandwidth cost are surfaced through
// Result.ScenarioStats (tierFetchEvents/Rows/Bytes/Seconds), priced by
// the fetchLatencyMicros and fetchBandwidthGBps parameters. Faults on the
// metadata (ECC) dies are assumed covered by the mirrored directory and
// are neither fatal nor counted.

const (
	defaultFetchLatencyMicros = 0.8
	defaultFetchBandwidthGBps = 16.0
	twoTierSchemeName         = "two-tier-replication"
)

func init() {
	RegisterScheme(Scheme{
		Name:        twoTierSchemeName,
		Description: "fast tier mirrored onto a slow backing tier; repair fetches the replica, costed in ScenarioStats",
		Params: []ParamDoc{
			{Name: "fetchLatencyMicros", Default: defaultFetchLatencyMicros,
				Doc: "per-fetch-event latency of a backing-tier replica fetch, in microseconds"},
			{Name: "fetchBandwidthGBps", Default: defaultFetchBandwidthGBps,
				Doc: "backing-tier fetch bandwidth, in GB/s, pricing the re-replication traffic"},
		},
		Build: func(cfg stack.Config, p Params) (faultsim.Policy, error) {
			if cfg.DataDies < 2 || cfg.DataDies%2 != 0 {
				return faultsim.Policy{}, fmt.Errorf(
					"scenario: %s needs an even number of data dies >= 2, got %d",
					twoTierSchemeName, cfg.DataDies)
			}
			lat := p.Get("fetchLatencyMicros", defaultFetchLatencyMicros)
			bw := p.Get("fetchBandwidthGBps", defaultFetchBandwidthGBps)
			if lat < 0 || bw <= 0 {
				return faultsim.Policy{}, fmt.Errorf(
					"scenario: %s needs fetchLatencyMicros >= 0 and fetchBandwidthGBps > 0", twoTierSchemeName)
			}
			half := cfg.DataDies / 2
			return faultsim.Policy{
				Name:      twoTierSchemeName,
				Predicate: &twoTierPredicate{half: half},
				NewObserver: func(c stack.Config) faultsim.Observer {
					return &twoTierObserver{cfg: c, half: half, latencySec: lat * 1e-6, bwBytesPerSec: bw * 1e9}
				},
			}, nil
		},
	})
}

// twoTierPredicate declares the live set uncorrectable when a fast-tier
// footprint and a backing-tier footprint overlap under the mirror mapping
// die d <-> d+half — both copies of some cell are then faulty.
type twoTierPredicate struct {
	half int
}

func (p *twoTierPredicate) Name() string { return twoTierSchemeName }

func (p *twoTierPredicate) Uncorrectable(live []fault.Fault) bool {
	// A single fault can kill only if its own footprint covers both a
	// fast-tier cell and its mirror (possible for Die patterns wider than
	// one die), so the double loop includes i == j.
	for i := range live {
		for j := range live {
			if p.pairKills(&live[i].Region, &live[j].Region) {
				return true
			}
		}
	}
	return false
}

// pairKills reports whether f (as the fast-tier copy) and g (as the
// backing copy) overlap on some mirrored cell.
func (p *twoTierPredicate) pairKills(f, g *fault.Region) bool {
	if f.Stack != g.Stack {
		return false
	}
	if !f.Bank.Intersects(g.Bank) || !f.Row.Intersects(g.Row) || !f.Col.Intersects(g.Col) {
		return false
	}
	for d := 0; d < p.half; d++ {
		if f.Die.Contains(uint32(d)) && g.Die.Contains(uint32(d+p.half)) {
			return true
		}
	}
	return false
}

// twoTierObserver tallies the repair traffic: every corrected arrival
// touching the fast tier fetches its footprint's rows from the backing
// tier. Counters are flushed into Result.ScenarioStats per worker.
type twoTierObserver struct {
	cfg           stack.Config
	half          int
	latencySec    float64
	bwBytesPerSec float64

	fetchEvents float64
	fetchRows   float64
}

func (o *twoTierObserver) Arrival(f fault.Fault, uncorrectable bool) {
	if uncorrectable {
		return // data lost, not repaired
	}
	fast := false
	for d := 0; d < o.half; d++ {
		if f.Region.Die.Contains(uint32(d)) {
			fast = true
			break
		}
	}
	if !fast {
		return // backing-tier or metadata fault: no fetch needed
	}
	rows := float64(f.Region.Row.CountBelow(uint32(o.cfg.RowsPerBank)))
	banks := float64(f.Region.Bank.CountBelow(uint32(o.cfg.BanksPerDie)))
	o.fetchEvents++
	o.fetchRows += rows * banks
}

func (o *twoTierObserver) FlushStats(dst map[string]float64) {
	bytes := o.fetchRows * float64(o.cfg.RowBytes)
	dst["tierFetchEvents"] += o.fetchEvents
	dst["tierFetchRows"] += o.fetchRows
	dst["tierFetchBytes"] += bytes
	dst["tierFetchSeconds"] += o.fetchEvents*o.latencySec + bytes/o.bwBytesPerSec
}
