package scenario

import (
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/parity"
	"repro/internal/sparing"
	"repro/internal/stack"
)

// The seed-era schemes and the Poisson arrival process, registered under
// the exact names citadel.Scheme.String() prints. citadel.Scheme.policy
// delegates here, and the differential tests pin every one of these
// constructions bit-identical to the pre-registry hand-wiring.

// registerFixed registers a parameterless scheme whose Build wraps a
// plain policy constructor. The policy's report name is the registry
// name, matching the old Scheme.policy naming exactly (TSV-SWAP suffixing
// stays in the citadel package, where the option lives).
func registerFixed(name, desc string, build func(cfg stack.Config) faultsim.Policy) {
	RegisterScheme(Scheme{
		Name:        name,
		Description: desc,
		Build: func(cfg stack.Config, _ Params) (faultsim.Policy, error) {
			pol := build(cfg)
			pol.Name = name
			return pol, nil
		},
	})
}

func init() {
	dds := func(c stack.Config) faultsim.Sparer { return sparing.New(c) }
	registerFixed("None", "unprotected baseline",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NoProtection{}}
		})
	registerFixed("Symbol8/Same-Bank", "8-bit symbol code, line in one bank",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.SameBank)}
		})
	registerFixed("Symbol8/Across-Banks", "8-bit symbol code, line striped across the banks of one channel",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.AcrossBanks)}
		})
	registerFixed("Symbol8/Across-Channels", "8-bit symbol code, line striped across channels (ChipKill-like)",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewSymbol8(cfg, stack.AcrossChannels)}
		})
	registerFixed("1DP", "parity bank only (Dimension 1)",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.OneDP)}
		})
	registerFixed("2DP", "two-dimensional parity",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.TwoDP)}
		})
	registerFixed("3DP", "full Tri-Dimensional Parity",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP)}
		})
	registerFixed("3DP+DDS", "3DP plus Dynamic Dual-granularity Sparing",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewParity(cfg, parity.ThreeDP), NewSparer: dds}
		})
	registerFixed("Citadel", "TSV-SWAP + 3DP + DDS (the full proposal)",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{
				Predicate: ecc.NewParity(cfg, parity.ThreeDP),
				NewSparer: dds, UseTSVSwap: true,
			}
		})
	registerFixed("BCH-6EC7ED", "6-bit-correct/7-bit-detect BCH per line",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewBCH6EC7ED(cfg)}
		})
	registerFixed("RAID-5", "RAID-5-style parity across channels",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewRAID5(cfg)}
		})
	registerFixed("2D-ECC", "prior-work 2D error coding over 32x32 cell tiles",
		func(cfg stack.Config) faultsim.Policy {
			return faultsim.Policy{Predicate: ecc.NewTwoDECC(cfg)}
		})

	RegisterFaultModel(FaultModel{
		Name:        DefaultFaultModel,
		Description: "Poisson fault arrivals at the configured FIT rates (the paper's Table-I process)",
		Build: func(cfg stack.Config, rates fault.Rates, _ Params) (func() faultsim.Arrivals, error) {
			// Exactly the construction the engine performs when no factory
			// is set — same sampler, same RNG draw sequence — so routing
			// through the registry is bit-identical to the seed-era path.
			return func() faultsim.Arrivals { return fault.NewSampler(cfg, rates) }, nil
		},
	})
}
