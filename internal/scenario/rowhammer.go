package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/stack"
)

// The rowhammer fault model replaces FIT-rate Poisson arrivals with an
// activation-count-driven process: a workload repeatedly activates a
// small set of aggressor rows in one hot bank, and whenever an
// aggressor's accumulated activation count crosses the disturbance
// threshold, a breakthrough episode flips bits in the physically
// adjacent victim rows. Arrivals are therefore spatially correlated
// (victims cluster around the aggressors of one bank) and temporally
// clustered (episodes recur at the threshold-crossing cadence), unlike
// the memoryless, uniformly-placed Table-I faults.
//
// Per trial, the model draws one hot (stack, data die, bank) and a base
// row, lays out `aggressors` aggressor rows `aggressorStride` apart, and
// gives each a lognormally-jittered activation rate that decays with its
// rank in the access distribution. An aggressor's expected time between
// breakthrough episodes is threshold / (rate * breakthroughProb); each
// episode emits Row-class faults in 1..victimRows adjacent victim rows,
// each independently permanent with victimPermanentProb. An optional
// Poisson baseline (baselinePoisson=1) layers the standard FIT-rate
// process underneath, so rowhammer damage composes with ambient faults.
//
// All randomness comes from the per-worker rng the engine hands to
// AppendLifetime, so results stay a pure function of (seed, workers,
// chunk layout). Episode counters flush into Result.ScenarioStats via
// the ArrivalStats interface.

const rowhammerModelName = "rowhammer"

// Defaults: a ~3.6e8 activations/hour hammer (100K row activations/s)
// against a 100K-activation threshold with a per-crossing breakthrough
// probability of 1.25e-9 yields an expected episode spacing of ~222Kh
// for the hottest aggressor — a few tenths of an episode per 7-year
// lifetime per trial, comparable to the Table-I large-granularity rates.
const (
	defaultAggressors       = 4
	defaultActsPerHour      = 3.6e8
	defaultHammerThreshold  = 1e5
	defaultBreakthroughProb = 1.25e-9
	defaultVictimRows       = 2
	defaultVictimPermProb   = 0.05
	defaultAggressorStride  = 2
	defaultRateSigma        = 0.5
	defaultBaselinePoisson  = 1

	// maxHammerFaults caps the per-trial fault count so a hostile
	// parameter choice (huge rate, tiny threshold) degrades to a bounded
	// worst case instead of an unbounded allocation.
	maxHammerFaults = 512
)

func init() {
	RegisterFaultModel(FaultModel{
		Name:        rowhammerModelName,
		Description: "activation-driven rowhammer episodes: spatially correlated victim-row faults around hot aggressor rows",
		Params: []ParamDoc{
			{Name: "aggressors", Default: defaultAggressors,
				Doc: "number of aggressor rows hammered in the hot bank"},
			{Name: "hammerActsPerHour", Default: defaultActsPerHour,
				Doc: "activation rate of the hottest aggressor, activations per hour"},
			{Name: "hammerThreshold", Default: defaultHammerThreshold,
				Doc: "activation count per disturbance-threshold crossing"},
			{Name: "breakthroughProb", Default: defaultBreakthroughProb,
				Doc: "probability a threshold crossing breaks through to flip victim bits"},
			{Name: "victimRows", Default: defaultVictimRows,
				Doc: "maximum adjacent victim rows corrupted per episode"},
			{Name: "victimPermanentProb", Default: defaultVictimPermProb,
				Doc: "probability a victim-row fault is permanent rather than transient"},
			{Name: "aggressorStride", Default: defaultAggressorStride,
				Doc: "row spacing between successive aggressor rows"},
			{Name: "rateSigma", Default: defaultRateSigma,
				Doc: "lognormal sigma of per-aggressor activation-rate jitter"},
			{Name: "baselinePoisson", Default: defaultBaselinePoisson,
				Doc: "1 to layer the standard Poisson FIT-rate process underneath, 0 for hammer-only arrivals"},
		},
		Build: func(cfg stack.Config, rates fault.Rates, p Params) (func() faultsim.Arrivals, error) {
			rh := rowhammerParams{
				aggressors:       int(p.Get("aggressors", defaultAggressors)),
				actsPerHour:      p.Get("hammerActsPerHour", defaultActsPerHour),
				threshold:        p.Get("hammerThreshold", defaultHammerThreshold),
				breakthroughProb: p.Get("breakthroughProb", defaultBreakthroughProb),
				victimRows:       int(p.Get("victimRows", defaultVictimRows)),
				victimPermProb:   p.Get("victimPermanentProb", defaultVictimPermProb),
				stride:           int(p.Get("aggressorStride", defaultAggressorStride)),
				rateSigma:        p.Get("rateSigma", defaultRateSigma),
				baseline:         p.Get("baselinePoisson", defaultBaselinePoisson) != 0,
			}
			if err := rh.validate(cfg); err != nil {
				return nil, err
			}
			return func() faultsim.Arrivals {
				src := &rowhammerArrivals{cfg: cfg, p: rh}
				if rh.baseline {
					src.base = fault.NewSampler(cfg, rates)
				}
				return src
			}, nil
		},
	})
}

type rowhammerParams struct {
	aggressors       int
	actsPerHour      float64
	threshold        float64
	breakthroughProb float64
	victimRows       int
	victimPermProb   float64
	stride           int
	rateSigma        float64
	baseline         bool
}

func (p rowhammerParams) validate(cfg stack.Config) error {
	switch {
	case p.aggressors < 1:
		return fmt.Errorf("scenario: %s needs aggressors >= 1, got %d", rowhammerModelName, p.aggressors)
	case p.actsPerHour <= 0:
		return fmt.Errorf("scenario: %s needs hammerActsPerHour > 0", rowhammerModelName)
	case p.threshold <= 0:
		return fmt.Errorf("scenario: %s needs hammerThreshold > 0", rowhammerModelName)
	case p.breakthroughProb <= 0 || p.breakthroughProb > 1:
		return fmt.Errorf("scenario: %s needs breakthroughProb in (0, 1]", rowhammerModelName)
	case p.victimRows < 1:
		return fmt.Errorf("scenario: %s needs victimRows >= 1, got %d", rowhammerModelName, p.victimRows)
	case p.victimPermProb < 0 || p.victimPermProb > 1:
		return fmt.Errorf("scenario: %s needs victimPermanentProb in [0, 1]", rowhammerModelName)
	case p.stride < 1:
		return fmt.Errorf("scenario: %s needs aggressorStride >= 1, got %d", rowhammerModelName, p.stride)
	case p.rateSigma < 0:
		return fmt.Errorf("scenario: %s needs rateSigma >= 0", rowhammerModelName)
	case cfg.RowsPerBank < 4:
		return fmt.Errorf("scenario: %s needs at least 4 rows per bank, got %d", rowhammerModelName, cfg.RowsPerBank)
	}
	return nil
}

// rowhammerArrivals is one worker's arrival source. It is stateful only
// for its episode counters (flushed via ArrivalStats); the fault stream
// itself is a pure function of the rng sequence.
type rowhammerArrivals struct {
	cfg  stack.Config
	p    rowhammerParams
	base *fault.Sampler

	trials     float64
	episodes   float64
	victims    float64
	permanents float64
	// histogram of episodes per trial: 0, 1-3, 4-15, 16+.
	epHist [4]float64
}

func (r *rowhammerArrivals) AppendLifetime(rng *rand.Rand, hours float64, dst []fault.Fault) []fault.Fault {
	start := len(dst)
	if r.base != nil {
		dst = r.base.AppendLifetime(rng, hours, dst)
	}

	// Hot location for this trial's hammering workload.
	stackIdx := rng.Intn(r.cfg.Stacks)
	die := uint32(rng.Intn(r.cfg.DataDies))
	bank := uint32(rng.Intn(r.cfg.BanksPerDie))
	baseRow := uint32(rng.Intn(r.cfg.RowsPerBank))

	trialEpisodes := 0
	capped := false
	for a := 0; a < r.p.aggressors && !capped; a++ {
		aggRow := (baseRow + uint32(a*r.p.stride)) % uint32(r.cfg.RowsPerBank)
		// Rank-a aggressor is hammered ~1/(a+1) as often as the hottest,
		// with lognormal workload jitter.
		rate := r.p.actsPerHour / float64(a+1) * math.Exp(r.p.rateSigma*rng.NormFloat64())
		spacing := r.p.threshold / (rate * r.p.breakthroughProb)
		if spacing <= 0 || math.IsInf(spacing, 0) || math.IsNaN(spacing) {
			continue
		}
		for t := spacing * (0.5 + rng.Float64()); t < hours; t += spacing * (0.8 + 0.4*rng.Float64()) {
			// Hostile parameters (tiny threshold, prob 1) degrade to a
			// bounded trial, not an unbounded loop.
			if len(dst)-start >= maxHammerFaults {
				capped = true
				break
			}
			trialEpisodes++
			nv := 1 + rng.Intn(r.p.victimRows)
			for v := 0; v < nv && len(dst)-start < maxHammerFaults; v++ {
				// Victims alternate above/below the aggressor: +1, -1, +2, -2...
				off := int32(v/2 + 1)
				if v%2 == 1 {
					off = -off
				}
				vr := (int32(aggRow) + off + int32(r.cfg.RowsPerBank)) % int32(r.cfg.RowsPerBank)
				pers := fault.Transient
				if rng.Float64() < r.p.victimPermProb {
					pers = fault.Permanent
					r.permanents++
				}
				r.victims++
				dst = append(dst, fault.Fault{
					Class:       fault.Row,
					Persistence: pers,
					Hours:       t,
					Region: fault.Region{
						Stack: stackIdx,
						Die:   fault.ExactPattern(die),
						Bank:  fault.ExactPattern(bank),
						Row:   fault.ExactPattern(uint32(vr)),
						Col:   fault.AllPattern(),
					},
				})
			}
		}
	}

	r.trials++
	r.episodes += float64(trialEpisodes)
	switch {
	case trialEpisodes == 0:
		r.epHist[0]++
	case trialEpisodes <= 3:
		r.epHist[1]++
	case trialEpisodes <= 15:
		r.epHist[2]++
	default:
		r.epHist[3]++
	}

	// The engine requires arrivals sorted by Hours; hammer episodes
	// interleave arbitrarily with the baseline stream. Insertion sort: the
	// appended region is near-sorted and small.
	region := dst[start:]
	for i := 1; i < len(region); i++ {
		for j := i; j > 0 && region[j].Hours < region[j-1].Hours; j-- {
			region[j], region[j-1] = region[j-1], region[j]
		}
	}
	return dst
}

// FlushStats implements faultsim.ArrivalStats.
func (r *rowhammerArrivals) FlushStats(dst map[string]float64) {
	dst["hammerTrials"] += r.trials
	dst["hammerEpisodes"] += r.episodes
	dst["hammerVictimFaults"] += r.victims
	dst["hammerPermanentVictims"] += r.permanents
	dst["hammerTrialsEp0"] += r.epHist[0]
	dst["hammerTrialsEp1to3"] += r.epHist[1]
	dst["hammerTrialsEp4to15"] += r.epHist[2]
	dst["hammerTrialsEp16plus"] += r.epHist[3]
}
